(** Page loading: the paper's processing model (§4.1, Fig. 1).

    An (X)HTML page is parsed into the DOM, the page renders, and each
    [<script>] element runs: JavaScript first, then XQuery — "this is
    the way browsers do it because JavaScript is supported natively"
    (§4.1). XQuery scripts share one static and dynamic context per
    window (prolog + main query); running them registers event
    listeners; afterwards the browser loops dispatching events to
    listeners.

    Other script languages plug in through {!register_script_engine}
    (the [minijs] library registers ["text/javascript"]), which is how
    the paper's co-existence story (§6.2) is modelled. *)

type script_engine =
  Browser.t -> Windows.t -> script_element:Dom.node -> source:string -> unit

(** Register an engine for a [type] attribute value (e.g.
    ["text/javascript"]). XQuery types ([text/xquery], [text/xqueryp])
    are built in. *)
val register_script_engine : script_type:string -> script_engine -> unit

(** Providers for inline [on*] handler attributes, tried in
    registration order; the first that returns [true] owns the
    handler. The XQuery compiler is the built-in fallback. The JS
    engine registers a provider so pages can mix
    [onclick="buy(event)"] (JS) with [onkeyup="local:f(value)"]
    (XQuery), as the mash-up scenario requires. *)
val register_inline_handler_provider :
  (Browser.t ->
  Windows.t ->
  element:Dom.node ->
  event_type:string ->
  source:string ->
  bool) ->
  unit

type options = {
  execution_order : [ `Js_first | `Document_order ];
      (** §4.1: JavaScript first is the current model *)
  run_inline_handlers : bool;
      (** compile [on*] handler attributes (e.g. the [onkeyup] of the
          §4.4 AJAX example) as XQuery listeners *)
}

val default_options : options

(** Load a page into a window (default: the browser's top window):
    parse (honouring the IE upper-casing quirk), install the document,
    run scripts, wire inline handlers. Also installs the browser's
    navigation hook so [replace value of node $w/location/href …]
    re-loads pages through the simulated network. *)
val load :
  ?options:options -> ?window:Windows.t -> Browser.t -> string -> unit

(** Fetch a page over the simulated network and {!load} it. The fetch
    goes through the browser's {!Retry} policy ([Browser.t.retry]), so
    transient faults are retried with backoff; a final failure raises
    [SEBR0404]. *)
val browse : ?options:options -> ?window:Windows.t -> Browser.t -> string -> unit

(** The shared XQuery dynamic context of a window's page, if the page
    had XQuery scripts (tests use this to poke at page state). *)
val xquery_context : Windows.t -> Xquery.Dynamic_context.t option

(** Compile and run one XQuery source against a window's current page,
    creating or reusing the page context. Returns the result sequence
    (updates are applied). *)
val run_xquery : Browser.t -> Windows.t -> string -> Xdm_item.sequence
