(** A text renderer for pages — the "render the webpage" stage of the
    paper's pipeline (Fig. 1), in the spirit of a terminal browser:
    block elements break lines, headings are underlined, lists get
    bullets, tables align columns, form controls draw as widgets.

    Used by the CLI ([xqib page --render]) and by the F1 bench to give
    the render stage a real cost. *)

type options = {
  width : int;  (** wrap width (default 72) *)
  show_hidden : bool;  (** render elements with [style display: none] *)
}

val default_options : options

(** Render a document (or element subtree) to text. *)
val render : ?options:options -> Dom.node -> string

(** Number of lines the rendering produced (cheap layout metric). *)
val line_count : ?options:options -> Dom.node -> int

(** Like {!render}, but memoized on (node id, accel generation,
    options): a re-render of an unmutated tree — e.g. after an event
    whose listeners were all skipped by reactive dispatch — is a table
    lookup. Bounded; emits [render.memo.hit]/[render.memo.miss]. *)
val render_cached : ?options:options -> Dom.node -> string
