(** The simulated browser: window tree, virtual-time event loop,
    rendering/dirtying accounting, alert sink, and simulated user
    interactions. This plays the role of Internet Explorer in the
    paper's architecture (Fig. 1): it owns the DOM, listens for
    events, and calls the XQuery engine's listeners. *)

type t = {
  clock : Virtual_clock.t;
  http : Http_sim.t;
  rest : Rest.client;
  top_window : Windows.t;
  screen : Bom.screen;
  navigator : Bom.navigator;
  policy : Origin.policy;
  uppercase_tags : bool;  (** IE's tag-upper-casing quirk (§5.1) *)
  mutable alerts : string list;  (** chronological *)
  mutable prompt_response : string;
  mutable confirm_response : bool;
  mutable render_count : int;  (** DOM mutations observed on the page *)
  mutable ui_blocked : float;  (** virtual seconds spent inside dispatch *)
  mutable events_dispatched : int;
  mutable doc_observer : Dom.observer_id option;
  mutable on_navigate : Windows.t -> string -> unit;
  local_store : Local_store.t;
      (** per-origin client-side XML storage (the Gears analogue, §2.4) *)
  mutable online : bool;
      (** when false, all network fetches fail — models working offline
          against the local store *)
  mutable script_errors : string list;
      (** errors raised inside listeners (newest first), like a browser
          error console *)
  mutable retry : Retry.policy;
      (** resilience policy for page loads (see {!Page.browse}); the
          REST client of this browser carries its own copy *)
  net_prng : Prng.t;  (** backoff jitter for page-load retries *)
  net_stats : Retry.stats;  (** attempt/retry counters for page loads *)
}

(** [retry] is the resilience policy for all network traffic (REST and
    page loads; default {!Retry.default}). [net_fallback] enables the
    §2.4-style graceful degradation: successful REST documents are
    copied into {!local_store} (keyed by URI, under the document's
    origin) and served from there when retries are exhausted — off by
    default so the zero-fault behaviour of existing pages (e.g. what
    [browser:storeList()] shows) is unchanged. [seed] drives the
    backoff-jitter PRNGs. *)
val create :
  ?cache:bool ->
  ?policy:Origin.policy ->
  ?uppercase_tags:bool ->
  ?navigator:Bom.navigator ->
  ?screen:Bom.screen ->
  ?clock:Virtual_clock.t ->
  ?http:Http_sim.t ->
  ?href:string ->
  ?retry:Retry.policy ->
  ?net_fallback:bool ->
  ?seed:int ->
  unit ->
  t

(** Install a document into a window (re-homes the render observer
    when it is the focused top window's document). *)
val set_document : t -> Windows.t -> Dom.node -> unit

val document : t -> Dom.node

(** Chronological list of alert messages. *)
val alerts : t -> string list

val clear_alerts : t -> unit

(** Render the page through {!Renderer.render_cached}: when an event
    changed nothing (all listeners skipped by reactive dispatch), the
    re-render is a memo lookup. *)
val render : ?options:Renderer.options -> t -> string

(** {1 Event dispatch and user simulation} *)

(** Dispatch an event synchronously, accounting the virtual time the
    listeners consume as UI-blocked time. *)
val dispatch :
  t -> ?detail:(string * string) list -> target:Dom.node -> string -> unit

(** Simulate a user click ([onclick] + [click]). *)
val click : t -> Dom.node -> unit

(** Simulate typing into an input: appends to its [value] attribute one
    character at a time, firing [onkeyup] per keystroke (the AJAX
    suggest workload of §4.4). *)
val type_text : t -> Dom.node -> string -> unit

(** Run queued asynchronous work (e.g. [behind] calls) to completion. *)
val run : t -> unit

(** Point the observability layer's clock at this browser's virtual
    clock, so span timestamps and durations are in virtual seconds. *)
val connect_obs : t -> unit

(** {1 The XQuery host for a window}

    Wires the paper's extension expressions to this browser: events to
    the DOM event tables, [behind] to the event loop, styles to the
    [style] attribute, blocks [fn:doc]/[fn:put] (§4.2.1), exposes the
    virtual clock as the dynamic-context date/time.

    The [behind] listener observes XMLHttpRequest-style readyState
    signals: [1] when the computation is scheduled, then [4] with the
    result on success — or [0] (the XHR "error" state) with the error
    message as the second argument when the computation fails (e.g.
    retries exhausted on a flaky network). The failure is also recorded
    in [script_errors], and the event loop keeps dispatching. *)
val host_for : t -> Windows.t -> Xquery.Dynamic_context.host
