open Xmlb
module SC = Xquery.Static_context
module I = Xdm_item

let namespace = Qname.Ns.browser

(* Live materialized views, newest first; old ones are released so the
   observer table does not grow without bound. *)
type state = { mutable views : Windows.view list }

let max_live_views = 8

let push_view st v =
  st.views <- v :: st.views;
  let rec trim i = function
    | [] -> []
    | v :: rest ->
        if i >= max_live_views then begin
          Windows.release v;
          trim (i + 1) rest
        end
        else v :: trim (i + 1) rest
  in
  st.views <- trim 1 st.views

let err fmt = Xquery.Xq_error.raise_error Xquery.Xq_error.security fmt

let install (b : Browser.t) (window : Windows.t) sctx =
  SC.declare_namespace sctx ~prefix:"browser" ~uri:namespace;
  SC.block_function sctx ~uri:Qname.Ns.fn ~local:"doc";
  SC.block_function sctx ~uri:Qname.Ns.fn ~local:"put";
  let st = { views = [] } in
  let accessor () = Windows.origin window in
  let materialize_top () =
    let v =
      Windows.materialize ~policy:b.Browser.policy
        ~on_navigate:(fun w href -> b.Browser.on_navigate w href)
        ~accessor:(accessor ())
        (Windows.top window)
    in
    push_view st v;
    v
  in
  let register local arity f =
    SC.register_external sctx (Qname.make ~uri:namespace local) ~arity f
  in
  let str args n = I.sequence_string (List.nth args n) in

  register "top" 0 (fun _ _ ->
      [ I.Node (Windows.view_root (materialize_top ())) ]);
  register "self" 0 (fun _ _ ->
      let v = materialize_top () in
      match Windows.node_of_window v window with
      | Some n -> [ I.Node n ]
      | None -> []);
  register "document" 1 (fun _ args ->
      match List.nth args 0 with
      | [ I.Node n ] -> (
          (* exact-node lookup: a cross-origin <window/> shell is not
             registered, and must not fall back to an enclosing
             accessible window *)
          let found =
            List.find_map (fun v -> Windows.window_at v n) st.views
          in
          match found with
          | Some w
            when Origin.allows b.Browser.policy ~accessor:(accessor ())
                   ~target:(Windows.origin w) ->
              [ I.Node w.Windows.document ]
          | Some _ | None -> [])
      | _ -> []);
  register "screen" 0 (fun _ _ -> [ I.Node (Bom.screen_to_xml b.Browser.screen) ]);
  register "navigator" 0 (fun _ _ ->
      [ I.Node (Bom.navigator_to_xml b.Browser.navigator) ]);

  (* dialogs *)
  register "alert" 1 (fun _ args ->
      b.Browser.alerts <- str args 0 :: b.Browser.alerts;
      []);
  register "prompt" 1 (fun _ _ ->
      [ I.Atomic (Xdm_atomic.String b.Browser.prompt_response) ]);
  register "confirm" 1 (fun _ _ ->
      [ I.Atomic (Xdm_atomic.Boolean b.Browser.confirm_response) ]);

  (* window functions *)
  register "windowOpen" 1 (fun _ args ->
      let href = str args 0 in
      let w =
        Windows.create
          ~name:(Printf.sprintf "window_%d" (List.length (Windows.top window).Windows.frames + 1))
          ~href ()
      in
      Windows.add_frame ~parent:(Windows.top window) w;
      b.Browser.on_navigate w href;
      let v = materialize_top () in
      match Windows.node_of_window v w with
      | Some n -> [ I.Node n ]
      | None -> []);
  register "windowClose" 1 (fun _ args ->
      (match List.nth args 0 with
      | [ I.Node n ] -> (
          match List.find_map (fun v -> Windows.window_of_node v n) st.views with
          | Some w ->
              w.Windows.closed <- true;
              Windows.remove_frame w
          | None -> err "windowClose: not a window node")
      | _ -> err "windowClose expects a window node");
      []);
  let window_of_arg args =
    match List.nth args 0 with
    | [ I.Node n ] -> List.find_map (fun v -> Windows.window_at v n) st.views
    | _ -> None
  in
  let int_arg args n =
    match I.opt_atomic (List.nth args n) with
    | Some a -> (
        match Xdm_atomic.cast ~target:Xdm_atomic.T_integer a with
        | Xdm_atomic.Integer i -> i
        | _ -> 0)
    | None -> 0
  in
  register "windowMoveBy" 3 (fun _ args ->
      (match window_of_arg args with
      | Some w -> Windows.move_by w ~dx:(int_arg args 1) ~dy:(int_arg args 2)
      | None -> err "windowMoveBy: not a window node");
      []);
  register "windowMoveTo" 3 (fun _ args ->
      (match window_of_arg args with
      | Some w -> Windows.move_to w ~x:(int_arg args 1) ~y:(int_arg args 2)
      | None -> err "windowMoveTo: not a window node");
      []);

  (* history *)
  register "historyBack" 0 (fun _ _ ->
      Windows.history_back window;
      b.Browser.on_navigate window window.Windows.href;
      []);
  register "historyForward" 0 (fun _ _ ->
      Windows.history_forward window;
      b.Browser.on_navigate window window.Windows.href;
      []);
  register "historyGo" 1 (fun _ args ->
      (match I.opt_atomic (List.nth args 0) with
      | Some (Xdm_atomic.Integer n) ->
          Windows.history_go window n;
          b.Browser.on_navigate window window.Windows.href
      | _ -> err "historyGo expects an integer");
      []);

  (* client-side persistent storage (the Gears analogue, §2.4):
     per-origin, survives page loads, works offline *)
  register "storePut" 2 (fun _ args ->
      let name = str args 0 in
      (match List.nth args 1 with
      | [ I.Node n ] ->
          Local_store.put b.Browser.local_store ~origin:(accessor ()) ~name
            (Dom.clone n)
      | seq ->
          Local_store.put b.Browser.local_store ~origin:(accessor ()) ~name
            (Dom.of_string
               ("<value>" ^ Xml_escape.text (I.sequence_string seq) ^ "</value>")));
      []);
  register "storeGet" 1 (fun _ args ->
      match
        Local_store.get b.Browser.local_store ~origin:(accessor ()) ~name:(str args 0)
      with
      | Some doc -> [ I.Node doc ]
      | None -> []);
  register "storeDelete" 1 (fun _ args ->
      [
        I.Atomic
          (Xdm_atomic.Boolean
             (Local_store.delete b.Browser.local_store ~origin:(accessor ())
                ~name:(str args 0)));
      ]);
  register "storeList" 0 (fun _ _ ->
      List.map
        (fun name -> I.Atomic (Xdm_atomic.String name))
        (Local_store.list b.Browser.local_store ~origin:(accessor ())));
  register "online" 0 (fun _ _ ->
      [ I.Atomic (Xdm_atomic.Boolean b.Browser.online) ]);

  (* engine observability: a snapshot of the metrics registry as XML,
     so page code and tests can introspect performance counters with
     ordinary XPath (e.g. browser:stats()//counter[@name='eval.steps']) *)
  register "stats" 0 (fun _ _ ->
      let attr node name v = Dom.set_attribute node (Qname.make name) v in
      let root = Dom.create_element (Qname.make "stats") in
      attr root "virtual-time"
        (Printf.sprintf "%.6f" (Virtual_clock.now b.Browser.clock));
      attr root "metrics-enabled" (string_of_bool !Obs.Metrics.enabled);
      attr root "trace-enabled" (string_of_bool !Obs.Trace.enabled);
      attr root "value-index-enabled" (string_of_bool (Dom.value_index_enabled ()));
      attr root "join-planning-enabled"
        (string_of_bool (Xquery.Optimizer.join_planning_enabled ()));
      attr root "compiled-eval-enabled"
        (string_of_bool (Xquery.Engine.compiled_eval_enabled ()));
      attr root "incremental-enabled"
        (string_of_bool (Xquery.Reactive.active ()));
      attr root "interning-enabled"
        (string_of_bool (Dom.interned_fastpaths_enabled ()));
      let counters = Dom.create_element (Qname.make "counters") in
      Dom.append_child ~parent:root counters;
      List.iter
        (fun (name, v) ->
          let c = Dom.create_element (Qname.make "counter") in
          attr c "name" name;
          attr c "value" (string_of_int v);
          Dom.append_child ~parent:counters c)
        (Obs.Metrics.counters ());
      let hists = Dom.create_element (Qname.make "histograms") in
      Dom.append_child ~parent:root hists;
      List.iter
        (fun (name, h) ->
          let e = Dom.create_element (Qname.make "histogram") in
          attr e "name" name;
          attr e "count" (string_of_int h.Obs.Metrics.count);
          attr e "sum" (Printf.sprintf "%.9g" h.Obs.Metrics.sum);
          attr e "min" (Printf.sprintf "%.9g" h.Obs.Metrics.min);
          attr e "max" (Printf.sprintf "%.9g" h.Obs.Metrics.max);
          Dom.append_child ~parent:hists e)
        (Obs.Metrics.histograms ());
      let spans = Dom.create_element (Qname.make "spans") in
      attr spans "roots" (string_of_int (List.length (Obs.Trace.roots ())));
      attr spans "dropped" (string_of_int (Obs.Trace.dropped ()));
      Dom.append_child ~parent:root spans;
      let qc = Dom.create_element (Qname.make "query-cache") in
      let s = Xquery.Query_cache.stats Xquery.Engine.query_cache in
      attr qc "enabled" (string_of_bool !Xquery.Query_cache.enabled);
      attr qc "hits" (string_of_int s.Xquery.Query_cache.hits);
      attr qc "misses" (string_of_int s.Xquery.Query_cache.misses);
      attr qc "evictions" (string_of_int s.Xquery.Query_cache.evictions);
      attr qc "entries" (string_of_int s.Xquery.Query_cache.entries);
      attr qc "generation"
        (string_of_int (Xquery.Query_cache.generation Xquery.Engine.query_cache));
      attr qc "cost-saved" (string_of_int s.Xquery.Query_cache.cost_saved);
      Dom.append_child ~parent:root qc;
      let ce = Dom.create_element (Qname.make "compile") in
      List.iter
        (fun (name, v) -> attr ce name (string_of_int v))
        (Xquery.Compile.stats ());
      Dom.append_child ~parent:root ce;
      let st = Dom.create_element (Qname.make "streaming") in
      attr st "enabled" (string_of_bool (Xquery.Eval.streaming_enabled ()));
      attr st "pulls"
        (string_of_int (Obs.Metrics.counter Xdm_seq.pulls_metric));
      attr st "materializations"
        (string_of_int (Obs.Metrics.counter Xdm_seq.materialize_metric));
      Dom.append_child ~parent:root st;
      let re = Dom.create_element (Qname.make "reactive") in
      attr re "enabled" (string_of_bool (Xquery.Reactive.active ()));
      attr re "listeners" (string_of_int (Xquery.Reactive.table_size ()));
      List.iter
        (fun (name, v) -> attr re name (string_of_int v))
        (Xquery.Reactive.counter_stats ());
      Dom.append_child ~parent:root re;
      let sy = Dom.create_element (Qname.make "sym") in
      attr sy "enabled" (string_of_bool (Dom.interned_fastpaths_enabled ()));
      List.iter
        (fun (name, v) -> attr sy name (string_of_int v))
        (Xmlb.Sym.stats ());
      Dom.append_child ~parent:root sy;
      [ I.Node root ]);

  (* document write (the paper notes best practice is XDM updates) *)
  let body_of_document () =
    let doc = window.Windows.document in
    match Dom.get_elements_by_local_name doc "body" with
    | body :: _ -> body
    | [] -> (
        match Dom.children doc with
        | root :: _ -> root
        | [] ->
            let html = Dom.create_element (Qname.make "html") in
            Dom.append_child ~parent:doc html;
            html)
  in
  register "write" 1 (fun _ args ->
      Dom.append_child ~parent:(body_of_document ()) (Dom.create_text (str args 0));
      []);
  register "writeln" 1 (fun _ args ->
      let body = body_of_document () in
      Dom.append_child ~parent:body (Dom.create_text (str args 0));
      Dom.append_child ~parent:body (Dom.create_element (Qname.make "br"));
      [])
