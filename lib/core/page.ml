open Xmlb
module SC = Xquery.Static_context
module DC = Xquery.Dynamic_context

type script_engine =
  Browser.t -> Windows.t -> script_element:Dom.node -> source:string -> unit

let engines : (string, script_engine) Hashtbl.t = Hashtbl.create 4

let register_script_engine ~script_type engine =
  Hashtbl.replace engines (String.lowercase_ascii script_type) engine

type options = {
  execution_order : [ `Js_first | `Document_order ];
  run_inline_handlers : bool;
}

let default_options = { execution_order = `Js_first; run_inline_handlers = true }

(* per-window page state: one static + dynamic context shared by all
   XQuery scripts of the page (prolog accumulates, Fig. 1) *)
type page_state = { static : SC.t; mutable ctx : DC.t }

let states : (int, page_state) Hashtbl.t = Hashtbl.create 8

let xquery_context window =
  Option.map (fun st -> st.ctx) (Hashtbl.find_opt states window.Windows.wid)

let fresh_state (b : Browser.t) window =
  let static = Xquery.Engine.default_static () in
  Browser_functions.install b window static;
  Rest.install b.Browser.rest static;
  SC.set_module_resolver static
    (Web_service.module_resolver ~retry:b.Browser.retry ~prng:b.Browser.net_prng
       b.Browser.http);
  let host = Browser.host_for b window in
  let ctx = DC.create ~host static in
  let ctx =
    DC.with_focus ctx (Xdm_item.Node window.Windows.document) ~position:1 ~size:1
  in
  let st = { static; ctx } in
  (* The higher-order-function fallback of the paper's §5.1 ("as Zorba
     does not allow to modify the XQuery grammar, we use high-order
     functions to bind events and handle styles instead of the syntax
     suggested in this paper"). Both styles coexist here; the T5 bench
     compares them. *)
  let resolve_listener args n =
    let name = Xdm_item.sequence_string (List.nth args n) in
    let qn = Qname.of_string name in
    let qn =
      match qn.Qname.prefix with
      | None -> Qname.with_uri qn (Some Qname.Ns.local)
      | Some p -> (
          match Qname.Env.lookup (SC.ns_env static) p with
          | Some uri -> Qname.with_uri qn (Some uri)
          | None -> qn)
    in
    qn
  in
  let register local arity f =
    SC.register_external static
      (Qname.make ~uri:Browser_functions.namespace local)
      ~arity f
  in
  register "addEventListener" 3 (fun _ args ->
      let targets = List.nth args 0 in
      let event_type = Xdm_item.sequence_string (List.nth args 1) in
      let listener = Xquery.Eval.make_listener st.ctx (resolve_listener args 2) in
      host.DC.attach ~event_type ~targets ~listener;
      []);
  register "removeEventListener" 3 (fun _ args ->
      let targets = List.nth args 0 in
      let event_type = Xdm_item.sequence_string (List.nth args 1) in
      host.DC.detach ~event_type ~targets ~name:(resolve_listener args 2);
      []);
  register "dispatchEvent" 2 (fun _ args ->
      let targets = List.nth args 0 in
      let event_type = Xdm_item.sequence_string (List.nth args 1) in
      host.DC.trigger ~event_type ~targets;
      []);
  register "setStyle" 3 (fun _ args ->
      let prop = Xdm_item.sequence_string (List.nth args 1) in
      let v = Xdm_item.sequence_string (List.nth args 2) in
      List.iter
        (function
          | Xdm_item.Node n -> host.DC.set_style n prop v
          | Xdm_item.Atomic _ -> ())
        (List.nth args 0);
      []);
  (* deferred execution on the event loop — the Gears-style background
     work the paper contrasts with (§2.4 mentions threading); the named
     function runs as its own task after [delay] virtual milliseconds *)
  register "setTimeout" 2 (fun _ args ->
      let listener = Xquery.Eval.make_listener st.ctx (resolve_listener args 0) in
      let delay = 
        match Xdm_item.opt_atomic (List.nth args 1) with
        | Some a -> (
            match Xdm_atomic.cast ~target:Xdm_atomic.T_double a with
            | Xdm_atomic.Double f -> f /. 1000.
            | _ -> 0.)
        | None -> 0.
      in
      Virtual_clock.schedule b.Browser.clock ~delay (fun () ->
          listener.DC.invoke (fun () -> []));
      []);
  register "getStyle" 2 (fun _ args ->
      let prop = Xdm_item.sequence_string (List.nth args 1) in
      match List.nth args 0 with
      | Xdm_item.Node n :: _ -> (
          match host.DC.get_style n prop with
          | Some v -> [ Xdm_item.Atomic (Xdm_atomic.String v) ]
          | None -> [])
      | _ -> []);
  Hashtbl.replace states window.Windows.wid st;
  st

let state_for b window =
  match Hashtbl.find_opt states window.Windows.wid with
  | Some st -> st
  | None -> fresh_state b window

let traced ?attrs name f =
  if !Obs.Trace.enabled then Obs.Trace.with_span ?attrs name f else f ()

(* run one XQuery script source in the window's page context *)
let run_xquery_source b window source =
  traced "page.script" @@ fun () ->
  let st = state_for b window in
  let compiled = Xquery.Engine.compile_cached ~static:st.static source in
  (* install this script's closure-compiled functions before anything
     can call them (global initializers, the body, later event
     listeners): {!Xquery.Eval.call_function} dispatches user calls
     through the context's table, so per-event listener invocations
     run compiled code *)
  (match compiled.Xquery.Engine.code with
  | Some code when Xquery.Engine.compiled_eval_enabled () ->
      List.iter
        (fun (key, impl) ->
          Hashtbl.replace st.ctx.DC.compiled_fns key impl)
        code.Xquery.Compile.fns
  | _ -> ());
  (* refresh globals declared by this script's prolog *)
  List.iter
    (fun (qn, sty, init) ->
      match init with
      | Some e ->
          let v = Xquery.Eval.eval st.ctx e in
          let v =
            match sty with
            | Some sty ->
                Xquery.Seq_type.coerce ~what:("$" ^ Qname.to_string qn) sty v
            | None -> v
          in
          DC.bind_global st.ctx qn v
      | None -> ())
    (SC.global_variables st.static);
  let result =
    traced "engine.eval" @@ fun () ->
    match compiled.Xquery.Engine.prog.Xquery.Ast.body with
    | Some body -> (
        let eval_body () =
          match compiled.Xquery.Engine.code with
          | Some { Xquery.Compile.body = Some f; _ }
            when Xquery.Engine.compiled_eval_enabled () ->
              f st.ctx
          | _ -> Xquery.Eval.eval st.ctx body
        in
        try Xquery.Eval.protect eval_body
        with Xquery.Eval.Exit_with v -> v)
    | None -> (
        (* Zorba workaround fidelity (§5.1): page code with no body
           runs local:main() when the page is loaded, if declared *)
        let main = Qname.make ~uri:Qname.Ns.local "main" in
        match SC.find_function st.static main ~arity:0 with
        | Some _ -> (
            try Xquery.Eval.protect (fun () -> Xquery.Eval.call_function st.ctx main [])
            with Xquery.Eval.Exit_with v -> v)
        | None -> [])
  in
  Xquery.Pul.apply st.ctx.DC.pul;
  result

let run_xquery = run_xquery_source

(* ---------------- inline on* handlers ---------------- *)

(* The paper's §4.4 example writes onkeyup="local:showHint(value)"
   where [value] means the control's current value. We compile handler
   attributes as XQuery with the element as context item, after a
   textual shim replacing the bare token [value] with [data(@value)]. *)
let inline_providers :
    (Browser.t ->
    Windows.t ->
    element:Dom.node ->
    event_type:string ->
    source:string ->
    bool)
    list
    ref =
  ref []

let register_inline_handler_provider p = inline_providers := !inline_providers @ [ p ]

let value_token = Str.regexp "\\([^-A-Za-z0-9_$@/:.]\\|^\\)value\\([^-A-Za-z0-9_(]\\|$\\)"

let shim_handler_source src =
  Str.global_replace value_token "\\1data(@value)\\2" src

let wire_inline_handlers b window =
  let st = state_for b window in
  let doc = window.Windows.document in
  let elements =
    List.filter (fun n -> Dom.kind n = Dom.Element) (Dom.descendants doc)
  in
  List.iter
    (fun el ->
      List.iter
        (fun attr ->
          match (Dom.name attr, Dom.value attr) with
          | Some { Qname.local; _ }, Some source
            when String.length local > 2
                 && String.lowercase_ascii (String.sub local 0 2) = "on"
                 && String.length (String.trim source) > 0 -> (
              let event_type = String.lowercase_ascii local in
              if
                List.exists
                  (fun p -> p b window ~element:el ~event_type ~source)
                  !inline_providers
              then ()
              else
              let src = shim_handler_source source in
              match Xquery.Parser.parse_expression st.static src with
              | expr ->
                  ignore
                    (Dom_event.add_listener el ~event_type
                       ~name:("inline:" ^ string_of_int (Dom.id el) ^ ":" ^ event_type)
                       (fun _e ->
                         let ctx =
                           DC.with_focus st.ctx (Xdm_item.Node el) ~position:1
                             ~size:1
                         in
                         (try
                            ignore
                              (Xquery.Eval.protect (fun () ->
                                   Xquery.Eval.eval ctx expr))
                          with Xquery.Eval.Exit_with _ -> ());
                         Xquery.Pul.apply st.ctx.DC.pul))
              | exception _ ->
                  (* not XQuery (e.g. legacy JS snippet with no JS
                     engine loaded): ignore, like an unknown language *)
                  ())
          | _ -> ())
        (Dom.attributes el))
    elements

(* ---------------- page loading ---------------- *)

(* page fetches go through the browser's resilience policy: on a flaky
   network a navigation is retried with backoff before giving up *)
let fetch_page (b : Browser.t) uri =
  Retry.fetch ~policy:b.Browser.retry ~prng:b.Browser.net_prng
    ~stats:b.Browser.net_stats b.Browser.http uri

let script_elements doc =
  List.filter
    (fun n ->
      Dom.kind n = Dom.Element
      &&
      match Dom.name n with
      | Some { Qname.local; _ } -> String.lowercase_ascii local = "script"
      | None -> false)
    (Dom.descendants doc)

let script_type el =
  String.lowercase_ascii
    (Option.value ~default:"text/javascript" (Dom.attribute_local el "type"))

let script_source el = Dom.string_value el

let is_xquery_type ty = ty = "text/xquery" || ty = "text/xqueryp" || ty = "application/xquery"

let run_script b window el =
  let ty = script_type el in
  let source = script_source el in
  let record_error m =
    (* a failing script logs to the error console and the page keeps
       loading, as in a real browser *)
    b.Browser.script_errors <- m :: b.Browser.script_errors
  in
  if String.trim source = "" then ()
  else if is_xquery_type ty then (
    try ignore (run_xquery_source b window source)
    with Xquery.Xq_error.Error e ->
      record_error (Xquery.Xq_error.to_string e))
  else
    match Hashtbl.find_opt engines ty with
    | Some engine -> (
        try engine b window ~script_element:el ~source
        with exn -> record_error (Printexc.to_string exn))
    | None ->
        Logs.debug (fun m -> m "no script engine for %S; script skipped" ty)

let rec load ?(options = default_options) ?window (b : Browser.t) html =
  traced "page.load" @@ fun () ->
  let window = match window with Some w -> w | None -> b.Browser.top_window in
  (* navigations triggered from scripts re-enter the loader *)
  b.Browser.on_navigate <-
    (fun w href ->
      let resp = fetch_page b href in
      if resp.Http_sim.status = 200 then load ~options ~window:w b resp.Http_sim.body);
  Hashtbl.remove states window.Windows.wid;
  let parse_options =
    {
      Xml_parser.default_options with
      Xml_parser.uppercase_tags = b.Browser.uppercase_tags;
    }
  in
  let doc =
    traced "page.parse-html" (fun () ->
        Dom.of_tree (Xml_parser.parse ~options:parse_options html))
  in
  Browser.set_document b window doc;
  let scripts = script_elements doc in
  let ordered =
    match options.execution_order with
    | `Document_order -> scripts
    | `Js_first ->
        let js, rest =
          List.partition (fun el -> not (is_xquery_type (script_type el))) scripts
        in
        js @ rest
  in
  List.iter (run_script b window) ordered;
  if options.run_inline_handlers then wire_inline_handlers b window

and browse ?options ?window (b : Browser.t) uri =
  traced ~attrs:[ ("uri", uri) ] "page.browse" @@ fun () ->
  let window = match window with Some w -> w | None -> b.Browser.top_window in
  Windows.navigate window uri;
  let resp = fetch_page b uri in
  if resp.Http_sim.status <> 200 then
    Xquery.Xq_error.raise_error "SEBR0404" "cannot load %s: status %d" uri
      resp.Http_sim.status
  else load ?options ~window b resp.Http_sim.body
