type options = { width : int; show_hidden : bool }

let default_options = { width = 72; show_hidden = false }

let block_elements =
  [
    "html"; "head"; "body"; "div"; "p"; "ul"; "ol"; "li"; "table"; "tr";
    "form"; "h1"; "h2"; "h3"; "h4"; "h5"; "h6"; "br"; "hr"; "blockquote";
    "pre"; "section"; "article"; "header"; "footer"; "nav";
  ]

let skip_elements = [ "script"; "style"; "title"; "meta"; "link" ]

let local_of node =
  match Dom.name node with
  | Some q -> String.lowercase_ascii q.Xmlb.Qname.local
  | None -> ""

let is_hidden node =
  match Xquery.Style_util.get_on_node node "display" with
  | Some "none" -> true
  | _ -> false

(* greedy wrap of a word list to [width] *)
let wrap_words width words =
  let lines = ref [] in
  let current = Buffer.create width in
  let flush () =
    if Buffer.length current > 0 then begin
      lines := Buffer.contents current :: !lines;
      Buffer.clear current
    end
  in
  List.iter
    (fun w ->
      if Buffer.length current = 0 then Buffer.add_string current w
      else if Buffer.length current + 1 + String.length w <= width then begin
        Buffer.add_char current ' ';
        Buffer.add_string current w
      end
      else begin
        flush ();
        Buffer.add_string current w
      end)
    words;
  flush ();
  List.rev !lines

let words_of_text s =
  String.split_on_char ' '
    (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
  |> List.filter (fun w -> w <> "")

(* The renderer accumulates inline words until a block boundary, then
   wraps and emits them. *)
type state = {
  out : Buffer.t;
  mutable inline_words : string list;  (** reversed *)
  opts : options;
}

let emit_line st line =
  Buffer.add_string st.out line;
  Buffer.add_char st.out '\n'

let flush_inline ?(prefix = "") st =
  match List.rev st.inline_words with
  | [] -> ()
  | words ->
      st.inline_words <- [];
      List.iteri
        (fun i line -> emit_line st (if i = 0 then prefix ^ line else line))
        (wrap_words (st.opts.width - String.length prefix) words)

let add_words st ws = st.inline_words <- List.rev_append ws st.inline_words

let rec render_node st node =
  match Dom.kind node with
  | Dom.Text -> add_words st (words_of_text (Option.value ~default:"" (Dom.value node)))
  | Dom.Comment | Dom.Processing_instruction | Dom.Attribute -> ()
  | Dom.Document -> List.iter (render_node st) (Dom.children node)
  | Dom.Element -> render_element st node

and render_children st node = List.iter (render_node st) (Dom.children node)

and render_element st node =
  let tag = local_of node in
  if List.mem tag skip_elements then ()
  else if (not st.opts.show_hidden) && is_hidden node then ()
  else
    match tag with
    | "br" -> flush_inline st
    | "hr" ->
        flush_inline st;
        emit_line st (String.make st.opts.width '-')
    | "h1" | "h2" | "h3" | "h4" | "h5" | "h6" ->
        flush_inline st;
        let text = String.trim (Dom.string_value node) in
        emit_line st "";
        emit_line st text;
        let underline = if tag = "h1" then '=' else '-' in
        emit_line st (String.make (max 1 (String.length text)) underline)
    | "li" ->
        flush_inline st;
        st.inline_words <- [];
        render_children st node;
        flush_inline ~prefix:"  * " st
    | "tr" ->
        flush_inline st;
        let cells =
          List.filter
            (fun c -> List.mem (local_of c) [ "td"; "th" ])
            (Dom.children node)
        in
        let rendered =
          List.map (fun c -> String.trim (Dom.string_value c)) cells
        in
        if rendered <> [] then emit_line st ("| " ^ String.concat " | " rendered ^ " |")
    | "input" ->
        let value = Option.value ~default:"" (Dom.attribute_local node "value") in
        let ty =
          Option.value ~default:"text" (Dom.attribute_local node "type")
        in
        let widget =
          match ty with
          | "button" | "submit" -> Printf.sprintf "[ %s ]" (if value = "" then "button" else value)
          | "checkbox" -> "[x]"
          | _ -> Printf.sprintf "[%-10s]" value
        in
        add_words st [ widget ]
    | "button" ->
        add_words st [ Printf.sprintf "[ %s ]" (String.trim (Dom.string_value node)) ]
    | "img" ->
        let alt =
          match Dom.attribute_local node "alt" with
          | Some a when a <> "" -> a
          | _ -> Option.value ~default:"image" (Dom.attribute_local node "src")
        in
        add_words st [ Printf.sprintf "[img: %s]" alt ]
    | "a" ->
        render_children st node;
        (match Dom.attribute_local node "href" with
        | Some href -> add_words st [ Printf.sprintf "<%s>" href ]
        | None -> ())
    | "pre" ->
        flush_inline st;
        String.split_on_char '\n' (Dom.string_value node)
        |> List.iter (fun l -> emit_line st ("    " ^ l))
    | tag when List.mem tag block_elements ->
        flush_inline st;
        render_children st node;
        flush_inline st
    | _ ->
        (* inline element: flow its content *)
        render_children st node

let render ?(options = default_options) node =
  if !Obs.Metrics.enabled then Obs.Metrics.incr "render.count";
  let go () =
  let st = { out = Buffer.create 256; inline_words = []; opts = options } in
  render_node st node;
  flush_inline st;
  (* collapse runs of blank lines *)
  let lines = String.split_on_char '\n' (Buffer.contents st.out) in
  let rec squeeze = function
    | "" :: ("" :: _ as rest) -> squeeze rest
    | x :: rest -> x :: squeeze rest
    | [] -> []
  in
  let text = String.concat "\n" (squeeze lines) in
  (* strip leading/trailing blank space produced by block flushing *)
  String.trim text
  in
  if !Obs.Trace.enabled then Obs.Trace.with_span "render" go else go ()

let line_count ?options node =
  List.length (String.split_on_char '\n' (render ?options node))

(* ------------------------------------------------------------------ *)
(* Generation-keyed memo: every DOM mutation bumps the tree's accel
   generation (styles live in the [style] attribute, so they bump it
   too), making (node id, generation, options) a sound cache key. When
   reactive dispatch skips every listener an event would have run, the
   generation is unchanged and the re-render is a table lookup. *)

let memo_capacity = 64
let memo_table : (string, string) Hashtbl.t = Hashtbl.create memo_capacity

let render_cached ?(options = default_options) node =
  let key =
    Printf.sprintf "%d:%d:%d:%b" (Dom.id node) (Dom.generation node)
      options.width options.show_hidden
  in
  match Hashtbl.find_opt memo_table key with
  | Some text ->
      if !Obs.Metrics.enabled then Obs.Metrics.incr "render.memo.hit";
      text
  | None ->
      if !Obs.Metrics.enabled then Obs.Metrics.incr "render.memo.miss";
      if Hashtbl.length memo_table >= memo_capacity then
        Hashtbl.reset memo_table;
      let text = render ~options node in
      Hashtbl.add memo_table key text;
      text
