module DC = Xquery.Dynamic_context

type t = {
  clock : Virtual_clock.t;
  http : Http_sim.t;
  rest : Rest.client;
  top_window : Windows.t;
  screen : Bom.screen;
  navigator : Bom.navigator;
  policy : Origin.policy;
  uppercase_tags : bool;
  mutable alerts : string list;
  mutable prompt_response : string;
  mutable confirm_response : bool;
  mutable render_count : int;
  mutable ui_blocked : float;
  mutable events_dispatched : int;
  mutable doc_observer : Dom.observer_id option;
  mutable on_navigate : Windows.t -> string -> unit;
  local_store : Local_store.t;
  mutable online : bool;
  mutable script_errors : string list;
  mutable retry : Retry.policy;
  net_prng : Prng.t;
  net_stats : Retry.stats;
}

let create ?(cache = false) ?(policy = Origin.Same_origin) ?(uppercase_tags = false)
    ?(navigator = Bom.internet_explorer) ?(screen = Bom.default_screen) ?clock
    ?http ?(href = "http://localhost/") ?(retry = Retry.default)
    ?(net_fallback = false) ?(seed = 0) () =
  let clock = match clock with Some c -> c | None -> Virtual_clock.create () in
  let http = match http with Some h -> h | None -> Http_sim.create clock in
  let rest = Rest.make_client ~cache ~retry ~seed http in
  let t =
  {
    clock;
    http;
    rest;
    top_window = Windows.create ~name:"top_window" ~href ();
    screen;
    navigator;
    policy;
    uppercase_tags;
    alerts = [];
    prompt_response = "";
    confirm_response = true;
    render_count = 0;
    ui_blocked = 0.;
    events_dispatched = 0;
    doc_observer = None;
    on_navigate = (fun _ _ -> ());
    local_store = Local_store.create ();
    online = true;
    script_errors = [];
    retry;
    net_prng = Prng.create ~seed:(seed + 1);
    net_stats = Retry.make_stats ();
  }
  in
  Rest.set_online_guard rest (fun () -> t.online);
  (* graceful degradation (§2.4): back successful REST fetches into the
     per-origin Gears-style store, keyed by URI under the document's
     own origin, and serve them back when retries are exhausted *)
  if net_fallback then
    Rest.set_fallback rest
      ~put:(fun ~uri doc ->
        Local_store.put t.local_store ~origin:(Origin.of_uri uri) ~name:uri doc)
      ~get:(fun ~uri ->
        Local_store.get t.local_store ~origin:(Origin.of_uri uri) ~name:uri);
  t

let set_document t window doc =
  window.Windows.document <- doc;
  window.Windows.last_modified <-
    Xdm_datetime.date_time_to_string (Virtual_clock.to_datetime t.clock);
  if window == t.top_window then begin
    Option.iter Dom.unobserve t.doc_observer;
    t.doc_observer <-
      Some
        (Dom.observe ~root:doc (fun _ ->
             t.render_count <- t.render_count + 1;
             window.Windows.last_modified <-
               Xdm_datetime.date_time_to_string (Virtual_clock.to_datetime t.clock)))
  end

let document t = t.top_window.Windows.document
let alerts t = List.rev t.alerts
let clear_alerts t = t.alerts <- []

(* memoized: re-rendering a page no event actually changed is a lookup *)
let render ?options t = Renderer.render_cached ?options (document t)

let dispatch t ?(detail = []) ~target event_type =
  let t0 = Virtual_clock.now t.clock in
  t.events_dispatched <- t.events_dispatched + 1;
  if !Obs.Metrics.enabled then Obs.Metrics.incr "browser.events";
  let fire () = ignore (Dom_event.fire ~detail ~event_type ~target ()) in
  if !Obs.Trace.enabled then
    Obs.Trace.with_span ~attrs:[ ("event", event_type) ] "browser.dispatch" fire
  else fire ();
  t.ui_blocked <- t.ui_blocked +. (Virtual_clock.now t.clock -. t0)

let click t node =
  dispatch t ~detail:[ ("button", "0"); ("altKey", "false") ] ~target:node "onclick";
  dispatch t ~target:node "click"

let value_qn = Xmlb.Qname.make "value"

let type_text t node text =
  String.iter
    (fun c ->
      let current = Option.value ~default:"" (Dom.attribute_local node "value") in
      Dom.set_attribute node value_qn (current ^ String.make 1 c);
      dispatch t
        ~detail:[ ("key", String.make 1 c) ]
        ~target:node "onkeyup")
    text

let run t =
  if !Obs.Trace.enabled then
    Obs.Trace.with_span "browser.event-loop" (fun () ->
        Virtual_clock.run_until_idle t.clock)
  else Virtual_clock.run_until_idle t.clock

(* give the observability layer the browser's notion of time, so span
   durations line up with the deterministic event loop *)
let connect_obs t = Obs.Trace.set_clock (fun () -> Virtual_clock.now t.clock)

let host_for t window =
  let default = DC.default_host in
  {
    default with
    DC.attach_behind =
      (fun ~event_type ~computation ~listener ->
        ignore event_type;
        (* non-blocking: the computation runs as its own event-loop
           task; signals mimic XMLHttpRequest readyState (§4.4) *)
        Virtual_clock.schedule t.clock ~delay:0. (fun () ->
            listener.DC.invoke (fun () ->
                [ [ Xdm_item.Atomic (Xdm_atomic.Integer 1) ]; [] ]);
            match computation () with
            | result ->
                Virtual_clock.schedule t.clock ~delay:0. (fun () ->
                    listener.DC.invoke (fun () ->
                        [ [ Xdm_item.Atomic (Xdm_atomic.Integer 4) ]; result ]))
            | exception Xquery.Xq_error.Error e ->
                (* a failing async call must not kill the event loop:
                   record it like a browser's network error console and
                   signal the listener with readyState 0 (the XHR error
                   state) carrying the message, so page code can react
                   instead of silently never reaching readyState 4 *)
                let msg = Xquery.Xq_error.to_string e in
                t.script_errors <- msg :: t.script_errors;
                Virtual_clock.schedule t.clock ~delay:0. (fun () ->
                    listener.DC.invoke (fun () ->
                        [
                          [ Xdm_item.Atomic (Xdm_atomic.Integer 0) ];
                          [ Xdm_item.Atomic (Xdm_atomic.String msg) ];
                        ]))));
    DC.trigger =
      (fun ~event_type ~targets ->
        List.iter
          (function
            | Xdm_item.Node n -> dispatch t ~target:n event_type
            | Xdm_item.Atomic _ -> ())
          targets);
    DC.doc =
      (fun uri ->
        Xquery.Xq_error.raise_error Xquery.Xq_error.security
          "fn:doc(%S) is blocked in the browser (use rest:get)" uri);
    DC.doc_available = (fun _ -> false);
    DC.put =
      (fun _ uri ->
        Xquery.Xq_error.raise_error Xquery.Xq_error.security
          "fn:put to %S is blocked in the browser" uri);
    DC.now = (fun () -> Virtual_clock.to_datetime t.clock);
    DC.alert =
      (fun msg ->
        ignore window;
        t.alerts <- msg :: t.alerts);
    DC.listener_error = (fun m -> t.script_errors <- m :: t.script_errors);
  }
