(** The XQuery evaluator: expressions, FLWOR, paths, constructors,
    updates (pending update lists), scripting blocks, and the browser
    extension expressions (dispatched to the host hooks). *)

open Xmlb

(** Raised by the scripting [exit with] statement; caught at function
    and program boundaries. *)
exception Exit_with of Xdm_item.sequence

(** Raised by scripting [break]/[continue]; caught by the nearest
    enclosing [while] and converted to an error at function and
    program boundaries. *)
exception Break_loop

exception Continue_loop

(** Convert stray data-model exceptions ({!Xdm_atomic.Type_error},
    {!Xdm_atomic.Cast_error}, [Division_by_zero]) raised by [f] into
    {!Xq_error.Error}. All public entry points route through this. *)
val protect : (unit -> 'a) -> 'a

val eval : Dynamic_context.t -> Ast.expr -> Xdm_item.sequence

(** Streaming ablation switch (default on; mirrors
    {!Dom.set_acceleration}). When enabled, early-exit consumers —
    EBV contexts, quantifiers, [fn:exists]/[fn:empty]/[fn:head]/
    [fn:subsequence], [fn:count] compared against an integer literal,
    and bounded positional takes — pull items through lazy
    {!Xdm_seq} cursors instead of materialising whole sequences.
    When disabled, every expression evaluates eagerly (the QCheck
    oracle path). *)
val set_streaming : bool -> unit

val streaming_enabled : unit -> bool

(** Evaluate to a lazy pull cursor. Falls back to eager evaluation
    (wrapped in a materialised cursor) when streaming is disabled,
    for updating expressions, and for expression forms that do not
    benefit from laziness. *)
val eval_seq : Dynamic_context.t -> Ast.expr -> Xdm_seq.t

(** Evaluate a block of statements. [script] selects scripting
    semantics (updates applied at every statement boundary, paper
    §3.3); otherwise the block must be a single expression statement. *)
val eval_block :
  Dynamic_context.t -> script:bool -> Ast.statement list -> Xdm_item.sequence

(** Call a declared/external/built-in function by name with already
    evaluated arguments. *)
val call_function :
  Dynamic_context.t -> Qname.t -> Xdm_item.sequence list -> Xdm_item.sequence

(** Build a host listener that invokes the named function (padding or
    truncating arguments to its arity) and then applies pending
    updates — the paper's listener execution cycle (Fig. 1). *)
val make_listener : Dynamic_context.t -> Qname.t -> Dynamic_context.listener

(** {2 Shared building blocks for the closure compiler}

    {!Compile} emits closures that must behave exactly like the
    tree-walker; it reuses the evaluator's axis/index/comparison
    machinery instead of re-implementing it. *)

(** Maximum user-function recursion depth (raises XQDY0054 beyond). *)
val max_depth : int

(** Nodes selected by one axis step (uses the local-name index for
    descendant name tests when DOM acceleration is on). *)
val step_nodes : Ast.axis -> Ast.node_test -> Dom.node -> Dom.node list

val node_test_matches : axis:Ast.axis -> Ast.node_test -> Dom.node -> bool

(** Serve a leading [@k eq 'lit']-style predicate from the per-root
    value index: [Some (candidates, remaining_preds)] or [None] to
    fall back to a scan. *)
val value_index_step :
  Ast.axis ->
  Ast.node_test ->
  Ast.expr list ->
  Dom.node ->
  (Dom.node list * Ast.expr list) option

val value_compare_pair : Ast.value_comp -> Xdm_atomic.t -> Xdm_atomic.t -> bool
val general_compare_pair : Ast.value_comp -> Xdm_atomic.t -> Xdm_atomic.t -> bool

(** Normalize a constructor content sequence into (attributes,
    children) per the XQuery constructor rules. *)
val normalize_content : Xdm_item.sequence -> Dom.node list * Dom.node list

val qname_of_value : Dynamic_context.t -> Xdm_atomic.t -> Qname.t
