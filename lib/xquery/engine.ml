open Xmlb

type compiled = {
  prog : Ast.prog;
  static : Static_context.t;
  code : Compile.prog_code option;
      (* closure-compiled body + function table; None when compiled
         evaluation was off at compile time *)
}

let set_compiled_eval = Compile.set_compiled_eval
let compiled_eval_enabled = Compile.enabled

let default_static () = Static_context.create ()

(* Tie the knot: module imports encountered by the parser load and
   register library modules through the static context's resolver. *)
let load_module sctx ~uri ~locations =
  if Static_context.is_imported sctx uri then ()
  else begin
    Static_context.mark_imported sctx uri;
    match Static_context.resolve_module sctx ~uri ~locations with
    | Static_context.Module_source src ->
        let prog = Parser.parse_program sctx src in
        (match prog.Ast.library_module with
        | Some m when not (String.equal m.Ast.mod_uri uri) ->
            Xq_error.raise_error "XQST0059"
              "module at %S declares namespace %S, expected %S"
              (String.concat "," locations) m.Ast.mod_uri uri
        | _ -> ())
    | Static_context.Module_external fns ->
        List.iter
          (fun (qn, arity, impl) ->
            Static_context.register_external sctx qn ~arity impl)
          fns
    | Static_context.Module_not_found ->
        Xq_error.raise_error "XQST0059" "cannot locate module %S" uri
  end

let () = Parser.module_loader := load_module

let compile ?(optimize = true) ?static source =
  let traced name f =
    if !Obs.Trace.enabled then Obs.Trace.with_span name f else f ()
  in
  traced "engine.compile" @@ fun () ->
  let static = match static with Some s -> s | None -> default_static () in
  let prog =
    traced "engine.parse" (fun () -> Parser.parse_program static source)
  in
  let prog =
    if optimize then traced "engine.optimize" (fun () -> Optimizer.optimize prog)
    else prog
  in
  (* Re-register optimized prolog declarations: the parser stored the
     un-optimized function bodies and variable initializers in the
     static context as it read them, so both must be swapped for their
     optimized forms (variables in place, to keep evaluation order). *)
  if optimize then
    List.iter
      (function
        | Ast.P_function f -> Static_context.declare_function static f
        | Ast.P_variable (qn, st, e) ->
            Static_context.redeclare_variable static qn st e
        | _ -> ())
      prog.Ast.prolog;
  if !Obs.Metrics.enabled then
    Obs.Metrics.incr ~by:(String.length source) "engine.source-bytes";
  let code =
    if Compile.enabled () then
      Some
        (traced "engine.compile-closures" (fun () ->
             Compile.compile_prog static prog))
    else None
  in
  { prog; static; code }

(* ------------------------------------------------------------------ *)
(* compiled-query cache                                                *)

let query_cache : compiled Query_cache.t =
  Query_cache.create ~name:"query-cache" ~capacity:256 ()

(* Replay a cached compilation's prolog into [static], reproducing
   every side effect the parser + [compile] would have had: namespace
   and default declarations, (optimized) function and variable
   registrations, options and module imports. After this, [static] can
   evaluate the cached program exactly as if it had compiled the source
   itself — but with {e its own} external-function implementations and
   module resolver, which is why cache hits re-bind the static context
   instead of reusing the frozen one. *)
let replay compiled static =
  List.iter
    (function
      | Ast.P_namespace (prefix, uri) ->
          Static_context.declare_namespace static ~prefix ~uri
      | Ast.P_default_element_ns uri ->
          Static_context.declare_default_element_ns static uri
      | Ast.P_default_function_ns uri ->
          Static_context.declare_default_function_ns static uri
      | Ast.P_boundary_space_preserve b ->
          Static_context.set_boundary_space_preserve static b
      | Ast.P_variable (qn, st, e) ->
          Static_context.redeclare_variable static qn st e
      | Ast.P_function f -> Static_context.declare_function static f
      | Ast.P_option (qn, v) -> Static_context.set_option static qn v
      | Ast.P_module_import { prefix; uri; locations } ->
          (match prefix with
          | Some prefix -> Static_context.declare_namespace static ~prefix ~uri
          | None -> ());
          load_module static ~uri ~locations)
    compiled.prog.Ast.prolog

let cache_key ~optimize fingerprint source =
  (* the join-planning switch changes what [optimize] produces, so it
     must key the cache too or toggling it would serve stale plans *)
  (if optimize then "O1|" else "O0|")
  ^ (if Optimizer.join_planning_enabled () then "J1|" else "J0|")
  ^ (if Compile.enabled () then "C1|" else "C0|")
  ^ fingerprint ^ "|" ^ source

let compile_cached ?(optimize = true) ?static source =
  if not !Query_cache.enabled then compile ~optimize ?static source
  else begin
    let traced name f =
      if !Obs.Trace.enabled then Obs.Trace.with_span name f else f ()
    in
    let static = match static with Some s -> s | None -> default_static () in
    (* fingerprint before parsing: the key captures the context the
       source is compiled *against*, not the one it produces *)
    let fp =
      traced "engine.fingerprint" (fun () -> Static_context.fingerprint static)
    in
    let key = cache_key ~optimize fp source in
    match Query_cache.find query_cache key with
    | Some cached ->
        traced "engine.cache-replay" (fun () -> replay cached static);
        { cached with static }
    | None ->
        let c = compile ~optimize ~static source in
        (* freeze a private copy: the caller goes on mutating [static] *)
        Query_cache.add query_cache key ~cost:(String.length source)
          { c with static = Static_context.copy static };
        c
  end

let context_for ?host ?context_item ?(bindings = []) compiled =
  let ctx = Dynamic_context.create ?host compiled.static in
  (* install compiled function bodies before anything can call them
     (global-variable initializers may) *)
  (match compiled.code with
  | Some code when Compile.enabled () ->
      List.iter
        (fun (key, impl) ->
          Hashtbl.replace ctx.Dynamic_context.compiled_fns key impl)
        code.Compile.fns
  | _ -> ());
  let ctx =
    match context_item with
    | Some item -> Dynamic_context.with_focus ctx item ~position:1 ~size:1
    | None -> ctx
  in
  List.iter (fun (qn, v) -> Dynamic_context.bind_global ctx qn v) bindings;
  (* evaluate global variable declarations in order *)
  List.iter
    (fun (qn, st, init) ->
      match init with
      | Some e ->
          let v = Eval.protect (fun () -> Eval.eval ctx e) in
          let v =
            match st with
            | Some st ->
                Seq_type.coerce ~what:("$" ^ Qname.to_string qn) st v
            | None -> v
          in
          Dynamic_context.bind_global ctx qn v
      | None -> (
          (* external variable: the caller must supply a value, which
             is checked against the declared type (XQuery §2.2.3.2) *)
          match List.find_opt (fun (b, _) -> Qname.equal b qn) bindings with
          | Some (_, v) ->
              let v =
                match st with
                | Some st ->
                    Seq_type.coerce ~what:("$" ^ Qname.to_string qn) st v
                | None -> v
              in
              Dynamic_context.bind_global ctx qn v
          | None ->
              Xq_error.raise_error "XPDY0002"
                "external variable $%s has no value" (Qname.to_string qn)))
    (Static_context.global_variables compiled.static);
  ctx

let eval_body ctx compiled =
  let compiled_body =
    match compiled.code with
    | Some { Compile.body = Some f; _ } when Compile.enabled () -> Some f
    | _ -> None
  in
  match (compiled_body, compiled.prog.Ast.body) with
  | None, None -> []
  | Some f, _ -> (
      try Eval.protect (fun () -> f ctx) with
      | Eval.Exit_with v -> v
      | Eval.Break_loop | Eval.Continue_loop ->
          Xq_error.raise_error "XSST0010"
            "break/continue outside of a while loop")
  | None, Some body -> (
      try Eval.protect (fun () -> Eval.eval ctx body) with
      | Eval.Exit_with v -> v
      | Eval.Break_loop | Eval.Continue_loop ->
          Xq_error.raise_error "XSST0010"
            "break/continue outside of a while loop")

let run ?host ?context_item ?bindings compiled =
  let traced name f =
    if !Obs.Trace.enabled then Obs.Trace.with_span name f else f ()
  in
  traced "engine.run" @@ fun () ->
  let ctx =
    traced "engine.context" (fun () ->
        context_for ?host ?context_item ?bindings compiled)
  in
  let result = traced "engine.eval" (fun () -> eval_body ctx compiled) in
  Pul.apply ctx.Dynamic_context.pul;
  result

let eval_string ?optimize ?static ?host ?context_item ?bindings source =
  run ?host ?context_item ?bindings (compile_cached ?optimize ?static source)

let call ctx qn args = Eval.protect (fun () -> Eval.call_function ctx qn args)
