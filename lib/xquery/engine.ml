open Xmlb

type compiled = { prog : Ast.prog; static : Static_context.t }

let default_static () = Static_context.create ()

(* Tie the knot: module imports encountered by the parser load and
   register library modules through the static context's resolver. *)
let load_module sctx ~uri ~locations =
  if Static_context.is_imported sctx uri then ()
  else begin
    Static_context.mark_imported sctx uri;
    match Static_context.resolve_module sctx ~uri ~locations with
    | Static_context.Module_source src ->
        let prog = Parser.parse_program sctx src in
        (match prog.Ast.library_module with
        | Some m when not (String.equal m.Ast.mod_uri uri) ->
            Xq_error.raise_error "XQST0059"
              "module at %S declares namespace %S, expected %S"
              (String.concat "," locations) m.Ast.mod_uri uri
        | _ -> ())
    | Static_context.Module_external fns ->
        List.iter
          (fun (qn, arity, impl) ->
            Static_context.register_external sctx qn ~arity impl)
          fns
    | Static_context.Module_not_found ->
        Xq_error.raise_error "XQST0059" "cannot locate module %S" uri
  end

let () = Parser.module_loader := load_module

let compile ?(optimize = true) ?static source =
  let traced name f =
    if !Obs.Trace.enabled then Obs.Trace.with_span name f else f ()
  in
  traced "engine.compile" @@ fun () ->
  let static = match static with Some s -> s | None -> default_static () in
  let prog =
    traced "engine.parse" (fun () -> Parser.parse_program static source)
  in
  let prog =
    if optimize then traced "engine.optimize" (fun () -> Optimizer.optimize prog)
    else prog
  in
  (* re-register optimized function bodies *)
  if optimize then
    List.iter
      (function
        | Ast.P_function f -> Static_context.declare_function static f
        | _ -> ())
      prog.Ast.prolog;
  if !Obs.Metrics.enabled then
    Obs.Metrics.incr ~by:(String.length source) "engine.source-bytes";
  { prog; static }

let context_for ?host ?context_item ?(bindings = []) compiled =
  let ctx = Dynamic_context.create ?host compiled.static in
  let ctx =
    match context_item with
    | Some item -> Dynamic_context.with_focus ctx item ~position:1 ~size:1
    | None -> ctx
  in
  List.iter (fun (qn, v) -> Dynamic_context.bind_global ctx qn v) bindings;
  (* evaluate global variable declarations in order *)
  List.iter
    (fun (qn, st, init) ->
      match init with
      | Some e ->
          let v = Eval.protect (fun () -> Eval.eval ctx e) in
          let v =
            match st with
            | Some st ->
                Seq_type.coerce ~what:("$" ^ Qname.to_string qn) st v
            | None -> v
          in
          Dynamic_context.bind_global ctx qn v
      | None ->
          (* external variable: keep a pre-bound value if provided *)
          if not (List.exists (fun (b, _) -> Qname.equal b qn) bindings) then
            ())
    (Static_context.global_variables compiled.static);
  ctx

let eval_body ctx compiled =
  match compiled.prog.Ast.body with
  | None -> []
  | Some body -> (
      try Eval.protect (fun () -> Eval.eval ctx body) with
      | Eval.Exit_with v -> v
      | Eval.Break_loop | Eval.Continue_loop ->
          Xq_error.raise_error "XSST0010"
            "break/continue outside of a while loop")

let run ?host ?context_item ?bindings compiled =
  let traced name f =
    if !Obs.Trace.enabled then Obs.Trace.with_span name f else f ()
  in
  traced "engine.run" @@ fun () ->
  let ctx =
    traced "engine.context" (fun () ->
        context_for ?host ?context_item ?bindings compiled)
  in
  let result = traced "engine.eval" (fun () -> eval_body ctx compiled) in
  Pul.apply ctx.Dynamic_context.pul;
  result

let eval_string ?optimize ?static ?host ?context_item ?bindings source =
  run ?host ?context_item ?bindings (compile ?optimize ?static source)

let call ctx qn args = Eval.protect (fun () -> Eval.call_function ctx qn args)
