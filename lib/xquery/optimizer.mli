(** A rule-based expression rewriter, run to a (budgeted) fixpoint.

    The paper motivates XQuery in the browser partly by its
    optimisability ("XQuery is carefully designed to be highly
    optimisable", §1); this module implements a representative set of
    algebraic rewrites so the claim can be measured (bench T5):

    - constant folding of arithmetic, logic, conditionals and
      [fn:concat] over literals;
    - [descendant-or-self::node()/child::x] → [descendant::x], guarded
      by a conservative positional-predicate analysis;
    - trivial-predicate, self-step and singleton-sequence elimination;
    - [fn:count(e) = 0] → [fn:empty(e)], [> 0] → [fn:exists(e)];
    - general comparison of singleton literals → value comparison;
    - inlining of [let $x := <literal>] clauses.

    Each pass is a bottom-up map; because one rewrite can expose
    another (inlining a let uncovers constant arithmetic, folding
    concat uncovers a literal comparison), passes repeat until none
    fires or [max_passes] is exhausted (default 10).

    Rewrites never fire on updating or side-effecting nodes
    themselves; pure subexpressions inside them are still
    simplified. *)

val optimize_expr : ?max_passes:int -> Ast.expr -> Ast.expr
val optimize : ?max_passes:int -> Ast.prog -> Ast.prog

(** The equi-join planner: rewrites two-[for] FLWORs whose first
    where-conjunct compares variable-rooted step paths with [eq]/[=]
    into {!Ast.E_hash_join}. Separate switch (on by default) so the
    nested-loop plan stays selectable as the differential-testing
    oracle and bench baseline. Changing it invalidates nothing by
    itself — {!Engine} keys its compiled-query cache on it. *)

val set_join_planning : bool -> unit
val join_planning_enabled : unit -> bool

(** Number of rewrites fired since start (for tests and the ablation
    bench report). *)
val rewrite_count : unit -> int

(** Number of passes the most recent {!optimize}/{!optimize_expr} ran
    (≥ 1; the last pass is the one that fired nothing). *)
val last_passes : unit -> int

(** Exposed for tests: does any predicate in the list potentially
    observe the focus position (numeric value, [fn:position]/[fn:last],
    or a call into user code)? Conservative — unrecognized forms count
    as positional. *)
val has_positional : Ast.expr list -> bool

(** Needs-last / needs-position analyses for the streaming evaluator:
    does the expression observe the focus [size] (resp. [position]) —
    directly via [fn:last]/[fn:position] or through an opaque
    user/external call (function bodies see the caller's focus)?
    Computing a focus size forces materialisation; position streams as
    an incremental counter. Conservative: unknown calls count. *)

val uses_last : Ast.expr -> bool
val uses_position : Ast.expr -> bool

(** [a op b] ⟺ [b (mirror_comp op) a] — the operand-swap mirror of a
    comparison operator (not its negation). *)
val mirror_comp : Ast.value_comp -> Ast.value_comp
