open Xmlb
module L = Lexer

type state = { lx : L.t; sctx : Static_context.t; mutable env : Qname.Env.t }

let fail st fmt =
  let line, col = L.position st.lx in
  Printf.ksprintf
    (fun m ->
      Xq_error.raise_error Xq_error.syntax "line %d, col %d: %s" line col m)
    fmt

let peek st = L.peek st.lx
let next st = L.next st.lx

let peek2 st =
  let snap = L.save st.lx in
  let _ = L.next st.lx in
  let t = L.peek st.lx in
  L.restore st.lx snap;
  t

let expect st tok what =
  let got = next st in
  if got <> tok then fail st "expected %s, found %s" what (L.token_to_string got)

let accept st tok = if peek st = tok then (ignore (next st); true) else false

(* Keyword = an unprefixed name token with the given text. *)
let peek_kw st =
  match peek st with L.T_name n -> Some n | _ -> None

let accept_kw st kw =
  match peek st with
  | L.T_name n when String.equal n kw ->
      ignore (next st);
      true
  | _ -> false

let expect_kw st kw =
  if not (accept_kw st kw) then
    fail st "expected keyword %S, found %s" kw (L.token_to_string (peek st))

let expect_string st =
  match next st with
  | L.T_string s -> s
  | t -> fail st "expected a string literal, found %s" (L.token_to_string t)

let expect_ncname st =
  match next st with
  | L.T_name n -> n
  | t -> fail st "expected a name, found %s" (L.token_to_string t)

(* Reserved unprefixed function names (cannot be user function calls). *)
let reserved_function_names =
  [
    "attribute"; "comment"; "document-node"; "element"; "empty-sequence";
    "if"; "item"; "node"; "processing-instruction"; "schema-attribute";
    "schema-element"; "text"; "typeswitch"; "while";
  ]

(* ---------------- name resolution ---------------- *)

let resolve_with st ~use_default qn =
  match qn.Qname.uri with
  | Some _ -> qn
  | None -> (
      match qn.Qname.prefix with
      | None ->
          if use_default then Qname.with_uri qn (Qname.Env.default st.env)
          else qn
      | Some p -> (
          match Qname.Env.lookup st.env p with
          | Some uri -> Qname.with_uri qn (Some uri)
          | None -> fail st "unbound namespace prefix %S" p))

let resolve_element st qn = resolve_with st ~use_default:true qn
let resolve_other st qn = resolve_with st ~use_default:false qn

let resolve_function st qn =
  match (qn.Qname.uri, qn.Qname.prefix) with
  | Some _, _ -> qn
  | None, None ->
      Qname.with_uri qn (Some (Static_context.default_function_ns st.sctx))
  | None, Some _ -> resolve_other st qn

let qname_of_token st = function
  | L.T_name n -> Qname.make n
  | L.T_qname (p, l) -> Qname.make ~prefix:p l
  | t -> fail st "expected a QName, found %s" (L.token_to_string t)

let expect_qname st = qname_of_token st (next st)

let var_name st =
  match next st with
  | L.T_var (local, prefix) -> resolve_other st (Qname.make ?prefix local)
  | t -> fail st "expected a variable name, found %s" (L.token_to_string t)

(* ---------------- sequence types ---------------- *)

let rec parse_kind_test st kw : Ast.kind_test =
  ignore (next st) (* the keyword *);
  expect st L.T_lpar "'('";
  let kt =
    match kw with
    | "node" -> Ast.Any_kind
    | "text" -> Ast.Text_kind
    | "comment" -> Ast.Comment_kind
    | "document-node" ->
        (* allow document-node(element(...)) — we ignore the inner test *)
        (match peek st with
        | L.T_name "element" -> ignore (parse_kind_test st "element")
        | _ -> ());
        Ast.Document_kind
    | "processing-instruction" -> (
        match peek st with
        | L.T_name n ->
            ignore (next st);
            Ast.Pi_kind (Some n)
        | L.T_string s ->
            ignore (next st);
            Ast.Pi_kind (Some s)
        | _ -> Ast.Pi_kind None)
    | "element" | "schema-element" -> (
        match peek st with
        | L.T_rpar | L.T_star -> (
            if peek st = L.T_star then ignore (next st);
            Ast.Element_kind None)
        | t ->
            let qn = resolve_element st (qname_of_token st (next st)) in
            ignore t;
            (* optional type name: element(name, type) — ignore the type *)
            if accept st L.T_comma then ignore (next st);
            Ast.Element_kind (Some qn))
    | "attribute" | "schema-attribute" -> (
        match peek st with
        | L.T_rpar | L.T_star -> (
            if peek st = L.T_star then ignore (next st);
            Ast.Attribute_kind None)
        | _ ->
            let qn = resolve_other st (expect_qname st) in
            if accept st L.T_comma then ignore (next st);
            Ast.Attribute_kind (Some qn))
    | _ -> fail st "unknown kind test %s()" kw
  in
  expect st L.T_rpar "')'";
  kt

let kind_test_keywords =
  [
    "node"; "text"; "comment"; "processing-instruction"; "element"; "attribute";
    "document-node"; "schema-element"; "schema-attribute";
  ]

let atomic_type_of_qname st qn =
  let qn = resolve_element st qn in
  let in_xs =
    match qn.Qname.uri with
    | Some u -> String.equal u Qname.Ns.xs
    | None -> qn.Qname.prefix = None
  in
  if not in_xs then fail st "unknown atomic type %s" (Qname.to_string qn)
  else
    match Xdm_atomic.type_of_name qn.Qname.local with
    | Some t -> t
    | None -> fail st "unknown atomic type xs:%s" qn.Qname.local

let parse_occurrence st : Ast.occurrence =
  match peek st with
  | L.T_question ->
      ignore (next st);
      Ast.Occ_optional
  | L.T_star ->
      ignore (next st);
      Ast.Occ_star
  | L.T_plus ->
      ignore (next st);
      Ast.Occ_plus
  | _ -> Ast.Occ_one

let parse_sequence_type st : Ast.seq_type =
  match peek st with
  | L.T_name "empty-sequence" when peek2 st = L.T_lpar ->
      ignore (next st);
      expect st L.T_lpar "'('";
      expect st L.T_rpar "')'";
      Ast.St_empty
  | L.T_name "item" when peek2 st = L.T_lpar ->
      ignore (next st);
      expect st L.T_lpar "'('";
      expect st L.T_rpar "')'";
      Ast.St (Ast.It_item, parse_occurrence st)
  | L.T_name kw when List.mem kw kind_test_keywords && peek2 st = L.T_lpar ->
      let kt = parse_kind_test st kw in
      Ast.St (Ast.It_kind kt, parse_occurrence st)
  | L.T_name _ | L.T_qname _ ->
      let qn = expect_qname st in
      let ty = atomic_type_of_qname st qn in
      Ast.St (Ast.It_atomic ty, parse_occurrence st)
  | t -> fail st "expected a sequence type, found %s" (L.token_to_string t)

let parse_single_type st =
  let qn = expect_qname st in
  let ty = atomic_type_of_qname st qn in
  let optional = accept st L.T_question in
  (ty, optional)

(* ---------------- expressions ---------------- *)

let rec parse_expr st : Ast.expr =
  let first = parse_expr_single st in
  if peek st = L.T_comma then begin
    let items = ref [ first ] in
    while accept st L.T_comma do
      items := parse_expr_single st :: !items
    done;
    Ast.E_sequence (List.rev !items)
  end
  else first

and parse_expr_single st : Ast.expr =
  match (peek st, peek2 st) with
  | L.T_name ("for" | "let"), L.T_var _ -> parse_flwor st
  | L.T_name ("some" | "every"), L.T_var _ -> parse_quantified st
  | L.T_name "typeswitch", L.T_lpar -> parse_typeswitch st
  | L.T_name "if", L.T_lpar -> parse_if st
  | L.T_name "insert", L.T_name ("node" | "nodes") -> parse_insert st
  | L.T_name "delete", L.T_name ("node" | "nodes") -> parse_delete st
  | L.T_name "replace", L.T_name ("node" | "value") -> parse_replace st
  | L.T_name "rename", L.T_name "node" -> parse_rename st
  | L.T_name "copy", L.T_var _ -> parse_transform st
  | L.T_name "do", L.T_name ("insert" | "delete" | "replace" | "rename") ->
      (* scripting-draft style "do replace ..." (paper §4.4) *)
      ignore (next st);
      parse_expr_single st
  | L.T_name "on", L.T_name "event" -> parse_event_attach_detach st
  | L.T_name "trigger", L.T_name "event" -> parse_event_trigger st
  | L.T_name "set", L.T_name "style" -> parse_set_style st
  | L.T_name "get", L.T_name "style" -> parse_get_style st
  | L.T_name "block", L.T_lbrace ->
      ignore (next st);
      parse_block st
  (* bare break/continue in expression position (e.g. `if ... then
     break else ()`): only when clearly terminal *)
  | L.T_name "break", (L.T_semi | L.T_rbrace | L.T_rpar | L.T_eof | L.T_name "else") ->
      ignore (next st);
      Ast.E_block [ Ast.S_break ]
  | L.T_name "continue", (L.T_semi | L.T_rbrace | L.T_rpar | L.T_eof | L.T_name "else") ->
      ignore (next st);
      Ast.E_block [ Ast.S_continue ]
  | L.T_lbrace, _ -> parse_block st
  | _ -> parse_or st

and parse_flwor st =
  let clauses = ref [] in
  let rec clause_loop () =
    match peek_kw st with
    | Some "for" when (match peek2 st with L.T_var _ -> true | _ -> false) ->
        ignore (next st);
        let rec one () =
          let var = var_name st in
          let var_type =
            if accept_kw st "as" then Some (parse_sequence_type st) else None
          in
          let pos_var = if accept_kw st "at" then Some (var_name st) else None in
          expect_kw st "in";
          let source = parse_expr_single st in
          clauses := Ast.For_clause { var; pos_var; var_type; source } :: !clauses;
          if accept st L.T_comma then one ()
        in
        one ();
        clause_loop ()
    | Some "let" when (match peek2 st with L.T_var _ -> true | _ -> false) ->
        ignore (next st);
        let rec one () =
          let var = var_name st in
          let var_type =
            if accept_kw st "as" then Some (parse_sequence_type st) else None
          in
          expect st L.T_colonequals "':='";
          let value = parse_expr_single st in
          clauses := Ast.Let_clause { var; var_type; value } :: !clauses;
          if accept st L.T_comma then one ()
        in
        one ();
        clause_loop ()
    | _ -> ()
  in
  clause_loop ();
  if !clauses = [] then fail st "expected 'for' or 'let' clause";
  let where = if accept_kw st "where" then Some (parse_expr_single st) else None in
  let order =
    let stable = peek_kw st = Some "stable" && peek2 st = L.T_name "order" in
    if stable then ignore (next st);
    if accept_kw st "order" then begin
      expect_kw st "by";
      let rec specs acc =
        let key = parse_expr_single st in
        let descending =
          if accept_kw st "descending" then true
          else begin
            ignore (accept_kw st "ascending");
            false
          end
        in
        let empty_greatest =
          if accept_kw st "empty" then
            if accept_kw st "greatest" then Some true
            else begin
              expect_kw st "least";
              Some false
            end
          else None
        in
        let acc = { Ast.key; descending; empty_greatest } :: acc in
        if accept st L.T_comma then specs acc else List.rev acc
      in
      specs []
    end
    else []
  in
  expect_kw st "return";
  let return = parse_expr_single st in
  Ast.E_flwor { clauses = List.rev !clauses; where; order; return }

and parse_quantified st =
  let quant =
    match next st with
    | L.T_name "some" -> Ast.Some_quant
    | L.T_name "every" -> Ast.Every_quant
    | _ -> assert false
  in
  let rec binds acc =
    let var = var_name st in
    let var_type =
      if accept_kw st "as" then Some (parse_sequence_type st) else None
    in
    expect_kw st "in";
    let source = parse_expr_single st in
    let acc = (var, var_type, source) :: acc in
    if accept st L.T_comma then binds acc else List.rev acc
  in
  let bindings = binds [] in
  expect_kw st "satisfies";
  let body = parse_expr_single st in
  Ast.E_quantified (quant, bindings, body)

and parse_typeswitch st =
  expect_kw st "typeswitch";
  expect st L.T_lpar "'('";
  let operand = parse_expr st in
  expect st L.T_rpar "')'";
  let rec cases acc =
    if accept_kw st "case" then begin
      let case_var =
        match peek st with
        | L.T_var _ ->
            let v = var_name st in
            expect_kw st "as";
            Some v
        | _ -> None
      in
      let case_type = parse_sequence_type st in
      expect_kw st "return";
      let case_body = parse_expr_single st in
      cases ({ Ast.case_var; case_type; case_body } :: acc)
    end
    else List.rev acc
  in
  let cases = cases [] in
  expect_kw st "default";
  let default_var =
    match peek st with L.T_var _ -> Some (var_name st) | _ -> None
  in
  expect_kw st "return";
  let default_body = parse_expr_single st in
  Ast.E_typeswitch (operand, cases, (default_var, default_body))

and parse_if st =
  expect_kw st "if";
  expect st L.T_lpar "'('";
  let cond = parse_expr st in
  expect st L.T_rpar "')'";
  expect_kw st "then";
  let then_e = parse_expr_single st in
  expect_kw st "else";
  let else_e = parse_expr_single st in
  Ast.E_if (cond, then_e, else_e)

(* -------- update expressions -------- *)

and parse_insert st =
  expect_kw st "insert";
  if not (accept_kw st "nodes") then expect_kw st "node";
  let source = parse_expr_single st in
  let position =
    if accept_kw st "into" then Ast.Into
    else if accept_kw st "as" then
      if accept_kw st "first" then begin
        expect_kw st "into";
        Ast.As_first_into
      end
      else begin
        expect_kw st "last";
        expect_kw st "into";
        Ast.As_last_into
      end
    else if accept_kw st "before" then Ast.Before
    else if accept_kw st "after" then Ast.After
    else fail st "expected 'into', 'as first/last into', 'before' or 'after'"
  in
  let target = parse_expr_single st in
  (* the paper's §4.2.1 listing writes the position after the target
     ("into $d/html/body as first"); accept that order too *)
  let position =
    if position = Ast.Into && accept_kw st "as" then
      if accept_kw st "first" then Ast.As_first_into
      else begin
        expect_kw st "last";
        Ast.As_last_into
      end
    else position
  in
  Ast.E_insert (position, source, target)

and parse_delete st =
  expect_kw st "delete";
  if not (accept_kw st "nodes") then expect_kw st "node";
  Ast.E_delete (parse_expr_single st)

and parse_replace st =
  expect_kw st "replace";
  let value_of =
    if accept_kw st "value" then begin
      expect_kw st "of";
      true
    end
    else false
  in
  expect_kw st "node";
  let target = parse_expr_single st in
  expect_kw st "with";
  let source = parse_expr_single st in
  Ast.E_replace { value_of; target; source }

and parse_rename st =
  expect_kw st "rename";
  expect_kw st "node";
  let target = parse_expr_single st in
  expect_kw st "as";
  let name = parse_expr_single st in
  Ast.E_rename (target, name)

and parse_transform st =
  expect_kw st "copy";
  let rec binds acc =
    let var = var_name st in
    expect st L.T_colonequals "':='";
    let value = parse_expr_single st in
    let acc = (var, value) :: acc in
    if accept st L.T_comma then binds acc else List.rev acc
  in
  let bindings = binds [] in
  expect_kw st "modify";
  let modify = parse_expr_single st in
  expect_kw st "return";
  let return = parse_expr_single st in
  Ast.E_transform (bindings, modify, return)

(* -------- browser extensions (paper §4.3, §4.5) -------- *)

and parse_event_attach_detach st =
  expect_kw st "on";
  expect_kw st "event";
  let event = parse_expr_single st in
  let binding =
    if accept_kw st "at" then Ast.Bind_at
    else if accept_kw st "behind" then Ast.Bind_behind
    else fail st "expected 'at' or 'behind'"
  in
  let target = parse_expr_single st in
  if accept_kw st "attach" then begin
    expect_kw st "listener";
    let listener = resolve_function st (expect_qname st) in
    Ast.E_event_attach { event; binding; target; listener }
  end
  else begin
    expect_kw st "detach";
    expect_kw st "listener";
    if binding = Ast.Bind_behind then
      fail st "'behind' cannot be used with 'detach listener'";
    let listener = resolve_function st (expect_qname st) in
    Ast.E_event_detach { event; target; listener }
  end

and parse_event_trigger st =
  expect_kw st "trigger";
  expect_kw st "event";
  let event = parse_expr_single st in
  expect_kw st "at";
  let target = parse_expr_single st in
  Ast.E_event_trigger { event; target }

and parse_set_style st =
  expect_kw st "set";
  expect_kw st "style";
  let property = parse_expr_single st in
  expect_kw st "of";
  (* the target is parsed below RangeExpr so the closing 'to' keyword
     is not mistaken for a range operator *)
  let target = parse_additive st in
  expect_kw st "to";
  let value = parse_expr_single st in
  Ast.E_set_style { property; target; value }

and parse_get_style st =
  expect_kw st "get";
  expect_kw st "style";
  let property = parse_expr_single st in
  expect_kw st "of";
  let target = parse_expr_single st in
  Ast.E_get_style { property; target }

(* -------- scripting blocks (paper §3.3) -------- *)

and parse_block st =
  expect st L.T_lbrace "'{'";
  let stmts = parse_statements st in
  expect st L.T_rbrace "'}'";
  Ast.E_block stmts

and parse_statements st =
  let stmts = ref [] in
  let rec loop () =
    match peek st with
    | L.T_rbrace | L.T_eof -> ()
    | L.T_semi ->
        ignore (next st);
        loop ()
    | _ ->
        stmts := parse_statement st :: !stmts;
        if accept st L.T_semi then loop ()
  in
  loop ();
  List.rev !stmts

and parse_statement st : Ast.statement =
  match (peek st, peek2 st) with
  | L.T_name "declare", L.T_name "variable" ->
      ignore (next st);
      ignore (next st);
      let var = var_name st in
      let var_type =
        if accept_kw st "as" then Some (parse_sequence_type st) else None
      in
      let init =
        if accept st L.T_colonequals then Some (parse_expr_single st) else None
      in
      Ast.S_var_decl (var, var_type, init)
  | L.T_name "set", L.T_var _ ->
      ignore (next st);
      let var = var_name st in
      expect st L.T_colonequals "':='";
      Ast.S_assign (var, parse_expr_single st)
  | L.T_name "while", L.T_lpar ->
      ignore (next st);
      expect st L.T_lpar "'('";
      let cond = parse_expr st in
      expect st L.T_rpar "')'";
      let body =
        if peek st = L.T_lbrace then begin
          expect st L.T_lbrace "'{'";
          let b = parse_statements st in
          expect st L.T_rbrace "'}'";
          b
        end
        else [ parse_statement st ]
      in
      Ast.S_while (cond, body)
  | L.T_name "exit", L.T_name ("with" | "returning") ->
      ignore (next st);
      ignore (next st);
      Ast.S_exit_with (parse_expr_single st)
  | L.T_name "break", (L.T_semi | L.T_rbrace) ->
      ignore (next st);
      Ast.S_break
  | L.T_name "continue", (L.T_semi | L.T_rbrace) ->
      ignore (next st);
      Ast.S_continue
  | _ ->
      (* a full Expr: comma sequences are legal at statement level
         (ordinary function bodies are parsed as one-statement blocks) *)
      Ast.S_expr (parse_expr st)

(* -------- operator precedence chain -------- *)

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "or" then Ast.E_or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_comparison st in
  if accept_kw st "and" then Ast.E_and (lhs, parse_and st) else lhs

and parse_comparison st =
  let lhs = parse_ftcontains st in
  let vc op =
    ignore (next st);
    Ast.E_general_comp (op, lhs, parse_ftcontains st)
  in
  match peek st with
  | L.T_eq -> vc Ast.Eq
  | L.T_ne -> vc Ast.Ne
  | L.T_lt -> vc Ast.Lt
  | L.T_le -> vc Ast.Le
  | L.T_gt -> vc Ast.Gt
  | L.T_ge -> vc Ast.Ge
  | L.T_ltlt ->
      ignore (next st);
      Ast.E_node_comp (Ast.Precedes, lhs, parse_ftcontains st)
  | L.T_gtgt ->
      ignore (next st);
      Ast.E_node_comp (Ast.Follows, lhs, parse_ftcontains st)
  | L.T_name "eq" ->
      ignore (next st);
      Ast.E_value_comp (Ast.Eq, lhs, parse_ftcontains st)
  | L.T_name "ne" ->
      ignore (next st);
      Ast.E_value_comp (Ast.Ne, lhs, parse_ftcontains st)
  | L.T_name "lt" ->
      ignore (next st);
      Ast.E_value_comp (Ast.Lt, lhs, parse_ftcontains st)
  | L.T_name "le" ->
      ignore (next st);
      Ast.E_value_comp (Ast.Le, lhs, parse_ftcontains st)
  | L.T_name "gt" ->
      ignore (next st);
      Ast.E_value_comp (Ast.Gt, lhs, parse_ftcontains st)
  | L.T_name "ge" ->
      ignore (next st);
      Ast.E_value_comp (Ast.Ge, lhs, parse_ftcontains st)
  | L.T_name "is" ->
      ignore (next st);
      Ast.E_node_comp (Ast.Is, lhs, parse_ftcontains st)
  | _ -> lhs

and parse_ftcontains st =
  let lhs = parse_range st in
  if accept_kw st "ftcontains" then Ast.E_ftcontains (lhs, parse_ft_selection st)
  else lhs

and parse_ft_selection st = parse_ft_or st

and parse_ft_or st =
  let lhs = parse_ft_and st in
  if accept_kw st "ftor" then Ast.Ft_or (lhs, parse_ft_or st) else lhs

and parse_ft_and st =
  let lhs = parse_ft_not st in
  if accept_kw st "ftand" then Ast.Ft_and (lhs, parse_ft_and st) else lhs

and parse_ft_not st =
  if accept_kw st "ftnot" then Ast.Ft_not (parse_ft_primary st)
  else parse_ft_primary st

and parse_ft_primary st =
  match peek st with
  | L.T_lpar ->
      ignore (next st);
      let sel = parse_ft_selection st in
      let sel = parse_ft_options_wrap st sel in
      expect st L.T_rpar "')'";
      sel
  | L.T_string s ->
      ignore (next st);
      let opts = parse_ft_options st in
      Ast.Ft_words (Ast.E_literal (Xdm_atomic.String s), opts)
  | L.T_var _ ->
      let v = var_name st in
      let opts = parse_ft_options st in
      Ast.Ft_words (Ast.E_var v, opts)
  | L.T_lbrace ->
      ignore (next st);
      let e = parse_expr st in
      expect st L.T_rbrace "'}'";
      let opts = parse_ft_options st in
      Ast.Ft_words (e, opts)
  | t -> fail st "expected a full-text primary, found %s" (L.token_to_string t)

and parse_ft_options st =
  if peek_kw st = Some "with" && peek2 st = L.T_name "stemming" then begin
    ignore (next st);
    ignore (next st);
    [ Ast.Ft_stemming ]
  end
  else []

and parse_ft_options_wrap st sel =
  match (sel, parse_ft_options st) with
  | _, [] -> sel
  | Ast.Ft_words (e, opts), more -> Ast.Ft_words (e, opts @ more)
  | sel, _ -> sel

and parse_range st =
  let lhs = parse_additive st in
  if accept_kw st "to" then Ast.E_range (lhs, parse_additive st) else lhs

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | L.T_plus ->
        ignore (next st);
        loop (Ast.E_arith (Ast.Add, lhs, parse_multiplicative st))
    | L.T_minus ->
        ignore (next st);
        loop (Ast.E_arith (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | L.T_star ->
        ignore (next st);
        loop (Ast.E_arith (Ast.Mul, lhs, parse_union st))
    | L.T_name "div" ->
        ignore (next st);
        loop (Ast.E_arith (Ast.Div, lhs, parse_union st))
    | L.T_name "idiv" ->
        ignore (next st);
        loop (Ast.E_arith (Ast.Idiv, lhs, parse_union st))
    | L.T_name "mod" ->
        ignore (next st);
        loop (Ast.E_arith (Ast.Mod, lhs, parse_union st))
    | _ -> lhs
  in
  loop (parse_union st)

and parse_union st =
  let rec loop lhs =
    match peek st with
    | L.T_vbar ->
        ignore (next st);
        loop (Ast.E_union (lhs, parse_intersect_except st))
    | L.T_name "union" ->
        ignore (next st);
        loop (Ast.E_union (lhs, parse_intersect_except st))
    | _ -> lhs
  in
  loop (parse_intersect_except st)

and parse_intersect_except st =
  let rec loop lhs =
    match peek_kw st with
    | Some "intersect" ->
        ignore (next st);
        loop (Ast.E_intersect (lhs, parse_instance_of st))
    | Some "except" ->
        ignore (next st);
        loop (Ast.E_except (lhs, parse_instance_of st))
    | _ -> lhs
  in
  loop (parse_instance_of st)

and parse_instance_of st =
  let lhs = parse_treat st in
  if peek_kw st = Some "instance" && peek2 st = L.T_name "of" then begin
    ignore (next st);
    ignore (next st);
    Ast.E_instance_of (lhs, parse_sequence_type st)
  end
  else lhs

and parse_treat st =
  let lhs = parse_castable st in
  if peek_kw st = Some "treat" && peek2 st = L.T_name "as" then begin
    ignore (next st);
    ignore (next st);
    Ast.E_treat_as (lhs, parse_sequence_type st)
  end
  else lhs

and parse_castable st =
  let lhs = parse_cast st in
  if peek_kw st = Some "castable" && peek2 st = L.T_name "as" then begin
    ignore (next st);
    ignore (next st);
    let ty, opt = parse_single_type st in
    Ast.E_castable_as (lhs, ty, opt)
  end
  else lhs

and parse_cast st =
  let lhs = parse_unary st in
  if peek_kw st = Some "cast" && peek2 st = L.T_name "as" then begin
    ignore (next st);
    ignore (next st);
    let ty, opt = parse_single_type st in
    Ast.E_cast_as (lhs, ty, opt)
  end
  else lhs

and parse_unary st =
  match peek st with
  | L.T_minus ->
      ignore (next st);
      Ast.E_unary_minus (parse_unary st)
  | L.T_plus ->
      ignore (next st);
      parse_unary st
  | _ -> parse_path st

(* -------- path expressions -------- *)

and parse_path st =
  match peek st with
  | L.T_slash -> (
      ignore (next st);
      match peek st with
      | L.T_eof | L.T_rpar | L.T_rbracket | L.T_rbrace | L.T_comma | L.T_semi
      | L.T_lt | L.T_le | L.T_gt | L.T_ge | L.T_eq | L.T_ne ->
          Ast.E_root
      | _ -> Ast.E_path (Ast.E_root, parse_relative_path st))
  | L.T_slashslash ->
      ignore (next st);
      let rest = parse_relative_path st in
      Ast.E_path
        ( Ast.E_path (Ast.E_root, Ast.E_step (Ast.Descendant_or_self, Ast.Kind_test Ast.Any_kind, [])),
          rest )
  | _ -> parse_relative_path st

and parse_relative_path st =
  let rec loop lhs =
    match peek st with
    | L.T_slash ->
        ignore (next st);
        loop (Ast.E_path (lhs, parse_step st))
    | L.T_slashslash ->
        ignore (next st);
        let dos =
          Ast.E_step (Ast.Descendant_or_self, Ast.Kind_test Ast.Any_kind, [])
        in
        loop (Ast.E_path (Ast.E_path (lhs, dos), parse_step st))
    | _ -> lhs
  in
  loop (parse_step st)

and axis_of_name = function
  | "child" -> Some Ast.Child
  | "descendant" -> Some Ast.Descendant
  | "attribute" -> Some Ast.Attribute_axis
  | "self" -> Some Ast.Self
  | "descendant-or-self" -> Some Ast.Descendant_or_self
  | "following-sibling" -> Some Ast.Following_sibling
  | "preceding-sibling" -> Some Ast.Preceding_sibling
  | "following" -> Some Ast.Following
  | "preceding" -> Some Ast.Preceding
  | "parent" -> Some Ast.Parent
  | "ancestor" -> Some Ast.Ancestor
  | "ancestor-or-self" -> Some Ast.Ancestor_or_self
  | _ -> None

and parse_node_test st ~default_element : Ast.node_test =
  match peek st with
  | L.T_star ->
      ignore (next st);
      Ast.Wildcard
  | L.T_ns_wildcard prefix -> (
      ignore (next st);
      match Qname.Env.lookup st.env prefix with
      | Some uri -> Ast.Ns_wildcard uri
      | None -> fail st "unbound namespace prefix %S" prefix)
  | L.T_local_wildcard local ->
      ignore (next st);
      Ast.Local_wildcard local
  | L.T_name kw when List.mem kw kind_test_keywords && peek2 st = L.T_lpar ->
      Ast.Kind_test (parse_kind_test st kw)
  | L.T_name _ | L.T_qname _ ->
      let qn = expect_qname st in
      let qn =
        if default_element then resolve_element st qn else resolve_other st qn
      in
      Ast.Name_test qn
  | t -> fail st "expected a node test, found %s" (L.token_to_string t)

and parse_step st =
  match peek st with
  | L.T_dot ->
      ignore (next st);
      parse_predicates_into st Ast.E_context_item
  | L.T_dotdot ->
      ignore (next st);
      let step = Ast.E_step (Ast.Parent, Ast.Kind_test Ast.Any_kind, []) in
      parse_predicates_wrap st step
  | L.T_at ->
      ignore (next st);
      let test = parse_node_test st ~default_element:false in
      parse_axis_step st Ast.Attribute_axis test
  | L.T_name n when axis_of_name n <> None && peek2 st = L.T_coloncolon ->
      ignore (next st);
      ignore (next st);
      let axis = Option.get (axis_of_name n) in
      let default_element = axis <> Ast.Attribute_axis in
      let test = parse_node_test st ~default_element in
      parse_axis_step st axis test
  | L.T_star | L.T_ns_wildcard _ | L.T_local_wildcard _ ->
      let test = parse_node_test st ~default_element:true in
      parse_axis_step st Ast.Child test
  | L.T_name kw when List.mem kw kind_test_keywords && peek2 st = L.T_lpar ->
      let test = parse_node_test st ~default_element:true in
      let axis =
        match test with
        | Ast.Kind_test (Ast.Attribute_kind _) -> Ast.Attribute_axis
        | _ -> Ast.Child
      in
      parse_axis_step st axis test
  | L.T_name ("element" | "attribute" | "processing-instruction")
    when is_computed_ctor_ahead st ->
      parse_filter st
  | L.T_name ("text" | "comment" | "document" | "ordered" | "unordered")
    when peek2 st = L.T_lbrace ->
      parse_filter st
  | (L.T_name _ | L.T_qname _)
    when peek2 st <> L.T_lpar
         || (match peek st with
            | L.T_name n -> List.mem n reserved_function_names
            | _ -> false) ->
      (* A bare name: either a function call (handled in primary) or a
         child-axis name test. Names followed by '(' that are not
         reserved are function calls. *)
      if peek2 st = L.T_lpar then
        (* reserved name + '(' — kind tests were handled above, so this
           is 'if(', 'typeswitch(' etc., which cannot start a step *)
        parse_filter st
      else
        let test = parse_node_test st ~default_element:true in
        parse_axis_step st Ast.Child test
  | _ -> parse_filter st

and parse_axis_step st axis test =
  parse_predicates_wrap st (Ast.E_step (axis, test, []))

and parse_predicates st =
  let rec loop acc =
    if peek st = L.T_lbracket then begin
      ignore (next st);
      let p = parse_expr st in
      expect st L.T_rbracket "']'";
      loop (p :: acc)
    end
    else List.rev acc
  in
  loop []

and parse_predicates_wrap st step =
  match (step, parse_predicates st) with
  | Ast.E_step (axis, test, []), preds -> Ast.E_step (axis, test, preds)
  | e, [] -> e
  | e, preds -> Ast.E_filter (e, preds)

and parse_predicates_into st primary =
  match parse_predicates st with
  | [] -> primary
  | preds -> Ast.E_filter (primary, preds)

and parse_filter st =
  let primary = parse_primary st in
  parse_predicates_into st primary

and parse_primary st : Ast.expr =
  match peek st with
  | L.T_integer i ->
      ignore (next st);
      Ast.E_literal (Xdm_atomic.Integer i)
  | L.T_decimal f ->
      ignore (next st);
      Ast.E_literal (Xdm_atomic.Decimal f)
  | L.T_double f ->
      ignore (next st);
      Ast.E_literal (Xdm_atomic.Double f)
  | L.T_string s ->
      ignore (next st);
      Ast.E_literal (Xdm_atomic.String s)
  | L.T_var _ -> Ast.E_var (var_name st)
  | L.T_lpar ->
      ignore (next st);
      if accept st L.T_rpar then Ast.E_sequence []
      else begin
        let e = parse_expr st in
        expect st L.T_rpar "')'";
        e
      end
  | L.T_dot ->
      ignore (next st);
      Ast.E_context_item
  | L.T_pragma _ ->
      ignore (next st);
      (* extension expression: evaluate the fallback *)
      expect st L.T_lbrace "'{'";
      let e = parse_expr st in
      expect st L.T_rbrace "'}'";
      e
  | L.T_tag_open -> parse_direct_constructor st
  | L.T_name "ordered" when peek2 st = L.T_lbrace ->
      ignore (next st);
      expect st L.T_lbrace "'{'";
      let e = parse_expr st in
      expect st L.T_rbrace "'}'";
      Ast.E_ordered e
  | L.T_name "unordered" when peek2 st = L.T_lbrace ->
      ignore (next st);
      expect st L.T_lbrace "'{'";
      let e = parse_expr st in
      expect st L.T_rbrace "'}'";
      Ast.E_unordered e
  | L.T_name "element" when is_computed_ctor_ahead st ->
      parse_computed_element st
  | L.T_name "attribute" when is_computed_ctor_ahead st ->
      parse_computed_attribute st
  | L.T_name "text" when peek2 st = L.T_lbrace -> (
      ignore (next st);
      expect st L.T_lbrace "'{'";
      let e = parse_expr st in
      expect st L.T_rbrace "'}'";
      Ast.E_computed_text e)
  | L.T_name "comment" when peek2 st = L.T_lbrace -> (
      ignore (next st);
      expect st L.T_lbrace "'{'";
      let e = parse_expr st in
      expect st L.T_rbrace "'}'";
      Ast.E_computed_comment e)
  | L.T_name "processing-instruction" when is_computed_ctor_ahead st -> (
      ignore (next st);
      let name_e =
        match peek st with
        | L.T_name n ->
            ignore (next st);
            Ast.E_literal (Xdm_atomic.String n)
        | L.T_lbrace ->
            ignore (next st);
            let e = parse_expr st in
            expect st L.T_rbrace "'}'";
            e
        | t -> fail st "expected PI name, found %s" (L.token_to_string t)
      in
      expect st L.T_lbrace "'{'";
      let body = if peek st = L.T_rbrace then Ast.E_sequence [] else parse_expr st in
      expect st L.T_rbrace "'}'";
      Ast.E_computed_pi (name_e, body))
  | L.T_name "document" when peek2 st = L.T_lbrace -> (
      ignore (next st);
      expect st L.T_lbrace "'{'";
      let e = parse_expr st in
      expect st L.T_rbrace "'}'";
      Ast.E_computed_document e)
  | (L.T_name _ | L.T_qname _) when peek2 st = L.T_lpar -> (
      match peek st with
      | L.T_name n when List.mem n reserved_function_names ->
          fail st "unexpected reserved word %S" n
      | _ ->
          let qn = resolve_function st (expect_qname st) in
          expect st L.T_lpar "'('";
          let args =
            if accept st L.T_rpar then []
            else begin
              let rec args acc =
                let a = parse_expr_single st in
                if accept st L.T_comma then args (a :: acc)
                else begin
                  expect st L.T_rpar "')'";
                  List.rev (a :: acc)
                end
              in
              args []
            end
          in
          Ast.E_call (qn, args))
  | t -> fail st "unexpected token %s" (L.token_to_string t)

and is_computed_ctor_ahead st =
  (* element/attribute/PI computed constructors: keyword followed by a
     name or '{' ... but 'element(' is a kind test and handled before. *)
  match peek2 st with
  | L.T_lbrace -> true
  | L.T_name _ | L.T_qname _ ->
      (* e.g. [element foo {...}] — needs a third token '{' *)
      let snap = L.save st.lx in
      let _ = L.next st.lx in
      let _ = L.next st.lx in
      let t3 = L.peek st.lx in
      L.restore st.lx snap;
      t3 = L.T_lbrace
  | _ -> false

and parse_computed_element st =
  expect_kw st "element";
  let name_e =
    match peek st with
    | L.T_name _ | L.T_qname _ ->
        let qn = resolve_element st (expect_qname st) in
        Ast.E_literal (Xdm_atomic.Qname_v qn)
    | L.T_lbrace ->
        ignore (next st);
        let e = parse_expr st in
        expect st L.T_rbrace "'}'";
        e
    | t -> fail st "expected element name, found %s" (L.token_to_string t)
  in
  expect st L.T_lbrace "'{'";
  let content = if peek st = L.T_rbrace then Ast.E_sequence [] else parse_expr st in
  expect st L.T_rbrace "'}'";
  Ast.E_computed_element (name_e, content)

and parse_computed_attribute st =
  expect_kw st "attribute";
  let name_e =
    match peek st with
    | L.T_name _ | L.T_qname _ ->
        let qn = resolve_other st (expect_qname st) in
        Ast.E_literal (Xdm_atomic.Qname_v qn)
    | L.T_lbrace ->
        ignore (next st);
        let e = parse_expr st in
        expect st L.T_rbrace "'}'";
        e
    | t -> fail st "expected attribute name, found %s" (L.token_to_string t)
  in
  expect st L.T_lbrace "'{'";
  let content = if peek st = L.T_rbrace then Ast.E_sequence [] else parse_expr st in
  expect st L.T_rbrace "'}'";
  Ast.E_computed_attribute (name_e, content)

(* -------- direct constructors (raw lexing) -------- *)

and parse_direct_constructor st =
  (* current token is T_tag_open; raw position is just after '<' *)
  ignore (next st);
  parse_direct_element st

and parse_direct_element st =
  let lx = st.lx in
  let name_raw = L.raw_read_name lx in
  (* read attributes *)
  let rec read_attrs acc =
    L.raw_skip_space lx;
    if L.raw_looking_at lx "/>" then begin
      L.raw_skip lx 2;
      (List.rev acc, true)
    end
    else if L.raw_looking_at lx ">" then begin
      L.raw_skip lx 1;
      (List.rev acc, false)
    end
    else begin
      let an = L.raw_read_name lx in
      L.raw_skip_space lx;
      if not (L.raw_looking_at lx "=") then fail st "expected '=' after attribute name";
      L.raw_skip lx 1;
      L.raw_skip_space lx;
      let quote =
        match L.raw_next lx with
        | Some (('"' | '\'') as q) -> q
        | _ -> fail st "expected quoted attribute value"
      in
      let parts = parse_attr_value st quote in
      read_attrs ((an, parts) :: acc)
    end
  in
  let attrs_raw, self_closing = read_attrs [] in
  (* namespace handling: xmlns attributes extend the env for this scope *)
  let saved_env = st.env in
  List.iter
    (fun (an, parts) ->
      let static_value () =
        String.concat ""
          (List.map
             (function
               | Ast.A_text t -> t
               | Ast.A_enclosed _ ->
                   fail st "namespace declaration value must be static")
             parts)
      in
      match Qname.of_string an with
      | { Qname.prefix = None; local = "xmlns"; _ } ->
          let uri = static_value () in
          st.env <-
            Qname.Env.bind_default st.env
              ~uri:(if uri = "" then None else Some uri)
      | { Qname.prefix = Some "xmlns"; local = p; _ } ->
          st.env <- Qname.Env.bind st.env ~prefix:p ~uri:(static_value ())
      | _ -> ())
    attrs_raw;
  let name = resolve_element st (Qname.of_string name_raw) in
  let attributes =
    List.map (fun (an, parts) -> (resolve_other st (Qname.of_string an), parts)) attrs_raw
  in
  let children =
    if self_closing then []
    else parse_direct_content st name_raw
  in
  st.env <- saved_env;
  Ast.E_direct_element { name; attributes; children }

and parse_attr_value st quote =
  let lx = st.lx in
  let buf = Buffer.create 16 in
  let parts = ref [] in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let text =
        try Xml_escape.unescape (Buffer.contents buf)
        with Failure m -> fail st "%s" m
      in
      parts := Ast.A_text text :: !parts;
      Buffer.clear buf
    end
  in
  let rec go () =
    match L.raw_peek lx with
    | None -> fail st "unterminated attribute value"
    | Some c when c = quote ->
        L.raw_skip lx 1;
        (* doubled quote = literal quote *)
        if L.raw_peek lx = Some quote then begin
          Buffer.add_char buf quote;
          L.raw_skip lx 1;
          go ()
        end
        else flush_text ()
    | Some '{' ->
        if L.raw_looking_at lx "{{" then begin
          Buffer.add_char buf '{';
          L.raw_skip lx 2;
          go ()
        end
        else begin
          flush_text ();
          L.raw_skip lx 1;
          let e = parse_expr st in
          expect st L.T_rbrace "'}'";
          parts := Ast.A_enclosed e :: !parts;
          go ()
        end
    | Some '}' ->
        if L.raw_looking_at lx "}}" then begin
          Buffer.add_char buf '}';
          L.raw_skip lx 2;
          go ()
        end
        else fail st "unescaped '}' in attribute value"
    | Some c ->
        Buffer.add_char buf c;
        L.raw_skip lx 1;
        go ()
  in
  go ();
  List.rev !parts

and parse_direct_content st open_name =
  let lx = st.lx in
  let buf = Buffer.create 32 in
  let children = ref [] in
  let boundary_preserve = Static_context.boundary_space_preserve st.sctx in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let text =
        try Xml_escape.unescape (Buffer.contents buf)
        with Failure m -> fail st "%s" m
      in
      Buffer.clear buf;
      let all_space = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') text in
      if text <> "" && (boundary_preserve || not all_space) then
        children := Ast.E_text_literal text :: !children
    end
  in
  let rec go () =
    match L.raw_peek lx with
    | None -> fail st "unclosed element <%s>" open_name
    | Some '<' ->
        if L.raw_looking_at lx "</" then begin
          flush_text ();
          L.raw_skip lx 2;
          let close = L.raw_read_name lx in
          L.raw_skip_space lx;
          if not (L.raw_looking_at lx ">") then fail st "expected '>'";
          L.raw_skip lx 1;
          if not (String.equal close open_name) then
            fail st "mismatched close tag </%s>, expected </%s>" close open_name
        end
        else if L.raw_looking_at lx "<!--" then begin
          flush_text ();
          L.raw_skip lx 4;
          let c = L.raw_until lx "-->" in
          children :=
            Ast.E_computed_comment (Ast.E_literal (Xdm_atomic.String c))
            :: !children;
          go ()
        end
        else if L.raw_looking_at lx "<![CDATA[" then begin
          L.raw_skip lx 9;
          let c = L.raw_until lx "]]>" in
          Buffer.add_string buf (Xml_escape.text c);
          go ()
        end
        else if L.raw_looking_at lx "<?" then begin
          flush_text ();
          L.raw_skip lx 2;
          let target = L.raw_read_name lx in
          L.raw_skip_space lx;
          let data = L.raw_until lx "?>" in
          children :=
            Ast.E_computed_pi
              ( Ast.E_literal (Xdm_atomic.String target),
                Ast.E_literal (Xdm_atomic.String data) )
            :: !children;
          go ()
        end
        else begin
          flush_text ();
          L.raw_skip lx 1;
          let el = parse_direct_element st in
          children := el :: !children;
          go ()
        end
    | Some '{' ->
        if L.raw_looking_at lx "{{" then begin
          Buffer.add_char buf '{';
          L.raw_skip lx 2;
          go ()
        end
        else begin
          flush_text ();
          L.raw_skip lx 1;
          let e = if peek st = L.T_rbrace then Ast.E_sequence [] else parse_expr st in
          expect st L.T_rbrace "'}'";
          children := Ast.E_enclosed e :: !children;
          go ()
        end
    | Some '}' ->
        if L.raw_looking_at lx "}}" then begin
          Buffer.add_char buf '}';
          L.raw_skip lx 2;
          go ()
        end
        else fail st "unescaped '}' in element content"
    | Some c ->
        Buffer.add_char buf c;
        L.raw_skip lx 1;
        go ()
  in
  go ();
  List.rev !children

(* ---------------- prolog & program ---------------- *)

let parse_version_decl st =
  if peek_kw st = Some "xquery" && peek2 st = L.T_name "version" then begin
    ignore (next st);
    ignore (next st);
    ignore (expect_string st);
    if accept_kw st "encoding" then ignore (expect_string st);
    expect st L.T_semi "';'"
  end

let parse_module_decl st =
  if peek_kw st = Some "module" && peek2 st = L.T_name "namespace" then begin
    ignore (next st);
    ignore (next st);
    let prefix = expect_ncname st in
    expect st L.T_eq "'='";
    let uri = expect_string st in
    (* paper extension: module namespace p = "uri" port:2001; *)
    let port =
      if peek_kw st = Some "port" then begin
        ignore (next st);
        (* ':NNNN' — read through raw access, ':2001' does not lex *)
        L.raw_skip_space st.lx;
        if not (L.raw_looking_at st.lx ":") then fail st "expected ':' after 'port'";
        L.raw_skip st.lx 1;
        let buf = Buffer.create 8 in
        let rec digits () =
          match L.raw_peek st.lx with
          | Some c when c >= '0' && c <= '9' ->
              Buffer.add_char buf c;
              L.raw_skip st.lx 1;
              digits ()
          | _ -> ()
        in
        digits ();
        if Buffer.length buf = 0 then fail st "expected a port number";
        Some (int_of_string (Buffer.contents buf))
      end
      else None
    in
    expect st L.T_semi "';'";
    Static_context.declare_namespace st.sctx ~prefix ~uri;
    st.env <- Static_context.ns_env st.sctx;
    Some { Ast.mod_prefix = prefix; mod_uri = uri; mod_port = port }
  end
  else None

(* import handling is a forward reference: filled in by Engine to tie
   the knot between parsing and module loading. *)
let module_loader :
    (Static_context.t -> uri:string -> locations:string list -> unit) ref =
  ref (fun _ ~uri ~locations:_ ->
      Xq_error.raise_error "XQST0059" "cannot resolve module %S (no loader)" uri)

let rec parse_prolog st acc =
  match (peek st, peek2 st) with
  | L.T_name "declare", L.T_name "namespace" ->
      ignore (next st);
      ignore (next st);
      let prefix = expect_ncname st in
      expect st L.T_eq "'='";
      let uri = expect_string st in
      expect st L.T_semi "';'";
      Static_context.declare_namespace st.sctx ~prefix ~uri;
      st.env <- Static_context.ns_env st.sctx;
      parse_prolog st (Ast.P_namespace (prefix, uri) :: acc)
  | L.T_name "declare", L.T_name "default" ->
      ignore (next st);
      ignore (next st);
      if accept_kw st "element" then begin
        expect_kw st "namespace";
        let uri = expect_string st in
        expect st L.T_semi "';'";
        Static_context.declare_default_element_ns st.sctx uri;
        st.env <- Static_context.ns_env st.sctx;
        parse_prolog st (Ast.P_default_element_ns uri :: acc)
      end
      else begin
        expect_kw st "function";
        expect_kw st "namespace";
        let uri = expect_string st in
        expect st L.T_semi "';'";
        Static_context.declare_default_function_ns st.sctx uri;
        parse_prolog st (Ast.P_default_function_ns uri :: acc)
      end
  | L.T_name "declare", L.T_name "boundary-space" ->
      ignore (next st);
      ignore (next st);
      let preserve =
        if accept_kw st "preserve" then true
        else begin
          expect_kw st "strip";
          false
        end
      in
      expect st L.T_semi "';'";
      Static_context.set_boundary_space_preserve st.sctx preserve;
      parse_prolog st (Ast.P_boundary_space_preserve preserve :: acc)
  | L.T_name "declare", L.T_name "option" ->
      ignore (next st);
      ignore (next st);
      let qn = resolve_function st (expect_qname st) in
      let v = expect_string st in
      expect st L.T_semi "';'";
      Static_context.set_option st.sctx qn v;
      parse_prolog st (Ast.P_option (qn, v) :: acc)
  | L.T_name "declare", L.T_name "variable" ->
      ignore (next st);
      ignore (next st);
      let var = var_name st in
      let var_type =
        if accept_kw st "as" then Some (parse_sequence_type st) else None
      in
      let init =
        if accept st L.T_colonequals then Some (parse_expr_single st)
        else begin
          ignore (accept_kw st "external");
          None
        end
      in
      expect st L.T_semi "';'";
      Static_context.declare_variable st.sctx var var_type init;
      parse_prolog st (Ast.P_variable (var, var_type, init) :: acc)
  | L.T_name "declare", L.T_name ("function" | "updating" | "sequential") ->
      ignore (next st);
      let kind =
        if accept_kw st "updating" then Ast.F_updating
        else if accept_kw st "sequential" then Ast.F_sequential
        else Ast.F_plain
      in
      expect_kw st "function";
      let fname =
        let qn = expect_qname st in
        match qn.Qname.prefix with
        | Some _ -> resolve_other st qn
        | None ->
            (* unprefixed declared functions live in the local namespace *)
            Qname.with_uri qn (Some Qname.Ns.local)
      in
      expect st L.T_lpar "'('";
      let params =
        if accept st L.T_rpar then []
        else begin
          let rec params acc =
            let v = var_name st in
            let ty =
              if accept_kw st "as" then Some (parse_sequence_type st) else None
            in
            if accept st L.T_comma then params ((v, ty) :: acc)
            else begin
              expect st L.T_rpar "')'";
              List.rev ((v, ty) :: acc)
            end
          in
          params []
        end
      in
      let return_type =
        if accept_kw st "as" then Some (parse_sequence_type st) else None
      in
      let body =
        if accept_kw st "external" then None
        else begin
          let block = parse_block st in
          Some block
        end
      in
      expect st L.T_semi "';'";
      let decl = { Ast.fname; params; return_type; body; kind } in
      Static_context.declare_function st.sctx decl;
      parse_prolog st (Ast.P_function decl :: acc)
  | L.T_name "import", L.T_name "module" ->
      ignore (next st);
      ignore (next st);
      let prefix =
        if accept_kw st "namespace" then begin
          let p = expect_ncname st in
          expect st L.T_eq "'='";
          Some p
        end
        else None
      in
      let uri = expect_string st in
      let locations =
        if accept_kw st "at" then begin
          let rec locs acc =
            let l = expect_string st in
            if accept st L.T_comma then locs (l :: acc) else List.rev (l :: acc)
          in
          locs []
        end
        else []
      in
      expect st L.T_semi "';'";
      (match prefix with
      | Some p ->
          Static_context.declare_namespace st.sctx ~prefix:p ~uri;
          st.env <- Static_context.ns_env st.sctx
      | None -> ());
      !module_loader st.sctx ~uri ~locations;
      parse_prolog st (Ast.P_module_import { prefix; uri; locations } :: acc)
  | _ -> List.rev acc

let parse_program sctx source =
  let st = { lx = L.create source; sctx; env = Static_context.ns_env sctx } in
  parse_version_decl st;
  let library_module = parse_module_decl st in
  let prolog = parse_prolog st [] in
  let body =
    match library_module with
    | Some _ ->
        if peek st <> L.T_eof then fail st "library module cannot have a body";
        None
    | None ->
        if peek st = L.T_eof then None
        else begin
          let e = parse_expr st in
          (* tolerate a trailing ';' *)
          ignore (accept st L.T_semi);
          if peek st <> L.T_eof then
            fail st "unexpected trailing input: %s" (L.token_to_string (peek st));
          Some e
        end
  in
  { Ast.library_module; prolog; body }

let parse_expression sctx source =
  let st = { lx = L.create source; sctx; env = Static_context.ns_env sctx } in
  let e = parse_expr st in
  if peek st <> L.T_eof then
    fail st "unexpected trailing input: %s" (L.token_to_string (peek st));
  e
