(* Reactive dispatch: per-listener-registration memos that let event
   dispatch skip re-running a listener when nothing it read has changed.

   Each [Dom_event] registration made through the evaluator owns a
   [memo]. A listener run is skipped iff its memo holds the footprint of
   a previous run that (a) was pure — no PUL effects, no external
   functions, no impure builtins, no global reads — (b) has not been
   dirtied by any mutation batch intersecting its read footprint, and
   (c) received arguments with the same fingerprint. Under deterministic
   evaluation those three conditions imply the re-run would repeat the
   previous run exactly — same (discarded) result, no effects — so
   skipping is unobservable.

   Memos live in an autonomous [Query_cache] (the footprint summary is
   attached to the cache entry), so they get LRU bounding, obs counters
   and drop-time cleanup, while ignoring the [--no-query-cache] kill
   switch: this table is correctness bookkeeping, not an optimization
   toggle. [Dom_event.drop_hook] removes the entry when its registration
   is removed, replaced by a same-name listener, or reset, and
   [Footprint.on_commit] marks intersecting memos dirty after every
   mutation batch. *)

module I = Xdm_item
module A = Xdm_atomic

type memo = {
  mutable fp : Footprint.read option;
      (* footprint of the last completed pure run; never poisoned *)
  mutable args_key : string;
  mutable result_key : string;
  mutable dirty : bool;
  mutable latched_poison : bool;
      (* a run proved impure: stop recording attempts for good *)
  mutable registered : bool;
      (* still present in the memo table; an unregistered memo must not
         cache (writes would no longer dirty it) *)
  mutable skipped_since_record : bool;
      (* the cached footprint produced at least one skip *)
  mutable wasted : int;
      (* consecutive recordings discarded without a single skip *)
  mutable plain_streak : int;  (* plain runs since the last probe *)
}

let fresh_memo () =
  {
    fp = None;
    args_key = "";
    result_key = "";
    dirty = false;
    latched_poison = false;
    registered = false;
    skipped_since_record = false;
    wasted = 0;
    plain_streak = 0;
  }

(* Adaptive bypass: recording a run costs real time (footprint tables,
   fingerprints, root tracking). A listener whose recordings keep being
   invalidated before yielding a single skip — every mutation touches
   it, or its arguments never repeat — stops recording after
   [bypass_after] wasted recordings and runs plain, re-probing every
   [probe_every]-th dispatch so it recovers if the workload settles. *)
let bypass_after = 2
let probe_every = 16

(* Always-on counters: bench gates and browser:stats() read these
   without requiring the obs layer to be enabled. *)
let skips = ref 0
let reruns = ref 0
let unchanged = ref 0
let invalidations = ref 0
let poisoned_runs = ref 0

let counter_stats () =
  [
    ("skips", !skips);
    ("reruns", !reruns);
    ("unchanged", !unchanged);
    ("invalidations", !invalidations);
    ("poisoned-runs", !poisoned_runs);
  ]

let reset_counters () =
  skips := 0;
  reruns := 0;
  unchanged := 0;
  invalidations := 0;
  poisoned_runs := 0

(* Builtins whose value depends on state outside the DOM footprint
   (documents, clocks, the trace sink). Both the interpreter's builtin
   dispatch and the closure compiler's builtin-call emission consult
   this before running one inside a recorded listener. *)
let impure_builtin = function
  | "doc" | "doc-available" | "put" | "current-dateTime" | "current-date"
  | "current-time" | "implicit-timezone" | "trace" ->
      true
  | _ -> false

(* The same test keyed by interned symbol: the eight impure locals are
   interned once at module init, so the per-call check is an int-set
   probe instead of a string match. *)
let impure_syms : (int, unit) Hashtbl.t = Hashtbl.create 16

let () =
  List.iter
    (fun l -> Hashtbl.replace impure_syms (Xmlb.Sym.intern l :> int) ())
    [
      "doc"; "doc-available"; "put"; "current-dateTime"; "current-date";
      "current-time"; "implicit-timezone"; "trace";
    ]

let impure_builtin_sym (sym : Xmlb.Sym.t) = Hashtbl.mem impure_syms (sym :> int)

(* ------------------------------------------------------------------ *)
(* Memo table                                                          *)

let table : memo Query_cache.t =
  Query_cache.create ~name:"reactive" ~capacity:1024 ~autonomous:true ()

let untrack m =
  match m.fp with
  | None -> ()
  | Some fp ->
      List.iter Footprint.untrack_root (Footprint.root_ids fp);
      m.fp <- None

let () =
  Query_cache.set_on_drop table (fun _ m ->
      untrack m;
      m.registered <- false)

let key_of_lid lid = "l" ^ string_of_int lid

let register lid memo =
  memo.registered <- true;
  Query_cache.add table (key_of_lid lid) ~cost:0 memo

let drop lid = Query_cache.remove table (key_of_lid lid)
let table_size () = Query_cache.length table
let table_stats () = Query_cache.stats table

(* ------------------------------------------------------------------ *)
(* Switch                                                              *)

let active () = Footprint.incremental_enabled ()

let set_incremental b =
  Footprint.set_incremental b;
  (* dropping every memo unregisters it, so closures still holding one
     run plain from now on instead of skipping on stale footprints *)
  if not b then Query_cache.clear table

(* ------------------------------------------------------------------ *)
(* Dirty marking                                                       *)

let on_write ws =
  Query_cache.iter
    (fun _ m ->
      match m.fp with
      | Some fp when (not m.dirty) && Footprint.intersects fp ws ->
          m.dirty <- true;
          incr invalidations;
          if !Obs.Metrics.enabled then Obs.Metrics.incr "reactive.invalidation"
      | _ -> ())
    table

let () =
  Footprint.on_commit := on_write;
  Dom_event.drop_hook := drop

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)

(* Argument fingerprint. Parented (or document) nodes fingerprint by
   identity: everything reachable from them is covered by the recorded
   footprint. Parentless non-document nodes are fresh per-dispatch trees
   (the $evt node) whose identity changes every dispatch even when the
   content is identical — fingerprint those by serialized content. *)
let item_key = function
  | I.Node n -> (
      match (Dom.kind n, Dom.parent n) with
      | Dom.Document, _ -> "d" ^ string_of_int (Dom.id n)
      | _, Some _ -> "n" ^ string_of_int (Dom.id n)
      | _, None -> "f:" ^ Dom.serialize n)
  | I.Atomic a -> "a:" ^ A.type_name (A.type_of a) ^ ":" ^ A.to_string a

let args_key (args : I.sequence list) =
  String.concat "|"
    (List.map (fun seq -> String.concat "," (List.map item_key seq)) args)

let result_key (seq : I.sequence) =
  String.concat "," (List.map item_key seq)

(* ------------------------------------------------------------------ *)
(* Run protocol (driven by Eval.make_listener)                         *)

type decision = Skip | Run_recorded | Run_plain

let decide m ~args_key:akey =
  if not (active ()) then Run_plain
  else if m.latched_poison || not m.registered then Run_plain
  else
    match m.fp with
    | Some _ when (not m.dirty) && String.equal m.args_key akey ->
        m.skipped_since_record <- true;
        Skip
    | _ ->
        (* any cached record is about to be discarded; account whether
           it ever paid for itself, and release it now *)
        (match m.fp with
        | Some _ ->
            if m.skipped_since_record then m.wasted <- 0
            else m.wasted <- m.wasted + 1;
            untrack m
        | None -> ());
        if m.wasted >= bypass_after then begin
          m.plain_streak <- m.plain_streak + 1;
          if m.plain_streak >= probe_every then begin
            m.plain_streak <- 0;
            Run_recorded
          end
          else Run_plain
        end
        else Run_recorded

let count_skip () =
  incr skips;
  if !Obs.Metrics.enabled then Obs.Metrics.incr "reactive.skip"

let count_rerun () =
  incr reruns;
  if !Obs.Metrics.enabled then Obs.Metrics.incr "reactive.rerun"

(* Record the arguments themselves as read scopes: their names, values
   and subtrees are observable without any recorded navigation step. *)
let record_args (args : I.sequence list) =
  List.iter
    (fun seq ->
      List.iter
        (function
          | I.Node n ->
              Footprint.reading_scope ~root:(Dom.id (Dom.root n))
                ~node:(Dom.id n)
          | I.Atomic _ -> ())
        seq)
    args

(* Close out a recorded run. [ok] is false when the run raised (listener
   error path): nothing is cached, but impurity is not latched — the
   error may be data-dependent, and with no stored footprint the
   listener re-runs every time anyway. *)
let finish_run m ~ok ~args_key:akey ~fp ~result =
  untrack m;
  if not ok then m.dirty <- false
  else if Footprint.is_poisoned fp then begin
    m.latched_poison <- true;
    incr poisoned_runs;
    if !Obs.Metrics.enabled then Obs.Metrics.incr "reactive.poisoned"
  end
  else begin
    let rk = result_key result in
    if String.equal rk m.result_key && not (String.equal m.result_key "") then begin
      (* structurally equal to the cached result: the re-render this
         dispatch would trigger is a no-op *)
      incr unchanged;
      if !Obs.Metrics.enabled then Obs.Metrics.incr "reactive.unchanged"
    end;
    m.result_key <- rk;
    if m.registered then begin
      m.fp <- Some fp;
      m.args_key <- akey;
      m.dirty <- false;
      m.skipped_since_record <- false;
      List.iter Footprint.track_root (Footprint.root_ids fp)
    end
  end
