(** The closure compiler (PAPER: per-event evaluation must be as fast
    as the hardware allows). {!Core_ir.lower} desugars the optimized
    AST and resolves variables to frame slots; [compile_prog] then
    emits one OCaml closure per core node, composed bottom-up, so a
    run performs direct calls over a pre-sized frame array instead of
    tree-walking the AST. The tree-walking {!Eval} stays the oracle:
    [set_compiled_eval false] (CLI [--no-compiled-eval]) disables the
    compiled path entirely, and compiled code delegates to the
    interpreter for streaming-sensitive shapes so lazy pull counts
    match it pull-for-pull. *)

type env = {
  ctx : Dynamic_context.t;
  frame : Xdm_item.sequence ref array;
}

type fn_impl =
  Dynamic_context.t -> Xdm_item.sequence list -> Xdm_item.sequence

type prog_code = {
  body : (Dynamic_context.t -> Xdm_item.sequence) option;
      (** compiled main-module body; [None] when the body is absent or
          lowers to a single opaque node (the interpreter is used) *)
  fns : ((int * int * int) * fn_impl) list;
      (** compiled plain-expression function bodies, keyed by
          {!Dynamic_context.fn_key} (uri sym, local sym, arity) for
          {!Dynamic_context.t.compiled_fns} *)
}

(** Ablation switch (default on), mirroring {!Eval.set_streaming}. *)
val set_compiled_eval : bool -> unit

val enabled : unit -> bool

(** Always-on compile statistics for [browser:stats()]:
    programs/functions compiled, closure nodes emitted, opaque
    fallback nodes. *)
val stats : unit -> (string * int) list

val compile_prog : Static_context.t -> Ast.prog -> prog_code
