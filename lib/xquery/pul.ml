open Xmlb

type primitive =
  | Insert_into of Dom.node * Dom.node list
  | Insert_first of Dom.node * Dom.node list
  | Insert_last of Dom.node * Dom.node list
  | Insert_before of Dom.node * Dom.node list
  | Insert_after of Dom.node * Dom.node list
  | Insert_attributes of Dom.node * Dom.node list
  | Delete of Dom.node
  | Replace_node of Dom.node * Dom.node list
  | Replace_value of Dom.node * string
  | Rename of Dom.node * Qname.t

type t = { mutable items : primitive list (* reversed *) }

let create () = { items = [] }
let add t p = t.items <- p :: t.items
let is_empty t = t.items = []
let length t = List.length t.items
let merge ~into t = into.items <- t.items @ into.items
let clear t = t.items <- []

let check_conflicts prims =
  let seen_rename : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let seen_replace : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let seen_replace_value : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let check table code what node =
    let id = Dom.id node in
    if Hashtbl.mem table id then
      Xq_error.raise_error code "two %s operations target the same node" what
    else Hashtbl.add table id ()
  in
  List.iter
    (function
      | Rename (n, _) -> check seen_rename Xq_error.update_conflict_rename "rename" n
      | Replace_node (n, _) ->
          check seen_replace Xq_error.update_conflict_replace "replace node" n
      | Replace_value (n, _) ->
          check seen_replace_value Xq_error.update_conflict_replace
            "replace value" n
      | Insert_into _ | Insert_first _ | Insert_last _ | Insert_before _
      | Insert_after _ | Insert_attributes _ | Delete _ ->
          ())
    prims

(* Application phases, audited against XQUF 1.0 §3.2.2
   upd:applyUpdates, which applies primitives in the order:
     (a) upd:insertInto, upd:insertAttributes, upd:replaceValue,
         upd:rename;
     (b) upd:insertBefore, upd:insertAfter, upd:insertIntoAsFirst,
         upd:insertIntoAsLast;
     (c) upd:replaceNode;
     (d) upd:replaceElementContent;
     (e) upd:delete;  (f) upd:put.
   Order within a phase is implementation-dependent; we use PUL order.

   Our Replace_value primitive covers both upd:replaceValue
   (attributes, text, comments, PIs — phase a) and
   upd:replaceElementContent (elements, and documents as their
   analogue — phase d), so its rank splits on the target's kind. A
   consequence required by the spec: `insert node <a/> into $d,
   replace value of node $d with "x"` discards the inserted <a/>,
   because replaceElementContent applies after insertInto. *)
let rank = function
  | Insert_into _ | Insert_attributes _ | Rename _ -> 0
  | Replace_value (n, _) -> (
      match Dom.kind n with Dom.Element | Dom.Document -> 3 | _ -> 0)
  | Insert_first _ | Insert_last _ | Insert_before _ | Insert_after _ -> 1
  | Replace_node _ -> 2
  | Delete _ -> 4

let apply_one = function
  | Insert_into (target, nodes) | Insert_last (target, nodes) ->
      List.iter (fun n -> Dom.append_child ~parent:target n) nodes
  | Insert_first (target, nodes) ->
      List.iter (fun n -> Dom.insert_first ~parent:target n) (List.rev nodes)
  | Insert_before (sibling, nodes) ->
      List.iter (fun n -> Dom.insert_before ~sibling n) nodes
  | Insert_after (sibling, nodes) ->
      List.iter (fun n -> Dom.insert_after ~sibling n) (List.rev nodes)
  | Insert_attributes (target, attrs) ->
      List.iter (fun a -> Dom.append_attribute ~parent:target a) attrs
  | Delete n -> Dom.remove n
  | Replace_node (n, replacements) -> Dom.replace n replacements
  | Replace_value (n, v) -> Dom.set_value n v
  | Rename (n, qn) -> Dom.rename n qn

let prim_metric = function
  | Insert_into _ -> "pul.prim.insert-into"
  | Insert_first _ -> "pul.prim.insert-first"
  | Insert_last _ -> "pul.prim.insert-last"
  | Insert_before _ -> "pul.prim.insert-before"
  | Insert_after _ -> "pul.prim.insert-after"
  | Insert_attributes _ -> "pul.prim.insert-attributes"
  | Delete _ -> "pul.prim.delete"
  | Replace_node _ -> "pul.prim.replace-node"
  | Replace_value _ -> "pul.prim.replace-value"
  | Rename _ -> "pul.prim.rename"

let phase_metric =
  [|
    "pul.phase.0"; "pul.phase.1"; "pul.phase.2"; "pul.phase.3"; "pul.phase.4";
  |]

let apply t =
  let prims = List.rev t.items in
  (* conflict detection (XUDY0015/0016/0017) runs against the intact
     list: a conflicting PUL raises *before* anything is discarded, so
     the caller can still inspect (or pretty-print) the rejected
     updates. Only a successful check consumes the list. *)
  check_conflicts prims;
  t.items <- [];
  (* A non-empty apply during a recorded listener run is an effect: the
     run is impure and its memo must never be skipped. *)
  if prims <> [] && Footprint.recording () then Footprint.poison ();
  let apply_phases () =
    List.iter
      (fun phase ->
        let in_phase = List.filter (fun p -> rank p = phase) prims in
        if !Obs.Metrics.enabled && in_phase <> [] then begin
          Obs.Metrics.incr ~by:(List.length in_phase) phase_metric.(phase);
          List.iter (fun p -> Obs.Metrics.incr (prim_metric p)) in_phase
        end;
        List.iter apply_one in_phase)
      [ 0; 1; 2; 3; 4 ]
  in
  (* One observer/footprint changeset per apply: observers see the
     fully-applied post-transaction state, in mutation order. *)
  let apply_phases () = Dom.with_batch apply_phases in
  if !Obs.Trace.enabled then
    Obs.Trace.with_span
      ~attrs:[ ("primitives", string_of_int (List.length prims)) ]
      "pul.apply" apply_phases
  else apply_phases ()

let pp_primitive ppf p =
  let name =
    match p with
    | Insert_into _ -> "insert-into"
    | Insert_first _ -> "insert-first"
    | Insert_last _ -> "insert-last"
    | Insert_before _ -> "insert-before"
    | Insert_after _ -> "insert-after"
    | Insert_attributes _ -> "insert-attributes"
    | Delete _ -> "delete"
    | Replace_node _ -> "replace-node"
    | Replace_value _ -> "replace-value"
    | Rename _ -> "rename"
  in
  Format.pp_print_string ppf name

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_primitive)
    (List.rev t.items)
