type 'a entry = {
  value : 'a;
  cost : int;
  gen : int;
  mutable stamp : int;  (** recency: larger = more recently used *)
}

type 'a t = {
  cache_name : string;
  mutable cap : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable gen : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable cost_saved : int;
  autonomous : bool;
  mutable on_drop : string -> 'a -> unit;
}

let enabled = ref true
let set_enabled b = enabled := b

let create ?(name = "cache") ?(capacity = 256) ?(autonomous = false) () =
  {
    cache_name = name;
    cap = max 1 capacity;
    table = Hashtbl.create 64;
    tick = 0;
    gen = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    cost_saved = 0;
    autonomous;
    on_drop = (fun _ _ -> ());
  }

let set_on_drop t f = t.on_drop <- f
let live t = t.autonomous || !enabled

let drop t key e =
  Hashtbl.remove t.table key;
  t.on_drop key e.value

let name t = t.cache_name
let capacity t = t.cap
let length t = Hashtbl.length t.table
let generation t = t.gen

let count t event =
  if !Obs.Metrics.enabled then Obs.Metrics.incr (t.cache_name ^ "." ^ event)

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

(* Least-recently-used key by linear scan: capacities are small (a few
   hundred compiled scripts) and insertion is the cold path, so O(n)
   here beats carrying an intrusive list through every lookup. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      t.table None
  in
  match victim with
  | Some (k, _) ->
      (match Hashtbl.find_opt t.table k with
      | Some e -> drop t k e
      | None -> ());
      t.evictions <- t.evictions + 1;
      count t "eviction"
  | None -> ()

let miss t =
  t.misses <- t.misses + 1;
  count t "miss"

let find t key =
  if not (live t) then None
  else
    match Hashtbl.find_opt t.table key with
    | Some e when e.gen = t.gen ->
        t.hits <- t.hits + 1;
        t.cost_saved <- t.cost_saved + e.cost;
        if !Obs.Metrics.enabled then begin
          Obs.Metrics.incr (t.cache_name ^ ".hit");
          Obs.Metrics.incr ~by:e.cost (t.cache_name ^ ".cost-saved")
        end;
        touch t e;
        Some e.value
    | Some e ->
        (* stale generation: behaves like a miss and frees the slot *)
        drop t key e;
        miss t;
        None
    | None ->
        miss t;
        None

let add t key ~cost value =
  if live t then begin
    (match Hashtbl.find_opt t.table key with
    | Some old -> drop t key old
    | None ->
        while Hashtbl.length t.table >= t.cap do
          evict_lru t
        done);
    let e = { value; cost = max 0 cost; gen = t.gen; stamp = 0 } in
    touch t e;
    Hashtbl.replace t.table key e
  end

let remove t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> drop t key e
  | None -> ()

let invalidate t =
  t.gen <- t.gen + 1;
  t.invalidations <- t.invalidations + 1;
  count t "invalidation"

let set_capacity t n =
  t.cap <- max 1 n;
  while Hashtbl.length t.table > t.cap do
    evict_lru t
  done

let clear t =
  let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.table [] in
  Hashtbl.reset t.table;
  List.iter (fun (k, e) -> t.on_drop k e.value) entries

(* Live (current-generation) entries, in no particular order. *)
let iter f (t : 'a t) =
  Hashtbl.iter
    (fun k (e : 'a entry) -> if e.gen = t.gen then f k e.value)
    t.table

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  cost_saved : int;
}

let stats (t : 'a t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.table;
    cost_saved = t.cost_saved;
  }

let reset_stats (t : 'a t) =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.invalidations <- 0;
  t.cost_saved <- 0

let hit_rate (t : 'a t) =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total
