(** Pending update lists (XQuery Update Facility).

    Updating expressions accumulate update primitives; nothing touches
    the target tree until {!apply}. The paper relies on this snapshot
    semantics (§3.2: "all modifications are performed once the
    expression is entirely evaluated") and on the Scripting Extension
    applying the list at each statement boundary (§3.3). *)

open Xmlb

type primitive =
  | Insert_into of Dom.node * Dom.node list
  | Insert_first of Dom.node * Dom.node list
  | Insert_last of Dom.node * Dom.node list
  | Insert_before of Dom.node * Dom.node list
  | Insert_after of Dom.node * Dom.node list
  | Insert_attributes of Dom.node * Dom.node list
  | Delete of Dom.node
  | Replace_node of Dom.node * Dom.node list
  | Replace_value of Dom.node * string
  | Rename of Dom.node * Qname.t

type t

val create : unit -> t
val add : t -> primitive -> unit
val is_empty : t -> bool
val length : t -> int
val merge : into:t -> t -> unit

(** Apply all pending updates in XQUF §3.2.2 phase order (see the rank
    comment in the implementation), after checking the XQUF conflict
    rules (duplicate rename: XUDY0015; duplicate replace: XUDY0017,
    duplicate replace-value: XUDY0017). Clears the list on success; a
    conflicting list raises {e before} anything is applied or
    discarded, so the caller can still inspect it.
    @raise Xq_error.Error on conflicts. *)
val apply : t -> unit

(** Drop all pending updates without applying them. *)
val clear : t -> unit

val pp : Format.formatter -> t -> unit
