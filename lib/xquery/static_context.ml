open Xmlb

type external_function =
  Call_ctx.t -> Xdm_item.sequence list -> Xdm_item.sequence

type module_resolution =
  | Module_source of string
  | Module_external of (Qname.t * int * external_function) list
  | Module_not_found

type t = {
  mutable ns : Qname.Env.t;
  mutable default_fun_ns : string;
  mutable boundary_space : bool;
  functions : (int * int * int, Ast.function_decl) Hashtbl.t;
  externals : (int * int * int, external_function) Hashtbl.t;
  mutable variables : (Qname.t * Ast.seq_type option * Ast.expr option) list;
  mutable options : (Qname.t * string) list;
  mutable blocked : (string * string) list;
  mutable imported : string list;
  mutable resolver : uri:string -> locations:string list -> module_resolution;
}

let create () =
  {
    ns = Qname.Env.initial;
    default_fun_ns = Qname.Ns.fn;
    boundary_space = false;
    functions = Hashtbl.create 16;
    externals = Hashtbl.create 16;
    variables = [];
    options = [];
    blocked = [];
    imported = [];
    resolver = (fun ~uri:_ ~locations:_ -> Module_not_found);
  }

let copy t =
  {
    t with
    functions = Hashtbl.copy t.functions;
    externals = Hashtbl.copy t.externals;
  }

let ns_env t = t.ns
let declare_namespace t ~prefix ~uri = t.ns <- Qname.Env.bind t.ns ~prefix ~uri

let declare_default_element_ns t uri =
  t.ns <- Qname.Env.bind_default t.ns ~uri:(Some uri)

let declare_default_function_ns t uri = t.default_fun_ns <- uri
let default_function_ns t = t.default_fun_ns

let resolve t ~kind qn =
  match qn.Qname.uri with
  | Some _ -> qn
  | None -> (
      match (qn.Qname.prefix, kind) with
      | None, `Function -> Qname.with_uri qn (Some t.default_fun_ns)
      | None, `Element -> Qname.with_uri qn (Qname.Env.default t.ns)
      | None, `Other -> qn
      | Some p, _ -> (
          match Qname.Env.lookup t.ns p with
          | Some uri -> Qname.with_uri qn (Some uri)
          | None ->
              Xq_error.raise_error Xq_error.syntax "unbound namespace prefix %S" p))

(* Function tables are keyed by (uri sym, local sym, arity) int triples
   built from the Qname's pre-interned symbols — no Clark-string
   allocation per declaration or lookup. *)
let key qn arity = (qn.Qname.usym, (qn.Qname.lsym :> int), arity)

let declare_function t (f : Ast.function_decl) =
  Hashtbl.replace t.functions (key f.Ast.fname (List.length f.Ast.params)) f

let find_function t qn ~arity = Hashtbl.find_opt t.functions (key qn arity)

let declared_functions t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.functions []

let declare_variable t qn st e = t.variables <- t.variables @ [ (qn, st, e) ]

let redeclare_variable t qn st e =
  if List.exists (fun (q, _, _) -> Qname.equal q qn) t.variables then
    t.variables <-
      List.map
        (fun (q, st0, e0) -> if Qname.equal q qn then (q, st, e) else (q, st0, e0))
        t.variables
  else declare_variable t qn st e

let global_variables t = t.variables
let set_option t qn v = t.options <- (qn, v) :: t.options

let get_option t qn =
  List.find_map
    (fun (q, v) -> if Qname.equal q qn then Some v else None)
    t.options

let set_boundary_space_preserve t b = t.boundary_space <- b
let boundary_space_preserve t = t.boundary_space

let register_external t qn ~arity f = Hashtbl.replace t.externals (key qn arity) f
let find_external t qn ~arity = Hashtbl.find_opt t.externals (key qn arity)

let block_function t ~uri ~local = t.blocked <- (uri, local) :: t.blocked

let is_blocked t qn =
  List.exists
    (fun (uri, local) ->
      Option.equal String.equal (Some uri) qn.Qname.uri
      && String.equal local qn.Qname.local)
    t.blocked

let mark_imported t uri = t.imported <- uri :: t.imported
let is_imported t uri = List.mem uri t.imported
let set_module_resolver t r = t.resolver <- r
let resolve_module t ~uri ~locations = t.resolver ~uri ~locations

(* Everything that can influence compilation is pure data except the
   module resolver (a closure) and the external-function
   implementations; those are represented by their registration keys
   only, so two contexts that register the same names but different
   behaviour fingerprint identically — callers that swap resolvers or
   externals under the same names must invalidate the query cache. *)
let fingerprint t =
  let sorted_keys h =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])
  in
  let functions =
    List.sort compare
      (Hashtbl.fold (fun k f acc -> (k, f) :: acc) t.functions [])
  in
  let payload =
    ( t.ns,
      t.default_fun_ns,
      t.boundary_space,
      functions,
      sorted_keys t.externals,
      t.variables,
      t.options,
      t.blocked,
      t.imported )
  in
  Digest.to_hex (Digest.string (Marshal.to_string payload []))
