(** Static expression analyses shared by {!Optimizer}, {!Eval} and
    {!Compile}. All analyses are conservative: unrecognized forms count
    as focus-dependent / positional / numeric, so a consumer can only
    under-apply an optimisation, never miscompile. *)

(** [a op b] ⟺ [b (mirror_comp op) a] — the operand-swap mirror of a
    comparison operator (not its negation). *)
val mirror_comp : Ast.value_comp -> Ast.value_comp

(** Rebuild an expression with [f] applied to every direct
    subexpression (statements, full-text selections and constructor
    attribute parts included). *)
val map_children : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr

val map_ft : (Ast.expr -> Ast.expr) -> Ast.ft_selection -> Ast.ft_selection
val map_stmt : (Ast.expr -> Ast.expr) -> Ast.statement -> Ast.statement

(** Does the predicate hold for the expression or any transitive
    subexpression? *)
val exists_expr : (Ast.expr -> bool) -> Ast.expr -> bool

(** May the expression's value be numeric (making it a positional
    predicate)? Conservative. *)
val may_yield_number : Ast.expr -> bool

(** Does the expression observe the focus position or size —
    [fn:position]/[fn:last] directly, or an opaque user/external call
    (function bodies see the caller's focus in this engine)? *)
val uses_focus : Ast.expr -> bool

(** Does any predicate in the list potentially observe the focus
    position (numeric value, [fn:position]/[fn:last], or a call into
    user code)? *)
val has_positional : Ast.expr list -> bool

(** Needs-last / needs-position: does the expression observe the focus
    [size] (resp. [position])? Computing a focus size forces
    materialisation; position streams as an incremental counter. *)
val uses_last : Ast.expr -> bool

val uses_position : Ast.expr -> bool

(** Axes that emit distinct nodes in document order when expanded from
    a single origin node. *)
val forward_ordered : Ast.axis -> bool

(** Sortedness lattice for step chains: [`One] — at most one node;
    [`Sorted] — distinct nodes in document order; [`Unknown] — no
    guarantee (re-sort required). *)
val seq_class : Ast.expr -> [ `One | `Sorted | `Unknown ]

(** Is the expression exactly [fn:position()]? *)
val is_position_call : Ast.expr -> bool

(** Bounded positional-take shape of a predicate: [`Nth k] for a
    numeric literal or [position() eq k], [`First k] for
    [position() le k] — both allow an early-exit pull. *)
val take_shape : Ast.expr -> [ `Nth of int | `First of int ] option

(** Operand forms whose lazy evaluation can skip meaningful work. *)
val worth_streaming : Ast.expr -> bool

(** Does the final step/filter carry a bounded positional take? *)
val has_bounded_take : Ast.expr -> bool
