open Xmlb
module A = Xdm_atomic

let rewrites = ref 0

let fired e =
  incr rewrites;
  e

let rewrite_count () = !rewrites

let passes = ref 1
let last_passes () = !passes

let is_count_call qn = qn.Qname.local = "count" && qn.Qname.uri = Some Qname.Ns.fn
let fn_call name args = Ast.E_call (Qname.make ~uri:Qname.Ns.fn name, args)

let literal_bool = function
  | Ast.E_literal (A.Boolean b) -> Some b
  | Ast.E_call ({ Qname.local = "true"; uri = Some u; _ }, [])
    when u = Qname.Ns.fn ->
      Some true
  | Ast.E_call ({ Qname.local = "false"; uri = Some u; _ }, [])
    when u = Qname.Ns.fn ->
      Some false
  | _ -> None

let literal_zero = function
  | Ast.E_literal (A.Integer 0) -> true
  | _ -> false

let mirror_comp = Focus_analysis.mirror_comp

(* ------------------------------------------------------------------ *)
(* generic one-level traversal (shared, see {!Focus_analysis})         *)

let map_children = Focus_analysis.map_children
let exists_expr = Focus_analysis.exists_expr

(* ------------------------------------------------------------------ *)
(* positional-predicate / focus analyses (shared, see {!Focus_analysis}) *)

let uses_focus = Focus_analysis.uses_focus
let has_positional = Focus_analysis.has_positional
let uses_last = Focus_analysis.uses_last
let uses_position = Focus_analysis.uses_position

(* ------------------------------------------------------------------ *)
(* literal let inlining                                                *)

exception Cannot_inline

let clause_binds qn = function
  | Ast.For_clause { var; pos_var; _ } ->
      Qname.equal var qn
      || (match pos_var with Some p -> Qname.equal p qn | None -> false)
  | Ast.Let_clause { var; _ } -> Qname.equal var qn

(* Substitute [$qn := lit] in [e]. Stops descending at binders that
   shadow [qn]; refuses ([Cannot_inline]) on scripting blocks that
   mention the variable at all, since a block may re-declare or
   [set $qn := …] it. *)
let substitute qn lit e =
  let rec sub (e : Ast.expr) =
    match e with
    | Ast.E_var q when Qname.equal q qn -> Ast.E_literal lit
    | Ast.E_block _ ->
        if
          exists_expr
            (function
              | Ast.E_var q -> Qname.equal q qn
              | Ast.E_block stmts ->
                  List.exists
                    (function
                      | Ast.S_var_decl (v, _, _) | Ast.S_assign (v, _) ->
                          Qname.equal v qn
                      | _ -> false)
                    stmts
              | _ -> false)
            e
        then raise Cannot_inline
        else e
    | Ast.E_flwor { clauses; where; order; return } ->
        let clauses, shadowed = sub_clauses [] false clauses in
        if shadowed then Ast.E_flwor { clauses; where; order; return }
        else
          Ast.E_flwor
            {
              clauses;
              where = Option.map sub where;
              order = List.map (fun o -> { o with Ast.key = sub o.Ast.key }) order;
              return = sub return;
            }
    | Ast.E_hash_join j ->
        (* sources are outside both bindings; each key sees only its
           own variable; where/order/return see both *)
        let lb = Qname.equal j.Ast.jleft_var qn
        and rb = Qname.equal j.Ast.jright_var qn in
        Ast.E_hash_join
          {
            j with
            jleft_source = sub j.Ast.jleft_source;
            jright_source = sub j.Ast.jright_source;
            jleft_key = (if lb then j.Ast.jleft_key else sub j.Ast.jleft_key);
            jright_key = (if rb then j.Ast.jright_key else sub j.Ast.jright_key);
            jwhere =
              (if lb || rb then j.Ast.jwhere else Option.map sub j.Ast.jwhere);
            jorder =
              (if lb || rb then j.Ast.jorder
               else
                 List.map
                   (fun o -> { o with Ast.key = sub o.Ast.key })
                   j.Ast.jorder);
            jreturn = (if lb || rb then j.Ast.jreturn else sub j.Ast.jreturn);
          }
    | Ast.E_quantified (q, binds, body) ->
        let binds, shadowed =
          List.fold_left
            (fun (acc, shadowed) (v, t, src) ->
              let src = if shadowed then src else sub src in
              ((v, t, src) :: acc, shadowed || Qname.equal v qn))
            ([], false) binds
        in
        let binds = List.rev binds in
        Ast.E_quantified (q, binds, if shadowed then body else sub body)
    | Ast.E_typeswitch (op, cases, (dv, db)) ->
        let cases =
          List.map
            (fun c ->
              match c.Ast.case_var with
              | Some v when Qname.equal v qn -> c
              | _ -> { c with Ast.case_body = sub c.Ast.case_body })
            cases
        in
        let db =
          match dv with Some v when Qname.equal v qn -> db | _ -> sub db
        in
        Ast.E_typeswitch (sub op, cases, (dv, db))
    | Ast.E_transform (binds, m, r) ->
        let binds, shadowed =
          List.fold_left
            (fun (acc, shadowed) (v, src) ->
              let src = if shadowed then src else sub src in
              ((v, src) :: acc, shadowed || Qname.equal v qn))
            ([], false) binds
        in
        let binds = List.rev binds in
        if shadowed then Ast.E_transform (binds, m, r)
        else Ast.E_transform (binds, sub m, sub r)
    | e -> map_children sub e
  and sub_clauses acc shadowed = function
    | [] -> (List.rev acc, shadowed)
    | c :: rest ->
        let c =
          if shadowed then c
          else
            match c with
            | Ast.For_clause f -> Ast.For_clause { f with source = sub f.source }
            | Ast.Let_clause l -> Ast.Let_clause { l with value = sub l.value }
        in
        sub_clauses (c :: acc) (shadowed || clause_binds qn c) rest
  in
  sub e

(* Drop the first [let $x := <literal>] clause (no declared type) and
   substitute the literal into the clause's scope. Returns the
   rewritten expression, or [None] when no clause is inlinable. *)
let rec inline_literal_let clauses where order return =
  let rec try_at before = function
    | [] -> None
    | (Ast.Let_clause { var; var_type = None; value = Ast.E_literal lit } as c)
      :: rest -> (
        let shadowed_later = List.exists (clause_binds var) rest in
        match
          let rest = List.map (sub_clause var lit) (mark_suffix var rest) in
          let sub e = if shadowed_later then e else substitute var lit e in
          ( rest,
            Option.map sub where,
            List.map (fun o -> { o with Ast.key = sub o.Ast.key }) order,
            sub return )
        with
        | rest, where, order, return -> (
            match (List.rev_append before rest, where, order) with
            | [], None, [] -> Some return
            | clauses, where, order ->
                Some (Ast.E_flwor { clauses; where; order; return }))
        | exception Cannot_inline -> try_at (c :: before) rest)
    | c :: rest -> try_at (c :: before) rest
  in
  try_at [] clauses

(* tag each suffix clause with whether [var] has been re-bound before it *)
and mark_suffix var rest =
  let _, tagged =
    List.fold_left
      (fun (shadowed, acc) c ->
        (shadowed || clause_binds var c, (shadowed, c) :: acc))
      (false, []) rest
  in
  List.rev tagged

and sub_clause var lit (shadowed, c) =
  if shadowed then c
  else
    match c with
    | Ast.For_clause f ->
        Ast.For_clause { f with source = substitute var lit f.source }
    | Ast.Let_clause l ->
        Ast.Let_clause { l with value = substitute var lit l.value }

(* ------------------------------------------------------------------ *)
(* equi-join planning                                                  *)

let join_planning = ref true
let set_join_planning b = join_planning := b
let join_planning_enabled () = !join_planning

let mentions_var qn e =
  exists_expr (function Ast.E_var v -> Qname.equal v qn | _ -> false) e

(* A join key must be a step path rooted at the join variable —
   [$v/@k], [$v//sku], [($v/k)[1]] … Such a path yields nodes, whose
   atoms are always xs:untypedAtomic, so under both [eq] and [=] the
   keys compare as strings and a string-keyed hash table is exact
   (untyped-vs-untyped never promotes to numeric). A bare [$v] is NOT
   a key: the bound item could be an atomic of any type, and typed
   comparison semantics would diverge from string hashing. *)
let rec steps_only = function
  | Ast.E_step _ -> true
  | Ast.E_path (a, b) -> steps_only a && steps_only b
  | Ast.E_filter (a, _) -> steps_only a
  | _ -> false

let rec var_step_path var = function
  | Ast.E_path (base, tail) -> var_rooted var base && steps_only tail
  | Ast.E_filter (base, _) -> var_step_path var base
  | _ -> false

and var_rooted var = function
  | Ast.E_var v -> Qname.equal v var
  | e -> var_step_path var e

(* ordered conjuncts of a (left-associated) [and] chain *)
let rec conjuncts = function
  | Ast.E_and (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | c :: rest -> Some (List.fold_left (fun a b -> Ast.E_and (a, b)) c rest)

(* Recognise [pred] as an equi-join comparison between a left-rooted
   and a right-rooted key, in either operand order. Keys that might
   observe the focus (via opaque calls) are conservatively refused.
   Returns (left key, right key, is-general-comparison). *)
let key_pair ~lv ~rv pred =
  let classify a b general =
    let ok v other k =
      var_step_path v k && not (mentions_var other k) && not (uses_focus k)
    in
    if ok lv rv a && ok rv lv b then Some (a, b, general)
    else if ok rv lv a && ok lv rv b then Some (b, a, general)
    else None
  in
  match pred with
  | Ast.E_value_comp (Ast.Eq, a, b) -> classify a b false
  | Ast.E_general_comp (Ast.Eq, a, b) -> classify a b true
  | _ -> None

(* a scripting block in the where clause could observe how often and
   in which order the filter runs; those FLWORs keep the nested-loop
   plan *)
let has_scripting = exists_expr (function Ast.E_block _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* the rewrite rules                                                   *)

(* one bottom-up pass; [go] recurses, then local rules fire *)
let rec go (e : Ast.expr) : Ast.expr =
  let e = map_children go e in
  if Ast.is_updating e then e else rules e

and rules e =
  match e with
  (* constant folding: arithmetic on numeric literals *)
  | Ast.E_arith (op, Ast.E_literal a, Ast.E_literal b)
    when A.is_numeric a && A.is_numeric b -> (
      let f =
        match op with
        | Ast.Add -> A.add
        | Ast.Sub -> A.subtract
        | Ast.Mul -> A.multiply
        | Ast.Div -> A.divide
        | Ast.Idiv -> A.integer_divide
        | Ast.Mod -> A.modulo
      in
      match f a b with
      | v -> fired (Ast.E_literal v)
      | exception _ -> e)
  (* boolean short-circuits with constants *)
  | Ast.E_and (a, b) -> (
      match (literal_bool a, literal_bool b) with
      | Some false, _ | _, Some false ->
          fired (Ast.E_literal (A.Boolean false))
      | Some true, _ -> fired (fn_call "boolean" [ b ])
      | _, Some true -> fired (fn_call "boolean" [ a ])
      | _ -> e)
  | Ast.E_or (a, b) -> (
      match (literal_bool a, literal_bool b) with
      | Some true, _ | _, Some true -> fired (Ast.E_literal (A.Boolean true))
      | Some false, _ -> fired (fn_call "boolean" [ b ])
      | _, Some false -> fired (fn_call "boolean" [ a ])
      | _ -> e)
  (* constant conditionals *)
  | Ast.E_if (c, t, f) -> (
      match literal_bool c with
      | Some true -> fired t
      | Some false -> fired f
      | None -> e)
  (* //x : descendant-or-self::node()/child::x  →  descendant::x *)
  | Ast.E_path
      ( Ast.E_path (base, Ast.E_step (Ast.Descendant_or_self, Ast.Kind_test Ast.Any_kind, [])),
        Ast.E_step (Ast.Child, test, preds) )
    when not (has_positional preds) ->
      fired (Ast.E_path (base, Ast.E_step (Ast.Descendant, test, preds)))
  (* e/self::node() → e *)
  | Ast.E_path (base, Ast.E_step (Ast.Self, Ast.Kind_test Ast.Any_kind, [])) ->
      fired base
  (* predicate [true()] elimination *)
  | Ast.E_step (axis, test, preds)
    when List.exists (fun p -> literal_bool p = Some true) preds ->
      fired
        (Ast.E_step
           (axis, test, List.filter (fun p -> literal_bool p <> Some true) preds))
  | Ast.E_filter (base, preds)
    when List.exists (fun p -> literal_bool p = Some true) preds -> (
      match List.filter (fun p -> literal_bool p <> Some true) preds with
      | [] -> fired base
      | preds -> fired (Ast.E_filter (base, preds)))
  (* count(e) = 0 → empty(e); count(e) != 0 / > 0 / >= 1 → exists(e) *)
  | Ast.E_general_comp (Ast.Eq, Ast.E_call (qn, [ arg ]), z)
  | Ast.E_value_comp (Ast.Eq, Ast.E_call (qn, [ arg ]), z)
    when is_count_call qn && literal_zero z ->
      fired (fn_call "empty" [ arg ])
  | Ast.E_general_comp (Ast.Ne, Ast.E_call (qn, [ arg ]), z)
  | Ast.E_value_comp (Ast.Ne, Ast.E_call (qn, [ arg ]), z)
  | Ast.E_general_comp (Ast.Gt, Ast.E_call (qn, [ arg ]), z)
  | Ast.E_value_comp (Ast.Gt, Ast.E_call (qn, [ arg ]), z)
    when is_count_call qn && literal_zero z ->
      fired (fn_call "exists" [ arg ])
  | Ast.E_general_comp (Ast.Ge, Ast.E_call (qn, [ arg ]), Ast.E_literal (A.Integer 1))
  | Ast.E_value_comp (Ast.Ge, Ast.E_call (qn, [ arg ]), Ast.E_literal (A.Integer 1))
    when is_count_call qn ->
      fired (fn_call "exists" [ arg ])
  (* count(e) < 1 / <= 0 → empty(e) *)
  | Ast.E_general_comp (Ast.Lt, Ast.E_call (qn, [ arg ]), Ast.E_literal (A.Integer 1))
  | Ast.E_value_comp (Ast.Lt, Ast.E_call (qn, [ arg ]), Ast.E_literal (A.Integer 1))
    when is_count_call qn ->
      fired (fn_call "empty" [ arg ])
  | Ast.E_general_comp (Ast.Le, Ast.E_call (qn, [ arg ]), z)
  | Ast.E_value_comp (Ast.Le, Ast.E_call (qn, [ arg ]), z)
    when is_count_call qn && literal_zero z ->
      fired (fn_call "empty" [ arg ])
  (* normalise literal-on-the-left count comparisons so the rules
     above — and the streaming bounded-count pull — see one shape *)
  | Ast.E_general_comp (op, (Ast.E_literal _ as lit), (Ast.E_call (qn, [ _ ]) as c))
    when is_count_call qn ->
      fired (Ast.E_general_comp (mirror_comp op, c, lit))
  | Ast.E_value_comp (op, (Ast.E_literal _ as lit), (Ast.E_call (qn, [ _ ]) as c))
    when is_count_call qn ->
      fired (Ast.E_value_comp (mirror_comp op, c, lit))
  (* general comparison of singleton literals → value comparison
     (skips the existential pairing loop at run time) *)
  | Ast.E_general_comp (op, (Ast.E_literal _ as a), (Ast.E_literal _ as b)) ->
      fired (Ast.E_value_comp (op, a, b))
  (* fn:concat over literals folds to one string literal *)
  | Ast.E_call ({ Qname.local = "concat"; uri = Some u; _ }, args)
    when u = Qname.Ns.fn
         && args <> []
         && List.for_all (function Ast.E_literal _ -> true | _ -> false) args ->
      fired
        (Ast.E_literal
           (A.String
              (String.concat ""
                 (List.map
                    (function
                      | Ast.E_literal a -> A.to_string a
                      | _ -> assert false)
                    args))))
  (* flatten nested sequences; () members vanish in the same stroke *)
  | Ast.E_sequence es when List.exists (function Ast.E_sequence _ -> true | _ -> false) es ->
      fired
        (Ast.E_sequence
           (List.concat_map
              (function Ast.E_sequence inner -> inner | e -> [ e ])
              es))
  (* (e) → e *)
  | Ast.E_sequence [ e ] -> fired e
  (* two-[for] equi-join FLWOR → hash join. Preconditions: plain for
     clauses (no position variables, no declared types), independent
     right source (else the build side is correlated and cannot be
     hashed once), and the join comparison must be the FIRST conjunct
     of the where clause — a later conjunct may not be reordered past
     an earlier one that could raise. *)
  | Ast.E_flwor
      {
        clauses =
          [
            Ast.For_clause
              { var = lv; pos_var = None; var_type = None; source = ls };
            Ast.For_clause
              { var = rv; pos_var = None; var_type = None; source = rs };
          ];
        where = Some w;
        order;
        return;
      }
    when !join_planning
         && (not (Qname.equal lv rv))
         && (not (mentions_var lv rs))
         && not (has_scripting w) -> (
      match conjuncts w with
      | jpred :: rest -> (
          match key_pair ~lv ~rv jpred with
          | Some (lk, rk, general) ->
              fired
                (Ast.E_hash_join
                   {
                     jleft_var = lv;
                     jleft_source = ls;
                     jleft_key = lk;
                     jright_var = rv;
                     jright_source = rs;
                     jright_key = rk;
                     jgeneral = general;
                     jwhere = conjoin rest;
                     jorder = order;
                     jreturn = return;
                   })
          | None -> e)
      | [] -> e)
  (* literal let elimination: let $x := 1 return … $x … *)
  | Ast.E_flwor { clauses; where; order; return } -> (
      match inline_literal_let clauses where order return with
      | Some e' -> fired e'
      | None -> e)
  | e -> e

(* ------------------------------------------------------------------ *)
(* the driver: a budgeted fixpoint                                     *)

(* A single bottom-up pass can miss follow-on opportunities (inlining a
   let exposes constant arithmetic; folding fn:concat exposes a
   literal comparison), so [go] re-runs until no rule fires. The pass
   budget bounds pathological inputs; in practice two or three passes
   reach the fixpoint. *)
let default_max_passes = 10

let fixpoint ?(max_passes = default_max_passes) f x =
  let rec loop n x =
    let before = !rewrites in
    let x = f x in
    if !rewrites = before || n >= max_passes then begin
      passes := n;
      x
    end
    else loop (n + 1) x
  in
  loop 1 x

let optimize_expr ?max_passes e = fixpoint ?max_passes go e

let optimize ?max_passes (prog : Ast.prog) =
  let pass (prog : Ast.prog) =
    let prolog =
      List.map
        (function
          | Ast.P_function f ->
              Ast.P_function { f with Ast.body = Option.map go f.Ast.body }
          | Ast.P_variable (v, t, e) -> Ast.P_variable (v, t, Option.map go e)
          | d -> d)
        prog.Ast.prolog
    in
    { prog with Ast.prolog; body = Option.map go prog.Ast.body }
  in
  fixpoint ?max_passes pass prog
