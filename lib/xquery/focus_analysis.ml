(* Static expression analyses shared by the optimizer, the evaluator
   and the closure compiler. Everything here is conservative: an
   unrecognized form counts as focus-dependent / positional / numeric,
   so consumers can only under-apply an optimisation, never miscompile.

   Historically the focus analyses lived in Optimizer and the streaming
   shape analyses in Eval, with near-duplicates of each other; they are
   deduplicated here so all three consumers agree on one answer. *)

open Xmlb
module A = Xdm_atomic

(* [a op b] ⟺ [b (mirror op) a] — operand swap, not negation *)
let mirror_comp : Ast.value_comp -> Ast.value_comp = function
  | Ast.Eq -> Ast.Eq
  | Ast.Ne -> Ast.Ne
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le

let is_fn qn names =
  qn.Qname.uri = Some Qname.Ns.fn && List.mem qn.Qname.local names

(* ------------------------------------------------------------------ *)
(* generic one-level traversal                                         *)

(* Rebuild [e] with [f] applied to every direct subexpression
   (including those inside statements, full-text selections and
   constructor attribute parts). The recursion schemes built on top —
   the optimizer's rewriter, the focus analyses, variable substitution
   — are all instances of this. *)
let rec map_children f (e : Ast.expr) : Ast.expr =
  let g = f in
  match e with
  | Ast.E_literal _ | Ast.E_var _ | Ast.E_context_item | Ast.E_root
  | Ast.E_text_literal _ ->
      e
  | Ast.E_sequence es -> Ast.E_sequence (List.map g es)
  | Ast.E_range (a, b) -> Ast.E_range (g a, g b)
  | Ast.E_if (c, t, f) -> Ast.E_if (g c, g t, g f)
  | Ast.E_or (a, b) -> Ast.E_or (g a, g b)
  | Ast.E_and (a, b) -> Ast.E_and (g a, g b)
  | Ast.E_value_comp (op, a, b) -> Ast.E_value_comp (op, g a, g b)
  | Ast.E_general_comp (op, a, b) -> Ast.E_general_comp (op, g a, g b)
  | Ast.E_node_comp (op, a, b) -> Ast.E_node_comp (op, g a, g b)
  | Ast.E_ftcontains (a, sel) -> Ast.E_ftcontains (g a, map_ft f sel)
  | Ast.E_arith (op, a, b) -> Ast.E_arith (op, g a, g b)
  | Ast.E_unary_minus a -> Ast.E_unary_minus (g a)
  | Ast.E_union (a, b) -> Ast.E_union (g a, g b)
  | Ast.E_intersect (a, b) -> Ast.E_intersect (g a, g b)
  | Ast.E_except (a, b) -> Ast.E_except (g a, g b)
  | Ast.E_instance_of (a, st) -> Ast.E_instance_of (g a, st)
  | Ast.E_treat_as (a, st) -> Ast.E_treat_as (g a, st)
  | Ast.E_castable_as (a, ty, o) -> Ast.E_castable_as (g a, ty, o)
  | Ast.E_cast_as (a, ty, o) -> Ast.E_cast_as (g a, ty, o)
  | Ast.E_step (axis, test, preds) -> Ast.E_step (axis, test, List.map g preds)
  | Ast.E_path (a, b) -> Ast.E_path (g a, g b)
  | Ast.E_filter (a, preds) -> Ast.E_filter (g a, List.map g preds)
  | Ast.E_call (qn, args) -> Ast.E_call (qn, List.map g args)
  | Ast.E_ordered a -> Ast.E_ordered (g a)
  | Ast.E_unordered a -> Ast.E_unordered (g a)
  | Ast.E_enclosed a -> Ast.E_enclosed (g a)
  | Ast.E_flwor { clauses; where; order; return } ->
      let clauses =
        List.map
          (function
            | Ast.For_clause { var; pos_var; var_type; source } ->
                Ast.For_clause { var; pos_var; var_type; source = g source }
            | Ast.Let_clause { var; var_type; value } ->
                Ast.Let_clause { var; var_type; value = g value })
          clauses
      in
      Ast.E_flwor
        {
          clauses;
          where = Option.map g where;
          order = List.map (fun o -> { o with Ast.key = g o.Ast.key }) order;
          return = g return;
        }
  | Ast.E_hash_join j ->
      Ast.E_hash_join
        {
          j with
          jleft_source = g j.jleft_source;
          jleft_key = g j.jleft_key;
          jright_source = g j.jright_source;
          jright_key = g j.jright_key;
          jwhere = Option.map g j.jwhere;
          jorder = List.map (fun o -> { o with Ast.key = g o.Ast.key }) j.jorder;
          jreturn = g j.jreturn;
        }
  | Ast.E_quantified (q, binds, body) ->
      Ast.E_quantified
        (q, List.map (fun (v, t, e) -> (v, t, g e)) binds, g body)
  | Ast.E_typeswitch (op, cases, (dv, db)) ->
      Ast.E_typeswitch
        ( g op,
          List.map (fun c -> { c with Ast.case_body = g c.Ast.case_body }) cases,
          (dv, g db) )
  | Ast.E_direct_element { name; attributes; children } ->
      Ast.E_direct_element
        {
          name;
          attributes =
            List.map
              (fun (an, parts) ->
                ( an,
                  List.map
                    (function
                      | Ast.A_text t -> Ast.A_text t
                      | Ast.A_enclosed e -> Ast.A_enclosed (g e))
                    parts ))
              attributes;
          children = List.map g children;
        }
  | Ast.E_computed_element (a, b) -> Ast.E_computed_element (g a, g b)
  | Ast.E_computed_attribute (a, b) -> Ast.E_computed_attribute (g a, g b)
  | Ast.E_computed_text a -> Ast.E_computed_text (g a)
  | Ast.E_computed_comment a -> Ast.E_computed_comment (g a)
  | Ast.E_computed_pi (a, b) -> Ast.E_computed_pi (g a, g b)
  | Ast.E_computed_document a -> Ast.E_computed_document (g a)
  | Ast.E_insert (p, a, b) -> Ast.E_insert (p, g a, g b)
  | Ast.E_delete a -> Ast.E_delete (g a)
  | Ast.E_replace { value_of; target; source } ->
      Ast.E_replace { value_of; target = g target; source = g source }
  | Ast.E_rename (a, b) -> Ast.E_rename (g a, g b)
  | Ast.E_transform (binds, m, r) ->
      Ast.E_transform (List.map (fun (v, e) -> (v, g e)) binds, g m, g r)
  | Ast.E_block stmts -> Ast.E_block (List.map (map_stmt f) stmts)
  | Ast.E_event_attach { event; binding; target; listener } ->
      Ast.E_event_attach { event = g event; binding; target = g target; listener }
  | Ast.E_event_detach { event; target; listener } ->
      Ast.E_event_detach { event = g event; target = g target; listener }
  | Ast.E_event_trigger { event; target } ->
      Ast.E_event_trigger { event = g event; target = g target }
  | Ast.E_set_style { property; target; value } ->
      Ast.E_set_style { property = g property; target = g target; value = g value }
  | Ast.E_get_style { property; target } ->
      Ast.E_get_style { property = g property; target = g target }

and map_ft f = function
  | Ast.Ft_words (e, o) -> Ast.Ft_words (f e, o)
  | Ast.Ft_and (a, b) -> Ast.Ft_and (map_ft f a, map_ft f b)
  | Ast.Ft_or (a, b) -> Ast.Ft_or (map_ft f a, map_ft f b)
  | Ast.Ft_not a -> Ast.Ft_not (map_ft f a)

and map_stmt f = function
  | Ast.S_var_decl (v, t, e) -> Ast.S_var_decl (v, t, Option.map f e)
  | Ast.S_assign (v, e) -> Ast.S_assign (v, f e)
  | Ast.S_while (c, body) -> Ast.S_while (f c, List.map (map_stmt f) body)
  | (Ast.S_break | Ast.S_continue) as s -> s
  | Ast.S_exit_with e -> Ast.S_exit_with (f e)
  | Ast.S_expr e -> Ast.S_expr (f e)

(* [exists_expr p e]: does [p] hold for [e] or any (transitive)
   subexpression? *)
let exists_expr p e =
  let found = ref false in
  let rec walk e =
    if !found then e
    else if p e then begin
      found := true;
      e
    end
    else map_children walk e
  in
  ignore (walk e);
  !found

(* ------------------------------------------------------------------ *)
(* positional-predicate analysis                                       *)

(* A predicate can observe the focus position/size two ways:

   - its *value* may be numeric (a numeric predicate means "keep the
     item at this position");
   - it *mentions* fn:position()/fn:last() — directly, or through a
     call to a user/external function (this engine deliberately keeps
     the caller's focus visible inside function bodies, see
     {!Dynamic_context.function_scope}). *)

(* fn: builtins whose value is never numeric *)
let boolean_fns =
  [
    "not"; "exists"; "empty"; "boolean"; "true"; "false"; "contains";
    "starts-with"; "ends-with"; "matches"; "lang"; "deep-equal";
    "doc-available"; "codepoint-equal";
  ]

let string_fns =
  [
    "string"; "concat"; "string-join"; "substring"; "substring-before";
    "substring-after"; "normalize-space"; "upper-case"; "lower-case";
    "translate"; "replace"; "name"; "local-name"; "namespace-uri";
    "codepoints-to-string"; "encode-for-uri"; "string-pad";
  ]

let rec may_yield_number (e : Ast.expr) =
  match e with
  | Ast.E_literal a -> A.is_numeric a
  | Ast.E_text_literal _ -> false
  (* node sequences: a node-valued predicate is an existence test *)
  | Ast.E_root | Ast.E_context_item | Ast.E_step _ | Ast.E_path _
  | Ast.E_union _ | Ast.E_intersect _ | Ast.E_except _
  | Ast.E_direct_element _ | Ast.E_computed_element _
  | Ast.E_computed_attribute _ | Ast.E_computed_text _
  | Ast.E_computed_comment _ | Ast.E_computed_pi _ | Ast.E_computed_document _
    ->
      false
  (* boolean-valued forms *)
  | Ast.E_and _ | Ast.E_or _ | Ast.E_value_comp _ | Ast.E_general_comp _
  | Ast.E_node_comp _ | Ast.E_quantified _ | Ast.E_instance_of _
  | Ast.E_castable_as _ | Ast.E_ftcontains _ ->
      false
  | Ast.E_if (_, t, f) -> may_yield_number t || may_yield_number f
  | Ast.E_sequence es -> List.exists may_yield_number es
  | Ast.E_enclosed e | Ast.E_ordered e | Ast.E_unordered e
  | Ast.E_treat_as (e, _) ->
      may_yield_number e
  | Ast.E_filter (e, _) -> may_yield_number e
  | Ast.E_cast_as (_, (A.T_string | A.T_boolean | A.T_any_uri | A.T_qname), _)
    ->
      false
  | Ast.E_call (qn, _) when is_fn qn boolean_fns -> false
  | Ast.E_call (qn, _) when is_fn qn string_fns -> false
  (* arithmetic, ranges, variables, unknown calls, FLWORs, blocks …
     anything not provably non-numeric is treated as positional *)
  | _ -> true

let uses_focus e =
  exists_expr
    (function
      | Ast.E_call ({ Qname.local = "position" | "last"; uri = Some u; _ }, [])
        when u = Qname.Ns.fn ->
          true
      | Ast.E_call (qn, _) ->
          (* xs: constructors are casts; fn: builtins other than
             position/last never read the focus position; any other
             (user/external) function might, since function bodies see
             the caller's focus in this engine *)
          not (qn.Qname.uri = Some Qname.Ns.fn || qn.Qname.uri = Some Qname.Ns.xs)
      | _ -> false)
    e

let has_positional preds =
  List.exists (fun p -> may_yield_number p || uses_focus p) preds

(* needs-last / needs-position: does [e] observe the focus [size]
   (resp. [position])? Used by the streaming evaluator and the closure
   compiler — computing a focus size forces materialising the whole
   sequence, while position is a free incremental counter. Conservative
   like {!uses_focus}: opaque user/external calls count, because this
   engine keeps the caller's focus visible inside function bodies. *)
let uses_focus_component name e =
  exists_expr
    (function
      | Ast.E_call ({ Qname.local; uri = Some u; _ }, [])
        when u = Qname.Ns.fn && String.equal local name ->
          true
      | Ast.E_call (qn, _) ->
          not (qn.Qname.uri = Some Qname.Ns.fn || qn.Qname.uri = Some Qname.Ns.xs)
      | _ -> false)
    e

let uses_last e = uses_focus_component "last" e
let uses_position e = uses_focus_component "position" e

(* ------------------------------------------------------------------ *)
(* streaming shape analyses                                            *)

(* axes that emit distinct nodes in document order when expanded from
   a single origin node *)
let forward_ordered = function
  | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Attribute_axis
  | Ast.Self | Ast.Following_sibling | Ast.Following ->
      true
  | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Preceding_sibling
  | Ast.Preceding ->
      false

(* Static sequence-shape lattice for the sorted-distinct-nodes flag:
   [`One] — at most one node; [`Sorted] — distinct nodes in document
   order; [`Unknown] — no guarantee. A step chain whose class is not
   [`Unknown] can stream without the document_order re-sort: a forward
   axis from a single origin emits document order directly, and
   self/attribute steps over a sorted stream keep it sorted. A child or
   descendant step over a *multi-node* sorted stream is not
   order-preserving in general (ancestor/descendant origins interleave),
   so it stays [`Unknown] and evaluates eagerly. *)
let rec seq_class (e : Ast.expr) : [ `One | `Sorted | `Unknown ] =
  match e with
  | Ast.E_root | Ast.E_context_item -> `One
  | Ast.E_step (axis, _, _) ->
      (* a bare step expands the (single) context item *)
      if forward_ordered axis then `Sorted else `Unknown
  | Ast.E_path (e1, Ast.E_step (axis, _, _)) -> (
      match seq_class e1 with
      | `One -> if forward_ordered axis then `Sorted else `Unknown
      | `Sorted -> (
          match axis with
          | Ast.Self | Ast.Attribute_axis -> `Sorted
          | _ -> `Unknown)
      | `Unknown -> `Unknown)
  | Ast.E_filter (e1, _) -> seq_class e1 (* predicates keep a subsequence *)
  | _ -> `Unknown

(* Early-exit predicate shapes: a numeric literal [k], or
   position() compared against an integer literal. [`Nth k] selects
   one item, [`First k] a bounded prefix — both stop pulling. *)
let is_position_call = function
  | Ast.E_call ({ Qname.local = "position"; uri = Some u; _ }, []) ->
      u = Qname.Ns.fn
  | _ -> false

let take_shape (pred : Ast.expr) =
  let of_comp (op : Ast.value_comp) k =
    match op with
    | Ast.Eq -> Some (`Nth k)
    | Ast.Le -> Some (`First k)
    | Ast.Lt -> Some (`First (k - 1))
    | Ast.Ne | Ast.Gt | Ast.Ge -> None
  in
  match pred with
  | Ast.E_literal (A.Integer k) -> Some (`Nth k)
  | Ast.E_value_comp (op, p, Ast.E_literal (A.Integer k))
  | Ast.E_general_comp (op, p, Ast.E_literal (A.Integer k))
    when is_position_call p ->
      of_comp op k
  | Ast.E_value_comp (op, Ast.E_literal (A.Integer k), p)
  | Ast.E_general_comp (op, Ast.E_literal (A.Integer k), p)
    when is_position_call p ->
      of_comp (mirror_comp op) k
  | _ -> None

(* operand forms whose lazy evaluation can skip meaningful work; tiny
   forms (a bare step, a variable, a literal) are cheaper eagerly and
   dominate predicate bodies evaluated once per context node *)
let worth_streaming = function
  | Ast.E_path _ | Ast.E_filter _ | Ast.E_range _ | Ast.E_flwor _ -> true
  | _ -> false

(* does the final step/filter of [e] carry a bounded take, making a
   top-level streamed evaluation worthwhile? *)
let rec has_bounded_take = function
  | Ast.E_step (_, _, preds) | Ast.E_filter (_, preds) ->
      List.exists (fun p -> Option.is_some (take_shape p)) preds
  | Ast.E_path (_, e2) -> has_bounded_take e2
  | _ -> false
