(** The engine facade: compile and run XQuery programs.

    This is the module hosts embed: the browser runtime (the paper's
    plug-in, Fig. 1) compiles each [<script type="text/xquery">] body
    once and then evaluates the main query and, later, each event
    listener against the live DOM. *)

open Xmlb

type compiled = {
  prog : Ast.prog;
  static : Static_context.t;
  code : Compile.prog_code option;
      (** closure-compiled body + function table; [None] when compiled
          evaluation was off at compile time *)
}

(** Compiled-evaluation ablation switch (default on; the
    {!Eval.set_streaming} pattern). When enabled, {!compile} emits a
    closure IR for the program body and its plain-expression functions,
    and {!eval_body}/{!context_for} execute it; when disabled, the
    tree-walking evaluator (the oracle) runs. Keys the query cache
    ([C1|]/[C0|]) like the join-planner switch. *)
val set_compiled_eval : bool -> unit

val compiled_eval_enabled : unit -> bool

(** A fresh static context with the standard namespaces. *)
val default_static : unit -> Static_context.t

(** Compile a main or library module. Prolog declarations (functions,
    variables, options, imports) are recorded in the static context.
    [optimize] (default true) runs the rewrite pass. *)
val compile : ?optimize:bool -> ?static:Static_context.t -> string -> compiled

(** The process-wide compiled-query cache, keyed by
    (optimize flag, {!Static_context.fingerprint}, source). Hosts that
    swap module resolvers or external-function {e implementations}
    while keeping the same registration keys must
    {!Query_cache.invalidate} it. *)
val query_cache : compiled Query_cache.t

(** Like {!compile}, but consults {!query_cache} first. On a hit the
    cached program's prolog is replayed into [static] — reproducing
    the parser's registrations without re-parsing — and the returned
    artifact carries the caller's context. On a miss it compiles,
    stores a frozen copy, and behaves exactly like {!compile}. Falls
    back to {!compile} while {!Query_cache.enabled} is false. *)
val compile_cached :
  ?optimize:bool -> ?static:Static_context.t -> string -> compiled

(** Build a dynamic context for a compiled program: binds the optional
    context item and evaluates the prolog's global variables.
    [bindings] pre-binds external variables. *)
val context_for :
  ?host:Dynamic_context.host ->
  ?context_item:Xdm_item.item ->
  ?bindings:(Qname.t * Xdm_item.sequence) list ->
  compiled ->
  Dynamic_context.t

(** Evaluate the program body in the given context. Does NOT apply the
    pending update list (callers that want snapshot semantics use
    {!run}). Library modules return the empty sequence. *)
val eval_body : Dynamic_context.t -> compiled -> Xdm_item.sequence

(** Compile-and-run convenience: evaluates the body and applies the
    pending update list (XQUF snapshot semantics). *)
val run :
  ?host:Dynamic_context.host ->
  ?context_item:Xdm_item.item ->
  ?bindings:(Qname.t * Xdm_item.sequence) list ->
  compiled ->
  Xdm_item.sequence

(** One-shot: compile then {!run}. *)
val eval_string :
  ?optimize:bool ->
  ?static:Static_context.t ->
  ?host:Dynamic_context.host ->
  ?context_item:Xdm_item.item ->
  ?bindings:(Qname.t * Xdm_item.sequence) list ->
  string ->
  Xdm_item.sequence

(** Call a function declared by the compiled program. *)
val call :
  Dynamic_context.t -> Qname.t -> Xdm_item.sequence list -> Xdm_item.sequence
