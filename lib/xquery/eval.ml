open Xmlb
module A = Xdm_atomic
module I = Xdm_item
module D = Dynamic_context

exception Exit_with of I.sequence

(* scripting-extension loop control (paper Â§3.3 lists while/continue/break) *)
exception Break_loop
exception Continue_loop

let err code fmt = Xq_error.raise_error code fmt
let type_err fmt = err Xq_error.type_error_code fmt

let max_depth = 4000

(* Streaming ablation switch (mirrors Dom.set_acceleration). When on,
   early-exit consumers — EBV contexts, quantifiers, fn:exists/empty/
   head/subsequence, bounded count comparisons, positional takes —
   pull items through lazy Xdm_seq cursors instead of materialising
   whole sequences. The eager path is kept intact as the oracle. *)
let streaming = ref true
let set_streaming b = streaming := b
let streaming_enabled () = !streaming

(* wrap Xdm exceptions into Xq_error *)
let guard f =
  try f () with
  | A.Type_error m -> type_err "%s" m
  | A.Cast_error m -> err Xq_error.cast_error_code "%s" m
  | Division_by_zero -> err Xq_error.div_by_zero "division by zero"

let protect = guard

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)

let subtree n = n :: Dom.descendants n
let rev_subtree n = List.rev_append (Dom.descendants n) [ n ]

(* following:: as a structural walk — the subtrees of the following
   siblings of the node and of each of its ancestors, nearest ancestor
   first — instead of filtering every node of the document. An
   attribute sorts after its element and before the element's
   children, so its following nodes are the element's descendants plus
   the element's following nodes. *)
let rec structural_following node =
  match Dom.kind node with
  | Dom.Attribute -> (
      match Dom.parent node with
      | Some e -> Dom.descendants e @ structural_following e
      | None -> [])
  | _ ->
      List.concat_map
        (fun a -> List.concat_map subtree (Dom.following_siblings a))
        (node :: Dom.ancestors node)

(* preceding:: in reverse document order (nearest first), mirroring
   the naive filtered-and-reversed result. Ancestors are excluded by
   construction: only sibling subtrees are emitted. *)
let rec structural_preceding node =
  match Dom.kind node with
  | Dom.Attribute -> (
      match Dom.parent node with
      | Some e -> structural_preceding e
      | None -> [])
  | _ ->
      List.concat_map
        (fun a -> List.concat_map rev_subtree (Dom.preceding_siblings a))
        (node :: Dom.ancestors node)

let axis_nodes axis node =
  match (axis : Ast.axis) with
  | Ast.Child -> Dom.children node
  | Ast.Descendant -> Dom.descendants node
  | Ast.Attribute_axis -> Dom.attributes node
  | Ast.Self -> [ node ]
  | Ast.Descendant_or_self -> node :: Dom.descendants node
  | Ast.Parent -> ( match Dom.parent node with None -> [] | Some p -> [ p ])
  | Ast.Ancestor -> Dom.ancestors node (* nearest first *)
  | Ast.Ancestor_or_self -> node :: Dom.ancestors node
  | Ast.Following_sibling -> Dom.following_siblings node
  | Ast.Preceding_sibling -> Dom.preceding_siblings node (* nearest first *)
  | Ast.Following ->
      if Dom.acceleration_enabled () then structural_following node
      else
        let all = Dom.descendants (Dom.root node) in
        List.filter
          (fun m ->
            Dom.compare_order node m < 0 && not (Dom.is_ancestor ~ancestor:node m))
          all
  | Ast.Preceding ->
      if Dom.acceleration_enabled () then structural_preceding node
      else
        let all = Dom.descendants (Dom.root node) in
        List.rev
          (List.filter
             (fun m ->
               Dom.compare_order m node < 0 && not (Dom.is_ancestor ~ancestor:m node))
             all)

let principal_is_attribute = function Ast.Attribute_axis -> true | _ -> false

let node_test_matches ~axis (test : Ast.node_test) node =
  let principal_kind_ok () =
    match Dom.kind node with
    | Dom.Attribute -> principal_is_attribute axis
    | Dom.Element -> not (principal_is_attribute axis)
    | _ -> false
  in
  match test with
  | Ast.Kind_test kt -> Seq_type.kind_matches kt node
  | Ast.Wildcard -> principal_kind_ok ()
  | Ast.Ns_wildcard uri ->
      principal_kind_ok ()
      &&
      (match Dom.name node with
      | Some { Qname.uri = Some u; _ } -> String.equal u uri
      | _ -> false)
  | Ast.Local_wildcard local ->
      principal_kind_ok ()
      &&
      (match Dom.name node with
      | Some n -> String.equal n.Qname.local local
      | None -> false)
  | Ast.Name_test qn ->
      principal_kind_ok ()
      &&
      (match Dom.name node with
      | Some n -> Qname.equal n qn
      | None -> false)

(* constant strings so the disabled path never allocates a metric name *)
let axis_metric = function
  | Ast.Child -> "eval.axis.child"
  | Ast.Descendant -> "eval.axis.descendant"
  | Ast.Attribute_axis -> "eval.axis.attribute"
  | Ast.Self -> "eval.axis.self"
  | Ast.Descendant_or_self -> "eval.axis.descendant-or-self"
  | Ast.Following_sibling -> "eval.axis.following-sibling"
  | Ast.Preceding_sibling -> "eval.axis.preceding-sibling"
  | Ast.Following -> "eval.axis.following"
  | Ast.Preceding -> "eval.axis.preceding"
  | Ast.Parent -> "eval.axis.parent"
  | Ast.Ancestor -> "eval.axis.ancestor"
  | Ast.Ancestor_or_self -> "eval.axis.ancestor-or-self"

(* Footprint recording for a non-indexed axis step: downward axes read
   the origin's subtree; sibling/parent axes read the parent's subtree;
   upward and lateral axes conservatively read the whole tree. (The
   indexed fast paths record their probes inside [Dom] instead.) *)
let record_axis_scope axis n =
  let scope_of m =
    Footprint.reading_scope ~root:(Dom.id (Dom.root m)) ~node:(Dom.id m)
  in
  match (axis : Ast.axis) with
  | Ast.Child | Ast.Attribute_axis | Ast.Self | Ast.Descendant
  | Ast.Descendant_or_self ->
      scope_of n
  | Ast.Parent | Ast.Following_sibling | Ast.Preceding_sibling -> (
      match Dom.parent n with Some p -> scope_of p | None -> scope_of n)
  | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Following | Ast.Preceding ->
      scope_of (Dom.root n)

(* Nodes selected by one axis step. descendant::name and
   descendant-or-self::name (what the optimizer rewrites //name into)
   resolve through the per-document local-name index instead of
   filtering the materialised descendant list. *)
let step_nodes axis (test : Ast.node_test) n =
  if !Obs.Metrics.enabled then begin
    Obs.Metrics.incr "eval.steps";
    Obs.Metrics.incr (axis_metric axis)
  end;
  let finish_local hits refine =
    if !Obs.Metrics.enabled then Obs.Metrics.incr "eval.step.desc-index";
    let hits =
      match refine with None -> hits | Some f -> List.filter f hits
    in
    match (axis : Ast.axis) with
    | Ast.Descendant -> List.filter (fun m -> not (Dom.equal m n)) hits
    | _ -> hits
  in
  let by_local local refine =
    finish_local (Dom.get_elements_by_local_name n local) refine
  in
  (* Name_test probes by the pre-interned symbol when the interning fast
     paths are on; the ablated path re-hashes the local-name string. *)
  let by_sym sym refine =
    finish_local (Dom.get_elements_by_local_sym n sym) refine
  in
  match (axis, test) with
  | (Ast.Descendant | Ast.Descendant_or_self), Ast.Local_wildcard local
    when Dom.acceleration_enabled () ->
      by_local local None
  | (Ast.Descendant | Ast.Descendant_or_self), Ast.Name_test qn
    when Dom.acceleration_enabled () ->
      let refine =
        Some
          (fun m ->
            match Dom.name m with
            | Some nm -> Qname.equal nm qn
            | None -> false)
      in
      if Sym.fastpaths_enabled () then by_sym qn.Qname.lsym refine
      else by_local qn.Qname.local refine
  | _ ->
      if Footprint.recording () then record_axis_scope axis n;
      List.filter (node_test_matches ~axis test) (axis_nodes axis n)

(* Value-index lookup: answer a leading [@k eq 'lit'] / [@k = 'lit'] /
   [k = 'lit'] predicate on a descendant step from the per-root value
   index instead of scanning every candidate. Restricted to string
   literals (a numeric literal against an untyped key is a type error
   under [eq] and a double promotion under [=] — both need the scan)
   and, for child-element text, to the general comparison ([k eq 'v']
   must raise on an element with two [k] children; the existential [=]
   never does). Index hits are refined against the exact QName/axis,
   so namespace-exact semantics are preserved even though buckets are
   keyed by local name. Returns the candidates in document order with
   the first predicate consumed, or [None] to fall back. *)
let value_index_step axis test preds n =
  let applicable =
    Dom.value_index_enabled ()
    &&
    match (axis : Ast.axis) with
    | Ast.Descendant | Ast.Descendant_or_self -> (
        match (test : Ast.node_test) with
        | Ast.Name_test _ | Ast.Local_wildcard _ | Ast.Wildcard -> true
        | _ -> false)
    | _ -> false
  in
  if not applicable then None
  else begin
    (* The index answers by (name/attr, value) key — recorded inside
       [Dom.value_lookup] — but a named step test additionally reads
       the candidates' element names (a rename changes the result
       without touching the probed key). *)
    (if Footprint.recording () then
       match (test : Ast.node_test) with
       | Ast.Name_test qn ->
           Footprint.reading_name
             ~root:(Dom.id (Dom.root n))
             ~scope:(Dom.id n) qn.Qname.lsym
       | Ast.Local_wildcard local ->
           Footprint.reading_name
             ~root:(Dom.id (Dom.root n))
             ~scope:(Dom.id n) (Sym.intern local)
       | _ -> ());
    let candidate el =
      node_test_matches ~axis test el
      && (match axis with Ast.Descendant -> not (Dom.equal el n) | _ -> true)
    in
    let finish nodes rest =
      if !Obs.Metrics.enabled then begin
        Obs.Metrics.incr "eval.steps";
        Obs.Metrics.incr (axis_metric axis);
        Obs.Metrics.incr "eval.step.value-index"
      end;
      Some (List.sort_uniq Dom.compare_order nodes, rest)
    in
    (* Probe by the Qname's pre-interned symbol when the interning fast
       paths are on; the ablated probe re-hashes the local-name string
       (both key the same buckets — interning is a bijection). *)
    let attr_lookup qn s ~general rest =
      match
        (if Sym.fastpaths_enabled () then
           Dom.elements_by_attr_value_sym n ~local:qn.Qname.lsym s
         else Dom.elements_by_attr_value n ~local:qn.Qname.local s)
      with
      | None -> None
      | Some bucket ->
          let keep el =
            candidate el
            &&
            let matching =
              List.filter
                (node_test_matches ~axis:Ast.Attribute_axis (Ast.Name_test qn))
                (Dom.attributes el)
            in
            if general then
              List.exists (fun a -> Dom.string_value a = s) matching
            else
              match matching with
              | [] -> false
              | [ a ] -> Dom.string_value a = s
              | _ -> type_err "value comparison requires singleton operands"
          in
          finish (List.filter keep bucket) rest
    in
    let child_lookup qn s rest =
      match
        (if Sym.fastpaths_enabled () then
           Dom.elements_by_text_value_sym n ~local:qn.Qname.lsym s
         else Dom.elements_by_text_value n ~local:qn.Qname.local s)
      with
      | None -> None
      | Some bucket ->
          let parents =
            List.filter_map
              (fun child ->
                if not (node_test_matches ~axis:Ast.Child (Ast.Name_test qn) child)
                then None
                else if Dom.string_value child <> s then None
                else
                  match Dom.parent child with
                  | Some p
                    when Dom.kind p = Dom.Element
                         && (Dom.equal p n || Dom.is_ancestor ~ancestor:n p)
                         && candidate p ->
                      Some p
                  | _ -> None)
              bucket
          in
          finish parents rest
    in
    match preds with
    | pred :: rest -> (
        let shape lhs lit general =
          match (lhs, lit) with
          | ( Ast.E_step (Ast.Attribute_axis, Ast.Name_test qn, []),
              A.String s ) ->
              attr_lookup qn s ~general rest
          | Ast.E_step (Ast.Child, Ast.Name_test qn, []), A.String s
            when general ->
              child_lookup qn s rest
          | _ -> None
        in
        match pred with
        | Ast.E_value_comp (Ast.Eq, lhs, Ast.E_literal lit) ->
            shape lhs lit false
        | Ast.E_value_comp (Ast.Eq, Ast.E_literal lit, rhs) ->
            shape rhs lit false
        | Ast.E_general_comp (Ast.Eq, lhs, Ast.E_literal lit) ->
            shape lhs lit true
        | Ast.E_general_comp (Ast.Eq, Ast.E_literal lit, rhs) ->
            shape rhs lit true
        | _ -> None)
    | [] -> None
  end

(* ------------------------------------------------------------------ *)
(* Streaming: lazy axis producers and static shape analyses            *)

(* lazy pre-order walks; the only truly incremental axes are the
   downward ones (children lists are already materialised in the DOM) *)
let rec subtree_seq n () = Seq.Cons (n, descendants_seq n)

and descendants_seq n () =
  Seq.concat_map subtree_seq (List.to_seq (Dom.children n)) ()

let axis_seq (axis : Ast.axis) node : Dom.node Seq.t =
  match axis with
  | Ast.Child -> List.to_seq (Dom.children node)
  | Ast.Descendant -> descendants_seq node
  | Ast.Descendant_or_self -> subtree_seq node
  | Ast.Attribute_axis -> List.to_seq (Dom.attributes node)
  | Ast.Self -> Seq.return node
  | _ ->
      (* the remaining axes are list-producing anyway; delay the
         materialisation until the first pull *)
      fun () -> List.to_seq (axis_nodes axis node) ()

(* shared static analyses, see {!Focus_analysis} *)
let forward_ordered = Focus_analysis.forward_ordered
let seq_class = Focus_analysis.seq_class
let take_shape = Focus_analysis.take_shape
let worth_streaming = Focus_analysis.worth_streaming
let has_bounded_take = Focus_analysis.has_bounded_take

(* ------------------------------------------------------------------ *)
(* Comparison helpers                                                  *)

let value_compare_pair op a b =
  (* value comparison: untyped operands are compared as strings *)
  let norm = function A.Untyped s -> A.String s | a -> a in
  let a = norm a and b = norm b in
  guard (fun () ->
      match (op : Ast.value_comp) with
      | Ast.Eq -> A.equal_value a b
      | Ast.Ne -> not (A.equal_value a b)
      | Ast.Lt -> (not (A.is_nan a || A.is_nan b)) && A.compare_value a b < 0
      | Ast.Le -> (not (A.is_nan a || A.is_nan b)) && A.compare_value a b <= 0
      | Ast.Gt -> (not (A.is_nan a || A.is_nan b)) && A.compare_value a b > 0
      | Ast.Ge -> (not (A.is_nan a || A.is_nan b)) && A.compare_value a b >= 0)

let general_compare_pair op a b =
  (* general comparison: untyped adapts to the other operand's type *)
  let pair =
    match (a, b) with
    | A.Untyped x, A.Untyped y -> (A.String x, A.String y)
    | A.Untyped x, b when A.is_numeric b ->
        (A.cast ~target:A.T_double (A.Untyped x), b)
    | a, A.Untyped y when A.is_numeric a ->
        (a, A.cast ~target:A.T_double (A.Untyped y))
    | A.Untyped x, b -> (A.cast ~target:(A.type_of b) (A.Untyped x), b)
    | a, A.Untyped y -> (a, A.cast ~target:(A.type_of a) (A.Untyped y))
    | a, b -> (a, b)
  in
  let a, b = pair in
  value_compare_pair op a b

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)

(* Normalize a content sequence into child nodes and attribute nodes,
   per the XQuery constructor rules: adjacent atomics join with a
   space into one text node; nodes are deep-copied; document nodes
   splice their children; attribute nodes must come first. *)
let normalize_content seq =
  let attrs = ref [] in
  let children = ref [] in
  let pending_text = Buffer.create 16 in
  let pending_started = ref false in
  let seen_child = ref false in
  let flush_text () =
    if !pending_started then begin
      children := Dom.create_text (Buffer.contents pending_text) :: !children;
      Buffer.clear pending_text;
      pending_started := false
    end
  in
  List.iter
    (fun item ->
      match item with
      | I.Atomic a ->
          if !pending_started then Buffer.add_char pending_text ' ';
          Buffer.add_string pending_text (A.to_string a);
          pending_started := true;
          seen_child := true
      | I.Node n -> (
          match Dom.kind n with
          | Dom.Attribute ->
              flush_text ();
              if !seen_child then
                err "XQTY0024"
                  "attribute nodes must precede other element content";
              attrs := Dom.clone n :: !attrs
          | Dom.Document ->
              flush_text ();
              seen_child := true;
              List.iter
                (fun c -> children := Dom.clone c :: !children)
                (Dom.children n)
          | _ ->
              flush_text ();
              seen_child := true;
              children := Dom.clone n :: !children))
    seq;
  flush_text ();
  (List.rev !attrs, List.rev !children)

let qname_of_value ctx v =
  ignore ctx;
  match v with
  | A.Qname_v q -> q
  | A.String s | A.Untyped s -> Qname.of_string s
  | a -> type_err "expected a QName, got xs:%s" (A.type_name (A.type_of a))

(* ------------------------------------------------------------------ *)
(* The evaluator                                                       *)

let rec eval (ctx : D.t) (e : Ast.expr) : I.sequence =
  match e with
  | Ast.E_literal a -> [ I.Atomic a ]
  | Ast.E_text_literal s -> [ I.Node (Dom.create_text s) ]
  | Ast.E_var qn -> D.lookup ctx qn
  | Ast.E_context_item -> [ D.focus_item ctx ]
  | Ast.E_sequence es -> List.concat_map (eval ctx) es
  | Ast.E_range (a, b) -> (
      match range_bounds ctx a b with
      | Some (lo, hi) ->
          List.init (hi - lo + 1) (fun i -> I.Atomic (A.Integer (lo + i)))
      | None -> [])
  | Ast.E_if (c, t, f) ->
      if ebv_stream ctx c then eval ctx t else eval ctx f
  | Ast.E_or (a, b) ->
      if ebv_stream ctx a then [ I.Atomic (A.Boolean true) ]
      else [ I.Atomic (A.Boolean (ebv_stream ctx b)) ]
  | Ast.E_and (a, b) ->
      if not (ebv_stream ctx a) then [ I.Atomic (A.Boolean false) ]
      else [ I.Atomic (A.Boolean (ebv_stream ctx b)) ]
  (* count(e) compared against an integer literal: pull at most k+1
     items instead of counting the whole sequence (the optimizer
     normalises literal-on-the-left shapes into these) *)
  | Ast.E_value_comp (op, Ast.E_call (qn, [ arg ]), Ast.E_literal (A.Integer k))
  | Ast.E_general_comp (op, Ast.E_call (qn, [ arg ]), Ast.E_literal (A.Integer k))
    when !streaming && resolves_to_builtin ctx qn "count" ~arity:1 ->
      bounded_count ctx op arg k
  | Ast.E_value_comp (op, Ast.E_literal (A.Integer k), Ast.E_call (qn, [ arg ]))
  | Ast.E_general_comp (op, Ast.E_literal (A.Integer k), Ast.E_call (qn, [ arg ]))
    when !streaming && resolves_to_builtin ctx qn "count" ~arity:1 ->
      bounded_count ctx (Focus_analysis.mirror_comp op) arg k
  | Ast.E_value_comp (op, a, b) -> (
      let va = I.atomize (eval ctx a) and vb = I.atomize (eval ctx b) in
      match (va, vb) with
      | [], _ | _, [] -> []
      | [ x ], [ y ] -> [ I.Atomic (A.Boolean (value_compare_pair op x y)) ]
      | _ -> type_err "value comparison requires singleton operands")
  | Ast.E_general_comp (op, a, b) when !streaming && worth_streaming a ->
      (* existential semantics: materialise the (usually small) rhs,
         stream the lhs and stop at the first matching pair *)
      let vb = I.atomize (eval ctx b) in
      let result =
        Seq.exists
          (fun x -> List.exists (fun y -> general_compare_pair op x y) vb)
          (atomize_seq (eval_seq ctx a))
      in
      [ I.Atomic (A.Boolean result) ]
  | Ast.E_general_comp (op, a, b) ->
      let va = I.atomize (eval ctx a) and vb = I.atomize (eval ctx b) in
      let result =
        List.exists
          (fun x -> List.exists (fun y -> general_compare_pair op x y) vb)
          va
      in
      [ I.Atomic (A.Boolean result) ]
  | Ast.E_node_comp (op, a, b) -> (
      let na = eval ctx a and nb = eval ctx b in
      match (na, nb) with
      | [], _ | _, [] -> []
      | [ I.Node x ], [ I.Node y ] ->
          let r =
            match op with
            | Ast.Is -> Dom.equal x y
            | Ast.Precedes -> Dom.compare_order x y < 0
            | Ast.Follows -> Dom.compare_order x y > 0
          in
          [ I.Atomic (A.Boolean r) ]
      | _ -> type_err "node comparison requires single nodes")
  | Ast.E_ftcontains (e, sel) ->
      let hay = eval ctx e in
      let text =
        String.concat " " (List.map I.item_string hay)
      in
      [ I.Atomic (A.Boolean (eval_ft ctx text sel)) ]
  | Ast.E_arith (op, a, b) -> (
      let va = I.atomize (eval ctx a) and vb = I.atomize (eval ctx b) in
      match (va, vb) with
      | [], _ | _, [] -> []
      | [ x ], [ y ] ->
          let f =
            match op with
            | Ast.Add -> A.add
            | Ast.Sub -> A.subtract
            | Ast.Mul -> A.multiply
            | Ast.Div -> A.divide
            | Ast.Idiv -> A.integer_divide
            | Ast.Mod -> A.modulo
          in
          [ I.Atomic (guard (fun () -> f x y)) ]
      | _ -> type_err "arithmetic requires singleton operands")
  | Ast.E_unary_minus e -> (
      match I.atomize (eval ctx e) with
      | [] -> []
      | [ x ] -> [ I.Atomic (guard (fun () -> A.negate x)) ]
      | _ -> type_err "unary minus requires a singleton operand")
  | Ast.E_union (a, b) -> guard (fun () -> I.union (eval ctx a) (eval ctx b))
  | Ast.E_intersect (a, b) ->
      guard (fun () -> I.intersect (eval ctx a) (eval ctx b))
  | Ast.E_except (a, b) -> guard (fun () -> I.except (eval ctx a) (eval ctx b))
  | Ast.E_instance_of (e, st) ->
      [ I.Atomic (A.Boolean (Seq_type.matches st (eval ctx e))) ]
  | Ast.E_treat_as (e, st) ->
      let v = eval ctx e in
      if Seq_type.matches st v then v
      else
        err "XPDY0050" "treat as %s failed on a sequence of %d item(s)"
          (Seq_type.to_string st) (List.length v)
  | Ast.E_castable_as (e, ty, optional) -> (
      match I.atomize (eval ctx e) with
      | [] -> [ I.Atomic (A.Boolean optional) ]
      | [ x ] -> [ I.Atomic (A.Boolean (A.castable ~target:ty x)) ]
      | _ -> [ I.Atomic (A.Boolean false) ])
  | Ast.E_cast_as (e, ty, optional) -> (
      match I.atomize (eval ctx e) with
      | [] ->
          if optional then []
          else type_err "cast of an empty sequence to a non-optional type"
      | [ x ] -> [ I.Atomic (guard (fun () -> A.cast ~target:ty x)) ]
      | _ -> type_err "cast requires a singleton operand")
  | Ast.E_root -> (
      match D.focus_item ctx with
      | I.Node n -> [ I.Node (Dom.root n) ]
      | I.Atomic _ -> type_err "the context item for '/' is not a node")
  (* a bounded positional take in the final step ((//x)[1],
     //x[position() le 10]): stream and stop pulling at the bound.
     E_path streams only when its chain is provably document-ordered
     (seq_class), so no re-sort is skipped unsoundly. *)
  | (Ast.E_step _ | Ast.E_filter _) as e
    when !streaming && has_bounded_take e && not (Ast.is_updating e) ->
      Xdm_seq.to_list (eval_seq ctx e)
  | Ast.E_path _
    when !streaming && has_bounded_take e
         && seq_class e <> `Unknown
         && not (Ast.is_updating e) ->
      Xdm_seq.to_list (eval_seq ctx e)
  | Ast.E_step (axis, test, preds) -> (
      match D.focus_item ctx with
      | I.Atomic _ -> type_err "axis step applied to an atomic context item"
      | I.Node n -> (
          match value_index_step axis test preds n with
          | Some (nodes, rest) ->
              apply_predicates ctx (List.map (fun m -> I.Node m) nodes) rest
          | None ->
              let nodes = step_nodes axis test n in
              let items = List.map (fun n -> I.Node n) nodes in
              apply_predicates ctx items preds))
  | Ast.E_path (e1, e2) ->
      let lhs = eval ctx e1 in
      let n = List.length lhs in
      let results =
        List.concat
          (List.mapi
             (fun i item ->
               match item with
               | I.Node _ ->
                   eval (D.with_focus ctx item ~position:(i + 1) ~size:n) e2
               | I.Atomic _ ->
                   type_err "path step applied to an atomic value")
             lhs)
      in
      if results = [] then []
      else if I.all_nodes results then guard (fun () -> I.document_order results)
      else if List.exists I.is_node results then
        err "XPTY0018" "path result mixes nodes and atomic values"
      else results
  | Ast.E_filter (e, preds) ->
      let items = eval ctx e in
      apply_predicates ctx items preds
  | Ast.E_flwor { clauses; where; order; return } ->
      eval_flwor ctx ~clauses ~where ~order ~return
  | Ast.E_hash_join j ->
      let tuples = List.of_seq (hash_join_tuples ctx j) in
      let tuples = order_tuples j.Ast.jorder tuples in
      List.concat_map (fun c -> eval c j.Ast.jreturn) tuples
  | Ast.E_quantified (quant, binds, body) when !streaming ->
      (* pull binding sources lazily; exists/for_all stop at the first
         deciding item *)
      let rec go ctx = function
        | [] -> ebv_stream ctx body
        | (var, var_type, src) :: rest ->
            let items = Xdm_seq.items (eval_seq ctx src) in
            let items =
              match var_type with
              | Some st ->
                  Seq.map
                    (fun it ->
                      List.hd
                        (Seq_type.coerce ~what:"quantifier binding" st [ it ]))
                    items
              | None -> items
            in
            let test item = go (D.bind ctx var [ item ]) rest in
            (match quant with
            | Ast.Some_quant -> Seq.exists test items
            | Ast.Every_quant -> Seq.for_all test items)
      in
      [ I.Atomic (A.Boolean (go ctx binds)) ]
  | Ast.E_quantified (quant, binds, body) ->
      let rec go ctx = function
        | [] -> I.effective_boolean (eval ctx body)
        | (var, var_type, src) :: rest ->
            let items = eval ctx src in
            let items =
              match var_type with
              | Some st ->
                  List.map
                    (fun it -> List.hd (Seq_type.coerce ~what:"quantifier binding" st [ it ]))
                    items
              | None -> items
            in
            let test item = go (D.bind ctx var [ item ]) rest in
            (match quant with
            | Ast.Some_quant -> List.exists test items
            | Ast.Every_quant -> List.for_all test items)
      in
      [ I.Atomic (A.Boolean (go ctx binds)) ]
  | Ast.E_typeswitch (op, cases, (default_var, default_body)) -> (
      let v = eval ctx op in
      let rec try_cases = function
        | [] ->
            let ctx =
              match default_var with
              | Some var -> D.bind ctx var v
              | None -> ctx
            in
            eval ctx default_body
        | case :: rest ->
            if Seq_type.matches case.Ast.case_type v then
              let ctx =
                match case.Ast.case_var with
                | Some var -> D.bind ctx var v
                | None -> ctx
              in
              eval ctx case.Ast.case_body
            else try_cases rest
      in
      try_cases cases)
  | Ast.E_call (qn, args) -> eval_call ctx qn args
  | Ast.E_ordered e | Ast.E_unordered e -> eval ctx e
  | Ast.E_enclosed e -> eval ctx e
  (* ---- constructors ---- *)
  | Ast.E_direct_element { name; attributes; children } ->
      let el = Dom.create_element name in
      List.iter
        (fun (an, parts) ->
          let value =
            String.concat ""
              (List.map
                 (function
                   | Ast.A_text t -> t
                   | Ast.A_enclosed e -> I.sequence_string (eval ctx e))
                 parts)
          in
          Dom.set_attribute el an value)
        attributes;
      let content = List.concat_map (eval ctx) children in
      let attrs, kids = normalize_content content in
      List.iter
        (fun a ->
          match Dom.name a with
          | Some n -> Dom.set_attribute el n (Option.value ~default:"" (Dom.value a))
          | None -> ())
        attrs;
      List.iter (fun c -> Dom.append_child ~parent:el c) kids;
      [ I.Node el ]
  | Ast.E_computed_element (name_e, content_e) ->
      let name =
        qname_of_value ctx (I.singleton_atomic (eval ctx name_e))
      in
      let el = Dom.create_element name in
      let content = eval ctx content_e in
      let attrs, kids = normalize_content content in
      List.iter
        (fun a ->
          match Dom.name a with
          | Some n -> Dom.set_attribute el n (Option.value ~default:"" (Dom.value a))
          | None -> ())
        attrs;
      List.iter (fun c -> Dom.append_child ~parent:el c) kids;
      [ I.Node el ]
  | Ast.E_computed_attribute (name_e, content_e) ->
      let name = qname_of_value ctx (I.singleton_atomic (eval ctx name_e)) in
      let value = I.sequence_string (eval ctx content_e) in
      [ I.Node (Dom.create_attribute name value) ]
  | Ast.E_computed_text e ->
      [ I.Node (Dom.create_text (I.sequence_string (eval ctx e))) ]
  | Ast.E_computed_comment e ->
      [ I.Node (Dom.create_comment (I.sequence_string (eval ctx e))) ]
  | Ast.E_computed_pi (name_e, content_e) ->
      let target = I.sequence_string (eval ctx name_e) in
      [ I.Node (Dom.create_pi ~target (I.sequence_string (eval ctx content_e))) ]
  | Ast.E_computed_document e ->
      let doc = Dom.create_document () in
      let _, kids = normalize_content (eval ctx e) in
      List.iter (fun c -> Dom.append_child ~parent:doc c) kids;
      [ I.Node doc ]
  (* ---- updates ---- *)
  | Ast.E_insert (pos, source_e, target_e) ->
      eval_insert ctx pos source_e target_e
  | Ast.E_delete e ->
      let targets = eval ctx e in
      List.iter
        (function
          | I.Node n -> Pul.add ctx.D.pul (Pul.Delete n)
          | I.Atomic _ -> err Xq_error.update_target "delete target must be nodes")
        targets;
      []
  | Ast.E_replace { value_of; target; source } ->
      let tnode =
        match eval ctx target with
        | [ I.Node n ] -> n
        | _ -> err Xq_error.update_target "replace target must be a single node"
      in
      if value_of then begin
        let v = I.sequence_string (eval ctx source) in
        Pul.add ctx.D.pul (Pul.Replace_value (tnode, v))
      end
      else begin
        let source_items = eval ctx source in
        let attrs, kids = normalize_content source_items in
        let replacements =
          match Dom.kind tnode with
          | Dom.Attribute ->
              if kids <> [] then
                err Xq_error.update_target
                  "an attribute can only be replaced with attributes"
              else attrs
          | _ ->
              if attrs <> [] then
                err Xq_error.update_target
                  "cannot replace a non-attribute node with attributes"
              else kids
        in
        Pul.add ctx.D.pul (Pul.Replace_node (tnode, replacements))
      end;
      []
  | Ast.E_rename (target_e, name_e) ->
      let tnode =
        match eval ctx target_e with
        | [ I.Node n ] -> n
        | _ -> err Xq_error.update_target "rename target must be a single node"
      in
      let name = qname_of_value ctx (I.singleton_atomic (eval ctx name_e)) in
      Pul.add ctx.D.pul (Pul.Rename (tnode, name));
      []
  | Ast.E_transform (binds, modify, return) ->
      let copies =
        List.map
          (fun (var, src) ->
            match eval ctx src with
            | [ I.Node n ] -> (var, Dom.clone n)
            | _ -> type_err "copy source must be a single node")
          binds
      in
      let ctx' =
        List.fold_left (fun c (var, n) -> D.bind c var [ I.Node n ]) ctx copies
      in
      let inner_pul = Pul.create () in
      let ctx'' = { ctx' with D.pul = inner_pul } in
      ignore (eval ctx'' modify);
      (* XUDY0014: updates must stay within the copied trees *)
      Pul.apply inner_pul;
      eval ctx' return
  (* ---- scripting ---- *)
  | Ast.E_block [ Ast.S_expr e ] -> eval ctx e
  | Ast.E_block stmts -> eval_block ctx ~script:true stmts
  (* ---- browser extensions ---- *)
  | Ast.E_event_attach { event; binding; target; listener } -> (
      Footprint.poison ();
      let event_type = I.sequence_string (eval ctx event) in
      let l = make_listener ctx listener in
      match binding with
      | Ast.Bind_at ->
          let targets = eval ctx target in
          ctx.D.host.D.attach ~event_type ~targets ~listener:l;
          []
      | Ast.Bind_behind ->
          let computation () = eval ctx target in
          ctx.D.host.D.attach_behind ~event_type ~computation ~listener:l;
          [])
  | Ast.E_event_detach { event; target; listener } ->
      Footprint.poison ();
      let event_type = I.sequence_string (eval ctx event) in
      let targets = eval ctx target in
      ctx.D.host.D.detach ~event_type ~targets ~name:listener;
      []
  | Ast.E_event_trigger { event; target } ->
      Footprint.poison ();
      let event_type = I.sequence_string (eval ctx event) in
      let targets = eval ctx target in
      ctx.D.host.D.trigger ~event_type ~targets;
      []
  | Ast.E_set_style { property; target; value } ->
      Footprint.poison ();
      let prop = I.sequence_string (eval ctx property) in
      let v = I.sequence_string (eval ctx value) in
      List.iter
        (function
          | I.Node n -> ctx.D.host.D.set_style n prop v
          | I.Atomic _ -> type_err "set style target must be nodes")
        (eval ctx target);
      []
  | Ast.E_get_style { property; target } -> (
      (* the style side table is not footprint-tracked: unrecordable read *)
      Footprint.poison ();
      let prop = I.sequence_string (eval ctx property) in
      match eval ctx target with
      | I.Node n :: _ -> (
          match ctx.D.host.D.get_style n prop with
          | Some v -> [ I.Atomic (A.String v) ]
          | None -> [])
      | _ -> [])

and eval_ft ctx hay (sel : Ast.ft_selection) =
  match sel with
  | Ast.Ft_and (a, b) -> eval_ft ctx hay a && eval_ft ctx hay b
  | Ast.Ft_or (a, b) -> eval_ft ctx hay a || eval_ft ctx hay b
  | Ast.Ft_not a -> not (eval_ft ctx hay a)
  | Ast.Ft_words (e, opts) ->
      let stemming = List.mem Ast.Ft_stemming opts in
      let phrases = List.map I.item_string (eval ctx e) in
      List.exists (fun p -> Fulltext.contains ~stemming hay p) phrases

and apply_predicates ctx items preds =
  List.fold_left
    (fun items pred ->
      let n = List.length items in
      let keep =
        List.filteri
          (fun i item ->
            let pos = i + 1 in
            let fctx = D.with_focus ctx item ~position:pos ~size:n in
            let v = eval fctx pred in
            match v with
            | [ I.Atomic a ] when A.is_numeric a ->
                guard (fun () -> A.compare_value a (A.Integer pos) = 0)
            | v -> I.effective_boolean v)
          items
      in
      keep)
    items preds

and eval_flwor ctx ~clauses ~where ~order ~return =
  (* build the tuple stream as a list of contexts *)
  let rec expand ctxs = function
    | [] -> ctxs
    | Ast.Let_clause { var; var_type; value } :: rest ->
        let ctxs =
          List.map
            (fun c ->
              let v = eval c value in
              let v =
                match var_type with
                | Some st -> Seq_type.coerce ~what:("$" ^ Qname.to_string var) st v
                | None -> v
              in
              D.bind c var v)
            ctxs
        in
        expand ctxs rest
    | Ast.For_clause { var; pos_var; var_type; source } :: rest ->
        let ctxs =
          List.concat_map
            (fun c ->
              let items = eval c source in
              List.mapi
                (fun i item ->
                  let item_seq = [ item ] in
                  let item_seq =
                    match var_type with
                    | Some st ->
                        Seq_type.coerce ~what:("$" ^ Qname.to_string var) st item_seq
                    | None -> item_seq
                  in
                  let c = D.bind c var item_seq in
                  match pos_var with
                  | Some pv -> D.bind c pv [ I.Atomic (A.Integer (i + 1)) ]
                  | None -> c)
                items)
            ctxs
        in
        expand ctxs rest
  in
  let tuples = expand [ ctx ] clauses in
  let tuples =
    match where with
    | None -> tuples
    | Some w -> List.filter (fun c -> ebv_stream c w) tuples
  in
  let tuples = order_tuples order tuples in
  List.concat_map (fun c -> eval c return) tuples

(* order-by sort over a materialised tuple (context) list; shared by
   the FLWOR and hash-join plans *)
and order_tuples order tuples =
  if order = [] then tuples
  else begin
    let keyed =
      List.map
        (fun c ->
          let keys =
            List.map
              (fun spec ->
                let v = I.atomize (eval c spec.Ast.key) in
                match v with
                | [] -> None
                | [ a ] -> Some a
                | _ -> type_err "order by key must be a singleton")
              order
          in
          (keys, c))
        tuples
    in
    let compare_keys ka kb =
      let rec go ka kb specs =
        match (ka, kb, specs) with
        | [], [], _ -> 0
        | a :: ra, b :: rb, spec :: rs ->
            let c =
              match (a, b) with
              | None, None -> 0
              | None, Some _ ->
                  if spec.Ast.empty_greatest = Some true then 1 else -1
              | Some _, None ->
                  if spec.Ast.empty_greatest = Some true then -1 else 1
              | Some x, Some y ->
                  let x = match x with A.Untyped s -> A.String s | x -> x in
                  let y = match y with A.Untyped s -> A.String s | y -> y in
                  guard (fun () -> A.compare_value x y)
            in
            let c = if spec.Ast.descending then -c else c in
            if c <> 0 then c else go ra rb rs
        | _ -> 0
      in
      go ka kb order
    in
    List.stable_sort (fun (ka, _) (kb, _) -> compare_keys ka kb) keyed
    |> List.map snd
  end

(* Hash-join execution (planner-introduced; see Optimizer's join
   section). The right (build) side is hashed on its key's string
   atoms — both keys are variable-rooted node paths, so every atom is
   xs:untypedAtomic and string equality is exactly the comparison
   semantics of [eq] and of untyped-vs-untyped [=]. The left (probe)
   side streams through; tuples come out probe-major with build-side
   matches in source order, i.e. the nested-loop tuple order.

   Error parity with the nested-loop plan: the build is forced lazily
   at the first probe item, so an empty left source never evaluates
   the right source (the eager plan's second for clause expands an
   empty tuple set); an empty *right source* skips probe-key
   evaluation the same way (no tuples, so the eager where never
   runs). A multi-valued [eq] key is a singleton type error under the
   nested-loop plan only for pairs where the *other* operand is
   non-empty (empty operands make the comparison empty, hence false,
   before the cardinality of the other side matters) — so a
   multi-valued build key marks its position instead of raising, and
   each probe item with a non-empty key yields its matches from
   earlier build rows and then raises lazily when the consumer pulls
   past them, mirroring the nested loop's pair-by-pair order (an
   early-exiting consumer may stop before the erroring pair). Which
   of several inevitable errors is reported may still differ from the
   eager plan's pair order — XQuery §2.3.4 allows that reordering. *)
and hash_join_tuples ctx (j : Ast.hash_join) : D.t Seq.t =
  let table =
    lazy
      (let right = eval ctx j.Ast.jright_source in
       if !Obs.Metrics.enabled then Obs.Metrics.incr "xquery.join.hash_builds";
       let tbl : (string, (int * I.item) list) Hashtbl.t =
         Hashtbl.create (max 16 (List.length right))
       in
       (* first build row whose [eq] key has 2+ atoms: its pairs are
          singleton type errors for every non-empty probe key *)
       let pidx = ref max_int in
       List.iteri
         (fun i item ->
           let c = D.bind ctx j.Ast.jright_var [ item ] in
           match I.atomize (eval c j.Ast.jright_key) with
           | _ :: _ :: _ when not j.Ast.jgeneral ->
               if !pidx = max_int then pidx := i
           | atoms ->
               List.iter
                 (fun a ->
                   let ks = A.to_string a in
                   let prev =
                     Option.value ~default:[] (Hashtbl.find_opt tbl ks)
                   in
                   if not (List.exists (fun (i', _) -> i' = i) prev) then
                     Hashtbl.replace tbl ks ((i, item) :: prev))
                 atoms)
         right;
       Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl;
       (tbl, !pidx, (match right with [] -> false | _ -> true)))
  in
  let singleton_err () = type_err "value comparison requires singleton operands" in
  let probe item =
    let c = D.bind ctx j.Ast.jleft_var [ item ] in
    let tbl, pidx, had_rows = Lazy.force table in
    let matches =
      if not had_rows then Seq.empty
      else begin
        if !Obs.Metrics.enabled then Obs.Metrics.incr "xquery.join.probes";
        match I.atomize (eval c j.Ast.jleft_key) with
        | [] -> Seq.empty
        | atoms when j.Ast.jgeneral ->
            (* several probe atoms can hit the same build row; the
               existential [=] keeps the tuple once, in b-order *)
            List.concat_map
              (fun a ->
                Option.value ~default:[] (Hashtbl.find_opt tbl (A.to_string a)))
              atoms
            |> List.sort_uniq (fun (i, _) (i', _) -> Int.compare i i')
            |> List.to_seq
        | [ a ] ->
            let ms =
              Option.value ~default:[] (Hashtbl.find_opt tbl (A.to_string a))
            in
            if pidx = max_int then List.to_seq ms
            else
              (* matches before the multi-valued build row stream
                 out; pulling past them reaches the erroring pair *)
              Seq.append
                (List.to_seq (List.filter (fun (i, _) -> i < pidx) ms))
                (fun () -> singleton_err ())
        | _ ->
            (* multi-valued [eq] probe key: every pair against a
               non-empty build key errors, and pairs against empty
               keys are false, so the first keyed build row raises *)
            if Hashtbl.length tbl > 0 || pidx < max_int then singleton_err ()
            else Seq.empty
      end
    in
    Seq.map (fun (_, bitem) -> D.bind c j.Ast.jright_var [ bitem ]) matches
  in
  let left_items =
    if !streaming then Xdm_seq.items (eval_seq ctx j.Ast.jleft_source)
    else List.to_seq (eval ctx j.Ast.jleft_source)
  in
  let pairs = Seq.concat_map probe left_items in
  match j.Ast.jwhere with
  | None -> pairs
  | Some w -> Seq.filter (fun c -> ebv_stream c w) pairs

and eval_insert ctx pos source_e target_e =
  let source_items = eval ctx source_e in
  let attrs, kids = normalize_content source_items in
  let target =
    match eval ctx target_e with
    | [ I.Node n ] -> n
    | _ -> err Xq_error.update_target "insert target must be a single node"
  in
  (match (pos : Ast.insert_position) with
  | Ast.Into | Ast.As_first_into | Ast.As_last_into ->
      (match Dom.kind target with
      | Dom.Element | Dom.Document -> ()
      | _ ->
          err Xq_error.update_target
            "insert into target must be an element or document");
      if attrs <> [] then Pul.add ctx.D.pul (Pul.Insert_attributes (target, attrs));
      if kids <> [] then
        Pul.add ctx.D.pul
          (match pos with
          | Ast.Into | Ast.As_last_into -> Pul.Insert_into (target, kids)
          | Ast.As_first_into -> Pul.Insert_first (target, kids)
          | _ -> assert false)
  | Ast.Before | Ast.After ->
      if attrs <> [] then
        err Xq_error.update_target "cannot insert attributes before/after a node";
      if kids <> [] then
        Pul.add ctx.D.pul
          (match pos with
          | Ast.Before -> Pul.Insert_before (target, kids)
          | _ -> Pul.Insert_after (target, kids)));
  []

(* -------- scripting blocks -------- *)

and eval_block ctx ~script stmts =
  if not script then
    match stmts with
    | [ Ast.S_expr e ] -> eval ctx e
    | _ -> type_err "a non-sequential function body must be a single expression"
  else begin
    let result = ref [] in
    let rec step c (stmt : Ast.statement) =
      let c', v =
        match stmt with
        | Ast.S_expr e -> (c, eval c e)
        | Ast.S_var_decl (var, var_type, init) ->
            let v =
              match init with
              | Some e ->
                  let v = eval c e in
                  Option.fold ~none:v
                    ~some:(fun st ->
                      Seq_type.coerce ~what:("$" ^ Qname.to_string var) st v)
                    var_type
              | None -> []
            in
            (D.bind c var v, [])
        | Ast.S_assign (var, e) ->
            let v = eval c e in
            let r = D.lookup_ref c var in
            r := v;
            (c, [])
        | Ast.S_while (cond, body) ->
            let rec loop c =
              if I.effective_boolean (eval c cond) then begin
                match
                  List.fold_left
                    (fun c stmt ->
                      let c, _ = step_stmt c stmt in
                      c)
                    c body
                with
                | c -> loop c
                | exception Break_loop -> c
                | exception Continue_loop -> loop c
              end
              else c
            in
            (loop c, [])
        | Ast.S_break ->
            Pul.apply c.D.pul;
            raise Break_loop
        | Ast.S_continue ->
            Pul.apply c.D.pul;
            raise Continue_loop
        | Ast.S_exit_with e ->
            let v = eval c e in
            Pul.apply c.D.pul;
            raise (Exit_with v)
      in
      (c', v)
    and step_stmt c stmt =
      let c', v = step c stmt in
      (* scripting: side effects become visible between statements *)
      Pul.apply c'.D.pul;
      (c', v)
    in
    ignore
      (List.fold_left
         (fun c stmt ->
           let c', v = step_stmt c stmt in
           result := v;
           c')
         ctx stmts);
    !result
  end

(* -------- function calls -------- *)

and build_call_ctx (ctx : D.t) =
  {
    Call_ctx.context_item =
      (match ctx.D.focus with Some f -> Some f.D.item | None -> None);
    position = (match ctx.D.focus with Some f -> f.D.position | None -> 0);
    size = (match ctx.D.focus with Some f -> f.D.size | None -> 0);
    doc = ctx.D.host.D.doc;
    doc_available = ctx.D.host.D.doc_available;
    put = ctx.D.host.D.put;
    now = ctx.D.host.D.now;
    trace = Call_ctx.default.Call_ctx.trace;
  }

and eval_call ctx qn arg_exprs =
  match (if !streaming then streaming_call ctx qn arg_exprs else None) with
  | Some r -> r
  | None ->
      let args = List.map (eval ctx) arg_exprs in
      call_function ctx qn args

(* ---- streaming machinery ---- *)

and range_bounds ctx a b =
  let intv e =
    match I.opt_atomic (eval ctx e) with
    | None -> None
    | Some a -> (
        match guard (fun () -> A.cast ~target:A.T_integer a) with
        | A.Integer i -> Some i
        | _ -> None)
  in
  match (intv a, intv b) with
  | Some lo, Some hi when lo <= hi -> Some (lo, hi)
  | _ -> None

and ebv_stream ctx e =
  if !streaming then Xdm_seq.effective_boolean (eval_seq ctx e)
  else I.effective_boolean (eval ctx e)

and atomize_seq cur =
  Seq.concat_map (fun it -> List.to_seq (I.atomize [ it ])) (Xdm_seq.items cur)

(* count(e) op k with m = min(count(e), k+1) pulled items:
   m op k ⟺ count(e) op k for every comparison operator *)
and bounded_count ctx op arg k =
  let bound = if k >= max_int - 1 then max_int else max 0 (k + 1) in
  let m = Seq.length (Seq.take bound (Xdm_seq.items (eval_seq ctx arg))) in
  let r =
    match (op : Ast.value_comp) with
    | Ast.Eq -> m = k
    | Ast.Ne -> m <> k
    | Ast.Lt -> m < k
    | Ast.Le -> m <= k
    | Ast.Gt -> m > k
    | Ast.Ge -> m >= k
  in
  [ I.Atomic (A.Boolean r) ]

(* does [qn] resolve to the fn: builtin [name] (not shadowed by a
   user declaration or an external binding, not security-blocked)? *)
and resolves_to_builtin ctx qn name ~arity =
  qn.Qname.uri = Some Qname.Ns.fn
  && String.equal qn.Qname.local name
  && (not (Static_context.is_blocked ctx.D.static qn))
  && Option.is_none (Static_context.find_function ctx.D.static qn ~arity)
  && Option.is_none (Static_context.find_external ctx.D.static qn ~arity)

(* Early-exit builtins take their arguments as cursors: fn:exists /
   fn:empty / fn:head pull at most one item, EBV-based fn:boolean /
   fn:not at most two, fn:subsequence a bounded prefix. Only fires
   when the name resolves to the builtin. *)
and streaming_call ctx qn arg_exprs =
  let builtin name =
    resolves_to_builtin ctx qn name ~arity:(List.length arg_exprs)
  in
  let count_call () =
    if !Obs.Metrics.enabled then begin
      Obs.Metrics.incr "eval.calls";
      Obs.Metrics.incr "eval.calls.builtin"
    end
  in
  let bool1 b =
    count_call ();
    Some [ I.Atomic (A.Boolean b) ]
  in
  match arg_exprs with
  | [ e ] when builtin "exists" ->
      bool1 (not (Xdm_seq.is_empty (eval_seq ctx e)))
  | [ e ] when builtin "empty" -> bool1 (Xdm_seq.is_empty (eval_seq ctx e))
  | [ e ] when builtin "head" ->
      count_call ();
      Some
        (match Xdm_seq.head (eval_seq ctx e) with
        | Some it -> [ it ]
        | None -> [])
  | [ e ] when builtin "boolean" ->
      bool1 (Xdm_seq.effective_boolean (eval_seq ctx e))
  | [ e ] when builtin "not" ->
      bool1 (not (Xdm_seq.effective_boolean (eval_seq ctx e)))
  | ([ _; _ ] | [ _; _; _ ]) when builtin "subsequence" ->
      count_call ();
      Some (subsequence_stream ctx arg_exprs)
  | _ -> None

(* mirrors the eager fn:subsequence exactly (round-to-nearest bounds,
   NaN → empty), but pulls only the ceil(upto)-1 prefix *)
and subsequence_stream ctx arg_exprs =
  let e, start_e, len_e =
    match arg_exprs with
    | [ e; s ] -> (e, s, None)
    | [ e; s; l ] -> (e, s, Some l)
    | _ -> assert false
  in
  let num x =
    guard (fun () -> I.item_number (I.Atomic (I.singleton_atomic (eval ctx x))))
  in
  let start = num start_e in
  let len =
    match len_e with Some l -> num l | None -> Float.infinity
  in
  let from = Float.floor (start +. 0.5) in
  let upto =
    if len = Float.infinity then Float.infinity
    else from +. Float.floor (len +. 0.5)
  in
  if Float.is_nan from || Float.is_nan upto then []
  else begin
    let bound =
      if upto = Float.infinity then max_int
      else if upto <= 1. then 0
      else if upto >= 1e18 then max_int
      else int_of_float (Float.ceil upto) - 1
    in
    let prefix = Seq.take bound (Xdm_seq.items (eval_seq ctx e)) in
    List.of_seq
      (Seq.map snd
         (Seq.filter
            (fun (i, _) ->
              let fi = float_of_int (i + 1) in
              fi >= from && fi < upto)
            (Seq.mapi (fun i x -> (i, x)) prefix)))
  end

(* the lazy mirror of [eval]: returns a pull cursor. Only expression
   forms that genuinely benefit stream; everything else — and every
   updating expression, whose pending-update side effects must not be
   skipped — falls back to the eager evaluator. *)
and eval_seq (ctx : D.t) (e : Ast.expr) : Xdm_seq.t =
  if (not !streaming) || Ast.is_updating e then Xdm_seq.of_list (eval ctx e)
  else
    match e with
    | Ast.E_sequence es ->
        List.fold_left
          (fun acc e ->
            Xdm_seq.append acc
              (Xdm_seq.make (fun () -> Xdm_seq.items (eval_seq ctx e) ())))
          Xdm_seq.empty es
    | Ast.E_range (a, b) -> (
        match range_bounds ctx a b with
        | Some (lo, hi) ->
            Xdm_seq.of_seq
              (Seq.map
                 (fun i -> I.Atomic (A.Integer i))
                 (Seq.init (hi - lo + 1) (fun i -> lo + i)))
        | None -> Xdm_seq.empty)
    | Ast.E_if (c, t, f) ->
        if ebv_stream ctx c then eval_seq ctx t else eval_seq ctx f
    | Ast.E_step (axis, test, preds) -> (
        match D.focus_item ctx with
        | I.Atomic _ -> type_err "axis step applied to an atomic context item"
        | I.Node n -> step_stream ctx axis test preds n)
    | Ast.E_path (e1, Ast.E_step (axis, test, preds))
      when (match seq_class e1 with
           | `One -> forward_ordered axis
           | `Sorted -> (
               match axis with
               | Ast.Self | Ast.Attribute_axis -> true
               | _ -> false)
           | `Unknown -> false) ->
        (* the chain provably emits distinct nodes in document order:
           stream it, skipping the document_order re-sort *)
        let lhs = eval_seq ctx e1 in
        Xdm_seq.make ~sorted:true
          (Seq.concat_map
             (fun item ->
               match item with
               | I.Node n -> Xdm_seq.items (step_stream ctx axis test preds n)
               | I.Atomic _ -> type_err "path step applied to an atomic value")
             (Xdm_seq.items lhs))
    | Ast.E_filter (e1, preds) ->
        apply_predicates_seq ctx (eval_seq ctx e1) preds
    | Ast.E_flwor { clauses; where; order = []; return } ->
        flwor_seq ctx clauses where return
    | Ast.E_hash_join j when j.Ast.jorder = [] ->
        (* unordered join output streams: the probe side is pulled
           lazily, so exists/head/[position() le k] over a join stop
           after the first matching probe items *)
        Xdm_seq.make
          (Seq.concat_map
             (fun c -> Xdm_seq.items (eval_seq c j.Ast.jreturn))
             (hash_join_tuples ctx j))
    | _ -> Xdm_seq.of_list (eval ctx e)

and step_stream ctx axis test preds n =
  match value_index_step axis test preds n with
  | Some (nodes, rest) ->
      apply_predicates_seq ctx
        (Xdm_seq.of_list ~sorted:true (List.map (fun m -> I.Node m) nodes))
        rest
  | None -> step_stream_scan ctx axis test preds n

and step_stream_scan ctx axis test preds n =
  let nodes =
    match (axis, test) with
    | ( (Ast.Descendant | Ast.Descendant_or_self),
        ((Ast.Local_wildcard _ | Ast.Name_test _) as t) )
      when Dom.acceleration_enabled () ->
        (* the local-name index bucket is already materialised in
           document order; stream it with lazy refinement instead of
           the eager fast path's List.filter copies *)
        fun () ->
          if !Obs.Metrics.enabled then begin
            Obs.Metrics.incr "eval.steps";
            Obs.Metrics.incr (axis_metric axis);
            Obs.Metrics.incr "eval.step.desc-index"
          end;
          let bucket, refine =
            match t with
            | Ast.Local_wildcard l -> (Dom.get_elements_by_local_name n l, None)
            | Ast.Name_test qn ->
                ( (if Sym.fastpaths_enabled () then
                     Dom.get_elements_by_local_sym n qn.Qname.lsym
                   else Dom.get_elements_by_local_name n qn.Qname.local),
                  Some
                    (fun m ->
                      match Dom.name m with
                      | Some nm -> Qname.equal nm qn
                      | None -> false) )
            | _ -> assert false (* excluded by the outer pattern *)
          in
          let s = List.to_seq bucket in
          let s = match refine with None -> s | Some f -> Seq.filter f s in
          let s =
            match axis with
            | Ast.Descendant -> Seq.filter (fun m -> not (Dom.equal m n)) s
            | _ -> s
          in
          s ()
    | _ ->
        if !Obs.Metrics.enabled then begin
          Obs.Metrics.incr "eval.steps";
          Obs.Metrics.incr (axis_metric axis)
        end;
        if Footprint.recording () then record_axis_scope axis n;
        Seq.filter (node_test_matches ~axis test) (axis_seq axis n)
  in
  let cur = Xdm_seq.of_node_seq ~sorted:(forward_ordered axis) nodes in
  apply_predicates_seq ctx cur preds

and apply_predicates_seq ctx cur preds =
  List.fold_left
    (fun cur pred ->
      match take_shape pred with
      | Some (`Nth k) ->
          if k < 1 then Xdm_seq.empty
          else
            Xdm_seq.make ~sorted:(Xdm_seq.sorted cur) ~at_most_one:true
              (Seq.take 1 (Seq.drop (k - 1) (Xdm_seq.items cur)))
      | Some (`First k) -> Xdm_seq.take k cur
      | None ->
          if Focus_analysis.uses_last pred then
            (* needs-last: the predicate observes the focus size, so
               this stage must materialise to compute it *)
            Xdm_seq.of_list ~sorted:(Xdm_seq.sorted cur)
              (apply_predicates ctx (Xdm_seq.to_list cur) [ pred ])
          else
            (* position is free — an incremental counter; size is
               never observed (checked above), so pass 0 *)
            Xdm_seq.filteri
              (fun i item ->
                let pos = i + 1 in
                let fctx = D.with_focus ctx item ~position:pos ~size:0 in
                match eval fctx pred with
                | [ I.Atomic a ] when A.is_numeric a ->
                    guard (fun () -> A.compare_value a (A.Integer pos) = 0)
                | v -> I.effective_boolean v)
              cur)
    cur preds

and flwor_seq ctx clauses where return =
  let rec expand (ctxs : D.t Seq.t) = function
    | [] -> ctxs
    | Ast.Let_clause { var; var_type; value } :: rest ->
        expand
          (Seq.map
             (fun c ->
               let v = eval c value in
               let v =
                 match var_type with
                 | Some st ->
                     Seq_type.coerce ~what:("$" ^ Qname.to_string var) st v
                 | None -> v
               in
               D.bind c var v)
             ctxs)
          rest
    | Ast.For_clause { var; pos_var; var_type; source } :: rest ->
        expand
          (Seq.concat_map
             (fun c ->
               Seq.mapi
                 (fun i item ->
                   let item_seq = [ item ] in
                   let item_seq =
                     match var_type with
                     | Some st ->
                         Seq_type.coerce
                           ~what:("$" ^ Qname.to_string var)
                           st item_seq
                     | None -> item_seq
                   in
                   let c = D.bind c var item_seq in
                   match pos_var with
                   | Some pv -> D.bind c pv [ I.Atomic (A.Integer (i + 1)) ]
                   | None -> c)
                 (Xdm_seq.items (eval_seq c source)))
             ctxs)
          rest
  in
  let tuples = expand (Seq.return ctx) clauses in
  let tuples =
    match where with
    | None -> tuples
    | Some w -> Seq.filter (fun c -> ebv_stream c w) tuples
  in
  Xdm_seq.make
    (Seq.concat_map (fun c -> Xdm_seq.items (eval_seq c return)) tuples)

and call_function ctx qn args =
  let arity = List.length args in
  if Static_context.is_blocked ctx.D.static qn then
    err Xq_error.security "function %s is blocked in this context (browser security policy)"
      (Qname.to_string qn);
  let count kind =
    if !Obs.Metrics.enabled then begin
      Obs.Metrics.incr "eval.calls";
      Obs.Metrics.incr kind
    end
  in
  (* xs: constructor functions are casts *)
  match qn.Qname.uri with
  | Some u when String.equal u Qname.Ns.xs && arity = 1 -> (
      count "eval.calls.constructor";
      match A.type_of_name qn.Qname.local with
      | Some ty -> (
          match I.atomize (List.hd args) with
          | [] -> []
          | [ a ] -> [ I.Atomic (guard (fun () -> A.cast ~target:ty a)) ]
          | _ -> type_err "constructor function requires a singleton")
      | None ->
          err Xq_error.unknown_function "unknown type constructor xs:%s"
            qn.Qname.local)
  | _ -> (
      match Static_context.find_function ctx.D.static qn ~arity with
      | Some decl ->
          count "eval.calls.user";
          call_user_function ctx decl args
      | None -> (
          match Static_context.find_external ctx.D.static qn ~arity with
          | Some f ->
              count "eval.calls.external";
              (* external functions reach host state the footprint
                 cannot see *)
              Footprint.poison ();
              f (build_call_ctx ctx) args
          | None -> (
              match Functions.find qn ~arity with
              | Some f ->
                  count "eval.calls.builtin";
                  if Reactive.impure_builtin_sym qn.Qname.lsym then
                    Footprint.poison ();
                  guard (fun () -> f (build_call_ctx ctx) args)
              | None ->
                  err Xq_error.unknown_function
                    "unknown function %s#%d" (Qname.to_string qn) arity)))

and call_user_function ctx (decl : Ast.function_decl) args =
  (* compiled-eval fast path: Engine installs closure-compiled bodies
     into the dynamic context (keyed by symbol triple); fall through
     to the tree-walking dispatch when none is registered *)
  (match
     if Hashtbl.length ctx.D.compiled_fns = 0 then None
     else
       Hashtbl.find_opt ctx.D.compiled_fns
         (D.fn_key decl.Ast.fname ~arity:(List.length decl.Ast.params))
   with
  | Some impl -> impl ctx args
  | None -> call_user_function_ast ctx decl args)

and call_user_function_ast ctx (decl : Ast.function_decl) args =
  if ctx.D.depth > max_depth then
    err "XQDY0054" "maximum recursion depth exceeded in %s"
      (Qname.to_string decl.Ast.fname);
  let fctx = D.function_scope ctx in
  let fctx =
    List.fold_left2
      (fun c (pname, ptype) arg ->
        let arg =
          match ptype with
          | Some st -> Seq_type.coerce ~what:("$" ^ Qname.to_string pname) st arg
          | None -> arg
        in
        D.bind c pname arg)
      fctx decl.Ast.params args
  in
  let body =
    match decl.Ast.body with
    | Some b -> b
    | None ->
        err Xq_error.unknown_function "external function %s has no implementation"
          (Qname.to_string decl.Ast.fname)
  in
  let run () =
    match (decl.Ast.kind, body) with
    | Ast.F_sequential, Ast.E_block stmts -> eval_block fctx ~script:true stmts
    | _, Ast.E_block [ Ast.S_expr e ] -> eval fctx e
    | _, Ast.E_block stmts -> eval_block fctx ~script:true stmts
    | _, e -> eval fctx e
  in
  let result =
    try run () with
    | Exit_with v -> v
    | Break_loop | Continue_loop ->
        err "XSST0010" "break/continue outside of a while loop"
  in
  match decl.Ast.return_type with
  | Some st ->
      Seq_type.coerce ~what:(Qname.to_string decl.Ast.fname ^ " result") st result
  | None -> result

and make_listener ctx qn =
  let invoke ?memo ?key mk_args =
    let arity_for n = Static_context.find_function ctx.D.static qn ~arity:n in
    (* pad/truncate the provided arguments to a declared arity *)
    let fit args =
      let rec go n =
        if n < 0 then args
        else if arity_for n <> None then begin
          let provided = List.length args in
          if provided >= n then List.filteri (fun i _ -> i < n) args
          else args @ List.init (n - provided) (fun _ -> [])
        end
        else go (n - 1)
      in
      go 4
    in
    let run_plain args =
      match protect (fun () -> call_function ctx qn args) with
      | _ -> Pul.apply ctx.D.pul
      | exception Xq_error.Error e ->
          Pul.clear ctx.D.pul;
          ctx.D.host.D.listener_error (Xq_error.to_string e)
      | exception Exit_with _ -> Pul.apply ctx.D.pul
    in
    (* Re-run the listener with footprint recording; everything it
       reads lands in [fp], and impurity (PUL effects, external calls,
       impure builtins, global reads) poisons it. [Pul.apply] must run
       while recording is still active so its effects poison the run. *)
    let run_recorded m akey args =
      Reactive.count_rerun ();
      let fp = Footprint.create () in
      let prev = Footprint.start fp in
      let closed = ref false in
      let finish ~ok result =
        closed := true;
        Footprint.restore prev;
        Reactive.finish_run m ~ok ~args_key:akey ~fp ~result
      in
      Fun.protect
        ~finally:(fun () -> if not !closed then finish ~ok:false [])
        (fun () ->
          match
            protect (fun () ->
                Reactive.record_args args;
                call_function ctx qn args)
          with
          | result ->
              Pul.apply ctx.D.pul;
              finish ~ok:true result
          | exception Xq_error.Error e ->
              Pul.clear ctx.D.pul;
              finish ~ok:false [];
              ctx.D.host.D.listener_error (Xq_error.to_string e)
          | exception Exit_with v ->
              Pul.apply ctx.D.pul;
              finish ~ok:true v)
    in
    match memo with
    | None -> run_plain (fit (mk_args ()))
    | Some m -> (
        (* the host's precomputed key lets a Skip happen before the
           argument thunk is even forced; without one, force the
           arguments and fingerprint them structurally *)
        let akey, args =
          match key with
          | Some k -> (k, lazy (fit (mk_args ())))
          | None ->
              let a = fit (mk_args ()) in
              (Reactive.args_key a, lazy a)
        in
        match Reactive.decide m ~args_key:akey with
        | Reactive.Skip -> Reactive.count_skip ()
        | Reactive.Run_plain ->
            Reactive.count_rerun ();
            run_plain (Lazy.force args)
        | Reactive.Run_recorded -> run_recorded m akey (Lazy.force args))
  in
  { D.listener_name = qn; invoke }
