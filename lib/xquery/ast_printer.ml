open Xmlb
open Ast
module A = Xdm_atomic

let buf_add = Buffer.add_string

let string_literal s =
  (* single-quoted with doubling; escape ampersands so re-lexing does
     not expand entity-like text *)
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '\'';
  String.iter
    (fun c ->
      match c with
      | '\'' -> buf_add b "''"
      | '&' -> buf_add b "&amp;"
      | '<' -> buf_add b "&lt;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '\'';
  Buffer.contents b

let qname q = Qname.to_string q

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Attribute_axis -> "attribute"
  | Self -> "self"
  | Descendant_or_self -> "descendant-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"

let node_test_to_source = function
  | Name_test q -> qname q
  | Wildcard -> "*"
  | Ns_wildcard uri -> Printf.sprintf "*" |> fun _ -> "Q{" ^ uri ^ "}*"
  | Local_wildcard local -> "*:" ^ local
  | Kind_test kt -> Seq_type.to_string (St (It_kind kt, Occ_one))

let value_comp_to_source general = function
  | Eq -> if general then "=" else "eq"
  | Ne -> if general then "!=" else "ne"
  | Lt -> if general then "<" else "lt"
  | Le -> if general then "<=" else "le"
  | Gt -> if general then ">" else "gt"
  | Ge -> if general then ">=" else "ge"

let arith_to_source = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Idiv -> "idiv"
  | Mod -> "mod"

let literal_to_source (a : A.t) =
  match a with
  | A.Integer i -> string_of_int i
  | A.Decimal _ | A.Double _ -> A.to_string a
  | A.Boolean b -> if b then "fn:true()" else "fn:false()"
  | A.Qname_v q -> qname q
  | A.String s | A.Untyped s -> string_literal s
  | a ->
      Printf.sprintf "xs:%s(%s)"
        (A.type_name (A.type_of a))
        (string_literal (A.to_string a))

let rec expr b (e : expr) =
  let p s = buf_add b s in
  let paren e =
    p "(";
    expr b e;
    p ")"
  in
  match e with
  | E_literal a -> p (literal_to_source a)
  | E_var q -> p ("$" ^ qname q)
  | E_context_item -> p "."
  | E_root -> p "/"
  | E_text_literal s ->
      p "text { ";
      p (string_literal s);
      p " }"
  | E_sequence [] -> p "()"
  | E_sequence es ->
      p "(";
      List.iteri
        (fun i e ->
          if i > 0 then p ", ";
          expr b e)
        es;
      p ")"
  | E_range (a, c) ->
      paren a;
      p " to ";
      paren c
  | E_if (c, t, f) ->
      p "if (";
      expr b c;
      p ") then ";
      paren t;
      p " else ";
      paren f
  | E_or (x, y) ->
      paren x;
      p " or ";
      paren y
  | E_and (x, y) ->
      paren x;
      p " and ";
      paren y
  | E_value_comp (op, x, y) ->
      paren x;
      p (" " ^ value_comp_to_source false op ^ " ");
      paren y
  | E_general_comp (op, x, y) ->
      paren x;
      p (" " ^ value_comp_to_source true op ^ " ");
      paren y
  | E_node_comp (op, x, y) ->
      paren x;
      p (match op with Is -> " is " | Precedes -> " << " | Follows -> " >> ");
      paren y
  | E_ftcontains (x, sel) ->
      paren x;
      p " ftcontains ";
      ft b sel
  | E_arith (op, x, y) ->
      paren x;
      p (" " ^ arith_to_source op ^ " ");
      paren y
  | E_unary_minus x ->
      p "-";
      paren x
  | E_union (x, y) ->
      paren x;
      p " | ";
      paren y
  | E_intersect (x, y) ->
      paren x;
      p " intersect ";
      paren y
  | E_except (x, y) ->
      paren x;
      p " except ";
      paren y
  | E_instance_of (x, st) ->
      paren x;
      p (" instance of " ^ Seq_type.to_string st)
  | E_treat_as (x, st) ->
      paren x;
      p (" treat as " ^ Seq_type.to_string st)
  | E_castable_as (x, ty, opt) ->
      paren x;
      p
        (Printf.sprintf " castable as xs:%s%s" (A.type_name ty)
           (if opt then "?" else ""))
  | E_cast_as (x, ty, opt) ->
      paren x;
      p
        (Printf.sprintf " cast as xs:%s%s" (A.type_name ty)
           (if opt then "?" else ""))
  | E_step (axis, test, preds) ->
      p (axis_name axis ^ "::" ^ node_test_to_source test);
      preds_out b preds
  | E_path (x, y) ->
      (match x with
      | E_root -> p "/"
      | x ->
          paren x;
          p "/");
      expr b y
  | E_filter (x, preds) ->
      paren x;
      preds_out b preds
  | E_call (q, args) ->
      p (qname q);
      p "(";
      List.iteri
        (fun i a ->
          if i > 0 then p ", ";
          expr b a)
        args;
      p ")"
  | E_ordered x ->
      p "ordered { ";
      expr b x;
      p " }"
  | E_unordered x ->
      p "unordered { ";
      expr b x;
      p " }"
  | E_enclosed x -> expr b x
  | E_flwor { clauses; where; order; return } ->
      List.iter
        (function
          | For_clause { var; pos_var; var_type; source } ->
              p ("for $" ^ qname var);
              Option.iter (fun t -> p (" as " ^ Seq_type.to_string t)) var_type;
              Option.iter (fun v -> p (" at $" ^ qname v)) pos_var;
              p " in ";
              paren source;
              p " "
          | Let_clause { var; var_type; value } ->
              p ("let $" ^ qname var);
              Option.iter (fun t -> p (" as " ^ Seq_type.to_string t)) var_type;
              p " := ";
              paren value;
              p " ")
        clauses;
      Option.iter
        (fun w ->
          p "where ";
          paren w;
          p " ")
        where;
      if order <> [] then begin
        p "order by ";
        List.iteri
          (fun i spec ->
            if i > 0 then p ", ";
            paren spec.key;
            if spec.descending then p " descending";
            match spec.empty_greatest with
            | Some true -> p " empty greatest"
            | Some false -> p " empty least"
            | None -> ())
          order;
        p " "
      end;
      p "return ";
      paren return
  | E_hash_join j ->
      (* pseudo-syntax: not parseable, but round-trips the plan shape
         for golden tests and EXPLAIN-style debugging *)
      p ("hash-join for $" ^ qname j.jleft_var ^ " in ");
      paren j.jleft_source;
      p (", $" ^ qname j.jright_var ^ " in ");
      paren j.jright_source;
      p " on ";
      paren j.jleft_key;
      p (if j.jgeneral then " = " else " eq ");
      paren j.jright_key;
      p " ";
      Option.iter
        (fun w ->
          p "where ";
          paren w;
          p " ")
        j.jwhere;
      if j.jorder <> [] then begin
        p "order by ";
        List.iteri
          (fun i spec ->
            if i > 0 then p ", ";
            paren spec.key;
            if spec.descending then p " descending";
            match spec.empty_greatest with
            | Some true -> p " empty greatest"
            | Some false -> p " empty least"
            | None -> ())
          j.jorder;
        p " "
      end;
      p "return ";
      paren j.jreturn
  | E_quantified (q, binds, body) ->
      p (match q with Some_quant -> "some " | Every_quant -> "every ");
      List.iteri
        (fun i (v, t, src) ->
          if i > 0 then p ", ";
          p ("$" ^ qname v);
          Option.iter (fun t -> p (" as " ^ Seq_type.to_string t)) t;
          p " in ";
          paren src)
        binds;
      p " satisfies ";
      paren body
  | E_typeswitch (op, cases, (dv, db)) ->
      p "typeswitch (";
      expr b op;
      p ")";
      List.iter
        (fun c ->
          p " case ";
          Option.iter (fun v -> p ("$" ^ qname v ^ " as ")) c.case_var;
          p (Seq_type.to_string c.case_type);
          p " return ";
          paren c.case_body)
        cases;
      p " default ";
      Option.iter (fun v -> p ("$" ^ qname v ^ " ")) dv;
      p "return ";
      paren db
  | E_direct_element { name; attributes; children } ->
      p ("<" ^ qname name);
      List.iter
        (fun (an, parts) ->
          p (" " ^ qname an ^ "=\"");
          List.iter
            (function
              | A_text t -> p (Xml_escape.attribute t)
              | A_enclosed e ->
                  p "{";
                  expr b e;
                  p "}")
            parts;
          p "\"")
        attributes;
      if children = [] then p "/>"
      else begin
        p ">";
        List.iter
          (fun c ->
            match c with
            | E_text_literal s -> p (Xml_escape.text s)
            | E_direct_element _ -> expr b c
            | E_enclosed e ->
                p "{ ";
                expr b e;
                p " }"
            | c ->
                p "{ ";
                expr b c;
                p " }")
          children;
        p ("</" ^ qname name ^ ">")
      end
  | E_computed_element (n, c) ->
      p "element ";
      (match n with
      | E_literal (A.Qname_v q) -> p (qname q ^ " ")
      | n ->
          p "{ ";
          expr b n;
          p " } ");
      p "{ ";
      expr b c;
      p " }"
  | E_computed_attribute (n, c) ->
      p "attribute ";
      (match n with
      | E_literal (A.Qname_v q) -> p (qname q ^ " ")
      | n ->
          p "{ ";
          expr b n;
          p " } ");
      p "{ ";
      expr b c;
      p " }"
  | E_computed_text c ->
      p "text { ";
      expr b c;
      p " }"
  | E_computed_comment c ->
      p "comment { ";
      expr b c;
      p " }"
  | E_computed_pi (n, c) ->
      p "processing-instruction { ";
      expr b n;
      p " } { ";
      expr b c;
      p " }"
  | E_computed_document c ->
      p "document { ";
      expr b c;
      p " }"
  | E_insert (pos, src, target) ->
      p "insert nodes ";
      paren src;
      p
        (match pos with
        | Into -> " into "
        | As_first_into -> " as first into "
        | As_last_into -> " as last into "
        | Before -> " before "
        | After -> " after ");
      paren target
  | E_delete x ->
      p "delete nodes ";
      paren x
  | E_replace { value_of; target; source } ->
      p (if value_of then "replace value of node " else "replace node ");
      paren target;
      p " with ";
      paren source
  | E_rename (t, n) ->
      p "rename node ";
      paren t;
      p " as ";
      paren n
  | E_transform (binds, m, r) ->
      p "copy ";
      List.iteri
        (fun i (v, e) ->
          if i > 0 then p ", ";
          p ("$" ^ qname v ^ " := ");
          paren e)
        binds;
      p " modify ";
      paren m;
      p " return ";
      paren r
  | E_block stmts ->
      p "{ ";
      List.iter
        (fun s ->
          statement b s;
          p "; ")
        stmts;
      p "}"
  | E_event_attach { event; binding; target; listener } ->
      p "on event ";
      paren event;
      p (match binding with Bind_at -> " at " | Bind_behind -> " behind ");
      paren target;
      p (" attach listener " ^ qname listener)
  | E_event_detach { event; target; listener } ->
      p "on event ";
      paren event;
      p " at ";
      paren target;
      p (" detach listener " ^ qname listener)
  | E_event_trigger { event; target } ->
      p "trigger event ";
      paren event;
      p " at ";
      paren target
  | E_set_style { property; target; value } ->
      p "set style ";
      paren property;
      p " of ";
      paren target;
      p " to ";
      paren value
  | E_get_style { property; target } ->
      p "get style ";
      paren property;
      p " of ";
      paren target

and preds_out b preds =
  List.iter
    (fun pr ->
      buf_add b "[";
      expr b pr;
      buf_add b "]")
    preds

and ft b sel =
  let p = buf_add b in
  match sel with
  | Ft_words (e, opts) ->
      p "(";
      expr b e;
      List.iter (function Ft_stemming -> p " with stemming") opts;
      p ")"
  | Ft_and (x, y) ->
      p "(";
      ft b x;
      p " ftand ";
      ft b y;
      p ")"
  | Ft_or (x, y) ->
      p "(";
      ft b x;
      p " ftor ";
      ft b y;
      p ")"
  | Ft_not x ->
      p "(ftnot ";
      ft b x;
      p ")"

and statement b (s : statement) =
  let p = buf_add b in
  match s with
  | S_var_decl (v, t, init) ->
      p ("declare variable $" ^ qname v);
      Option.iter (fun t -> p (" as " ^ Seq_type.to_string t)) t;
      Option.iter
        (fun e ->
          p " := ";
          expr b e)
        init
  | S_assign (v, e) ->
      p ("set $" ^ qname v ^ " := ");
      expr b e
  | S_while (c, body) ->
      p "while (";
      expr b c;
      p ") { ";
      List.iter
        (fun s ->
          statement b s;
          p "; ")
        body;
      p "}"
  | S_break -> p "break"
  | S_continue -> p "continue"
  | S_exit_with e ->
      p "exit with ";
      expr b e
  | S_expr e -> expr b e

let expr_to_source e =
  let b = Buffer.create 128 in
  expr b e;
  Buffer.contents b

let statement_to_source s =
  let b = Buffer.create 128 in
  statement b s;
  Buffer.contents b

let function_kind_to_source = function
  | F_plain -> ""
  | F_updating -> "updating "
  | F_sequential -> "sequential "

let prolog_decl_to_source (d : prolog_decl) =
  let b = Buffer.create 128 in
  let p = buf_add b in
  (match d with
  | P_namespace (prefix, uri) ->
      p (Printf.sprintf "declare namespace %s = %s" prefix (string_literal uri))
  | P_default_element_ns uri ->
      p ("declare default element namespace " ^ string_literal uri)
  | P_default_function_ns uri ->
      p ("declare default function namespace " ^ string_literal uri)
  | P_boundary_space_preserve preserve ->
      p ("declare boundary-space " ^ if preserve then "preserve" else "strip")
  | P_option (q, v) ->
      p (Printf.sprintf "declare option %s %s" (qname q) (string_literal v))
  | P_variable (v, t, init) ->
      p ("declare variable $" ^ qname v);
      Option.iter (fun t -> p (" as " ^ Seq_type.to_string t)) t;
      (match init with
      | Some e ->
          p " := ";
          expr b e
      | None -> p " external")
  | P_function { fname; params; return_type; body; kind } ->
      p ("declare " ^ function_kind_to_source kind ^ "function " ^ qname fname);
      p "(";
      List.iteri
        (fun i (v, t) ->
          if i > 0 then p ", ";
          p ("$" ^ qname v);
          Option.iter (fun t -> p (" as " ^ Seq_type.to_string t)) t)
        params;
      p ")";
      Option.iter (fun t -> p (" as " ^ Seq_type.to_string t)) return_type;
      (match body with
      | Some (E_block stmts) ->
          p " { ";
          List.iteri
            (fun i s ->
              if i > 0 then p "; ";
              statement b s)
            stmts;
          p " }"
      | Some e ->
          p " { ";
          expr b e;
          p " }"
      | None -> p " external")
  | P_module_import { prefix; uri; locations } ->
      p "import module ";
      Option.iter (fun pr -> p (Printf.sprintf "namespace %s = " pr)) prefix;
      p (string_literal uri);
      if locations <> [] then begin
        p " at ";
        List.iteri
          (fun i l ->
            if i > 0 then p ", ";
            p (string_literal l))
          locations
      end);
  Buffer.contents b

let program_to_source (prog : prog) =
  let b = Buffer.create 512 in
  (match prog.library_module with
  | Some m ->
      buf_add b
        (Printf.sprintf "module namespace %s = %s" m.mod_prefix
           (string_literal m.mod_uri));
      (match m.mod_port with
      | Some port -> buf_add b (Printf.sprintf " port:%d" port)
      | None -> ());
      buf_add b ";\n"
  | None -> ());
  List.iter
    (fun d ->
      buf_add b (prolog_decl_to_source d);
      buf_add b ";\n")
    prog.prolog;
  (match prog.body with
  | Some e ->
      buf_add b (expr_to_source e);
      buf_add b "\n"
  | None -> ());
  Buffer.contents b
