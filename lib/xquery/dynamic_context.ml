open Xmlb

type listener = {
  listener_name : Qname.t;
  invoke :
    ?memo:Reactive.memo ->
    ?key:string ->
    (unit -> Xdm_item.sequence list) ->
    unit;
      (** Arguments are a thunk so a skipped dispatch never builds
          them; [?key] is a host-computed fingerprint that determines
          the thunk's result, letting the skip decision run before the
          thunk is forced. Without [?key] the arguments are forced and
          fingerprinted structurally. *)
}

type host = {
  attach :
    event_type:string -> targets:Xdm_item.sequence -> listener:listener -> unit;
  attach_behind :
    event_type:string ->
    computation:(unit -> Xdm_item.sequence) ->
    listener:listener ->
    unit;
  detach :
    event_type:string -> targets:Xdm_item.sequence -> name:Qname.t -> unit;
  trigger : event_type:string -> targets:Xdm_item.sequence -> unit;
  set_style : Dom.node -> string -> string -> unit;
  get_style : Dom.node -> string -> string option;
  doc : string -> Dom.node;
  doc_available : string -> bool;
  put : Dom.node -> string -> unit;
  now : unit -> Xdm_datetime.t;
  alert : string -> unit;
  listener_error : string -> unit;
      (** sink for errors raised inside event listeners: like a real
          browser, a failing handler must not abort event dispatch *)
}

let target_nodes targets =
  List.filter_map
    (function Xdm_item.Node n -> Some n | Xdm_item.Atomic _ -> None)
    targets

(* Build the two-argument event node the paper passes to listeners
   (§4.3.2): $evt with type/detail children, $obj the location node. *)
let event_to_xml (e : Dom_event.event) =
  let el = Dom.create_element (Qname.make "event") in
  let add name text =
    let child = Dom.create_element (Qname.make name) in
    Dom.append_child ~parent:child (Dom.create_text text);
    Dom.append_child ~parent:el child
  in
  add "type" e.Dom_event.event_type;
  List.iter (fun (k, v) -> add k v) e.Dom_event.detail;
  (match e.Dom_event.payload with
  | Some p -> Dom.append_child ~parent:el (Dom.clone p)
  | None -> ());
  el

(* Fingerprint determining [event_to_xml e] (plus the $obj argument,
   keyed by identity): everything the built tree's content depends on.
   Computed without constructing any DOM node, so skipped dispatches
   stay cheap. *)
let event_key (e : Dom_event.event) =
  let b = Buffer.create 32 in
  Buffer.add_string b e.Dom_event.event_type;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ';';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    e.Dom_event.detail;
  (match e.Dom_event.payload with
  | Some p ->
      Buffer.add_char b '|';
      Buffer.add_string b (Dom.serialize p)
  | None -> ());
  Buffer.add_char b '#';
  Buffer.add_string b (string_of_int (Dom.id e.Dom_event.target));
  Buffer.contents b

let default_host =
  {
    attach =
      (fun ~event_type ~targets ~listener ->
        List.iter
          (fun node ->
            (* one memo per registration: each (node, listener) pair
               runs against its own target, so footprints and argument
               fingerprints must not be shared across targets *)
            let memo = Reactive.fresh_memo () in
            let lid =
              Dom_event.add_listener node ~event_type
                ~name:(Qname.to_clark listener.listener_name) (fun e ->
                  listener.invoke ~memo ~key:(event_key e) (fun () ->
                      let evt_node = Xdm_item.Node (event_to_xml e) in
                      let obj = Xdm_item.Node e.Dom_event.target in
                      [ [ evt_node ]; [ obj ] ]))
            in
            Reactive.register lid memo)
          (target_nodes targets));
    attach_behind =
      (fun ~event_type ~computation ~listener ->
        (* no event loop in the standalone host: evaluate synchronously
           and deliver the completion signal (readyState 4) *)
        ignore event_type;
        let result = computation () in
        listener.invoke (fun () ->
            [ [ Xdm_item.Atomic (Xdm_atomic.Integer 4) ]; result ]));
    detach =
      (fun ~event_type ~targets ~name ->
        List.iter
          (fun node ->
            ignore
              (Dom_event.remove_named_listener node ~event_type
                 ~name:(Qname.to_clark name)))
          (target_nodes targets));
    trigger =
      (fun ~event_type ~targets ->
        List.iter
          (fun node -> ignore (Dom_event.fire ~event_type ~target:node ()))
          (target_nodes targets));
    set_style = Style_util.set_on_node;
    get_style = Style_util.get_on_node;
    doc =
      (fun uri ->
        Xq_error.raise_error "FODC0002" "document %S is not available" uri);
    doc_available = (fun _ -> false);
    put =
      (fun _ uri ->
        Xq_error.raise_error "FOUP0002" "fn:put to %S is not supported" uri);
    now = Call_ctx.default.Call_ctx.now;
    alert = (fun s -> print_endline s);
    listener_error = (fun m -> Logs.err (fun f -> f "listener error: %s" m));
  }

type focus = { item : Xdm_item.item; position : int; size : int }

module Smap = Map.Make (String)

type t = {
  static : Static_context.t;
  globals : (string, Xdm_item.sequence ref) Hashtbl.t;
  locals : Xdm_item.sequence ref Smap.t;
  focus : focus option;
  pul : Pul.t;
  host : host;
  depth : int;
  compiled_fns :
    (int * int * int, t -> Xdm_item.sequence list -> Xdm_item.sequence) Hashtbl.t;
}

let fn_key qn ~arity = (qn.Qname.usym, (qn.Qname.lsym :> int), arity)

let create ?(host = default_host) static =
  {
    static;
    globals = Hashtbl.create 16;
    locals = Smap.empty;
    focus = None;
    pul = Pul.create ();
    host;
    depth = 0;
    compiled_fns = Hashtbl.create 8;
  }

let key qn = Qname.to_clark qn

let bind t qn v = { t with locals = Smap.add (key qn) (ref v) t.locals }
let bind_ref t qn r = { t with locals = Smap.add (key qn) r t.locals }

let lookup_ref t qn =
  match Smap.find_opt (key qn) t.locals with
  | Some r -> r
  | None -> (
      match Hashtbl.find_opt t.globals (key qn) with
      | Some r ->
          (* global variables are shared mutable state outside the DOM
             footprint (script statements assign them between listener
             runs): a recorded run that reads one cannot be skipped *)
          Footprint.poison ();
          r
      | None ->
          Xq_error.raise_error Xq_error.undefined_variable
            "undefined variable $%s" (Qname.to_string qn))

let lookup t qn = !(lookup_ref t qn)
let bind_global t qn v = Hashtbl.replace t.globals (key qn) (ref v)

let with_focus t item ~position ~size =
  { t with focus = Some { item; position; size } }

let focus_item t =
  match t.focus with
  | Some f -> f.item
  | None ->
      Xq_error.raise_error "XPDY0002" "the context item is undefined"

(* The focus is preserved into function bodies: strict XQuery clears
   it, but the paper's listener functions navigate the page with
   absolute paths (//div[...], §4.4/§6.3), which XQIB supports by
   keeping the document as the context item. *)
let function_scope t = { t with locals = Smap.empty; depth = t.depth + 1 }
