(** Reactive dispatch: footprint-tracked listener memos.

    Every listener registered through the evaluator owns a {!memo}.
    After a pure run, the memo holds the run's read footprint (attached
    to an autonomous {!Query_cache} entry), its argument fingerprint and
    its result fingerprint. A later dispatch with the same argument
    fingerprint is skipped outright unless some mutation batch since
    then intersected the footprint ({!Footprint.on_commit} marks memos
    dirty) — under deterministic evaluation the skipped run would have
    repeated the previous one exactly: same discarded result, no
    effects.

    Impure runs (PUL effects, external functions, impure builtins,
    global variable reads) latch the memo as unmemoizable; it then runs
    plain, with zero recording overhead, forever. The
    [--no-incremental] ablation ({!set_incremental}) restores
    always-re-run dispatch globally and empties the table. *)

type memo

val fresh_memo : unit -> memo

(** {1 Registration}

    Keyed by [Dom_event] listener id; [Dom_event.drop_hook] is wired to
    {!drop} at module initialization, so removal, same-name
    replacement and reset all release the memo (and its footprint's
    tracked-root refcounts). *)

val register : Dom_event.listener_id -> memo -> unit
val drop : Dom_event.listener_id -> unit

(** Number of live memo entries (listener-churn regression tests). *)
val table_size : unit -> int

val table_stats : unit -> Query_cache.stats

(** {1 Switch} *)

(** Mirrors {!Footprint.set_incremental}; disabling also clears the
    memo table so existing listeners revert to plain dispatch. *)
val set_incremental : bool -> unit

val active : unit -> bool

(** {1 Run protocol} (driven by [Eval.make_listener]) *)

type decision = Skip | Run_recorded | Run_plain

val decide : memo -> args_key:string -> decision

(** Builtins whose result depends on state the footprint cannot see
    (documents, clocks, trace): calling one poisons the run. *)
val impure_builtin : string -> bool

(** Same predicate keyed by the pre-interned local-name symbol — an
    int-set probe instead of a string match on every builtin call. *)
val impure_builtin_sym : Xmlb.Sym.t -> bool
val args_key : Xdm_item.sequence list -> string
val count_skip : unit -> unit
val count_rerun : unit -> unit

(** Record the argument nodes as read scopes of the active recorder
    (their content is observable without any navigation step). *)
val record_args : Xdm_item.sequence list -> unit

(** Store the outcome of a recorded run: caches footprint + fingerprints
    on a pure successful run, latches impurity on a poisoned one,
    caches nothing on an error. *)
val finish_run :
  memo ->
  ok:bool ->
  args_key:string ->
  fp:Footprint.read ->
  result:Xdm_item.sequence ->
  unit

(** {1 Counters} (always on; read by bench gates and browser:stats()) *)

val counter_stats : unit -> (string * int) list
val reset_counters : unit -> unit
