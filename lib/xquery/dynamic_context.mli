(** The XQuery dynamic context: variable bindings, focus, the pending
    update list, and the host environment (browser, server, or the
    standalone default).

    The host hooks are how the paper's browser extensions reach the
    simulated browser: [on event ... attach listener] lands in
    {!host.attach}, the async [behind] binding in {!host.attach_behind}
    (§4.4), [trigger event] in {!host.trigger}, and [set/get style] in
    the style hooks (§4.5). *)

open Xmlb

(** A listener ready to be invoked by the host: the declared function's
    name plus a closure that calls it (and applies its updates). When
    the host passes the registration's {!Reactive.memo}, the closure
    may skip the run entirely if the memoized footprint proves nothing
    it reads has changed. Arguments are passed as a thunk so a skipped
    run never constructs them; [?key] is a host-computed fingerprint
    that must determine the thunk's result — with it, the skip decision
    runs before the thunk is forced, without it the arguments are
    forced and fingerprinted structurally. *)
type listener = {
  listener_name : Qname.t;
  invoke :
    ?memo:Reactive.memo ->
    ?key:string ->
    (unit -> Xdm_item.sequence list) ->
    unit;
}

type host = {
  attach :
    event_type:string -> targets:Xdm_item.sequence -> listener:listener -> unit;
  attach_behind :
    event_type:string ->
    computation:(unit -> Xdm_item.sequence) ->
    listener:listener ->
    unit;
  detach :
    event_type:string -> targets:Xdm_item.sequence -> name:Qname.t -> unit;
  trigger : event_type:string -> targets:Xdm_item.sequence -> unit;
  set_style : Dom.node -> string -> string -> unit;
  get_style : Dom.node -> string -> string option;
  doc : string -> Dom.node;
  doc_available : string -> bool;
  put : Dom.node -> string -> unit;
  now : unit -> Xdm_datetime.t;
  alert : string -> unit;  (** used by fn:trace and as a default sink *)
  listener_error : string -> unit;
      (** sink for errors raised inside event listeners: like a real
          browser, a failing handler must not abort event dispatch *)
}

(** Standalone host: events dispatch synchronously through {!Dom_event},
    styles edit the [style] attribute, documents are unavailable,
    [behind] evaluates synchronously then signals readyState 4. *)
val default_host : host

type focus = { item : Xdm_item.item; position : int; size : int }

module Smap : Map.S with type key = string

type t = {
  static : Static_context.t;
  globals : (string, Xdm_item.sequence ref) Hashtbl.t;
  locals : Xdm_item.sequence ref Smap.t;
  focus : focus option;
  pul : Pul.t;
  host : host;
  depth : int;
  compiled_fns :
    (int * int * int, t -> Xdm_item.sequence list -> Xdm_item.sequence) Hashtbl.t;
      (** compiled user-function bodies, keyed by {!fn_key} (uri sym,
          local sym, arity); installed by {!Engine.context_for} when
          compiled evaluation is on, consulted by
          [Eval.call_user_function] before the tree-walking body
          dispatch *)
}

(** Key of a user function in [compiled_fns]: (uri symbol, local-name
    symbol, arity) from the Qname's pre-interned symbols — int hashing
    per call instead of a Clark-string allocation. *)
val fn_key : Qname.t -> arity:int -> int * int * int

val create : ?host:host -> Static_context.t -> t

(** Bind a fresh local variable (shadows). *)
val bind : t -> Qname.t -> Xdm_item.sequence -> t

(** Bind sharing the given ref cell (scripting [set $x]). *)
val bind_ref : t -> Qname.t -> Xdm_item.sequence ref -> t

(** Look up a variable (locals, then globals).
    @raise Xq_error.Error (XPST0008) if unbound. *)
val lookup : t -> Qname.t -> Xdm_item.sequence

(** The ref cell of a variable, for assignment.
    @raise Xq_error.Error if unbound. *)
val lookup_ref : t -> Qname.t -> Xdm_item.sequence ref

val bind_global : t -> Qname.t -> Xdm_item.sequence -> unit
val with_focus : t -> Xdm_item.item -> position:int -> size:int -> t
val focus_item : t -> Xdm_item.item

(** Fresh local scope (for function bodies: only globals visible). *)
val function_scope : t -> t
