(* The closure compiler: emits one OCaml closure per {!Core_ir} node,
   composed bottom-up at compile time, so a run performs direct calls
   instead of re-dispatching on the AST at every node. Variable access
   is a frame-array read (slots resolved by the lowering pass), hot
   shapes (steps with name tests, predicate chains, singleton
   arithmetic/comparison, FLWOR loops) are specialized, and everything
   the compiler does not own delegates to the tree-walking {!Eval} —
   including the streaming, value-index and hash-join fast paths, which
   compiled code must reach, not bypass.

   Exact-parity rules the emitter follows:

   - every closure replicates the corresponding [Eval.eval] arm
     operation-for-operation (same evaluation order, same error codes
     and messages, same metric increments);
   - effective-boolean contexts and bounded positional takes delegate
     to [Eval.eval_seq] on the original AST when streaming is on, so
     pull counters match the interpreter pull-for-pull;
   - [C_opaque] nodes rebind the frame's live ref cells into the
     dynamic context ({!Dynamic_context.bind_ref}) and hand the AST to
     [Eval.eval] — scripting assignment through the shared cells
     behaves exactly as interpreted code. *)

open Xmlb
module A = Xdm_atomic
module I = Xdm_item
module D = Dynamic_context
module C = Core_ir

type env = { ctx : D.t; frame : I.sequence ref array }
type fn_impl = D.t -> I.sequence list -> I.sequence

type prog_code = {
  body : (D.t -> I.sequence) option;
  fns : ((int * int * int) * fn_impl) list;
}

(* ablation switch, mirroring Eval.set_streaming *)
let enabled_flag = ref true
let set_compiled_eval b = enabled_flag := b
let enabled () = !enabled_flag

(* always-on counters for browser:stats(); the obs mirrors below are
   metric-guarded like every other instrumented subsystem *)
let stat_programs = ref 0
let stat_fns = ref 0
let stat_nodes = ref 0
let stat_opaque = ref 0

let stats () =
  [
    ("programs", !stat_programs);
    ("functions", !stat_fns);
    ("nodes", !stat_nodes);
    ("opaque-nodes", !stat_opaque);
  ]

let err code fmt = Xq_error.raise_error code fmt
let type_err fmt = err Xq_error.type_error_code fmt

(* ------------------------------------------------------------------ *)
(* interpreter bridges                                                 *)

type scope = (Qname.t * C.slot) list (* innermost first *)

(* Reconstruct a dynamic context whose locals are the frame's live ref
   cells, for handing an original AST back to the interpreter. Binding
   outermost-first lets inner bindings shadow, like lexical lookup. *)
let rebind_of (scope : scope) =
  let pairs = Array.of_list (List.rev scope) in
  fun env ->
    Array.fold_left
      (fun c (qn, s) -> D.bind_ref c qn env.frame.(s))
      env.ctx pairs

(* The eval_seq forms that pull through counting cursors; EBV contexts
   delegate exactly these so xdm.seq.pulls matches the interpreter. *)
let streams_natively (e : Ast.expr) =
  (not (Ast.is_updating e))
  &&
  match e with
  | Ast.E_sequence _ | Ast.E_range _ | Ast.E_if _ | Ast.E_step _
  | Ast.E_filter _ ->
      true
  | Ast.E_path (e1, Ast.E_step (axis, _, _)) -> (
      match Focus_analysis.seq_class e1 with
      | `One -> Focus_analysis.forward_ordered axis
      | `Sorted -> (
          match axis with Ast.Self | Ast.Attribute_axis -> true | _ -> false)
      | `Unknown -> false)
  | Ast.E_flwor { order = []; _ } -> true
  | Ast.E_hash_join j -> j.Ast.jorder = []
  | _ -> false

let atomize_seq cur =
  Seq.concat_map (fun it -> List.to_seq (I.atomize [ it ])) (Xdm_seq.items cur)

let call_ctx (ctx : D.t) =
  {
    Call_ctx.context_item =
      (match ctx.D.focus with Some f -> Some f.D.item | None -> None);
    position = (match ctx.D.focus with Some f -> f.D.position | None -> 0);
    size = (match ctx.D.focus with Some f -> f.D.size | None -> 0);
    doc = ctx.D.host.D.doc;
    doc_available = ctx.D.host.D.doc_available;
    put = ctx.D.host.D.put;
    now = ctx.D.host.D.now;
    trace = Call_ctx.default.Call_ctx.trace;
  }

(* ------------------------------------------------------------------ *)
(* emission                                                            *)

type attr_piece = P_text of string | P_enclosed of (env -> I.sequence)

(* integer endpoint of a range operand, per the interpreter's E_range
   rule: an empty operand yields no range; a failing cast propagates *)
let range_endpoint (f : env -> I.sequence) env =
  match I.opt_atomic (f env) with
  | None -> None
  | Some a -> (
      match Eval.protect (fun () -> A.cast ~target:A.T_integer a) with
      | A.Integer i -> Some i
      | _ -> None)

let rec emit (scope : scope) (c : C.t) : env -> I.sequence =
  incr stat_nodes;
  match c.C.d with
  | C.C_atomic a ->
      let v = [ I.Atomic a ] in
      fun _ -> v
  | C.C_text_literal s -> fun _ -> [ I.Node (Dom.create_text s) ]
  | C.C_slot s -> fun env -> !(env.frame.(s))
  | C.C_free qn -> fun env -> D.lookup env.ctx qn
  | C.C_context_item -> fun env -> [ D.focus_item env.ctx ]
  | C.C_root -> (
      fun env ->
        match D.focus_item env.ctx with
        | I.Node n -> [ I.Node (Dom.root n) ]
        | I.Atomic _ -> type_err "the context item for '/' is not a node")
  | C.C_sequence cs ->
      let fs = List.map (emit scope) cs in
      fun env -> List.concat_map (fun f -> f env) fs
  | C.C_range (a, b) ->
      let fa = emit scope a and fb = emit scope b in
      fun env ->
        (match (range_endpoint fa env, range_endpoint fb env) with
        | Some lo, Some hi when lo <= hi ->
            List.init (hi - lo + 1) (fun i -> I.Atomic (A.Integer (lo + i)))
        | _ -> [])
  | C.C_if (cond, t, f) ->
      let fc = emit_ebv scope cond
      and ft = emit scope t
      and ff = emit scope f in
      fun env -> if fc env then ft env else ff env
  | C.C_or (a, b) ->
      let fa = emit_ebv scope a and fb = emit_ebv scope b in
      fun env ->
        if fa env then [ I.Atomic (A.Boolean true) ]
        else [ I.Atomic (A.Boolean (fb env)) ]
  | C.C_and (a, b) ->
      let fa = emit_ebv scope a and fb = emit_ebv scope b in
      fun env ->
        if not (fa env) then [ I.Atomic (A.Boolean false) ]
        else [ I.Atomic (A.Boolean (fb env)) ]
  | C.C_value_comp (op, a, b) -> (
      let fa = emit scope a and fb = emit scope b in
      fun env ->
        let ra = fa env and rb = fb env in
        match (ra, rb) with
        | [ I.Atomic (A.Integer i) ], [ I.Atomic (A.Integer j) ] ->
            (* hot shape: integer operands need no promotion and no
               NaN guard (same result as {!Eval.value_compare_pair}) *)
            let r =
              match op with
              | Ast.Eq -> i = j
              | Ast.Ne -> i <> j
              | Ast.Lt -> i < j
              | Ast.Le -> i <= j
              | Ast.Gt -> i > j
              | Ast.Ge -> i >= j
            in
            [ I.Atomic (A.Boolean r) ]
        | _ -> (
            match (I.atomize ra, I.atomize rb) with
            | [], _ | _, [] -> []
            | [ x ], [ y ] ->
                [ I.Atomic (A.Boolean (Eval.value_compare_pair op x y)) ]
            | _ -> type_err "value comparison requires singleton operands"))
  | C.C_general_comp (op, a, b) ->
      let fa = emit scope a and fb = emit scope b in
      fun env ->
        let va = I.atomize (fa env) and vb = I.atomize (fb env) in
        let result =
          List.exists
            (fun x -> List.exists (fun y -> Eval.general_compare_pair op x y) vb)
            va
        in
        [ I.Atomic (A.Boolean result) ]
  | C.C_general_comp_stream (op, lhs_ast, b) ->
      let fb = emit scope b and rb = rebind_of scope in
      fun env ->
        if Eval.streaming_enabled () then begin
          let vb = I.atomize (fb env) in
          let result =
            Seq.exists
              (fun x ->
                List.exists (fun y -> Eval.general_compare_pair op x y) vb)
              (atomize_seq (Eval.eval_seq (rb env) lhs_ast))
          in
          [ I.Atomic (A.Boolean result) ]
        end
        else
          let va = I.atomize (Eval.eval (rb env) lhs_ast)
          and vb = I.atomize (fb env) in
          let result =
            List.exists
              (fun x ->
                List.exists (fun y -> Eval.general_compare_pair op x y) vb)
              va
          in
          [ I.Atomic (A.Boolean result) ]
  | C.C_node_comp (op, a, b) -> (
      let fa = emit scope a and fb = emit scope b in
      fun env ->
        let na = fa env and nb = fb env in
        match (na, nb) with
        | [], _ | _, [] -> []
        | [ I.Node x ], [ I.Node y ] ->
            let r =
              match op with
              | Ast.Is -> Dom.equal x y
              | Ast.Precedes -> Dom.compare_order x y < 0
              | Ast.Follows -> Dom.compare_order x y > 0
            in
            [ I.Atomic (A.Boolean r) ]
        | _ -> type_err "node comparison requires single nodes")
  | C.C_arith (op, a, b) -> (
      let fa = emit scope a and fb = emit scope b in
      let f =
        match op with
        | Ast.Add -> A.add
        | Ast.Sub -> A.subtract
        | Ast.Mul -> A.multiply
        | Ast.Div -> A.divide
        | Ast.Idiv -> A.integer_divide
        | Ast.Mod -> A.modulo
      in
      fun env ->
        let ra = fa env and rb = fb env in
        match (ra, rb) with
        | [ I.Atomic (A.Integer i as x) ], [ I.Atomic (A.Integer j as y) ]
          -> (
            (* hot shape: integer-integer arithmetic is a direct int
               op ({!Xdm_atomic.numeric_op} with an identity
               promotion); division and the by-zero cases keep the
               generic path for its error mapping *)
            match op with
            | Ast.Add -> [ I.Atomic (A.Integer (i + j)) ]
            | Ast.Sub -> [ I.Atomic (A.Integer (i - j)) ]
            | Ast.Mul -> [ I.Atomic (A.Integer (i * j)) ]
            | Ast.Mod when j <> 0 -> [ I.Atomic (A.Integer (i mod j)) ]
            | Ast.Idiv when j <> 0 -> [ I.Atomic (A.Integer (i / j)) ]
            | _ -> [ I.Atomic (Eval.protect (fun () -> f x y)) ])
        | _ -> (
            match (I.atomize ra, I.atomize rb) with
            | [], _ | _, [] -> []
            | [ x ], [ y ] -> [ I.Atomic (Eval.protect (fun () -> f x y)) ]
            | _ -> type_err "arithmetic requires singleton operands"))
  | C.C_unary_minus a -> (
      let fa = emit scope a in
      fun env ->
        match I.atomize (fa env) with
        | [] -> []
        | [ x ] -> [ I.Atomic (Eval.protect (fun () -> A.negate x)) ]
        | _ -> type_err "unary minus requires a singleton operand")
  | C.C_union (a, b) ->
      let fa = emit scope a and fb = emit scope b in
      fun env -> Eval.protect (fun () -> I.union (fa env) (fb env))
  | C.C_intersect (a, b) ->
      let fa = emit scope a and fb = emit scope b in
      fun env -> Eval.protect (fun () -> I.intersect (fa env) (fb env))
  | C.C_except (a, b) ->
      let fa = emit scope a and fb = emit scope b in
      fun env -> Eval.protect (fun () -> I.except (fa env) (fb env))
  | C.C_instance_of (a, st) ->
      let fa = emit scope a in
      fun env -> [ I.Atomic (A.Boolean (Seq_type.matches st (fa env))) ]
  | C.C_treat_as (a, st) ->
      let fa = emit scope a in
      fun env ->
        let v = fa env in
        if Seq_type.matches st v then v
        else
          err "XPDY0050" "treat as %s failed on a sequence of %d item(s)"
            (Seq_type.to_string st) (List.length v)
  | C.C_castable_as (a, ty, optional) -> (
      let fa = emit scope a in
      fun env ->
        match I.atomize (fa env) with
        | [] -> [ I.Atomic (A.Boolean optional) ]
        | [ x ] -> [ I.Atomic (A.Boolean (A.castable ~target:ty x)) ]
        | _ -> [ I.Atomic (A.Boolean false) ])
  | C.C_cast_as (a, ty, optional) -> (
      let fa = emit scope a in
      fun env ->
        match I.atomize (fa env) with
        | [] ->
            if optional then []
            else type_err "cast of an empty sequence to a non-optional type"
        | [ x ] -> [ I.Atomic (Eval.protect (fun () -> A.cast ~target:ty x)) ]
        | _ -> type_err "cast requires a singleton operand")
  | C.C_step (axis, test, preds, ast_preds) ->
      let pfs = List.map (emit scope) preds in
      let scan env =
        match D.focus_item env.ctx with
        | I.Atomic _ -> type_err "axis step applied to an atomic context item"
        | I.Node n -> (
            match Eval.value_index_step axis test ast_preds n with
            | Some (nodes, _) ->
                apply_preds env
                  (List.map (fun m -> I.Node m) nodes)
                  (List.tl pfs)
            | None ->
                apply_preds env
                  (List.map (fun m -> I.Node m) (Eval.step_nodes axis test n))
                  pfs)
      in
      with_bounded_take scope c.C.ast scan
  | C.C_filter (e, preds) ->
      let fe = emit scope e in
      let pfs = List.map (emit scope) preds in
      with_bounded_take scope c.C.ast (fun env -> apply_preds env (fe env) pfs)
  | C.C_path (a, b) ->
      let fa = emit scope a and fb = emit scope b in
      let eager_from env lhs =
        let n = List.length lhs in
        let results =
          List.concat
            (List.mapi
               (fun i item ->
                 match item with
                 | I.Node _ ->
                     fb
                       {
                         env with
                         ctx = D.with_focus env.ctx item ~position:(i + 1) ~size:n;
                       }
                 | I.Atomic _ -> type_err "path step applied to an atomic value")
               lhs)
        in
        if results = [] then []
        else if I.all_nodes results then
          Eval.protect (fun () -> I.document_order results)
        else if List.exists I.is_node results then
          err "XPTY0018" "path result mixes nodes and atomic values"
        else results
      in
      let eager =
        (* hot shape: a predicate-free forward step over a singleton
           lhs emits document order directly (the invariant the
           streaming pipeline already relies on, {!Focus_analysis}),
           so the focus rebuild and the doc-order merge both drop out *)
        match b.C.d with
        | C.C_step (axis, test, [], [])
          when Focus_analysis.forward_ordered axis -> (
            fun env ->
              match fa env with
              | [] -> []
              | [ I.Node n ] ->
                  List.map (fun m -> I.Node m) (Eval.step_nodes axis test n)
              | [ I.Atomic _ ] ->
                  type_err "path step applied to an atomic value"
              | lhs -> eager_from env lhs)
        | _ -> fun env -> eager_from env (fa env)
      in
      (* the interpreter's bounded-take clause additionally requires a
         provably ordered chain for paths *)
      if
        Focus_analysis.has_bounded_take c.C.ast
        && Focus_analysis.seq_class c.C.ast <> `Unknown
      then
        let rb = rebind_of scope in
        fun env ->
          if Eval.streaming_enabled () then
            Xdm_seq.to_list (Eval.eval_seq (rb env) c.C.ast)
          else eager env
      else eager
  | C.C_for { slot; pos_slot; var; pos_var; var_type; source; body } -> (
      let scope' = (var, slot) :: scope in
      let scope' =
        match (pos_var, pos_slot) with
        | Some pv, Some ps -> (pv, ps) :: scope'
        | _ -> scope'
      in
      let bodyf = emit scope' body in
      let what = "$" ^ Qname.to_string var in
      let coerce iv =
        match var_type with
        | Some st -> Seq_type.coerce ~what st iv
        | None -> iv
      in
      (* accumulate body results item by item instead of building a
         list of lists and concatenating: same order, one allocation
         less per iteration *)
      let push acc env =
        match bodyf env with
        | [] -> ()
        | [ x ] -> acc := x :: !acc
        | xs -> List.iter (fun x -> acc := x :: !acc) xs
      in
      let bind_at env i item =
        env.frame.(slot) <- ref (coerce [ item ]);
        match pos_slot with
        | Some ps -> env.frame.(ps) <- ref [ I.Atomic (A.Integer i) ]
        | None -> ()
      in
      match source.C.d with
      | C.C_range (ra, rb) ->
          (* hot shape: iterate the range without materialising it *)
          let fa = emit scope ra and fb = emit scope rb in
          fun env ->
            (match (range_endpoint fa env, range_endpoint fb env) with
            | Some lo, Some hi when lo <= hi ->
                let acc = ref [] in
                for i = lo to hi do
                  bind_at env (i - lo + 1) (I.Atomic (A.Integer i));
                  push acc env
                done;
                List.rev !acc
            | _ -> [])
      | _ ->
          let src = emit scope source in
          fun env ->
            let items = src env in
            let acc = ref [] in
            List.iteri (fun i item ->
                bind_at env (i + 1) item;
                push acc env)
              items;
            List.rev !acc)
  | C.C_let { slot; var; var_type; value; body } ->
      let fv = emit scope value in
      let bodyf = emit ((var, slot) :: scope) body in
      let what = "$" ^ Qname.to_string var in
      fun env ->
        let v = fv env in
        let v =
          match var_type with Some st -> Seq_type.coerce ~what st v | None -> v
        in
        env.frame.(slot) <- ref v;
        bodyf env
  | C.C_where (cond, body) ->
      let fc = emit_ebv scope cond and bodyf = emit scope body in
      fun env -> if fc env then bodyf env else []
  | C.C_cast_call (ty, a) -> (
      let fa = emit scope a in
      fun env ->
        let v = fa env in
        if !Obs.Metrics.enabled then begin
          Obs.Metrics.incr "eval.calls";
          Obs.Metrics.incr "eval.calls.constructor"
        end;
        match v with
        (* hot shape: xs:integer on an integer is the identity cast *)
        | [ I.Atomic (A.Integer _) ] when ty = A.T_integer -> v
        | _ -> (
            match I.atomize v with
            | [] -> []
            | [ x ] ->
                [ I.Atomic (Eval.protect (fun () -> A.cast ~target:ty x)) ]
            | _ -> type_err "constructor function requires a singleton"))
  | C.C_builtin_call (qn, impl, args) ->
      let fs = List.map (emit scope) args in
      (* this dispatch bypasses Eval.call_function, so the recorded-run
         impurity check must be replicated here; the test is hoisted to
         emission time *)
      let impure = Reactive.impure_builtin_sym qn.Qname.lsym in
      fun env ->
        let vs = List.map (fun f -> f env) fs in
        if !Obs.Metrics.enabled then begin
          Obs.Metrics.incr "eval.calls";
          Obs.Metrics.incr "eval.calls.builtin"
        end;
        if impure then Footprint.poison ();
        Eval.protect (fun () -> impl (call_ctx env.ctx) vs)
  | C.C_call (qn, args) ->
      let fs = List.map (emit scope) args in
      fun env ->
        let vs = List.map (fun f -> f env) fs in
        Eval.call_function env.ctx qn vs
  | C.C_direct_element { name; attributes; children } ->
      let attributes =
        List.map
          (fun (an, parts) ->
            ( an,
              List.map
                (function
                  | C.CA_text t -> P_text t
                  | C.CA_enclosed e -> P_enclosed (emit scope e))
                parts ))
          attributes
      in
      let children = List.map (emit scope) children in
      fun env ->
        let el = Dom.create_element name in
        List.iter
          (fun (an, parts) ->
            let value =
              String.concat ""
                (List.map
                   (function
                     | P_text t -> t
                     | P_enclosed f -> I.sequence_string (f env))
                   parts)
            in
            Dom.set_attribute el an value)
          attributes;
        let content = List.concat_map (fun f -> f env) children in
        let attrs, kids = Eval.normalize_content content in
        List.iter
          (fun a ->
            match Dom.name a with
            | Some n ->
                Dom.set_attribute el n (Option.value ~default:"" (Dom.value a))
            | None -> ())
          attrs;
        List.iter (fun ch -> Dom.append_child ~parent:el ch) kids;
        [ I.Node el ]
  | C.C_computed_element (name_c, content_c) ->
      let fn = emit scope name_c and fc = emit scope content_c in
      fun env ->
        let name = Eval.qname_of_value env.ctx (I.singleton_atomic (fn env)) in
        let el = Dom.create_element name in
        let content = fc env in
        let attrs, kids = Eval.normalize_content content in
        List.iter
          (fun a ->
            match Dom.name a with
            | Some n ->
                Dom.set_attribute el n (Option.value ~default:"" (Dom.value a))
            | None -> ())
          attrs;
        List.iter (fun ch -> Dom.append_child ~parent:el ch) kids;
        [ I.Node el ]
  | C.C_computed_attribute (name_c, content_c) ->
      let fn = emit scope name_c and fc = emit scope content_c in
      fun env ->
        let name = Eval.qname_of_value env.ctx (I.singleton_atomic (fn env)) in
        let value = I.sequence_string (fc env) in
        [ I.Node (Dom.create_attribute name value) ]
  | C.C_computed_text a ->
      let fa = emit scope a in
      fun env -> [ I.Node (Dom.create_text (I.sequence_string (fa env))) ]
  | C.C_computed_comment a ->
      let fa = emit scope a in
      fun env -> [ I.Node (Dom.create_comment (I.sequence_string (fa env))) ]
  | C.C_computed_pi (name_c, content_c) ->
      let fn = emit scope name_c and fc = emit scope content_c in
      fun env ->
        let target = I.sequence_string (fn env) in
        [ I.Node (Dom.create_pi ~target (I.sequence_string (fc env))) ]
  | C.C_computed_document a ->
      let fa = emit scope a in
      fun env ->
        let doc = Dom.create_document () in
        let _, kids = Eval.normalize_content (fa env) in
        List.iter (fun ch -> Dom.append_child ~parent:doc ch) kids;
        [ I.Node doc ]
  | C.C_opaque ast ->
      incr stat_opaque;
      if !Obs.Metrics.enabled then Obs.Metrics.incr "xquery.compile.opaque";
      let rb = rebind_of scope in
      fun env -> Eval.eval (rb env) ast

(* effective boolean value of a compiled subexpression: natively
   streaming forms delegate to the interpreter's lazy cursors (same
   early exit, same pull counters); everything else uses the compiled
   closure — eval_seq would just materialise it anyway *)
and emit_ebv scope (c : C.t) : env -> bool =
  let f = emit scope c in
  if streams_natively c.C.ast then begin
    let rb = rebind_of scope in
    let ast = c.C.ast in
    fun env ->
      if Eval.streaming_enabled () then
        Xdm_seq.effective_boolean (Eval.eval_seq (rb env) ast)
      else I.effective_boolean (f env)
  end
  else fun env -> I.effective_boolean (f env)

(* the interpreter's top-level bounded-positional-take clause: when
   streaming, pull through eval_seq and stop at the bound *)
and with_bounded_take scope ast eager =
  if Focus_analysis.has_bounded_take ast && not (Ast.is_updating ast) then begin
    let rb = rebind_of scope in
    fun env ->
      if Eval.streaming_enabled () then
        Xdm_seq.to_list (Eval.eval_seq (rb env) ast)
      else eager env
  end
  else eager

(* predicate chains, replicating {!Eval.apply_predicates}: per stage
   the size is the stage input length, a numeric predicate value keeps
   the item at that position *)
and apply_preds env items pfs =
  List.fold_left
    (fun items pf ->
      let n = List.length items in
      List.filteri
        (fun i item ->
          let pos = i + 1 in
          let fenv =
            { env with ctx = D.with_focus env.ctx item ~position:pos ~size:n }
          in
          match pf fenv with
          | [ I.Atomic a ] when A.is_numeric a ->
              Eval.protect (fun () -> A.compare_value a (A.Integer pos) = 0)
          | v -> I.effective_boolean v)
        items)
    items pfs

(* ------------------------------------------------------------------ *)
(* programs                                                            *)

let compile_expr static ?(params = []) e =
  let core, size = Core_ir.lower static ~params e in
  if Core_ir.is_opaque_root core then None
  else
    let scope = List.mapi (fun i qn -> (qn, i)) params in
    let f = emit (List.rev scope) core in
    Some (f, size)

let compile_fn static (decl : Ast.function_decl) :
    ((int * int * int) * fn_impl) option =
  let plain_body =
    match (decl.Ast.kind, decl.Ast.body) with
    | Ast.F_sequential, Some (Ast.E_block _) -> None
    | _, Some (Ast.E_block [ Ast.S_expr e ]) -> Some e
    | _, Some (Ast.E_block _) -> None
    | _, body -> body
  in
  match plain_body with
  | None -> None
  | Some body -> (
      let pnames = List.map fst decl.Ast.params in
      match compile_expr static ~params:pnames body with
      | None -> None
      | Some (bodyf, size) ->
          let params = Array.of_list decl.Ast.params in
          let name = Qname.to_string decl.Ast.fname in
          let key = D.fn_key decl.Ast.fname ~arity:(Array.length params) in
          let impl ctx args =
            if ctx.D.depth > Eval.max_depth then
              err "XQDY0054" "maximum recursion depth exceeded in %s" name;
            let fctx = D.function_scope ctx in
            let frame = Array.init size (fun _ -> ref []) in
            List.iteri
              (fun i arg ->
                let pname, ptype = params.(i) in
                let arg =
                  match ptype with
                  | Some st ->
                      Seq_type.coerce ~what:("$" ^ Qname.to_string pname) st arg
                  | None -> arg
                in
                frame.(i) <- ref arg)
              args;
            let result =
              try bodyf { ctx = fctx; frame } with
              | Eval.Exit_with v -> v
              | Eval.Break_loop | Eval.Continue_loop ->
                  err "XSST0010" "break/continue outside of a while loop"
            in
            match decl.Ast.return_type with
            | Some st ->
                Seq_type.coerce
                  ~what:(Qname.to_string decl.Ast.fname ^ " result")
                  st result
            | None -> result
          in
          Some (key, impl))

let compile_prog static (prog : Ast.prog) : prog_code =
  incr stat_programs;
  if !Obs.Metrics.enabled then Obs.Metrics.incr "xquery.compile.programs";
  let fns =
    List.filter_map
      (function
        | Ast.P_function f -> (
            match compile_fn static f with
            | Some kf ->
                incr stat_fns;
                if !Obs.Metrics.enabled then
                  Obs.Metrics.incr "xquery.compile.fns";
                Some kf
            | None -> None)
        | _ -> None)
      prog.Ast.prolog
  in
  let body =
    match prog.Ast.body with
    | None -> None
    | Some e -> (
        match compile_expr static e with
        | None -> None
        | Some (f, size) ->
            Some
              (fun ctx ->
                f { ctx; frame = Array.init size (fun _ -> ref []) }))
  in
  { body; fns }
