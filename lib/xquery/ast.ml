(** Abstract syntax for XQuery 1.0 + Update Facility + Scripting
    Extension + Full-Text subset + the paper's browser extensions
    (events, async [behind], CSS styles — §4.3–4.5). QNames are fully
    resolved against the in-scope namespaces at parse time. *)

open Xmlb

type axis =
  | Child
  | Descendant
  | Attribute_axis
  | Self
  | Descendant_or_self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Parent
  | Ancestor
  | Ancestor_or_self

type kind_test =
  | Any_kind
  | Text_kind
  | Comment_kind
  | Pi_kind of string option
  | Element_kind of Qname.t option
  | Attribute_kind of Qname.t option
  | Document_kind

type node_test =
  | Name_test of Qname.t
  | Wildcard
  | Ns_wildcard of string  (** resolved namespace URI *)
  | Local_wildcard of string
  | Kind_test of kind_test

type occurrence = Occ_one | Occ_optional | Occ_star | Occ_plus

type item_type =
  | It_atomic of Xdm_atomic.atomic_type
  | It_kind of kind_test
  | It_item

type seq_type = St_empty | St of item_type * occurrence

type value_comp = Eq | Ne | Lt | Le | Gt | Ge
type node_comp = Is | Precedes | Follows
type arith = Add | Sub | Mul | Div | Idiv | Mod
type quantifier = Some_quant | Every_quant
type insert_position = Into | As_first_into | As_last_into | Before | After
type event_binding = Bind_at | Bind_behind

type ft_selection =
  | Ft_words of expr * ft_option list
  | Ft_and of ft_selection * ft_selection
  | Ft_or of ft_selection * ft_selection
  | Ft_not of ft_selection

and ft_option = Ft_stemming

and order_spec = {
  key : expr;
  descending : bool;
  empty_greatest : bool option;  (** None = implementation default *)
}

(* [for $lv in lsource, $rv in rsource where lkey OP rkey (and
   jwhere)? order? return jreturn], executed by hashing the right
   (build) side on its key and probing with the left side's key.
   [general] distinguishes existential [=] from singleton [eq]; both
   keys are variable-rooted step paths, so their atoms are always
   xs:untypedAtomic and compare as strings under either operator. *)
and hash_join = {
  jleft_var : Qname.t;
  jleft_source : expr;
  jleft_key : expr;  (* sees jleft_var *)
  jright_var : Qname.t;
  jright_source : expr;
  jright_key : expr;  (* sees jright_var *)
  jgeneral : bool;
  jwhere : expr option;  (* residual conjuncts; see both variables *)
  jorder : order_spec list;
  jreturn : expr;
}

and flwor_clause =
  | For_clause of {
      var : Qname.t;
      pos_var : Qname.t option;
      var_type : seq_type option;
      source : expr;
    }
  | Let_clause of { var : Qname.t; var_type : seq_type option; value : expr }

and typeswitch_case = {
  case_var : Qname.t option;
  case_type : seq_type;
  case_body : expr;
}

and direct_attr_part = A_text of string | A_enclosed of expr

and statement =
  | S_var_decl of Qname.t * seq_type option * expr option
  | S_assign of Qname.t * expr
  | S_while of expr * statement list
  | S_break
  | S_continue
  | S_exit_with of expr
  | S_expr of expr

and expr =
  | E_literal of Xdm_atomic.t
  | E_var of Qname.t
  | E_context_item
  | E_sequence of expr list  (** comma operator; [] = empty sequence [()] *)
  | E_range of expr * expr
  | E_flwor of {
      clauses : flwor_clause list;
      where : expr option;
      order : order_spec list;
      return : expr;
    }
  | E_hash_join of hash_join
      (** planner-introduced equi-join over a two-[for] FLWOR; never
          produced by the parser *)
  | E_quantified of quantifier * (Qname.t * seq_type option * expr) list * expr
  | E_typeswitch of expr * typeswitch_case list * (Qname.t option * expr)
  | E_if of expr * expr * expr
  | E_or of expr * expr
  | E_and of expr * expr
  | E_value_comp of value_comp * expr * expr
  | E_general_comp of value_comp * expr * expr
  | E_node_comp of node_comp * expr * expr
  | E_ftcontains of expr * ft_selection
  | E_arith of arith * expr * expr
  | E_unary_minus of expr
  | E_union of expr * expr
  | E_intersect of expr * expr
  | E_except of expr * expr
  | E_instance_of of expr * seq_type
  | E_treat_as of expr * seq_type
  | E_castable_as of expr * Xdm_atomic.atomic_type * bool  (** optional? *)
  | E_cast_as of expr * Xdm_atomic.atomic_type * bool
  | E_root  (** leading [/] : root of the context node *)
  | E_step of axis * node_test * expr list  (** axis step with predicates *)
  | E_path of expr * expr  (** [e1/e2] *)
  | E_filter of expr * expr list  (** primary expression with predicates *)
  | E_call of Qname.t * expr list
  | E_ordered of expr
  | E_unordered of expr
  (* Constructors *)
  | E_direct_element of {
      name : Qname.t;
      attributes : (Qname.t * direct_attr_part list) list;
      children : expr list;  (** text runs become E_literal (String) *)
    }
  | E_text_literal of string  (** literal text inside a direct constructor *)
  | E_enclosed of expr  (** [{e}] inside a constructor *)
  | E_computed_element of expr * expr
  | E_computed_attribute of expr * expr
  | E_computed_text of expr
  | E_computed_comment of expr
  | E_computed_pi of expr * expr
  | E_computed_document of expr
  (* Update Facility *)
  | E_insert of insert_position * expr * expr  (** source, target *)
  | E_delete of expr
  | E_replace of { value_of : bool; target : expr; source : expr }
  | E_rename of expr * expr
  | E_transform of (Qname.t * expr) list * expr * expr
      (** copy $v := e (, ...) modify e return e *)
  (* Scripting Extension *)
  | E_block of statement list
  (* Browser extensions (paper §4.3–4.5) *)
  | E_event_attach of {
      event : expr;
      binding : event_binding;
      target : expr;
      listener : Qname.t;
    }
  | E_event_detach of { event : expr; target : expr; listener : Qname.t }
  | E_event_trigger of { event : expr; target : expr }
  | E_set_style of { property : expr; target : expr; value : expr }
  | E_get_style of { property : expr; target : expr }

type function_kind = F_plain | F_updating | F_sequential

type function_decl = {
  fname : Qname.t;
  params : (Qname.t * seq_type option) list;
  return_type : seq_type option;
  body : expr option;  (** [None] = external *)
  kind : function_kind;
}

type prolog_decl =
  | P_namespace of string * string
  | P_default_element_ns of string
  | P_default_function_ns of string
  | P_boundary_space_preserve of bool
  | P_variable of Qname.t * seq_type option * expr option
  | P_function of function_decl
  | P_option of Qname.t * string
  | P_module_import of {
      prefix : string option;
      uri : string;
      locations : string list;
    }

type module_decl = { mod_prefix : string; mod_uri : string; mod_port : int option }

type prog = {
  library_module : module_decl option;
  prolog : prolog_decl list;
  body : expr option;  (** main modules have a body *)
}

(** Does evaluation of this expression (transitively, ignoring function
    bodies) contain updating constructs? Used by the optimizer to know
    which rewrites are safe. *)
let rec is_updating = function
  | E_insert _ | E_delete _ | E_replace _ | E_rename _ -> true
  | E_literal _ | E_var _ | E_context_item | E_root | E_text_literal _ -> false
  | E_step (_, _, ps) -> List.exists is_updating ps
  | E_sequence es -> List.exists is_updating es
  | E_range (a, b)
  | E_path (a, b)
  | E_or (a, b)
  | E_and (a, b)
  | E_value_comp (_, a, b)
  | E_general_comp (_, a, b)
  | E_node_comp (_, a, b)
  | E_arith (_, a, b)
  | E_union (a, b)
  | E_intersect (a, b)
  | E_except (a, b)
  | E_computed_element (a, b)
  | E_computed_attribute (a, b)
  | E_computed_pi (a, b) ->
      is_updating a || is_updating b
  | E_if (c, t, e) -> is_updating c || is_updating t || is_updating e
  | E_flwor { clauses; where; order; return } ->
      List.exists
        (function
          | For_clause { source; _ } -> is_updating source
          | Let_clause { value; _ } -> is_updating value)
        clauses
      || Option.fold ~none:false ~some:is_updating where
      || List.exists (fun o -> is_updating o.key) order
      || is_updating return
  | E_hash_join j ->
      is_updating j.jleft_source || is_updating j.jleft_key
      || is_updating j.jright_source || is_updating j.jright_key
      || Option.fold ~none:false ~some:is_updating j.jwhere
      || List.exists (fun o -> is_updating o.key) j.jorder
      || is_updating j.jreturn
  | E_quantified (_, binds, body) ->
      List.exists (fun (_, _, e) -> is_updating e) binds || is_updating body
  | E_typeswitch (e, cases, (_, dflt)) ->
      is_updating e
      || List.exists (fun c -> is_updating c.case_body) cases
      || is_updating dflt
  | E_ftcontains (e, _) -> is_updating e
  | E_unary_minus e
  | E_instance_of (e, _)
  | E_treat_as (e, _)
  | E_castable_as (e, _, _)
  | E_cast_as (e, _, _)
  | E_ordered e
  | E_unordered e
  | E_enclosed e
  | E_computed_text e
  | E_computed_comment e
  | E_computed_document e ->
      is_updating e
  | E_filter (e, ps) -> is_updating e || List.exists is_updating ps
  | E_call (_, args) -> List.exists is_updating args
  | E_direct_element { attributes; children; _ } ->
      List.exists
        (fun (_, parts) ->
          List.exists
            (function A_text _ -> false | A_enclosed e -> is_updating e)
            parts)
        attributes
      || List.exists is_updating children
  | E_transform (_, modify, ret) ->
      (* the modify clause updates only the copies: not updating itself *)
      ignore modify;
      is_updating ret
  | E_block _ -> true
  | E_event_attach _ | E_event_detach _ | E_event_trigger _ | E_set_style _ ->
      true
  | E_get_style _ -> false
