open Xmlb
module A = Xdm_atomic
module I = Xdm_item

type impl = Call_ctx.t -> I.sequence list -> I.sequence

type entry = { min_arity : int; max_arity : int; impl : impl }

(* Keyed by (uri sym, local sym): registration interns each name once,
   and lookups use the call site's pre-interned Qname symbols — the
   old per-call "{uri}local" Clark-string allocation is gone. *)
let table : (int * int, entry list) Hashtbl.t = Hashtbl.create 128
let catalog_entries : (string * string * int * int) list ref = ref []

let register ~uri ~local ~min_arity ~max_arity impl =
  let key = ((Sym.intern uri :> int), (Sym.intern local :> int)) in
  let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
  Hashtbl.replace table key ({ min_arity; max_arity; impl } :: existing);
  catalog_entries := (uri, local, min_arity, max_arity) :: !catalog_entries

let find qn ~arity =
  match qn.Qname.uri with
  | None -> None
  | Some _ ->
      let key = (qn.Qname.usym, (qn.Qname.lsym :> int)) in
      Option.bind (Hashtbl.find_opt table key) (fun entries ->
          List.find_opt
            (fun e ->
              arity >= e.min_arity && (e.max_arity < 0 || arity <= e.max_arity))
            entries)
      |> Option.map (fun e -> e.impl)

let catalog () = !catalog_entries

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let err code fmt = Xq_error.raise_error code fmt
let arg n args = List.nth args n
let arg_opt n args = if List.length args > n then Some (List.nth args n) else None

(* zero-or-one string; empty sequence -> None *)
let opt_string seq = I.opt_string seq

let req_string seq = Option.value ~default:"" (opt_string seq)

let opt_num seq =
  match I.opt_atomic seq with
  | None -> None
  | Some a -> (
      match a with
      | A.Integer _ | A.Decimal _ | A.Double _ -> Some a
      | A.Untyped s -> Some (A.cast ~target:A.T_double (A.Untyped s))
      | a ->
          err Xq_error.type_error_code "expected a number, got xs:%s"
            (A.type_name (A.type_of a)))

let num_to_float = function
  | A.Integer i -> float_of_int i
  | A.Decimal f | A.Double f -> f
  | _ -> assert false

let context_node cctx =
  match cctx.Call_ctx.context_item with
  | Some (I.Node n) -> n
  | Some (I.Atomic _) ->
      err Xq_error.type_error_code "the context item is not a node"
  | None -> err "XPDY0002" "the context item is undefined"

let item_or_context cctx args =
  match args with
  | [] -> (
      match cctx.Call_ctx.context_item with
      | Some it -> [ it ]
      | None -> err "XPDY0002" "the context item is undefined")
  | [ seq ] -> seq
  | _ -> assert false

let node_arg_or_context cctx args =
  match item_or_context cctx args with
  | [] -> None
  | [ I.Node n ] -> Some n
  | [ I.Atomic _ ] ->
      err Xq_error.type_error_code "expected a node argument"
  | _ -> err Xq_error.type_error_code "expected at most one node"

let float1 f = [ I.Atomic (A.Double f) ]
let bool1 b = [ I.Atomic (A.Boolean b) ]
let int1 i = [ I.Atomic (A.Integer i) ]
let str1 s = [ I.Atomic (A.String s) ]

(* ---- code-point helpers ----

   fn:string-length counts code points, so every positional string
   function must too (F&O §7.4), or substring(s, string-length(s))
   stops agreeing with itself on multi-byte input. *)

(* Lenient decode: malformed UTF-8 degrades to per-byte code points
   (a Latin-1 reading) instead of raising, so a corrupted string — we
   inject those deliberately via Corrupt_body faults — can never abort
   evaluation from inside a string builtin. *)
let code_points_lenient s =
  try Xml_escape.code_points s
  with Failure _ -> List.init (String.length s) (fun i -> Char.code s.[i])

let string_of_code_points cps =
  let buf = Buffer.create 16 in
  List.iter (fun cp -> Buffer.add_string buf (Xml_escape.utf8_of_code_point cp)) cps;
  Buffer.contents buf

(* One-to-one case mappings for ASCII and the Latin-1 supplement:
   U+00C0–U+00DE ↔ U+00E0–U+00FE differ by 0x20, except U+00D7 (×) and
   U+00F7 (÷) which are caseless; U+00FF (ÿ) uppercases outside the
   block to U+0178 (Ÿ). One-to-many mappings (ß → SS) and the rest of
   Unicode are out of scope — see DESIGN.md. *)
let upper_cp cp =
  if cp >= 0x61 && cp <= 0x7A then cp - 0x20
  else if cp >= 0xE0 && cp <= 0xFE && cp <> 0xF7 then cp - 0x20
  else if cp = 0xFF then 0x178
  else cp

let lower_cp cp =
  if cp >= 0x41 && cp <= 0x5A then cp + 0x20
  else if cp >= 0xC0 && cp <= 0xDE && cp <> 0xD7 then cp + 0x20
  else if cp = 0x178 then 0xFF
  else cp

(* regex: translate XML Schema regex-isms we care about to Str syntax *)
let compile_regex pattern flags =
  let case_insensitive = String.contains flags 'i' in
  (* Str has no (?i); lowercase both sides when 'i' *)
  let translate p =
    (* convert \d \w \s classes to Str-compatible ranges *)
    let buf = Buffer.create (String.length p) in
    let n = String.length p in
    let rec go i =
      if i >= n then ()
      else if p.[i] = '\\' && i + 1 < n then begin
        (match p.[i + 1] with
        | 'd' -> Buffer.add_string buf "[0-9]"
        | 'D' -> Buffer.add_string buf "[^0-9]"
        | 'w' -> Buffer.add_string buf "[A-Za-z0-9_]"
        | 'W' -> Buffer.add_string buf "[^A-Za-z0-9_]"
        | 's' -> Buffer.add_string buf "[ \t\n\r]"
        | 'S' -> Buffer.add_string buf "[^ \t\n\r]"
        | c ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        (match p.[i] with
        (* Str uses \( \) \| \{ \} ; XPath uses ( ) | { } *)
        | '(' -> Buffer.add_string buf "\\("
        | ')' -> Buffer.add_string buf "\\)"
        | '|' -> Buffer.add_string buf "\\|"
        | '{' -> Buffer.add_string buf "\\{"
        | '}' -> Buffer.add_string buf "\\}"
        | c -> Buffer.add_char buf c);
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf
  in
  let p = translate pattern in
  let p = if case_insensitive then String.lowercase_ascii p else p in
  (Str.regexp p, case_insensitive)

let regex_input s case_insensitive =
  if case_insensitive then String.lowercase_ascii s else s

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)

let fn ~local ?(min_arity = 1) ?max_arity impl =
  let max_arity = Option.value ~default:min_arity max_arity in
  register ~uri:Qname.Ns.fn ~local ~min_arity ~max_arity impl

let () =
  (* ---------- accessors & general ---------- *)
  fn ~local:"string" ~min_arity:0 ~max_arity:1 (fun cctx args ->
      match item_or_context cctx args with
      | [] -> str1 ""
      | [ it ] -> str1 (I.item_string it)
      | _ -> err Xq_error.type_error_code "fn:string expects at most one item");
  fn ~local:"data" (fun _ args ->
      List.map (fun a -> I.Atomic a) (I.atomize (arg 0 args)));
  fn ~local:"node-name" (fun _ args ->
      match arg 0 args with
      | [] -> []
      | [ I.Node n ] -> (
          (* scoped name read, same rationale as fn:name below *)
          (if Footprint.recording () then
             match (Dom.kind n, Dom.name n) with
             | Dom.Element, Some q ->
                 Footprint.reading_name ~root:(Dom.id (Dom.root n))
                   ~scope:(Dom.id n) q.Qname.lsym
             | Dom.Attribute, Some q ->
                 Footprint.reading_key ~root:(Dom.id (Dom.root n))
                   ~scope:(Dom.id n) ~local:q.Qname.lsym
                   (Option.value ~default:"" (Dom.value n))
             | _ -> ());
          match Dom.name n with
          | Some qn -> [ I.Atomic (A.Qname_v qn) ]
          | None -> [])
      | _ -> err Xq_error.type_error_code "fn:node-name expects a node");
  fn ~local:"number" ~min_arity:0 ~max_arity:1 (fun cctx args ->
      match item_or_context cctx args with
      | [] -> float1 Float.nan
      | [ it ] -> float1 (I.item_number it)
      | _ -> float1 Float.nan);
  fn ~local:"trace" ~min_arity:2 (fun cctx args ->
      let v = arg 0 args in
      cctx.Call_ctx.trace (req_string (arg 1 args) ^ " " ^ I.to_display_string v);
      v);
  fn ~local:"error" ~min_arity:0 ~max_arity:3 (fun _ args ->
      let code =
        match arg_opt 0 args with
        | Some [ I.Atomic (A.Qname_v q) ] -> q.Qname.local
        | Some s when s <> [] -> I.sequence_string s
        | _ -> "FOER0000"
      in
      let desc =
        match arg_opt 1 args with Some s -> req_string s | None -> "error raised"
      in
      err code "%s" desc);

  (* ---------- numeric ---------- *)
  let unary_numeric local f =
    fn ~local (fun _ args ->
        match opt_num (arg 0 args) with
        | None -> []
        | Some (A.Integer i) -> int1 (f (float_of_int i) |> int_of_float)
        | Some a -> (
            match a with
            | A.Decimal x -> [ I.Atomic (A.Decimal (f x)) ]
            | A.Double x -> [ I.Atomic (A.Double (f x)) ]
            | _ -> assert false))
  in
  unary_numeric "abs" Float.abs;
  unary_numeric "ceiling" Float.ceil;
  unary_numeric "floor" Float.floor;
  unary_numeric "round" (fun x -> Float.floor (x +. 0.5));
  fn ~local:"round-half-to-even" ~min_arity:1 ~max_arity:2 (fun _ args ->
      match opt_num (arg 0 args) with
      | None -> []
      | Some a ->
          let precision =
            match arg_opt 1 args with
            | Some s -> (
                match I.opt_atomic s with
                | Some (A.Integer i) -> i
                | _ -> 0)
            | None -> 0
          in
          let scale = 10. ** float_of_int precision in
          let x = num_to_float a *. scale in
          let fl = Float.floor x and ce = Float.ceil x in
          let rounded =
            if x -. fl < ce -. x then fl
            else if ce -. x < x -. fl then ce
            else if Float.rem fl 2. = 0. then fl
            else ce
          in
          let r = rounded /. scale in
          (match a with
          | A.Integer _ -> int1 (int_of_float r)
          | A.Decimal _ -> [ I.Atomic (A.Decimal r) ]
          | _ -> float1 r));

  (* ---------- strings ---------- *)
  fn ~local:"concat" ~min_arity:2 ~max_arity:(-1) (fun _ args ->
      str1 (String.concat "" (List.map req_string args)));
  fn ~local:"string-join" ~min_arity:2 (fun _ args ->
      let sep = req_string (arg 1 args) in
      str1 (String.concat sep (List.map I.item_string (arg 0 args))));
  fn ~local:"substring" ~min_arity:2 ~max_arity:3 (fun _ args ->
      let s = req_string (arg 0 args) in
      let start = I.item_number (I.Atomic (I.singleton_atomic (arg 1 args))) in
      let len =
        match arg_opt 2 args with
        | Some l -> I.item_number (I.Atomic (I.singleton_atomic l))
        | None -> Float.infinity
      in
      (* XPath 1-based rounding semantics; positions are measured in
         code points, not bytes, to agree with fn:string-length *)
      let from = Float.floor (start +. 0.5) in
      let upto =
        if len = Float.infinity then Float.infinity
        else from +. Float.floor (len +. 0.5)
      in
      let buf = Buffer.create (String.length s) in
      List.iteri
        (fun i cp ->
          let fi = float_of_int (i + 1) in
          if fi >= from && fi < upto then
            Buffer.add_string buf (Xml_escape.utf8_of_code_point cp))
        (code_points_lenient s);
      str1 (Buffer.contents buf));
  fn ~local:"string-length" ~min_arity:0 ~max_arity:1 (fun cctx args ->
      let s =
        match item_or_context cctx args with
        | [] -> ""
        | [ it ] -> I.item_string it
        | _ -> err Xq_error.type_error_code "string-length expects one item"
      in
      int1 (List.length (Xml_escape.code_points s)));
  fn ~local:"normalize-space" ~min_arity:0 ~max_arity:1 (fun cctx args ->
      let s =
        match item_or_context cctx args with
        | [] -> ""
        | [ it ] -> I.item_string it
        | _ -> err Xq_error.type_error_code "normalize-space expects one item"
      in
      let words =
        String.split_on_char ' '
          (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
        |> List.filter (fun w -> w <> "")
      in
      str1 (String.concat " " words));
  fn ~local:"upper-case" (fun _ args ->
      str1
        (string_of_code_points
           (List.map upper_cp (code_points_lenient (req_string (arg 0 args))))));
  fn ~local:"lower-case" (fun _ args ->
      str1
        (string_of_code_points
           (List.map lower_cp (code_points_lenient (req_string (arg 0 args))))));
  fn ~local:"translate" ~min_arity:3 (fun _ args ->
      let s = req_string (arg 0 args) in
      let from = code_points_lenient (req_string (arg 1 args)) in
      let into = Array.of_list (code_points_lenient (req_string (arg 2 args))) in
      (* per-code-point mapping: the first occurrence in $mapString
         wins, and a map entry past the end of $transString deletes *)
      let index_of cp =
        let rec go i = function
          | [] -> None
          | c :: rest -> if c = cp then Some i else go (i + 1) rest
        in
        go 0 from
      in
      let buf = Buffer.create (String.length s) in
      List.iter
        (fun cp ->
          match index_of cp with
          | None -> Buffer.add_string buf (Xml_escape.utf8_of_code_point cp)
          | Some i ->
              if i < Array.length into then
                Buffer.add_string buf (Xml_escape.utf8_of_code_point into.(i)))
        (code_points_lenient s);
      str1 (Buffer.contents buf));
  (* contains / starts-with / ends-with / substring-before/-after scan
     bytes, which is sound for UTF-8: the encoding is self-synchronizing
     (lead and continuation bytes occupy disjoint ranges), so a valid
     needle can only match at a code-point boundary of a valid haystack,
     and the byte offsets sliced at below are therefore boundaries too.
     Only the *positional* functions (substring, translate, string-length)
     need explicit code-point arithmetic. *)
  fn ~local:"contains" ~min_arity:2 (fun _ args ->
      let s = req_string (arg 0 args) and sub = req_string (arg 1 args) in
      let n = String.length s and m = String.length sub in
      let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
      bool1 (m = 0 || scan 0));
  fn ~local:"starts-with" ~min_arity:2 (fun _ args ->
      let s = req_string (arg 0 args) and p = req_string (arg 1 args) in
      bool1 (String.length p <= String.length s && String.sub s 0 (String.length p) = p));
  fn ~local:"ends-with" ~min_arity:2 (fun _ args ->
      let s = req_string (arg 0 args) and p = req_string (arg 1 args) in
      let n = String.length s and m = String.length p in
      bool1 (m <= n && String.sub s (n - m) m = p));
  fn ~local:"substring-before" ~min_arity:2 (fun _ args ->
      let s = req_string (arg 0 args) and sub = req_string (arg 1 args) in
      let n = String.length s and m = String.length sub in
      let rec scan i =
        if i + m > n then None
        else if String.sub s i m = sub then Some i
        else scan (i + 1)
      in
      match (sub, scan 0) with
      | "", _ | _, None -> str1 ""
      | _, Some i -> str1 (String.sub s 0 i));
  fn ~local:"substring-after" ~min_arity:2 (fun _ args ->
      let s = req_string (arg 0 args) and sub = req_string (arg 1 args) in
      let n = String.length s and m = String.length sub in
      let rec scan i =
        if i + m > n then None
        else if String.sub s i m = sub then Some i
        else scan (i + 1)
      in
      match (sub, scan 0) with
      | "", _ -> str1 s
      | _, None -> str1 ""
      | _, Some i -> str1 (String.sub s (i + m) (n - i - m)));
  fn ~local:"compare" ~min_arity:2 ~max_arity:3 (fun _ args ->
      match (opt_string (arg 0 args), opt_string (arg 1 args)) with
      | Some a, Some b -> int1 (compare (String.compare a b) 0)
      | _ -> []);
  fn ~local:"matches" ~min_arity:2 ~max_arity:3 (fun _ args ->
      let s = req_string (arg 0 args) and p = req_string (arg 1 args) in
      let flags = match arg_opt 2 args with Some f -> req_string f | None -> "" in
      let re, ci = compile_regex p flags in
      bool1
        (try
           ignore (Str.search_forward re (regex_input s ci) 0);
           true
         with Not_found -> false));
  fn ~local:"replace" ~min_arity:3 ~max_arity:4 (fun _ args ->
      let s = req_string (arg 0 args)
      and p = req_string (arg 1 args)
      and r = req_string (arg 2 args) in
      let flags = match arg_opt 3 args with Some f -> req_string f | None -> "" in
      let re, ci = compile_regex p flags in
      (* Str replacement uses \1; XPath uses $1 — translate *)
      let r = Str.global_replace (Str.regexp "\\$\\([0-9]\\)") "\\\\\\1" r in
      str1 (Str.global_replace re r (regex_input s ci)));
  fn ~local:"tokenize" ~min_arity:2 ~max_arity:3 (fun _ args ->
      let s = req_string (arg 0 args) and p = req_string (arg 1 args) in
      let flags = match arg_opt 2 args with Some f -> req_string f | None -> "" in
      let re, ci = compile_regex p flags in
      if s = "" then []
      else
        Str.split_delim re (regex_input s ci)
        |> List.map (fun part -> I.Atomic (A.String part)));
  fn ~local:"codepoints-to-string" (fun _ args ->
      let cps =
        List.map
          (fun it ->
            match I.item_atomic it with
            | A.Integer i -> i
            | a -> int_of_string (A.to_string a))
          (arg 0 args)
      in
      str1 (String.concat "" (List.map Xml_escape.utf8_of_code_point cps)));
  fn ~local:"string-to-codepoints" (fun _ args ->
      match opt_string (arg 0 args) with
      | None | Some "" -> []
      | Some s -> List.map (fun cp -> I.Atomic (A.Integer cp)) (Xml_escape.code_points s));
  fn ~local:"encode-for-uri" (fun _ args ->
      let s = req_string (arg 0 args) in
      let buf = Buffer.create (String.length s) in
      String.iter
        (fun c ->
          match c with
          | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
              Buffer.add_char buf c
          | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
        s;
      str1 (Buffer.contents buf));

  (* ---------- booleans ---------- *)
  fn ~local:"true" ~min_arity:0 ~max_arity:0 (fun _ _ -> bool1 true);
  fn ~local:"false" ~min_arity:0 ~max_arity:0 (fun _ _ -> bool1 false);
  fn ~local:"not" (fun _ args -> bool1 (not (I.effective_boolean (arg 0 args))));
  fn ~local:"boolean" (fun _ args -> bool1 (I.effective_boolean (arg 0 args)));

  (* ---------- sequences ---------- *)
  fn ~local:"empty" (fun _ args -> bool1 (arg 0 args = []));
  fn ~local:"exists" (fun _ args -> bool1 (arg 0 args <> []));
  fn ~local:"count" (fun _ args -> int1 (List.length (arg 0 args)));
  fn ~local:"head" (fun _ args ->
      match arg 0 args with [] -> [] | x :: _ -> [ x ]);
  fn ~local:"tail" (fun _ args ->
      match arg 0 args with [] -> [] | _ :: rest -> rest);
  fn ~local:"reverse" (fun _ args -> List.rev (arg 0 args));
  fn ~local:"insert-before" ~min_arity:3 (fun _ args ->
      let target = arg 0 args in
      let pos =
        match I.singleton_atomic (arg 1 args) with
        | A.Integer i -> max 1 i
        | _ -> err Xq_error.type_error_code "insert-before position must be an integer"
      in
      let inserts = arg 2 args in
      let rec go i = function
        | rest when i = pos -> inserts @ rest
        | [] -> inserts
        | x :: rest -> x :: go (i + 1) rest
      in
      go 1 target);
  fn ~local:"remove" ~min_arity:2 (fun _ args ->
      let pos =
        match I.singleton_atomic (arg 1 args) with
        | A.Integer i -> i
        | _ -> err Xq_error.type_error_code "remove position must be an integer"
      in
      List.filteri (fun i _ -> i + 1 <> pos) (arg 0 args));
  fn ~local:"subsequence" ~min_arity:2 ~max_arity:3 (fun _ args ->
      let seq = arg 0 args in
      let start = I.item_number (I.Atomic (I.singleton_atomic (arg 1 args))) in
      let len =
        match arg_opt 2 args with
        | Some l -> I.item_number (I.Atomic (I.singleton_atomic l))
        | None -> Float.infinity
      in
      let from = Float.floor (start +. 0.5) in
      let upto = if len = Float.infinity then Float.infinity else from +. Float.floor (len +. 0.5) in
      List.filteri
        (fun i _ ->
          let fi = float_of_int (i + 1) in
          fi >= from && fi < upto)
        seq);
  fn ~local:"distinct-values" ~min_arity:1 ~max_arity:2 (fun _ args ->
      (* Hashtable dedup keyed so that [A.same_key a b] implies
         [dv_key a = dv_key b]. same_key partitions values into
         comparison categories — numerics (compared after promotion,
         NaN = NaN), untyped/string/anyURI (compared as strings),
         booleans, QNames, per-constructor date/times, durations —
         with cross-category pairs incomparable, hence distinct.
         Key collisions (huge ints beyond float precision, the coarse
         per-family date/duration buckets) are resolved by a same_key
         scan within the bucket, so semantics are unchanged — only the
         quadratic [List.exists] over all seen values is gone. *)
      let dv_key (a : A.t) =
        match a with
        | A.Integer i ->
            (* distinct big ints can collide on the same float key;
               the bucket's same_key scan (exact Int.compare) resolves *)
            "N:" ^ string_of_float (float_of_int i)
        | A.Decimal f | A.Double f ->
            if Float.is_nan f then "N:nan" else "N:" ^ string_of_float f
        | A.Untyped s | A.String s | A.Any_uri s -> "S:" ^ s
        | A.Boolean b -> if b then "B:1" else "B:0"
        | A.Qname_v q ->
            (* symbol ids are a bijection of (uri, local), so keying by
               them groups exactly like the Clark string at a fraction
               of the allocation *)
            Printf.sprintf "Q:%d:%d" q.Qname.usym (q.Qname.lsym :> int)
        | A.Date _ -> "D:date"
        | A.Time _ -> "D:time"
        | A.Date_time _ -> "D:date-time"
        | A.Duration _ | A.Year_month_duration _ | A.Day_time_duration _ ->
            "DUR"
      in
      let atoms = I.atomize (arg 0 args) in
      let seen : (string, A.t list) Hashtbl.t = Hashtbl.create 64 in
      let out =
        List.filter
          (fun a ->
            let k = dv_key a in
            let bucket =
              Option.value ~default:[] (Hashtbl.find_opt seen k)
            in
            if List.exists (fun b -> A.same_key a b) bucket then false
            else begin
              Hashtbl.replace seen k (a :: bucket);
              true
            end)
          atoms
      in
      List.map (fun a -> I.Atomic a) out);
  fn ~local:"index-of" ~min_arity:2 ~max_arity:3 (fun _ args ->
      (* 1-based positions of the items matching the search value *)
      let atoms = I.atomize (arg 0 args) in
      let target = I.singleton_atomic (arg 1 args) in
      let _, hits =
        List.fold_left
          (fun (i, acc) a ->
            if A.same_key a target then (i + 1, I.Atomic (A.Integer i) :: acc)
            else (i + 1, acc))
          (1, []) atoms
      in
      List.rev hits);
  fn ~local:"deep-equal" ~min_arity:2 ~max_arity:3 (fun _ args ->
      let rec node_eq a b =
        Dom.kind a = Dom.kind b
        && Option.equal Qname.equal (Dom.name a) (Dom.name b)
        && (match Dom.kind a with
           | Dom.Element ->
               let attrs n =
                 Dom.attributes n
                 |> List.filter_map (fun x ->
                        match (Dom.name x, Dom.value x) with
                        | Some nm, Some v -> Some (Qname.to_clark nm, v)
                        | _ -> None)
                 |> List.sort compare
               in
               attrs a = attrs b
               && List.length (Dom.children a) = List.length (Dom.children b)
               && List.for_all2 node_eq (Dom.children a) (Dom.children b)
           | Dom.Document ->
               List.length (Dom.children a) = List.length (Dom.children b)
               && List.for_all2 node_eq (Dom.children a) (Dom.children b)
           | _ -> Dom.value a = Dom.value b)
      in
      let item_eq x y =
        match (x, y) with
        | I.Atomic a, I.Atomic b -> A.same_key a b
        | I.Node a, I.Node b -> node_eq a b
        | _ -> false
      in
      let a = arg 0 args and b = arg 1 args in
      bool1 (List.length a = List.length b && List.for_all2 item_eq a b));
  fn ~local:"zero-or-one" (fun _ args ->
      match arg 0 args with
      | [] | [ _ ] -> arg 0 args
      | _ -> err "FORG0003" "zero-or-one called with more than one item");
  fn ~local:"one-or-more" (fun _ args ->
      match arg 0 args with
      | [] -> err "FORG0004" "one-or-more called with an empty sequence"
      | s -> s);
  fn ~local:"exactly-one" (fun _ args ->
      match arg 0 args with
      | [ _ ] -> arg 0 args
      | _ -> err "FORG0005" "exactly-one requires exactly one item");
  fn ~local:"unordered" (fun _ args -> arg 0 args);

  (* ---------- aggregates ---------- *)
  fn ~local:"sum" ~min_arity:1 ~max_arity:2 (fun _ args ->
      let atoms = I.atomize (arg 0 args) in
      match atoms with
      | [] -> (
          match arg_opt 1 args with
          | Some z -> z
          | None -> int1 0)
      | first :: rest ->
          [ I.Atomic (List.fold_left A.add first rest) ]);
  fn ~local:"avg" (fun _ args ->
      match I.atomize (arg 0 args) with
      | [] -> []
      | first :: rest as all ->
          let total = List.fold_left A.add first rest in
          [ I.Atomic (A.divide total (A.Integer (List.length all))) ]);
  let extremum local better =
    fn ~local ~min_arity:1 ~max_arity:2 (fun _ args ->
        match I.atomize (arg 0 args) with
        | [] -> []
        | first :: rest ->
            let promote a =
              match a with A.Untyped s -> A.cast ~target:A.T_double (A.Untyped s) | a -> a
            in
            let best =
              List.fold_left
                (fun acc a ->
                  let a = promote a in
                  if better (A.compare_value a acc) then a else acc)
                (promote first) rest
            in
            [ I.Atomic best ])
  in
  extremum "max" (fun c -> c > 0);
  extremum "min" (fun c -> c < 0);

  (* ---------- nodes ---------- *)
  (* A name read is invisible to the navigation-step recording (renaming
     a node changes fn:name without touching any probed index key), so
     record it here, scoped to the node itself: rename notifies on the
     renamed node, whose write chain therefore contains this scope. *)
  let record_name_read n =
    if Footprint.recording () then begin
      let root = Dom.id (Dom.root n) in
      match (Dom.kind n, Dom.name n) with
      | Dom.Element, Some q ->
          Footprint.reading_name ~root ~scope:(Dom.id n) q.Qname.lsym
      | Dom.Attribute, Some q ->
          Footprint.reading_key ~root ~scope:(Dom.id n) ~local:q.Qname.lsym
            (Option.value ~default:"" (Dom.value n))
      | _ -> ()
    end
  in
  let name_fn local extract =
    fn ~local ~min_arity:0 ~max_arity:1 (fun cctx args ->
        match
          match args with
          | [] -> Some (context_node cctx)
          | _ -> node_arg_or_context cctx args
        with
        | None -> str1 ""
        | Some n ->
            record_name_read n;
            str1 (extract n))
  in
  name_fn "name" (fun n ->
      match Dom.name n with Some q -> Qname.to_string q | None -> "");
  name_fn "local-name" (fun n ->
      match Dom.name n with Some q -> q.Qname.local | None -> "");
  name_fn "namespace-uri" (fun n ->
      match Dom.name n with
      | Some { Qname.uri = Some u; _ } -> u
      | _ -> "");
  fn ~local:"root" ~min_arity:0 ~max_arity:1 (fun cctx args ->
      match
        match args with [] -> Some (context_node cctx) | _ -> node_arg_or_context cctx args
      with
      | None -> []
      | Some n -> [ I.Node (Dom.root n) ]);
  (* XPDY0002: position() and last() are errors when the focus is
     undefined (the call context then carries no context item) *)
  fn ~local:"position" ~min_arity:0 ~max_arity:0 (fun cctx _ ->
      match cctx.Call_ctx.context_item with
      | None -> err "XPDY0002" "fn:position: the context item is undefined"
      | Some _ -> int1 cctx.Call_ctx.position);
  fn ~local:"last" ~min_arity:0 ~max_arity:0 (fun cctx _ ->
      match cctx.Call_ctx.context_item with
      | None -> err "XPDY0002" "fn:last: the context item is undefined"
      | Some _ -> int1 cctx.Call_ctx.size);
  fn ~local:"id" ~min_arity:1 ~max_arity:2 (fun cctx args ->
      let root =
        match arg_opt 1 args with
        | Some s -> Dom.root (I.singleton_node s)
        | None -> Dom.root (context_node cctx)
      in
      let ids =
        List.concat_map
          (fun it -> String.split_on_char ' ' (I.item_string it))
          (arg 0 args)
        |> List.filter (fun s -> s <> "")
      in
      List.filter_map (fun idv -> Dom.get_element_by_id root idv) ids
      |> List.map (fun n -> I.Node n));

  (* ---------- QNames ---------- *)
  fn ~local:"QName" ~min_arity:2 (fun _ args ->
      let uri = opt_string (arg 0 args) in
      let name = req_string (arg 1 args) in
      let qn = Qname.of_string name in
      [ I.Atomic (A.Qname_v (Qname.with_uri qn uri)) ]);
  fn ~local:"local-name-from-QName" (fun _ args ->
      match I.opt_atomic (arg 0 args) with
      | None -> []
      | Some (A.Qname_v q) -> str1 q.Qname.local
      | Some _ -> err Xq_error.type_error_code "expected an xs:QName");
  fn ~local:"namespace-uri-from-QName" (fun _ args ->
      match I.opt_atomic (arg 0 args) with
      | None -> []
      | Some (A.Qname_v q) -> str1 (Option.value ~default:"" q.Qname.uri)
      | Some _ -> err Xq_error.type_error_code "expected an xs:QName");

  fn ~local:"prefix-from-QName" (fun _ args ->
      match I.opt_atomic (arg 0 args) with
      | None -> []
      | Some (A.Qname_v { Qname.prefix = Some p; _ }) -> str1 p
      | Some (A.Qname_v _) -> []
      | Some _ -> err Xq_error.type_error_code "expected an xs:QName");
  fn ~local:"resolve-uri" ~min_arity:1 ~max_arity:2 (fun _ args ->
      match opt_string (arg 0 args) with
      | None -> []
      | Some relative ->
          let base =
            match arg_opt 1 args with Some b -> req_string b | None -> ""
          in
          let absolute =
            if
              String.length relative >= 7
              && (String.sub relative 0 7 = "http://"
                 || (String.length relative >= 8 && String.sub relative 0 8 = "https://"))
            then relative
            else if base = "" then relative
            else if String.length relative > 0 && relative.[0] = '/' then
              (* authority-relative *)
              match
                String.index_from_opt base
                  (min (String.length base - 1) 8)
                  '/'
              with
              | Some i -> String.sub base 0 i ^ relative
              | None -> base ^ relative
            else begin
              (* path-relative: resolve against the base's directory *)
              match String.rindex_opt base '/' with
              | Some i -> String.sub base 0 (i + 1) ^ relative
              | None -> base ^ "/" ^ relative
            end
          in
          [ I.Atomic (A.Any_uri absolute) ]);
  fn ~local:"base-uri" ~min_arity:0 ~max_arity:1 (fun cctx args ->
      match
        match args with
        | [] -> Some (context_node cctx)
        | _ -> node_arg_or_context cctx args
      with
      | None -> []
      | Some n -> (
          match Dom.document_uri (Dom.root n) with
          | Some u -> [ I.Atomic (A.Any_uri u) ]
          | None -> []));
  fn ~local:"document-uri" (fun _ args ->
      match arg 0 args with
      | [] -> []
      | [ I.Node n ] -> (
          match Dom.document_uri n with
          | Some u -> [ I.Atomic (A.Any_uri u) ]
          | None -> [])
      | _ -> err Xq_error.type_error_code "fn:document-uri expects a node");
  fn ~local:"lang" ~min_arity:1 ~max_arity:2 (fun cctx args ->
      let node =
        match arg_opt 1 args with
        | Some s -> I.singleton_node s
        | None -> context_node cctx
      in
      let wanted = String.lowercase_ascii (req_string (arg 0 args)) in
      let rec find n =
        match Dom.attribute n (Qname.make ~uri:Qname.Ns.xml ~prefix:"xml" "lang") with
        | Some v ->
            let v = String.lowercase_ascii v in
            v = wanted
            || String.length v > String.length wanted
               && String.sub v 0 (String.length wanted) = wanted
               && v.[String.length wanted] = '-'
        | None -> (
            match Dom.parent n with Some p -> find p | None -> false)
      in
      bool1 (find node));
  fn ~local:"nilled" (fun _ args ->
      match arg 0 args with
      | [ I.Node n ] when Dom.kind n = Dom.Element -> bool1 false
      | _ -> []);

  (* ---------- dates & times ---------- *)
  fn ~local:"current-dateTime" ~min_arity:0 ~max_arity:0 (fun cctx _ ->
      [ I.Atomic (A.Date_time (cctx.Call_ctx.now ())) ]);
  fn ~local:"current-date" ~min_arity:0 ~max_arity:0 (fun cctx _ ->
      let t = cctx.Call_ctx.now () in
      [ I.Atomic (A.Date { t with Xdm_datetime.hour = 0; minute = 0; second = 0. }) ]);
  fn ~local:"current-time" ~min_arity:0 ~max_arity:0 (fun cctx _ ->
      let t = cctx.Call_ctx.now () in
      [ I.Atomic (A.Time t) ]);
  let dt_component local target_types extract =
    fn ~local (fun _ args ->
        match I.opt_atomic (arg 0 args) with
        | None -> []
        | Some a ->
            let ok = List.mem (A.type_of a) target_types in
            if not ok then
              err Xq_error.type_error_code "%s applied to xs:%s" local
                (A.type_name (A.type_of a))
            else extract a)
  in
  let date_like = [ A.T_date; A.T_date_time ] in
  let time_like = [ A.T_time; A.T_date_time ] in
  let dur_like = [ A.T_duration; A.T_year_month_duration; A.T_day_time_duration ] in
  let dtv = function
    | A.Date d | A.Time d | A.Date_time d -> d
    | _ -> assert false
  in
  let durv = function
    | A.Duration d | A.Year_month_duration d | A.Day_time_duration d -> d
    | _ -> assert false
  in
  dt_component "year-from-date" date_like (fun a -> int1 (dtv a).Xdm_datetime.year);
  dt_component "month-from-date" date_like (fun a -> int1 (dtv a).Xdm_datetime.month);
  dt_component "day-from-date" date_like (fun a -> int1 (dtv a).Xdm_datetime.day);
  dt_component "year-from-dateTime" date_like (fun a -> int1 (dtv a).Xdm_datetime.year);
  dt_component "month-from-dateTime" date_like (fun a -> int1 (dtv a).Xdm_datetime.month);
  dt_component "day-from-dateTime" date_like (fun a -> int1 (dtv a).Xdm_datetime.day);
  dt_component "hours-from-dateTime" time_like (fun a -> int1 (dtv a).Xdm_datetime.hour);
  dt_component "minutes-from-dateTime" time_like (fun a -> int1 (dtv a).Xdm_datetime.minute);
  dt_component "seconds-from-dateTime" time_like (fun a ->
      [ I.Atomic (A.Decimal (dtv a).Xdm_datetime.second) ]);
  dt_component "hours-from-time" time_like (fun a -> int1 (dtv a).Xdm_datetime.hour);
  dt_component "minutes-from-time" time_like (fun a -> int1 (dtv a).Xdm_datetime.minute);
  dt_component "seconds-from-time" time_like (fun a ->
      [ I.Atomic (A.Decimal (dtv a).Xdm_datetime.second) ]);
  dt_component "years-from-duration" dur_like (fun a ->
      int1 ((durv a).Xdm_duration.months / 12));
  dt_component "months-from-duration" dur_like (fun a ->
      int1 ((durv a).Xdm_duration.months mod 12));
  dt_component "days-from-duration" dur_like (fun a ->
      int1 (int_of_float ((durv a).Xdm_duration.seconds /. 86400.)));
  dt_component "hours-from-duration" dur_like (fun a ->
      int1 (int_of_float (Float.rem ((durv a).Xdm_duration.seconds /. 3600.) 24.)));
  dt_component "minutes-from-duration" dur_like (fun a ->
      int1 (int_of_float (Float.rem ((durv a).Xdm_duration.seconds /. 60.) 60.)));
  dt_component "seconds-from-duration" dur_like (fun a ->
      [ I.Atomic (A.Decimal (Float.rem (durv a).Xdm_duration.seconds 60.)) ]);

  fn ~local:"dateTime" ~min_arity:2 (fun _ args ->
      match (I.opt_atomic (arg 0 args), I.opt_atomic (arg 1 args)) with
      | Some (A.Date d), Some (A.Time t) ->
          [
            I.Atomic
              (A.Date_time
                 {
                   d with
                   Xdm_datetime.hour = t.Xdm_datetime.hour;
                   minute = t.Xdm_datetime.minute;
                   second = t.Xdm_datetime.second;
                   tz_minutes =
                     (match d.Xdm_datetime.tz_minutes with
                     | Some _ as tz -> tz
                     | None -> t.Xdm_datetime.tz_minutes);
                 });
          ]
      | None, _ | _, None -> []
      | _ -> err Xq_error.type_error_code "fn:dateTime expects a date and a time");
  fn ~local:"implicit-timezone" ~min_arity:0 ~max_arity:0 (fun _ _ ->
      [ I.Atomic (A.Day_time_duration (Xdm_duration.make ~seconds:0. ())) ]);
  let tz_from local selector =
    fn ~local (fun _ args ->
        match I.opt_atomic (arg 0 args) with
        | None -> []
        | Some a -> (
            match selector a with
            | Some (Some tz) ->
                [
                  I.Atomic
                    (A.Day_time_duration
                       (Xdm_duration.make ~seconds:(float_of_int tz *. 60.) ()));
                ]
            | Some None -> []
            | None ->
                err Xq_error.type_error_code "%s: wrong argument type" local))
  in
  let dt_tz = function
    | A.Date d | A.Time d | A.Date_time d -> Some d.Xdm_datetime.tz_minutes
    | _ -> None
  in
  tz_from "timezone-from-date" dt_tz;
  tz_from "timezone-from-time" dt_tz;
  tz_from "timezone-from-dateTime" dt_tz;
  let adjust local rebuild =
    fn ~local ~min_arity:1 ~max_arity:2 (fun _ args ->
        match I.opt_atomic (arg 0 args) with
        | None -> []
        | Some a -> (
            let target_tz =
              match arg_opt 1 args with
              | None -> Some 0 (* implicit timezone: UTC *)
              | Some s -> (
                  match I.opt_atomic s with
                  | None -> None
                  | Some (A.Day_time_duration d | A.Duration d) ->
                      Some (int_of_float (d.Xdm_duration.seconds /. 60.))
                  | Some _ ->
                      err Xq_error.type_error_code
                        "%s: timezone must be a dayTimeDuration" local)
            in
            match a with
            | A.Date d | A.Time d | A.Date_time d -> (
                match target_tz with
                | None -> [ I.Atomic (rebuild { d with Xdm_datetime.tz_minutes = None }) ]
                | Some tz ->
                    let adjusted =
                      match d.Xdm_datetime.tz_minutes with
                      | None -> { d with Xdm_datetime.tz_minutes = Some tz }
                      | Some _ ->
                          Xdm_datetime.of_epoch_seconds ~tz_minutes:tz
                            (Xdm_datetime.to_epoch_seconds d)
                    in
                    [ I.Atomic (rebuild adjusted) ])
            | _ -> err Xq_error.type_error_code "%s: wrong argument type" local))
  in
  adjust "adjust-dateTime-to-timezone" (fun d -> A.Date_time d);
  adjust "adjust-date-to-timezone" (fun d ->
      A.Date { d with Xdm_datetime.hour = 0; minute = 0; second = 0. });
  adjust "adjust-time-to-timezone" (fun d -> A.Time d);

  (* ---------- documents ---------- *)
  fn ~local:"doc" (fun cctx args ->
      match opt_string (arg 0 args) with
      | None -> []
      | Some uri -> [ I.Node (cctx.Call_ctx.doc uri) ]);
  fn ~local:"doc-available" (fun cctx args ->
      match opt_string (arg 0 args) with
      | None -> bool1 false
      | Some uri -> bool1 (cctx.Call_ctx.doc_available uri));
  fn ~local:"serialize" (fun _ args ->
      str1
        (String.concat ""
           (List.map
              (function
                | I.Node n -> Dom.serialize n
                | I.Atomic a -> A.to_string a)
              (arg 0 args))));
  fn ~local:"parse-xml" (fun _ args ->
      match opt_string (arg 0 args) with
      | None -> []
      | Some src -> (
          match Dom.of_string src with
          | doc -> [ I.Node doc ]
          | exception _ ->
              err "FODC0006" "fn:parse-xml: input is not well-formed XML"));
  fn ~local:"put" ~min_arity:2 (fun cctx args ->
      match (arg 0 args, opt_string (arg 1 args)) with
      | [ I.Node n ], Some uri ->
          cctx.Call_ctx.put n uri;
          []
      | _ -> err Xq_error.type_error_code "fn:put expects a node and a URI");
  ()
