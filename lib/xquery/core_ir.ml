(* The desugared core the closure compiler emits code from.

   [of_ast] lowers the surface AST into a compact core:

   - variable references are resolved to integer frame slots at
     lowering time (each binding site gets a unique slot, so a run
     needs one pre-sized array instead of per-binding map inserts);
   - FLWOR clause lists are desugared into nested [C_for]/[C_let]/
     [C_where] loops around the return expression;
   - grouping sugar ([ordered {}], [unordered {}], [{e}]) disappears;
   - non-sequential single-statement blocks become their expression.

   Every core node keeps the surface expression it was lowered from
   ([ast]): the emitter consults it for the static shape analyses
   (bounded positional takes, sortedness, value-index probes) and to
   delegate to the tree-walking evaluator — [C_opaque] — for the forms
   the compiler does not specialize. Opaque delegation is the exact-
   parity tool: anything updating, scripting blocks, typeswitch,
   transform, full-text, quantifiers, hash joins and order-by FLWORs
   (whose tuple materialisation the interpreter owns), and the
   early-exit builtin calls plus bounded-count shapes whose streaming
   pull behaviour must match the interpreter pull-for-pull. *)

open Xmlb
module A = Xdm_atomic

type slot = int

type t = { d : desc; ast : Ast.expr }

and desc =
  | C_atomic of A.t
  | C_text_literal of string
  | C_slot of slot  (** lexically resolved local binding *)
  | C_free of Qname.t  (** unresolved: global / host-bound variable *)
  | C_context_item
  | C_root
  | C_sequence of t list
  | C_range of t * t
  | C_if of t * t * t
  | C_or of t * t
  | C_and of t * t
  | C_value_comp of Ast.value_comp * t * t
  | C_general_comp of Ast.value_comp * t * t
  | C_general_comp_stream of Ast.value_comp * Ast.expr * t
      (** existential comparison whose lhs streams through the
          interpreter's lazy cursors (rhs is compiled) *)
  | C_node_comp of Ast.node_comp * t * t
  | C_arith of Ast.arith * t * t
  | C_unary_minus of t
  | C_union of t * t
  | C_intersect of t * t
  | C_except of t * t
  | C_instance_of of t * Ast.seq_type
  | C_treat_as of t * Ast.seq_type
  | C_castable_as of t * A.atomic_type * bool
  | C_cast_as of t * A.atomic_type * bool
  | C_step of Ast.axis * Ast.node_test * t list * Ast.expr list
      (** compiled predicates paired with their surface forms (for the
          value-index probe, which consumes the leading predicate) *)
  | C_path of t * t
  | C_filter of t * t list
  | C_for of {
      slot : slot;
      pos_slot : slot option;
      var : Qname.t;
      pos_var : Qname.t option;
      var_type : Ast.seq_type option;
      source : t;
      body : t;
    }
  | C_let of {
      slot : slot;
      var : Qname.t;
      var_type : Ast.seq_type option;
      value : t;
      body : t;
    }
  | C_where of t * t
  | C_cast_call of A.atomic_type * t  (** xs: constructor function *)
  | C_builtin_call of Qname.t * Functions.impl * t list
      (** call statically resolved to an fn: builtin *)
  | C_call of Qname.t * t list  (** generic runtime-dispatched call *)
  | C_direct_element of {
      name : Qname.t;
      attributes : (Qname.t * attr_part list) list;
      children : t list;
    }
  | C_computed_element of t * t
  | C_computed_attribute of t * t
  | C_computed_text of t
  | C_computed_comment of t
  | C_computed_pi of t * t
  | C_computed_document of t
  | C_opaque of Ast.expr  (** evaluated by the tree-walker *)

and attr_part = CA_text of string | CA_enclosed of t

(* ------------------------------------------------------------------ *)
(* lowering                                                            *)

(* lexical scope: innermost binding first *)
type scope = (string * (Qname.t * slot)) list

type st = { mutable next : slot; mutable high : slot }

let fresh st =
  let s = st.next in
  st.next <- s + 1;
  if st.next > st.high then st.high <- st.next;
  s

(* fn: builtins whose streaming interpretation pulls early-exit
   cursors ({!Eval.streaming_call}): calls to these delegate so the
   compiled engine keeps the interpreter's pull-for-pull behaviour *)
let streaming_builtin (qn : Qname.t) nargs =
  qn.Qname.uri = Some Qname.Ns.fn
  &&
  match (qn.Qname.local, nargs) with
  | ("exists" | "empty" | "head" | "boolean" | "not"), 1 -> true
  | "subsequence", (2 | 3) -> true
  | _ -> false

(* count(e) compared against an integer literal: the interpreter pulls
   at most k+1 items; delegate the whole comparison *)
let is_count_literal_shape a b =
  let count_call = function
    | Ast.E_call ({ Qname.local = "count"; uri = Some u; _ }, [ _ ]) ->
        u = Qname.Ns.fn
    | _ -> false
  and int_literal = function
    | Ast.E_literal (A.Integer _) -> true
    | _ -> false
  in
  (count_call a && int_literal b) || (int_literal a && count_call b)

(* the static context call sites resolve against; set by {!lower}
   around a lowering run (threading it through every [of_ast] call
   would obscure the recursion for one leaf case) *)
let resolver : Static_context.t option ref = ref None

let rec of_ast st (scope : scope) (e : Ast.expr) : t =
  let k d = { d; ast = e } in
  let sub e' = of_ast st scope e' in
  if Ast.is_updating e then k (C_opaque e)
  else
    match e with
    | Ast.E_literal a -> k (C_atomic a)
    | Ast.E_text_literal s -> k (C_text_literal s)
    | Ast.E_var qn -> (
        match List.assoc_opt (Qname.to_clark qn) scope with
        | Some (_, slot) -> k (C_slot slot)
        | None -> k (C_free qn))
    | Ast.E_context_item -> k C_context_item
    | Ast.E_root -> k C_root
    | Ast.E_sequence es -> k (C_sequence (List.map sub es))
    | Ast.E_range (a, b) -> k (C_range (sub a, sub b))
    | Ast.E_if (c, t, f) -> k (C_if (sub c, sub t, sub f))
    | Ast.E_or (a, b) -> k (C_or (sub a, sub b))
    | Ast.E_and (a, b) -> k (C_and (sub a, sub b))
    | Ast.(E_value_comp (_, a, b) | E_general_comp (_, a, b))
      when is_count_literal_shape a b ->
        k (C_opaque e)
    | Ast.E_value_comp (op, a, b) -> k (C_value_comp (op, sub a, sub b))
    | Ast.E_general_comp (op, a, b) when Focus_analysis.worth_streaming a ->
        k (C_general_comp_stream (op, a, sub b))
    | Ast.E_general_comp (op, a, b) -> k (C_general_comp (op, sub a, sub b))
    | Ast.E_node_comp (op, a, b) -> k (C_node_comp (op, sub a, sub b))
    | Ast.E_arith (op, a, b) -> k (C_arith (op, sub a, sub b))
    | Ast.E_unary_minus a -> k (C_unary_minus (sub a))
    | Ast.E_union (a, b) -> k (C_union (sub a, sub b))
    | Ast.E_intersect (a, b) -> k (C_intersect (sub a, sub b))
    | Ast.E_except (a, b) -> k (C_except (sub a, sub b))
    | Ast.E_instance_of (a, ty) -> k (C_instance_of (sub a, ty))
    | Ast.E_treat_as (a, ty) -> k (C_treat_as (sub a, ty))
    | Ast.E_castable_as (a, ty, opt) -> k (C_castable_as (sub a, ty, opt))
    | Ast.E_cast_as (a, ty, opt) -> k (C_cast_as (sub a, ty, opt))
    | Ast.E_step (axis, test, preds) ->
        k (C_step (axis, test, List.map sub preds, preds))
    | Ast.E_path (a, b) -> k (C_path (sub a, sub b))
    | Ast.E_filter (a, preds) -> k (C_filter (sub a, List.map sub preds))
    | Ast.E_flwor { clauses; where; order = []; return } ->
        { d = lower_flwor st scope clauses where return; ast = e }
    | Ast.E_flwor _ -> k (C_opaque e) (* order-by: interpreter's sort *)
    | Ast.E_call (qn, args) when streaming_builtin qn (List.length args) ->
        k (C_opaque e)
    | Ast.E_call (qn, args) -> k (lower_call st scope qn args)
    | Ast.E_ordered a | Ast.E_unordered a | Ast.E_enclosed a ->
        { (sub a) with ast = e }
    | Ast.E_direct_element { name; attributes; children } ->
        k
          (C_direct_element
             {
               name;
               attributes =
                 List.map
                   (fun (an, parts) ->
                     ( an,
                       List.map
                         (function
                           | Ast.A_text s -> CA_text s
                           | Ast.A_enclosed e' -> CA_enclosed (sub e'))
                         parts ))
                   attributes;
               children = List.map sub children;
             })
    | Ast.E_computed_element (n, c) -> k (C_computed_element (sub n, sub c))
    | Ast.E_computed_attribute (n, c) -> k (C_computed_attribute (sub n, sub c))
    | Ast.E_computed_text a -> k (C_computed_text (sub a))
    | Ast.E_computed_comment a -> k (C_computed_comment (sub a))
    | Ast.E_computed_pi (n, c) -> k (C_computed_pi (sub n, sub c))
    | Ast.E_computed_document a -> k (C_computed_document (sub a))
    (* delegated wholesale: streaming-sensitive, scripting, or rare *)
    | Ast.E_hash_join _ | Ast.E_quantified _ | Ast.E_typeswitch _
    | Ast.E_transform _ | Ast.E_ftcontains _ | Ast.E_block _
    | Ast.E_get_style _ ->
        k (C_opaque e)
    (* updating forms are caught by the [is_updating] guard above; this
       arm keeps the match exhaustive if new ones appear *)
    | Ast.E_insert _ | Ast.E_delete _ | Ast.E_replace _ | Ast.E_rename _
    | Ast.E_event_attach _ | Ast.E_event_detach _ | Ast.E_event_trigger _
    | Ast.E_set_style _ ->
        k (C_opaque e)

and lower_flwor st scope clauses where return =
  match clauses with
  | [] ->
      let ret = of_ast st scope return in
      let body =
        match where with
        | None -> ret
        | Some w -> { d = C_where (of_ast st scope w, ret); ast = return }
      in
      body.d
  | Ast.For_clause { var; pos_var; var_type; source } :: rest ->
      let source = of_ast st scope source in
      let slot = fresh st in
      let scope = (Qname.to_clark var, (var, slot)) :: scope in
      let pos_slot, scope =
        match pos_var with
        | Some pv ->
            let ps = fresh st in
            (Some ps, (Qname.to_clark pv, (pv, ps)) :: scope)
        | None -> (None, scope)
      in
      let body =
        { d = lower_flwor st scope rest where return; ast = return }
      in
      C_for { slot; pos_slot; var; pos_var; var_type; source; body }
  | Ast.Let_clause { var; var_type; value } :: rest ->
      let value = of_ast st scope value in
      let slot = fresh st in
      let scope = (Qname.to_clark var, (var, slot)) :: scope in
      let body =
        { d = lower_flwor st scope rest where return; ast = return }
      in
      C_let { slot; var; var_type; value; body }

(* Call sites resolve through the compile-time static context exactly
   as {!Eval.call_function} would at run time: xs: constructors become
   direct casts, calls that resolve to an fn: builtin capture its
   implementation. Anything else — user functions (re-dispatched
   through the compiled-body table), externals, unknown names — stays
   a generic call through the evaluator, which repeats the full
   resolution per call. The cache key's static-context fingerprint
   guarantees a cached compilation is only replayed against a context
   with the same declarations, so compile-time resolution is safe. *)
and lower_call st scope qn args =
  let nargs = List.length args in
  let cargs () = List.map (of_ast st scope) args in
  match !resolver with
  | None -> C_call (qn, cargs ())
  | Some static -> (
      if Static_context.is_blocked static qn then C_call (qn, cargs ())
      else
        match qn.Qname.uri with
        | Some u when String.equal u Qname.Ns.xs && nargs = 1 -> (
            match A.type_of_name qn.Qname.local with
            | Some ty -> C_cast_call (ty, of_ast st scope (List.hd args))
            | None -> C_call (qn, cargs ()))
        | _ ->
            if
              Option.is_some (Static_context.find_function static qn ~arity:nargs)
              || Option.is_some
                   (Static_context.find_external static qn ~arity:nargs)
            then C_call (qn, cargs ())
            else (
              match Functions.find qn ~arity:nargs with
              | Some impl -> C_builtin_call (qn, impl, cargs ())
              | None -> C_call (qn, cargs ())))

let lower static ?(params = []) (e : Ast.expr) : t * int =
  let st = { next = List.length params; high = List.length params } in
  let scope =
    List.rev
      (List.mapi (fun i qn -> (Qname.to_clark qn, (qn, i))) params)
  in
  resolver := Some static;
  Fun.protect
    ~finally:(fun () -> resolver := None)
    (fun () ->
      let core = of_ast st scope e in
      (core, st.high))

let is_opaque_root c = match c.d with C_opaque _ -> true | _ -> false
