(** The XQuery static context: in-scope namespaces, declared functions
    and variables, options, module resolution, and host restrictions
    (e.g. the browser blocking [fn:doc]/[fn:put], paper §4.2.1). *)

open Xmlb

type external_function =
  Call_ctx.t -> Xdm_item.sequence list -> Xdm_item.sequence

type module_resolution =
  | Module_source of string  (** XQuery library module source text *)
  | Module_external of (Qname.t * int * external_function) list
      (** e.g. a Web-service stub: name, arity, implementation *)
  | Module_not_found

type t

val create : unit -> t

(** A deep copy sharing nothing mutable. *)
val copy : t -> t

(** {1 Namespaces} *)

val ns_env : t -> Qname.Env.t
val declare_namespace : t -> prefix:string -> uri:string -> unit
val declare_default_element_ns : t -> string -> unit
val declare_default_function_ns : t -> string -> unit
val default_function_ns : t -> string

(** Resolve a QName; [kind] selects which default namespace applies. *)
val resolve : t -> kind:[ `Element | `Function | `Other ] -> Qname.t -> Qname.t

(** {1 Declarations} *)

val declare_function : t -> Ast.function_decl -> unit
val find_function : t -> Qname.t -> arity:int -> Ast.function_decl option
val declared_functions : t -> Ast.function_decl list
val declare_variable : t -> Qname.t -> Ast.seq_type option -> Ast.expr option -> unit

(** Replace an existing declaration in place (keeping evaluation
    order), or append if the variable is new. Used to swap in
    optimized initializers and to replay cached compilations. *)
val redeclare_variable : t -> Qname.t -> Ast.seq_type option -> Ast.expr option -> unit

val global_variables : t -> (Qname.t * Ast.seq_type option * Ast.expr option) list
val set_option : t -> Qname.t -> string -> unit
val get_option : t -> Qname.t -> string option
val set_boundary_space_preserve : t -> bool -> unit
val boundary_space_preserve : t -> bool

(** {1 External functions} *)

val register_external : t -> Qname.t -> arity:int -> external_function -> unit
val find_external : t -> Qname.t -> arity:int -> external_function option

(** {1 Function blocking (browser security)} *)

val block_function : t -> uri:string -> local:string -> unit
val is_blocked : t -> Qname.t -> bool

(** Track imported module URIs to avoid duplicate imports. *)

val mark_imported : t -> string -> unit
val is_imported : t -> string -> bool

(** {1 Module resolution} *)

val set_module_resolver :
  t -> (uri:string -> locations:string list -> module_resolution) -> unit

val resolve_module : t -> uri:string -> locations:string list -> module_resolution

(** {1 Fingerprint}

    A digest of every compilation-relevant piece of the context:
    namespaces, defaults, declared functions and variables (including
    their ASTs), external-function {e keys}, options, blocked
    functions and imported module URIs. Two contexts with equal
    fingerprints compile a given source to the same program, except
    that module resolvers and external implementations are compared by
    registration key only. The query cache keys on this. *)
val fingerprint : t -> string
