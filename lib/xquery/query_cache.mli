(** A generation-aware LRU cache for compiled artifacts.

    The motivating client is the compiled-query cache ({!Engine}
    wraps one around parse+optimize so repeated page loads of the same
    [<script type="text/xquery">] source become a lookup, paper §5),
    but the store is generic: any string key to any payload. A second
    client is {!Jsp_sim}'s template-segment cache.

    Keys are opaque strings; for compiled queries {!Engine} builds them
    from (source, static-context fingerprint, optimize flag).

    Invalidation is by {e generation}: {!invalidate} bumps a counter
    and every entry added under an older generation lazily misses (and
    is dropped) on its next lookup. This gives O(1) "drop everything"
    without touching the table.

    When {!Obs.Metrics.enabled} is set, each cache bumps
    [<name>.hit], [<name>.miss], [<name>.eviction] and
    [<name>.cost-saved] counters (cost is the caller-supplied weight of
    a cached value, e.g. source bytes not re-parsed).

    The module-level {!enabled} flag is a global kill switch surfaced
    as [--no-query-cache] in the CLI: {!find} always misses (recording
    nothing) and {!add} is a no-op while it is false. *)

type 'a t

(** Global kill switch shared by every cache (CLI [--no-query-cache]). *)
val enabled : bool ref

val set_enabled : bool -> unit

(** [create ?name ?capacity ()] — [name] prefixes the obs counters
    (default ["cache"]), [capacity] is the maximum entry count
    (default 256, minimum 1). An [autonomous] cache ignores the global
    {!enabled} kill switch — used by clients (the reactive listener
    memo table) whose correctness bookkeeping must survive
    [--no-query-cache]. *)
val create : ?name:string -> ?capacity:int -> ?autonomous:bool -> unit -> 'a t

(** Called with every entry leaving the cache — eviction, {!remove},
    {!clear}, replacement by {!add}, or a stale-generation drop during
    {!find} — so per-entry registrations elsewhere (footprint
    tracked-root refcounts) are released with the entry. *)
val set_on_drop : 'a t -> (string -> 'a -> unit) -> unit

(** Iterate over live (current-generation) entries. *)
val iter : (string -> 'a -> unit) -> 'a t -> unit

val name : 'a t -> string
val capacity : 'a t -> int

(** Shrinking below the current size evicts least-recently-used
    entries immediately. *)
val set_capacity : 'a t -> int -> unit

(** Number of live entries (stale generations included until lookup). *)
val length : 'a t -> int

(** Lookup; refreshes recency on hit. A stale-generation entry is
    dropped and reported as a miss. *)
val find : 'a t -> string -> 'a option

(** Insert (replacing any previous value under the key) under the
    current generation. [cost] is the weight credited to
    [cost_saved] on each future hit. Evicts the least-recently-used
    entry when full. No-op while {!enabled} is false. *)
val add : 'a t -> string -> cost:int -> 'a -> unit

(** Drop one key. *)
val remove : 'a t -> string -> unit

(** Bump the generation: every current entry becomes stale. *)
val invalidate : 'a t -> unit

(** Current generation number (starts at 0). *)
val generation : 'a t -> int

(** Drop all entries (stats and generation are untouched). *)
val clear : 'a t -> unit

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  cost_saved : int;  (** sum of [cost] over hits *)
}

val stats : 'a t -> stats

(** Zero the counters (entries stay cached). *)
val reset_stats : 'a t -> unit

(** [hit_rate t] = hits / (hits + misses), 0. when unused. *)
val hit_rate : 'a t -> float
