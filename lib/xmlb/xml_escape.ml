(* Partial application precomputes a 256-slot replacement table, so
   the per-string scan does one array load per byte. The common case —
   nothing to escape — returns the input unchanged without allocating;
   otherwise unescaped runs are copied with [Buffer.add_substring]. *)
let escape_with specials =
  let tbl = Array.make 256 None in
  List.iter (fun (c, rep) -> tbl.(Char.code c) <- Some rep) specials;
  fun s ->
    let n = String.length s in
    let rec first i =
      if i >= n then -1
      else
        match tbl.(Char.code (String.unsafe_get s i)) with
        | Some _ -> i
        | None -> first (i + 1)
    in
    let i0 = first 0 in
    if i0 < 0 then s
    else begin
      let buf = Buffer.create (n + 16) in
      Buffer.add_substring buf s 0 i0;
      let run_start = ref i0 in
      for i = i0 to n - 1 do
        match tbl.(Char.code (String.unsafe_get s i)) with
        | Some rep ->
            if i > !run_start then
              Buffer.add_substring buf s !run_start (i - !run_start);
            Buffer.add_string buf rep;
            run_start := i + 1
        | None -> ()
      done;
      if n > !run_start then Buffer.add_substring buf s !run_start (n - !run_start);
      Buffer.contents buf
    end

let text = escape_with [ ('&', "&amp;"); ('<', "&lt;"); ('>', "&gt;") ]

let attribute =
  escape_with [ ('&', "&amp;"); ('<', "&lt;"); ('>', "&gt;"); ('"', "&quot;") ]

let utf8_of_code_point cp =
  let buf = Buffer.create 4 in
  if cp < 0 then failwith "negative code point"
  else if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp <= 0x10FFFF then begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else failwith "code point out of range";
  Buffer.contents buf

let code_points s =
  let n = String.length s in
  let rec cont i need acc =
    if need = 0 then (acc, i)
    else if i >= n then failwith "invalid UTF-8: truncated sequence"
    else
      let b = Char.code s.[i] in
      if b land 0xC0 <> 0x80 then failwith "invalid UTF-8: bad continuation"
      else cont (i + 1) (need - 1) ((acc lsl 6) lor (b land 0x3F))
  in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let b = Char.code s.[i] in
      if b < 0x80 then go (i + 1) (b :: acc)
      else if b land 0xE0 = 0xC0 then
        let cp, j = cont (i + 1) 1 (b land 0x1F) in
        go j (cp :: acc)
      else if b land 0xF0 = 0xE0 then
        let cp, j = cont (i + 1) 2 (b land 0x0F) in
        go j (cp :: acc)
      else if b land 0xF8 = 0xF0 then
        let cp, j = cont (i + 1) 3 (b land 0x07) in
        go j (cp :: acc)
      else failwith "invalid UTF-8: bad leading byte"
  in
  go 0 []

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if s.[i] <> '&' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else
      match String.index_from_opt s i ';' with
      | None -> failwith "malformed entity reference: missing ';'"
      | Some j ->
          let ent = String.sub s (i + 1) (j - i - 1) in
          let rep =
            match ent with
            | "amp" -> "&"
            | "lt" -> "<"
            | "gt" -> ">"
            | "quot" -> "\""
            | "apos" -> "'"
            | "nbsp" -> "\xC2\xA0"
            | _ when String.length ent > 1 && ent.[0] = '#' ->
                let cp =
                  if ent.[1] = 'x' || ent.[1] = 'X' then
                    int_of_string ("0x" ^ String.sub ent 2 (String.length ent - 2))
                  else int_of_string (String.sub ent 1 (String.length ent - 1))
                in
                utf8_of_code_point cp
            | _ -> failwith (Printf.sprintf "unknown entity reference &%s;" ent)
          in
          Buffer.add_string buf rep;
          go (j + 1)
  in
  go 0
