(** Qualified names and namespace handling (XML Namespaces 1.0).

    A {!t} is an expanded name: an optional namespace URI, an optional
    prefix (kept for serialization fidelity only; equality ignores it)
    and a local part — plus the pre-interned {!Sym} symbols of the URI
    and local part, built once at construction, so name comparison and
    index keying are int operations. The record is private: build names
    with {!make}/{!of_string}/{!with_uri} so the symbols always agree
    with the strings. *)

type t = private {
  uri : string option;  (** namespace URI, [None] = no namespace *)
  prefix : string option;  (** original prefix, ignored by {!equal} *)
  local : string;
  usym : int;  (** interned URI symbol; [-1] when [uri] is [None] *)
  lsym : Sym.t;  (** interned local-part symbol *)
}

val make : ?uri:string -> ?prefix:string -> string -> t

(** [of_string s] splits ["p:local"] into prefix [p] and local part;
    the URI is left unresolved ([None]). *)
val of_string : string -> t

(** Replace the URI, re-interning its symbol (the only correct way to
    change a name's namespace — a record update would leave a stale
    symbol). *)
val with_uri : t -> string option -> t

(** The pre-interned local-part symbol. *)
val lsym : t -> Sym.t

(** The pre-interned URI symbol, [-1] for no namespace. *)
val usym : t -> int

(** Equality on expanded name: URI and local part only. Symbol compare
    when interned fast paths are on, string compare under the
    [--no-interning] ablation — same decisions either way. *)
val equal : t -> t -> bool

(** String-based order in both modes (symbol ids are intern-order and
    must not leak into sorted output); the fast path short-circuits
    equality to O(1). *)
val compare : t -> t -> int

(** Mix of the pre-interned symbols; consistent with {!equal}. *)
val hash : t -> int

(** ["p:local"] or ["local"], using the stored prefix. *)
val to_string : t -> string

(** Clark notation ["{uri}local"], canonical for diagnostics. *)
val to_clark : t -> string

val pp : Format.formatter -> t -> unit

(** Well-known namespace URIs. *)
module Ns : sig
  val xml : string
  val xmlns : string
  val xs : string
  val fn : string
  val local : string
  val xhtml : string
  val browser : string

  (** [err] — the XQuery error namespace. *)
  val err : string
end

(** A namespace environment: prefix [->] URI bindings with scoping. *)
module Env : sig
  type qname := t
  type t

  (** Environment with the immutable [xml] and [xmlns] bindings and the
      conventional defaults [xs], [fn], [local], [browser]. *)
  val initial : t

  (** [empty] has only the immutable [xml]/[xmlns] bindings. *)
  val empty : t

  val bind : t -> prefix:string -> uri:string -> t
  val bind_default : t -> uri:string option -> t
  val lookup : t -> string -> string option
  val default : t -> string option

  (** Resolve a parsed name against the environment. [use_default]
      selects whether the default element namespace applies (true for
      element names, false for attributes and functions).
      @raise Failure if the name has an unbound prefix. *)
  val resolve : t -> use_default:bool -> qname -> qname
end
