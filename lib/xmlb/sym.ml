type t = int

(* string -> id, plus the reverse array for O(1) [name]. The reverse
   side doubles on demand; slot [i] is valid iff [i < !count]. *)
let table : (string, int) Hashtbl.t = Hashtbl.create 1024
let names = ref (Array.make 1024 "")
let count = ref 0
let byte_count = ref 0
let hit_count = ref 0
let miss_count = ref 0

let intern s =
  match Hashtbl.find_opt table s with
  | Some i ->
      incr hit_count;
      i
  | None ->
      let i = !count in
      incr count;
      incr miss_count;
      byte_count := !byte_count + String.length s;
      if i >= Array.length !names then begin
        let bigger = Array.make (2 * Array.length !names) "" in
        Array.blit !names 0 bigger 0 (Array.length !names);
        names := bigger
      end;
      !names.(i) <- s;
      Hashtbl.replace table s i;
      i

let find_opt s = Hashtbl.find_opt table s
let name i = !names.(i)
let equal (a : int) (b : int) = a = b
let compare = Int.compare
let hash (i : int) = i

let fastpaths = ref true
let set_fastpaths b = fastpaths := b
let fastpaths_enabled () = !fastpaths

let size () = !count
let bytes () = !byte_count
let hits () = !hit_count
let misses () = !miss_count

let stats () =
  [
    ("size", !count);
    ("bytes", !byte_count);
    ("hits", !hit_count);
    ("misses", !miss_count);
  ]
