type t = {
  uri : string option;
  prefix : string option;
  local : string;
  usym : int;
  lsym : Sym.t;
}

(* -1 encodes "no namespace": [intern] only hands out ids >= 0, so the
   sentinel can never collide with a real URI's symbol. *)
let no_uri_sym = -1
let usym_of = function None -> no_uri_sym | Some u -> (Sym.intern u :> int)

let make ?uri ?prefix local =
  { uri; prefix; local; usym = usym_of uri; lsym = Sym.intern local }

let of_string s =
  match String.index_opt s ':' with
  | None -> make s
  | Some i ->
      let prefix = String.sub s 0 i in
      let local = String.sub s (i + 1) (String.length s - i - 1) in
      make ~prefix local

let with_uri t uri = { t with uri; usym = usym_of uri }

let lsym t = t.lsym
let usym t = t.usym

(* Interning is a bijection between distinct strings and symbols, so
   the symbol compare and the string compare decide equality
   identically; the switch only selects which cost is paid (the
   [--no-interning] ablation). *)
let equal a b =
  if !Sym.fastpaths then Sym.equal a.lsym b.lsym && a.usym = b.usym
  else
    String.equal a.local b.local && Option.equal String.equal a.uri b.uri

(* The order stays string-based in both modes — symbol ids depend on
   intern order, and an intern-order sort would leak into any
   observable sorted output. The fast path only short-circuits the
   equal case to O(1). *)
let compare a b =
  if !Sym.fastpaths && Sym.equal a.lsym b.lsym && a.usym = b.usym then 0
  else
    match Option.compare String.compare a.uri b.uri with
    | 0 -> String.compare a.local b.local
    | c -> c

(* Mix of the pre-interned symbols: no tuple allocation, no option
   blocks, no string walk. Consistent with [equal] in both modes. *)
let hash t = (((t.usym + 1) * 65599) + (t.lsym :> int)) land max_int

let to_string t =
  match t.prefix with
  | Some p when p <> "" -> p ^ ":" ^ t.local
  | _ -> t.local

let to_clark t =
  match t.uri with
  | Some u -> "{" ^ u ^ "}" ^ t.local
  | None -> t.local

let pp ppf t = Format.pp_print_string ppf (to_clark t)

module Ns = struct
  let xml = "http://www.w3.org/XML/1998/namespace"
  let xmlns = "http://www.w3.org/2000/xmlns/"
  let xs = "http://www.w3.org/2001/XMLSchema"
  let fn = "http://www.w3.org/2005/xpath-functions"
  let local = "http://www.w3.org/2005/xquery-local-functions"
  let xhtml = "http://www.w3.org/1999/xhtml"
  let browser = "http://www.example.com/browser"
  let err = "http://www.w3.org/2005/xqt-errors"
end

module Smap = Map.Make (String)

module Env = struct
  type qname = t
  type t = { bindings : string Smap.t; default_ns : string option }

  let empty =
    {
      bindings = Smap.(empty |> add "xml" Ns.xml |> add "xmlns" Ns.xmlns);
      default_ns = None;
    }

  let bind env ~prefix ~uri =
    if prefix = "xml" || prefix = "xmlns" then env
    else { env with bindings = Smap.add prefix uri env.bindings }

  let bind_default env ~uri = { env with default_ns = uri }

  let initial =
    empty
    |> fun e -> bind e ~prefix:"xs" ~uri:Ns.xs
    |> fun e -> bind e ~prefix:"fn" ~uri:Ns.fn
    |> fun e -> bind e ~prefix:"local" ~uri:Ns.local
    |> fun e -> bind e ~prefix:"browser" ~uri:Ns.browser
    |> fun e -> bind e ~prefix:"err" ~uri:Ns.err

  let lookup env prefix = Smap.find_opt prefix env.bindings
  let default env = env.default_ns

  let resolve env ~use_default (qn : qname) =
    match qn.uri with
    | Some _ -> qn
    | None -> (
        match qn.prefix with
        | None -> if use_default then with_uri qn env.default_ns else qn
        | Some p -> (
            match lookup env p with
            | Some uri -> with_uri qn (Some uri)
            | None -> failwith (Printf.sprintf "XPST0081: unbound prefix %S" p)))
end
