type tree =
  | Element of Qname.t * attribute list * tree list
  | Text of string
  | Comment of string
  | Pi of string * string

and attribute = { name : Qname.t; value : string }

type options = { uppercase_tags : bool; keep_whitespace : bool }

let default_options = { uppercase_tags = false; keep_whitespace = true }

exception Parse_error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  options : options;
  qnames : (string, Qname.t) Hashtbl.t;
      (* raw token -> parsed name: each distinct name in a document is
         split and interned exactly once, repeats share one record *)
}

let qname_of st raw =
  match Hashtbl.find_opt st.qnames raw with
  | Some qn -> qn
  | None ->
      let qn = Qname.of_string raw in
      Hashtbl.replace st.qnames raw qn;
      qn

let error st message =
  raise (Parse_error { line = st.line; col = st.col; message })

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then String.iter (fun _ -> advance st) s
  else error st (Printf.sprintf "expected %S" s)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let read_name st =
  if not (is_name_start (peek st)) then error st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Read text until the next '<'; expand entities. *)
let read_text st =
  let start = st.pos in
  while (not (eof st)) && peek st <> '<' do
    advance st
  done;
  let raw = String.sub st.src start (st.pos - start) in
  try Xml_escape.unescape raw with Failure m -> error st m

let read_until st delim =
  match
    let n = String.length st.src and d = String.length delim in
    let rec find i =
      if i + d > n then None
      else if String.sub st.src i d = delim then Some i
      else find (i + 1)
    in
    find st.pos
  with
  | None -> error st (Printf.sprintf "unterminated construct, expected %S" delim)
  | Some i ->
      let content = String.sub st.src st.pos (i - st.pos) in
      while st.pos < i + String.length delim do
        advance st
      done;
      content

let read_attr_value st =
  let q = peek st in
  if q <> '"' && q <> '\'' then error st "expected quoted attribute value";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> q do
    advance st
  done;
  if eof st then error st "unterminated attribute value";
  let raw = String.sub st.src start (st.pos - start) in
  advance st;
  try Xml_escape.unescape raw with Failure m -> error st m

(* Parse attributes up to '>' or '/>'. Returns (attrs, self_closing). *)
let rec read_attributes st acc =
  skip_space st;
  if looking_at st "/>" then begin
    expect st "/>";
    (List.rev acc, true)
  end
  else if peek st = '>' then begin
    advance st;
    (List.rev acc, false)
  end
  else begin
    let name = read_name st in
    skip_space st;
    let value =
      if peek st = '=' then begin
        advance st;
        skip_space st;
        read_attr_value st
      end
      else name (* HTML-style boolean attribute *)
    in
    read_attributes st ({ name = qname_of st name; value } :: acc)
  end

let apply_case st name =
  if st.options.uppercase_tags then String.uppercase_ascii name else name

(* Split namespace declarations out of an attribute list, extend [env],
   and resolve remaining attribute and element names. *)
let resolve_namespaces st env name attrs =
  let env =
    List.fold_left
      (fun env { name = n; value } ->
        match (n.Qname.prefix, n.Qname.local) with
        | None, "xmlns" ->
            Qname.Env.bind_default env
              ~uri:(if value = "" then None else Some value)
        | Some "xmlns", p -> Qname.Env.bind env ~prefix:p ~uri:value
        | _ -> env)
      env attrs
  in
  let plain_attrs =
    List.filter
      (fun { name = n; _ } ->
        not
          (n.Qname.prefix = Some "xmlns"
          || (n.Qname.prefix = None && n.Qname.local = "xmlns")))
      attrs
  in
  let resolve_attr a =
    match a.name.Qname.prefix with
    | None -> a
    | Some _ -> (
        try { a with name = Qname.Env.resolve env ~use_default:false a.name }
        with Failure m -> error st m)
  in
  let name =
    try Qname.Env.resolve env ~use_default:true name
    with Failure m -> error st m
  in
  (env, name, List.map resolve_attr plain_attrs)

let rec parse_content st env close_name acc =
  if eof st then
    match close_name with
    | None -> List.rev acc
    | Some n -> error st (Printf.sprintf "unclosed element <%s>" n)
  else if peek st = '<' then
    if looking_at st "</" then begin
      expect st "</";
      let name = apply_case st (read_name st) in
      skip_space st;
      expect st ">";
      match close_name with
      | Some n when String.equal n name -> List.rev acc
      | Some n ->
          error st (Printf.sprintf "mismatched close tag </%s>, expected </%s>" name n)
      | None -> error st (Printf.sprintf "unexpected close tag </%s>" name)
    end
    else if looking_at st "<!--" then begin
      expect st "<!--";
      let c = read_until st "-->" in
      parse_content st env close_name (Comment c :: acc)
    end
    else if looking_at st "<![CDATA[" then begin
      expect st "<![CDATA[";
      let c = read_until st "]]>" in
      parse_content st env close_name (Text c :: acc)
    end
    else if looking_at st "<!DOCTYPE" || looking_at st "<!doctype" then begin
      let _ = read_until st ">" in
      parse_content st env close_name acc
    end
    else if looking_at st "<?" then begin
      expect st "<?";
      let target = read_name st in
      skip_space st;
      let data = read_until st "?>" in
      if String.lowercase_ascii target = "xml" then
        parse_content st env close_name acc
      else parse_content st env close_name (Pi (target, data) :: acc)
    end
    else begin
      let el = parse_element st env in
      parse_content st env close_name (el :: acc)
    end
  else begin
    let text = read_text st in
    let keep =
      st.options.keep_whitespace || not (String.for_all is_space text)
    in
    let acc = if keep && text <> "" then Text text :: acc else acc in
    parse_content st env close_name acc
  end

and parse_element st env =
  expect st "<";
  let raw_name = apply_case st (read_name st) in
  let attrs, self_closing = read_attributes st [] in
  let env, name, attrs =
    resolve_namespaces st env (qname_of st raw_name) attrs
  in
  if self_closing then Element (name, attrs, [])
  else if is_raw_text_element raw_name then begin
    (* script/style content is raw text up to the close tag, like an
       HTML parser: '<' and '&' inside code need no escaping *)
    let close = "</" ^ raw_name in
    let raw = read_until_ci st close in
    skip_space st;
    expect st ">";
    let body = strip_cdata_markers raw in
    let children = if String.trim body = "" then [] else [ Text body ] in
    Element (name, attrs, children)
  end
  else
    let children = parse_content st env (Some raw_name) [] in
    Element (name, attrs, children)

and is_raw_text_element raw_name =
  match String.lowercase_ascii raw_name with
  | "script" | "style" -> true
  | _ -> false

(* inside raw script text, XHTML-style CDATA wrappers are transparent *)
and strip_cdata_markers s =
  let drop marker s =
    let ml = String.length marker in
    let buf = Buffer.create (String.length s) in
    let rec go i =
      if i >= String.length s then Buffer.contents buf
      else if i + ml <= String.length s && String.sub s i ml = marker then
        go (i + ml)
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0
  in
  drop "<![CDATA[" (drop "]]>" s)

(* case-insensitive read_until for HTML close tags *)
and read_until_ci st delim =
  let lsrc = String.lowercase_ascii st.src and ldelim = String.lowercase_ascii delim in
  let n = String.length lsrc and d = String.length ldelim in
  let rec find i =
    if i + d > n then error st (Printf.sprintf "unterminated element, expected %S" delim)
    else if String.sub lsrc i d = ldelim then i
    else find (i + 1)
  in
  let e = find st.pos in
  let content = String.sub st.src st.pos (e - st.pos) in
  while st.pos < e + d do
    advance st
  done;
  content

let parse ?(options = default_options) src =
  let st =
    { src; pos = 0; line = 1; col = 1; options; qnames = Hashtbl.create 32 }
  in
  let items = parse_content st Qname.Env.empty None [] in
  List.filter
    (function Text t -> not (String.for_all is_space t) | _ -> true)
    items

let parse_root ?options src =
  let roots =
    List.filter (function Element _ -> true | _ -> false) (parse ?options src)
  in
  match roots with
  | [ root ] -> root
  | _ ->
      raise
        (Parse_error
           { line = 0; col = 0; message = "document must have exactly one root element" })

let element_name = function
  | Element (n, _, _) -> n
  | Text _ | Comment _ | Pi _ -> invalid_arg "Xml_parser.element_name"

let rec pp ppf = function
  | Text t -> Format.pp_print_string ppf (Xml_escape.text t)
  | Comment c -> Format.fprintf ppf "<!--%s-->" c
  | Pi (t, d) -> Format.fprintf ppf "<?%s %s?>" t d
  | Element (n, attrs, children) ->
      let name = Qname.to_string n in
      Format.fprintf ppf "<%s" name;
      List.iter
        (fun { name = an; value } ->
          Format.fprintf ppf " %s=\"%s\"" (Qname.to_string an)
            (Xml_escape.attribute value))
        attrs;
      if children = [] then Format.fprintf ppf "/>"
      else begin
        Format.fprintf ppf ">";
        List.iter (pp ppf) children;
        Format.fprintf ppf "</%s>" name
      end
