(** Global string interning: hash-consed names as integer symbols.

    Every distinct string interned gets a small non-negative int that
    is stable for the lifetime of the process, so symbol equality is
    string equality and the innermost comparisons of name tests, index
    probes and footprint intersections become int operations. The table
    only grows — interned strings are never collected — which is the
    right trade for names (documents reuse a small vocabulary) and is
    observable through {!stats} / the [browser:stats()] [sym] element.

    The table itself is always on: {!Qname.t} carries pre-interned
    symbols unconditionally. The {!fastpaths} switch (the
    [--no-interning] ablation) only gates the comparison fast paths
    that consult symbols instead of strings. *)

type t = private int

(** Intern a string, returning its symbol. O(1) amortised; the first
    intern of a string stores it permanently. *)
val intern : string -> t

(** Probe without interning: [None] if the string was never interned
    (so nothing in the process can be keyed by it). *)
val find_opt : string -> t option

(** The string a symbol stands for. O(1). *)
val name : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Ablation switch}

    Gates the symbol fast paths ([Qname.equal]/[compare], evaluator
    name tests, symbol index probes). The intern table keeps running
    either way, so toggling mid-session never invalidates symbol-keyed
    state. Exposed as a ref so hot paths can read it with one load. *)

val fastpaths : bool ref
val set_fastpaths : bool -> unit
val fastpaths_enabled : unit -> bool

(** {1 Stats} *)

val size : unit -> int

(** Total bytes of interned string payload. *)
val bytes : unit -> int

(** [intern] calls that found an existing entry / created one. *)
val hits : unit -> int

val misses : unit -> int
val stats : unit -> (string * int) list
