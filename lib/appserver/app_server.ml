module SC = Xquery.Static_context
module DC = Xquery.Dynamic_context

type page =
  | Xquery_page of { compiled : Xquery.Engine.compiled; source : string }
  | Static of { body : string; content_type : string }

type queue_config = {
  service_cost : float;
  static_cost : float;
  shed_depth : int option;
}

(* zero-cost, never sheds: byte-identical to the pre-queue server *)
let no_queue = { service_cost = 0.; static_cost = 0.; shed_depth = None }

type t = {
  http : Http_sim.t;
  server_host : string;
  doc_store : Doc_store.t;
  pages : (string, page) Hashtbl.t;
  mutable evals : int;
  mutable tenants : int;
  tenant_caches : (int, Xquery.Engine.compiled Xquery.Query_cache.t) Hashtbl.t;
      (** per-tenant compiled-page partitions (tenants >= 1); tenant 0
          keeps using the page's eagerly-compiled artifact *)
  mutable tenant_compiles : int;
  mutable queue : queue_config;
  mutable busy_until : float;
  backlog : float Queue.t;  (** finish times of admitted requests, ascending *)
  mutable sheds : int;
  mutable max_depth : int;
  mutable served : int;
  mutable latencies : float list;  (** per admitted request, newest first *)
}

let host t = t.server_host
let store t = t.doc_store
let http t = t.http
let evaluations t = t.evals
let doc_uri t ~name = Doc_store.uri_of ~host:t.server_host ~name

(* accept bare names and full /docs/ URIs: the one resolution rule
   shared by the fn:doc and fn:doc-available host hooks, and the same
   stripping Doc_store.attach applies to HTTP requests *)
let resolve_doc_name uri =
  match Http_sim.split_uri uri with
  | Some (_, path) ->
      let prefix = "/docs/" in
      if
        String.length path > String.length prefix
        && String.sub path 0 (String.length prefix) = prefix
      then String.sub path (String.length prefix) (String.length path - String.length prefix)
      else path
  | None -> uri

(* the server's host hooks: fn:doc resolves against the store *)
let server_host_hooks t =
  {
    DC.default_host with
    DC.doc =
      (fun uri ->
        let name = resolve_doc_name uri in
        match Doc_store.get t.doc_store name with
        | Some doc -> doc
        | None ->
            Xquery.Xq_error.raise_error "FODC0002" "no stored document %S" name);
    DC.doc_available =
      (fun uri -> Doc_store.get t.doc_store (resolve_doc_name uri) <> None);
    DC.put =
      (fun node uri ->
        (* fn:put works server-side (it is only blocked in the browser,
           §4.2.1): stores a copy under the given name *)
        Doc_store.put t.doc_store ~name:uri (Dom.clone node));
    DC.now = (fun () -> Virtual_clock.to_datetime (Http_sim.clock t.http));
  }

let render t compiled =
  t.evals <- t.evals + 1;
  let result = Xquery.Engine.run ~host:(server_host_hooks t) compiled in
  String.concat ""
    (List.map
       (function
         | Xdm_item.Node n -> Dom.serialize n
         | Xdm_item.Atomic a -> Xdm_atomic.to_string a)
       result)

(* ---------------- request queue / admission control ---------------- *)

let set_queue ?(service_cost = 0.) ?static_cost ?shed_depth t =
  let static_cost =
    match static_cost with Some c -> c | None -> service_cost /. 10.
  in
  (match shed_depth with
  | Some d when d < 1 -> invalid_arg "App_server.set_queue: shed_depth must be >= 1"
  | _ -> ());
  t.queue <- { service_cost; static_cost; shed_depth }

let sheds t = t.sheds
let max_queue_depth t = t.max_depth
let served_requests t = t.served
let latencies t = Array.of_list (List.rev t.latencies)

(* single-server FIFO queue in virtual time. A request's arrival time
   is the lag-corrected clock ([now - current_lag]): the fleet runs
   concurrent sessions sequentially, so a session's task may fire late
   because other sessions' blocking work advanced the clock — but its
   request still hits the server at the time the session was scheduled
   to act. An admitted request starts at max(arrival, busy_until) and
   experiences wait + service; when the backlog is at the admission
   threshold it is shed with a Retry-After hint saying when a slot
   frees up. The charge into the client's {!Http_sim} latency is only
   the part of the wait the clock has not already covered. *)
let admit t ~cost =
  if cost <= 0. then `Admitted 0.
  else begin
    let clock = Http_sim.clock t.http in
    let now = Virtual_clock.now clock in
    let arrival = Float.max 0. (now -. Virtual_clock.current_lag clock) in
    while (not (Queue.is_empty t.backlog)) && Queue.peek t.backlog <= arrival do
      ignore (Queue.pop t.backlog)
    done;
    let depth = Queue.length t.backlog in
    let over =
      match t.queue.shed_depth with Some d -> depth >= d | None -> false
    in
    if over then begin
      t.sheds <- t.sheds + 1;
      if !Obs.Metrics.enabled then Obs.Metrics.incr "appserver.sheds";
      let head =
        if Queue.is_empty t.backlog then arrival else Queue.peek t.backlog
      in
      `Shed (Float.max cost (head -. arrival))
    end
    else begin
      let start = Float.max arrival t.busy_until in
      let finish = start +. cost in
      t.busy_until <- finish;
      Queue.push finish t.backlog;
      let depth = depth + 1 in
      if depth > t.max_depth then t.max_depth <- depth;
      let lat = finish -. arrival in
      t.served <- t.served + 1;
      t.latencies <- lat :: t.latencies;
      if !Obs.Metrics.enabled then begin
        Obs.Metrics.incr "appserver.requests";
        Obs.Metrics.observe "appserver.latency_s" lat;
        Obs.Metrics.observe "appserver.queue-depth" (float_of_int depth)
      end;
      `Admitted (Float.max 0. (finish -. now))
    end
  end

let shed_response retry_after =
  {
    Http_sim.status = 503;
    body = "server overloaded: request shed";
    content_type = "text/plain";
    retry_after = Some retry_after;
  }

(* ---------------- tenancy ---------------- *)

let set_tenants t n =
  if n < 1 then invalid_arg "App_server.set_tenants: need at least one tenant";
  t.tenants <- n

let tenants t = t.tenants
let tenant_compiles t = t.tenant_compiles

let tenant_cache t tenant =
  match Hashtbl.find_opt t.tenant_caches tenant with
  | Some c -> c
  | None ->
      let c =
        Xquery.Query_cache.create
          ~name:(Printf.sprintf "appserver.tenant%d" tenant)
          ~autonomous:true ()
      in
      Hashtbl.replace t.tenant_caches tenant c;
      c

let tenant_cache_stats t ~tenant =
  Xquery.Query_cache.stats (tenant_cache t tenant)

(* requests carry their tenant as a path prefix: /t<k>/rest-of-path.
   With one tenant (the default) nothing is stripped, so existing
   single-tenant URIs behave exactly as before. *)
let split_tenant t path =
  if t.tenants <= 1 then (0, path)
  else if String.length path >= 3 && path.[0] = '/' && path.[1] = 't' then
    match String.index_from_opt path 1 '/' with
    | Some i -> (
        match int_of_string_opt (String.sub path 2 (i - 2)) with
        | Some k when k >= 0 && k < t.tenants ->
            (k, String.sub path i (String.length path - i))
        | _ -> (0, path))
    | None -> (0, path)
  else (0, path)

(* tenant 0 serves the shared eagerly-compiled artifact; other tenants
   compile lazily into their own partition, so one tenant's churn
   (or cold start) never evicts another's entries *)
let compiled_for t ~tenant ~path ~compiled ~source =
  if tenant = 0 then compiled
  else
    let cache = tenant_cache t tenant in
    match Xquery.Query_cache.find cache path with
    | Some c -> c
    | None ->
        let static = Xquery.Engine.default_static () in
        let c = Xquery.Engine.compile ~static source in
        t.tenant_compiles <- t.tenant_compiles + 1;
        if !Obs.Metrics.enabled then Obs.Metrics.incr "appserver.tenant-compiles";
        Xquery.Query_cache.add cache path ~cost:(String.length source) c;
        c

(* ---------------- request handling ---------------- *)

let handler t ~tenant req =
  match Hashtbl.find_opt t.pages req.Http_sim.path with
  | Some (Xquery_page { compiled; source }) -> (
      match admit t ~cost:t.queue.service_cost with
      | `Shed ra -> shed_response ra
      | `Admitted lat ->
          Http_sim.charge_latency t.http lat;
          let compiled =
            compiled_for t ~tenant ~path:req.Http_sim.path ~compiled ~source
          in
          Http_sim.ok ~content_type:"text/html" (render t compiled))
  | Some (Static { body; content_type }) -> (
      match admit t ~cost:t.queue.static_cost with
      | `Shed ra -> shed_response ra
      | `Admitted lat ->
          Http_sim.charge_latency t.http lat;
          Http_sim.ok ~content_type body)
  | None -> Http_sim.not_found req.Http_sim.path

let is_docs_path path =
  String.equal path "/docs"
  || (String.length path >= 6 && String.sub path 0 6 = "/docs/")

let create http ~host:server_host =
  let t =
    {
      http;
      server_host;
      doc_store = Doc_store.create ();
      pages = Hashtbl.create 8;
      evals = 0;
      tenants = 1;
      tenant_caches = Hashtbl.create 4;
      tenant_compiles = 0;
      queue = no_queue;
      busy_until = 0.;
      backlog = Queue.create ();
      sheds = 0;
      max_depth = 0;
      served = 0;
      latencies = [];
    }
  in
  (* document store at /docs/, pages everywhere else (an exact prefix
     match: /docsearch is a page path, not a store path) *)
  Doc_store.attach t.doc_store http ~host:server_host;
  let docs_handler = Option.get (Http_sim.find_host http ~host:server_host) in
  Http_sim.register_host http ~host:server_host (fun req ->
      let tenant, path = split_tenant t req.Http_sim.path in
      let req = { req with Http_sim.path } in
      if is_docs_path path then
        match admit t ~cost:t.queue.static_cost with
        | `Shed ra -> shed_response ra
        | `Admitted lat ->
            Http_sim.charge_latency t.http lat;
            docs_handler req
      else handler t ~tenant req);
  t

let add_xquery_page t ~path source =
  let static = Xquery.Engine.default_static () in
  let compiled = Xquery.Engine.compile_cached ~static source in
  Hashtbl.replace t.pages path (Xquery_page { compiled; source })

let add_static_page t ~path ?(content_type = "text/html") body =
  Hashtbl.replace t.pages path (Static { body; content_type })

let add_module t ~path source =
  Hashtbl.replace t.pages path
    (Static { body = source; content_type = "application/xquery" })

let page_source t ~path =
  match Hashtbl.find_opt t.pages path with
  | Some (Xquery_page { source; _ }) -> Some source
  | Some (Static _) | None -> None

let render_page t ~path =
  match Hashtbl.find_opt t.pages path with
  | Some (Xquery_page { compiled; _ }) -> render t compiled
  | Some (Static { body; _ }) -> body
  | None -> Xquery.Xq_error.raise_error "SEAS0404" "no page at %s" path
