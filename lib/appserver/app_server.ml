module SC = Xquery.Static_context
module DC = Xquery.Dynamic_context

type page =
  | Xquery_page of { compiled : Xquery.Engine.compiled; source : string }
  | Static of { body : string; content_type : string }

type t = {
  http : Http_sim.t;
  server_host : string;
  doc_store : Doc_store.t;
  pages : (string, page) Hashtbl.t;
  mutable evals : int;
}

let host t = t.server_host
let store t = t.doc_store
let http t = t.http
let evaluations t = t.evals
let doc_uri t ~name = Doc_store.uri_of ~host:t.server_host ~name

(* the server's host hooks: fn:doc resolves against the store *)
let server_host_hooks t =
  {
    DC.default_host with
    DC.doc =
      (fun uri ->
        let name =
          (* accept bare names and full /docs/ URIs *)
          match Http_sim.split_uri uri with
          | Some (_, path) ->
              let prefix = "/docs/" in
              if
                String.length path > String.length prefix
                && String.sub path 0 (String.length prefix) = prefix
              then String.sub path (String.length prefix) (String.length path - String.length prefix)
              else path
          | None -> uri
        in
        match Doc_store.get t.doc_store name with
        | Some doc -> doc
        | None ->
            Xquery.Xq_error.raise_error "FODC0002" "no stored document %S" name);
    DC.doc_available =
      (fun uri -> Doc_store.get t.doc_store uri <> None);
    DC.put =
      (fun node uri ->
        (* fn:put works server-side (it is only blocked in the browser,
           §4.2.1): stores a copy under the given name *)
        Doc_store.put t.doc_store ~name:uri (Dom.clone node));
    DC.now = (fun () -> Virtual_clock.to_datetime (Http_sim.clock t.http));
  }

let render t compiled =
  t.evals <- t.evals + 1;
  let result = Xquery.Engine.run ~host:(server_host_hooks t) compiled in
  String.concat ""
    (List.map
       (function
         | Xdm_item.Node n -> Dom.serialize n
         | Xdm_item.Atomic a -> Xdm_atomic.to_string a)
       result)

let handler t req =
  match Hashtbl.find_opt t.pages req.Http_sim.path with
  | Some (Xquery_page { compiled; _ }) ->
      Http_sim.ok ~content_type:"text/html" (render t compiled)
  | Some (Static { body; content_type }) -> Http_sim.ok ~content_type body
  | None -> Http_sim.not_found req.Http_sim.path

let create http ~host:server_host =
  let t =
    {
      http;
      server_host;
      doc_store = Doc_store.create ();
      pages = Hashtbl.create 8;
      evals = 0;
    }
  in
  (* document store at /docs/, pages everywhere else *)
  Doc_store.attach t.doc_store http ~host:server_host;
  let docs_handler = Option.get (Http_sim.find_host http ~host:server_host) in
  Http_sim.register_host http ~host:server_host (fun req ->
      let path = req.Http_sim.path in
      if String.length path >= 5 && String.sub path 0 5 = "/docs" then
        docs_handler req
      else handler t req);
  t

let add_xquery_page t ~path source =
  let static = Xquery.Engine.default_static () in
  let compiled = Xquery.Engine.compile_cached ~static source in
  Hashtbl.replace t.pages path (Xquery_page { compiled; source })

let add_static_page t ~path ?(content_type = "text/html") body =
  Hashtbl.replace t.pages path (Static { body; content_type })

let add_module t ~path source =
  Hashtbl.replace t.pages path
    (Static { body = source; content_type = "application/xquery" })

let page_source t ~path =
  match Hashtbl.find_opt t.pages path with
  | Some (Xquery_page { source; _ }) -> Some source
  | Some (Static _) | None -> None

let render_page t ~path =
  match Hashtbl.find_opt t.pages path with
  | Some (Xquery_page { compiled; _ }) -> render t compiled
  | Some (Static { body; _ }) -> body
  | None -> Xquery.Xq_error.raise_error "SEAS0404" "no page at %s" path
