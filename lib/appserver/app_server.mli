(** The XQuery application server of the paper's §6.1 architecture:
    serves Web pages produced by server-side XQuery programs, with data
    from an XML document store available via REST calls (the MarkLogic
    stand-in). Each request to an XQuery page evaluates the program
    against the store and serializes the resulting element. *)

type t

(** Create a server on a host (e.g. ["www.elsevier.example"]); attaches
    its document store at [/docs/]. *)
val create : Http_sim.t -> host:string -> t

val host : t -> string
val store : t -> Doc_store.t
val http : t -> Http_sim.t

(** Register an XQuery page program at a path. The program is compiled
    once; each GET evaluates it ([fn:doc] resolves against the store)
    and serializes the result. *)
val add_xquery_page : t -> path:string -> string -> unit

(** Register a static page body. *)
val add_static_page : t -> path:string -> ?content_type:string -> string -> unit

(** Serve an XQuery library module (content-type [application/xquery])
    so clients can [import module ... at] it. *)
val add_module : t -> path:string -> string -> unit

(** Server-side page evaluations performed (the server CPU-work metric
    of the offload experiment, Fig. 2). *)
val evaluations : t -> int

(** {1 Request queue / admission control}

    For the fleet experiments (T15) the server models a single-core
    queueing station in virtual time: every admitted request joins a
    FIFO backlog and pays [wait + service] virtual seconds, charged
    into its {!Http_sim} latency, so concurrent sessions observe the
    load they create. When an admission threshold is configured and
    the backlog is at it, new requests are shed with a 503 carrying a
    [Retry-After] hint (when a slot frees), which client {!Retry}
    policies honour. *)

(** [set_queue ?service_cost ?static_cost ?shed_depth t] configures the
    queue. [service_cost] (virtual seconds, default 0) is charged per
    XQuery page evaluation; [static_cost] per static page / document
    request (default [service_cost /. 10]); [shed_depth] (>= 1) is the
    backlog depth at which requests are shed (default: never). With
    all costs 0 — the initial state — the queue is inert and the
    server behaves exactly as before. *)
val set_queue :
  ?service_cost:float -> ?static_cost:float -> ?shed_depth:int -> t -> unit

(** Requests shed (503) by admission control so far. *)
val sheds : t -> int

(** High-water mark of the backlog depth (admitted requests). *)
val max_queue_depth : t -> int

(** Requests admitted through the queue (only counted while a cost is
    configured). *)
val served_requests : t -> int

(** Per-request server latencies (wait + service, virtual seconds) of
    every admitted request, in arrival order — the exact distribution
    behind the T15 p50/p99/p999 numbers (the {!Obs} histograms get the
    same observations but with coarse power-of-ten buckets). *)
val latencies : t -> float array

(** {1 Tenancy}

    Requests may address a tenant with a [/t<k>/] path prefix
    ([/t3/reference] is tenant 3's view of [/reference]); unprefixed
    paths are tenant 0. Each tenant k >= 1 gets its own compiled-page
    cache partition, so one tenant's cold start or churn never evicts
    another's compiled artifacts; tenant 0 uses the shared
    eagerly-compiled page. *)

(** Set the number of tenants (>= 1, default 1; with 1 tenant no
    prefix is recognised and routing is unchanged). *)
val set_tenants : t -> int -> unit

val tenants : t -> int

(** Lazy compiles performed into per-tenant partitions (tenants >= 1). *)
val tenant_compiles : t -> int

(** Stats of one tenant's compiled-page partition. *)
val tenant_cache_stats : t -> tenant:int -> Xquery.Query_cache.stats

(** The base URI a stored document is served under. *)
val doc_uri : t -> name:string -> string

(** The original source of an XQuery page (used by the migration
    tool). *)
val page_source : t -> path:string -> string option

(** Render a registered XQuery page directly (used by the migration
    tool and tests). *)
val render_page : t -> path:string -> string
