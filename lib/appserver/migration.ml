open Xmlb
module Ast = Xquery.Ast

let err fmt = Xquery.Xq_error.raise_error "SEMG0001" fmt

(* rewrite fn:doc($u) → rest:get(concat(doc_base, $u)) *)
let rec rewrite_doc ~doc_base (e : Ast.expr) : Ast.expr =
  let g = rewrite_doc ~doc_base in
  match e with
  | Ast.E_call ({ Qname.local = "doc"; uri = Some u; _ }, [ arg ])
    when String.equal u Qname.Ns.fn ->
      let uri_expr =
        match arg with
        | Ast.E_literal (Xdm_atomic.String s) ->
            Ast.E_literal (Xdm_atomic.String (doc_base ^ s))
        | arg ->
            Ast.E_call
              ( Qname.make ~uri:Qname.Ns.fn "concat",
                [ Ast.E_literal (Xdm_atomic.String doc_base); g arg ] )
      in
      Ast.E_call (Qname.make ~uri:Rest.namespace ~prefix:"rest" "get", [ uri_expr ])
  | e -> map_expr g e

(* structural map over one level of the AST *)
and map_expr g (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.E_literal _ | Ast.E_var _ | Ast.E_context_item | Ast.E_root
  | Ast.E_text_literal _ ->
      e
  | Ast.E_sequence es -> Ast.E_sequence (List.map g es)
  | Ast.E_range (a, b) -> Ast.E_range (g a, g b)
  | Ast.E_if (c, t, f) -> Ast.E_if (g c, g t, g f)
  | Ast.E_or (a, b) -> Ast.E_or (g a, g b)
  | Ast.E_and (a, b) -> Ast.E_and (g a, g b)
  | Ast.E_value_comp (op, a, b) -> Ast.E_value_comp (op, g a, g b)
  | Ast.E_general_comp (op, a, b) -> Ast.E_general_comp (op, g a, g b)
  | Ast.E_node_comp (op, a, b) -> Ast.E_node_comp (op, g a, g b)
  | Ast.E_ftcontains (a, sel) -> Ast.E_ftcontains (g a, sel)
  | Ast.E_arith (op, a, b) -> Ast.E_arith (op, g a, g b)
  | Ast.E_unary_minus a -> Ast.E_unary_minus (g a)
  | Ast.E_union (a, b) -> Ast.E_union (g a, g b)
  | Ast.E_intersect (a, b) -> Ast.E_intersect (g a, g b)
  | Ast.E_except (a, b) -> Ast.E_except (g a, g b)
  | Ast.E_instance_of (a, st) -> Ast.E_instance_of (g a, st)
  | Ast.E_treat_as (a, st) -> Ast.E_treat_as (g a, st)
  | Ast.E_castable_as (a, ty, o) -> Ast.E_castable_as (g a, ty, o)
  | Ast.E_cast_as (a, ty, o) -> Ast.E_cast_as (g a, ty, o)
  | Ast.E_step (axis, test, preds) -> Ast.E_step (axis, test, List.map g preds)
  | Ast.E_path (a, b) -> Ast.E_path (g a, g b)
  | Ast.E_filter (a, preds) -> Ast.E_filter (g a, List.map g preds)
  | Ast.E_call (qn, args) -> Ast.E_call (qn, List.map g args)
  | Ast.E_ordered a -> Ast.E_ordered (g a)
  | Ast.E_unordered a -> Ast.E_unordered (g a)
  | Ast.E_enclosed a -> Ast.E_enclosed (g a)
  | Ast.E_flwor { clauses; where; order; return } ->
      Ast.E_flwor
        {
          clauses =
            List.map
              (function
                | Ast.For_clause { var; pos_var; var_type; source } ->
                    Ast.For_clause { var; pos_var; var_type; source = g source }
                | Ast.Let_clause { var; var_type; value } ->
                    Ast.Let_clause { var; var_type; value = g value })
              clauses;
          where = Option.map g where;
          order = List.map (fun o -> { o with Ast.key = g o.Ast.key }) order;
          return = g return;
        }
  | Ast.E_hash_join j ->
      Ast.E_hash_join
        {
          j with
          jleft_source = g j.jleft_source;
          jleft_key = g j.jleft_key;
          jright_source = g j.jright_source;
          jright_key = g j.jright_key;
          jwhere = Option.map g j.jwhere;
          jorder = List.map (fun o -> { o with Ast.key = g o.Ast.key }) j.jorder;
          jreturn = g j.jreturn;
        }
  | Ast.E_quantified (q, binds, body) ->
      Ast.E_quantified (q, List.map (fun (v, t, e) -> (v, t, g e)) binds, g body)
  | Ast.E_typeswitch (op, cases, (dv, db)) ->
      Ast.E_typeswitch
        ( g op,
          List.map (fun c -> { c with Ast.case_body = g c.Ast.case_body }) cases,
          (dv, g db) )
  | Ast.E_direct_element { name; attributes; children } ->
      Ast.E_direct_element
        {
          name;
          attributes =
            List.map
              (fun (an, parts) ->
                ( an,
                  List.map
                    (function
                      | Ast.A_text t -> Ast.A_text t
                      | Ast.A_enclosed e -> Ast.A_enclosed (g e))
                    parts ))
              attributes;
          children = List.map g children;
        }
  | Ast.E_computed_element (a, b) -> Ast.E_computed_element (g a, g b)
  | Ast.E_computed_attribute (a, b) -> Ast.E_computed_attribute (g a, g b)
  | Ast.E_computed_text a -> Ast.E_computed_text (g a)
  | Ast.E_computed_comment a -> Ast.E_computed_comment (g a)
  | Ast.E_computed_pi (a, b) -> Ast.E_computed_pi (g a, g b)
  | Ast.E_computed_document a -> Ast.E_computed_document (g a)
  | Ast.E_insert (p, a, b) -> Ast.E_insert (p, g a, g b)
  | Ast.E_delete a -> Ast.E_delete (g a)
  | Ast.E_replace { value_of; target; source } ->
      Ast.E_replace { value_of; target = g target; source = g source }
  | Ast.E_rename (a, b) -> Ast.E_rename (g a, g b)
  | Ast.E_transform (binds, m, r) ->
      Ast.E_transform (List.map (fun (v, e) -> (v, g e)) binds, g m, g r)
  | Ast.E_block stmts ->
      Ast.E_block
        (List.map
           (function
             | Ast.S_var_decl (v, t, e) -> Ast.S_var_decl (v, t, Option.map g e)
             | Ast.S_assign (v, e) -> Ast.S_assign (v, g e)
             | Ast.S_while (c, body) ->
                 Ast.S_while
                   ( g c,
                     List.map
                       (function Ast.S_expr e -> Ast.S_expr (g e) | s -> s)
                       body )
             | (Ast.S_break | Ast.S_continue) as st -> st
             | Ast.S_exit_with e -> Ast.S_exit_with (g e)
             | Ast.S_expr e -> Ast.S_expr (g e))
           stmts)
  | Ast.E_event_attach { event; binding; target; listener } ->
      Ast.E_event_attach { event = g event; binding; target = g target; listener }
  | Ast.E_event_detach { event; target; listener } ->
      Ast.E_event_detach { event = g event; target = g target; listener }
  | Ast.E_event_trigger { event; target } ->
      Ast.E_event_trigger { event = g event; target = g target }
  | Ast.E_set_style { property; target; value } ->
      Ast.E_set_style { property = g property; target = g target; value = g value }
  | Ast.E_get_style { property; target } ->
      Ast.E_get_style { property = g property; target = g target }

(* Replace dynamic children with placeholder slots; collect the moved
   expressions as (slot id, expr) pairs. *)
let extract_dynamic body =
  let slots = ref [] in
  let fresh =
    let n = ref 0 in
    fun () ->
      incr n;
      Printf.sprintf "xqib-slot-%d" !n
  in
  let placeholder id =
    Ast.E_direct_element
      {
        name = Qname.make "span";
        attributes = [ (Qname.make "id", [ Ast.A_text id ]) ];
        children = [];
      }
  in
  let rec walk (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.E_direct_element { name; attributes; children }
      when List.for_all
             (fun (_, parts) ->
               List.for_all
                 (function Ast.A_text _ -> true | Ast.A_enclosed _ -> false)
                 parts)
             attributes ->
        (* static element shell: recurse into children *)
        Ast.E_direct_element { name; attributes; children = List.map walk children }
    | Ast.E_text_literal _ -> e
    | dynamic ->
        let id = fresh () in
        slots := (id, dynamic) :: !slots;
        placeholder id
  in
  let body' =
    match body with
    | Ast.E_direct_element _ -> walk body
    | _ -> err "page body must be an element constructor"
  in
  (body', List.rev !slots)

let slot_insert (id, expr) =
  (* insert nodes (expr) into //*[@id = 'slot'] *)
  let target =
    Ast.E_path
      ( Ast.E_path
          ( Ast.E_root,
            Ast.E_step (Ast.Descendant_or_self, Ast.Kind_test Ast.Any_kind, []) ),
        Ast.E_step
          ( Ast.Child,
            Ast.Wildcard,
            [
              Ast.E_general_comp
                ( Ast.Eq,
                  Ast.E_step (Ast.Attribute_axis, Ast.Name_test (Qname.make "id"), []),
                  Ast.E_literal (Xdm_atomic.String id) );
            ] ) )
  in
  Ast.E_insert (Ast.Into, expr, target)

(* Evaluate the static skeleton to a DOM and inject the client script
   into <head> (created if missing), then serialize the page. *)
let emit_page ~script_text skeleton =
  let static = Xquery.Engine.default_static () in
  let ctx = Xquery.Dynamic_context.create static in
  let doc_el =
    match Xquery.Eval.eval ctx skeleton with
    | [ Xdm_item.Node n ] -> n
    | _ -> err "page skeleton did not evaluate to a single element"
  in
  (match script_text with
  | None -> ()
  | Some text ->
      let script =
        Dom.create_element
          ~attrs:[ (Qname.make "type", "text/xqueryp") ]
          (Qname.make "script")
      in
      Dom.append_child ~parent:script (Dom.create_text ("\n" ^ text ^ "\n"));
      let head =
        match Dom.get_elements_by_local_name doc_el "head" with
        | h :: _ when not (Dom.equal h doc_el) -> h
        | _ ->
            (* the script tag is created if the head does not exist (§6.1) *)
            let h = Dom.create_element (Qname.make "head") in
            Dom.insert_first ~parent:doc_el h;
            h
      in
      Dom.append_child ~parent:head script);
  Dom.serialize doc_el

let migrate ~doc_base source =
  let static = Xquery.Engine.default_static () in
  let prog = Xquery.Parser.parse_program static source in
  let body =
    match prog.Ast.body with
    | Some b -> b
    | None -> err "server page has no body expression"
  in
  let skeleton, slots = extract_dynamic body in
  if slots = [] then emit_page ~script_text:None skeleton
  else begin
    let inserts =
      List.map (fun s -> rewrite_doc ~doc_base (slot_insert s)) slots
    in
    let prolog =
      List.map
        (function
          | Ast.P_function f ->
              Ast.P_function
                { f with Ast.body = Option.map (rewrite_doc ~doc_base) f.Ast.body }
          | Ast.P_variable (v, t, e) ->
              Ast.P_variable (v, t, Option.map (rewrite_doc ~doc_base) e)
          | d -> d)
        prog.Ast.prolog
    in
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "declare namespace rest = \"%s\";\n" Rest.namespace);
    List.iter
      (fun d ->
        Buffer.add_string buf (Xquery.Ast_printer.prolog_decl_to_source d);
        Buffer.add_string buf ";\n")
      prolog;
    (* the client code runs as a sequential local:main() (the paper's
       Â§5.1 model): each insert's effects are visible to the next
       statement, so event registrations see inserted elements *)
    let main_decl =
      Ast.P_function
        {
          Ast.fname = Qname.make ~uri:Qname.Ns.local ~prefix:"local" "main";
          params = [];
          return_type = None;
          body = Some (Ast.E_block (List.map (fun i -> Ast.S_expr i) inserts));
          kind = Ast.F_sequential;
        }
    in
    Buffer.add_string buf (Xquery.Ast_printer.prolog_decl_to_source main_decl);
    Buffer.add_string buf ";\n";
    Buffer.add_string buf "local:main()";
    emit_page ~script_text:(Some (Buffer.contents buf)) skeleton
  end

let migrate_server_page server ~path ~client_path =
  match App_server.page_source server ~path with
  | None -> err "no XQuery page registered at %s" path
  | Some source ->
      let doc_base = Doc_store.uri_of ~host:(App_server.host server) ~name:"" in
      let client = migrate ~doc_base source in
      App_server.add_static_page server ~path:client_path client;
      client
