(** Fleet-scale session simulation over virtual time (ROADMAP item 1).

    Drives N concurrent simulated browser sessions — each with its own
    window tree, local store, cookie jar, think-time PRNG and retry
    state — against a shared {!App_server}, interleaved on the single
    {!Virtual_clock} task queue. Combined with the server's request
    queue ({!App_server.set_queue}) and {!Http_sim} fault injection,
    one process deterministically models thousands of sessions and
    measures the server-side latency distribution under load — the
    instrument behind T15's server-rendered vs migrated (F2)
    comparison. *)

type config = {
  sessions : int;  (** concurrent sessions *)
  tenants : int;  (** sessions are assigned round-robin to tenants *)
  visits : int;  (** page visits per session *)
  page_path : string;  (** path browsed each visit (tenant prefix added) *)
  seed : int;  (** master seed: arrival stagger + per-session seeds *)
  spread : float;  (** session start times spread over [0, spread) s *)
  think_time : float;
      (** mean think time between visits; each gap is uniform in
          [0.5x, 1.5x] from the session's own PRNG *)
  retry : Retry.policy;  (** per-session page-load resilience *)
  max_tasks : int option;
      (** clock budget; [None] scales with [sessions * visits] so big
          fleets never trip the default 100k guard *)
  capture_docs : bool;
      (** serialize each session's final document into the report
          (used by the N=1 differential test; off for big fleets) *)
}

(** 100 sessions x 3 visits, 1 tenant, seed 1, 10 s spread, 5 s think,
    4 retry attempts. *)
val default_config : config

type report = {
  sessions : int;
  tenants : int;
  visits : int;  (** config echo *)
  pages_ok : int;  (** visits whose page load completed *)
  pages_shed : int;  (** visits that ended in a 503 (shed, retries out) *)
  pages_lost : int;  (** visits lost to other network failures *)
  server_evals : int;  (** server-side XQuery evaluations (delta) *)
  server_requests : int;  (** requests reaching the server host (delta) *)
  sheds : int;  (** 503s issued by admission control *)
  max_queue_depth : int;
  served_requests : int;  (** requests admitted through the queue *)
  tenant_compiles : int;  (** lazy compiles into tenant partitions *)
  attempts : int;  (** page-load attempts across the fleet *)
  retries : int;  (** attempts beyond the first *)
  client_cache_hits : int;
      (** compiled-query-cache hits observed from inside sessions (the
          per-session view of the shared client cache) *)
  p50 : float;
  p99 : float;
  p999 : float;  (** server request latency percentiles, virtual s *)
  mean_latency : float;
  elapsed : float;  (** total virtual seconds *)
  pages_per_sec : float;  (** pages_ok / elapsed *)
  session_docs : string list;  (** only when [capture_docs] *)
}

(** The deterministic seed of session [i] under a fleet seed — the
    session's browser is [B.create ~seed:(session_seed ~seed i) ...],
    exposed so the differential test can rebuild session 0 exactly. *)
val session_seed : seed:int -> int -> int

(** Nearest-rank percentile of an ascending-sorted array. *)
val percentile : float array -> float -> float

(** Run the fleet to completion (the virtual clock drains) and report.
    Sets the server's tenant count from the config. Deterministic for
    a given config: equal seeds give byte-identical reports. *)
val run : ?config:config -> App_server.t -> report

val pp_report : Format.formatter -> report -> unit
