module J = Minijs.Js_interp

type t = { database : Sql_lite.t; mutable renders : int }

exception Render_error of string

let create ?db () =
  { database = (match db with Some d -> d | None -> Sql_lite.create ()); renders = 0 }

let db t = t.database
let render_count t = t.renders

type segment = Text of string | Code of string | Expr of string

let split_template template =
  let n = String.length template in
  let segments = ref [] in
  let rec go i =
    if i >= n then ()
    else
      match
        let rec find j =
          if j + 1 >= n then None
          else if template.[j] = '<' && template.[j + 1] = '%' then Some j
          else find (j + 1)
        in
        find i
      with
      | None -> segments := Text (String.sub template i (n - i)) :: !segments
      | Some j ->
          if j > i then segments := Text (String.sub template i (j - i)) :: !segments;
          let is_expr = j + 2 < n && template.[j + 2] = '=' in
          let start = if is_expr then j + 3 else j + 2 in
          let rec close k =
            if k + 1 >= n then raise (Render_error "unterminated <% ... %>")
            else if template.[k] = '%' && template.[k + 1] = '>' then k
            else close (k + 1)
          in
          let e = close start in
          let body = String.sub template start (e - start) in
          segments := (if is_expr then Expr body else Code body) :: !segments;
          go (e + 2)
  in
  go 0;
  List.rev !segments

(* Templates are re-rendered on every request but their segmentation
   never changes; key the cache on the template text itself. *)
let template_cache : segment list Xquery.Query_cache.t =
  Xquery.Query_cache.create ~name:"template-cache" ~capacity:64 ()

let segments_of template =
  match Xquery.Query_cache.find template_cache template with
  | Some segs -> segs
  | None ->
      let segs = split_template template in
      Xquery.Query_cache.add template_cache template
        ~cost:(String.length template) segs;
      segs

let sql_value_to_js = function
  | Sql_lite.Int i -> J.vnum (float_of_int i)
  | Sql_lite.Float f -> J.vnum f
  | Sql_lite.Text s -> J.vstr s
  | Sql_lite.Null -> J.vstr ""

let result_set rows =
  (* paper-style java.sql.ResultSet: next() + getString(1-based) *)
  let remaining = ref rows in
  let current = ref [] in
  J.vplain
    [
      ( "next",
        J.vnative "next" (fun _ _ ->
            match !remaining with
            | [] -> J.vbool false
            | row :: rest ->
                current := row;
                remaining := rest;
                J.vbool true) );
      ( "getString",
        J.vnative "getString" (fun _ args ->
            let i = int_of_float (J.to_number (List.nth args 0)) in
            match List.nth_opt !current (i - 1) with
            | Some (_, v) -> J.vstr (Sql_lite.value_to_string v)
            | None -> J.vstr "") );
      ("close", J.vnative "close" (fun _ _ -> J.vbool true));
    ]

let render t template =
  t.renders <- t.renders + 1;
  let segments = segments_of template in
  let out = Buffer.create 512 in
  (* a headless browser/window hosts the scriptlet environment *)
  let b = Xqib.Browser.create () in
  let w = b.Xqib.Browser.top_window in
  let println =
    J.vnative "println" (fun _ args ->
        List.iter (fun v -> Buffer.add_string out (J.to_string v)) args;
        Buffer.add_char out '\n';
        J.vstr "")
  in
  let print =
    J.vnative "print" (fun _ args ->
        List.iter (fun v -> Buffer.add_string out (J.to_string v)) args;
        J.vstr "")
  in
  J.define_global b w "out" (J.vplain [ ("println", println); ("print", print) ]);
  let query sql =
    try Sql_lite.query t.database sql
    with Sql_lite.Sql_error m -> raise (Render_error ("SQL: " ^ m))
  in
  J.define_global b w "sql"
    (J.vplain
       [
         ( "query",
           J.vnative "query" (fun _ args ->
               let rows = query (J.to_string (List.nth args 0)) in
               J.varray
                 (List.map
                    (fun row ->
                      J.vplain (List.map (fun (c, v) -> (c, sql_value_to_js v)) row))
                    rows)) );
       ]);
  J.define_global b w "statement"
    (J.vplain
       [
         ( "executeQuery",
           J.vnative "executeQuery" (fun _ args ->
               result_set (query (J.to_string (List.nth args 0)))) );
       ]);
  List.iter
    (fun seg ->
      match seg with
      | Text s -> Buffer.add_string out s
      | Code c -> (
          try J.run_script b w c
          with J.Js_error m -> raise (Render_error ("scriptlet: " ^ m)))
      | Expr e -> (
          try Buffer.add_string out (J.to_string (J.eval_in_window b w e))
          with J.Js_error m -> raise (Render_error ("expression: " ^ m))))
    segments;
  J.reset_window w;
  Buffer.contents out

let register_page t http ~host ~path template =
  let previous = Http_sim.find_host http ~host in
  let handler req =
    if String.equal req.Http_sim.path path then
      Http_sim.ok ~content_type:"text/html" (render t template)
    else
      match previous with
      | Some h -> h req
      | None -> Http_sim.not_found req.Http_sim.path
  in
  Http_sim.register_host http ~host handler
