module B = Xqib.Browser
module P = Xqib.Page

type config = {
  sessions : int;
  tenants : int;
  visits : int;
  page_path : string;
  seed : int;
  spread : float;
  think_time : float;
  retry : Retry.policy;
  max_tasks : int option;
  capture_docs : bool;
}

let default_config =
  {
    sessions = 100;
    tenants = 1;
    visits = 3;
    page_path = "/";
    seed = 1;
    spread = 10.;
    think_time = 5.;
    retry = { Retry.default with Retry.max_attempts = 4 };
    max_tasks = None;
    capture_docs = false;
  }

type report = {
  sessions : int;
  tenants : int;
  visits : int;
  pages_ok : int;
  pages_shed : int;
  pages_lost : int;
  server_evals : int;
  server_requests : int;
  sheds : int;
  max_queue_depth : int;
  served_requests : int;
  tenant_compiles : int;
  attempts : int;
  retries : int;
  client_cache_hits : int;
  p50 : float;
  p99 : float;
  p999 : float;
  mean_latency : float;
  elapsed : float;
  pages_per_sec : float;
  session_docs : string list;
}

(* one simulated user: an independent browser (own window tree, local
   store, retry PRNG), a cookie jar carrying its session identity, a
   think-time PRNG, and per-session counters *)
type session = {
  id : int;
  tenant : int;
  browser : B.t;
  think_prng : Prng.t;
  cookies : (string * string) list;
  mutable ok : int;
  mutable shed : int;
  mutable lost : int;
  mutable cache_hits : int;
}

(* deterministic per-session seeds, derived from the fleet seed; the
   differential N=1 test reconstructs a session's browser from this *)
let session_seed ~seed i = seed + (7919 * (i + 1))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let contains_substring s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let run ?(config = default_config) server =
  if config.sessions < 1 then invalid_arg "Fleet.run: need at least one session";
  if config.tenants < 1 then invalid_arg "Fleet.run: need at least one tenant";
  let http = App_server.http server in
  let clock = Http_sim.clock http in
  let host = App_server.host server in
  App_server.set_tenants server config.tenants;
  let evals0 = App_server.evaluations server in
  let requests0 = Http_sim.request_count http ~host in
  let latency_skip = Array.length (App_server.latencies server) in
  let start_prng = Prng.create ~seed:config.seed in
  let qc_hits () = (Xquery.Query_cache.stats Xquery.Engine.query_cache).Xquery.Query_cache.hits in
  let make_session i =
    let seed = session_seed ~seed:config.seed i in
    let browser =
      (* cache:false — every visit exercises the network, so the
         server-side load scales with the fleet, like T7's workload *)
      B.create ~cache:false ~clock ~http ~retry:config.retry ~seed ()
    in
    {
      id = i;
      tenant = i mod config.tenants;
      browser;
      think_prng = Prng.create ~seed:(seed + 1);
      cookies = [ ("xqib-session", Printf.sprintf "s%d-%d" config.seed i) ];
      ok = 0;
      shed = 0;
      lost = 0;
      cache_hits = 0;
    }
  in
  let sessions = Array.init config.sessions make_session in
  let uri_for s =
    let path =
      if config.tenants > 1 then Printf.sprintf "/t%d%s" s.tenant config.page_path
      else config.page_path
    in
    "http://" ^ host ^ path
  in
  let visit_once s =
    let hits0 = qc_hits () in
    (* no B.run here: the browser shares the fleet clock, so a visit
       draining the queue would nest into other sessions' tasks and
       bypass the fleet's task budget — any async work a page schedules
       (behind calls) runs in the global loop below instead *)
    (match P.browse s.browser (uri_for s) with
    | () -> s.ok <- s.ok + 1
    | exception Xquery.Xq_error.Error e ->
        (* SEBR0404 carries the final status: 503 means the load was
           shed (and retries exhausted); anything else is plain loss *)
        if contains_substring (Xquery.Xq_error.to_string e) "status 503" then
          s.shed <- s.shed + 1
        else s.lost <- s.lost + 1);
    s.cache_hits <- s.cache_hits + (qc_hits () - hits0)
  in
  let rec visit s n () =
    visit_once s;
    if n + 1 < config.visits then
      let think = config.think_time *. (0.5 +. Prng.float s.think_prng) in
      Virtual_clock.schedule clock ~delay:think (visit s (n + 1))
  in
  (* stagger session arrivals over [0, spread): draws happen in session
     order from the fleet PRNG, so the schedule is seed-deterministic *)
  Array.iter
    (fun s ->
      let offset = Prng.float start_prng *. config.spread in
      Virtual_clock.schedule clock ~delay:offset (visit s 0))
    sessions;
  let max_tasks =
    match config.max_tasks with
    | Some n -> n
    | None -> max 100_000 (config.sessions * config.visits * 64)
  in
  Virtual_clock.run_until_idle ~max_tasks clock;
  let lat = App_server.latencies server in
  let lat = Array.sub lat latency_skip (Array.length lat - latency_skip) in
  Array.sort compare lat;
  let sum = Array.fold_left ( +. ) 0. lat in
  let total f = Array.fold_left (fun acc s -> acc + f s) 0 sessions in
  let elapsed = Virtual_clock.now clock in
  let pages_ok = total (fun s -> s.ok) in
  {
    sessions = config.sessions;
    tenants = config.tenants;
    visits = config.visits;
    pages_ok;
    pages_shed = total (fun s -> s.shed);
    pages_lost = total (fun s -> s.lost);
    server_evals = App_server.evaluations server - evals0;
    server_requests = Http_sim.request_count http ~host - requests0;
    sheds = App_server.sheds server;
    max_queue_depth = App_server.max_queue_depth server;
    served_requests = App_server.served_requests server;
    tenant_compiles = App_server.tenant_compiles server;
    attempts = total (fun s -> s.browser.B.net_stats.Retry.attempts);
    retries = total (fun s -> s.browser.B.net_stats.Retry.retries);
    client_cache_hits = total (fun s -> s.cache_hits);
    p50 = percentile lat 0.50;
    p99 = percentile lat 0.99;
    p999 = percentile lat 0.999;
    mean_latency = (if Array.length lat = 0 then 0. else sum /. float_of_int (Array.length lat));
    elapsed;
    pages_per_sec = (if elapsed > 0. then float_of_int pages_ok /. elapsed else 0.);
    session_docs =
      (if config.capture_docs then
         Array.to_list
           (Array.map (fun s -> Dom.serialize (B.document s.browser)) sessions)
       else []);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fleet: %d sessions x %d visits, %d tenant(s)@,\
     pages: %d ok, %d shed, %d lost@,\
     server: %d evals, %d requests, %d shed, queue depth max %d@,\
     latency: p50 %.3fs p99 %.3fs p999 %.3fs mean %.3fs@,\
     throughput: %.2f pages/s over %.1f virtual s@]"
    r.sessions r.visits r.tenants r.pages_ok r.pages_shed r.pages_lost
    r.server_evals r.server_requests r.sheds r.max_queue_depth r.p50 r.p99
    r.p999 r.mean_latency r.pages_per_sec r.elapsed
