let enabled = ref false
let set_enabled b = enabled := b

let clock = ref (fun () -> 0.)
let set_clock f = clock := f

(* ---------------- ring-buffer sink ---------------- *)

let capacity = ref 1024
let sink : Span.t Queue.t = Queue.create ()
let dropped_count = ref 0

let set_capacity n =
  capacity := max 1 n;
  while Queue.length sink > !capacity do
    ignore (Queue.pop sink);
    incr dropped_count
  done

let record_root span =
  Queue.push span sink;
  if Queue.length sink > !capacity then begin
    ignore (Queue.pop sink);
    incr dropped_count
  end

let roots () = List.of_seq (Queue.to_seq sink)
let dropped () = !dropped_count

let reset () =
  Queue.clear sink;
  dropped_count := 0

(* ---------------- open-span stack ---------------- *)

type frame = {
  f_name : string;
  mutable f_attrs : (string * string) list;  (* reversed *)
  f_start_v : float;
  f_start_cpu : float;
  mutable f_children : Span.t list;  (* reversed *)
}

let stack : frame list ref = ref []

let add_attr k v =
  if !enabled then
    match !stack with
    | [] -> ()
    | f :: _ -> f.f_attrs <- (k, v) :: f.f_attrs

let open_span name attrs =
  let f =
    {
      f_name = name;
      f_attrs = List.rev attrs;
      f_start_v = !clock ();
      f_start_cpu = Sys.time ();
      f_children = [];
    }
  in
  stack := f :: !stack

let close_span () =
  match !stack with
  | [] -> ()
  | f :: rest ->
      stack := rest;
      let span =
        {
          Span.name = f.f_name;
          attrs = List.rev f.f_attrs;
          start_v = f.f_start_v;
          dur_v = !clock () -. f.f_start_v;
          cpu_ms = (Sys.time () -. f.f_start_cpu) *. 1000.;
          children = List.rev f.f_children;
        }
      in
      (match rest with
      | [] -> record_root span
      | parent :: _ -> parent.f_children <- span :: parent.f_children)

let with_span ?(attrs = []) name f =
  if not !enabled then f ()
  else begin
    open_span name attrs;
    match f () with
    | v ->
        close_span ();
        v
    | exception exn ->
        add_attr "error" (Printexc.to_string exn);
        close_span ();
        raise exn
  end

(* ---------------- export ---------------- *)

let export_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"version\": 1, \"dropped\": %d, \"spans\": [" !dropped_count);
  Queue.iter
    (fun s ->
      if Buffer.nth buf (Buffer.length buf - 1) <> '[' then
        Buffer.add_string buf ", ";
      Span.to_json buf s)
    sink;
  Buffer.add_string buf "]}";
  Buffer.contents buf
