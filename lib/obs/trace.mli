(** Hierarchical tracing of the engine pipeline.

    The engine's processing path (event loop -> compile -> evaluate ->
    apply PUL -> render, the paper's Fig. 1) is annotated with
    {!with_span} hooks. When tracing is {!enabled}, each hook records a
    {!Span.t} stamped with the virtual clock (see {!set_clock});
    completed root spans land in a bounded ring-buffer sink that can be
    exported as JSON.

    Zero-cost discipline: every hook is guarded by the [enabled] flag.
    When disabled (the default), [with_span] runs its thunk directly
    and records nothing — the only residue is a flag load and branch,
    bounded by bench T9. Callers that would allocate attribute lists
    should test [!enabled] themselves before building them. *)

(** The master switch. Exposed as a [ref] so hot paths can guard with a
    plain dereference. *)
val enabled : bool ref

val set_enabled : bool -> unit

(** Source of virtual time for span stamps. Defaults to a constant 0.;
    hosts install their [Virtual_clock] (e.g.
    [Trace.set_clock (fun () -> Virtual_clock.now clock)]). *)
val set_clock : (unit -> float) -> unit

(** Capacity of the ring-buffer sink, in root spans (default 1024).
    When full, the oldest root span is dropped and counted. *)
val set_capacity : int -> unit

(** [with_span name f] runs [f] inside a span named [name]. Nested
    calls build the span tree; the span is closed (and recorded) even
    if [f] raises, with an ["error"] attribute added. When tracing is
    disabled this is just [f ()]. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span, if any. No-op when
    tracing is disabled or outside any span. *)
val add_attr : string -> string -> unit

(** Completed root spans currently in the sink, oldest first. *)
val roots : unit -> Span.t list

(** Root spans dropped because the sink was full. *)
val dropped : unit -> int

(** Drop all recorded spans (the enabled flag is untouched). *)
val reset : unit -> unit

(** The sink as a JSON document:
    [{"version": 1, "dropped": N, "spans": [...]}]. *)
val export_json : unit -> string
