let enabled = ref false
let set_enabled b = enabled := b

let bucket_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100. |]

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;
}

type hacc = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let counter_table : (string, int ref) Hashtbl.t = Hashtbl.create 64
let histo_table : (string, hacc) Hashtbl.t = Hashtbl.create 16

let incr ?(by = 1) name =
  if !enabled then
    match Hashtbl.find_opt counter_table name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add counter_table name (ref by)

let observe name v =
  if !enabled then begin
    let h =
      match Hashtbl.find_opt histo_table name with
      | Some h -> h
      | None ->
          let h =
            {
              h_count = 0;
              h_sum = 0.;
              h_min = Float.infinity;
              h_max = Float.neg_infinity;
              h_buckets = Array.make (Array.length bucket_bounds + 1) 0;
            }
          in
          Hashtbl.add histo_table name h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let rec slot i =
      if i >= Array.length bucket_bounds then i
      else if v <= bucket_bounds.(i) then i
      else slot (i + 1)
    in
    let i = slot 0 in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1
  end

let counter name =
  match Hashtbl.find_opt counter_table name with Some r -> !r | None -> 0

let sorted_bindings table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () =
  List.map (fun (k, r) -> (k, !r)) (sorted_bindings counter_table)

let freeze h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    buckets = Array.copy h.h_buckets;
  }

let histograms () =
  List.map (fun (k, h) -> (k, freeze h)) (sorted_bindings histo_table)

let reset () =
  Hashtbl.reset counter_table;
  Hashtbl.reset histo_table

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Json.quote k);
      Buffer.add_string buf (Printf.sprintf ": %d" v))
    (counters ());
  Buffer.add_string buf "}, \"histograms\": {";
  List.iteri
    (fun i (k, h) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Json.quote k);
      Buffer.add_string buf
        (Printf.sprintf
           ": {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"buckets\": [%s]}"
           h.count (Json.number h.sum)
           (Json.number (if h.count = 0 then 0. else h.min))
           (Json.number (if h.count = 0 then 0. else h.max))
           (String.concat ", " (List.map string_of_int (Array.to_list h.buckets)))))
    (histograms ());
  Buffer.add_string buf "}}";
  Buffer.contents buf
