(** Minimal JSON support for the observability exporters.

    The emitters in {!Trace} and {!Metrics} print JSON by hand; this
    module supplies the string escaping they share and an independent
    validating parser, so the CI gate can check an exported trace for
    well-formedness without pulling in a JSON dependency. *)

(** Render a string as a quoted JSON string literal (escaping quotes,
    backslashes and control characters; bytes >= 0x80 pass through,
    which is correct for UTF-8 payloads). *)
val quote : string -> string

(** Render a float as a JSON number ([null] for nan/infinities, which
    JSON cannot represent). *)
val number : float -> string

(** Parse the whole input as one JSON value. Returns [Error msg] (with
    a byte offset in the message) on the first syntax error, or if
    trailing garbage follows the value. *)
val validate : string -> (unit, string) result
