let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* ---------------- validating parser ---------------- *)

exception Bad of int * string

let validate s =
  let n = String.length s in
  let fail i msg = raise (Bad (i, msg)) in
  let rec skip_ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r')
    then skip_ws (i + 1)
    else i
  in
  let expect i c =
    if i < n && s.[i] = c then i + 1
    else fail i (Printf.sprintf "expected %c" c)
  in
  let rec value i =
    let i = skip_ws i in
    if i >= n then fail i "unexpected end of input"
    else
      match s.[i] with
      | '{' -> obj (i + 1)
      | '[' -> arr (i + 1)
      | '"' -> string_lit (i + 1)
      | 't' -> literal i "true"
      | 'f' -> literal i "false"
      | 'n' -> literal i "null"
      | '-' | '0' .. '9' -> number_lit i
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  and literal i lit =
    let m = String.length lit in
    if i + m <= n && String.sub s i m = lit then i + m
    else fail i ("bad literal, expected " ^ lit)
  and string_lit i =
    (* i points just after the opening quote *)
    if i >= n then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> i + 1
      | '\\' ->
          if i + 1 >= n then fail i "unterminated escape"
          else (
            match s.[i + 1] with
            | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
                string_lit (i + 2)
            | 'u' ->
                if i + 5 >= n then fail i "short \\u escape"
                else begin
                  String.iter
                    (function
                      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                      | _ -> fail i "bad \\u escape")
                    (String.sub s (i + 2) 4);
                  string_lit (i + 6)
                end
            | _ -> fail i "bad escape")
      | c when Char.code c < 0x20 -> fail i "control character in string"
      | _ -> string_lit (i + 1)
  and number_lit i =
    let j = if s.[i] = '-' then i + 1 else i in
    let digits k =
      let k' = ref k in
      while !k' < n && s.[!k'] >= '0' && s.[!k'] <= '9' do incr k' done;
      if !k' = k then fail k "expected digit" else !k'
    in
    (* RFC 8259: the integer part is 0, or a nonzero digit followed by
       more digits — no leading zeros *)
    let j' = digits j in
    if s.[j] = '0' && j' > j + 1 then fail j "leading zero";
    let j = j' in
    let j = if j < n && s.[j] = '.' then digits (j + 1) else j in
    if j < n && (s.[j] = 'e' || s.[j] = 'E') then
      let j = j + 1 in
      let j = if j < n && (s.[j] = '+' || s.[j] = '-') then j + 1 else j in
      digits j
    else j
  and obj i =
    let i = skip_ws i in
    if i < n && s.[i] = '}' then i + 1
    else
      let rec members i =
        let i = skip_ws i in
        let i = expect i '"' in
        let i = string_lit i in
        let i = skip_ws i in
        let i = expect i ':' in
        let i = value i in
        let i = skip_ws i in
        if i < n && s.[i] = ',' then members (i + 1)
        else expect i '}'
      in
      members i
  and arr i =
    let i = skip_ws i in
    if i < n && s.[i] = ']' then i + 1
    else
      let rec elements i =
        let i = value i in
        let i = skip_ws i in
        if i < n && s.[i] = ',' then elements (i + 1)
        else expect i ']'
      in
      elements i
  in
  match
    let i = value 0 in
    let i = skip_ws i in
    if i <> n then fail i "trailing garbage after JSON value"
  with
  | () -> Ok ()
  | exception Bad (i, msg) ->
      Error (Printf.sprintf "invalid JSON at byte %d: %s" i msg)
