(** A finished span: one timed region of the engine's processing
    pipeline, with its child spans.

    Spans are created through {!Trace.with_span}; this module is the
    passive representation used by sinks and tests. Times are virtual
    seconds from the trace clock (see {!Trace.set_clock}), so a span
    tree lines up with the deterministic Virtual_clock timeline;
    [cpu_ms] additionally records processor time for profiling. *)

type t = {
  name : string;  (** taxonomy name, e.g. ["engine.compile"] *)
  attrs : (string * string) list;  (** in insertion order *)
  start_v : float;  (** virtual-clock seconds at entry *)
  dur_v : float;  (** virtual-clock seconds spent inside *)
  cpu_ms : float;  (** processor milliseconds spent inside *)
  children : t list;  (** completed sub-spans, oldest first *)
}

(** Total number of spans in the tree, the root included. *)
val count : t -> int

(** Depth-first search for the first span with this name. *)
val find : name:string -> t -> t option

(** All span names in the tree, preorder. *)
val names : t -> string list

(** Append the span tree as a JSON object to [buf]. *)
val to_json : Buffer.t -> t -> unit

(** Render a span tree as an indented one-line-per-span listing, for
    human consumption ([--trace] to a terminal). *)
val pp : Format.formatter -> t -> unit
