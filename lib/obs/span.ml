type t = {
  name : string;
  attrs : (string * string) list;
  start_v : float;
  dur_v : float;
  cpu_ms : float;
  children : t list;
}

let rec count s = List.fold_left (fun acc c -> acc + count c) 1 s.children

let rec find ~name s =
  if String.equal s.name name then Some s
  else List.find_map (find ~name) s.children

let rec names s = s.name :: List.concat_map names s.children

let rec to_json buf s =
  Buffer.add_string buf "{\"name\": ";
  Buffer.add_string buf (Json.quote s.name);
  Buffer.add_string buf (Printf.sprintf ", \"start\": %s" (Json.number s.start_v));
  Buffer.add_string buf (Printf.sprintf ", \"dur\": %s" (Json.number s.dur_v));
  Buffer.add_string buf (Printf.sprintf ", \"cpu_ms\": %s" (Json.number s.cpu_ms));
  if s.attrs <> [] then begin
    Buffer.add_string buf ", \"attrs\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Json.quote k);
        Buffer.add_string buf ": ";
        Buffer.add_string buf (Json.quote v))
      s.attrs;
    Buffer.add_char buf '}'
  end;
  if s.children <> [] then begin
    Buffer.add_string buf ", \"children\": [";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf ", ";
        to_json buf c)
      s.children;
    Buffer.add_char buf ']'
  end;
  Buffer.add_char buf '}'

let pp ppf span =
  let rec go indent s =
    Format.fprintf ppf "%s%s  start=%.6fs dur=%.6fs cpu=%.3fms" indent s.name
      s.start_v s.dur_v s.cpu_ms;
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) s.attrs;
    Format.pp_print_newline ppf ();
    List.iter (go (indent ^ "  ")) s.children
  in
  go "" span
