(** Monotonic counters and summary histograms.

    A process-wide registry keyed by metric name (dotted taxonomy, e.g.
    ["eval.step.child"], ["retry.backoff_s"]). Like {!Trace}, the
    registry is guarded by an {!enabled} flag and records nothing when
    disabled; hot paths should test [!enabled] before building metric
    names dynamically. *)

val enabled : bool ref
val set_enabled : bool -> unit

(** Add [by] (default 1) to a counter. No-op when disabled. *)
val incr : ?by:int -> string -> unit

(** Record one observation into a histogram. No-op when disabled. *)
val observe : string -> float -> unit

(** A histogram summary. [buckets.(i)] counts observations [<=
    bucket_bounds.(i)]; the final cell counts the overflow. *)
type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;
}

(** Upper bounds of the histogram buckets, in seconds-flavoured powers
    of ten from 1e-6 to 100; [Array.length bucket_bounds + 1] cells per
    histogram. *)
val bucket_bounds : float array

(** Current value of a counter (0 if never bumped). *)
val counter : string -> int

(** All counters, sorted by name. *)
val counters : unit -> (string * int) list

(** All histograms, sorted by name. *)
val histograms : unit -> (string * histogram) list

(** Drop every counter and histogram (the enabled flag is untouched). *)
val reset : unit -> unit

(** The whole registry as a JSON document:
    [{"counters": {...}, "histograms": {...}}]. *)
val to_json : unit -> string
