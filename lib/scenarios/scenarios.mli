(** The paper's application scenarios as reusable workloads, shared by
    the runnable examples and the benchmark harness:

    - §6.3 shopping cart, in both stacks: XQuery-only vs JSP+SQL+JS;
    - the multiplication-table demo (the 77-vs-29 lines claim);
    - §6.1 Elsevier Reference 2.0 article hierarchy + server page;
    - §6.2 maps/weather mash-up services;
    - §4.4 AJAX suggest page. *)

(** Count the non-empty, non-comment-only source lines of a program
    (the metric behind the paper's LoC comparison). *)
val loc : string -> int

(** {1 §6.3 shopping cart} *)

(** XML product catalogue with [n] products. *)
val products_xml : int -> string

(** The XQuery-only server page (paper §6.3 listing, second version). *)
val shop_xquery_page : string

(** The JSP+SQL+JavaScript baseline (paper §6.3 listing, first
    version): template for {!Appserver.Jsp_sim}. *)
val shop_jsp_template : string

(** Product database for the JSP baseline, [n] products. *)
val shop_db : int -> Appserver.Sql_lite.t

(** {1 Multiplication table demo} *)

(** Pure-JavaScript page building an [n]×[n] multiplication table on
    load (written in period style: verbose DOM API calls). *)
val mult_table_js_page : int -> string

(** The XQuery equivalent. *)
val mult_table_xquery_page : int -> string

(** {1 §6.1 Elsevier Reference 2.0} *)

type elsevier = {
  server : Appserver.App_server.t;
  article_count : int;
  browse_page_path : string;  (** the server-side XQuery page *)
  client_page_path : string;  (** the migrated client page *)
}

(** Build a synthetic journals/volumes/issues/articles hierarchy in the
    server's document store, register the Reference 2.0 browse page,
    and produce its migrated client version. *)
val make_elsevier :
  ?journals:int ->
  ?volumes:int ->
  ?issues:int ->
  ?articles:int ->
  Http_sim.t ->
  elsevier

(** {1 §6.1 under a flaky network (bench T7)} *)

type flaky_report = {
  visits : int;  (** user browse requests issued *)
  pages_ok : int;  (** page loads that completed (incl. retries) *)
  pages_lost : int;  (** page loads that failed every attempt *)
  queries_ok : int;  (** archive queries that produced a result *)
  queries_failed : int;  (** archive queries that errored *)
  fallback_hits : int;  (** queries served from the Local_store backup *)
  attempts : int;  (** total network attempts (pages + REST) *)
  retries : int;  (** attempts beyond the first *)
  server_requests : int;  (** requests that reached the Elsevier host *)
  injected_faults : int;
  elapsed : float;  (** total virtual seconds *)
}

(** The §6.1 browse workload on an adversarial network: [visits] user
    visits to the migrated Reference 2.0 client page, with
    {!Http_sim.uniform_faults} at [rate] (seeded with [seed]) on the
    Elsevier host from the second visit on. With [resilient], the
    browser retries with backoff (8 attempts) and falls back to the
    §2.4 client-side store for documents it has seen; without, it is
    the single-attempt baseline and loses requests. Deterministic for
    a given (rate, seed). *)
val run_elsevier_flaky :
  ?journals:int ->
  ?volumes:int ->
  ?issues:int ->
  ?articles:int ->
  ?visits:int ->
  rate:float ->
  seed:int ->
  resilient:bool ->
  unit ->
  flaky_report

(** {1 §6.1 at fleet scale (bench T15)}

    The Reference 2.0 workload driven by a {!Appserver.Fleet} of
    [sessions] concurrent browsers on one virtual clock, against a
    fresh Elsevier server whose request queue is configured with
    [service_cost] per server-side XQuery evaluation ([static_cost]
    per static/document request, default [service_cost /. 10]) and an
    optional [shed_depth] admission threshold. With [migrated] the
    fleet browses the migrated client page (server work = cheap static
    + document serving, evaluation happens client-side — F2); without
    it each visit evaluates the XQuery page on the server. [rate] > 0
    degrades the network with {!Http_sim.uniform_faults}. Deterministic
    for a given (seed, config): equal seeds give identical reports. *)
val run_fleet :
  ?journals:int ->
  ?volumes:int ->
  ?issues:int ->
  ?articles:int ->
  ?visits:int ->
  ?tenants:int ->
  ?spread:float ->
  ?think:float ->
  ?rate:float ->
  ?service_cost:float ->
  ?static_cost:float ->
  ?shed_depth:int ->
  ?retry:Retry.policy ->
  ?max_tasks:int ->
  ?capture_docs:bool ->
  sessions:int ->
  migrated:bool ->
  seed:int ->
  unit ->
  Appserver.Fleet.report

(** {1 §6.2 maps/weather mash-up} *)

(** Register the simulated map, weather and webcam services; returns
    the mash-up page HTML (JavaScript map + XQuery weather/webcams,
    both listening to the search click). *)
val setup_mashup : Http_sim.t -> string

(** {1 §4.4 AJAX suggest} *)

(** Register the hint service; returns the suggest page (the paper's
    [behind]-based AJAX example). *)
val setup_suggest : Http_sim.t -> string
