let loc source =
  String.split_on_char '\n' source
  |> List.filter (fun line ->
         let l = String.trim line in
         l <> "" && not (String.length l >= 2 && String.sub l 0 2 = "//"))
  |> List.length

(* ------------------------------------------------------------------ *)
(* §6.3 shopping cart                                                   *)

let products_xml n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<products>";
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "<product><name>product-%d</name><price>%d</price></product>" i
         (10 * i))
  done;
  Buffer.add_string buf "</products>";
  Buffer.contents buf

let shop_xquery_page =
  {|
declare updating function local:buy($evt, $obj) {
  insert node <p>{string($obj/@id)}</p> as first
  into //div[@id="shoppingcart"]
};
<html><head><title>Shop</title></head><body>
<div>Shopping cart</div>
<div id="shoppingcart"/>
<div>{
  for $p in doc("products.xml")//product
  return <div>{$p/name/text()}
    <input type='button' value='Buy' id='{$p/name}'/>
  </div>
}</div>
{ on event "onclick" at //input attach listener local:buy }
</body></html>|}

let shop_jsp_template =
  {|<html><head><script type='text/javascript'>
function buy(e) {
  newElement = document.createElement("p");
  elementText = document.createTextNode(e.target.getAttribute("id"));
  newElement.appendChild(elementText);
  var res = document.evaluate(
    "//div[@id='shoppingcart']", document, null,
    XPathResult.UNORDERED_NODE_SNAPSHOT_TYPE, null);
  res.snapshotItem(0).appendChild(newElement);
}
</script></head><body>
<div>Shopping cart</div>
<div id="shoppingcart"></div>
<%
var results = statement.executeQuery("SELECT * FROM PRODUCTS");
while (results.next()) {
  out.println("<div>");
  var prodName = results.getString(1);
  out.println(prodName);
  out.println("<input type='button' value='Buy'");
  out.println("id='" + prodName + "'");
  out.println("onclick='buy(event)'/></div>");
}
results.close();
%></body></html>|}

let shop_db n =
  let db = Appserver.Sql_lite.create () in
  Appserver.Sql_lite.create_table db ~name:"PRODUCTS" ~columns:[ "NAME"; "PRICE" ];
  for i = 1 to n do
    Appserver.Sql_lite.insert_row db ~table:"PRODUCTS"
      [ Appserver.Sql_lite.Text (Printf.sprintf "product-%d" i); Appserver.Sql_lite.Int (10 * i) ]
  done;
  db

(* ------------------------------------------------------------------ *)
(* multiplication table — period-style JavaScript vs XQuery            *)

let mult_table_js_page n =
  Printf.sprintf
    {|<html>
<head>
<script type="text/javascript">
function buildTable() {
  var size = %d;
  var container = document.getElementById("container");
  var table = document.createElement("table");
  var header = document.createElement("tr");
  var corner = document.createElement("th");
  corner.appendChild(document.createTextNode("*"));
  header.appendChild(corner);
  for (var j = 1; j <= size; j++) {
    var th = document.createElement("th");
    th.appendChild(document.createTextNode(String(j)));
    header.appendChild(th);
  }
  table.appendChild(header);
  for (var i = 1; i <= size; i++) {
    var row = document.createElement("tr");
    var label = document.createElement("th");
    label.appendChild(document.createTextNode(String(i)));
    row.appendChild(label);
    for (var k = 1; k <= size; k++) {
      var cell = document.createElement("td");
      var product = i * k;
      cell.appendChild(document.createTextNode(String(product)));
      if (product %% 2 == 0) {
        cell.setAttribute("class", "even");
      } else {
        cell.setAttribute("class", "odd");
      }
      row.appendChild(cell);
    }
    table.appendChild(row);
  }
  container.appendChild(table);
}
buildTable();
</script>
</head>
<body>
<div id="container"></div>
</body>
</html>|}
    n

let mult_table_xquery_page n =
  Printf.sprintf
    {|<html>
<head>
<script type="text/xquery">
insert node
  <table>
    <tr><th>*</th>{ for $j in 1 to %d return <th>{$j}</th> }</tr>
    { for $i in 1 to %d return
      <tr><th>{$i}</th>{
        for $k in 1 to %d
        let $p := $i * $k
        return <td class="{if ($p mod 2 = 0) then 'even' else 'odd'}">{$p}</td>
      }</tr> }
  </table>
into //div[@id="container"]
</script>
</head>
<body>
<div id="container"/>
</body>
</html>|}
    n n n

(* ------------------------------------------------------------------ *)
(* §6.1 Elsevier Reference 2.0                                          *)

type elsevier = {
  server : Appserver.App_server.t;
  article_count : int;
  browse_page_path : string;
  client_page_path : string;
}

let elsevier_store_xml ~journals ~volumes ~issues ~articles =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<archive>";
  let count = ref 0 in
  for j = 1 to journals do
    Buffer.add_string buf (Printf.sprintf "<journal name=\"Journal-%d\">" j);
    for v = 1 to volumes do
      Buffer.add_string buf (Printf.sprintf "<volume number=\"%d\">" v);
      for i = 1 to issues do
        Buffer.add_string buf (Printf.sprintf "<issue number=\"%d\">" i);
        for a = 1 to articles do
          incr count;
          Buffer.add_string buf
            (Printf.sprintf
               "<article id=\"a%d\"><title>Article %d</title><year>%d</year>\
                <references>\
                <ref year=\"%d\">Ref A</ref><ref year=\"%d\">Ref B</ref>\
                </references></article>"
               !count !count
               (1990 + ((j + v + i + a) mod 18))
               (1980 + (a mod 25))
               (1985 + (v mod 20)))
        done;
        Buffer.add_string buf "</issue>"
      done;
      Buffer.add_string buf "</volume>"
    done;
    Buffer.add_string buf "</journal>"
  done;
  Buffer.add_string buf "</archive>";
  (Buffer.contents buf, !count)

(* The Reference 2.0 browse page: lists journals and per-article
   reference statistics (counts, year ranges) — the kind of view the
   paper describes ("study the references: statistics, years..."). *)
let elsevier_page =
  {|
<html><head><title>Reference 2.0</title></head><body>
<h1>Reference 2.0</h1>
<div id="browser">{
  for $j in doc("archive.xml")//journal
  return <div class="journal">{string($j/@name)}
    <ul>{
      for $a in $j//article
      let $refs := $a/references/ref
      return <li>{string($a/title)}
        <span class="stats">{count($refs)} refs, {string(min($refs/@year))}-{string(max($refs/@year))}</span>
      </li>
    }</ul>
  </div>
}</div>
</body></html>|}

let make_elsevier ?(journals = 2) ?(volumes = 2) ?(issues = 2) ?(articles = 3) http =
  let server = Appserver.App_server.create http ~host:"www.elsevier.example" in
  let xml, article_count = elsevier_store_xml ~journals ~volumes ~issues ~articles in
  Doc_store.put_xml (Appserver.App_server.store server) ~name:"archive.xml" xml;
  Appserver.App_server.add_xquery_page server ~path:"/reference" elsevier_page;
  let client_page_path = "/reference-client" in
  ignore
    (Appserver.Migration.migrate_server_page server ~path:"/reference"
       ~client_path:client_page_path);
  { server; article_count; browse_page_path = "/reference"; client_page_path }

(* ------------------------------------------------------------------ *)
(* §6.1 under a flaky network                                           *)

type flaky_report = {
  visits : int;
  pages_ok : int;
  pages_lost : int;
  queries_ok : int;
  queries_failed : int;
  fallback_hits : int;
  attempts : int;
  retries : int;
  server_requests : int;
  injected_faults : int;
  elapsed : float;
}

let run_elsevier_flaky ?journals ?volumes ?issues ?articles ?(visits = 20) ~rate
    ~seed ~resilient () =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let e = make_elsevier ?journals ?volumes ?issues ?articles http in
  let host = Appserver.App_server.host e.server in
  let retry =
    if resilient then { Retry.default with Retry.max_attempts = 8 }
    else Retry.disabled
  in
  (* no REST memory cache: every visit re-fetches the archive, so the
     degraded network is exercised on each round; resilience comes from
     retry + the Local_store fallback instead *)
  let b =
    Xqib.Browser.create ~cache:false ~retry ~net_fallback:resilient ~seed ~clock
      ~http ()
  in
  let page_uri = "http://" ^ host ^ e.client_page_path in
  (* the first visit happens on a healthy network (it warms the
     fallback store); then the network degrades *)
  Xqib.Page.browse b page_uri;
  Xqib.Browser.run b;
  Http_sim.set_faults http ~host ~seed (Http_sim.uniform_faults ~rate);
  let pages_ok = ref 1
  and pages_lost = ref 0
  and queries_ok = ref 1
  and queries_failed = ref 0 in
  for _ = 2 to visits do
    let errors_before = List.length b.Xqib.Browser.script_errors in
    match Xqib.Page.browse b page_uri with
    | () ->
        incr pages_ok;
        Xqib.Browser.run b;
        (* the migrated client page fetches the archive via rest:get as
           it loads; a failure lands in the error console *)
        if List.length b.Xqib.Browser.script_errors > errors_before then
          incr queries_failed
        else incr queries_ok
    | exception Xquery.Xq_error.Error _ -> incr pages_lost
  done;
  {
    visits;
    pages_ok = !pages_ok;
    pages_lost = !pages_lost;
    queries_ok = !queries_ok;
    queries_failed = !queries_failed;
    fallback_hits = Rest.fallback_hits b.Xqib.Browser.rest;
    attempts =
      (Rest.retry_stats b.Xqib.Browser.rest).Retry.attempts
      + b.Xqib.Browser.net_stats.Retry.attempts;
    retries =
      (Rest.retry_stats b.Xqib.Browser.rest).Retry.retries
      + b.Xqib.Browser.net_stats.Retry.retries;
    server_requests = Http_sim.request_count http ~host;
    injected_faults = Http_sim.total_injected_faults http;
    elapsed = Virtual_clock.now clock;
  }

(* ------------------------------------------------------------------ *)
(* §6.1 at fleet scale (bench T15)                                      *)

let run_fleet ?(journals = 1) ?(volumes = 1) ?(issues = 1) ?(articles = 3)
    ?(visits = 3) ?(tenants = 1) ?(spread = 10.) ?(think = 5.) ?(rate = 0.)
    ?(service_cost = 0.02) ?static_cost ?shed_depth ?retry ?max_tasks
    ?(capture_docs = false) ~sessions ~migrated ~seed () =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let e = make_elsevier ~journals ~volumes ~issues ~articles http in
  let host = Appserver.App_server.host e.server in
  Appserver.App_server.set_queue ~service_cost ?static_cost ?shed_depth e.server;
  if rate > 0. then
    Http_sim.set_faults http ~host ~seed (Http_sim.uniform_faults ~rate);
  let config =
    {
      Appserver.Fleet.default_config with
      Appserver.Fleet.sessions;
      tenants;
      visits;
      seed;
      spread;
      think_time = think;
      capture_docs;
      page_path = (if migrated then e.client_page_path else e.browse_page_path);
    }
  in
  let config =
    match retry with Some r -> { config with Appserver.Fleet.retry = r } | None -> config
  in
  let config =
    match max_tasks with
    | Some _ -> { config with Appserver.Fleet.max_tasks }
    | None -> config
  in
  Appserver.Fleet.run ~config e.server

(* ------------------------------------------------------------------ *)
(* §6.2 maps/weather mash-up                                            *)

let setup_mashup http =
  (* the map service: JavaScript's AJAX backend *)
  Http_sim.register_host http ~host:"maps.example" (fun req ->
      let q =
        match String.index_opt req.Http_sim.path '=' with
        | Some i ->
            String.sub req.Http_sim.path (i + 1) (String.length req.Http_sim.path - i - 1)
        | None -> "unknown"
      in
      Http_sim.ok (Printf.sprintf "<map location=\"%s\"><tile x=\"1\" y=\"1\"/></map>" q));
  (* two weather services: the paper uses "a selection of different
     weather services depending on region" *)
  Http_sim.register_host http ~host:"weather-eu.example" (fun req ->
      ignore req;
      Http_sim.ok "<weather location=\"zurich\"><temp unit=\"C\">21</temp><sky>sunny</sky></weather>");
  Http_sim.register_host http ~host:"weather-us.example" (fun req ->
      ignore req;
      Http_sim.ok "<weather location=\"redwood\"><temp unit=\"F\">70</temp><sky>fog</sky></weather>");
  Http_sim.register_host http ~host:"webcams.example" (fun req ->
      ignore req;
      Http_sim.ok
        "<webcams><cam url=\"http://webcams.example/1.jpg\"/><cam url=\"http://webcams.example/2.jpg\"/></webcams>");
  {|<html><head>
<script type="text/javascript">
// the Google-Maps side: plain JavaScript + AJAX-style fetch
function onSearch(e) {
  var box = document.getElementById("searchbox");
  var map = document.getElementById("map");
  map.setAttribute("loading", box.value);
  map.innerHTML = "<tile x='1' y='1'></tile>";
  map.setAttribute("location", box.value);
}
</script>
<script type="text/javascript">
document.getElementById("search").addEventListener("onclick", onSearch, false);
</script>
<script type="text/xquery">
declare updating function local:weather($evt, $obj) {
  (: the XQuery side handles the same click: REST to the weather and
     webcam services, integrate results into the page :)
  insert node
    <div class="report">{
      let $loc := string(//input[@id="searchbox"]/@value)
      let $svc := if ($loc = ("zurich", "geneva", "basel"))
                  then "http://weather-eu.example/q"
                  else "http://weather-us.example/q"
      let $w := rest:get($svc)/weather
      return (<h2>{$loc}</h2>,
              <p>{string($w/temp)} {string($w/temp/@unit)}, {string($w/sky)}</p>,
              for $cam in rest:get("http://webcams.example/list")//cam
              return <img src="{$cam/@url}"/>)
    }</div>
  into //div[@id="weather"]
};
on event "onclick" at //button[@id="search"] attach listener local:weather
</script>
</head><body>
<input id="searchbox" value=""/>
<button id="search">Search</button>
<div id="map"/>
<div id="weather"/>
</body></html>|}

(* ------------------------------------------------------------------ *)
(* §4.4 AJAX suggest                                                    *)

let setup_suggest http =
  Http_sim.register_host http ~host:"hints.example" (fun req ->
      let prefix =
        match String.index_opt req.Http_sim.path '=' with
        | Some i ->
            String.sub req.Http_sim.path (i + 1) (String.length req.Http_sim.path - i - 1)
        | None -> ""
      in
      let names = [ "alice"; "albert"; "bob"; "carol"; "carla"; "dave" ] in
      let hits =
        List.filter
          (fun n ->
            String.length n >= String.length prefix
            && String.sub n 0 (String.length prefix) = prefix)
          names
      in
      Http_sim.ok
        ("<hints>"
        ^ String.concat "" (List.map (fun n -> "<hint>" ^ n ^ "</hint>") hits)
        ^ "</hints>"));
  {|<html><head>
<script type="text/xquery">
declare updating function local:onResult($readyState, $result) {
  if ($readyState = 4)
  then replace value of node //*[@id="txtHint"]
       with string-join($result//hint/text(), ", ")
  else ()
};
declare updating function local:showHint($evt, $obj) {
  if (string-length(string($obj/@value)) = 0)
  then replace value of node //*[@id="txtHint"] with ""
  else
    on event "stateChanged"
    behind rest:get(concat("http://hints.example/suggest?q=", string($obj/@value)))
    attach listener local:onResult
};
on event "onkeyup" at //input[@id="text1"] attach listener local:showHint
</script>
</head><body>
<form>First Name: <input type="text" id="text1" value=""/></form>
<p>Suggestions: <span id="txtHint"/></p>
</body></html>|}
