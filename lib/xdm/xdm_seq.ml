(* Lazy pull-cursor over XDM sequences. A cursor wraps an [item Seq.t]
   together with static flags the evaluator derives from the expression
   shape: [sorted] (the items are distinct nodes in document order, so
   a consumer can skip the document_order sort) and [at_most_one] (the
   producer statically yields zero or one item). Cursors are
   single-shot: combinators consume the underlying Seq once. *)

module I = Xdm_item

type t = { items : I.item Seq.t; sorted : bool; at_most_one : bool }

let pulls_metric = "xdm.seq.pulls"
let materialize_metric = "xdm.seq.materializations"

let tick () = if !Obs.Metrics.enabled then Obs.Metrics.incr pulls_metric

(* count each item delivered by a cold producer; combinators do not
   re-wrap, so a pipeline counts every source item exactly once *)
let counted s = Seq.map (fun x -> tick (); x) s

let make ?(sorted = false) ?(at_most_one = false) items =
  { items; sorted; at_most_one }

let of_seq ?sorted ?at_most_one s = make ?sorted ?at_most_one (counted s)

let of_node_seq ?sorted s =
  of_seq ?sorted (Seq.map (fun n -> I.Node n) s)

let of_list ?(sorted = false) l =
  {
    items = List.to_seq l;
    sorted;
    at_most_one = (match l with [] | [ _ ] -> true | _ -> false);
  }

let empty = { items = Seq.empty; sorted = true; at_most_one = true }
let singleton it = { items = Seq.return it; sorted = false; at_most_one = true }
let items t = t.items
let sorted t = t.sorted
let at_most_one t = t.at_most_one

let to_list t =
  if !Obs.Metrics.enabled then Obs.Metrics.incr materialize_metric;
  List.of_seq t.items

let uncons t = Seq.uncons t.items
let head t = Option.map fst (Seq.uncons t.items)
let is_empty t = Option.is_none (Seq.uncons t.items)

let take n t =
  if n <= 0 then { empty with sorted = t.sorted }
  else { t with items = Seq.take n t.items; at_most_one = t.at_most_one || n = 1 }

(* 1-based item access; pulls at most [k] items *)
let nth k t =
  if k < 1 then None
  else Option.map fst (Seq.uncons (Seq.drop (k - 1) t.items))

(* a subsequence keeps order and distinctness *)
let filter f t = { t with items = Seq.filter f t.items }
let filteri f t =
  let indexed =
    Seq.filter (fun (i, x) -> f i x) (Seq.mapi (fun i x -> (i, x)) t.items)
  in
  { t with items = Seq.map snd indexed }
let map f t = { items = Seq.map f t.items; sorted = false; at_most_one = t.at_most_one }

let append a b =
  { items = Seq.append a.items b.items; sorted = false; at_most_one = false }

let concat_map f t =
  { items = Seq.concat_map (fun x -> (f x).items) t.items;
    sorted = false; at_most_one = false }

(* effective boolean value with a bounded pull: the answer is decided
   by the first two items, matching {!Xdm_item.effective_boolean}
   (including its error on multi-item atomic-first sequences) *)
let effective_boolean t =
  match Seq.uncons t.items with
  | None -> false
  | Some (I.Node _, _) -> true
  | Some ((I.Atomic _ as a), rest) -> (
      match Seq.uncons rest with
      | None -> I.effective_boolean [ a ]
      | Some (b, _) -> I.effective_boolean [ a; b ])
