open Xmlb

type atomic_type =
  | T_any_atomic
  | T_untyped
  | T_string
  | T_boolean
  | T_integer
  | T_decimal
  | T_double
  | T_any_uri
  | T_qname
  | T_date
  | T_time
  | T_date_time
  | T_duration
  | T_year_month_duration
  | T_day_time_duration

type t =
  | Untyped of string
  | String of string
  | Boolean of bool
  | Integer of int
  | Decimal of float
  | Double of float
  | Any_uri of string
  | Qname_v of Qname.t
  | Date of Xdm_datetime.t
  | Time of Xdm_datetime.t
  | Date_time of Xdm_datetime.t
  | Duration of Xdm_duration.t
  | Year_month_duration of Xdm_duration.t
  | Day_time_duration of Xdm_duration.t

exception Type_error of string
exception Cast_error of string

let type_error fmt = Printf.ksprintf (fun m -> raise (Type_error m)) fmt
let cast_error fmt = Printf.ksprintf (fun m -> raise (Cast_error m)) fmt

let type_of = function
  | Untyped _ -> T_untyped
  | String _ -> T_string
  | Boolean _ -> T_boolean
  | Integer _ -> T_integer
  | Decimal _ -> T_decimal
  | Double _ -> T_double
  | Any_uri _ -> T_any_uri
  | Qname_v _ -> T_qname
  | Date _ -> T_date
  | Time _ -> T_time
  | Date_time _ -> T_date_time
  | Duration _ -> T_duration
  | Year_month_duration _ -> T_year_month_duration
  | Day_time_duration _ -> T_day_time_duration

let type_name = function
  | T_any_atomic -> "anyAtomicType"
  | T_untyped -> "untypedAtomic"
  | T_string -> "string"
  | T_boolean -> "boolean"
  | T_integer -> "integer"
  | T_decimal -> "decimal"
  | T_double -> "double"
  | T_any_uri -> "anyURI"
  | T_qname -> "QName"
  | T_date -> "date"
  | T_time -> "time"
  | T_date_time -> "dateTime"
  | T_duration -> "duration"
  | T_year_month_duration -> "yearMonthDuration"
  | T_day_time_duration -> "dayTimeDuration"

let type_of_name = function
  | "anyAtomicType" -> Some T_any_atomic
  | "untypedAtomic" -> Some T_untyped
  | "string" | "normalizedString" | "token" | "NCName" | "ID" | "IDREF" ->
      Some T_string
  | "boolean" -> Some T_boolean
  | "integer" | "int" | "long" | "short" | "byte" | "nonNegativeInteger"
  | "positiveInteger" | "negativeInteger" | "nonPositiveInteger"
  | "unsignedInt" | "unsignedLong" | "unsignedShort" | "unsignedByte" ->
      Some T_integer
  | "decimal" -> Some T_decimal
  | "double" | "float" -> Some T_double
  | "anyURI" -> Some T_any_uri
  | "QName" -> Some T_qname
  | "date" -> Some T_date
  | "time" -> Some T_time
  | "dateTime" -> Some T_date_time
  | "duration" -> Some T_duration
  | "yearMonthDuration" -> Some T_year_month_duration
  | "dayTimeDuration" -> Some T_day_time_duration
  | _ -> None

let derives_from a b =
  a = b || b = T_any_atomic
  || (a = T_integer && b = T_decimal)
  || ((a = T_year_month_duration || a = T_day_time_duration) && b = T_duration)

(* ---------------- lexical forms ---------------- *)

let decimal_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else begin
    let s = Printf.sprintf "%.12f" f in
    let rec strip i = if i > 0 && s.[i] = '0' then strip (i - 1) else i in
    let last = strip (String.length s - 1) in
    let last = if s.[last] = '.' then last - 1 else last in
    String.sub s 0 (last + 1)
  end

let double_to_string f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "INF"
  else if f = Float.neg_infinity then "-INF"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    s

let to_string = function
  | Untyped s | String s | Any_uri s -> s
  | Boolean b -> if b then "true" else "false"
  | Integer i -> string_of_int i
  | Decimal f -> decimal_to_string f
  | Double f -> double_to_string f
  | Qname_v q -> Qname.to_string q
  | Date d -> Xdm_datetime.date_to_string d
  | Time t -> Xdm_datetime.time_to_string t
  | Date_time dt -> Xdm_datetime.date_time_to_string dt
  | Duration d | Year_month_duration d | Day_time_duration d ->
      Xdm_duration.to_string d

(* ---------------- casting ---------------- *)

let trim = String.trim

let parse_boolean s =
  match trim s with
  | "true" | "1" -> true
  | "false" | "0" -> false
  | s -> cast_error "cannot cast %S to xs:boolean" s

let parse_integer s =
  let s = trim s in
  match int_of_string_opt s with
  | Some i -> i
  | None -> cast_error "cannot cast %S to xs:integer" s

let parse_float_xml what s =
  match trim s with
  | "INF" -> Float.infinity
  | "-INF" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> cast_error "cannot cast %S to xs:%s" s what)

let float_to_integer f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    cast_error "cannot cast %s to xs:integer" (double_to_string f)
  else int_of_float (Float.of_int (int_of_float f))

let numeric_value = function
  | Integer i -> float_of_int i
  | Decimal f | Double f -> f
  | v -> type_error "expected a numeric value, got xs:%s" (type_name (type_of v))

let cast ~target v =
  let s () = to_string v in
  let from_string str =
    match target with
    | T_any_atomic -> Untyped str
    | T_untyped -> Untyped str
    | T_string -> String str
    | T_boolean -> Boolean (parse_boolean str)
    | T_integer -> Integer (parse_integer str)
    | T_decimal -> (
        match float_of_string_opt (trim str) with
        | Some f -> Decimal f
        | None -> cast_error "cannot cast %S to xs:decimal" str)
    | T_double -> Double (parse_float_xml "double" str)
    | T_any_uri -> Any_uri (trim str)
    | T_qname -> Qname_v (Qname.of_string (trim str))
    | T_date -> (
        try Date (Xdm_datetime.date_of_string (trim str))
        with Failure m -> cast_error "%s" m)
    | T_time -> (
        try Time (Xdm_datetime.time_of_string (trim str))
        with Failure m -> cast_error "%s" m)
    | T_date_time -> (
        try Date_time (Xdm_datetime.date_time_of_string (trim str))
        with Failure m -> cast_error "%s" m)
    | T_duration -> (
        try Duration (Xdm_duration.of_string (trim str))
        with Failure m -> cast_error "%s" m)
    | T_year_month_duration -> (
        try
          let d = Xdm_duration.of_string (trim str) in
          Year_month_duration { d with Xdm_duration.seconds = 0. }
        with Failure m -> cast_error "%s" m)
    | T_day_time_duration -> (
        try
          let d = Xdm_duration.of_string (trim str) in
          Day_time_duration { d with Xdm_duration.months = 0 }
        with Failure m -> cast_error "%s" m)
  in
  match (v, target) with
  | _, T_any_atomic -> v
  | Untyped str, _ | String str, _ -> from_string str
  | _, T_string -> String (s ())
  | _, T_untyped -> Untyped (s ())
  | Boolean b, T_integer -> Integer (if b then 1 else 0)
  | Boolean b, T_decimal -> Decimal (if b then 1. else 0.)
  | Boolean b, T_double -> Double (if b then 1. else 0.)
  | Boolean _, T_boolean -> v
  | Integer _, T_integer -> v
  | Integer i, T_decimal -> Decimal (float_of_int i)
  | Integer i, T_double -> Double (float_of_int i)
  | Integer i, T_boolean -> Boolean (i <> 0)
  | Decimal f, T_integer -> Integer (float_to_integer (Float.trunc f))
  | Decimal _, T_decimal -> v
  | Decimal f, T_double -> Double f
  | Decimal f, T_boolean -> Boolean (f <> 0.)
  | Double f, T_integer -> Integer (float_to_integer (Float.trunc f))
  | Double f, T_decimal ->
      if Float.is_nan f || Float.abs f = Float.infinity then
        cast_error "cannot cast %s to xs:decimal" (double_to_string f)
      else Decimal f
  | Double _, T_double -> v
  | Double f, T_boolean -> Boolean (not (Float.is_nan f || f = 0.))
  | Any_uri _, T_any_uri -> v
  | Qname_v _, T_qname -> v
  | Date _, T_date -> v
  | Date d, T_date_time -> Date_time { d with Xdm_datetime.hour = 0; minute = 0; second = 0. }
  | Time _, T_time -> v
  | Date_time _, T_date_time -> v
  | Date_time dt, T_date ->
      Date { dt with Xdm_datetime.hour = 0; minute = 0; second = 0. }
  | Date_time dt, T_time -> Time { dt with Xdm_datetime.year = 1970; month = 1; day = 1 }
  | (Duration d | Year_month_duration d | Day_time_duration d), T_duration ->
      Duration d
  | (Duration d | Year_month_duration d | Day_time_duration d), T_year_month_duration
    ->
      Year_month_duration { d with Xdm_duration.seconds = 0. }
  | (Duration d | Year_month_duration d | Day_time_duration d), T_day_time_duration
    ->
      Day_time_duration { d with Xdm_duration.months = 0 }
  | _, _ ->
      cast_error "cannot cast xs:%s to xs:%s" (type_name (type_of v)) (type_name target)

let castable ~target v =
  match cast ~target v with _ -> true | exception _ -> false

let is_numeric v =
  match v with Integer _ | Decimal _ | Double _ -> true | _ -> false

let is_nan = function Double f | Decimal f -> Float.is_nan f | _ -> false

let promote_pair a b =
  let lift v =
    match v with
    | Untyped s -> Double (parse_float_xml "double" s)
    | Integer _ | Decimal _ | Double _ -> v
    | _ ->
        type_error "expected a numeric operand, got xs:%s" (type_name (type_of v))
  in
  let a = lift a and b = lift b in
  match (a, b) with
  | Integer _, Integer _ | Decimal _, Decimal _ | Double _, Double _ -> (a, b)
  | Integer i, Decimal _ -> (Decimal (float_of_int i), b)
  | Decimal _, Integer j -> (a, Decimal (float_of_int j))
  | (Integer _ | Decimal _), Double _ -> (Double (numeric_value a), b)
  | Double _, (Integer _ | Decimal _) -> (a, Double (numeric_value b))
  | _ -> assert false

(* ---------------- comparison ---------------- *)

let compare_value a b =
  let str_side v =
    match v with Untyped s -> String s | v -> v
  in
  let a = str_side a and b = str_side b in
  match (a, b) with
  | (Integer _ | Decimal _ | Double _), (Integer _ | Decimal _ | Double _) -> (
      match promote_pair a b with
      | Integer i, Integer j -> Int.compare i j
      | Decimal x, Decimal y | Double x, Double y -> Float.compare x y
      | _ -> assert false)
  | (String x | Any_uri x), (String y | Any_uri y) -> String.compare x y
  | Boolean x, Boolean y -> Bool.compare x y
  | Qname_v x, Qname_v y ->
      if Qname.equal x y then 0
      else type_error "QNames support only eq/ne comparison"
  | Date x, Date y | Time x, Time y | Date_time x, Date_time y ->
      Xdm_datetime.compare x y
  | ( (Duration x | Year_month_duration x | Day_time_duration x),
      (Duration y | Year_month_duration y | Day_time_duration y) ) ->
      Xdm_duration.compare x y
  | _ ->
      type_error "cannot compare xs:%s with xs:%s"
        (type_name (type_of a))
        (type_name (type_of b))

let equal_value a b =
  match (a, b) with
  (* Qname.equal rides the interned-symbol fast path (two int
     compares) when interning fast paths are on *)
  | Qname_v x, Qname_v y -> Qname.equal x y
  | _ ->
      if is_nan a || is_nan b then false
      else compare_value a b = 0

let same_key a b =
  if is_nan a && is_nan b then true
  else match compare_value a b with 0 -> true | _ -> false | exception _ -> false

(* ---------------- arithmetic ---------------- *)

let numeric_op int_op float_op tag a b =
  match promote_pair a b with
  | Integer i, Integer j -> Integer (int_op i j)
  | Decimal x, Decimal y -> Decimal (float_op x y)
  | Double x, Double y -> Double (float_op x y)
  | _ -> assert false [@warning "-8"]
  | exception Type_error _ ->
      type_error "invalid operands for %s: xs:%s, xs:%s" tag
        (type_name (type_of a))
        (type_name (type_of b))

let as_duration = function
  | Duration d | Year_month_duration d | Day_time_duration d -> Some d
  | _ -> None

let duration_tagged template d =
  match template with
  | Year_month_duration _ -> Year_month_duration { d with Xdm_duration.seconds = 0. }
  | Day_time_duration _ -> Day_time_duration { d with Xdm_duration.months = 0 }
  | _ -> Duration d

let add a b =
  match (a, b, as_duration a, as_duration b) with
  | (Date d | Date_time d), _, _, Some dur ->
      let r = Xdm_datetime.add_duration d dur in
      (match a with Date _ -> Date r | _ -> Date_time r)
  | _, (Date d | Date_time d), Some dur, _ ->
      let r = Xdm_datetime.add_duration d dur in
      (match b with Date _ -> Date r | _ -> Date_time r)
  | Time t, _, _, Some dur ->
      Time
        (Xdm_datetime.of_epoch_seconds ?tz_minutes:t.Xdm_datetime.tz_minutes
           (Xdm_datetime.to_epoch_seconds t +. dur.Xdm_duration.seconds))
  | _, _, Some da, Some db -> duration_tagged a (Xdm_duration.add da db)
  | _ -> numeric_op ( + ) ( +. ) "+" a b

let subtract a b =
  match (a, b, as_duration a, as_duration b) with
  | (Date d | Date_time d), _, _, Some dur ->
      let r = Xdm_datetime.add_duration d (Xdm_duration.negate dur) in
      (match a with Date _ -> Date r | _ -> Date_time r)
  | Date da, Date db, _, _ | Date_time da, Date_time db, _, _ ->
      Day_time_duration (Xdm_datetime.difference da db)
  | Time ta, Time tb, _, _ ->
      Day_time_duration (Xdm_datetime.difference ta tb)
  | _, _, Some da, Some db ->
      duration_tagged a (Xdm_duration.add da (Xdm_duration.negate db))
  | _ -> numeric_op ( - ) ( -. ) "-" a b

let multiply a b =
  match (as_duration a, as_duration b) with
  | Some d, None when is_numeric b -> duration_tagged a (Xdm_duration.scale d (numeric_value b))
  | None, Some d when is_numeric a -> duration_tagged b (Xdm_duration.scale d (numeric_value a))
  | _ -> numeric_op ( * ) ( *. ) "*" a b

let divide a b =
  match (as_duration a, as_duration b) with
  | Some d, None when is_numeric b ->
      let f = numeric_value b in
      if f = 0. then raise Division_by_zero
      else duration_tagged a (Xdm_duration.scale d (1. /. f))
  | Some da, Some db ->
      if Xdm_duration.is_year_month da && Xdm_duration.is_year_month db then
        if db.Xdm_duration.months = 0 then raise Division_by_zero
        else
          Decimal
            (float_of_int da.Xdm_duration.months /. float_of_int db.Xdm_duration.months)
      else if db.Xdm_duration.seconds = 0. then raise Division_by_zero
      else Decimal (da.Xdm_duration.seconds /. db.Xdm_duration.seconds)
  | _ -> (
      match promote_pair a b with
      | Integer i, Integer j ->
          if j = 0 then raise Division_by_zero
          else Decimal (float_of_int i /. float_of_int j)
      | Decimal x, Decimal y ->
          if y = 0. then raise Division_by_zero else Decimal (x /. y)
      | Double x, Double y -> Double (x /. y)
      | _ -> assert false)

let integer_divide a b =
  match promote_pair a b with
  | Integer i, Integer j ->
      if j = 0 then raise Division_by_zero else Integer (i / j)
  | Decimal x, Decimal y | Double x, Double y ->
      if y = 0. then raise Division_by_zero
      else if Float.is_nan x || Float.is_nan y || Float.abs x = Float.infinity then
        type_error "idiv with NaN or INF operand"
      else Integer (int_of_float (Float.trunc (x /. y)))
  | _ -> assert false

let modulo a b =
  match promote_pair a b with
  | Integer i, Integer j ->
      if j = 0 then raise Division_by_zero else Integer (i mod j)
  | Decimal x, Decimal y ->
      if y = 0. then raise Division_by_zero else Decimal (Float.rem x y)
  | Double x, Double y -> Double (Float.rem x y)
  | _ -> assert false

let negate = function
  | Integer i -> Integer (-i)
  | Decimal f -> Decimal (-.f)
  | Double f -> Double (-.f)
  | Untyped s -> Double (-.parse_float_xml "double" s)
  | Duration d -> Duration (Xdm_duration.negate d)
  | Year_month_duration d -> Year_month_duration (Xdm_duration.negate d)
  | Day_time_duration d -> Day_time_duration (Xdm_duration.negate d)
  | v -> type_error "cannot negate xs:%s" (type_name (type_of v))

let pp ppf v = Format.pp_print_string ppf (to_string v)
