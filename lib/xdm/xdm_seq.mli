(** Lazy pull-cursors over XDM sequences, the streaming pipeline's
    currency. A cursor is an [Xdm_item.item Seq.t] plus static flags
    derived from the producing expression:

    - [sorted] — the items are distinct nodes in document order, so
      consumers (notably path combination) can skip the
      {!Xdm_item.document_order} re-sort;
    - [at_most_one] — the producer statically yields ≤ 1 item.

    Cursors are single-shot; pulls from cold producers and
    materialisations are counted on the [xdm.seq.pulls] /
    [xdm.seq.materializations] {!Obs.Metrics} counters (only when
    metrics are enabled). *)

type t

val pulls_metric : string
val materialize_metric : string

val make : ?sorted:bool -> ?at_most_one:bool -> Xdm_item.item Seq.t -> t
(** Wrap a sequence without pull counting (already-materialised or
    derived producers). Flags default to [false]. *)

val of_seq : ?sorted:bool -> ?at_most_one:bool -> Xdm_item.item Seq.t -> t
(** Wrap a cold producer; every delivered item bumps [xdm.seq.pulls]. *)

val of_node_seq : ?sorted:bool -> Dom.node Seq.t -> t
val of_list : ?sorted:bool -> Xdm_item.sequence -> t
val empty : t
val singleton : Xdm_item.item -> t
val items : t -> Xdm_item.item Seq.t
val sorted : t -> bool
val at_most_one : t -> bool

val to_list : t -> Xdm_item.sequence
(** Drain the cursor; bumps [xdm.seq.materializations]. *)

val uncons : t -> (Xdm_item.item * Xdm_item.item Seq.t) option
val head : t -> Xdm_item.item option
val is_empty : t -> bool

val take : int -> t -> t
(** First [n] items ([n <= 0] gives the empty cursor). *)

val nth : int -> t -> Xdm_item.item option
(** 1-based; pulls at most [k] items. *)

val filter : (Xdm_item.item -> bool) -> t -> t
val filteri : (int -> Xdm_item.item -> bool) -> t -> t
val map : (Xdm_item.item -> Xdm_item.item) -> t -> t
val append : t -> t -> t
val concat_map : (Xdm_item.item -> t) -> t -> t

val effective_boolean : t -> bool
(** EBV with a bounded pull (≤ 2 items); semantics — and errors —
    match {!Xdm_item.effective_boolean}. *)
