type item = Node of Dom.node | Atomic of Xdm_atomic.t
type sequence = item list

let type_error fmt =
  Printf.ksprintf (fun m -> raise (Xdm_atomic.Type_error m)) fmt

let of_bool b = [ Atomic (Xdm_atomic.Boolean b) ]
let of_int i = [ Atomic (Xdm_atomic.Integer i) ]
let of_float f = [ Atomic (Xdm_atomic.Double f) ]
let of_string s = [ Atomic (Xdm_atomic.String s) ]
let of_untyped s = [ Atomic (Xdm_atomic.Untyped s) ]
let of_nodes ns = List.map (fun n -> Node n) ns
let empty = []
let is_node = function Node _ -> true | Atomic _ -> false

let item_string = function
  | Node n -> Dom.string_value n
  | Atomic a -> Xdm_atomic.to_string a

let item_atomic = function
  | Atomic a -> a
  | Node n -> (
      match Dom.kind n with
      | Dom.Comment | Dom.Processing_instruction ->
          Xdm_atomic.String (Dom.string_value n)
      | Dom.Document | Dom.Element | Dom.Attribute | Dom.Text ->
          Xdm_atomic.Untyped (Dom.string_value n))

let atomize seq = List.map item_atomic seq

let effective_boolean = function
  | [] -> false
  | Node _ :: _ -> true
  | [ Atomic a ] -> (
      match a with
      | Xdm_atomic.Boolean b -> b
      | Xdm_atomic.String s | Xdm_atomic.Untyped s | Xdm_atomic.Any_uri s ->
          s <> ""
      | Xdm_atomic.Integer i -> i <> 0
      | Xdm_atomic.Decimal f | Xdm_atomic.Double f ->
          not (f = 0. || Float.is_nan f)
      | _ ->
          type_error "FORG0006: no effective boolean value for xs:%s"
            (Xdm_atomic.type_name (Xdm_atomic.type_of a)))
  | _ :: _ ->
      type_error "FORG0006: effective boolean value of a multi-item atomic sequence"

let sequence_string seq = String.concat " " (List.map item_string seq)

let singleton = function
  | [ it ] -> it
  | seq -> type_error "expected exactly one item, got %d" (List.length seq)

let singleton_node seq =
  match singleton seq with
  | Node n -> n
  | Atomic _ -> type_error "expected a node, got an atomic value"

let singleton_atomic seq = item_atomic (singleton seq)
let singleton_string seq = item_string (singleton seq)

let opt_atomic = function
  | [] -> None
  | [ it ] -> Some (item_atomic it)
  | seq -> type_error "expected at most one item, got %d" (List.length seq)

let opt_string seq = Option.map Xdm_atomic.to_string (opt_atomic seq)

let item_number it =
  match item_atomic it with
  | Xdm_atomic.Integer i -> float_of_int i
  | Xdm_atomic.Decimal f | Xdm_atomic.Double f -> f
  | Xdm_atomic.Boolean b -> if b then 1. else 0.
  | a -> (
      match float_of_string_opt (String.trim (Xdm_atomic.to_string a)) with
      | Some f -> f
      | None -> Float.nan)

let all_nodes seq = List.for_all is_node seq

let nodes_only context seq =
  List.map
    (function
      | Node n -> n
      | Atomic _ -> type_error "%s requires a sequence of nodes" context)
    seq

(* Strictly ascending implies sorted and duplicate-free. *)
let rec strictly_ordered = function
  | a :: (b :: _ as rest) -> Dom.compare_order a b < 0 && strictly_ordered rest
  | _ -> true

let document_order seq =
  let nodes = nodes_only "document ordering" seq in
  (* Path steps over a sorted context usually produce already-sorted
     results; with cached order keys the linear check is cheap and
     skips the sort entirely. Without acceleration each comparison
     rebuilds root paths, so go straight to the sort. *)
  if Dom.acceleration_enabled () && strictly_ordered nodes then seq
  else
    let rec dedup = function
      | a :: b :: rest when a == b -> dedup (b :: rest)
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    (* Decorate-sort-undecorate: one key fetch per node, then integer
       compares, beats a hashtable lookup inside every comparison. A
       node without a key (shouldn't happen once caches are warm)
       drops us back to the comparator-based sort. *)
    let keyed =
      if Dom.acceleration_enabled () then
        let rec decorate acc = function
          | [] -> Some (List.rev acc)
          | n :: rest -> (
              match Dom.order_key n with
              | Some k -> decorate ((k, n) :: acc) rest
              | None -> None)
        in
        decorate [] nodes
      else None
    in
    match keyed with
    | Some pairs ->
        let sorted =
          List.stable_sort
            (fun ((r1, k1), _) ((r2, k2), _) ->
              if r1 <> r2 then Int.compare r1 r2 else Int.compare k1 k2)
            pairs
        in
        of_nodes (dedup (List.map snd sorted))
    | None -> of_nodes (dedup (List.stable_sort Dom.compare_order nodes))

let union a b = document_order (a @ b)

let intersect a b =
  let nb = nodes_only "intersect" b in
  document_order
    (List.filter
       (function
         | Node n -> List.exists (fun m -> m == n) nb
         | Atomic _ -> type_error "intersect requires nodes")
       a)

let except a b =
  let nb = nodes_only "except" b in
  document_order
    (List.filter
       (function
         | Node n -> not (List.exists (fun m -> m == n) nb)
         | Atomic _ -> type_error "except requires nodes")
       a)

let pp_item ppf = function
  | Node n -> Dom.pp ppf n
  | Atomic a -> Xdm_atomic.pp ppf a

let pp ppf seq =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    pp_item ppf seq

let to_display_string seq = Format.asprintf "%a" pp seq
