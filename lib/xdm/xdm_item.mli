(** XDM items and sequences.

    An item is a node (backed by the mutable {!Dom} tree — the
    "XDM store wrapping the DOM" of the paper's architecture, §5.2)
    or an atomic value. A sequence is a flat, ordered list of items. *)

type item = Node of Dom.node | Atomic of Xdm_atomic.t
type sequence = item list

(** {1 Constructors} *)

val of_bool : bool -> sequence
val of_int : int -> sequence
val of_float : float -> sequence
val of_string : string -> sequence
val of_untyped : string -> sequence
val of_nodes : Dom.node list -> sequence

val empty : sequence

(** {1 Accessors} *)

val is_node : item -> bool

(** String value of an item ([fn:string] on one item). *)
val item_string : item -> string

(** Typed value of an item: nodes atomize to untypedAtomic (attributes
    and text carry untyped values in our schema-less store). *)
val item_atomic : item -> Xdm_atomic.t

(** Atomize a sequence ([fn:data]). *)
val atomize : sequence -> Xdm_atomic.t list

(** Effective boolean value.
    @raise Xdm_atomic.Type_error on sequences that have no EBV
    (FORG0006), e.g. multiple atomics. *)
val effective_boolean : sequence -> bool

(** String value of a whole sequence, space-joined (used by attribute
    and text constructors). *)
val sequence_string : sequence -> string

(** Exactly-one-item helpers.
    @raise Xdm_atomic.Type_error if cardinality is wrong. *)

val singleton : sequence -> item
val singleton_node : sequence -> Dom.node
val singleton_atomic : sequence -> Xdm_atomic.t
val singleton_string : sequence -> string

(** Zero-or-one helpers. *)
val opt_atomic : sequence -> Xdm_atomic.t option
val opt_string : sequence -> string option

(** Number interpretation of a single item ([fn:number]-ish): untyped
    and strings parse as double, NaN on failure. *)
val item_number : item -> float

(** {1 Node-sequence operations} *)

(** Sort by document order and remove duplicates (by node identity).
    Already-sorted duplicate-free input (the common case for path
    steps) is detected with a linear pass over the cached order keys
    and returned as-is when DOM acceleration is on.
    @raise Xdm_atomic.Type_error if the sequence contains atomics. *)
val document_order : sequence -> sequence

(** Union/intersect/except by node identity, result in document order. *)
val union : sequence -> sequence -> sequence

val intersect : sequence -> sequence -> sequence
val except : sequence -> sequence -> sequence

(** Are all items nodes? *)
val all_nodes : sequence -> bool

val pp_item : Format.formatter -> item -> unit
val pp : Format.formatter -> sequence -> unit

(** Serialize a sequence the way a query result is shown: nodes as XML,
    atomics via their canonical form, space-separated. *)
val to_display_string : sequence -> string
