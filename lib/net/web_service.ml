open Xmlb
module SC = Xquery.Static_context

type service = {
  http : Http_sim.t;
  host : string;
  ns : string;
  fns : (string * int) list;
  compiled : Xquery.Engine.compiled;
  mutable calls : int;
}

let err fmt = Xquery.Xq_error.raise_error "SEWS0001" fmt

let service_uri s = "http://" ^ s.host ^ "/wsdl"
let namespace_uri s = s.ns
let functions s = s.fns
let call_count s = s.calls

let descriptor s =
  let fns =
    String.concat ""
      (List.map
         (fun (name, arity) ->
           Printf.sprintf "<function name=\"%s\" arity=\"%d\"/>" name arity)
         s.fns)
  in
  Printf.sprintf "<service xmlns=\"\" ns=\"%s\">%s</service>" s.ns fns

(* protocol: POST /call, body <call fn="mul"><arg>2</arg><arg>5</arg></call>;
   response <result>…serialized sequence…</result> with atomic values as
   text and nodes as XML children. *)
let handle_call s body =
  let doc = Dom.of_string body in
  let call =
    match Dom.children doc with
    | [ c ] -> c
    | _ -> err "malformed web-service call"
  in
  let fname =
    match Dom.attribute_local call "fn" with
    | Some f -> f
    | None -> err "web-service call without fn attribute"
  in
  let args =
    List.map
      (fun argel ->
        (* an <arg> either wraps element children (nodes) or text
           (atomic, typed via the @type attribute) *)
        let elements =
          List.filter (fun c -> Dom.kind c = Dom.Element) (Dom.children argel)
        in
        if elements <> [] then List.map (fun e -> Xdm_item.Node (Dom.clone e)) elements
        else
          let text = Dom.string_value argel in
          let atomic =
            match Dom.attribute_local argel "type" with
            | Some ty -> (
                match Xdm_atomic.type_of_name ty with
                | Some target -> (
                    try Xdm_atomic.cast ~target (Xdm_atomic.Untyped text)
                    with _ -> Xdm_atomic.Untyped text)
                | None -> Xdm_atomic.Untyped text)
            | None -> Xdm_atomic.Untyped text
          in
          [ Xdm_item.Atomic atomic ])
      (Dom.children call)
  in
  let qn = Qname.make ~uri:s.ns fname in
  let ctx = Xquery.Engine.context_for s.compiled in
  s.calls <- s.calls + 1;
  let result = Xquery.Engine.call ctx qn args in
  let buf = Buffer.create 64 in
  Buffer.add_string buf "<result>";
  List.iter
    (fun item ->
      match item with
      | Xdm_item.Node n -> Buffer.add_string buf (Dom.serialize n)
      | Xdm_item.Atomic a ->
          Buffer.add_string buf
            (Printf.sprintf "<value type=\"%s\">%s</value>"
               (Xdm_atomic.type_name (Xdm_atomic.type_of a))
               (Xml_escape.text (Xdm_atomic.to_string a))))
    result;
  Buffer.add_string buf "</result>";
  Buffer.contents buf

let publish ?host http ~source =
  let static = Xquery.Engine.default_static () in
  let compiled = Xquery.Engine.compile ~static source in
  let m =
    match compiled.Xquery.Engine.prog.Xquery.Ast.library_module with
    | Some m -> m
    | None -> err "a web service must be a library module"
  in
  let host =
    match host with
    | Some h -> h
    | None -> (
        match m.Xquery.Ast.mod_port with
        | Some p -> "localhost:" ^ string_of_int p
        | None -> err "web-service module needs a port: declaration or ~host")
  in
  let fns =
    List.filter_map
      (fun (f : Xquery.Ast.function_decl) ->
        if Option.equal String.equal f.Xquery.Ast.fname.Qname.uri (Some m.Xquery.Ast.mod_uri)
        then Some (f.Xquery.Ast.fname.Qname.local, List.length f.Xquery.Ast.params)
        else None)
      (SC.declared_functions static)
  in
  let s = { http; host; ns = m.Xquery.Ast.mod_uri; fns; compiled; calls = 0 } in
  Http_sim.register_host http ~host (fun req ->
      match req.Http_sim.path with
      | "/wsdl" -> Http_sim.ok (descriptor s)
      | "/call" -> (
          match req.Http_sim.body with
          | Some body -> (
              try Http_sim.ok (handle_call s body)
              with Xquery.Xq_error.Error e ->
                {
                  Http_sim.status = 500;
                  body = Xquery.Xq_error.to_string e;
                  content_type = "text/plain";
                  retry_after = None;
                })
          | None -> Http_sim.not_found "/call (missing body)")
      | p -> Http_sim.not_found p);
  s

(* ------------- client side ------------- *)

let parse_descriptor http body =
  let doc = Dom.of_string body in
  match Dom.children doc with
  | [ root ] when Dom.name root <> None && (Option.get (Dom.name root)).Qname.local = "service" ->
      let ns = Option.value ~default:"" (Dom.attribute_local root "ns") in
      let fns =
        List.filter_map
          (fun c ->
            match (Dom.attribute_local c "name", Dom.attribute_local c "arity") with
            | Some n, Some a -> Some (n, int_of_string a)
            | _ -> None)
          (Dom.children root)
      in
      Some (ns, fns, http)
  | _ -> None

let stub ?retry ?prng http ~call_uri ~fname : SC.external_function =
  fun _cctx args ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf (Printf.sprintf "<call fn=\"%s\">" fname);
    List.iter
      (fun seq ->
        (* singleton atomics travel with their dynamic type so the
           service sees e.g. a real xs:integer, not untyped text *)
        (match seq with
        | [ Xdm_item.Atomic a ] ->
            Buffer.add_string buf
              (Printf.sprintf "<arg type=\"%s\">"
                 (Xdm_atomic.type_name (Xdm_atomic.type_of a)))
        | _ -> Buffer.add_string buf "<arg>");
        List.iter
          (fun item ->
            match item with
            | Xdm_item.Node n -> Buffer.add_string buf (Dom.serialize n)
            | Xdm_item.Atomic a ->
                Buffer.add_string buf (Xml_escape.text (Xdm_atomic.to_string a)))
          seq;
        Buffer.add_string buf "</arg>")
      args;
    Buffer.add_string buf "</call>";
    let resp =
      Retry.fetch ?policy:retry ?prng http ~meth:Http_sim.Post
        ~body:(Buffer.contents buf) call_uri
    in
    if resp.Http_sim.status <> 200 then
      err "web-service call %s failed: %s" fname resp.Http_sim.body
    else
      let doc = Dom.of_string resp.Http_sim.body in
      match Dom.children doc with
      | [ result ] ->
          List.map
            (fun c ->
              match Dom.name c with
              | Some { Qname.local = "value"; _ } ->
                  let text = Dom.string_value c in
                  let atomic =
                    match Dom.attribute_local c "type" with
                    | Some ty -> (
                        match Xdm_atomic.type_of_name ty with
                        | Some target -> (
                            try Xdm_atomic.cast ~target (Xdm_atomic.Untyped text)
                            with _ -> Xdm_atomic.Untyped text)
                        | None -> Xdm_atomic.Untyped text)
                    | None -> Xdm_atomic.Untyped text
                  in
                  Xdm_item.Atomic atomic
              | _ -> Xdm_item.Node (Dom.clone c))
            (Dom.children result)
      | _ -> err "malformed web-service response"

let module_resolver ?retry ?prng http ~uri ~locations =
  let locations = if locations = [] then [ uri ] else locations in
  let try_location loc =
    if not (String.length loc > 7 && String.sub loc 0 7 = "http://") then None
    else
      let resp = Retry.fetch ?policy:retry ?prng http loc in
      if resp.Http_sim.status <> 200 then None
      else if String.equal resp.Http_sim.content_type "application/xquery" then
        Some (SC.Module_source resp.Http_sim.body)
      else
        match parse_descriptor http resp.Http_sim.body with
        | Some (ns, fns, http) ->
            let call_uri =
              match Http_sim.split_uri loc with
              | Some (host, _) -> "http://" ^ host ^ "/call"
              | None -> loc
            in
            Some
              (SC.Module_external
                 (List.map
                    (fun (fname, arity) ->
                      ( Qname.make ~uri:ns fname,
                        arity,
                        stub ?retry ?prng http ~call_uri ~fname ))
                    fns))
        | None -> None
  in
  match List.find_map try_location locations with
  | Some r -> r
  | None -> SC.Module_not_found
