type task = { fire_at : float; seq : int; run : unit -> unit }

type t = {
  mutable time : float;
  mutable queue : task list;  (** sorted by (fire_at, seq) *)
  mutable next_seq : int;
  epoch : float;  (** epoch seconds of virtual time 0 *)
}

(* virtual time 0 = 2008-06-09T12:00:00Z, the engine's fixed default *)
let default_epoch =
  Xdm_datetime.to_epoch_seconds
    (Xdm_datetime.make ~year:2008 ~month:6 ~day:9 ~hour:12 ~tz_minutes:0 ())

let create ?(start = 0.) () =
  { time = start; queue = []; next_seq = 0; epoch = default_epoch }

let now t = t.time
let sleep t d = if d > 0. then t.time <- t.time +. d

let schedule t ~delay run =
  let task = { fire_at = t.time +. Float.max 0. delay; seq = t.next_seq; run } in
  t.next_seq <- t.next_seq + 1;
  let rec insert = function
    | [] -> [ task ]
    | x :: rest ->
        if
          x.fire_at < task.fire_at
          || (x.fire_at = task.fire_at && x.seq < task.seq)
        then x :: insert rest
        else task :: x :: rest
  in
  t.queue <- insert t.queue

let pending t = List.length t.queue

let run_next t =
  match t.queue with
  | [] -> false
  | task :: rest ->
      t.queue <- rest;
      if !Obs.Metrics.enabled then begin
        Obs.Metrics.incr "clock.tasks";
        Obs.Metrics.observe "clock.task-lag_s" (Float.max 0. (task.fire_at -. t.time))
      end;
      t.time <- Float.max t.time task.fire_at;
      task.run ();
      true

let run_until_idle ?(max_tasks = 100_000) t =
  let rec go n =
    if n >= max_tasks then
      failwith "Virtual_clock.run_until_idle: task budget exhausted"
    else if run_next t then go (n + 1)
  in
  go 0

let to_datetime t =
  Xdm_datetime.of_epoch_seconds ~tz_minutes:0 (t.epoch +. t.time)
