type task = { fire_at : float; seq : int; run : unit -> unit }

type t = {
  mutable time : float;
  mutable queue : task list;  (** sorted by (fire_at, seq) *)
  mutable next_seq : int;
  mutable lag : float;
      (** how late the currently-running task fired: time - fire_at.
          Sequentialising concurrent sessions runs some tasks after
          other sessions' blocking work advanced the clock; [now - lag]
          recovers the time the task was meant to start (the fleet
          server uses it as the request arrival time) *)
  epoch : float;  (** epoch seconds of virtual time 0 *)
}

(* virtual time 0 = 2008-06-09T12:00:00Z, the engine's fixed default *)
let default_epoch =
  Xdm_datetime.to_epoch_seconds
    (Xdm_datetime.make ~year:2008 ~month:6 ~day:9 ~hour:12 ~tz_minutes:0 ())

let create ?(start = 0.) () =
  { time = start; queue = []; next_seq = 0; lag = 0.; epoch = default_epoch }

let now t = t.time
let current_lag t = t.lag
let sleep t d = if d > 0. then t.time <- t.time +. d

let schedule t ~delay run =
  let task = { fire_at = t.time +. Float.max 0. delay; seq = t.next_seq; run } in
  t.next_seq <- t.next_seq + 1;
  let rec insert = function
    | [] -> [ task ]
    | x :: rest ->
        if
          x.fire_at < task.fire_at
          || (x.fire_at = task.fire_at && x.seq < task.seq)
        then x :: insert rest
        else task :: x :: rest
  in
  t.queue <- insert t.queue

let pending t = List.length t.queue

let run_next t =
  match t.queue with
  | [] ->
      t.lag <- 0.;
      false
  | task :: rest ->
      t.queue <- rest;
      if !Obs.Metrics.enabled then begin
        Obs.Metrics.incr "clock.tasks";
        Obs.Metrics.observe "clock.task-lag_s" (Float.max 0. (task.fire_at -. t.time))
      end;
      t.time <- Float.max t.time task.fire_at;
      t.lag <- t.time -. task.fire_at;
      task.run ();
      true

exception Budget_exhausted of { budget : int; pending : int }

let () =
  Printexc.register_printer (function
    | Budget_exhausted { budget; pending } ->
        Some
          (Printf.sprintf
             "Virtual_clock.Budget_exhausted: ran %d tasks, %d still pending"
             budget pending)
    | _ -> None)

let run_until_idle ?(max_tasks = 100_000) t =
  let rec go n =
    if n >= max_tasks then begin
      let pending = List.length t.queue in
      if !Obs.Metrics.enabled then Obs.Metrics.incr "clock.budget-exhausted";
      Logs.err (fun m ->
          m "Virtual_clock.run_until_idle: task budget %d exhausted (%d tasks pending)"
            max_tasks pending);
      raise (Budget_exhausted { budget = max_tasks; pending })
    end
    else if run_next t then go (n + 1)
  in
  go 0

let to_datetime t =
  Xdm_datetime.of_epoch_seconds ~tz_minutes:0 (t.epoch +. t.time)
