(** REST support for XQuery (paper §3.4/§5.1: "Zorba chose to first
    support REST, synchronous REST calls are possible").

    Installs external functions in the [rest] namespace into a static
    context:

    - [rest:get($uri)] — fetch; XML responses parse to a document node;
    - [rest:get-text($uri)] — fetch as a string;
    - [rest:post($uri, $body)] — POST, result handled like [rest:get].

    An optional client-side document cache implements the paper's
    §6.1 optimisation ("whole XML documents can be cached in the
    browser so that most user requests can be processed without any
    interaction with the Elsevier server"). *)

val namespace : string

type client

(** [retry] is the resilience policy every network call goes through
    (default {!Retry.default}; pass {!Retry.disabled} for the
    no-resilience baseline); [seed] seeds the backoff-jitter PRNG so
    retry schedules are reproducible. *)
val make_client : ?cache:bool -> ?retry:Retry.policy -> ?seed:int -> Http_sim.t -> client

(** Install a connectivity guard: when it returns false, every
    network operation raises FODC0002 (cache hits still succeed) —
    models working offline against cached/local data (paper §2.4). *)
val set_online_guard : client -> (unit -> bool) -> unit

val set_retry_policy : client -> Retry.policy -> unit
val retry_policy : client -> Retry.policy

(** Attempt/retry/timeout counters for every call made by this client. *)
val retry_stats : client -> Retry.stats

(** Graceful degradation (§2.4 Gears analogue): [put] is called with a
    pristine copy of every successfully fetched document; when retries
    are exhausted on a later fetch of the same URI, [get] is consulted
    and a copy of the stored document is served instead of raising.
    {!Browser.create} wires these to its per-origin {!Local_store}. *)
val set_fallback :
  client ->
  put:(uri:string -> Dom.node -> unit) ->
  get:(uri:string -> Dom.node option) ->
  unit

(** Fetches answered from the fallback store after retry exhaustion. *)
val fallback_hits : client -> int

(** Requests answered from the cache (no HTTP traffic). *)
val cache_hits : client -> int

val cache_misses : client -> int
val clear_cache : client -> unit

(** Fetch a document through the client (cache-aware), parsed. *)
val get_doc : client -> string -> Dom.node

(** Bind the [rest] prefix and register the functions. *)
val install : client -> Xquery.Static_context.t -> unit
