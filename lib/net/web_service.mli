(** XQuery modules published as Web services (paper §3.4):

    {v
    module namespace ex="www.example.ch" port:2001;
    declare option fn:webservice "true";
    declare function ex:mul($a,$b) {$a * $b};
    v}

    {!publish} compiles such a library module and registers an HTTP
    handler at [localhost:<port>] that serves a service descriptor at
    [/wsdl] and executes function calls POSTed to [/call].

    {!module_resolver} is the client side: [import module namespace
    ab="..." at "http://localhost:2001/wsdl"] resolves to external
    function stubs that perform the remote call over the simulated
    network (with latency) — exactly the paper's [ab:mul(2,5)] usage. *)

type service

val publish :
  ?host:string -> Http_sim.t -> source:string -> service

val service_uri : service -> string  (** the .../wsdl location *)

val namespace_uri : service -> string
val functions : service -> (string * int) list

(** Number of remote calls executed by this service. *)
val call_count : service -> int

(** A module resolver for static contexts: resolves [at] locations by
    fetching them; an XML [<service>] descriptor becomes external RPC
    stubs, an [application/xquery] body becomes module source. The
    descriptor fetch and every RPC the stubs later perform go through
    [retry] (default {!Retry.default}) with jitter from [prng]. *)
val module_resolver :
  ?retry:Retry.policy ->
  ?prng:Prng.t ->
  Http_sim.t ->
  uri:string ->
  locations:string list ->
  Xquery.Static_context.module_resolution
