(** A deterministic virtual clock with a task queue.

    All latency in the simulated network and browser event loop is
    virtual: scheduling a task at [now + delay] and running the queue
    advances time without wall-clock sleeping, so tests and the
    offload/async experiments (F2, T4) are exactly reproducible. *)

type t

val create : ?start:float -> unit -> t

(** Current virtual time in seconds. *)
val now : t -> float

(** How late the currently-running task fired ([now - fire_at] at the
    moment it started, 0 outside tasks). Running concurrent sessions
    sequentially means one session's blocking work advances the clock
    past another's scheduled start; [now t -. current_lag t] recovers
    the session-local time — {!App_server}'s request queue uses it as
    the arrival time, so a fleet's requests queue up as if they really
    were concurrent. Reset to 0 when the queue drains. *)
val current_lag : t -> float

(** Advance time directly (models synchronous blocking work). *)
val sleep : t -> float -> unit

(** Schedule a task [delay] seconds from now. Tasks with equal fire
    times run in scheduling order. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

val pending : t -> int

(** Run the earliest task (advancing time to its fire time). Returns
    false if the queue is empty. *)
val run_next : t -> bool

(** Raised by {!run_until_idle} when its task budget runs out with
    work still queued: [budget] tasks ran, [pending] remain. Large
    simulations (the fleet scheduler) pass an explicit budget scaled
    to their size; truncation is never silent — the exception is
    raised after bumping the [clock.budget-exhausted] counter and
    logging at error level. *)
exception Budget_exhausted of { budget : int; pending : int }

(** Run tasks until the queue is empty. [max_tasks] (default 100_000)
    guards against runaway self-scheduling loops; on overflow raises
    {!Budget_exhausted}. *)
val run_until_idle : ?max_tasks:int -> t -> unit

(** Epoch offset: virtual time 0 corresponds to this dateTime; used to
    expose the clock as fn:current-dateTime(). *)
val to_datetime : t -> Xdm_datetime.t
