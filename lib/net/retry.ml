type policy = {
  max_attempts : int;
  attempt_timeout : float option;
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  jitter : float;
}

let default =
  {
    max_attempts = 3;
    attempt_timeout = None;
    backoff_base = 0.1;
    backoff_factor = 2.;
    backoff_max = 5.;
    jitter = 0.1;
  }

let disabled =
  {
    max_attempts = 1;
    attempt_timeout = None;
    backoff_base = 0.;
    backoff_factor = 1.;
    backoff_max = 0.;
    jitter = 0.;
  }

type stats = {
  mutable attempts : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable successes : int;
  mutable exhausted : int;
}

let make_stats () =
  { attempts = 0; retries = 0; timeouts = 0; successes = 0; exhausted = 0 }

let timeout_status = 408

let timeout_response =
  { Http_sim.status = timeout_status; body = "attempt timed out (virtual deadline)";
    content_type = "text/plain"; retry_after = None }

let retryable resp =
  resp.Http_sim.status = 0 || resp.Http_sim.status >= 500
  || resp.Http_sim.status = timeout_status

let backoff policy ~attempt =
  Float.min policy.backoff_max
    (policy.backoff_base *. (policy.backoff_factor ** float_of_int (attempt - 1)))

let backoff_total policy ~attempts =
  let rec sum k acc =
    if k >= attempts then acc else sum (k + 1) (acc +. backoff policy ~attempt:k)
  in
  sum 1 0. *. (1. +. policy.jitter)

let fetch_check ?(policy = default) ?prng ?stats ~check http ?meth ?body uri =
  let clock = Http_sim.clock http in
  let record f = match stats with Some s -> f s | None -> () in
  (* mirror the per-call [stats] record into the global metrics
     registry, so `browser:stats()` and --metrics see retry behaviour
     without threading a stats value everywhere *)
  let metric name = if !Obs.Metrics.enabled then Obs.Metrics.incr name in
  let jittered delay =
    match prng with
    | Some p when policy.jitter > 0. && delay > 0. ->
        delay *. (1. +. (policy.jitter *. ((2. *. Prng.float p) -. 1.)))
    | _ -> delay
  in
  let rec attempt k =
    record (fun s -> s.attempts <- s.attempts + 1);
    metric "retry.attempts";
    let resp, latency = Http_sim.serve http ?meth ?body uri in
    let resp =
      match policy.attempt_timeout with
      | Some deadline when latency > deadline ->
          (* the caller waited exactly until the deadline, then gave up *)
          Virtual_clock.sleep clock deadline;
          record (fun s -> s.timeouts <- s.timeouts + 1);
          metric "retry.timeouts";
          timeout_response
      | _ ->
          Virtual_clock.sleep clock latency;
          resp
    in
    let verdict =
      if resp.Http_sim.status = 200 then
        match check resp with Ok v -> `Ok v | Error _ -> `Transient resp
      else if retryable resp then `Transient resp
      else `Permanent resp
    in
    match verdict with
    | `Ok v ->
        record (fun s -> s.successes <- s.successes + 1);
        metric "retry.successes";
        Ok v
    | `Permanent resp -> Error resp
    | `Transient resp ->
        if k >= policy.max_attempts then begin
          record (fun s -> s.exhausted <- s.exhausted + 1);
          metric "retry.exhausted";
          Error resp
        end
        else begin
          record (fun s -> s.retries <- s.retries + 1);
          metric "retry.retries";
          let wait = Float.max 0. (jittered (backoff policy ~attempt:k)) in
          (* an overloaded server's Retry-After hint is a lower bound:
             coming back earlier would only be shed again *)
          let wait =
            match resp.Http_sim.retry_after with
            | Some ra when ra > wait ->
                metric "retry.retry-after-honored";
                ra
            | _ -> wait
          in
          if !Obs.Metrics.enabled then Obs.Metrics.observe "retry.backoff_s" wait;
          Virtual_clock.sleep clock wait;
          attempt (k + 1)
        end
  in
  if !Obs.Trace.enabled then
    Obs.Trace.with_span ~attrs:[ ("uri", uri) ] "net.fetch" (fun () ->
        let r = attempt 1 in
        (match r with
        | Ok _ -> Obs.Trace.add_attr "outcome" "ok"
        | Error resp ->
            Obs.Trace.add_attr "outcome"
              (Printf.sprintf "failed:%d" resp.Http_sim.status));
        r)
  else attempt 1

let fetch ?policy ?prng ?stats http ?meth ?body uri =
  match
    fetch_check ?policy ?prng ?stats ~check:(fun r -> Ok r) http ?meth ?body uri
  with
  | Ok r | Error r -> r
