open Xmlb

let namespace = "http://www.example.com/rest"

type fallback = {
  put : uri:string -> Dom.node -> unit;
  get : uri:string -> Dom.node option;
}

type client = {
  http : Http_sim.t;
  cache : (string, Dom.node) Hashtbl.t option;
  mutable hits : int;
  mutable misses : int;
  mutable online : unit -> bool;
  mutable policy : Retry.policy;
  prng : Prng.t;
  retry_stats : Retry.stats;
  mutable fallback : fallback option;
  mutable fallback_hits : int;
}

let make_client ?(cache = false) ?(retry = Retry.default) ?(seed = 0) http =
  {
    http;
    cache = (if cache then Some (Hashtbl.create 16) else None);
    hits = 0;
    misses = 0;
    online = (fun () -> true);
    policy = retry;
    prng = Prng.create ~seed;
    retry_stats = Retry.make_stats ();
    fallback = None;
    fallback_hits = 0;
  }

let cache_hits c = c.hits
let cache_misses c = c.misses

let clear_cache c =
  match c.cache with Some t -> Hashtbl.reset t | None -> ()

let set_retry_policy c policy = c.policy <- policy
let retry_policy c = c.policy
let retry_stats c = c.retry_stats

let set_fallback c ~put ~get = c.fallback <- Some { put; get }
let fallback_hits c = c.fallback_hits

let err fmt = Xquery.Xq_error.raise_error "FODC0002" fmt

let set_online_guard c guard = c.online <- guard

let require_online c uri =
  if not (c.online ()) then err "offline: cannot fetch %s" uri

let retry_fetch c ?meth ?body uri =
  Retry.fetch ~policy:c.policy ~prng:c.prng ~stats:c.retry_stats c.http ?meth ?body
    uri

let fetch_doc c uri =
  require_online c uri;
  match
    Retry.fetch_check ~policy:c.policy ~prng:c.prng ~stats:c.retry_stats
      ~check:(fun resp ->
        match Dom.of_string resp.Http_sim.body with
        | doc -> Ok doc
        | exception _ -> Error "not well-formed")
      c.http uri
  with
  | Ok doc ->
      (* remember a pristine copy for graceful degradation (§2.4): if
         the network later fails for good, the document can still be
         served from client-side storage *)
      (match c.fallback with Some f -> f.put ~uri (Dom.clone doc) | None -> ());
      doc
  | Error resp -> (
      let stored =
        match c.fallback with Some f -> f.get ~uri | None -> None
      in
      match stored with
      | Some doc ->
          c.fallback_hits <- c.fallback_hits + 1;
          (* serve a copy so query-side mutations cannot damage the backup *)
          Dom.clone doc
      | None ->
          if resp.Http_sim.status = 200 then
            err "REST GET %s: response is not well-formed XML" uri
          else err "REST GET %s failed with status %d" uri resp.Http_sim.status)

let get_doc c uri =
  match c.cache with
  | None ->
      c.misses <- c.misses + 1;
      fetch_doc c uri
  | Some table -> (
      match Hashtbl.find_opt table uri with
      | Some doc ->
          c.hits <- c.hits + 1;
          doc
      | None ->
          c.misses <- c.misses + 1;
          let doc = fetch_doc c uri in
          Hashtbl.add table uri doc;
          doc)

let seq_string seq = Xdm_item.sequence_string seq

let response_to_sequence resp =
  if resp.Http_sim.status <> 200 then
    err "REST call failed with status %d" resp.Http_sim.status
  else
    match Dom.of_string resp.Http_sim.body with
    | doc -> [ Xdm_item.Node doc ]
    | exception _ -> [ Xdm_item.Atomic (Xdm_atomic.String resp.Http_sim.body) ]

let install c sctx =
  Xquery.Static_context.declare_namespace sctx ~prefix:"rest" ~uri:namespace;
  let register local arity f =
    Xquery.Static_context.register_external sctx
      (Qname.make ~uri:namespace local)
      ~arity f
  in
  register "get" 1 (fun _cctx args ->
      let uri = seq_string (List.nth args 0) in
      [ Xdm_item.Node (get_doc c uri) ]);
  register "get-text" 1 (fun _cctx args ->
      let uri = seq_string (List.nth args 0) in
      require_online c uri;
      let resp = retry_fetch c uri in
      if resp.Http_sim.status <> 200 then
        err "REST GET %s failed with status %d" uri resp.Http_sim.status
      else [ Xdm_item.Atomic (Xdm_atomic.String resp.Http_sim.body) ]);
  register "post" 2 (fun _cctx args ->
      let uri = seq_string (List.nth args 0) in
      require_online c uri;
      let body = seq_string (List.nth args 1) in
      response_to_sequence (retry_fetch c ~meth:Http_sim.Post ~body uri))
