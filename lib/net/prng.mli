(** A deterministic, seedable pseudo-random number generator
    (splitmix64). The fault-injection layer and the retry jitter draw
    from instances of this generator rather than [Stdlib.Random] so
    that a fault schedule is a pure function of (seed, request
    sequence): the same seed replays byte-identically across runs and
    OCaml versions, which is what makes the failure-mode test suite
    deterministic. *)

type t

val create : seed:int -> t

(** An independent generator with the same current state. *)
val copy : t -> t

(** Next raw 64-bit state word. *)
val bits64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform int in [0, bound). [bound] must be positive. *)
val int : t -> int -> int
