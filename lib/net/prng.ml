(* splitmix64 (Steele, Lea, Flood 2014): tiny, fast, and with a
   64-bit state that steps by a fixed odd constant, so every seed gives
   a full-period, well-mixed stream. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L
let mix1 = 0xBF58476D1CE4E5B9L
let mix2 = 0x94D049BB133111EBL

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) mix1 in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) mix2 in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* top 53 bits scaled into [0,1) — the usual double construction *)
let float t =
  Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1p-53

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  int_of_float (float t *. float_of_int bound)
