(** Resilience policy for the simulated network: bounded retries with
    per-attempt timeouts and exponential backoff, all in virtual time
    on the {!Virtual_clock}.

    The paper's headline scenarios (§6.1 server offload, §4.4 async
    [behind]) assume a client that copes with flaky transport; this
    module is that client-side policy. Failures considered transient —
    dropped connections (status 0), 5xx responses, and virtual
    timeouts — are retried after a backoff delay; deterministic
    failures (404, 400…) are returned immediately. Backoff jitter is
    drawn from a caller-supplied seeded {!Prng}, so retry schedules
    replay exactly; with no PRNG, delays are the un-jittered curve. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  attempt_timeout : float option;
      (** give up on an attempt after this many virtual seconds: the
          clock advances by exactly the timeout, not the full latency *)
  backoff_base : float;  (** delay after the first failed attempt *)
  backoff_factor : float;  (** multiplier per further failure *)
  backoff_max : float;  (** cap on a single backoff delay *)
  jitter : float;
      (** each delay is scaled by a uniform factor in
          [1-jitter, 1+jitter] (when a PRNG is supplied) *)
}

(** 3 attempts, no timeout, 0.1 s base doubling to a 5 s cap, 10%
    jitter. At fault rate 0 this is indistinguishable from no policy:
    no retries happen, no randomness is consumed. *)
val default : policy

(** Exactly one attempt, no timeout — the no-resilience baseline. *)
val disabled : policy

type stats = {
  mutable attempts : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable successes : int;
  mutable exhausted : int;  (** requests that failed every attempt *)
}

val make_stats : unit -> stats

(** The synthetic response returned when an attempt times out. *)
val timeout_status : int

(** Is this response worth retrying? (status 0, 5xx, or timeout) *)
val retryable : Http_sim.response -> bool

(** Backoff delay scheduled after failed attempt number [attempt]
    (1-based), before jitter: [min backoff_max (base * factor^(attempt-1))]. *)
val backoff : policy -> attempt:int -> float

(** Closed-form upper bound on the total backoff slept by a request
    that made [attempts] attempts: the sum of {!backoff} over the
    [attempts - 1] failures, scaled by [1 + jitter]. Together with the
    per-attempt wait times this bounds total elapsed virtual time —
    the property the QCheck suite verifies. *)
val backoff_total : policy -> attempts:int -> float

(** Fetch with retries. Returns the first success, or the response of
    the final failed attempt (deterministic failures return at once). *)
val fetch :
  ?policy:policy ->
  ?prng:Prng.t ->
  ?stats:stats ->
  Http_sim.t ->
  ?meth:Http_sim.meth ->
  ?body:string ->
  string ->
  Http_sim.response

(** Like {!fetch}, but a 200 response must also pass [check] (e.g.
    parse as XML); a check failure counts as transient — a corrupted
    body is retried like a dropped connection. [Error] carries the
    final failed response. *)
val fetch_check :
  ?policy:policy ->
  ?prng:Prng.t ->
  ?stats:stats ->
  check:(Http_sim.response -> ('a, string) result) ->
  Http_sim.t ->
  ?meth:Http_sim.meth ->
  ?body:string ->
  string ->
  ('a, Http_sim.response) result
