(** A simulated HTTP layer over the virtual clock.

    Hosts register handlers under ["host[:port]"]; clients fetch by
    URI. Latency is modelled as [base + per_kb * size] virtual seconds
    each way, so the server-offload experiment (paper §6.1 / Fig. 2)
    can count both requests and time. *)

type meth = Get | Post

type request = { meth : meth; uri : string; path : string; body : string option }

type response = {
  status : int;
  body : string;
  content_type : string;
  retry_after : float option;
      (** a [Retry-After] hint in virtual seconds, set by overloaded
          servers on 503 responses; {!Retry} honours it as a lower
          bound on the backoff before the next attempt *)
}

type latency_model = {
  base : float;  (** per-request virtual seconds *)
  per_kb : float;  (** additional seconds per KiB of response body *)
}

val default_latency : latency_model

(** {1 Fault injection}

    The simulated network can be made adversarial: each request drawn
    against a {!fault_spec} may be dropped (status 0, fast failure),
    answered 503, have its body corrupted (truncated mid-markup), or
    pay extra latency. Decisions come from a {!Prng} seeded via
    {!set_faults}, in a fixed per-request draw order, so a fault
    schedule is exactly reproducible from its seed. Probabilities of 0
    consume no randomness: a rate-0 spec is byte-identical to no spec. *)

type fault_kind = Drop | Http_5xx | Corrupt_body | Extra_delay

type fault_spec = {
  drop : float;  (** P(connection drops; response has status 0) *)
  http_5xx : float;  (** P(server answers 503 without running the handler) *)
  corrupt_body : float;  (** P(a 200 body is truncated and de-well-formed) *)
  extra_delay : float;  (** P(the round trip pays [extra_delay_s] more) *)
  extra_delay_s : float;  (** magnitude of the injected delay, seconds *)
}

val no_faults : fault_spec

(** A simple adversary: total failure probability [rate], split evenly
    between drops and 503s. [rate] must be in [0, 1). *)
val uniform_faults : rate:float -> fault_spec

type t

val create : ?latency:latency_model -> Virtual_clock.t -> t
val clock : t -> Virtual_clock.t

(** Register a handler for a host (e.g. ["www.example.com"] or
    ["localhost:2001"]). *)
val register_host : t -> host:string -> (request -> response) -> unit

(** The currently registered handler for a host, for chaining. *)
val find_host : t -> host:string -> (request -> response) option

(** Convenience: serve a fixed document body at exactly this URI. *)
val register_doc : t -> uri:string -> ?content_type:string -> string -> unit

val ok : ?content_type:string -> string -> response
val not_found : string -> response

(** Split a URI into (host, path): ["http://h:1/p?q"] → (["h:1"], ["/p?q"]). *)
val split_uri : string -> (string * string) option

(** Install a fault model, either as the default for every host or
    (with [~host]) as a per-host override. Each call installs a fresh
    PRNG seeded with [seed], so two identically-seeded runs replay the
    same schedule. *)
val set_faults : t -> ?host:string -> seed:int -> fault_spec -> unit

val clear_faults : t -> unit

(** Serve a request and return [(response, round-trip latency)] without
    advancing the clock — the hook {!Retry} uses to model per-attempt
    timeouts (the caller decides how much of the latency it waits). *)
val serve : t -> ?meth:meth -> ?body:string -> string -> response * float

(** Add [s] virtual seconds of server-side work (queueing + service
    time) to the latency of the request currently being handled. Only
    meaningful from inside a host handler; {!App_server}'s request
    queue uses it so clients pay for server load. *)
val charge_latency : t -> float -> unit

(** Synchronous fetch: advances the virtual clock by the round-trip
    latency (models a blocking XMLHttpRequest). *)
val fetch : t -> ?meth:meth -> ?body:string -> string -> response

(** Asynchronous fetch: schedules the callback after the round-trip
    latency without blocking the caller. *)
val fetch_async :
  t -> ?meth:meth -> ?body:string -> string -> (response -> unit) -> unit

(** {1 Statistics (per host)} *)

val request_count : t -> host:string -> int
val total_requests : t -> int
val bytes_served : t -> host:string -> int

(** Number of faults injected so far, by kind. *)
val injected_faults : t -> fault_kind -> int

val total_injected_faults : t -> int

(** Requests answered for [host] that did ([ok:true]) / did not
    ([ok:false]) end in a 200. *)
val outcome_count : t -> host:string -> ok:bool -> int

val reset_stats : t -> unit
