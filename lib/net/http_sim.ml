type meth = Get | Post

type request = { meth : meth; uri : string; path : string; body : string option }

type response = {
  status : int;
  body : string;
  content_type : string;
  retry_after : float option;
}

type latency_model = { base : float; per_kb : float }

let default_latency = { base = 0.05; per_kb = 0.002 }

(* ---------------- fault injection ---------------- *)

type fault_kind = Drop | Http_5xx | Corrupt_body | Extra_delay

type fault_spec = {
  drop : float;
  http_5xx : float;
  corrupt_body : float;
  extra_delay : float;
  extra_delay_s : float;
}

let no_faults =
  { drop = 0.; http_5xx = 0.; corrupt_body = 0.; extra_delay = 0.; extra_delay_s = 0. }

let uniform_faults ~rate =
  if rate < 0. || rate >= 1. then invalid_arg "uniform_faults: rate must be in [0, 1)";
  { no_faults with drop = rate /. 2.; http_5xx = rate /. 2. }

type fault_state = { spec : fault_spec; prng : Prng.t }

type t = {
  clock : Virtual_clock.t;
  latency : latency_model;
  handlers : (string, request -> response) Hashtbl.t;
  counts : (string, int) Hashtbl.t;
  bytes : (string, int) Hashtbl.t;
  mutable faults : fault_state option;  (** default for every host *)
  host_faults : (string, fault_state) Hashtbl.t;
  fault_counts : (fault_kind, int) Hashtbl.t;
  outcomes : (string * bool, int) Hashtbl.t;  (** (host, ok?) -> count *)
  mutable pending_cost : float;
      (** virtual seconds charged by the handler of the in-flight
          request (queueing/service time); folded into its latency *)
}

let create ?(latency = default_latency) clock =
  {
    clock;
    latency;
    handlers = Hashtbl.create 8;
    counts = Hashtbl.create 8;
    bytes = Hashtbl.create 8;
    faults = None;
    host_faults = Hashtbl.create 4;
    fault_counts = Hashtbl.create 4;
    outcomes = Hashtbl.create 8;
    pending_cost = 0.;
  }

let charge_latency t s = if s > 0. then t.pending_cost <- t.pending_cost +. s

let clock t = t.clock

let register_host t ~host handler = Hashtbl.replace t.handlers host handler
let find_host t ~host = Hashtbl.find_opt t.handlers host

let ok ?(content_type = "application/xml") body =
  { status = 200; body; content_type; retry_after = None }

let not_found path =
  { status = 404; body = "not found: " ^ path; content_type = "text/plain";
    retry_after = None }

let split_uri uri =
  let strip prefix s =
    let n = String.length prefix in
    if String.length s >= n && String.sub s 0 n = prefix then
      Some (String.sub s n (String.length s - n))
    else None
  in
  match
    match strip "http://" uri with
    | Some rest -> Some rest
    | None -> strip "https://" uri
  with
  | None -> None
  | Some rest -> (
      match String.index_opt rest '/' with
      | None -> Some (rest, "/")
      | Some i ->
          Some (String.sub rest 0 i, String.sub rest i (String.length rest - i)))

let register_doc t ~uri ?(content_type = "application/xml") body =
  match split_uri uri with
  | None -> invalid_arg ("register_doc: bad uri " ^ uri)
  | Some (host, path) ->
      let previous = Hashtbl.find_opt t.handlers host in
      register_host t ~host (fun req ->
          if String.equal req.path path then ok ~content_type body
          else
            match previous with
            | Some h -> h req
            | None -> not_found req.path)

let bump table key delta =
  Hashtbl.replace table key (delta + Option.value ~default:0 (Hashtbl.find_opt table key))

let fault_metric = function
  | Drop -> "net.fault.drop"
  | Http_5xx -> "net.fault.http-5xx"
  | Corrupt_body -> "net.fault.corrupt-body"
  | Extra_delay -> "net.fault.extra-delay"

let bump_fault t kind =
  bump t.fault_counts kind 1;
  if !Obs.Metrics.enabled then Obs.Metrics.incr (fault_metric kind)

let set_faults t ?host ~seed spec =
  let state = { spec; prng = Prng.create ~seed } in
  match host with
  | Some host -> Hashtbl.replace t.host_faults host state
  | None -> t.faults <- Some state

let clear_faults t =
  t.faults <- None;
  Hashtbl.reset t.host_faults

let injected_faults t kind =
  Option.value ~default:0 (Hashtbl.find_opt t.fault_counts kind)

let total_injected_faults t = Hashtbl.fold (fun _ c acc -> acc + c) t.fault_counts 0

let outcome_count t ~host ~ok =
  Option.value ~default:0 (Hashtbl.find_opt t.outcomes (host, ok))

let fault_for t host =
  match Hashtbl.find_opt t.host_faults host with
  | Some _ as s -> s
  | None -> t.faults

(* skip the PRNG entirely for zero probabilities: a rate-0 spec consumes
   no randomness and behaves byte-identically to no spec at all *)
let draw state p = p > 0. && Prng.float state.prng < p

let dropped_response =
  { status = 0; body = "network error: connection dropped (injected fault)";
    content_type = "text/plain"; retry_after = None }

let unavailable_response =
  { status = 503; body = "service unavailable (injected fault)";
    content_type = "text/plain"; retry_after = None }

(* keep the first half and break the markup: downstream XML parsing is
   guaranteed to fail, like a truncated transfer *)
let corrupt_response resp =
  { resp with body = String.sub resp.body 0 (String.length resp.body / 2) ^ "<corrupt" }

(* serve a request, returning the response and any injected extra
   latency; fault decisions draw from the per-host (or default) PRNG in
   a fixed order, so the schedule replays exactly for a given seed *)
let serve_faulted t ~meth ~body uri =
  match split_uri uri with
  | None ->
      ({ status = 400; body = "bad uri: " ^ uri; content_type = "text/plain";
         retry_after = None }, 0.)
  | Some (host, path) ->
      bump t.counts host 1;
      let fs = fault_for t host in
      let extra =
        match fs with
        | Some s when draw s s.spec.extra_delay ->
            bump_fault t Extra_delay;
            s.spec.extra_delay_s
        | _ -> 0.
      in
      let resp, extra =
        match fs with
        | Some s when draw s s.spec.drop ->
            bump_fault t Drop;
            (dropped_response, extra)
        | Some s when draw s s.spec.http_5xx ->
            bump_fault t Http_5xx;
            (unavailable_response, extra)
        | _ -> (
            match Hashtbl.find_opt t.handlers host with
            | None ->
                ({ status = 502; body = "unknown host: " ^ host;
                   content_type = "text/plain"; retry_after = None }, extra)
            | Some handler -> (
                (* the handler may charge server-side queueing/service
                   time via [charge_latency]; save/restore so a nested
                   serve from inside a handler stays correctly scoped *)
                let saved = t.pending_cost in
                t.pending_cost <- 0.;
                let resp = handler { meth; uri; path; body } in
                let cost = t.pending_cost in
                t.pending_cost <- saved;
                let extra = extra +. cost in
                match fs with
                | Some s when resp.status = 200 && draw s s.spec.corrupt_body ->
                    bump_fault t Corrupt_body;
                    (corrupt_response resp, extra)
                | _ -> (resp, extra)))
      in
      bump t.bytes host (String.length resp.body);
      bump t.outcomes (host, resp.status = 200) 1;
      (resp, extra)

let round_trip_latency t resp =
  t.latency.base
  +. (t.latency.per_kb *. (float_of_int (String.length resp.body) /. 1024.))

let serve t ?(meth = Get) ?body uri =
  let go () =
    let resp, extra = serve_faulted t ~meth ~body uri in
    (* a dropped connection fails fast (connection reset after the base
       round trip); everything else pays the size-dependent model *)
    let latency =
      (if resp.status = 0 then t.latency.base else round_trip_latency t resp) +. extra
    in
    if !Obs.Metrics.enabled then begin
      Obs.Metrics.incr "net.requests";
      Obs.Metrics.incr ~by:(String.length resp.body) "net.bytes";
      Obs.Metrics.observe "net.latency_s" latency
    end;
    (resp, latency)
  in
  if !Obs.Trace.enabled then
    Obs.Trace.with_span ~attrs:[ ("uri", uri) ] "net.request" (fun () ->
        let ((resp, latency) as r) = go () in
        Obs.Trace.add_attr "status" (string_of_int resp.status);
        Obs.Trace.add_attr "latency_s" (Printf.sprintf "%.4f" latency);
        r)
  else go ()

let fetch t ?(meth = Get) ?body uri =
  let resp, latency = serve t ~meth ?body uri in
  Virtual_clock.sleep t.clock latency;
  resp

let fetch_async t ?(meth = Get) ?body uri callback =
  (* the request is served when the task fires, after the latency *)
  let delay_probe = t.latency.base in
  Virtual_clock.schedule t.clock ~delay:delay_probe (fun () ->
      let resp, latency = serve t ~meth ?body uri in
      let extra = latency -. delay_probe in
      if extra > 0. then
        Virtual_clock.schedule t.clock ~delay:extra (fun () -> callback resp)
      else callback resp)

let request_count t ~host = Option.value ~default:0 (Hashtbl.find_opt t.counts host)
let total_requests t = Hashtbl.fold (fun _ c acc -> acc + c) t.counts 0
let bytes_served t ~host = Option.value ~default:0 (Hashtbl.find_opt t.bytes host)

let reset_stats t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.bytes;
  Hashtbl.reset t.fault_counts;
  Hashtbl.reset t.outcomes
