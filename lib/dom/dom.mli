(** A mutable DOM: the tree the browser renders and XQuery queries.

    This mirrors the W3C DOM core subset a browser scripting language
    needs — documents, elements, attributes, text, comments, processing
    instructions — with structural mutation, document order, and
    mutation observers (used by the browser runtime to track dirtying
    and to synchronise the window tree, cf. paper §5.2 where the XDM
    store wraps the DOM). *)

open Xmlb

type node

type kind =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Processing_instruction

exception Dom_error of string

(** {1 Construction} *)

val create_document : ?uri:string -> unit -> node
val create_element : ?attrs:(Qname.t * string) list -> Qname.t -> node
val create_attribute : Qname.t -> string -> node
val create_text : string -> node
val create_comment : string -> node
val create_pi : target:string -> string -> node

(** Deep copy; the copy has no parent and fresh node identities. *)
val clone : node -> node

(** {1 Inspection} *)

val kind : node -> kind

(** Unique node identity (creation order). *)
val id : node -> int

val name : node -> Qname.t option
val parent : node -> node option

(** Children, excluding attributes. Documents and elements only;
    other kinds return []. *)
val children : node -> node list

val attributes : node -> node list
val attribute : node -> Qname.t -> string option

(** Like {!attribute} but matches on local name only (namespace
    ignored) — convenient for HTML-ish documents. *)
val attribute_local : node -> string -> string option

(** Node value: attribute/text/comment/PI content; [None] for
    documents and elements. *)
val value : node -> string option

(** The URI a document node was created with ([fn:document-uri]). *)
val document_uri : node -> string option

val pi_target : node -> string option

(** The root of the tree containing the node (a document node if the
    tree is rooted in one, else the topmost element). *)
val root : node -> node

(** XDM string value: concatenation of descendant text for
    documents/elements, content otherwise. *)
val string_value : node -> string

val ancestors : node -> node list

(** Descendants in document order, excluding the node itself and
    attributes. *)
val descendants : node -> node list

val following_siblings : node -> node list
val preceding_siblings : node -> node list

(** [compare_order a b] orders nodes in document order. Nodes from
    different trees are ordered by their root's identity (stable,
    implementation-defined, as XDM permits). When acceleration is on
    (the default) this is an O(1) compare of cached per-document
    ordinals, relabelled lazily after mutations; the path-based
    comparison remains the fallback. *)
val compare_order : node -> node -> int

(** The path-based comparison, bypassing the order-key cache — the
    ablation baseline and the oracle the accelerated compare is tested
    against. Same contract as {!compare_order}. *)
val compare_order_naive : node -> node -> int

(** The node's cached position as a [(root id, ordinal)] pair that
    sorts consistently with {!compare_order} — lets bulk sorts fetch
    each key once instead of once per comparison. [None] when
    acceleration is off. *)
val order_key : node -> (int * int) option

(** {1 Acceleration}

    Each tree root lazily carries cached document-order keys and
    id/local-name element indexes, invalidated by a per-root
    generation counter bumped on every mutation and rebuilt on
    demand. The switch selects the naive implementations instead
    (same observable behaviour — used for ablation benchmarks and as
    the property-test oracle). Global; on by default. *)

val set_acceleration : bool -> unit
val acceleration_enabled : unit -> bool

(** {1 Value indexes}

    Per-root hash indexes keyed by [(local name, string value)]:
    attribute values mapped to their owning elements, and the string
    value of "flat" elements (no element children) mapped to those
    elements. Stamped with the same per-root generation counter as the
    other accel caches, so every mutation — including all PUL
    primitives — invalidates them; they rebuild lazily on the next
    lookup. Independent switch (on by default) so join/lookup
    ablations keep document-order keys. *)

val set_value_index : bool -> unit
val value_index_enabled : unit -> bool

(** {1 Interned-name fast paths}

    The [--no-interning] ablation switch, forwarded to the global
    [Xmlb.Sym] switch: gates [Qname.equal]/[compare] and the
    evaluator's symbol-keyed probes back to string comparison. The
    intern table itself and the symbol keying of the DOM indexes stay
    on either way (interning is a bijection, so both modes agree on
    every key); only the fast paths are ablated. Global; on by
    default. *)

val set_interned_fastpaths : bool -> unit
val interned_fastpaths_enabled : unit -> bool

(** Elements in the subtree of the given node (inclusive) owning an
    attribute with the given local name (any namespace) and exact
    value, in document order. [None] when the index cannot answer
    (switch off) — fall back to a scan. *)
val elements_by_attr_value : node -> local:string -> string -> node list option

(** Like {!elements_by_attr_value}, keyed by the pre-interned
    local-name symbol (no string hashing on the probe). *)
val elements_by_attr_value_sym :
  node -> local:Sym.t -> string -> node list option

(** Flat elements in the subtree of the given node (inclusive) with
    the given local name (any namespace) and exact string value, in
    document order. [None] when the index cannot answer (switch off,
    or some element with this local name has element children). *)
val elements_by_text_value : node -> local:string -> string -> node list option

(** Like {!elements_by_text_value}, keyed by the pre-interned
    local-name symbol. *)
val elements_by_text_value_sym :
  node -> local:Sym.t -> string -> node list option

(** Current accel generation of the tree containing the node (0 if no
    accel state yet). Bumped once per mutation; lets tests pin down
    cache-invalidation behaviour. *)
val generation : node -> int

val is_ancestor : ancestor:node -> node -> bool
val equal : node -> node -> bool

(** {1 Mutation}

    All mutation functions notify the observers registered on the
    mutated tree's root. *)

val append_child : parent:node -> node -> unit
val insert_first : parent:node -> node -> unit
val insert_before : sibling:node -> node -> unit
val insert_after : sibling:node -> node -> unit

(** Detach from parent; no-op for parentless nodes. *)
val remove : node -> unit

(** Replace a node with a list of nodes (empty list = delete).
    @raise Dom_error if the node has no parent. *)
val replace : node -> node list -> unit

(** Set the value of an attribute/text/comment/PI node; for an element
    or document, replaces all children with a single text node
    (XQUF [replace value of node] semantics). *)
val set_value : node -> string -> unit

val rename : node -> Qname.t -> unit

(** Sets (or replaces) an attribute on an element. *)
val set_attribute : node -> Qname.t -> string -> unit

val remove_attribute : node -> Qname.t -> unit

(** Attach a parentless attribute node to an element. *)
val append_attribute : parent:node -> node -> unit

(** {1 Mutation observers} *)

type mutation =
  | Children_changed of node  (** the parent whose child list changed *)
  | Attribute_changed of node * Qname.t  (** element, attribute name *)
  | Value_changed of node
  | Renamed of node

type observer_id

(** Observe all mutations in the tree rooted at [root]. *)
val observe : root:node -> (mutation -> unit) -> observer_id

val unobserve : observer_id -> unit

(** Run [f] with observer notifications batched: mutations performed
    inside [f] queue their notifications and deliver them, in mutation
    order, when the outermost batch closes — so observers (and the
    footprint dirtiness pass) see one coherent post-apply changeset
    instead of mid-transaction state. Generation bumps stay immediate.
    Nestable; exception-safe (queued notifications still flush). *)
val with_batch : (unit -> 'a) -> 'a

(** {1 Conversion} *)

(** Build a document node from parsed XML. *)
val of_tree : Xml_parser.tree list -> node

val of_string : ?options:Xml_parser.options -> string -> node

(** Convert (element/text/comment/PI or document) to the immutable
    tree representation; a document converts to its children.  *)
val to_trees : node -> Xml_parser.tree list

val serialize : ?indent:bool -> node -> string
val pp : Format.formatter -> node -> unit

(** Find the first descendant element (including self if element) with
    the given [id] attribute value (HTML [getElementById]). Index-backed
    when acceleration is on; an early-exit scan otherwise. *)
val get_element_by_id : node -> string -> node option

(** All descendant elements (including self if element) with the given
    local name, any namespace, in document order. Index-backed when
    acceleration is on. The string entry point interns its argument;
    callers holding a [Qname.t] should pass the pre-interned symbol to
    {!get_elements_by_local_sym} so the index probe is pure int
    hashing. *)
val get_elements_by_local_name : node -> string -> node list

val get_elements_by_local_sym : node -> Sym.t -> node list
