(** DOM Level 3 events: registration, capture/target/bubble dispatch.

    The paper's event extension ([on event ... attach listener ...],
    §4.3) and JavaScript's [addEventListener] both compile down to this
    module. Listeners are stored in a side table keyed by node identity,
    so the {!Dom} tree itself stays purely structural. *)

type phase = Capturing | At_target | Bubbling

type event = {
  event_type : string;  (** e.g. ["onclick"], ["stateChanged"] *)
  target : Dom.node;
  mutable current_target : Dom.node option;
  mutable phase : phase;
  mutable propagation_stopped : bool;
  mutable default_prevented : bool;
  detail : (string * string) list;
      (** event properties, e.g. [("button", "1"); ("altKey", "false")];
          exposed to XQuery as children of the event node (§4.3.2) *)
  payload : Dom.node option;
      (** structured payload, e.g. an async call result (§4.4) *)
}

val make_event :
  ?detail:(string * string) list ->
  ?payload:Dom.node ->
  event_type:string ->
  target:Dom.node ->
  unit ->
  event

val stop_propagation : event -> unit
val prevent_default : event -> unit

(** Concrete so engine layers can key per-registration state (reactive
    memos) by it. *)
type listener_id = int

(** Invoked with every listener id dropped from the table — explicit
    removal, same-name replacement in {!add_listener}, or {!reset} — so
    state keyed by listener id elsewhere is discarded with the
    registration instead of leaking. *)
val drop_hook : (listener_id -> unit) ref

(** [add_listener node ~event_type ~capture ~name f] registers [f].
    [name] identifies a named listener (an XQuery function QName) so
    the same function can later be detached; adding a listener with the
    same [name], [event_type] and [capture] replaces the old one, which
    matches DOM semantics of registering the same function twice. *)
val add_listener :
  Dom.node ->
  event_type:string ->
  ?capture:bool ->
  ?name:string ->
  (event -> unit) ->
  listener_id

val remove_listener : listener_id -> unit

(** Detach by name (paper's [detach listener] syntax). Returns the
    number of listeners removed. *)
val remove_named_listener :
  Dom.node -> event_type:string -> name:string -> int

(** Number of listeners currently attached to a node. *)
val listener_count : Dom.node -> int

(** Dispatch an event through capture, target and bubble phases along
    the ancestor chain of [event.target]. Returns [not default_prevented]. *)
val dispatch : event -> bool

(** Convenience: build and dispatch. *)
val fire :
  ?detail:(string * string) list ->
  ?payload:Dom.node ->
  event_type:string ->
  target:Dom.node ->
  unit ->
  bool

(** Total number of listener invocations since program start (used by
    benches and tests). *)
val invocation_count : unit -> int

(** Remove all listeners everywhere (test isolation). *)
val reset : unit -> unit
