type phase = Capturing | At_target | Bubbling

type event = {
  event_type : string;
  target : Dom.node;
  mutable current_target : Dom.node option;
  mutable phase : phase;
  mutable propagation_stopped : bool;
  mutable default_prevented : bool;
  detail : (string * string) list;
  payload : Dom.node option;
}

let make_event ?(detail = []) ?payload ~event_type ~target () =
  {
    event_type;
    target;
    current_target = None;
    phase = At_target;
    propagation_stopped = false;
    default_prevented = false;
    detail;
    payload;
  }

let stop_propagation e = e.propagation_stopped <- true
let prevent_default e = e.default_prevented <- true

type listener = {
  lid : int;
  node : Dom.node;
  event_type : string;
  capture : bool;
  lname : string option;
  callback : event -> unit;
}

type listener_id = int

(* node id -> listeners, in registration order *)
let table : (int, listener list) Hashtbl.t = Hashtbl.create 64
let listener_counter = ref 0
let invocations = ref 0

let node_listeners node = Option.value ~default:[] (Hashtbl.find_opt table (Dom.id node))

(* Invoked with every listener id dropped from the table — explicit
   removal, same-name replacement, or reset — so dependent state keyed
   by listener id (the reactive layer's memos) is discarded with it. *)
let drop_hook : (int -> unit) ref = ref (fun _ -> ())

let set_node_listeners node ls =
  if ls = [] then Hashtbl.remove table (Dom.id node)
  else Hashtbl.replace table (Dom.id node) ls

let add_listener node ~event_type ?(capture = false) ?name callback =
  incr listener_counter;
  let l = { lid = !listener_counter; node; event_type; capture; lname = name; callback } in
  let existing = node_listeners node in
  let existing =
    match name with
    | None -> existing
    | Some n ->
        let keep, replaced =
          List.partition
            (fun o ->
              not
                (o.lname = Some n
                && String.equal o.event_type event_type
                && o.capture = capture))
            existing
        in
        List.iter (fun o -> !drop_hook o.lid) replaced;
        keep
  in
  set_node_listeners node (existing @ [ l ]);
  l.lid

let remove_listener lid =
  let found = ref None in
  Hashtbl.iter
    (fun nid ls -> if List.exists (fun l -> l.lid = lid) ls then found := Some (nid, ls))
    table;
  match !found with
  | None -> ()
  | Some (nid, ls) -> (
      !drop_hook lid;
      match List.filter (fun l -> l.lid <> lid) ls with
      | [] -> Hashtbl.remove table nid
      | ls -> Hashtbl.replace table nid ls)

let remove_named_listener node ~event_type ~name =
  let ls = node_listeners node in
  let keep, drop =
    List.partition
      (fun l -> not (l.lname = Some name && String.equal l.event_type event_type))
      ls
  in
  set_node_listeners node keep;
  List.iter (fun l -> !drop_hook l.lid) drop;
  List.length drop

let listener_count node = List.length (node_listeners node)

let invoke_phase event node =
  event.current_target <- Some node;
  let matching =
    List.filter
      (fun l ->
        String.equal l.event_type event.event_type
        &&
        match event.phase with
        | Capturing -> l.capture
        | At_target -> true
        | Bubbling -> not l.capture)
      (node_listeners node)
  in
  List.iter
    (fun l ->
      if not event.propagation_stopped then begin
        incr invocations;
        l.callback event
      end)
    matching

let dispatch event =
  let chain = Dom.ancestors event.target in
  (* nearest-first per Dom.ancestors; capture goes root -> target *)
  let top_down = List.rev chain in
  event.phase <- Capturing;
  List.iter
    (fun n -> if not event.propagation_stopped then invoke_phase event n)
    top_down;
  if not event.propagation_stopped then begin
    event.phase <- At_target;
    invoke_phase event event.target
  end;
  event.phase <- Bubbling;
  List.iter
    (fun n -> if not event.propagation_stopped then invoke_phase event n)
    chain;
  not event.default_prevented

let fire ?detail ?payload ~event_type ~target () =
  dispatch (make_event ?detail ?payload ~event_type ~target ())

let invocation_count () = !invocations

let reset () =
  Hashtbl.iter (fun _ ls -> List.iter (fun l -> !drop_hook l.lid) ls) table;
  Hashtbl.reset table
