(** Read/write footprints for incremental listener recomputation.

    The evaluator records, per listener run, a {e read footprint}: which
    tree roots it consulted, which subtrees it walked, and which
    local-name / id / attribute-value index keys it probed — each probe
    scoped to the subtree it was confined to. The DOM mutators emit one
    {e write record} per mutation (root, ancestor-or-self chain of the
    mutation point, and the names / ids / attribute keys it touched),
    batched per PUL apply. {!intersects} decides whether a mutation
    batch can have changed anything a recorded run read.

    All entries are symbol-keyed ([Xmlb.Sym]): names arrive
    pre-interned from [Qname.t]; id and attribute values are interned
    at record time, so dispatch-time intersection is int hashing.

    The module is id/symbol-based only: it sits below [Dom] so both the
    DOM (capture side) and the evaluator (recording side) can use it. *)

open Xmlb

type read

val create : unit -> read

(** A single mutation's write summary. *)
type wrec

(** {1 Switch} *)

(** Global incremental-recomputation switch (the [--no-incremental]
    ablation). Off: nothing records, nothing captures, listeners always
    re-run. On by default. *)

val set_incremental : bool -> unit
val incremental_enabled : unit -> bool

(** {1 Tracked roots}

    Refcounted root ids appearing in some registered footprint.
    Mutations under other roots (fresh constructor trees) skip write
    capture entirely. *)

val track_root : int -> unit
val untrack_root : int -> unit

(** Should a mutation under this root id be captured? *)
val capturing : int -> bool

(** {1 Recording (read side)}

    One recorder is active at a time; [start] returns the previous one
    so nested listener runs save/restore. All [reading_*] calls are
    no-ops when no recorder is active. *)

val recording : unit -> bool
val start : read -> read option
val restore : read option -> unit

(** The run consulted this tree root (no finer information). *)
val reading_root : int -> unit

(** The run walked the subtree rooted at [node] (in tree [root]). *)
val reading_scope : root:int -> node:int -> unit

(** Local-name index probe confined to subtree [scope]. *)
val reading_name : root:int -> scope:int -> Sym.t -> unit

(** id lookup confined to subtree [scope]; the value is interned. *)
val reading_id : root:int -> scope:int -> string -> unit

(** (attribute local name, value) index probe confined to [scope];
    the value is interned. *)
val reading_key : root:int -> scope:int -> local:Sym.t -> string -> unit

(** The run read state we cannot fingerprint (global variables,
    external functions, impure builtins) or performed effects; its memo
    must never be skipped. *)
val poison : unit -> unit

val is_poisoned : read -> bool

(** {1 Write records}

    Built by the DOM mutators; queued until {!commit}, which hands the
    whole batch (one PUL apply, or a single direct mutation) to the
    reactive layer's [on_commit]. *)

val fresh_wrec : root:int -> chain:int list -> wrec
val add_wname : wrec -> Sym.t -> unit
val add_wid : wrec -> string -> unit
val add_wkey : wrec -> local:Sym.t -> string -> unit
val record_write : wrec -> unit
val commit : unit -> unit
val on_commit : (wrec list -> unit) ref

(** {1 Intersection} *)

(** [intersects fp batch]: could applying [batch] change anything the
    run that recorded [fp] read? Poisoned footprints intersect
    everything. *)
val intersects : read -> wrec list -> bool

(** Root ids the footprint consulted (for tracked-root refcounting). *)
val root_ids : read -> int list

(** Number of distinct recorded entries (diagnostics). *)
val entry_count : read -> int
