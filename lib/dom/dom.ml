open Xmlb

type kind =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Processing_instruction

type node = {
  nid : int;
  mutable nkind : payload;
  mutable nparent : node option;
  (* Acceleration state; only consulted while this node is a tree root.
     See the "Acceleration" section below. *)
  mutable naccel : accel option;
}

and accel = {
  mutable gen : int;
      (* bumped by every mutation under this root; caches whose
         [*_gen] stamp differs are stale and relabel on demand *)
  mutable egen : int;
      (* element-structure generation: bumped only by mutations that
         can change which elements exist, their names, or their id
         attributes. Value-only mutations (text/attribute content)
         leave it alone, so the id / local-name element indexes
         survive them *)
  mutable keys_gen : int;
  okeys : (int, int) Hashtbl.t;  (* nid -> document-order ordinal *)
  mutable idx_gen : int;
  by_id : (int, node list) Hashtbl.t;
      (* id attribute value (interned) -> elements, document order *)
  by_name : (int, node list) Hashtbl.t;
      (* local-name symbol -> elements, document order *)
  mutable vidx_gen : int;
  by_attr_value : (int * int, node list) Hashtbl.t;
      (* (attr local-name sym, value sym) -> owning elements, doc order *)
  by_text_value : (int * int, node list) Hashtbl.t;
      (* (elem local-name sym, string-value sym) -> flat elements,
         doc order *)
  text_complex : (int, unit) Hashtbl.t;
      (* local-name syms with at least one non-flat (element-children)
         occurrence; text-value lookups on these names are unreliable
         and must fall back to a scan *)
}

and payload =
  | P_document of { mutable dchildren : node list; uri : string option }
  | P_element of {
      mutable ename : Qname.t;
      mutable eattrs : node list;
      mutable echildren : node list;
    }
  | P_attribute of { mutable aname : Qname.t; mutable avalue : string }
  | P_text of { mutable tcontent : string }
  | P_comment of { mutable ccontent : string }
  | P_pi of { target : string; mutable pcontent : string }

exception Dom_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Dom_error m)) fmt
let counter = ref 0

let fresh payload =
  incr counter;
  { nid = !counter; nkind = payload; nparent = None; naccel = None }

let create_document ?uri () = fresh (P_document { dchildren = []; uri })

let create_attribute name value = fresh (P_attribute { aname = name; avalue = value })

let create_element ?(attrs = []) name =
  let n = fresh (P_element { ename = name; eattrs = []; echildren = [] }) in
  let make_attr (an, v) =
    let a = create_attribute an v in
    a.nparent <- Some n;
    a
  in
  (match n.nkind with
  | P_element e -> e.eattrs <- List.map make_attr attrs
  | _ -> assert false);
  n

let create_text content = fresh (P_text { tcontent = content })
let create_comment content = fresh (P_comment { ccontent = content })
let create_pi ~target content = fresh (P_pi { target; pcontent = content })

let kind n =
  match n.nkind with
  | P_document _ -> Document
  | P_element _ -> Element
  | P_attribute _ -> Attribute
  | P_text _ -> Text
  | P_comment _ -> Comment
  | P_pi _ -> Processing_instruction

let id n = n.nid

let name n =
  match n.nkind with
  | P_element e -> Some e.ename
  | P_attribute a -> Some a.aname
  | P_pi p -> Some (Qname.make p.target)
  | P_document _ | P_text _ | P_comment _ -> None

let parent n = n.nparent

let children n =
  match n.nkind with
  | P_document d -> d.dchildren
  | P_element e -> e.echildren
  | P_attribute _ | P_text _ | P_comment _ | P_pi _ -> []

let attributes n =
  match n.nkind with
  | P_element e -> e.eattrs
  | P_document _ | P_attribute _ | P_text _ | P_comment _ | P_pi _ -> []

let attribute n qn =
  List.find_map
    (fun a ->
      match a.nkind with
      | P_attribute { aname; avalue } when Qname.equal aname qn -> Some avalue
      | _ -> None)
    (attributes n)

let attribute_local n local =
  List.find_map
    (fun a ->
      match a.nkind with
      | P_attribute { aname; avalue } when String.equal aname.Qname.local local ->
          Some avalue
      | _ -> None)
    (attributes n)

let value n =
  match n.nkind with
  | P_attribute a -> Some a.avalue
  | P_text t -> Some t.tcontent
  | P_comment c -> Some c.ccontent
  | P_pi p -> Some p.pcontent
  | P_document _ | P_element _ -> None

let document_uri n =
  match n.nkind with P_document d -> d.uri | _ -> None

let pi_target n = match n.nkind with P_pi p -> Some p.target | _ -> None

let rec root n = match n.nparent with None -> n | Some p -> root p

(* ------------------------------------------------------------------ *)
(* Acceleration: per-root document-order keys and element indexes.

   Every root lazily carries an [accel] record: a generation counter
   bumped by every mutation under the root, plus three caches stamped
   with the generation they were built at — document-order ordinals
   (making [compare_order] an O(1) integer compare), an id->elements
   index and a local-name->elements index. Stale caches are rebuilt on
   demand by a single DFS. The [acceleration] switch keeps the naive
   implementations selectable as the ablation baseline and test
   oracle. *)

let acceleration = ref true
let set_acceleration b = acceleration := b
let acceleration_enabled () = !acceleration

(* Value indexes (attribute values and flat-element text) share the
   accel generation counter but have their own switch, so join/lookup
   ablations can disable them without losing document-order keys. *)
let value_index = ref true
let set_value_index b = value_index := b
let value_index_enabled () = !value_index

(* Interned-name fast paths (the [--no-interning] ablation): forwards
   to the global [Sym] switch, which gates [Qname.equal]/[compare] and
   the evaluator's symbol probes. Index *storage* stays symbol-keyed
   either way — interning is a bijection, so both modes probe the same
   keys; the switch selects whether probe keys come from pre-interned
   symbols or are re-derived from strings. *)
let set_interned_fastpaths b = Sym.set_fastpaths b
let interned_fastpaths_enabled () = Sym.fastpaths_enabled ()

(* The "id" attribute's symbol, compared against attribute local names
   on every structural-invalidation decision. *)
let id_sym : Sym.t = Sym.intern "id"

(* Like [attribute_local], matching on the pre-interned local-name
   symbol instead of the string. *)
let attribute_by_sym n (sym : Sym.t) =
  List.find_map
    (fun a ->
      match a.nkind with
      | P_attribute { aname; avalue } when Sym.equal aname.Qname.lsym sym ->
          Some avalue
      | _ -> None)
    (attributes n)

(* Mark a node's own accel state stale. Called whenever the node
   becomes parentless: its caches may describe a tree it was part of
   while attached (mutations there only bumped the attached root). *)
let touch n =
  match n.naccel with
  | Some s ->
      s.gen <- s.gen + 1;
      s.egen <- s.egen + 1
  | None -> ()

(* Mark only value-dependent caches stale: the mutation changed text or
   attribute content but no element's existence, name, or id. *)
let touch_values n =
  match n.naccel with Some s -> s.gen <- s.gen + 1 | None -> ()

(* Mark the tree containing [n] as mutated. *)
let invalidate n = touch (root n)

let accel_of r =
  match r.naccel with
  | Some s -> s
  | None ->
      let s =
        {
          gen = 0;
          egen = 0;
          keys_gen = -1;
          okeys = Hashtbl.create 64;
          idx_gen = -1;
          by_id = Hashtbl.create 16;
          by_name = Hashtbl.create 16;
          vidx_gen = -1;
          by_attr_value = Hashtbl.create 64;
          by_text_value = Hashtbl.create 64;
          text_complex = Hashtbl.create 8;
        }
      in
      r.naccel <- Some s;
      s

(* Ordinals by pre-order DFS; an element's attributes are labelled
   after the element and before its children, matching the path
   comparison (Attr_at sorts before Child_at). *)
let ensure_keys r s =
  if s.keys_gen = s.gen then begin
    if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.accel.keys.hit"
  end
  else begin
    if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.accel.keys.rebuild";
    Hashtbl.reset s.okeys;
    let next = ref 0 in
    let assign n =
      Hashtbl.replace s.okeys n.nid !next;
      incr next
    in
    let rec label n =
      assign n;
      List.iter assign (attributes n);
      List.iter label (children n)
    in
    label r;
    s.keys_gen <- s.gen
  end

let ensure_indexes r s =
  if s.idx_gen = s.egen then begin
    if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.accel.index.hit"
  end
  else begin
    if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.accel.index.rebuild";
    Hashtbl.reset s.by_id;
    Hashtbl.reset s.by_name;
    let add tbl k v =
      Hashtbl.replace tbl k
        (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
    in
    let rec walk n =
      (match n.nkind with
      | P_element e ->
          (match attribute_by_sym n id_sym with
          | Some v -> add s.by_id (Sym.intern v :> int) n
          | None -> ());
          add s.by_name (e.ename.Qname.lsym :> int) n
      | _ -> ());
      List.iter walk (children n)
    in
    walk r;
    let rev tbl = Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl in
    rev s.by_id;
    rev s.by_name;
    s.idx_gen <- s.egen
  end

let rec string_value_rec n =
  match n.nkind with
  | P_text t -> t.tcontent
  | P_attribute a -> a.avalue
  | P_comment c -> c.ccontent
  | P_pi p -> p.pcontent
  | P_document _ | P_element _ ->
      String.concat ""
        (List.filter_map
           (fun c ->
             match c.nkind with
             | P_text _ | P_element _ -> Some (string_value_rec c)
             | P_document _ | P_attribute _ | P_comment _ | P_pi _ -> None)
           (children n))

(* the single choke point for atomization and fn:string on nodes: a
   string-value read depends on the whole subtree *)
let string_value n =
  if Footprint.recording () then
    Footprint.reading_scope ~root:(root n).nid ~node:n.nid;
  string_value_rec n

(* nearest first *)
let ancestors n =
  let rec go acc n =
    match n.nparent with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] n

let descendants n =
  let rec go acc n = List.fold_left (fun acc c -> go (c :: acc) c) acc (children n) in
  List.rev (go [] n)

let siblings_split n =
  match n.nparent with
  | None -> ([], [])
  | Some p ->
      let rec split before = function
        | [] -> (List.rev before, [])
        | c :: rest when c == n -> (List.rev before, rest)
        | c :: rest -> split (c :: before) rest
      in
      split [] (children p)

let following_siblings n = snd (siblings_split n)
let preceding_siblings n = List.rev (fst (siblings_split n))

(* Path from the root to the node: each step is a position index.
   Attributes sort after their element but before its children; we encode
   that with index -1 - attr_position so attributes order among
   themselves and before child index 0 via a dedicated comparison. *)
type step = Child_at of int | Attr_at of int

let path_to_root n =
  let rec go acc n =
    match n.nparent with
    | None -> acc
    | Some p ->
        let step =
          match n.nkind with
          | P_attribute _ ->
              let rec idx i = function
                | [] -> err "attribute not in parent's attribute list"
                | a :: _ when a == n -> i
                | _ :: rest -> idx (i + 1) rest
              in
              Attr_at (idx 0 (attributes p))
          | _ ->
              let rec idx i = function
                | [] -> err "node not in parent's child list"
                | c :: _ when c == n -> i
                | _ :: rest -> idx (i + 1) rest
              in
              Child_at (idx 0 (children p))
        in
        go (step :: acc) p
  in
  go [] n

let compare_step a b =
  match (a, b) with
  | Attr_at i, Attr_at j -> Int.compare i j
  | Attr_at _, Child_at _ -> -1
  | Child_at _, Attr_at _ -> 1
  | Child_at i, Child_at j -> Int.compare i j

let compare_paths a b =
  let rec cmp pa pb =
    match (pa, pb) with
    | [], [] -> 0
    | [], _ -> -1 (* a is an ancestor of b: a first *)
    | _, [] -> 1
    | sa :: ra, sb :: rb ->
        let c = compare_step sa sb in
        if c <> 0 then c else cmp ra rb
  in
  cmp (path_to_root a) (path_to_root b)

let compare_order_naive a b =
  if a == b then 0
  else
    let ra = root a and rb = root b in
    if ra != rb then Int.compare ra.nid rb.nid else compare_paths a b

let compare_order a b =
  if a == b then 0
  else
    let ra = root a and rb = root b in
    if ra != rb then Int.compare ra.nid rb.nid
    else if !acceleration then begin
      let s = accel_of ra in
      ensure_keys ra s;
      match (Hashtbl.find_opt s.okeys a.nid, Hashtbl.find_opt s.okeys b.nid) with
      | Some ka, Some kb ->
          if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.order.keyed";
          Int.compare ka kb
      | _ ->
          if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.order.path";
          compare_paths a b
    end
    else begin
      if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.order.path";
      compare_paths a b
    end

let order_key n =
  if not !acceleration then None
  else
    let r = root n in
    let s = accel_of r in
    ensure_keys r s;
    match Hashtbl.find_opt s.okeys n.nid with
    | Some k -> Some (r.nid, k)
    | None -> None

let is_ancestor ~ancestor n =
  let rec go n =
    match n.nparent with
    | None -> false
    | Some p -> p == ancestor || go p
  in
  go n

let equal a b = a == b

(* ------------------------------------------------------------------ *)
(* Mutation observers                                                  *)

type mutation =
  | Children_changed of node
  | Attribute_changed of node * Qname.t
  | Value_changed of node
  | Renamed of node

type observer_id = int

type observer = { oid : int; oroot : node; callback : mutation -> unit }

let observers : (int, observer) Hashtbl.t = Hashtbl.create 16
let observer_counter = ref 0

let observe ~root:oroot callback =
  incr observer_counter;
  let o = { oid = !observer_counter; oroot; callback } in
  Hashtbl.replace observers o.oid o;
  o.oid

let unobserve oid = Hashtbl.remove observers oid

(* Per-mutation write-footprint extras: what beyond the mutation point
   the mutation touched. Subtree scans are deferred so they only run
   when the mutated tree is footprint-tracked. *)
type fp_item =
  | FP_subtree of node  (* inserted/removed/replaced subtree *)
  | FP_name of Sym.t  (* a local name whose index buckets changed *)
  | FP_id of string  (* an id attribute value added/removed/changed *)
  | FP_key of Sym.t * string  (* (attr local name, value) key touched *)

let fp_scan_subtree w n =
  let rec walk n =
    (match n.nkind with
    | P_element e ->
        Footprint.add_wname w e.ename.Qname.lsym;
        List.iter
          (fun a ->
            match a.nkind with
            | P_attribute { aname; avalue } ->
                Footprint.add_wkey w ~local:aname.Qname.lsym avalue;
                if Sym.equal aname.Qname.lsym id_sym then
                  Footprint.add_wid w avalue
            | _ -> ())
          e.eattrs
    | _ -> ());
    List.iter walk (children n)
  in
  walk n

(* Observer notifications queue while a batch is open (one PUL apply =
   one coherent post-apply changeset) and flush, in mutation order, when
   the outermost batch closes. Generation bumps (cache invalidation)
   stay immediate. *)
let batch_depth = ref 0
let batch_queue : (node * mutation) list ref = ref []

let deliver r mutation =
  Hashtbl.iter (fun _ o -> if o.oroot == r then o.callback mutation) observers

let notify ?(fp = []) node mutation =
  let r = root node in
  (* A value-only mutation (text or non-id attribute content) cannot
     change which elements exist, their names, or their ids, so the
     element indexes survive it; anything touching an id value carries
     an [FP_id] in its footprint extras. Element [set_value] swaps its
     text children but emits [Value_changed]: element topology is
     untouched, and the detach path already staled the total
     generation for the ordinal and value caches. *)
  let structural =
    match mutation with
    | Value_changed _ | Attribute_changed _ ->
        List.exists (function FP_id _ -> true | _ -> false) fp
    | Children_changed _ | Renamed _ -> true
  in
  if structural then touch r else touch_values r;
  (* invalidate, with the root computed once *)
  if Footprint.capturing r.nid then begin
    let chain = node.nid :: List.map (fun a -> a.nid) (ancestors node) in
    let w = Footprint.fresh_wrec ~root:r.nid ~chain in
    List.iter
      (function
        | FP_subtree n -> fp_scan_subtree w n
        | FP_name l -> Footprint.add_wname w l
        | FP_id v -> Footprint.add_wid w v
        | FP_key (local, v) -> Footprint.add_wkey w ~local v)
      fp;
    Footprint.record_write w
  end;
  if Hashtbl.length observers > 0 then
    if !batch_depth > 0 then begin
      if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.notify.batched";
      batch_queue := (r, mutation) :: !batch_queue
    end
    else deliver r mutation;
  if !batch_depth = 0 then Footprint.commit ()

let with_batch f =
  incr batch_depth;
  Fun.protect
    ~finally:(fun () ->
      decr batch_depth;
      if !batch_depth = 0 then begin
        let q = List.rev !batch_queue in
        batch_queue := [];
        List.iter (fun (r, m) -> deliver r m) q;
        Footprint.commit ()
      end)
    f

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)

let assert_insertable n =
  match n.nkind with
  | P_attribute _ -> err "cannot insert an attribute node as a child"
  | P_document _ -> err "cannot insert a document node as a child"
  | P_element _ | P_text _ | P_comment _ | P_pi _ -> ()

let set_children parent cs =
  match parent.nkind with
  | P_document d -> d.dchildren <- cs
  | P_element e -> e.echildren <- cs
  | P_attribute _ | P_text _ | P_comment _ | P_pi _ ->
      err "this node kind cannot have children"

let detach n =
  match n.nparent with
  | None -> ()
  | Some p ->
      (* detaching a text/comment/pi (or a non-id attribute) removes no
         element and no id: ordinals and value caches stale, element
         indexes survive *)
      (match n.nkind with
      | P_element _ | P_document _ -> invalidate p
      | P_attribute a when Sym.equal a.aname.Qname.lsym id_sym ->
          invalidate p
      | P_attribute _ | P_text _ | P_comment _ | P_pi _ ->
          touch_values (root p));
      (match n.nkind with
      | P_attribute _ -> (
          match p.nkind with
          | P_element e -> e.eattrs <- List.filter (fun a -> a != n) e.eattrs
          | _ -> ())
      | _ -> set_children p (List.filter (fun c -> c != n) (children p)));
      n.nparent <- None;
      touch n

(* Footprint extras for an attribute: its (local, value) key, plus the
   id index when the attribute is an id. [lsym] is the attribute's
   local-name symbol. *)
let fp_attr lsym v =
  FP_key (lsym, v) :: (if Sym.equal lsym id_sym then [ FP_id v ] else [])

let remove n =
  match n.nparent with
  | None -> ()
  | Some p -> (
      match n.nkind with
      | P_attribute { aname; avalue } ->
          detach n;
          notify ~fp:(fp_attr aname.Qname.lsym avalue) p
            (Attribute_changed (p, aname))
      | _ ->
          detach n;
          notify ~fp:[ FP_subtree n ] p (Children_changed p))

let append_child ~parent n =
  assert_insertable n;
  detach n;
  set_children parent (children parent @ [ n ]);
  n.nparent <- Some parent;
  notify ~fp:[ FP_subtree n ] parent (Children_changed parent)

let insert_first ~parent n =
  assert_insertable n;
  detach n;
  set_children parent (n :: children parent);
  n.nparent <- Some parent;
  notify ~fp:[ FP_subtree n ] parent (Children_changed parent)

let insert_relative ~before ~sibling n =
  assert_insertable n;
  match sibling.nparent with
  | None -> err "cannot insert relative to a parentless node"
  | Some p ->
      detach n;
      let rec weave = function
        | [] -> [ n ] (* sibling vanished concurrently; append *)
        | c :: rest when c == sibling ->
            if before then n :: c :: rest else c :: n :: rest
        | c :: rest -> c :: weave rest
      in
      set_children p (weave (children p));
      n.nparent <- Some p;
      notify ~fp:[ FP_subtree n ] p (Children_changed p)

let insert_before ~sibling n = insert_relative ~before:true ~sibling n
let insert_after ~sibling n = insert_relative ~before:false ~sibling n

let replace n replacements =
  match n.nparent with
  | None -> err "cannot replace a parentless node"
  | Some p -> (
      match n.nkind with
      | P_attribute _ ->
          detach n;
          let fp = ref [] in
          (match n.nkind with
          | P_attribute { aname; avalue } ->
              fp := fp_attr aname.Qname.lsym avalue
          | _ -> ());
          List.iter
            (fun r ->
              match r.nkind with
              | P_attribute { aname; avalue } ->
                  detach r;
                  (match p.nkind with
                  | P_element e -> e.eattrs <- e.eattrs @ [ r ]
                  | _ -> err "attribute replacement target is not an element");
                  r.nparent <- Some p;
                  fp := fp_attr aname.Qname.lsym avalue @ !fp
              | _ -> err "an attribute can only be replaced by attributes")
            replacements;
          notify ~fp:!fp p (Attribute_changed (p, Option.get (name n)))
      | _ ->
          List.iter assert_insertable replacements;
          let rec weave = function
            | [] -> err "node not found in parent during replace"
            | c :: rest when c == n -> replacements @ rest
            | c :: rest -> c :: weave rest
          in
          set_children p (weave (children p));
          n.nparent <- None;
          touch n;
          List.iter
            (fun r ->
              touch r;
              r.nparent <- Some p)
            replacements;
          notify
            ~fp:(FP_subtree n :: List.map (fun r -> FP_subtree r) replacements)
            p (Children_changed p))

let set_value n v =
  let fp =
    match n.nkind with
    | P_attribute a ->
        let lsym = a.aname.Qname.lsym in
        fp_attr lsym a.avalue @ fp_attr lsym v
    | P_text _ -> (
        (* text content feeds the parent element's text-value index *)
        match n.nparent with
        | Some { nkind = P_element e; _ } -> [ FP_name e.ename.Qname.lsym ]
        | _ -> [])
    | P_comment _ | P_pi _ -> []
    | P_element e ->
        (* replaceElementContent: old children go away; the element's
           own text-index key changes *)
        FP_name e.ename.Qname.lsym
        :: List.map (fun c -> FP_subtree c) (children n)
    | P_document _ -> List.map (fun c -> FP_subtree c) (children n)
  in
  (match n.nkind with
  | P_attribute a -> a.avalue <- v
  | P_text t -> t.tcontent <- v
  | P_comment c -> c.ccontent <- v
  | P_pi p -> p.pcontent <- v
  | P_element _ | P_document _ ->
      List.iter detach (children n);
      let t = create_text v in
      set_children n [ t ];
      t.nparent <- Some n);
  notify ~fp n (Value_changed n)

let rename n qn =
  let fp =
    match n.nkind with
    | P_element e -> [ FP_name e.ename.Qname.lsym; FP_name qn.Qname.lsym ]
    | P_attribute a ->
        fp_attr a.aname.Qname.lsym a.avalue @ fp_attr qn.Qname.lsym a.avalue
    | _ -> []
  in
  (match n.nkind with
  | P_element e -> e.ename <- qn
  | P_attribute a -> a.aname <- qn
  | P_document _ | P_text _ | P_comment _ | P_pi _ ->
      err "only elements and attributes can be renamed");
  notify ~fp n (Renamed n)

let set_attribute el qn v =
  match el.nkind with
  | P_element e -> (
      match
        List.find_opt
          (fun a ->
            match a.nkind with
            | P_attribute { aname; _ } -> Qname.equal aname qn
            | _ -> false)
          e.eattrs
      with
      | Some a ->
          let old =
            match a.nkind with P_attribute r -> r.avalue | _ -> assert false
          in
          (match a.nkind with
          | P_attribute r -> r.avalue <- v
          | _ -> assert false);
          notify
            ~fp:(fp_attr qn.Qname.lsym old @ fp_attr qn.Qname.lsym v)
            el
            (Attribute_changed (el, qn))
      | None ->
          let a = create_attribute qn v in
          a.nparent <- Some el;
          e.eattrs <- e.eattrs @ [ a ];
          notify ~fp:(fp_attr qn.Qname.lsym v) el (Attribute_changed (el, qn)))
  | _ -> err "set_attribute: not an element"

let remove_attribute el qn =
  match el.nkind with
  | P_element e ->
      let fp = ref [] in
      e.eattrs <-
        List.filter
          (fun a ->
            match a.nkind with
            | P_attribute { aname; avalue } when Qname.equal aname qn ->
                fp := fp_attr aname.Qname.lsym avalue @ !fp;
                false
            | _ -> true)
          e.eattrs;
      notify ~fp:!fp el (Attribute_changed (el, qn))
  | _ -> err "remove_attribute: not an element"

let append_attribute ~parent a =
  match (parent.nkind, a.nkind) with
  | P_element e, P_attribute { aname; avalue } ->
      detach a;
      e.eattrs <- e.eattrs @ [ a ];
      a.nparent <- Some parent;
      notify
        ~fp:(fp_attr aname.Qname.lsym avalue)
        parent
        (Attribute_changed (parent, aname))
  | _ -> err "append_attribute: expects an element and an attribute"

let rec clone_rec n =
  match n.nkind with
  | P_document d ->
      let doc = create_document ?uri:d.uri () in
      List.iter (fun c -> append_child ~parent:doc (clone_rec c)) d.dchildren;
      doc
  | P_element e ->
      let el = create_element e.ename in
      List.iter
        (fun a ->
          match a.nkind with
          | P_attribute { aname; avalue } -> set_attribute el aname avalue
          | _ -> ())
        e.eattrs;
      List.iter (fun c -> append_child ~parent:el (clone_rec c)) e.echildren;
      el
  | P_attribute a -> create_attribute a.aname a.avalue
  | P_text t -> create_text t.tcontent
  | P_comment c -> create_comment c.ccontent
  | P_pi p -> create_pi ~target:p.target p.pcontent

(* A clone observes the whole source subtree; one scope record covers
   it (no-op outside recorded listener runs). *)
let clone n =
  if Footprint.recording () then
    Footprint.reading_scope ~root:(root n).nid ~node:n.nid;
  clone_rec n

(* ------------------------------------------------------------------ *)
(* Conversion                                                          *)

let rec node_of_tree = function
  | Xml_parser.Text t -> create_text t
  | Xml_parser.Comment c -> create_comment c
  | Xml_parser.Pi (target, data) -> create_pi ~target data
  | Xml_parser.Element (name, attrs, children) ->
      let el =
        create_element
          ~attrs:(List.map (fun a -> (a.Xml_parser.name, a.Xml_parser.value)) attrs)
          name
      in
      List.iter (fun c -> append_child ~parent:el (node_of_tree c)) children;
      el

let of_tree trees =
  let doc = create_document () in
  List.iter (fun t -> append_child ~parent:doc (node_of_tree t)) trees;
  doc

let of_string ?options src = of_tree (Xml_parser.parse ?options src)

let rec to_tree n : Xml_parser.tree =
  match n.nkind with
  | P_text t -> Xml_parser.Text t.tcontent
  | P_comment c -> Xml_parser.Comment c.ccontent
  | P_pi p -> Xml_parser.Pi (p.target, p.pcontent)
  | P_attribute a ->
      (* standalone attribute: serialize as empty element for diagnostics *)
      Xml_parser.Element (a.aname, [], [ Xml_parser.Text a.avalue ])
  | P_element e ->
      let attrs =
        List.filter_map
          (fun a ->
            match a.nkind with
            | P_attribute { aname; avalue } ->
                Some { Xml_parser.name = aname; value = avalue }
            | _ -> None)
          e.eattrs
      in
      Xml_parser.Element (e.ename, attrs, List.map to_tree e.echildren)
  | P_document d -> (
      match d.dchildren with
      | [ c ] -> to_tree c
      | _ -> Xml_parser.Element (Qname.make "document", [], List.map to_tree d.dchildren))

let to_trees n =
  match n.nkind with
  | P_document d -> List.map to_tree d.dchildren
  | _ -> [ to_tree n ]

let serialize ?(indent = false) n =
  Xml_serializer.list_to_string
    ~options:{ Xml_serializer.indent; xml_declaration = false }
    (to_trees n)

let pp ppf n = Format.pp_print_string ppf (serialize n)

let in_subtree ~top n = top == n || is_ancestor ~ancestor:top n

(* Early-exit pre-order scan: stops at the first hit instead of
   materialising the full descendant list. *)
let rec scan_element_by_id n idv =
  let self_hit =
    match n.nkind with
    | P_element _ -> (
        match attribute_local n "id" with
        | Some v -> String.equal v idv
        | None -> false)
    | _ -> false
  in
  if self_hit then Some n
  else
    List.fold_left
      (fun acc c ->
        match acc with Some _ -> acc | None -> scan_element_by_id c idv)
      None (children n)

let get_element_by_id n idv =
  let hit =
    if !acceleration then begin
      if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.lookup.by-id";
      let r = root n in
      let s = accel_of r in
      ensure_indexes r s;
      (* probe without interning: a value that was never interned is in
         no index, and missing-id probes must not grow the table *)
      match
        Option.bind (Sym.find_opt idv) (fun sym ->
            Hashtbl.find_opt s.by_id (sym :> int))
      with
      | None | Some [] -> None
      | Some (first :: _ as bucket) ->
          if n == r then Some first
          else List.find_opt (fun c -> in_subtree ~top:n c) bucket
    end
    else begin
      if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.lookup.by-id.naive";
      scan_element_by_id n idv
    end
  in
  if Footprint.recording () then begin
    let rid = (root n).nid in
    Footprint.reading_id ~root:rid ~scope:n.nid idv;
    (* the found element's name/content/attributes are now observable
       without further recorded steps: treat its subtree as read *)
    match hit with
    | Some el -> Footprint.reading_scope ~root:rid ~node:el.nid
    | None -> ()
  end;
  hit

let get_elements_by_local_sym n (sym : Sym.t) =
  if Footprint.recording () then
    Footprint.reading_name ~root:(root n).nid ~scope:n.nid sym;
  if !acceleration then begin
    if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.lookup.by-name";
    let r = root n in
    let s = accel_of r in
    ensure_indexes r s;
    let bucket =
      Option.value ~default:[] (Hashtbl.find_opt s.by_name (sym :> int))
    in
    if n == r then bucket else List.filter (fun c -> in_subtree ~top:n c) bucket
  end
  else begin
    if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.lookup.by-name.naive";
    let candidates =
      match n.nkind with P_element _ -> n :: descendants n | _ -> descendants n
    in
    List.filter
      (fun c ->
        match c.nkind with
        | P_element e -> Sym.equal e.ename.Qname.lsym sym
        | _ -> false)
      candidates
  end

(* The string entry point interns (a table probe, the cost the old
   string-keyed index paid anyway); callers holding a [Qname.t] should
   use [get_elements_by_local_sym] with the pre-interned symbol. The
   intern is also what lets the footprint record a name the document
   does not contain yet. *)
let get_elements_by_local_name n local =
  get_elements_by_local_sym n (Sym.intern local)

(* ------------------------------------------------------------------ *)
(* Value indexes.

   Two per-root hash indexes keyed by (local name, string value):
   attribute values -> owning elements, and the string value of "flat"
   elements (no element children, so their value is just their text
   content) -> those elements. Both are stamped with the accel
   generation, so any mutation under the root — including every PUL
   primitive, which funnels through the mutators' [notify] — lazily
   invalidates them.

   Lookups return [None] whenever the index cannot answer exactly
   (switch off, or a text lookup on a local name that somewhere in the
   document has element children); callers must fall back to a scan.
   Buckets are keyed by local name only, so callers refine hits against
   the exact QName/axis they need. *)

let ensure_value_indexes r s =
  if s.vidx_gen <> s.gen then begin
    if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.value_index.rebuild";
    Hashtbl.reset s.by_attr_value;
    Hashtbl.reset s.by_text_value;
    Hashtbl.reset s.text_complex;
    let add tbl k v =
      Hashtbl.replace tbl k
        (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
    in
    let rec walk n =
      (match n.nkind with
      | P_element e ->
          List.iter
            (fun a ->
              match a.nkind with
              | P_attribute { aname; avalue } ->
                  add s.by_attr_value
                    ((aname.Qname.lsym :> int), (Sym.intern avalue :> int))
                    n
              | _ -> ())
            e.eattrs;
          let flat =
            List.for_all
              (fun c ->
                match c.nkind with P_element _ -> false | _ -> true)
              e.echildren
          in
          if flat then
            add s.by_text_value
              ( (e.ename.Qname.lsym :> int),
                (Sym.intern (string_value n) :> int) )
              n
          else Hashtbl.replace s.text_complex (e.ename.Qname.lsym :> int) ()
      | _ -> ());
      List.iter walk (children n)
    in
    walk r;
    let rev tbl = Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) tbl in
    rev s.by_attr_value;
    rev s.by_text_value;
    s.vidx_gen <- s.gen
  end

let value_lookup which n (lsym : Sym.t) v =
  if Footprint.recording () then begin
    (* Record the probe whether or not the index can answer: the scan
       fallback covers a superset, so this is conservative either way.
       Text probes record the local name (a text-value change under a
       flat element writes its name), attribute probes the exact key. *)
    let rid = (root n).nid in
    match which with
    | `Attr -> Footprint.reading_key ~root:rid ~scope:n.nid ~local:lsym v
    | `Text -> Footprint.reading_name ~root:rid ~scope:n.nid lsym
  end;
  if not !value_index then None
  else begin
    let r = root n in
    let s = accel_of r in
    ensure_value_indexes r s;
    let tbl, complex =
      match which with
      | `Attr -> (s.by_attr_value, false)
      | `Text -> (s.by_text_value, Hashtbl.mem s.text_complex (lsym :> int))
    in
    if complex then None
    else begin
      if !Obs.Metrics.enabled then Obs.Metrics.incr "dom.value_index.hits";
      (* a value that was never interned keys no bucket; probing with
         [find_opt] keeps always-miss lookups from growing the table *)
      let bucket =
        match Sym.find_opt v with
        | None -> []
        | Some vsym ->
            Option.value ~default:[]
              (Hashtbl.find_opt tbl ((lsym :> int), (vsym :> int)))
      in
      Some
        (if n == r then bucket
         else List.filter (fun c -> in_subtree ~top:n c) bucket)
    end
  end

(* Elements in the subtree of [n] (inclusive) owning an attribute with
   the given local name and exact value, in document order. *)
let elements_by_attr_value_sym n ~local v = value_lookup `Attr n local v
let elements_by_attr_value n ~local v = value_lookup `Attr n (Sym.intern local) v

(* Flat elements in the subtree of [n] (inclusive) with the given local
   name and exact string value, in document order. *)
let elements_by_text_value_sym n ~local v = value_lookup `Text n local v
let elements_by_text_value n ~local v = value_lookup `Text n (Sym.intern local) v

(* Current accel generation of the tree containing [n]; exposed so
   tests can pin down exactly how often updates invalidate caches. *)
let generation n =
  match (root n).naccel with Some s -> s.gen | None -> 0
