(* Read/write footprints for incremental listener recomputation.

   A *read footprint* is recorded while a listener query evaluates: the
   tree roots it consulted, the subtree scopes it walked, and the
   (local-name | id | attribute-key) index probes it made — each probe
   scoped to the subtree it was confined to. A *write footprint* is one
   record per DOM mutation: the mutated tree's root, the
   ancestor-or-self id chain of the mutation point, and the names / id
   values / attribute keys the mutation added, removed or changed.

   Intersection is the dirtiness test: a read entry scoped at node S is
   affected by a mutation whose point chain passes through S. Scoping
   index probes the same way keeps one region's listener clean when a
   sibling region mutates even though both probe the same local name.

   All entries are keyed by interned symbols ([Xmlb.Sym]): names arrive
   pre-interned from [Qname.t], id and attribute *values* are interned
   at record time. Dispatch-time intersection is therefore pure int
   hashing, and the old "local=value" key concatenation is gone. Read
   probes must intern even never-seen strings — a later mutation can
   create that name, and its (then freshly interned) symbol has to hit
   the recorded entry.

   This module deliberately knows nothing about [Dom.node] — it traffics
   in node ids and symbols only, so it sits below [Dom] in the library
   and both [Dom] (capture) and the evaluator (recording) can call it. *)

open Xmlb

type read = {
  roots : (int, unit) Hashtbl.t;  (* root ids of every tree consulted *)
  scopes : (int, unit) Hashtbl.t;  (* subtree-walk origins (node ids) *)
  names : (int * int, unit) Hashtbl.t;  (* (local-name sym, scope) probes *)
  ids : (int * int, unit) Hashtbl.t;  (* (id-value sym, scope) probes *)
  keys : (int * int * int, unit) Hashtbl.t;
      (* (attr-local sym, value sym, scope) probes *)
  mutable coarse : bool;
      (* entry cap exceeded: degrade to whole-root granularity *)
  mutable poisoned : bool;
      (* run read state we cannot fingerprint (globals, external
         functions, impure builtins) or performed effects; never skip *)
  mutable entries : int;
}

let create () =
  {
    roots = Hashtbl.create 4;
    scopes = Hashtbl.create 16;
    names = Hashtbl.create 8;
    ids = Hashtbl.create 8;
    keys = Hashtbl.create 8;
    coarse = false;
    poisoned = false;
    entries = 0;
  }

(* Past this many distinct entries a footprint stops paying for itself;
   fall back to "anything under a consulted root dirties me". *)
let max_entries = 4096

type wrec = {
  wroot : int;  (* root id of the mutated tree, at notification time *)
  chain : int list;  (* ancestor-or-self ids of the mutation point *)
  mutable wnames : int list;  (* local-name syms *)
  mutable wids : int list;  (* id-value syms *)
  mutable wkeys : (int * int) list;  (* (attr-local sym, value sym) *)
}

(* ------------------------------------------------------------------ *)
(* Switch                                                              *)

let incremental = ref true
let set_incremental b = incremental := b
let incremental_enabled () = !incremental

(* ------------------------------------------------------------------ *)
(* Tracked roots: refcounted set of root ids some registered footprint
   has read. Mutations elsewhere (fresh constructor trees, detached
   scratch nodes) skip capture entirely. *)

let tracked : (int, int) Hashtbl.t = Hashtbl.create 16

let track_root rid =
  Hashtbl.replace tracked rid
    (1 + Option.value ~default:0 (Hashtbl.find_opt tracked rid))

let untrack_root rid =
  match Hashtbl.find_opt tracked rid with
  | None -> ()
  | Some n when n <= 1 -> Hashtbl.remove tracked rid
  | Some n -> Hashtbl.replace tracked rid (n - 1)

let capturing rid =
  !incremental && Hashtbl.length tracked > 0 && Hashtbl.mem tracked rid

(* ------------------------------------------------------------------ *)
(* Recording (read side)                                               *)

let current : read option ref = ref None
let recording () = Option.is_some !current

(* Begin recording into [fp], returning the previously active recorder
   (listener runs can nest via re-dispatch). *)
let start fp =
  let prev = !current in
  current := Some fp;
  prev

let restore prev = current := prev

let overflow fp =
  fp.coarse <- true;
  Hashtbl.reset fp.scopes;
  Hashtbl.reset fp.names;
  Hashtbl.reset fp.ids;
  Hashtbl.reset fp.keys

let bump fp =
  fp.entries <- fp.entries + 1;
  if fp.entries > max_entries && not fp.coarse then overflow fp

let add_entry tbl fp key =
  if not fp.coarse && not (Hashtbl.mem tbl key) then begin
    Hashtbl.replace tbl key ();
    bump fp
  end

let with_fp f = match !current with None -> () | Some fp -> f fp

let reading_root rid = with_fp (fun fp -> Hashtbl.replace fp.roots rid ())

let reading_scope ~root ~node =
  with_fp (fun fp ->
      Hashtbl.replace fp.roots root ();
      add_entry fp.scopes fp node)

let reading_name ~root ~scope (sym : Sym.t) =
  with_fp (fun fp ->
      Hashtbl.replace fp.roots root ();
      add_entry fp.names fp ((sym :> int), scope))

let reading_id ~root ~scope v =
  with_fp (fun fp ->
      Hashtbl.replace fp.roots root ();
      add_entry fp.ids fp ((Sym.intern v :> int), scope))

let reading_key ~root ~scope ~local:(lsym : Sym.t) v =
  with_fp (fun fp ->
      Hashtbl.replace fp.roots root ();
      add_entry fp.keys fp ((lsym :> int), (Sym.intern v :> int), scope))

let poison () = with_fp (fun fp -> fp.poisoned <- true)
let is_poisoned fp = fp.poisoned

(* ------------------------------------------------------------------ *)
(* Write records and batching                                          *)

let fresh_wrec ~root ~chain =
  { wroot = root; chain; wnames = []; wids = []; wkeys = [] }

let add_wname w (sym : Sym.t) = w.wnames <- (sym :> int) :: w.wnames
let add_wid w v = w.wids <- (Sym.intern v :> int) :: w.wids

let add_wkey w ~local:(lsym : Sym.t) v =
  w.wkeys <- ((lsym :> int), (Sym.intern v :> int)) :: w.wkeys

(* Pending write records of the current mutation batch (a PUL apply
   funnels all its primitives into one commit). Reverse order. *)
let pending : wrec list ref = ref []

(* Set by the reactive layer: receives each committed batch and marks
   intersecting memos dirty. *)
let on_commit : (wrec list -> unit) ref = ref (fun _ -> ())

let record_write w = pending := w :: !pending

let commit () =
  match !pending with
  | [] -> ()
  | ws ->
      pending := [];
      !on_commit (List.rev ws)

(* ------------------------------------------------------------------ *)
(* Intersection                                                        *)

let intersects_wrec fp w =
  Hashtbl.mem fp.roots w.wroot
  && (fp.coarse
     || List.exists (fun c -> Hashtbl.mem fp.scopes c) w.chain
     || List.exists
          (fun l -> List.exists (fun c -> Hashtbl.mem fp.names (l, c)) w.chain)
          w.wnames
     || List.exists
          (fun v -> List.exists (fun c -> Hashtbl.mem fp.ids (v, c)) w.chain)
          w.wids
     || List.exists
          (fun (l, v) ->
            List.exists (fun c -> Hashtbl.mem fp.keys (l, v, c)) w.chain)
          w.wkeys)

let intersects fp ws = fp.poisoned || List.exists (intersects_wrec fp) ws

let root_ids fp = Hashtbl.fold (fun rid () acc -> rid :: acc) fp.roots []
let entry_count fp = fp.entries
