#!/bin/sh
# Tier-1 gate: build everything, run the full test suite.
set -eu
cd "$(dirname "$0")"
dune build @all
dune runtest
