#!/bin/sh
# Tier-1 gate: build everything, run the full test suite, then a
# bench smoke (tiny sizes/quotas) so bench code cannot bit-rot.
set -eu
cd "$(dirname "$0")"
dune build @all
dune runtest
dune exec bench/main.exe -- --smoke > /dev/null
