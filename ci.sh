#!/bin/sh
# Tier-1 gate: build everything, run the full test suite, then a
# bench smoke (tiny sizes/quotas) so bench code cannot bit-rot.
# The T9 line additionally gates the observability layer: it fails if a
# disabled run records anything, if the disabled-mode A/A delta exceeds
# 10% (min-of-5 interleaved estimates per side; see EXPERIMENTS.md on
# why tighter bars sit below the smoke-budget noise floor on shared CI
# hosts), or if the exported trace JSON does not validate.
# The T10 line gates the compiled-query cache: it fails if a cache-on
# page render differs from cache-off, if a warm re-compile records zero
# cache hits, or if the warm speedup drops below 5x.
# The T11 line gates the streaming pipeline: it fails if streaming and
# eager evaluation disagree on any benchmark query, if fewer than two
# early-exit queries clear the speedup bar, or if streaming regresses a
# full-materialisation workload by more than 10%.
# The T12 line gates the value indexes and the join planner: it fails
# if the hash-join or indexed result differs from the nested-loop
# oracle, if the obs counters do not show the accelerated plans
# executing, if too few workloads clear the speedup bar, or if an A/A
# workload (which the planner and index cannot help) regresses by more
# than 10%.
# The T13 line gates the closure compiler: it fails if compiled and
# interpreted evaluation disagree on any benchmark query, if the
# compile counters do not show closure code executing, if fewer than
# two full-materialisation queries clear the speedup bar, or if an
# opaque-fallback workload (which both modes run through the
# tree-walker) regresses by more than 10%.
# The T14 line gates incremental recomputation: it fails if the
# incremental page diverges from the full-recompute oracle (pure and
# updating listeners), if the pure-aggregate speedup or the skip/rerun
# ratio drops below the bar, or if an A/A full-footprint workload
# (where every mutation touches every listener, so nothing can be
# skipped) regresses by more than 20%.
# The T15 line gates the fleet simulator: it fails if two fleets run
# from the same seed diverge in any report field, if a burst arrival
# against a shed threshold sheds nothing or lets the queue depth exceed
# the threshold, or if the migrated workload's p99 is not strictly
# below the server-rendered p99 at the largest fleet.
# The T16 line gates name interning: it fails if the interned and
# ablated modes disagree on any scan result, if re-parsing a document
# grows the global intern table, if no long-name scan clears the
# speedup bar, or if an always-miss dispatch (which exercises only the
# symbol-keyed machinery both modes share) shifts by more than 10%.
set -eu
cd "$(dirname "$0")"
dune build @all
dune runtest
dune exec bench/main.exe -- --smoke > /dev/null
dune exec bench/main.exe -- --smoke --only t9 --check --trace /tmp/xqib_trace.json > /dev/null
dune exec bench/main.exe -- --smoke --only t10 --check > /dev/null
dune exec bench/main.exe -- --smoke --only t11 --check > /dev/null
dune exec bench/main.exe -- --smoke --only t12 --check > /dev/null
dune exec bench/main.exe -- --smoke --only t13 --check > /dev/null
dune exec bench/main.exe -- --smoke --only t14 --check > /dev/null
dune exec bench/main.exe -- --smoke --only t15 --check > /dev/null
dune exec bench/main.exe -- --smoke --only t16 --check > /dev/null
