(* xqib — command-line front end to the XQuery-in-the-browser runtime.

   xqib eval  'EXPR'                evaluate an expression
   xqib run   FILE.xq               run a query/program file
   xqib page  FILE.html [options]   load a page in the simulated browser,
                                    optionally simulate clicks/typing,
                                    print alerts and the resulting DOM
   xqib migrate FILE.xq             print the client page produced by the
                                    §6.1 server-to-client migration
   xqib parse FILE.xq               parse and re-print (normalised) source *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let handle f =
  try f () with
  | Xquery.Xq_error.Error e ->
      Printf.eprintf "error: %s\n" (Xquery.Xq_error.to_string e);
      exit 1
  | Xmlb.Xml_parser.Parse_error { line; col; message } ->
      Printf.eprintf "XML parse error at %d:%d: %s\n" line col message;
      exit 1
  | Minijs.Js_interp.Js_error m | Minijs.Js_lexer.Js_syntax_error m ->
      Printf.eprintf "JavaScript error: %s\n" m;
      exit 1

let print_result seq =
  List.iter
    (fun item ->
      match item with
      | Xdm_item.Node n -> print_endline (Dom.serialize ~indent:true n)
      | Xdm_item.Atomic a -> print_endline (Xdm_atomic.to_string a))
    seq

(* ---- observability options (shared by eval/run/page) ---- *)

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record hierarchical spans over the whole pipeline (compile, \
           evaluate, PUL apply, network, render) and print the span tree; \
           with FILE, additionally write the trace as JSON there ('-' \
           prints the JSON instead of the tree).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Count engine events (axis steps, cache hits, faults, ...) and print the registry as JSON after the run.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-query-cache" ]
        ~doc:
          "Disable the compiled-query cache: every script/expression is \
           parsed and optimized from scratch (A/B baseline for the cache).")

let cache_stats_arg =
  Arg.(
    value & flag
    & info [ "cache-stats" ]
        ~doc:"Print query-cache statistics (hits, misses, evictions, bytes saved) after the run.")

let no_streaming_arg =
  Arg.(
    value & flag
    & info [ "no-streaming" ]
        ~doc:
          "Disable the lazy streaming pipeline: sequences are fully \
           materialised and early-exit consumers (exists, head, bounded \
           positional takes, ...) drain their inputs (A/B baseline for \
           streaming). Combine with --metrics to compare the \
           xdm.seq.pulls / xdm.seq.materializations counters.")

let no_value_index_arg =
  Arg.(
    value & flag
    & info [ "no-value-index" ]
        ~doc:
          "Disable the DOM value indexes: [@k eq 'v']-style predicate \
           lookups and hash-join key refinement scan the tree instead \
           (A/B baseline for the value index). Combine with --metrics \
           to compare the dom.value_index.hits counter.")

let no_interning_arg =
  Arg.(
    value & flag
    & info [ "no-interning" ]
        ~doc:
          "Disable the interned-name fast paths: QName equality and \
           name-keyed index probes compare and hash strings instead of \
           pre-interned symbols (A/B baseline for name interning; the \
           intern table itself stays on — see the sym element of \
           browser:stats()).")

let no_join_planner_arg =
  Arg.(
    value & flag
    & info [ "no-join-planner" ]
        ~doc:
          "Disable the equi-join planner: two-for FLWOR joins run as \
           nested loops instead of hash joins (A/B baseline for the \
           planner; see the xquery.join.* counters).")

let no_compiled_eval_arg =
  Arg.(
    value & flag
    & info [ "no-compiled-eval" ]
        ~doc:
          "Disable the closure compiler: program bodies and declared \
           functions run through the tree-walking evaluator instead of \
           closure-compiled code (A/B baseline for compiled evaluation; \
           see the compile element of browser:stats()).")

let no_incremental_arg =
  Arg.(
    value & flag
    & info [ "no-incremental" ]
        ~doc:
          "Disable incremental listener recomputation: every event \
           dispatch re-runs every matching listener instead of skipping \
           those whose read footprint no mutation has touched (A/B \
           baseline; see the reactive element of browser:stats()).")

let obs_setup ~trace ~metrics =
  if trace <> None then Obs.Trace.set_enabled true;
  if metrics || trace <> None then Obs.Metrics.set_enabled true

let cache_setup ~no_cache = if no_cache then Xquery.Query_cache.set_enabled false
let streaming_setup ~no_streaming =
  if no_streaming then Xquery.Eval.set_streaming false

let plan_setup ~no_value_index ~no_join_planner ~no_compiled_eval
    ~no_incremental ~no_interning =
  if no_value_index then Dom.set_value_index false;
  if no_join_planner then Xquery.Optimizer.set_join_planning false;
  if no_compiled_eval then Xquery.Engine.set_compiled_eval false;
  if no_incremental then Xquery.Reactive.set_incremental false;
  if no_interning then Dom.set_interned_fastpaths false

let cache_report ~cache_stats =
  if cache_stats then begin
    let c = Xquery.Engine.query_cache in
    let s = Xquery.Query_cache.stats c in
    Printf.eprintf
      "== query cache ==\n\
       enabled: %b  entries: %d/%d  generation: %d\n\
       hits: %d  misses: %d  hit-rate: %.1f%%  evictions: %d  source bytes saved: %d\n"
      !Xquery.Query_cache.enabled s.Xquery.Query_cache.entries
      (Xquery.Query_cache.capacity c)
      (Xquery.Query_cache.generation c)
      s.Xquery.Query_cache.hits s.Xquery.Query_cache.misses
      (100. *. Xquery.Query_cache.hit_rate c)
      s.Xquery.Query_cache.evictions s.Xquery.Query_cache.cost_saved
  end

(* validate before writing: a malformed trace export is an engine bug
   and must fail loudly, not poison downstream tooling *)
let obs_report ~trace ~metrics =
  (match trace with
  | None -> ()
  | Some dest ->
      let json = Obs.Trace.export_json () in
      (match Obs.Json.validate json with
      | Ok () -> ()
      | Error m ->
          Printf.eprintf "internal error: malformed trace JSON: %s\n" m;
          exit 3);
      if dest = "-" then print_endline json
      else begin
        let oc = open_out dest in
        output_string oc json;
        output_char oc '\n';
        close_out oc
      end;
      prerr_endline "== trace ==";
      List.iter
        (fun s -> Format.eprintf "%a@." Obs.Span.pp s)
        (Obs.Trace.roots ());
      if Obs.Trace.dropped () > 0 then
        Format.eprintf "(%d root spans dropped)@." (Obs.Trace.dropped ()));
  if metrics then begin
    prerr_endline "== metrics ==";
    print_endline (Obs.Metrics.to_json ())
  end

(* ---- eval ---- *)

let eval_cmd =
  let expr = Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR") in
  let optimize =
    Arg.(value & opt bool true & info [ "optimize" ] ~doc:"Run the rewrite optimizer.")
  in
  let run expr optimize trace metrics no_cache cache_stats no_streaming
      no_value_index no_join_planner no_compiled_eval no_incremental
      no_interning =
    obs_setup ~trace ~metrics;
    cache_setup ~no_cache;
    streaming_setup ~no_streaming;
    plan_setup ~no_value_index ~no_join_planner ~no_compiled_eval
      ~no_incremental ~no_interning;
    handle (fun () ->
        print_result (Xquery.Engine.eval_string ~optimize expr);
        obs_report ~trace ~metrics;
        cache_report ~cache_stats)
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate an XQuery expression")
    Term.(
      const run $ expr $ optimize $ trace_arg $ metrics_arg $ no_cache_arg
      $ cache_stats_arg $ no_streaming_arg $ no_value_index_arg
      $ no_join_planner_arg $ no_compiled_eval_arg $ no_incremental_arg
      $ no_interning_arg)

(* ---- run ---- *)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.xq") in
  let run file trace metrics no_cache cache_stats no_streaming no_value_index
      no_join_planner no_compiled_eval no_incremental no_interning =
    obs_setup ~trace ~metrics;
    cache_setup ~no_cache;
    streaming_setup ~no_streaming;
    plan_setup ~no_value_index ~no_join_planner ~no_compiled_eval
      ~no_incremental ~no_interning;
    handle (fun () ->
        print_result (Xquery.Engine.eval_string (read_file file));
        obs_report ~trace ~metrics;
        cache_report ~cache_stats)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an XQuery program file")
    Term.(
      const run $ file $ trace_arg $ metrics_arg $ no_cache_arg
      $ cache_stats_arg $ no_streaming_arg $ no_value_index_arg
      $ no_join_planner_arg $ no_compiled_eval_arg $ no_incremental_arg
      $ no_interning_arg)

(* ---- page ---- *)

let page_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.html") in
  let clicks =
    Arg.(value & opt_all string [] & info [ "click" ] ~docv:"ID" ~doc:"Click the element with this id (repeatable).")
  in
  let types =
    Arg.(value & opt_all string [] & info [ "type" ] ~docv:"ID=TEXT" ~doc:"Type TEXT into the element with id ID (repeatable).")
  in
  let show_doc =
    Arg.(value & flag & info [ "show-doc" ] ~doc:"Print the final document.")
  in
  let render =
    Arg.(value & flag & info [ "render" ] ~doc:"Render the final page as text.")
  in
  let uppercase =
    Arg.(value & flag & info [ "ie-uppercase" ] ~doc:"Model IE's tag upper-casing quirk (paper §5.1).")
  in
  let query =
    Arg.(value & opt (some string) None & info [ "query" ] ~docv:"XQUERY" ~doc:"Run a query against the final page and print the result.")
  in
  let fault_rate =
    Arg.(
      value
      & opt float 0.
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:
            "Inject network faults (drops + 5xx) with this total \
             probability per request, in [0,1). The browser retries with \
             backoff and falls back to its client-side store.")
  in
  let seed =
    Arg.(
      value
      & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Seed for the deterministic fault/retry randomness; the same \
             seed replays the exact same schedule.")
  in
  let run file clicks types show_doc render uppercase query fault_rate seed
      trace metrics no_cache cache_stats no_streaming no_value_index
      no_join_planner no_compiled_eval no_incremental no_interning =
    if fault_rate < 0. || fault_rate >= 1. then begin
      Printf.eprintf "error: --fault-rate must be in [0, 1), got %g\n" fault_rate;
      exit 2
    end;
    obs_setup ~trace ~metrics;
    cache_setup ~no_cache;
    streaming_setup ~no_streaming;
    plan_setup ~no_value_index ~no_join_planner ~no_compiled_eval
      ~no_incremental ~no_interning;
    handle (fun () ->
        Minijs.Js_interp.install ();
        let b =
          Xqib.Browser.create ~uppercase_tags:uppercase ~seed
            ~net_fallback:(fault_rate > 0.) ()
        in
        Xqib.Browser.connect_obs b;
        if fault_rate > 0. then
          Http_sim.set_faults b.Xqib.Browser.http ~seed
            (Http_sim.uniform_faults ~rate:fault_rate);
        Xqib.Page.load b (read_file file);
        Xqib.Browser.run b;
        let doc = Xqib.Browser.document b in
        List.iter
          (fun spec ->
            match String.index_opt spec '=' with
            | Some i ->
                let id = String.sub spec 0 i in
                let text = String.sub spec (i + 1) (String.length spec - i - 1) in
                (match Dom.get_element_by_id doc id with
                | Some el -> Xqib.Browser.type_text b el text
                | None -> Printf.eprintf "no element with id %S\n" id)
            | None -> Printf.eprintf "bad --type spec %S (want ID=TEXT)\n" spec)
          types;
        List.iter
          (fun id ->
            match Dom.get_element_by_id doc id with
            | Some el -> Xqib.Browser.click b el
            | None -> Printf.eprintf "no element with id %S\n" id)
          clicks;
        Xqib.Browser.run b;
        (match Xqib.Browser.alerts b with
        | [] -> ()
        | alerts ->
            print_endline "== alerts ==";
            List.iter print_endline alerts);
        (match query with
        | Some q ->
            print_endline "== query result ==";
            print_result (Xqib.Page.run_xquery b b.Xqib.Browser.top_window q)
        | None -> ());
        if show_doc then begin
          print_endline "== document ==";
          print_endline (Dom.serialize ~indent:true doc)
        end;
        if render then begin
          print_endline "== rendered ==";
          print_endline (Xqib.Renderer.render doc)
        end
        else if trace <> None then
          (* a traced session should always show the full pipeline,
             render included, even when the text output is not wanted *)
          ignore (Xqib.Renderer.render doc);
        Printf.printf "(%d events dispatched, %d DOM mutations)\n"
          b.Xqib.Browser.events_dispatched b.Xqib.Browser.render_count;
        if fault_rate > 0. then begin
          let stats = b.Xqib.Browser.net_stats in
          let rs = Rest.retry_stats b.Xqib.Browser.rest in
          Printf.printf
            "(faults: %d injected; %d retries, %d timeouts, %d exhausted, \
             %d store fallbacks)\n"
            (Http_sim.total_injected_faults b.Xqib.Browser.http)
            (stats.Retry.retries + rs.Retry.retries)
            (stats.Retry.timeouts + rs.Retry.timeouts)
            (stats.Retry.exhausted + rs.Retry.exhausted)
            (Rest.fallback_hits b.Xqib.Browser.rest)
        end;
        obs_report ~trace ~metrics;
        cache_report ~cache_stats)
  in
  Cmd.v
    (Cmd.info "page" ~doc:"Load an (X)HTML page in the simulated browser")
    Term.(
      const run $ file $ clicks $ types $ show_doc $ render $ uppercase $ query
      $ fault_rate $ seed $ trace_arg $ metrics_arg $ no_cache_arg
      $ cache_stats_arg $ no_streaming_arg $ no_value_index_arg
      $ no_join_planner_arg $ no_compiled_eval_arg $ no_incremental_arg
      $ no_interning_arg)

(* ---- migrate ---- *)

let migrate_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.xq") in
  let doc_base =
    Arg.(
      value
      & opt string "http://localhost/docs/"
      & info [ "doc-base" ] ~docv:"URI" ~doc:"Base URI fn:doc calls are rewritten to.")
  in
  let run file doc_base =
    handle (fun () ->
        print_endline (Appserver.Migration.migrate ~doc_base (read_file file)))
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Migrate a server-side XQuery page to a client page (paper §6.1)")
    Term.(const run $ file $ doc_base)

(* ---- fleet ---- *)

let fleet_cmd =
  let sessions =
    Arg.(
      value
      & opt int 100
      & info [ "fleet" ] ~docv:"N"
          ~doc:
            "Number of concurrent simulated browser sessions. Each gets \
             its own window tree, cookie jar and retry PRNG; all share one \
             virtual clock and one app server.")
  in
  let tenants =
    Arg.(
      value
      & opt int 1
      & info [ "tenants" ] ~docv:"K"
          ~doc:
            "Partition the fleet over K tenants: sessions prefix their \
             requests with /t<k>/ and the server compiles each tenant's \
             pages into its own query-cache partition.")
  in
  let shed_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "shed-depth" ] ~docv:"D"
          ~doc:
            "Admission-control threshold: when the server's request \
             backlog reaches D the request is shed with a 503 and a \
             Retry-After hint (consumed by the clients' retry policies). \
             Unset means never shed.")
  in
  let visits =
    Arg.(
      value & opt int 3
      & info [ "visits" ] ~docv:"V" ~doc:"Page visits per session, separated by think time.")
  in
  let migrated =
    Arg.(
      value & flag
      & info [ "migrated" ]
          ~doc:
            "Visit the migrated (client-side) page instead of the \
             server-rendered one: the server only hands out static \
             artifacts and documents, the browsers do the evaluation.")
  in
  let service_cost =
    Arg.(
      value
      & opt float 0.02
      & info [ "service-cost" ] ~docv:"S"
          ~doc:
            "Virtual seconds of server time per page evaluation (static \
             artifacts cost a tenth of this); requests queue FIFO behind \
             a single server.")
  in
  let spread =
    Arg.(
      value & opt float 10.
      & info [ "spread" ] ~docv:"S" ~doc:"Arrival window: sessions start uniformly over [0, S) virtual seconds.")
  in
  let think =
    Arg.(
      value & opt float 5.
      & info [ "think" ] ~docv:"S" ~doc:"Mean think time between a session's visits, in virtual seconds.")
  in
  let fault_rate =
    Arg.(
      value
      & opt float 0.
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Inject network faults (drops + 5xx) with this probability per request, in [0,1).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Fleet seed: arrivals, think times, per-session retry jitter and faults all derive from it; the same seed replays the same run.")
  in
  let max_tasks =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-tasks" ] ~docv:"N"
          ~doc:
            "Virtual-clock task budget. Defaults to a budget scaled to \
             the fleet size; exhausting it is an error, never a silent \
             truncation.")
  in
  let run sessions tenants shed_depth visits migrated service_cost spread think
      fault_rate seed max_tasks metrics =
    if sessions < 1 then begin
      Printf.eprintf "error: --fleet must be >= 1, got %d\n" sessions;
      exit 2
    end;
    if fault_rate < 0. || fault_rate >= 1. then begin
      Printf.eprintf "error: --fault-rate must be in [0, 1), got %g\n" fault_rate;
      exit 2
    end;
    if metrics then Obs.Metrics.set_enabled true;
    handle (fun () ->
        Minijs.Js_interp.install ();
        let r =
          Scenarios.run_fleet ~sessions ~tenants ?shed_depth ~visits ~migrated
            ~service_cost ~spread ~think ~rate:fault_rate ?max_tasks ~seed ()
        in
        Format.printf "%a@." Appserver.Fleet.pp_report r;
        if metrics then begin
          prerr_endline "== metrics ==";
          print_endline (Obs.Metrics.to_json ())
        end)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate a fleet of browser sessions against one app server in \
          virtual time (deterministic per seed)")
    Term.(
      const run $ sessions $ tenants $ shed_depth $ visits $ migrated
      $ service_cost $ spread $ think $ fault_rate $ seed $ max_tasks
      $ metrics_arg)

(* ---- parse ---- *)

let parse_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.xq") in
  let run file =
    handle (fun () ->
        let static = Xquery.Engine.default_static () in
        let prog = Xquery.Parser.parse_program static (read_file file) in
        print_string (Xquery.Ast_printer.program_to_source prog))
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a program and print normalised source")
    Term.(const run $ file)

(* ---- repl ---- *)

let repl_cmd =
  let page =
    Arg.(
      value
      & opt (some file) None
      & info [ "page" ] ~docv:"FILE.html" ~doc:"Load this page first; queries run against it.")
  in
  let run page =
    handle (fun () ->
        Minijs.Js_interp.install ();
        let b = Xqib.Browser.create () in
        (match page with
        | Some f -> Xqib.Page.load b (read_file f)
        | None -> Xqib.Page.load b "<html><body/></html>");
        print_endline "xqib repl — XQuery against a simulated page.";
        print_endline "Statements share one page context (scripting semantics).";
        print_endline "Type :doc to print the page, :quit to exit.";
        let rec loop () =
          print_string "xq> ";
          match read_line () with
          | exception End_of_file -> ()
          | ":quit" | ":q" -> ()
          | ":doc" ->
              print_endline (Dom.serialize ~indent:true (Xqib.Browser.document b));
              loop ()
          | ":alerts" ->
              List.iter print_endline (Xqib.Browser.alerts b);
              loop ()
          | "" -> loop ()
          | line ->
              (try
                 let result = Xqib.Page.run_xquery b b.Xqib.Browser.top_window line in
                 Xqib.Browser.run b;
                 print_result result
               with
              | Xquery.Xq_error.Error e ->
                  Printf.printf "error: %s
" (Xquery.Xq_error.to_string e)
              | Minijs.Js_interp.Js_error m -> Printf.printf "js error: %s
" m);
              loop ()
        in
        loop ())
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive XQuery against a simulated page")
    Term.(const run $ page)

let () =
  let info =
    Cmd.info "xqib" ~version:"1.0.0"
      ~doc:"XQuery in the Browser — simulated-browser XQuery runtime"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ eval_cmd; run_cmd; page_cmd; migrate_cmd; fleet_cmd; parse_cmd; repl_cmd ]))
