(* Global name interning: the Sym table is a bijection (round trips,
   symbol equality ⇔ string equality), Qname's gated equal/compare
   agree with the string semantics in both modes, the escape fast path
   returns clean strings physically unchanged, indexes and footprints
   stay correct for names first interned by a runtime mutation, and a
   QCheck differential proves {interning on, off} x {compiled,
   interpreted} all evaluate byte-identically (the ablated interpreted
   configuration is the string-keyed oracle). *)

open Xmlb
module I = Xdm_item
module Q = QCheck

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

let with_interning enabled f =
  let prev = Sym.fastpaths_enabled () in
  Sym.set_fastpaths enabled;
  Fun.protect ~finally:(fun () -> Sym.set_fastpaths prev) f

let with_compiled compiled f =
  let prev = Xquery.Engine.compiled_eval_enabled () in
  Xquery.Engine.set_compiled_eval compiled;
  Fun.protect ~finally:(fun () -> Xquery.Engine.set_compiled_eval prev) f

(* names nothing else in the process will ever intern *)
let fresh_name =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "zz-never-interned-%d-%d" !c (Hashtbl.hash (ref ()))

let name_gen =
  Q.Gen.(
    let letter = map (fun i -> Char.chr (Char.code 'a' + i)) (int_bound 25) in
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 12) letter))

let sym_tests =
  [
    t "intern round trips" (fun () ->
        let s = fresh_name () in
        check Alcotest.string "name (intern s)" s (Sym.name (Sym.intern s)));
    t "interning is idempotent" (fun () ->
        let s = fresh_name () in
        check Alcotest.bool "same symbol" true
          (Sym.equal (Sym.intern s) (Sym.intern s)));
    t "find_opt does not intern" (fun () ->
        let s = fresh_name () in
        let before = Sym.size () in
        check Alcotest.bool "absent" true (Option.is_none (Sym.find_opt s));
        check Alcotest.int "size unchanged" before (Sym.size ());
        let sym = Sym.intern s in
        check Alcotest.bool "present after intern" true
          (match Sym.find_opt s with
          | Some s' -> Sym.equal s' sym
          | None -> false));
    t "stats counters advance" (fun () ->
        let misses0 = Sym.misses () and bytes0 = Sym.bytes () in
        let s = fresh_name () in
        let _ = Sym.intern s in
        let hits0 = Sym.hits () in
        let _ = Sym.intern s in
        check Alcotest.bool "miss counted" true (Sym.misses () > misses0);
        check Alcotest.bool "hit counted" true (Sym.hits () > hits0);
        check Alcotest.int "bytes counted"
          (bytes0 + String.length s)
          (Sym.bytes ()));
    qt "symbol equality iff string equality"
      Q.(pair (make name_gen) (make name_gen))
      (fun (a, b) ->
        Sym.equal (Sym.intern a) (Sym.intern b) = String.equal a b);
    qt "round trip on arbitrary names" (Q.make name_gen) (fun s ->
        String.equal s (Sym.name (Sym.intern s)));
  ]

(* ------------------------------------------------------------------ *)
(* Qname: the gated fast paths agree with the string semantics *)

let qname_gen =
  Q.Gen.(
    let uri =
      oneof
        [ return None; map (fun s -> Some ("urn:" ^ s)) name_gen ]
    in
    map2 (fun uri local -> Qname.make ?uri local) uri name_gen)

let qname_tests =
  [
    qt "equal agrees across modes"
      Q.(pair (make qname_gen) (make qname_gen))
      (fun (a, b) ->
        with_interning true (fun () -> Qname.equal a b)
        = with_interning false (fun () -> Qname.equal a b));
    qt "compare agrees across modes"
      Q.(pair (make qname_gen) (make qname_gen))
      (fun (a, b) ->
        let sign c = Stdlib.compare c 0 in
        sign (with_interning true (fun () -> Qname.compare a b))
        = sign (with_interning false (fun () -> Qname.compare a b)))
      ~count:400;
    qt "hash respects equality"
      Q.(pair (make qname_gen) (make qname_gen))
      (fun (a, b) ->
        (not (Qname.equal a b)) || Qname.hash a = Qname.hash b);
    t "with_uri re-interns the uri symbol" (fun () ->
        let qn = Qname.make "local" in
        let qn' = Qname.with_uri qn (Some "urn:t16") in
        check Alcotest.bool "usym updated" true
          (qn'.Qname.usym = (Sym.intern "urn:t16" :> int));
        let qn'' = Qname.with_uri qn' None in
        check Alcotest.bool "usym cleared" true (qn''.Qname.usym = qn.Qname.usym));
  ]

(* ------------------------------------------------------------------ *)
(* Xml_escape: clean strings come back physically unchanged; escaping
   agrees with a per-character oracle *)

let escape_oracle specials s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match List.assoc_opt c specials with
      | Some e -> Buffer.add_string buf e
      | None -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let text_specials = [ ('&', "&amp;"); ('<', "&lt;"); ('>', "&gt;") ]

let attr_specials =
  [ ('&', "&amp;"); ('<', "&lt;"); ('>', "&gt;"); ('"', "&quot;") ]

let escape_gen =
  Q.Gen.(
    let ch =
      frequency
        [
          (12, map (fun i -> Char.chr (Char.code 'a' + i)) (int_bound 25));
          (2, oneofl [ '&'; '<'; '>'; '"'; '\'' ]);
          (1, return ' ');
        ]
    in
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_bound 40) ch))

let escape_tests =
  [
    t "clean text is physically unchanged" (fun () ->
        let s = "no specials here at all" in
        check Alcotest.bool "same string" true (Xml_escape.text s == s);
        check Alcotest.bool "attribute too" true (Xml_escape.attribute s == s));
    t "escapes still escape" (fun () ->
        check Alcotest.string "text" "a&amp;b&lt;c&gt;" (Xml_escape.text "a&b<c>");
        check Alcotest.string "attr" "say &quot;hi&quot;"
          (Xml_escape.attribute "say \"hi\""));
    qt "text matches the per-char oracle" (Q.make escape_gen) (fun s ->
        String.equal (Xml_escape.text s) (escape_oracle text_specials s));
    qt "attribute matches the per-char oracle" (Q.make escape_gen) (fun s ->
        String.equal (Xml_escape.attribute s) (escape_oracle attr_specials s));
  ]

(* ------------------------------------------------------------------ *)
(* Names first interned at runtime: index probes and footprint
   intersection must behave identically to ahead-of-time names *)

let runtime_name_tests =
  [
    t "index finds elements renamed to a fresh name" (fun () ->
        List.iter
          (fun mode ->
            with_interning mode (fun () ->
                let fresh = fresh_name () in
                let doc = Dom.of_string "<root><a>1</a><a>2</a></root>" in
                check Alcotest.int "absent before" 0
                  (List.length (Dom.get_elements_by_local_name doc fresh));
                (match Dom.get_elements_by_local_name doc "a" with
                | el :: _ -> Dom.rename el (Qname.make fresh)
                | [] -> Alcotest.fail "no a element");
                check Alcotest.int "found after rename" 1
                  (List.length (Dom.get_elements_by_local_name doc fresh))))
          [ true; false ]);
    t "updating query creating a fresh name is queryable" (fun () ->
        List.iter
          (fun mode ->
            with_interning mode (fun () ->
                let fresh = fresh_name () in
                let doc = Dom.of_string "<r><x/></r>" in
                let eval src =
                  I.to_display_string
                    (Xquery.Engine.eval_string ~context_item:(I.Node doc) src)
                in
                (* snapshot semantics: the insert applies when the first
                   query finishes, the count is a second evaluation *)
                let _ =
                  eval (Printf.sprintf "insert node <%s/> into /r" fresh)
                in
                check Alcotest.string "one inserted" "1"
                  (eval (Printf.sprintf "count(//%s)" fresh))))
          [ true; false ]);
    t "footprint read of an unseen name catches a later write" (fun () ->
        let fresh = fresh_name () in
        let fp = Footprint.create () in
        let prev = Footprint.start fp in
        Footprint.reading_name ~root:1 ~scope:1 (Sym.intern fresh);
        Footprint.restore prev;
        let w = Footprint.fresh_wrec ~root:1 ~chain:[ 1; 2 ] in
        Footprint.add_wname w (Sym.intern fresh);
        check Alcotest.bool "intersects" true (Footprint.intersects fp [ w ]);
        let w2 = Footprint.fresh_wrec ~root:1 ~chain:[ 1; 2 ] in
        Footprint.add_wname w2 (Sym.intern (fresh_name ()));
        check Alcotest.bool "other name misses" false
          (Footprint.intersects fp [ w2 ]));
    t "value-index probes agree across modes after mutation" (fun () ->
        let doc =
          Dom.of_string
            "<root><item k='a'>1</item><item k='b'>2</item></root>"
        in
        let probe () =
          match Dom.elements_by_attr_value doc ~local:"k" "c" with
          | Some els -> List.length els
          | None -> -1
        in
        let on0 = with_interning true probe in
        let off0 = with_interning false probe in
        check Alcotest.int "miss agrees" on0 off0;
        (match Dom.get_elements_by_local_name doc "item" with
        | el :: _ -> Dom.set_attribute el (Qname.make "k") "c"
        | [] -> Alcotest.fail "no item");
        let on1 = with_interning true probe in
        let off1 = with_interning false probe in
        check Alcotest.int "hit agrees" on1 off1;
        check Alcotest.int "index sees the new value" 1 on1);
  ]

(* ------------------------------------------------------------------ *)
(* Differential: {interning on, off} x {compiled, interpreted} must
   be byte-identical; ablated interpreted is the string-keyed oracle *)

let diff_doc_gen =
  Q.Gen.(
    let name = oneofl [ "alpha"; "beta"; "gamma"; "alphabet" ] in
    let item =
      map2
        (fun n (k, v) -> Printf.sprintf "<%s k='%d'>%d</%s>" n k v n)
        name
        (pair (int_bound 3) (int_bound 9))
    in
    map
      (fun items -> "<root>" ^ String.concat "" items ^ "</root>")
      (list_size (int_range 1 12) item))

let diff_query_gen =
  Q.Gen.(
    oneofl
      [
        "count(//alpha)";
        "count(/root/beta)";
        "string-join(//alpha/@k, ',')";
        "count(//alpha[@k eq '1'])";
        "count(distinct-values(for $x in /root/* return node-name($x)))";
        "string-join(for $x in /root/* order by local-name($x), \
         xs:integer($x/@k) return local-name($x), ' ')";
        "sum(for $x in //alphabet return xs:integer($x))";
        "count(//*[local-name() = 'gamma'])";
      ])

let differential_tests =
  [
    qt ~count:150 "4-way differential vs string-keyed oracle"
      (Q.make
         ~print:(fun (d, q) -> d ^ " |> " ^ q)
         Q.Gen.(pair diff_doc_gen diff_query_gen))
      (fun (doc_src, query) ->
        let outcome ~interning ~compiled =
          with_interning interning (fun () ->
              with_compiled compiled (fun () ->
                  match
                    I.to_display_string
                      (Xquery.Engine.eval_string
                         ~context_item:(I.Node (Dom.of_string doc_src))
                         query)
                  with
                  | s -> "ok: " ^ s
                  | exception Xquery.Xq_error.Error e ->
                      "err: " ^ e.Xquery.Xq_error.code))
        in
        let oracle = outcome ~interning:false ~compiled:false in
        List.for_all
          (fun (i, c) -> String.equal oracle (outcome ~interning:i ~compiled:c))
          [ (false, true); (true, false); (true, true) ]);
  ]

let suite =
  sym_tests @ qname_tests @ escape_tests @ runtime_name_tests
  @ differential_tests
