(* Differential join-testing suite: the value indexes and the
   join-aware FLWOR planner are pinned against the nested-loop oracle
   (both accelerations off) across all four config combinations, on
   randomly generated documents and equi-join FLWORs.  Satellites ride
   along: '=' vs 'eq' semantics regressions, and value-index
   invalidation under PUL updates. *)

open Xquery
module I = Xdm_item
module Q = QCheck

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

(* run [f] under an explicit acceleration config, restoring the
   global switches afterwards *)
let with_config ~vidx ~planner f =
  let pv = Dom.value_index_enabled () in
  let pp = Optimizer.join_planning_enabled () in
  Dom.set_value_index vidx;
  Optimizer.set_join_planning planner;
  Fun.protect
    ~finally:(fun () ->
      Dom.set_value_index pv;
      Optimizer.set_join_planning pp)
    f

let eval_doc ~doc src =
  let node = I.Node (Dom.of_string doc) in
  I.to_display_string (Engine.eval_string ~context_item:node src)

let eval_outcome ~doc src =
  match eval_doc ~doc src with
  | v -> Ok v
  | exception Xq_error.Error e -> Error e.Xq_error.code

let outcome = Alcotest.(result string string)

(* oracle first: nested-loop evaluation with every acceleration off *)
let configs =
  [ (false, false); (true, false); (false, true); (true, true) ]

let oracle_of ~doc src =
  with_config ~vidx:false ~planner:false (fun () -> eval_outcome ~doc src)

(* item-for-item agreement: the display string preserves order and
   duplicates, so string equality is sequence equality *)
let agree ~doc src =
  let oracle = oracle_of ~doc src in
  List.for_all
    (fun (v, p) ->
      with_config ~vidx:v ~planner:p (fun () -> eval_outcome ~doc src)
      = oracle)
    configs

let differential ?expected ~doc name src =
  t name (fun () ->
      let oracle = oracle_of ~doc src in
      (match expected with
      | Some e -> check outcome ("oracle: " ^ src) (Ok e) oracle
      | None -> ());
      List.iter
        (fun (v, p) ->
          check outcome
            (Printf.sprintf "%s [vidx=%b planner=%b]" src v p)
            oracle
            (with_config ~vidx:v ~planner:p (fun () ->
                 eval_outcome ~doc src)))
        configs)

(* ---------- random documents: two keyed tables ---------- *)

(* a row has an optional key attribute @k, zero to two <k> child
   elements (two make 'eq' on the child key a type error while '='
   stays existential), and a small flag @q for extra conjuncts *)
type row = { ak : string option; cks : string list; q : int }

let render_row tag i r =
  Printf.sprintf "<%s id='%s%d'%s q='%d'>%s</%s>" tag tag i
    (match r.ak with Some k -> Printf.sprintf " k='%s'" k | None -> "")
    r.q
    (String.concat "" (List.map (fun k -> "<k>" ^ k ^ "</k>") r.cks))
    tag

let doc_of (os, ps) =
  let table tag rows =
    String.concat "" (List.mapi (fun i r -> render_row tag (i + 1) r) rows)
  in
  "<db><os>" ^ table "o" os ^ "</os><ps>" ^ table "p" ps ^ "</ps></db>"

(* the key pool is small so joins actually match, includes duplicates
   across rows, and carries the '7' vs '07' untyped-promotion trap:
   untyped join keys compare as strings, so these must NOT join *)
let key_gen = Q.Gen.oneofl [ "k0"; "k1"; "k2"; "7"; "07" ]

let row_gen =
  Q.Gen.(
    let opt_key =
      frequency [ (6, map Option.some key_gen); (1, return None) ]
    in
    map3
      (fun ak cks q -> { ak; cks; q })
      opt_key
      (list_size (int_bound 2) key_gen)
      (int_bound 1))

let tables_gen =
  Q.Gen.(pair (list_size (int_bound 6) row_gen) (list_size (int_bound 6) row_gen))

(* ---------- random equi-join FLWORs and index lookups ---------- *)

let query_gen =
  Q.Gen.(
    let ka = oneofl [ "$a/@k"; "$a/k" ] in
    let kb = oneofl [ "$b/@k"; "$b/k" ] in
    let cmp = oneofl [ "eq"; "=" ] in
    let extra =
      oneofl [ ""; " and $a/@q = '1'"; " and $b/@q = '0'" ]
    in
    let order = oneofl [ ""; " order by $b/@id" ] in
    let ret =
      oneofl
        [ "concat($a/@id, ':', $b/@id)"; "$b/@id"; "string($a/@q)" ]
    in
    let join =
      ka >>= fun ka ->
      kb >>= fun kb ->
      cmp >>= fun cmp ->
      extra >>= fun extra ->
      order >>= fun order ->
      ret >>= fun ret ->
      return
        (Printf.sprintf "for $a in //o, $b in //p where %s %s %s%s%s return %s"
           ka cmp kb extra order ret)
    in
    let lookup =
      key_gen >>= fun k ->
      oneofl
        [
          Printf.sprintf "count(//o[@k eq '%s'])" k;
          Printf.sprintf "count(//p[@k = '%s'])" k;
          Printf.sprintf "string-join(//p[k = '%s']/@id, ' ')" k;
          Printf.sprintf "count(//o[k eq '%s'])" k;
        ]
    in
    let wrapped =
      join >>= fun j ->
      oneofl
        [
          j;
          Printf.sprintf "exists(%s)" j;
          Printf.sprintf "count(%s)" j;
          Printf.sprintf "string-join((%s), ' ')" j;
          Printf.sprintf "(%s)[1]" j;
        ]
    in
    frequency [ (4, wrapped); (1, lookup) ])

let case_gen = Q.Gen.pair tables_gen query_gen
let print_case (tables, src) = doc_of tables ^ "\n" ^ src

let differential_properties =
  [
    qt ~count:400 "joins agree across all index/planner configs"
      (Q.make ~print:print_case case_gen)
      (fun (tables, src) -> agree ~doc:(doc_of tables) src);
  ]

(* ---------- counters: the fast paths actually execute ---------- *)

let counters names f =
  let prev = !Obs.Metrics.enabled in
  Obs.Metrics.enabled := true;
  Obs.Metrics.reset ();
  Fun.protect ~finally:(fun () -> Obs.Metrics.enabled := prev) (fun () ->
      let v = f () in
      (v, List.map Obs.Metrics.counter names))

let join_doc =
  "<db><os><o id='o1' k='a'/><o id='o2' k='b'/><o id='o3' k='a'/></os>\
   <ps><p id='p1' k='a'/><p id='p2' k='c'/></ps></db>"

let join_q =
  "for $a in //o, $b in //p where $a/@k eq $b/@k \
   return concat($a/@id, ':', $b/@id)"

let counter_tests =
  [
    t "planner on builds one table and probes each left row" (fun () ->
        let v, cs =
          counters [ "xquery.join.hash_builds"; "xquery.join.probes" ]
            (fun () ->
              with_config ~vidx:false ~planner:true (fun () ->
                  eval_doc ~doc:join_doc join_q))
        in
        check Alcotest.string "join result" "o1:p1 o3:p1" v;
        check Alcotest.(list int) "builds=1 probes=3" [ 1; 3 ] cs);
    t "planner off never touches the hash-join path" (fun () ->
        let v, cs =
          counters [ "xquery.join.hash_builds"; "xquery.join.probes" ]
            (fun () ->
              with_config ~vidx:true ~planner:false (fun () ->
                  eval_doc ~doc:join_doc join_q))
        in
        check Alcotest.string "join result" "o1:p1 o3:p1" v;
        check Alcotest.(list int) "no builds, no probes" [ 0; 0 ] cs);
    t "value index serves descendant attribute lookups" (fun () ->
        let v, cs =
          counters [ "dom.value_index.hits" ] (fun () ->
              with_config ~vidx:true ~planner:false (fun () ->
                  eval_doc ~doc:join_doc "count(//o[@k eq 'a'])"))
        in
        check Alcotest.string "lookup result" "2" v;
        check Alcotest.bool "index hit" true (List.hd cs >= 1));
    t "disabled value index never hits" (fun () ->
        let v, cs =
          counters [ "dom.value_index.hits" ] (fun () ->
              with_config ~vidx:false ~planner:false (fun () ->
                  eval_doc ~doc:join_doc "count(//o[@k eq 'a'])"))
        in
        check Alcotest.string "lookup result" "2" v;
        check Alcotest.(list int) "no hits" [ 0 ] cs);
  ]

(* ---------- satellite: '=' vs 'eq' join semantics ---------- *)

let semantics_doc =
  "<db><os>\
   <o id='o1' k='a'><k>a</k></o>\
   <o id='o2' k='b'><k>b</k><k>c</k></o>\
   <o id='o3' k='7'/>\
   </os><ps>\
   <p id='p1' k='a'><k>a</k></p>\
   <p id='p2' k='c'><k>c</k></p>\
   <p id='p3' k='07'/>\
   </ps></db>"

let semantics_tests =
  [
    (* existential general comparison inside a predicate must stay a
       scan-with-existential-match, never a singleton hash lookup *)
    (* //p/k holds {'a','c'}: only o1's key is in the set; 'eq'
       against the multi-valued path would be a type error instead *)
    differential ~doc:semantics_doc ~expected:"o1"
      "predicate '=' against a multi-valued path stays existential"
      "string-join(//o[@k = //p/k]/@id, ' ')";
    differential ~doc:semantics_doc ~expected:"o1:p1 o2:p2"
      "general '=' join matches any key of a multi-valued row"
      "string-join(for $a in //o, $b in //p where $a/k = $b/k \
       return concat($a/@id, ':', $b/@id), ' ')";
    (* 'eq' requires singleton operands: o2 carries two <k> children,
       so the query is a type error under every config *)
    t "multi-valued 'eq' key raises XPTY0004 in all configs" (fun () ->
        List.iter
          (fun (v, p) ->
            match
              with_config ~vidx:v ~planner:p (fun () ->
                  eval_outcome ~doc:semantics_doc
                    "for $a in //o, $b in //p where $a/k eq $b/k \
                     return $a/@id")
            with
            | Error code ->
                check Alcotest.string
                  (Printf.sprintf "code [vidx=%b planner=%b]" v p)
                  "XPTY0004" code
            | Ok v' -> Alcotest.failf "expected XPTY0004, got %S" v')
          configs);
    (* untyped attribute keys atomize to untypedAtomic and compare as
       strings for both 'eq' and '=': '7' and '07' must not join *)
    differential ~doc:semantics_doc ~expected:""
      "untyped keys join by string value under 'eq'"
      "string-join(for $a in //o, $b in //p where $a/@k eq $b/@k \
       and $a/@id = 'o3' return $b/@id, ' ')";
    differential ~doc:semantics_doc ~expected:""
      "untyped keys join by string value under '='"
      "string-join(for $a in //o, $b in //p where $a/@k = $b/@k \
       and $a/@id = 'o3' return $b/@id, ' ')";
    (* empty key sides: a row without the attribute joins nothing but
       kills nothing else *)
    differential ~doc:"<db><os><o id='o1'/><o id='o2' k='a'/></os>\
                       <ps><p id='p1' k='a'/></ps></db>"
      ~expected:"o2:p1" "absent keys drop out quietly"
      "string-join(for $a in //o, $b in //p where $a/@k eq $b/@k \
       return concat($a/@id, ':', $b/@id), ' ')";
    (* an empty build side must not evaluate probe keys at all: the
       multi-valued probe key would raise, but no probes happen *)
    differential
      ~doc:"<db><os><o id='o1'><k>a</k><k>b</k></o></os><ps/></db>"
      ~expected:"" "empty build side short-circuits probe-key errors"
      "string-join(for $a in //o, $b in //p where $a/k eq $b/k \
       return $a/@id, ' ')";
  ]

(* ---------- satellite: PUL updates invalidate the index ---------- *)

(* a mutating session against one shared tree: run lookups with the
   index on, apply an update through the engine's PUL, and require the
   indexed answers to match a fresh scan (index off) on the mutated
   tree, with the DOM generation bumped exactly once per apply *)
let session_doc () =
  Dom.of_string
    "<db><ps><p id='p1' k='a'><n>x</n></p><p id='p2' k='b'><n>y</n></p>\
     <p id='p3'><n>z</n></p></ps></db>"

let indexed node src =
  with_config ~vidx:true ~planner:false (fun () ->
      I.to_display_string (Engine.eval_string ~context_item:(I.Node node) src))

let fresh_scan node src =
  with_config ~vidx:false ~planner:false (fun () ->
      I.to_display_string (Engine.eval_string ~context_item:(I.Node node) src))

let match_scan node src =
  check Alcotest.string ("indexed matches scan: " ^ src) (fresh_scan node src)
    (indexed node src)

let apply_update node ~bumps src =
  let g0 = Dom.generation node in
  ignore (indexed node src);
  check Alcotest.int ("generation after: " ^ src) (g0 + bumps)
    (Dom.generation node)

let invalidation_tests =
  [
    t "renaming an attribute moves it between index keys" (fun () ->
        let d = session_doc () in
        check Alcotest.string "before" "1" (indexed d "count(//p[@k eq 'b'])");
        apply_update d ~bumps:1 "rename node (//p[@id = 'p2'])/@k as 'j'";
        match_scan d "count(//p[@k eq 'b'])";
        match_scan d "count(//p[@j eq 'b'])";
        check Alcotest.string "old name gone" "0"
          (indexed d "count(//p[@k eq 'b'])");
        check Alcotest.string "new name found" "1"
          (indexed d "count(//p[@j eq 'b'])"));
    t "replacing an attribute value re-keys the row" (fun () ->
        let d = session_doc () in
        check Alcotest.string "before" "1" (indexed d "count(//p[@k eq 'a'])");
        apply_update d ~bumps:1
          "replace value of node (//p[@id = 'p1'])/@k with 'z'";
        match_scan d "count(//p[@k eq 'a'])";
        match_scan d "count(//p[@k eq 'z'])";
        check Alcotest.string "old value gone" "0"
          (indexed d "count(//p[@k eq 'a'])");
        check Alcotest.string "new value found" "1"
          (indexed d "count(//p[@k eq 'z'])"));
    t "inserting an attribute adds a row to the index" (fun () ->
        let d = session_doc () in
        check Alcotest.string "before" "1" (indexed d "count(//p[@k eq 'a'])");
        apply_update d ~bumps:1
          "insert node attribute k { 'a' } into (//p[@id = 'p3'])[1]";
        match_scan d "count(//p[@k eq 'a'])";
        check Alcotest.string "after" "2" (indexed d "count(//p[@k eq 'a'])"));
    t "replacing text content re-keys the text index" (fun () ->
        let d = session_doc () in
        check Alcotest.string "before" "1" (indexed d "count(//p[n = 'x'])");
        (* element-content replacement detaches the old text child
           (one bump) and then records the value change (second) *)
        apply_update d ~bumps:2
          "replace value of node (//p[@id = 'p1'])/n with 'w'";
        match_scan d "count(//p[n = 'x'])";
        match_scan d "count(//p[n = 'w'])";
        check Alcotest.string "old text gone" "0"
          (indexed d "count(//p[n = 'x'])");
        check Alcotest.string "new text found" "1"
          (indexed d "count(//p[n = 'w'])"));
  ]

let suite =
  differential_properties @ counter_tests @ semantics_tests
  @ invalidation_tests
