(* Simulated network: virtual clock, HTTP, document store, REST client
   with caching, web services. *)

open Xquery
module I = Xdm_item

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let clock_tests =
  [
    t "time starts at zero" (fun () ->
        check (Alcotest.float 0.0001) "zero" 0. (Virtual_clock.now (Virtual_clock.create ())));
    t "sleep advances" (fun () ->
        let c = Virtual_clock.create () in
        Virtual_clock.sleep c 1.5;
        check (Alcotest.float 0.0001) "1.5" 1.5 (Virtual_clock.now c));
    t "tasks run in fire-time order" (fun () ->
        let c = Virtual_clock.create () in
        let log = ref [] in
        Virtual_clock.schedule c ~delay:2. (fun () -> log := "b" :: !log);
        Virtual_clock.schedule c ~delay:1. (fun () -> log := "a" :: !log);
        Virtual_clock.run_until_idle c;
        check (Alcotest.list Alcotest.string) "order" [ "a"; "b" ] (List.rev !log);
        check (Alcotest.float 0.0001) "time" 2. (Virtual_clock.now c));
    t "equal fire times run in scheduling order" (fun () ->
        let c = Virtual_clock.create () in
        let log = ref [] in
        Virtual_clock.schedule c ~delay:1. (fun () -> log := "first" :: !log);
        Virtual_clock.schedule c ~delay:1. (fun () -> log := "second" :: !log);
        Virtual_clock.run_until_idle c;
        check (Alcotest.list Alcotest.string) "fifo" [ "first"; "second" ] (List.rev !log));
    t "tasks can schedule tasks" (fun () ->
        let c = Virtual_clock.create () in
        let done_ = ref false in
        Virtual_clock.schedule c ~delay:1. (fun () ->
            Virtual_clock.schedule c ~delay:1. (fun () -> done_ := true));
        Virtual_clock.run_until_idle c;
        check Alcotest.bool "ran" true !done_;
        check (Alcotest.float 0.0001) "2s" 2. (Virtual_clock.now c));
    t "run_next returns false when idle" (fun () ->
        check Alcotest.bool "idle" false (Virtual_clock.run_next (Virtual_clock.create ())));
    t "runaway loops hit the budget" (fun () ->
        let c = Virtual_clock.create () in
        let rec loop () = Virtual_clock.schedule c ~delay:0. (fun () -> loop ()) in
        loop ();
        match Virtual_clock.run_until_idle ~max_tasks:100 c with
        | exception Virtual_clock.Budget_exhausted { budget = 100; pending } ->
            check Alcotest.bool "work still pending" true (pending > 0)
        | exception Virtual_clock.Budget_exhausted _ ->
            Alcotest.fail "wrong budget reported"
        | () -> Alcotest.fail "expected budget failure");
    t "to_datetime maps virtual zero to the fixed epoch" (fun () ->
        let c = Virtual_clock.create () in
        check Alcotest.string "epoch" "2008-06-09T12:00:00Z"
          (Xdm_datetime.date_time_to_string (Virtual_clock.to_datetime c)));
  ]

let http_tests =
  [
    t "split_uri" (fun () ->
        check
          (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
          "split"
          (Some ("h:8080", "/a/b?q"))
          (Http_sim.split_uri "http://h:8080/a/b?q");
        check
          (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
          "no path" (Some ("h", "/")) (Http_sim.split_uri "http://h"));
    t "fetch registered doc" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        Http_sim.register_doc http ~uri:"http://h/x.xml" "<x/>";
        let r = Http_sim.fetch http "http://h/x.xml" in
        check Alcotest.int "200" 200 r.Http_sim.status;
        check Alcotest.string "body" "<x/>" r.Http_sim.body);
    t "unknown path is 404, unknown host 502" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        Http_sim.register_doc http ~uri:"http://h/x.xml" "<x/>";
        check Alcotest.int "404" 404 (Http_sim.fetch http "http://h/nope").Http_sim.status;
        check Alcotest.int "502" 502 (Http_sim.fetch http "http://other/x").Http_sim.status);
    t "fetch advances the clock by the latency model" (fun () ->
        let clock = Virtual_clock.create () in
        let http =
          Http_sim.create ~latency:{ Http_sim.base = 0.1; per_kb = 0. } clock
        in
        Http_sim.register_doc http ~uri:"http://h/x.xml" "<x/>";
        ignore (Http_sim.fetch http "http://h/x.xml");
        check (Alcotest.float 0.0001) "0.1s" 0.1 (Virtual_clock.now clock));
    t "per-kb latency scales with body size" (fun () ->
        let clock = Virtual_clock.create () in
        let http =
          Http_sim.create ~latency:{ Http_sim.base = 0.; per_kb = 1. } clock
        in
        Http_sim.register_doc http ~uri:"http://h/big" (String.make 2048 'x');
        ignore (Http_sim.fetch http "http://h/big");
        check (Alcotest.float 0.001) "2s" 2. (Virtual_clock.now clock));
    t "async fetch does not block" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        Http_sim.register_doc http ~uri:"http://h/x.xml" "<x/>";
        let got = ref None in
        Http_sim.fetch_async http "http://h/x.xml" (fun r -> got := Some r.Http_sim.status);
        check (Alcotest.option Alcotest.int) "not yet" None !got;
        check (Alcotest.float 0.0001) "no time passed" 0. (Virtual_clock.now clock);
        Virtual_clock.run_until_idle clock;
        check (Alcotest.option Alcotest.int) "arrived" (Some 200) !got;
        check Alcotest.bool "time advanced" true (Virtual_clock.now clock > 0.));
    t "request statistics" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        Http_sim.register_doc http ~uri:"http://h/x.xml" "<x/>";
        ignore (Http_sim.fetch http "http://h/x.xml");
        ignore (Http_sim.fetch http "http://h/x.xml");
        check Alcotest.int "2 requests" 2 (Http_sim.request_count http ~host:"h");
        check Alcotest.int "bytes" 8 (Http_sim.bytes_served http ~host:"h");
        Http_sim.reset_stats http;
        check Alcotest.int "reset" 0 (Http_sim.total_requests http));
  ]

let store_tests =
  [
    t "put/get round trip" (fun () ->
        let s = Doc_store.create () in
        Doc_store.put_xml s ~name:"a.xml" "<a>1</a>";
        match Doc_store.get s "a.xml" with
        | Some doc -> check Alcotest.string "body" "<a>1</a>" (Dom.serialize doc)
        | None -> Alcotest.fail "missing");
    t "serves documents over http" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let s = Doc_store.create () in
        Doc_store.put_xml s ~name:"a.xml" "<a/>";
        Doc_store.attach s http ~host:"db";
        let r = Http_sim.fetch http (Doc_store.uri_of ~host:"db" ~name:"a.xml") in
        check Alcotest.string "body" "<a/>" r.Http_sim.body;
        check Alcotest.int "404 for missing" 404
          (Http_sim.fetch http "http://db/docs/zzz").Http_sim.status);
    t "index lists documents" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let s = Doc_store.create () in
        Doc_store.put_xml s ~name:"a.xml" "<a/>";
        Doc_store.put_xml s ~name:"b.xml" "<b/>";
        Doc_store.attach s http ~host:"db";
        let r = Http_sim.fetch http "http://db/docs" in
        let doc = Dom.of_string r.Http_sim.body in
        check Alcotest.int "2 docs" 2 (List.length (Dom.get_elements_by_local_name doc "doc")));
  ]

let rest_tests =
  [
    t "rest:get parses xml" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        Http_sim.register_doc http ~uri:"http://h/w.xml" "<weather t='21'/>";
        let client = Rest.make_client http in
        let sctx = Engine.default_static () in
        Rest.install client sctx;
        let r =
          Engine.eval_string ~static:sctx "string(rest:get('http://h/w.xml')/weather/@t)"
        in
        check Alcotest.string "21" "21" (I.to_display_string r));
    t "cache avoids repeat fetches" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        Http_sim.register_doc http ~uri:"http://h/w.xml" "<w/>";
        let client = Rest.make_client ~cache:true http in
        ignore (Rest.get_doc client "http://h/w.xml");
        ignore (Rest.get_doc client "http://h/w.xml");
        ignore (Rest.get_doc client "http://h/w.xml");
        check Alcotest.int "1 network request" 1 (Http_sim.request_count http ~host:"h");
        check Alcotest.int "2 hits" 2 (Rest.cache_hits client);
        check Alcotest.int "1 miss" 1 (Rest.cache_misses client));
    t "no cache refetches" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        Http_sim.register_doc http ~uri:"http://h/w.xml" "<w/>";
        let client = Rest.make_client http in
        ignore (Rest.get_doc client "http://h/w.xml");
        ignore (Rest.get_doc client "http://h/w.xml");
        check Alcotest.int "2 requests" 2 (Http_sim.request_count http ~host:"h"));
    t "clear_cache forgets" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        Http_sim.register_doc http ~uri:"http://h/w.xml" "<w/>";
        let client = Rest.make_client ~cache:true http in
        ignore (Rest.get_doc client "http://h/w.xml");
        Rest.clear_cache client;
        ignore (Rest.get_doc client "http://h/w.xml");
        check Alcotest.int "2 requests" 2 (Http_sim.request_count http ~host:"h"));
    t "rest:get error on 404" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        Http_sim.register_doc http ~uri:"http://h/x" "<x/>";
        let client = Rest.make_client http in
        let sctx = Engine.default_static () in
        Rest.install client sctx;
        match Engine.eval_string ~static:sctx "rest:get('http://h/zzz')" with
        | exception Xq_error.Error e ->
            check Alcotest.string "code" "FODC0002" e.Xq_error.code
        | _ -> Alcotest.fail "expected error");
  ]

(* the paper's §3.4 web service *)
let mul_service = {|
module namespace ex = "www.example.ch" port:2001;
declare option fn:webservice "true";
declare function ex:mul($a, $b) { $a * $b };
declare function ex:greet($n) { concat('hello ', $n) };
|}

let ws_tests =
  [
    t "publish exposes functions" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let svc = Web_service.publish http ~source:mul_service in
        check Alcotest.string "uri" "http://localhost:2001/wsdl" (Web_service.service_uri svc);
        check Alcotest.int "two functions" 2 (List.length (Web_service.functions svc)));
    t "paper §3.4: import module at wsdl and call ab:mul(2,5)" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let svc = Web_service.publish http ~source:mul_service in
        let sctx = Engine.default_static () in
        Xquery.Static_context.set_module_resolver sctx (Web_service.module_resolver http);
        let r =
          Engine.eval_string ~static:sctx
            {|import module namespace ab = "www.example.ch" at "http://localhost:2001/wsdl";
              ab:mul(2, 5)|}
        in
        check Alcotest.string "10" "10" (I.to_display_string r);
        check Alcotest.int "one remote call" 1 (Web_service.call_count svc));
    t "remote call costs latency" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create ~latency:{ Http_sim.base = 0.05; per_kb = 0. } clock in
        let _ = Web_service.publish http ~source:mul_service in
        let sctx = Engine.default_static () in
        Xquery.Static_context.set_module_resolver sctx (Web_service.module_resolver http);
        ignore
          (Engine.eval_string ~static:sctx
             {|import module namespace ab = "www.example.ch" at "http://localhost:2001/wsdl";
               ab:mul(2, 5)|});
        (* one fetch for the wsdl + one for the call *)
        check (Alcotest.float 0.001) "0.1s" 0.1 (Virtual_clock.now clock));
    t "string results come back" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let _ = Web_service.publish http ~source:mul_service in
        let sctx = Engine.default_static () in
        Xquery.Static_context.set_module_resolver sctx (Web_service.module_resolver http);
        let r =
          Engine.eval_string ~static:sctx
            {|import module namespace ab = "www.example.ch" at "http://localhost:2001/wsdl";
              ab:greet('world')|}
        in
        check Alcotest.string "greeting" "hello world" (I.to_display_string r));
    t "module import of plain xquery source over http" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        Http_sim.register_doc http ~uri:"http://libs/m.xq"
          ~content_type:"application/xquery"
          "module namespace m = \"urn:m\"; declare function m:twice($x) { 2 * $x };";
        let sctx = Engine.default_static () in
        Xquery.Static_context.set_module_resolver sctx (Web_service.module_resolver http);
        let r =
          Engine.eval_string ~static:sctx
            {|import module namespace m = "urn:m" at "http://libs/m.xq"; m:twice(21)|}
        in
        check Alcotest.string "42" "42" (I.to_display_string r));
    t "missing module fails with XQST0059" (fun () ->
        let sctx = Engine.default_static () in
        match
          Engine.eval_string ~static:sctx
            {|import module namespace z = "urn:z" at "nowhere"; 1|}
        with
        | exception Xq_error.Error e ->
            check Alcotest.string "code" "XQST0059" e.Xq_error.code
        | _ -> Alcotest.fail "expected error");
  ]

let suite = clock_tests @ http_tests @ store_tests @ rest_tests @ ws_tests
