(* The fleet simulator: determinism, admission control/shedding,
   tenancy, budget surfacing, and the differential property that a
   fleet of one session is byte-identical to a hand-driven single
   session built from the same primitives. *)

module AS = Appserver.App_server
module Fleet = Appserver.Fleet
module B = Xqib.Browser

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

(* small worlds: every run_fleet call here uses the tiny 3-article
   archive (run_fleet's defaults) so the suite stays fast *)
let fleet ?(visits = 2) ?(tenants = 1) ?(rate = 0.) ?shed_depth
    ?(service_cost = 0.05) ?(sessions = 20) ?(spread = 2.) ?(think = 1.)
    ?max_tasks ?(capture_docs = false) ~migrated ~seed () =
  Scenarios.run_fleet ~visits ~tenants ~rate ?shed_depth ~service_cost ~spread
    ~think ?max_tasks ~capture_docs ~sessions ~migrated ~seed ()

(* what one fleet session does, hand-driven without the scheduler:
   same world construction, same seeds, same browser configuration *)
let single_session ~migrated ~seed ~rate ~visits =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let e = Scenarios.make_elsevier ~journals:1 ~volumes:1 ~issues:1 ~articles:3 http in
  let host = AS.host e.server in
  AS.set_queue ~service_cost:0.05 e.server;
  if rate > 0. then
    Http_sim.set_faults http ~host ~seed (Http_sim.uniform_faults ~rate);
  let evals0 = AS.evaluations e.server in
  let requests0 = Http_sim.request_count http ~host in
  let b =
    B.create ~cache:false ~clock ~http ~retry:Fleet.default_config.Fleet.retry
      ~seed:(Fleet.session_seed ~seed 0) ()
  in
  let path = if migrated then e.client_page_path else e.browse_page_path in
  let uri = "http://" ^ host ^ path in
  let ok = ref 0 in
  for _ = 1 to visits do
    match Xqib.Page.browse b uri with
    | () ->
        B.run b;
        incr ok
    | exception Xquery.Xq_error.Error _ -> ()
  done;
  ( Dom.serialize (B.document b),
    AS.evaluations e.server - evals0,
    Http_sim.request_count http ~host - requests0,
    !ok )

let differential =
  QCheck.Test.make ~count:15 ~name:"fleet of one == a single hand-driven session"
    QCheck.(
      quad (int_bound 999) (int_bound 2) bool (int_range 1 3))
    (fun (seed, rate_ix, migrated, visits) ->
      let rate = [| 0.; 0.15; 0.3 |].(rate_ix) in
      let r =
        fleet ~sessions:1 ~visits ~rate ~migrated ~seed ~capture_docs:true ()
      in
      let doc, evals, requests, ok = single_session ~migrated ~seed ~rate ~visits in
      let fleet_doc = match r.Fleet.session_docs with [ d ] -> d | _ -> "" in
      if fleet_doc <> doc then
        QCheck.Test.fail_reportf "final documents differ:@.%s@.vs@.%s" fleet_doc doc;
      if r.Fleet.server_evals <> evals then
        QCheck.Test.fail_reportf "evals: fleet %d vs single %d" r.Fleet.server_evals
          evals;
      if r.Fleet.server_requests <> requests then
        QCheck.Test.fail_reportf "requests: fleet %d vs single %d"
          r.Fleet.server_requests requests;
      if r.Fleet.pages_ok <> ok then
        QCheck.Test.fail_reportf "pages ok: fleet %d vs single %d" r.Fleet.pages_ok ok;
      true)

let unit_tests =
  [
    t "equal seeds give identical reports" (fun () ->
        let go () = fleet ~rate:0.2 ~shed_depth:8 ~migrated:false ~seed:11 () in
        let a = go () and b = go () in
        check Alcotest.bool "deterministic" true (a = b);
        let c = fleet ~rate:0.2 ~shed_depth:8 ~migrated:false ~seed:12 () in
        check Alcotest.bool "a different seed is a valid run" true
          (c.Fleet.pages_ok + c.Fleet.pages_shed + c.Fleet.pages_lost
          = c.Fleet.sessions * c.Fleet.visits));
    t "every visit is accounted for" (fun () ->
        let r = fleet ~rate:0.3 ~migrated:true ~seed:5 () in
        check Alcotest.int "ok + shed + lost = visits"
          (r.Fleet.sessions * r.Fleet.visits)
          (r.Fleet.pages_ok + r.Fleet.pages_shed + r.Fleet.pages_lost));
    t "shedding bounds the queue depth at the threshold" (fun () ->
        (* a burst (tiny spread) of expensive requests against a small
           admission threshold: the server sheds rather than queue *)
        let r =
          fleet ~sessions:30 ~spread:0.01 ~service_cost:0.5 ~shed_depth:4
            ~migrated:false ~seed:3 ()
        in
        check Alcotest.bool "load was shed" true (r.Fleet.sheds > 0);
        check Alcotest.bool "depth never exceeds the threshold" true
          (r.Fleet.max_queue_depth <= 4));
    t "migration flattens the latency curve under load" (fun () ->
        let server = fleet ~sessions:40 ~spread:1. ~migrated:false ~seed:7 () in
        let migrated = fleet ~sessions:40 ~spread:1. ~migrated:true ~seed:7 () in
        check Alcotest.bool "server-rendered queues up" true
          (server.Fleet.p99 > migrated.Fleet.p99);
        check Alcotest.int "migrated server does no evaluation" 0
          migrated.Fleet.server_evals);
    t "tenants compile into their own partitions" (fun () ->
        let r = fleet ~sessions:6 ~tenants:3 ~migrated:false ~seed:9 () in
        check Alcotest.int "one lazy compile per non-zero tenant" 2
          r.Fleet.tenant_compiles;
        check Alcotest.int "no page lost to tenant routing"
          (r.Fleet.sessions * r.Fleet.visits) r.Fleet.pages_ok);
    t "an exhausted task budget raises instead of truncating" (fun () ->
        match fleet ~sessions:5 ~max_tasks:3 ~migrated:true ~seed:1 () with
        | exception Virtual_clock.Budget_exhausted _ -> ()
        | _ -> Alcotest.fail "expected Budget_exhausted");
  ]

let suite = unit_tests @ [ QCheck_alcotest.to_alcotest differential ]
