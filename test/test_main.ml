let () =
  Alcotest.run "xqib"
    [
      ("xmlb", Test_xmlb.suite);
      ("dom", Test_dom.suite);
      ("dom-order", Test_dom_order.suite);
      ("xdm", Test_xdm.suite);
      ("xquery-lang", Test_xquery_lang.suite);
      ("functions", Test_functions.suite);
      ("conformance-strings", Test_conformance_strings.suite);
      ("update", Test_update.suite);
      ("scripting", Test_scripting.suite);
      ("properties", Test_properties.suite);
      ("interning", Test_interning.suite);
      ("optimizer", Test_optimizer.suite);
      ("streaming", Test_streaming.suite);
      ("joins", Test_joins.suite);
      ("query-cache", Test_query_cache.suite);
      ("reactive", Test_reactive.suite);
      ("compile", Test_compile.suite);
      ("net", Test_net.suite);
      ("faults", Test_faults.suite);
      ("browser", Test_browser.suite);
      ("windows", Test_windows.suite);
      ("renderer", Test_renderer.suite);
      ("minijs", Test_minijs.suite);
      ("appserver", Test_appserver.suite);
      ("fleet", Test_fleet.suite);
      ("integration", Test_integration.suite);
      ("usecases", Test_usecases.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("obs", Test_obs.suite);
      ("misc", Test_misc.suite);
    ]
