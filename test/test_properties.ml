(* Property-based tests (qcheck): invariants of the XML layer, the DOM,
   the atomic type system, and parse/print round trips. *)

open Xmlb
module A = Xdm_atomic
module Q = QCheck

let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

(* ---------- generators ---------- *)

let name_gen =
  Q.Gen.(
    let letter = map (fun i -> Char.chr (Char.code 'a' + i)) (int_bound 25) in
    map (fun cs -> String.concat "" (List.map (String.make 1) cs)) (list_size (int_range 1 8) letter))

let text_gen =
  Q.Gen.(
    let ch =
      frequency
        [
          (20, map (fun i -> Char.chr (Char.code 'a' + i)) (int_bound 25));
          (3, return ' ');
          (1, oneofl [ '<'; '>'; '&'; '\''; '"' ]);
        ]
    in
    map (fun cs -> String.concat "" (List.map (String.make 1) cs)) (list_size (int_range 1 20) ch))

(* random XML tree *)
let rec tree_gen depth =
  Q.Gen.(
    if depth <= 0 then map (fun t -> Xml_parser.Text t) text_gen
    else
      frequency
        [
          (2, map (fun t -> Xml_parser.Text t) text_gen);
          ( 3,
            map3
              (fun name attrs children ->
                let attrs =
                  List.mapi
                    (fun i (n, v) ->
                      { Xml_parser.name = Qname.make (n ^ string_of_int i); value = v })
                    attrs
                in
                Xml_parser.Element (Qname.make name, attrs, children))
              name_gen
              (list_size (int_bound 3) (pair name_gen text_gen))
              (list_size (int_bound 3) (tree_gen (depth - 1))) );
        ])

let element_gen =
  Q.Gen.(
    map3
      (fun name attrs children ->
        let attrs =
          List.mapi
            (fun i (n, v) -> { Xml_parser.name = Qname.make (n ^ string_of_int i); value = v })
            attrs
        in
        Xml_parser.Element (Qname.make name, attrs, children))
      name_gen
      (list_size (int_bound 3) (pair name_gen text_gen))
      (list_size (int_bound 4) (tree_gen 2)))

let tree_arbitrary =
  Q.make ~print:(fun t -> Xml_serializer.to_string t) element_gen

(* merge adjacent text nodes: parsing cannot distinguish "a"+"b" from "ab" *)
let rec normalize_tree = function
  | Xml_parser.Element (n, attrs, children) ->
      let rec merge = function
        | Xml_parser.Text a :: Xml_parser.Text b :: rest ->
            merge (Xml_parser.Text (a ^ b) :: rest)
        | x :: rest -> normalize_tree x :: merge rest
        | [] -> []
      in
      Xml_parser.Element (n, attrs, merge children)
  | t -> t

let properties_xml =
  [
    qt "serialize/parse round trip" tree_arbitrary (fun tree ->
        let s = Xml_serializer.to_string tree in
        let reparsed = Xml_parser.parse_root s in
        normalize_tree reparsed = normalize_tree tree);
    qt "escape/unescape identity" (Q.make Q.Gen.(string_size (int_bound 40)))
      (fun s ->
        (* arbitrary bytes are not valid XML text; restrict to ascii *)
        let s = String.map (fun c -> if Char.code c < 32 then ' ' else c) s in
        Xml_escape.unescape (Xml_escape.text s) = s);
    qt "attribute escape round trip" (Q.make text_gen) (fun s ->
        Xml_escape.unescape (Xml_escape.attribute s) = s);
  ]

let properties_dom =
  let doc_of tree = Dom.of_tree [ tree ] in
  [
    qt "clone preserves serialization" tree_arbitrary (fun tree ->
        let d = doc_of tree in
        Dom.serialize d = Dom.serialize (Dom.clone d));
    qt "document order is a total order on descendants" tree_arbitrary
      (fun tree ->
        let d = doc_of tree in
        let ns = Dom.descendants d in
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                let ab = Dom.compare_order a b and ba = Dom.compare_order b a in
                (ab = 0) = (ba = 0) && (ab < 0) = (ba > 0))
              ns)
          ns);
    qt "descendants are sorted by compare_order" tree_arbitrary (fun tree ->
        let d = doc_of tree in
        let rec sorted = function
          | a :: (b :: _ as rest) -> Dom.compare_order a b < 0 && sorted rest
          | _ -> true
        in
        sorted (Dom.descendants d));
    qt "string_value equals concatenated text descendants" tree_arbitrary
      (fun tree ->
        let d = doc_of tree in
        let texts =
          List.filter_map
            (fun n -> if Dom.kind n = Dom.Text then Dom.value n else None)
            (Dom.descendants d)
        in
        Dom.string_value d = String.concat "" texts);
    qt "remove detaches every child" tree_arbitrary (fun tree ->
        let d = doc_of tree in
        let root = List.hd (Dom.children d) in
        List.iter Dom.remove (Dom.children root);
        Dom.children root = []);
  ]

let int_gen = Q.Gen.int_range (-1000000) 1000000

let properties_atomic =
  [
    qt "integer cast round trips through string" (Q.make int_gen) (fun i ->
        A.cast ~target:A.T_integer (A.String (A.to_string (A.Integer i))) = A.Integer i);
    qt "compare_value is antisymmetric on integers"
      (Q.make Q.Gen.(pair int_gen int_gen))
      (fun (a, b) ->
        let c1 = A.compare_value (A.Integer a) (A.Integer b) in
        let c2 = A.compare_value (A.Integer b) (A.Integer a) in
        (c1 > 0) = (c2 < 0) && (c1 = 0) = (c2 = 0));
    qt "add/subtract inverse on integers"
      (Q.make Q.Gen.(pair int_gen int_gen))
      (fun (a, b) ->
        A.subtract (A.add (A.Integer a) (A.Integer b)) (A.Integer b) = A.Integer a);
    qt "duration string round trip"
      (Q.make Q.Gen.(pair (int_range (-500) 500) (int_range (-100000) 100000)))
      (fun (months, secs) ->
        (* keep signs consistent: mixed-sign durations do not occur in
           the XDM value space we produce *)
        let months, secs =
          if months >= 0 then (months, abs secs) else (months, -abs secs)
        in
        let d = Xdm_duration.make ~months ~seconds:(float_of_int secs) () in
        Xdm_duration.equal d (Xdm_duration.of_string (Xdm_duration.to_string d)));
    qt "date epoch round trip"
      (Q.make
         Q.Gen.(
           triple (int_range 1900 2100) (int_range 1 12) (int_range 1 28)))
      (fun (y, m, d) ->
        let dt = Xdm_datetime.make ~year:y ~month:m ~day:d ~tz_minutes:0 () in
        let rt = Xdm_datetime.of_epoch_seconds ~tz_minutes:0 (Xdm_datetime.to_epoch_seconds dt) in
        Xdm_datetime.equal dt rt);
    qt "date ordering matches epoch ordering"
      (Q.make
         Q.Gen.(
           pair
             (triple (int_range 1950 2050) (int_range 1 12) (int_range 1 28))
             (triple (int_range 1950 2050) (int_range 1 12) (int_range 1 28))))
      (fun ((y1, m1, d1), (y2, m2, d2)) ->
        let a = Xdm_datetime.make ~year:y1 ~month:m1 ~day:d1 () in
        let b = Xdm_datetime.make ~year:y2 ~month:m2 ~day:d2 () in
        compare
          (Xdm_datetime.to_epoch_seconds a)
          (Xdm_datetime.to_epoch_seconds b)
        = Xdm_datetime.compare a b);
  ]

(* ---------- XQuery printer round trips ---------- *)

let roundtrip_sources =
  [
    "1 + 2 * 3";
    "(1, 2, 3)[2]";
    "for $x at $i in (1 to 5) where $x mod 2 = 0 order by $x descending return $x + $i";
    "let $d := <a x=\"1\"><b>t</b></a> return $d//b[1]/text()";
    "some $x in (1,2) satisfies $x eq 2";
    "every $x in (1,2) satisfies $x le 2";
    "typeswitch (5) case $i as xs:integer return $i default return 0";
    "if (1 < 2) then 'y' else 'n'";
    "<r a=\"{1+1}\">x{2}</r>";
    "element foo { attribute a { 1 }, 'txt' }";
    "'42' cast as xs:integer";
    "5 castable as xs:double?";
    "(1,2) instance of xs:integer+";
    "let $d := <x/> return (insert node <a/> into $d, $d)";
    "let $d := <x><a/></x> return (delete node $d/a, $d)";
    "let $d := <v>o</v> return (replace value of node $d with 'n', string($d))";
    "let $d := <v/> return (rename node $d as 'w', name($d))";
    "copy $c := <a><b/></a> modify delete node $c/b return count($c/*)";
    "{ declare variable $x := 1; set $x := $x + 1; $x }";
    "'dog cat' ftcontains ('dog' with stemming) ftand 'cat'";
    "-(3) + +4";
    "(<a/>, <b/>) | <c/>";
    "count((1 to 10)[. mod 2 = 0])";
    "concat('a', 'b', 'c')";
    "declare function local:f($x as xs:integer) as xs:integer { $x * 2 }; local:f(21)";
    "declare variable $g := 10; $g + 1";
  ]

let printer_tests =
  let t name f = Alcotest.test_case name `Quick f in
  List.mapi
    (fun i src ->
      t (Printf.sprintf "print/parse round trip %d" i) (fun () ->
          let v1 =
            Xdm_item.to_display_string (Xquery.Engine.eval_string src)
          in
          let sctx = Xquery.Engine.default_static () in
          let prog = Xquery.Parser.parse_program sctx src in
          let printed = Xquery.Ast_printer.program_to_source prog in
          let v2 =
            try Xdm_item.to_display_string (Xquery.Engine.eval_string printed)
            with Xquery.Xq_error.Error e ->
              Alcotest.failf "reprinted source failed: %s\n--- printed ---\n%s"
                (Xquery.Xq_error.to_string e) printed
          in
          Alcotest.(check string) ("round trip of " ^ src) v1 v2))
    roundtrip_sources

(* ---------- random-expression optimizer equivalence ---------- *)

(* generate small pure XQuery expressions as source text *)
let rec expr_gen depth =
  Q.Gen.(
    if depth <= 0 then
      oneof
        [
          map string_of_int (int_range (-20) 20);
          oneofl [ "1.5"; "0"; "2"; "'a'"; "'xyz'"; "true()"; "false()"; "()" ];
        ]
    else
      frequency
        [
          (2, expr_gen 0);
          ( 2,
            map2
              (fun op (a, b) -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "+"; "-"; "*" ])
              (pair (expr_gen (depth - 1)) (expr_gen (depth - 1))) );
          ( 1,
            map2
              (fun op (a, b) -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "="; "!="; "<"; "<=" ])
              (pair (expr_gen 0) (expr_gen 0)) );
          ( 1,
            map3
              (fun c a b -> Printf.sprintf "(if (%s) then %s else %s)" c a b)
              (expr_gen 0) (expr_gen (depth - 1)) (expr_gen (depth - 1)) );
          ( 1,
            map2
              (fun a b -> Printf.sprintf "(count((%s, %s)) > 0)" a b)
              (expr_gen 0) (expr_gen 0) );
          ( 1,
            map
              (fun a -> Printf.sprintf "(for $v in (1 to 3) return (%s))" a)
              (expr_gen (depth - 1)) );
          (1, map (fun a -> Printf.sprintf "count(//item[%s])" a) (expr_gen 0));
        ])

let doc_for_props =
  "<root><item a='1'>x</item><item a='2'>y</item><item>z</item></root>"

let eval_against_doc ~optimize src =
  let node = Xdm_item.Node (Dom.of_string doc_for_props) in
  match
    Xdm_item.to_display_string
      (Xquery.Engine.eval_string ~optimize ~context_item:node src)
  with
  | v -> Ok v
  | exception Xquery.Xq_error.Error e -> Error e.Xquery.Xq_error.code

let optimizer_properties =
  [
    qt ~count:300 "optimizer preserves semantics on random expressions"
      (Q.make ~print:Fun.id (expr_gen 3))
      (fun src ->
        match (eval_against_doc ~optimize:false src, eval_against_doc ~optimize:true src) with
        | Ok a, Ok b -> a = b
        | Error a, Error b -> a = b
        | _ -> false);
    qt ~count:200 "parse/print/parse is stable on random expressions"
      (Q.make ~print:Fun.id (expr_gen 3))
      (fun src ->
        let sctx = Xquery.Engine.default_static () in
        let ast = Xquery.Parser.parse_expression sctx src in
        let printed = Xquery.Ast_printer.expr_to_source ast in
        match eval_against_doc ~optimize:false printed with
        | r -> r = eval_against_doc ~optimize:false src
        | exception _ -> false);
  ]

(* ---------- fuzz: parsers fail only with their declared errors ---------- *)

let printable_gen =
  Q.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_bound 60)
         (frequency
            [
              (10, map (fun i -> Char.chr (32 + i)) (int_bound 94));
              ( 5,
                oneofl
                  [ '<'; '>'; '{'; '}'; '('; ')'; '$'; '"'; '\''; '/'; '@'; ':'; ';' ]
              );
            ])))

(* bias the fuzz toward near-XQuery shapes *)
let xqueryish_gen =
  Q.Gen.(
    frequency
      [
        (3, printable_gen);
        ( 2,
          map2
            (fun a b -> a ^ " " ^ b)
            (oneofl
               [
                 "for $x in"; "let $y :="; "if ("; "insert node"; "<a>"; "</a>";
                 "declare function"; "on event"; "typeswitch ("; "1 +"; "count(";
               ])
            printable_gen );
      ])

let fuzz_properties =
  [
    qt ~count:500 "XQuery parser only raises Xq_error on garbage"
      (Q.make ~print:Fun.id xqueryish_gen)
      (fun src ->
        match
          Xquery.Parser.parse_program (Xquery.Engine.default_static ()) src
        with
        | _ -> true
        | exception Xquery.Xq_error.Error _ -> true
        | exception _ -> false);
    qt ~count:500 "XML parser only raises Parse_error on garbage"
      (Q.make ~print:Fun.id printable_gen)
      (fun src ->
        match Xml_parser.parse src with
        | _ -> true
        | exception Xml_parser.Parse_error _ -> true
        | exception _ -> false);
    qt ~count:300 "JS parser only raises Js_syntax_error on garbage"
      (Q.make ~print:Fun.id printable_gen)
      (fun src ->
        match Minijs.Js_parser.parse_program src with
        | _ -> true
        | exception Minijs.Js_lexer.Js_syntax_error _ -> true
        | exception _ -> false);
  ]

(* ---------- retry / fault model ---------- *)

(* With fault probability p < 1 and enough attempts, a retried fetch
   eventually succeeds, and its elapsed virtual time is bounded by the
   closed form: one latency per attempt plus the jittered backoff sum
   (Retry.backoff_total). *)
let retry_properties =
  let policy =
    {
      Retry.default with
      Retry.max_attempts = 2000;
      backoff_base = 0.01;
      backoff_factor = 2.;
      backoff_max = 0.5;
      jitter = 0.2;
    }
  in
  let base = 0.05 in
  let gen =
    Q.make
      ~print:(fun (p, seed) -> Printf.sprintf "p=%.3f seed=%d" p seed)
      Q.Gen.(pair (float_bound_exclusive 0.95) (int_bound 100000))
  in
  [
    qt ~count:100 "retry terminates with success and bounded virtual time" gen
      (fun (p, seed) ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create ~latency:{ Http_sim.base; per_kb = 0. } clock in
        Http_sim.register_doc http ~uri:"http://h/x.xml" "<x/>";
        Http_sim.set_faults http ~seed
          { Http_sim.no_faults with Http_sim.drop = p /. 2.; http_5xx = p /. 2. };
        let stats = Retry.make_stats () in
        let prng = Prng.create ~seed:(seed + 1) in
        let r = Retry.fetch ~policy ~prng ~stats http "http://h/x.xml" in
        let bound =
          (float_of_int stats.Retry.attempts *. base)
          +. Retry.backoff_total policy ~attempts:stats.Retry.attempts
          +. 1e-6
        in
        r.Http_sim.status = 200 && Virtual_clock.now clock <= bound);
  ]

let suite =
  properties_xml @ properties_dom @ properties_atomic @ printer_tests
  @ optimizer_properties @ fuzz_properties @ retry_properties
