(* The observability layer: span trees, the metrics registry, the JSON
   export/validator pair, the zero-record-when-disabled contract, and
   the browser:stats() surface. *)

let check = Alcotest.check

(* every test runs against clean, known-state registries and leaves the
   global flags off for the rest of the suite *)
let t name f =
  Alcotest.test_case name `Quick (fun () ->
      Obs.Trace.reset ();
      Obs.Metrics.reset ();
      Obs.Trace.set_clock (fun () -> 0.);
      Fun.protect
        ~finally:(fun () ->
          Obs.Trace.set_enabled false;
          Obs.Metrics.set_enabled false;
          Obs.Trace.set_capacity 1024;
          Obs.Trace.reset ();
          Obs.Metrics.reset ())
        f)

let trace_tests =
  [
    t "nested spans build a tree" (fun () ->
        Obs.Trace.set_enabled true;
        Obs.Trace.with_span "outer" (fun () ->
            Obs.Trace.with_span "inner-1" (fun () -> ());
            Obs.Trace.with_span "inner-2" (fun () ->
                Obs.Trace.add_attr "k" "v"));
        match Obs.Trace.roots () with
        | [ root ] ->
            check Alcotest.(list string) "preorder names"
              [ "outer"; "inner-1"; "inner-2" ]
              (Obs.Span.names root);
            check Alcotest.int "span count" 3 (Obs.Span.count root);
            let inner2 = Option.get (Obs.Span.find ~name:"inner-2" root) in
            check Alcotest.(list (pair string string)) "attrs" [ ("k", "v") ]
              inner2.Obs.Span.attrs
        | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots));
    t "a raising thunk still closes its span" (fun () ->
        Obs.Trace.set_enabled true;
        (try Obs.Trace.with_span "boom" (fun () -> failwith "expected")
         with Failure _ -> ());
        match Obs.Trace.roots () with
        | [ root ] ->
            check Alcotest.string "name" "boom" root.Obs.Span.name;
            check Alcotest.bool "error attr" true
              (List.mem_assoc "error" root.Obs.Span.attrs)
        | _ -> Alcotest.fail "span was lost on exception");
    t "ring buffer drops oldest roots" (fun () ->
        Obs.Trace.set_enabled true;
        Obs.Trace.set_capacity 2;
        List.iter
          (fun name -> Obs.Trace.with_span name (fun () -> ()))
          [ "a"; "b"; "c" ];
        check Alcotest.(list string) "survivors" [ "b"; "c" ]
          (List.map (fun s -> s.Obs.Span.name) (Obs.Trace.roots ()));
        check Alcotest.int "dropped" 1 (Obs.Trace.dropped ()));
    t "export is valid JSON" (fun () ->
        Obs.Trace.set_enabled true;
        Obs.Trace.with_span
          ~attrs:[ ("quote", "a\"b\\c"); ("ctl", "x\n\ty") ]
          "tricky attrs"
          (fun () -> Obs.Trace.with_span "child" (fun () -> ()));
        let json = Obs.Trace.export_json () in
        match Obs.Json.validate json with
        | Ok () -> ()
        | Error m -> Alcotest.failf "export not valid JSON: %s\n%s" m json);
    t "disabled tracing records nothing" (fun () ->
        Obs.Trace.with_span "ghost" (fun () ->
            Obs.Trace.add_attr "k" "v");
        check Alcotest.int "no roots" 0 (List.length (Obs.Trace.roots ())));
  ]

let metrics_tests =
  [
    t "counters accumulate and sort" (fun () ->
        Obs.Metrics.set_enabled true;
        Obs.Metrics.incr "b.two";
        Obs.Metrics.incr ~by:41 "a.one";
        Obs.Metrics.incr "a.one";
        check
          Alcotest.(list (pair string int))
          "registry"
          [ ("a.one", 42); ("b.two", 1) ]
          (Obs.Metrics.counters ()));
    t "histograms summarize observations" (fun () ->
        Obs.Metrics.set_enabled true;
        List.iter (Obs.Metrics.observe "lat") [ 0.5; 1.5; 0.25 ];
        match Obs.Metrics.histograms () with
        | [ ("lat", h) ] ->
            check Alcotest.int "count" 3 h.Obs.Metrics.count;
            check (Alcotest.float 1e-9) "sum" 2.25 h.Obs.Metrics.sum;
            check (Alcotest.float 1e-9) "min" 0.25 h.Obs.Metrics.min;
            check (Alcotest.float 1e-9) "max" 1.5 h.Obs.Metrics.max
        | _ -> Alcotest.fail "expected exactly the 'lat' histogram");
    t "disabled metrics record nothing" (fun () ->
        Obs.Metrics.incr "ghost";
        Obs.Metrics.observe "ghost_h" 1.;
        check Alcotest.int "no counters" 0 (List.length (Obs.Metrics.counters ()));
        check Alcotest.int "no histograms" 0
          (List.length (Obs.Metrics.histograms ())));
    t "metrics export is valid JSON" (fun () ->
        Obs.Metrics.set_enabled true;
        Obs.Metrics.incr "a\"b";
        Obs.Metrics.observe "h" 0.125;
        match Obs.Json.validate (Obs.Metrics.to_json ()) with
        | Ok () -> ()
        | Error m -> Alcotest.failf "not valid JSON: %s" m);
  ]

let json_tests =
  [
    t "validator accepts documents" (fun () ->
        List.iter
          (fun s ->
            match Obs.Json.validate s with
            | Ok () -> ()
            | Error m -> Alcotest.failf "rejected %s: %s" s m)
          [
            "{}"; "[]"; "null"; "true"; "-1.5e3"; "\"a\\u00e9\"";
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"d\"}";
          ]);
    t "validator rejects malformed documents" (fun () ->
        List.iter
          (fun s ->
            match Obs.Json.validate s with
            | Ok () -> Alcotest.failf "accepted malformed %s" s
            | Error _ -> ())
          [
            ""; "{"; "[1,]"; "{\"a\" 1}"; "\"unterminated"; "01"; "nul";
            "{} trailing"; "\"bad\\q\"";
          ]);
  ]

(* ---------- the engine actually reports through the layer ---------- *)

let integration_tests =
  [
    t "a traced page run covers the pipeline" (fun () ->
        Obs.Trace.set_enabled true;
        Obs.Metrics.set_enabled true;
        let b = Xqib.Browser.create () in
        Xqib.Browser.connect_obs b;
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:main() {
              insert node <p>hi</p> into //body
            };
            </script></head><body/></html>|};
        Xqib.Browser.run b;
        ignore (Xqib.Renderer.render (Xqib.Browser.document b));
        let names =
          List.concat_map Obs.Span.names (Obs.Trace.roots ())
        in
        List.iter
          (fun expected ->
            check Alcotest.bool expected true (List.mem expected names))
          [
            "page.load"; "page.parse-html"; "page.script"; "engine.compile";
            "engine.parse"; "engine.eval"; "pul.apply"; "render";
          ];
        check Alcotest.bool "counted steps" true
          (Obs.Metrics.counter "eval.steps" > 0);
        check Alcotest.bool "counted a PUL insert" true
          (Obs.Metrics.counter "pul.prim.insert-into" > 0));
    t "browser:stats() exposes the registry as XML" (fun () ->
        Obs.Metrics.set_enabled true;
        let b = Xqib.Browser.create () in
        Xqib.Page.load b "<html><body><i/></body></html>";
        ignore (Xqib.Page.run_xquery b b.Xqib.Browser.top_window "count(//i)");
        let got src =
          Xdm_item.to_display_string
            (Xqib.Page.run_xquery b b.Xqib.Browser.top_window src)
        in
        check Alcotest.string "enabled flag" "true"
          (got "string(browser:stats()/@metrics-enabled)");
        check Alcotest.string "steps counter present" "true"
          (got
             "exists(browser:stats()//counter[@name = 'eval.steps'][number(@value) ge 1])"));
    t "disabled engine run records nothing" (fun () ->
        ignore (Xquery.Engine.eval_string "count((1, 2, 3))");
        check Alcotest.int "no counters" 0 (List.length (Obs.Metrics.counters ()));
        check Alcotest.int "no spans" 0 (List.length (Obs.Trace.roots ())));
  ]

let suite = trace_tests @ metrics_tests @ json_tests @ integration_tests
