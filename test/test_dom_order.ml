(* The DOM acceleration layer (order keys, id/name indexes,
   sortedness-aware document_order) must be observationally identical
   to the naive implementations — after arbitrary mutation sequences,
   with caches built and invalidated mid-sequence. *)

open Xmlb
module Q = QCheck
module I = Xdm_item

let qt ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

let with_acceleration b f =
  let prev = Dom.acceleration_enabled () in
  Dom.set_acceleration b;
  Fun.protect ~finally:(fun () -> Dom.set_acceleration prev) f

let sign c = compare c 0

(* ---------- generators ---------- *)

let names = [| "a"; "b"; "item"; "div"; "sec" |]

let rec tree_gen depth =
  Q.Gen.(
    if depth <= 0 then map (fun i -> Xml_parser.Text (Printf.sprintf "t%d" i)) (int_bound 9)
    else
      frequency
        [
          (1, map (fun i -> Xml_parser.Text (Printf.sprintf "t%d" i)) (int_bound 9));
          ( 3,
            map3
              (fun ni with_id children ->
                let attrs =
                  if with_id mod 3 = 0 then
                    [
                      {
                        Xml_parser.name = Qname.make "id";
                        value = Printf.sprintf "id%d" (with_id mod 7);
                      };
                    ]
                  else []
                in
                Xml_parser.Element
                  (Qname.make names.(ni mod Array.length names), attrs, children))
              (int_bound 9) (int_bound 9)
              (list_size (int_bound 3) (tree_gen (depth - 1))) );
        ])

let ops_gen =
  Q.Gen.(list_size (int_range 1 25) (triple (int_bound 1000) (int_bound 1000) (int_bound 1000)))

let scenario_gen = Q.Gen.pair (tree_gen 3) ops_gen

let scenario_arbitrary =
  Q.make
    ~print:(fun (t, ops) ->
      Printf.sprintf "%s with %d ops" (Xml_serializer.to_string t) (List.length ops))
    scenario_gen

(* ---------- mutation driver ---------- *)

let pick l i = List.nth l (i mod List.length l)

let apply_op doc (sel, p, aux) =
  let all = doc :: Dom.descendants doc in
  let target = pick all p in
  let nonroot = Dom.descendants doc in
  try
    match sel mod 8 with
    | 0 ->
        Dom.append_child ~parent:target
          (Dom.create_element (Qname.make names.(aux mod Array.length names)))
    | 1 -> if nonroot <> [] then Dom.remove (pick nonroot aux)
    | 2 ->
        if nonroot <> [] then
          Dom.insert_before ~sibling:(pick nonroot aux) (Dom.create_text "ins")
    | 3 ->
        Dom.set_attribute target (Qname.make "id") (Printf.sprintf "id%d" (aux mod 7))
    | 4 -> Dom.rename target (Qname.make names.(aux mod Array.length names))
    | 5 -> Dom.set_value target (Printf.sprintf "v%d" aux)
    | 6 ->
        (* move a subtree to a new parent, guarding against cycles *)
        if nonroot <> [] then begin
          let n = pick nonroot aux in
          let dst = pick all (p + aux) in
          if (not (Dom.equal n dst)) && not (Dom.is_ancestor ~ancestor:n dst) then
            Dom.append_child ~parent:dst n
        end
    | _ -> Dom.remove_attribute target (Qname.make "id")
  with Dom.Dom_error _ -> ()

(* Build the document, then interleave mutations with accelerated
   queries so caches are built and invalidated repeatedly along the
   way. Returns the mutated document. *)
let run_scenario (tree, ops) =
  let doc = Dom.of_tree [ tree ] in
  List.iter
    (fun op ->
      apply_op doc op;
      (* probe: force cache (re)builds between mutations *)
      let ds = Dom.descendants doc in
      (match ds with n :: _ -> ignore (Dom.compare_order doc n) | [] -> ());
      ignore (Dom.get_element_by_id doc "id1");
      ignore (Dom.get_elements_by_local_name doc "item"))
    ops;
  doc

(* naive full-scan oracles, independent of the Dom implementations *)
let scan_by_id doc idv =
  List.find_opt
    (fun c ->
      Dom.kind c = Dom.Element
      && match Dom.attribute_local c "id" with
         | Some v -> String.equal v idv
         | None -> false)
    (Dom.descendants doc)

let scan_by_name top local =
  let candidates =
    match Dom.kind top with
    | Dom.Element -> top :: Dom.descendants top
    | _ -> Dom.descendants top
  in
  List.filter
    (fun c ->
      Dom.kind c = Dom.Element
      && match Dom.name c with
         | Some q -> String.equal q.Qname.local local
         | None -> false)
    candidates

let node_list_equal a b =
  List.length a = List.length b && List.for_all2 Dom.equal a b

(* ---------- properties ---------- *)

let prop_keyed_compare_agrees scenario =
  with_acceleration true (fun () ->
      let doc = run_scenario scenario in
      let ns = doc :: Dom.descendants doc in
      let ns = ns @ List.concat_map Dom.attributes ns in
      (* cap the O(n^2) pair check *)
      let ns = List.filteri (fun i _ -> i < 30) ns in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              sign (Dom.compare_order a b) = sign (Dom.compare_order_naive a b))
            ns)
        ns)

let prop_index_agrees_with_scan scenario =
  with_acceleration true (fun () ->
      let doc = run_scenario scenario in
      let ids = List.init 7 (Printf.sprintf "id%d") in
      let by_id_ok =
        List.for_all
          (fun idv ->
            match (Dom.get_element_by_id doc idv, scan_by_id doc idv) with
            | None, None -> true
            | Some a, Some b -> Dom.equal a b
            | _ -> false)
          ids
      in
      let tops =
        doc
        :: List.filteri
             (fun i c -> i < 5 && Dom.kind c = Dom.Element)
             (Dom.descendants doc)
      in
      let by_name_ok =
        List.for_all
          (fun top ->
            Array.for_all
              (fun local ->
                node_list_equal
                  (Dom.get_elements_by_local_name top local)
                  (scan_by_name top local))
              names)
          tops
      in
      by_id_ok && by_name_ok)

let prop_document_order_ablation scenario =
  let doc = with_acceleration true (fun () -> run_scenario scenario) in
  let ds = Dom.descendants doc in
  let inputs =
    [
      I.of_nodes ds;
      I.of_nodes (List.rev ds);
      (* duplicates and interleaving *)
      I.of_nodes (List.rev ds @ List.filteri (fun i _ -> i mod 2 = 0) ds);
    ]
  in
  List.for_all
    (fun input ->
      let fast = with_acceleration true (fun () -> I.document_order input) in
      let naive = with_acceleration false (fun () -> I.document_order input) in
      node_list_equal
        (List.map (function I.Node n -> n | _ -> assert false) fast)
        (List.map (function I.Node n -> n | _ -> assert false) naive))
    inputs

let prop_axes_ablation scenario =
  let doc = with_acceleration true (fun () -> run_scenario scenario) in
  let run src =
    I.to_display_string
      (Xquery.Engine.eval_string ~context_item:(I.Node doc) src)
  in
  let queries =
    [
      "//item/following::*";
      "//item/preceding::*";
      "//a/following::item";
      "count(//sec/preceding::b)";
      "//div//item";
    ]
  in
  List.for_all
    (fun src ->
      let fast = with_acceleration true (fun () -> run src) in
      let naive = with_acceleration false (fun () -> run src) in
      String.equal fast naive)
    queries

(* ---------- deterministic cases ---------- *)

let t name f = Alcotest.test_case name `Quick f

let unit_tests =
  [
    t "order keys follow a node moved between documents" (fun () ->
        with_acceleration true (fun () ->
            let d1 = Dom.of_string "<r><a id='x'/><b/></r>" in
            let d2 = Dom.of_string "<s><c/></s>" in
            (* warm both caches *)
            ignore (Dom.get_element_by_id d1 "x");
            ignore (Dom.compare_order d2 d2);
            let a = Option.get (Dom.get_element_by_id d1 "x") in
            let s = List.hd (Dom.children d2) in
            Dom.append_child ~parent:s a;
            Alcotest.(check bool) "gone from d1" true (Dom.get_element_by_id d1 "x" = None);
            Alcotest.(check bool) "found in d2" true
              (match Dom.get_element_by_id d2 "x" with
              | Some n -> Dom.equal n a
              | None -> false);
            let c = List.hd (Dom.children d2) in
            Alcotest.(check bool) "ordered inside d2" true (Dom.compare_order c a < 0);
            Alcotest.(check int) "keyed matches naive" (sign (Dom.compare_order c a))
              (sign (Dom.compare_order_naive c a))));
    t "detached subtree is its own ordered tree" (fun () ->
        with_acceleration true (fun () ->
            let d = Dom.of_string "<r><a><b/><c/></a></r>" in
            ignore (Dom.compare_order d d);
            let a = List.hd (Dom.children (List.hd (Dom.children d))) in
            Dom.remove a;
            let b = List.nth (Dom.children a) 0 and c = List.nth (Dom.children a) 1 in
            Alcotest.(check bool) "a < b" true (Dom.compare_order a b < 0);
            Alcotest.(check bool) "b < c" true (Dom.compare_order b c < 0)));
    t "document_order still dedups under acceleration" (fun () ->
        with_acceleration true (fun () ->
            let d = Dom.of_string "<r><a/></r>" in
            let a = List.hd (Dom.children (List.hd (Dom.children d))) in
            let out = I.document_order [ I.Node a; I.Node a ] in
            Alcotest.(check int) "deduped" 1 (List.length out)));
    t "id index tracks attribute updates" (fun () ->
        with_acceleration true (fun () ->
            let d = Dom.of_string "<r><a/><b/></r>" in
            let r = List.hd (Dom.children d) in
            let a = List.nth (Dom.children r) 0 in
            Alcotest.(check bool) "absent" true (Dom.get_element_by_id d "k" = None);
            Dom.set_attribute a (Qname.make "id") "k";
            Alcotest.(check bool) "present" true
              (match Dom.get_element_by_id d "k" with
              | Some n -> Dom.equal n a
              | None -> false);
            Dom.remove_attribute a (Qname.make "id");
            Alcotest.(check bool) "absent again" true
              (Dom.get_element_by_id d "k" = None)));
    t "name index tracks renames" (fun () ->
        with_acceleration true (fun () ->
            let d = Dom.of_string "<r><a/></r>" in
            let r = List.hd (Dom.children d) in
            let a = List.hd (Dom.children r) in
            Alcotest.(check int) "one a" 1
              (List.length (Dom.get_elements_by_local_name d "a"));
            Dom.rename a (Qname.make "z");
            Alcotest.(check int) "no a" 0
              (List.length (Dom.get_elements_by_local_name d "a"));
            Alcotest.(check int) "one z" 1
              (List.length (Dom.get_elements_by_local_name d "z"))));
    t "subtree-scoped name lookup" (fun () ->
        with_acceleration true (fun () ->
            let d = Dom.of_string "<r><s><x/></s><s><x/><x/></s></r>" in
            let r = List.hd (Dom.children d) in
            let s2 = List.nth (Dom.children r) 1 in
            Alcotest.(check int) "whole doc" 3
              (List.length (Dom.get_elements_by_local_name d "x"));
            Alcotest.(check int) "second sec" 2
              (List.length (Dom.get_elements_by_local_name s2 "x"))));
  ]

let suite =
  unit_tests
  @ [
      qt "keyed compare_order agrees with naive after random mutations"
        scenario_arbitrary prop_keyed_compare_agrees;
      qt "index lookups agree with full scans after random mutations"
        scenario_arbitrary prop_index_agrees_with_scan;
      qt "document_order identical with acceleration on and off"
        scenario_arbitrary prop_document_order_ablation;
      qt ~count:60 "axis queries identical with acceleration on and off"
        scenario_arbitrary prop_axes_ablation;
    ]
