(* Code-point conformance of the string builtins on multi-byte UTF-8,
   plus the PUL conflict-survival contract.

   fn:string-length has always counted code points; this suite pins the
   positional functions (substring, translate, upper/lower-case) to the
   same unit so they agree with it on non-ASCII input. *)

open Xquery
module I = Xdm_item
module Q = QCheck

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let run_str src = I.to_display_string (Engine.eval_string src)
let eq name expected src = t name (fun () -> check Alcotest.string src expected (run_str src))

let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

(* ---------- unit cases: multi-byte positional semantics ---------- *)

let substring_tests =
  [
    (* the PR's acceptance example: é is 2 bytes, 1 code point *)
    eq "substring over multi-byte" "\xc3\xa9ll" "substring('h\xc3\xa9llo', 2, 3)";
    eq "substring from multi-byte offset" "llo" "substring('h\xc3\xa9llo', 3)";
    eq "substring length of euro" "1" "string-length(substring('a\xe2\x82\xacb', 2, 1))";
    eq "substring picks the euro" "\xe2\x82\xac" "substring('a\xe2\x82\xacb', 2, 1)";
    (* 4-byte (astral) code points count as one position too *)
    eq "substring over astral plane" "\xf0\x9f\x98\x80b"
      "substring('a\xf0\x9f\x98\x80b', 2, 2)";
    eq "substring agrees with string-length" "true"
      "let $s := 'h\xc3\xa9ll\xc3\xb6' return substring($s, 1, string-length($s)) = $s";
  ]

let translate_case_tests =
  [
    eq "translate multi-byte map" "hello" "translate('h\xc3\xa9llo', '\xc3\xa9', 'e')";
    eq "translate multi-byte removal" "hllo" "translate('h\xc3\xa9llo', '\xc3\xa9', '')";
    eq "translate into multi-byte" "h\xc3\xa9llo" "translate('hello', 'e', '\xc3\xa9')";
    eq "translate first mapping wins" "b" "translate('a', 'aa', 'bc')";
    eq "upper-case Latin-1" "H\xc3\x89LLO" "upper-case('h\xc3\xa9llo')";
    eq "lower-case Latin-1" "h\xc3\xa9llo" "lower-case('H\xc3\x89LLO')";
    (* ÿ uppercases outside Latin-1, to U+0178 *)
    eq "upper-case y-diaeresis" "\xc5\xb8" "upper-case('\xc3\xbf')";
    eq "lower-case Y-diaeresis" "\xc3\xbf" "lower-case('\xc5\xb8')";
    (* × and ÷ sit inside the letter ranges but are caseless *)
    eq "multiplication sign is caseless" "\xc3\x97" "upper-case('\xc3\x97')";
    eq "division sign is caseless" "\xc3\xb7" "lower-case('\xc3\xb7')";
    (* one-to-many mappings are out of scope: ß stays ß *)
    eq "sharp-s unchanged" "stra\xc3\x9fe" "lower-case(upper-case('stra\xc3\x9fe'))";
    eq "case mapping preserves length" "true"
      "let $s := 'Stra\xc3\x9fe \xc3\xbf \xc3\x97' \
       return string-length(upper-case($s)) = string-length($s)";
  ]

(* byte-scanning functions stay code-point-correct (self-synchronization) *)
let scan_tests =
  [
    eq "substring-before multi-byte" "h" "substring-before('h\xc3\xa9llo', '\xc3\xa9')";
    eq "substring-after multi-byte" "llo" "substring-after('h\xc3\xa9llo', '\xc3\xa9')";
    eq "contains multi-byte" "true" "contains('h\xc3\xa9llo', '\xc3\xa9ll')";
    (* a continuation byte alone must not match inside a character *)
    eq "no mid-character match" "false" "contains('\xc3\xa9', codepoints-to-string(169))";
  ]

(* ---------- properties over generated UTF-8 ---------- *)

(* code points drawn from every encoding width; avoids NUL, surrogates
   and non-characters by construction *)
let cp_gen =
  Q.Gen.(
    frequency
      [
        (5, int_range 0x20 0x7E) (* ASCII *);
        (3, int_range 0xA1 0xFF) (* Latin-1 supplement *);
        (2, int_range 0x100 0x2FF) (* 2-byte, beyond Latin-1 *);
        (2, int_range 0x1000 0x4000) (* 3-byte *);
        (1, int_range 0x10000 0x10FFF) (* 4-byte, astral *);
      ])

let cps_gen = Q.make Q.Gen.(list_size (int_range 0 12) cp_gen)

(* build the string inside the query via codepoints-to-string, so the
   generated text needs no source-level escaping *)
let literal_of_cps cps =
  Printf.sprintf "codepoints-to-string((%s))"
    (String.concat "," (List.map string_of_int cps))

let eval_bool src =
  match Engine.eval_string src with
  | [ Xdm_item.Atomic (Xdm_atomic.Boolean b) ] -> b
  | other -> Alcotest.failf "%s: expected a boolean, got %s" src (I.to_display_string other)

let property_tests =
  [
    qt "string-length(substring(s,1,n)) <= n"
      (Q.pair cps_gen Q.(int_range 0 15))
      (fun (cps, n) ->
        eval_bool
          (Printf.sprintf "string-length(substring(%s, 1, %d)) le %d"
             (literal_of_cps cps) n n));
    qt "substring(s,1,string-length(s)) round-trips" cps_gen (fun cps ->
        eval_bool
          (Printf.sprintf "let $s := %s return substring($s, 1, string-length($s)) = $s"
             (literal_of_cps cps)));
    qt "case mapping is length-preserving" cps_gen (fun cps ->
        eval_bool
          (Printf.sprintf
             "let $s := %s return string-length(upper-case($s)) = string-length($s) \
              and string-length(lower-case($s)) = string-length($s)"
             (literal_of_cps cps)));
    qt "ASCII upper-case agrees with translate"
      (Q.make
         Q.Gen.(
           map
             (fun cs -> String.concat "" (List.map (String.make 1) cs))
             (list_size (int_bound 15)
                (map (fun i -> Char.chr (Char.code 'a' + i)) (int_bound 25)))))
      (fun s ->
        let letters = String.init 26 (fun i -> Char.chr (Char.code 'a' + i)) in
        let upper = String.uppercase_ascii letters in
        eval_bool
          (Printf.sprintf "upper-case('%s') = translate('%s', '%s', '%s')" s s letters
             upper));
  ]

(* ---------- PUL conflict survival ---------- *)

let pul_tests =
  [
    t "conflicting PUL raises and survives apply" (fun () ->
        let doc = Dom.of_string "<r><a/></r>" in
        let a = List.hd (Dom.get_elements_by_local_name doc "a") in
        let pul = Pul.create () in
        Pul.add pul (Pul.Rename (a, Xmlb.Qname.make "x"));
        Pul.add pul (Pul.Rename (a, Xmlb.Qname.make "y"));
        (match Pul.apply pul with
        | exception Xq_error.Error e ->
            check Alcotest.string "conflict code" "XUDY0015" e.Xq_error.code
        | () -> Alcotest.fail "conflicting PUL applied without error");
        (* the failed apply must discard nothing: the list is intact for
           inspection and the tree untouched *)
        check Alcotest.int "pending updates survive" 2 (Pul.length pul);
        check Alcotest.string "document untouched" "<r><a/></r>" (Dom.serialize doc));
    t "successful apply clears the list" (fun () ->
        let doc = Dom.of_string "<r/>" in
        let r = List.hd (Dom.children doc) in
        let pul = Pul.create () in
        Pul.add pul (Pul.Insert_into (r, [ Dom.create_element (Xmlb.Qname.make "a") ]));
        Pul.apply pul;
        check Alcotest.bool "emptied" true (Pul.is_empty pul);
        check Alcotest.string "applied" "<r><a/></r>" (Dom.serialize doc));
  ]

let suite =
  substring_tests @ translate_case_tests @ scan_tests @ property_tests @ pul_tests
