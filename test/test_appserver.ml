(* The application server stack: micro-SQL, JSP-style templating (the
   §6.3 baseline), XQuery server pages, and the §6.1 migration tool. *)

module AS = Appserver.App_server
module B = Xqib.Browser

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let () = Minijs.Js_interp.install ()

let sample_db () =
  let db = Appserver.Sql_lite.create () in
  Appserver.Sql_lite.create_table db ~name:"PRODUCTS" ~columns:[ "NAME"; "PRICE" ];
  Appserver.Sql_lite.insert_row db ~table:"PRODUCTS"
    [ Appserver.Sql_lite.Text "laptop"; Appserver.Sql_lite.Int 999 ];
  Appserver.Sql_lite.insert_row db ~table:"PRODUCTS"
    [ Appserver.Sql_lite.Text "mouse"; Appserver.Sql_lite.Int 19 ];
  Appserver.Sql_lite.insert_row db ~table:"PRODUCTS"
    [ Appserver.Sql_lite.Text "keyboard"; Appserver.Sql_lite.Int 49 ];
  db

let sql_tests =
  let open Appserver.Sql_lite in
  [
    t "select star" (fun () ->
        check Alcotest.int "3 rows" 3 (List.length (query (sample_db ()) "SELECT * FROM PRODUCTS")));
    t "projection" (fun () ->
        match query (sample_db ()) "SELECT NAME FROM PRODUCTS" with
        | [ ("NAME", Text "laptop") ] :: _ -> ()
        | _ -> Alcotest.fail "bad projection");
    t "where equality" (fun () ->
        check Alcotest.int "1 row" 1
          (List.length (query (sample_db ()) "SELECT * FROM PRODUCTS WHERE NAME = 'mouse'")));
    t "where comparison" (fun () ->
        check Alcotest.int "cheap" 2
          (List.length (query (sample_db ()) "SELECT * FROM PRODUCTS WHERE PRICE < 100")));
    t "where conjunction" (fun () ->
        check Alcotest.int "one" 1
          (List.length
             (query (sample_db ()) "SELECT * FROM PRODUCTS WHERE PRICE < 100 AND NAME = 'mouse'")));
    t "order by" (fun () ->
        match query (sample_db ()) "SELECT NAME FROM PRODUCTS ORDER BY PRICE" with
        | [ ("NAME", Text "mouse") ] :: _ -> ()
        | _ -> Alcotest.fail "expected mouse first");
    t "order by desc" (fun () ->
        match query (sample_db ()) "SELECT NAME FROM PRODUCTS ORDER BY PRICE DESC" with
        | [ ("NAME", Text "laptop") ] :: _ -> ()
        | _ -> Alcotest.fail "expected laptop first");
    t "insert statement" (fun () ->
        let db = sample_db () in
        ignore (query db "INSERT INTO PRODUCTS VALUES ('pen', 2)");
        check Alcotest.int "4 rows" 4 (row_count db ~table:"PRODUCTS"));
    t "case-insensitive table names" (fun () ->
        check Alcotest.int "3" 3 (List.length (query (sample_db ()) "select * from products")));
    t "unknown table errors" (fun () ->
        match query (sample_db ()) "SELECT * FROM NOPE" with
        | exception Sql_error _ -> ()
        | _ -> Alcotest.fail "expected Sql_error");
    t "unknown column errors" (fun () ->
        match query (sample_db ()) "SELECT ZZZ FROM PRODUCTS" with
        | exception Sql_error _ -> ()
        | _ -> Alcotest.fail "expected Sql_error");
  ]

let jsp_tests =
  [
    t "plain template passes through" (fun () ->
        let j = Appserver.Jsp_sim.create () in
        check Alcotest.string "static" "<p>hi</p>" (Appserver.Jsp_sim.render j "<p>hi</p>"));
    t "expression segments" (fun () ->
        let j = Appserver.Jsp_sim.create () in
        check Alcotest.string "expr" "v=7" (Appserver.Jsp_sim.render j "v=<%= 3 + 4 %>"));
    t "scriptlet with out.println" (fun () ->
        let j = Appserver.Jsp_sim.create () in
        check Alcotest.string "println" "x\n"
          (Appserver.Jsp_sim.render j "<% out.println('x'); %>"));
    t "scriptlets share state across segments" (fun () ->
        let j = Appserver.Jsp_sim.create () in
        check Alcotest.string "shared" "10"
          (Appserver.Jsp_sim.render j "<% var n = 10; %><%= n %>"));
    t "paper-style ResultSet loop over SQL" (fun () ->
        let j = Appserver.Jsp_sim.create ~db:(sample_db ()) () in
        let page =
          "<% var results = statement.executeQuery(\"SELECT * FROM PRODUCTS\");\n\
           while (results.next()) {\n\
             out.println(\"<div>\");\n\
             var prodName = results.getString(1);\n\
             out.println(prodName);\n\
             out.println(\"</div>\");\n\
           }\n\
           results.close(); %>"
        in
        let html = Appserver.Jsp_sim.render j page in
        check Alcotest.bool "has laptop" true
          (Str.string_match (Str.regexp ".*laptop.*") (String.map (function '\n' -> ' ' | c -> c) html) 0));
    t "sql.query array form" (fun () ->
        let j = Appserver.Jsp_sim.create ~db:(sample_db ()) () in
        check Alcotest.string "count" "3"
          (Appserver.Jsp_sim.render j "<%= sql.query('SELECT * FROM PRODUCTS').length %>"));
    t "render over http counts renders" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let j = Appserver.Jsp_sim.create () in
        Appserver.Jsp_sim.register_page j http ~host:"jsp" ~path:"/p" "static";
        ignore (Http_sim.fetch http "http://jsp/p");
        ignore (Http_sim.fetch http "http://jsp/p");
        check Alcotest.int "renders" 2 (Appserver.Jsp_sim.render_count j));
    t "unterminated scriptlet errors" (fun () ->
        let j = Appserver.Jsp_sim.create () in
        match Appserver.Jsp_sim.render j "<% var x = 1;" with
        | exception Appserver.Jsp_sim.Render_error _ -> ()
        | _ -> Alcotest.fail "expected Render_error");
  ]

let xquery_server_tests =
  [
    t "server renders an xquery page against the store" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        Doc_store.put_xml (AS.store srv) ~name:"products.xml"
          "<products><product><name>laptop</name></product></products>";
        AS.add_xquery_page srv ~path:"/list"
          "<ul>{ for $p in doc('products.xml')//product return <li>{string($p/name)}</li> }</ul>";
        let r = Http_sim.fetch http "http://pub/list" in
        check Alcotest.string "rendered" "<ul><li>laptop</li></ul>" r.Http_sim.body;
        check Alcotest.int "one evaluation" 1 (AS.evaluations srv));
    t "each request re-evaluates" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        AS.add_xquery_page srv ~path:"/p" "<x/>";
        ignore (Http_sim.fetch http "http://pub/p");
        ignore (Http_sim.fetch http "http://pub/p");
        ignore (Http_sim.fetch http "http://pub/p");
        check Alcotest.int "three evals" 3 (AS.evaluations srv));
    t "docs served next to pages" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        Doc_store.put_xml (AS.store srv) ~name:"d.xml" "<d/>";
        AS.add_xquery_page srv ~path:"/p" "<x/>";
        check Alcotest.string "doc" "<d/>" (Http_sim.fetch http "http://pub/docs/d.xml").Http_sim.body;
        check Alcotest.string "page" "<x/>" (Http_sim.fetch http "http://pub/p").Http_sim.body);
    t "library modules served as application/xquery" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        AS.add_module srv ~path:"/lib.xq"
          "module namespace m = 'urn:m'; declare function m:one() { 1 };";
        let r = Http_sim.fetch http "http://pub/lib.xq" in
        check Alcotest.string "content type" "application/xquery" r.Http_sim.content_type);
    t "doc-available resolves the same URIs fn:doc loads" (fun () ->
        (* regression: the doc-available hook used to check the raw URI
           against the store, so full /docs/ URIs that fn:doc loaded
           fine reported as unavailable *)
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        Doc_store.put_xml (AS.store srv) ~name:"d.xml" "<d/>";
        AS.add_xquery_page srv ~path:"/p"
          ("<r>{doc-available('" ^ AS.doc_uri srv ~name:"d.xml"
          ^ "')}-{doc-available('d.xml')}-{doc-available('"
          ^ AS.doc_uri srv ~name:"missing.xml" ^ "')}</r>");
        check Alcotest.string "full uri, bare name, missing"
          "<r>true-true-false</r>" (AS.render_page srv ~path:"/p"));
    t "a /docsearch page is not captured by the /docs route" (fun () ->
        (* regression: the docs dispatch matched the bare "/docs" prefix,
           so any page whose path merely started with it was a 404 *)
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        Doc_store.put_xml (AS.store srv) ~name:"d.xml" "<d/>";
        AS.add_static_page srv ~path:"/docsearch" "<form>search</form>";
        let r = Http_sim.fetch http "http://pub/docsearch" in
        check Alcotest.int "page reachable" 200 r.Http_sim.status;
        check Alcotest.string "page body" "<form>search</form>" r.Http_sim.body;
        check Alcotest.string "store still served" "<d/>"
          (Http_sim.fetch http "http://pub/docs/d.xml").Http_sim.body);
  ]

let queue_tests =
  [
    t "service cost becomes queueing latency" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        AS.add_xquery_page srv ~path:"/p" "<x/>";
        AS.set_queue ~service_cost:1.0 srv;
        (* serve without advancing the clock: three back-to-back
           arrivals queue behind one another *)
        for _ = 1 to 3 do ignore (Http_sim.serve http "http://pub/p") done;
        check (Alcotest.array (Alcotest.float 1e-9)) "waits stack up"
          [| 1.; 2.; 3. |] (AS.latencies srv);
        check Alcotest.int "depth high-water" 3 (AS.max_queue_depth srv);
        check Alcotest.int "all admitted" 3 (AS.served_requests srv);
        check Alcotest.int "no sheds" 0 (AS.sheds srv);
        (* the third response's latency carries its 3 s of server time *)
        let _, lat = Http_sim.serve http "http://pub/p" in
        check Alcotest.bool "latency includes queue time" true (lat > 4.));
    t "zero-cost queue is inert" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        AS.add_xquery_page srv ~path:"/p" "<x/>";
        for _ = 1 to 5 do ignore (Http_sim.fetch http "http://pub/p") done;
        check Alcotest.int "nothing recorded" 0 (AS.served_requests srv);
        check Alcotest.int "no depth" 0 (AS.max_queue_depth srv));
    t "admission control sheds with a Retry-After hint" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        AS.add_xquery_page srv ~path:"/p" "<x/>";
        AS.set_queue ~service_cost:1.0 ~shed_depth:2 srv;
        let responses = List.init 4 (fun _ -> fst (Http_sim.serve http "http://pub/p")) in
        let statuses = List.map (fun r -> r.Http_sim.status) responses in
        check (Alcotest.list Alcotest.int) "two in, two shed" [ 200; 200; 503; 503 ]
          statuses;
        check Alcotest.int "sheds counted" 2 (AS.sheds srv);
        check Alcotest.bool "depth bounded at threshold" true
          (AS.max_queue_depth srv <= 2);
        (match List.nth responses 2 with
        | { Http_sim.retry_after = Some ra; _ } ->
            check (Alcotest.float 1e-9) "hint: when a slot frees" 1. ra
        | _ -> Alcotest.fail "shed response carries Retry-After"));
    t "retry policies honour Retry-After" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let calls = ref 0 in
        Http_sim.register_host http ~host:"h" (fun _ ->
            incr calls;
            if !calls = 1 then
              { Http_sim.status = 503; body = "overloaded";
                content_type = "text/plain"; retry_after = Some 7. }
            else Http_sim.ok "<x/>");
        let policy = { Retry.default with Retry.max_attempts = 3; jitter = 0. } in
        let r = Retry.fetch ~policy http "http://h/x" in
        check Alcotest.int "eventually 200" 200 r.Http_sim.status;
        (* the 0.1 s backoff was raised to the server's 7 s hint *)
        check Alcotest.bool "waited out the hint" true (Virtual_clock.now clock >= 7.));
    t "tenants get their own compiled-page partitions" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        AS.add_xquery_page srv ~path:"/p" "<x>{1+1}</x>";
        AS.set_tenants srv 3;
        let fetch path = (Http_sim.fetch http ("http://pub" ^ path)).Http_sim.body in
        check Alcotest.string "tenant 1" "<x>2</x>" (fetch "/t1/p");
        check Alcotest.string "tenant 2" "<x>2</x>" (fetch "/t2/p");
        check Alcotest.string "tenant 1 again" "<x>2</x>" (fetch "/t1/p");
        check Alcotest.string "tenant 0 unprefixed" "<x>2</x>" (fetch "/p");
        check Alcotest.int "one lazy compile per non-zero tenant" 2
          (AS.tenant_compiles srv);
        check Alcotest.int "tenant 1 partition hit on revisit" 1
          (AS.tenant_cache_stats srv ~tenant:1).Xquery.Query_cache.hits;
        check Alcotest.int "four evaluations" 4 (AS.evaluations srv));
    t "an out-of-range tenant prefix is a plain path" (fun () ->
        let http = Http_sim.create (Virtual_clock.create ()) in
        let srv = AS.create http ~host:"pub" in
        AS.add_xquery_page srv ~path:"/p" "<x/>";
        AS.set_tenants srv 2;
        check Alcotest.int "404, not tenant routing" 404
          (Http_sim.fetch http "http://pub/t9/p").Http_sim.status);
  ]

let server_page =
  {|
declare updating function local:buy($evt, $obj) {
  insert node <p>{string($obj/@id)}</p> as first into //div[@id="shoppingcart"]
};
<html><head><title>Shop</title></head><body>
<div>Shopping cart</div>
<div id="shoppingcart"/>
<div>{
  for $p in doc("products.xml")//product
  return <div>{$p/name/text()}<input type='button' value='Buy' id='{$p/name}'/></div>
}</div>
{ on event "onclick" at //input attach listener local:buy }
</body></html>|}

let setup_shop () =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create clock in
  let srv = AS.create http ~host:"shop" in
  Doc_store.put_xml (AS.store srv) ~name:"products.xml"
    "<products><product><name>laptop</name></product><product><name>mouse</name></product></products>";
  AS.add_xquery_page srv ~path:"/shop" server_page;
  (clock, http, srv)

let migration_tests =
  [
    t "migrated page contains script and slots" (fun () ->
        let _, _, srv = setup_shop () in
        let client = Appserver.Migration.migrate_server_page srv ~path:"/shop" ~client_path:"/shop2" in
        check Alcotest.bool "script tag" true
          (Str.string_match (Str.regexp ".*text/xqueryp.*") (String.map (function '\n' -> ' ' | c -> c) client) 0);
        check Alcotest.bool "slot" true
          (Str.string_match (Str.regexp ".*xqib-slot-1.*") (String.map (function '\n' -> ' ' | c -> c) client) 0));
    t "migrated page rewrites doc() to rest:get" (fun () ->
        let _, _, srv = setup_shop () in
        let client = Appserver.Migration.migrate_server_page srv ~path:"/shop" ~client_path:"/shop2" in
        let flat = String.map (function '\n' -> ' ' | c -> c) client in
        check Alcotest.bool "rest:get" true
          (Str.string_match (Str.regexp ".*rest:get('http://shop/docs/products.xml').*") flat 0);
        check Alcotest.bool "no fn:doc left" false
          (Str.string_match (Str.regexp ".*doc(\"products.*") flat 0));
    t "client loads migrated page and builds the product list" (fun () ->
        let clock, http, srv = setup_shop () in
        ignore (Appserver.Migration.migrate_server_page srv ~path:"/shop" ~client_path:"/shop2");
        let b = B.create ~clock ~http () in
        Xqib.Page.browse b "http://shop/shop2";
        B.run b;
        let doc = B.document b in
        check Alcotest.int "two products" 2
          (List.length (Dom.get_elements_by_local_name doc "input"));
        (* zero server-side evaluations: all work moved to the client *)
        check Alcotest.int "no server evals" 0 (AS.evaluations srv));
    t "migrated page is interactive (the cart works)" (fun () ->
        let clock, http, srv = setup_shop () in
        ignore (Appserver.Migration.migrate_server_page srv ~path:"/shop" ~client_path:"/shop2");
        let b = B.create ~clock ~http () in
        Xqib.Page.browse b "http://shop/shop2";
        B.run b;
        let doc = B.document b in
        (match Dom.get_elements_by_local_name doc "input" with
        | first :: _ -> B.click b first
        | [] -> Alcotest.fail "no inputs");
        let cart = Option.get (Dom.get_element_by_id doc "shoppingcart") in
        check Alcotest.string "cart has item" "laptop" (Dom.string_value cart));
    t "client caching collapses repeat document fetches (Fig. 2)" (fun () ->
        let clock, http, srv = setup_shop () in
        ignore (Appserver.Migration.migrate_server_page srv ~path:"/shop" ~client_path:"/shop2");
        let b = B.create ~cache:true ~clock ~http () in
        Xqib.Page.browse b "http://shop/shop2";
        B.run b;
        Http_sim.reset_stats http;
        (* further client-side queries over the same document *)
        for _ = 1 to 5 do
          ignore
            (Xqib.Page.run_xquery b b.B.top_window
               "count(rest:get('http://shop/docs/products.xml')//product)")
        done;
        check Alcotest.int "zero network requests" 0 (Http_sim.total_requests http));
    t "migration of a non-element page fails cleanly" (fun () ->
        match Appserver.Migration.migrate ~doc_base:"http://x/docs/" "1 + 1" with
        | exception Xquery.Xq_error.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let suite =
  sql_tests @ jsp_tests @ xquery_server_tests @ queue_tests @ migration_tests
