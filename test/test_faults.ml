(* Fault injection and resilience: the deterministic fault model of
   Http_sim, the Retry policy (attempts, timeouts, backoff), the
   Local_store fallback, the behind error path, and the flaky §6.1
   scenario. Everything runs in virtual time, so every assertion is
   about an exact, replayable schedule. *)

module B = Xqib.Browser

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let make_http ?(base = 0.1) () =
  let clock = Virtual_clock.create () in
  let http = Http_sim.create ~latency:{ Http_sim.base; per_kb = 0. } clock in
  Http_sim.register_doc http ~uri:"http://h/x.xml" "<x>payload</x>";
  (clock, http)

(* run [n] requests against a fault spec and record the observable
   trace: (status, virtual arrival time) per request *)
let trace ?host ~seed ~spec ?(policy = Retry.disabled) ?(n = 12) () =
  let clock, http = make_http () in
  Http_sim.set_faults http ?host ~seed spec;
  let prng = Prng.create ~seed in
  List.init n (fun _ ->
      let r = Retry.fetch ~policy ~prng http "http://h/x.xml" in
      (r.Http_sim.status, Virtual_clock.now clock))

let trace_testable = Alcotest.(list (pair int (float 1e-9)))

let lossy = { Http_sim.no_faults with Http_sim.drop = 0.3; http_5xx = 0.2 }

let determinism_tests =
  [
    t "same seed replays the same fault schedule" (fun () ->
        let a = trace ~seed:7 ~spec:lossy () in
        let b = trace ~seed:7 ~spec:lossy () in
        check trace_testable "identical" a b;
        (* and the schedule actually contains faults *)
        check Alcotest.bool "some faults" true
          (List.exists (fun (s, _) -> s <> 200) a));
    t "different seeds give different schedules" (fun () ->
        let a = trace ~seed:7 ~spec:lossy () in
        let b = trace ~seed:8 ~spec:lossy () in
        check Alcotest.bool "differ" true (a <> b));
    t "retry schedule (with jittered backoff) replays too" (fun () ->
        let policy = { Retry.default with Retry.max_attempts = 5 } in
        let a = trace ~seed:3 ~spec:lossy ~policy () in
        let b = trace ~seed:3 ~spec:lossy ~policy () in
        check trace_testable "identical" a b);
    t "rate 0 is byte-identical to no fault model" (fun () ->
        let bare = trace ~seed:1 ~spec:Http_sim.no_faults () in
        let clock, http = make_http () in
        (* no set_faults at all *)
        let none =
          List.init 12 (fun _ ->
              let r = Http_sim.fetch http "http://h/x.xml" in
              (r.Http_sim.status, Virtual_clock.now clock))
        in
        check trace_testable "identical" bare none;
        check Alcotest.int "nothing injected" 0
          (Http_sim.total_injected_faults http));
    t "per-host override only hits that host" (fun () ->
        let clock, http = make_http () in
        ignore clock;
        Http_sim.register_doc http ~uri:"http://stable/y.xml" "<y/>";
        Http_sim.set_faults http ~host:"h" ~seed:5
          { Http_sim.no_faults with Http_sim.drop = 1.0 };
        check Alcotest.int "flaky host drops" 0
          (Http_sim.fetch http "http://h/x.xml").Http_sim.status;
        check Alcotest.int "other host fine" 200
          (Http_sim.fetch http "http://stable/y.xml").Http_sim.status);
    t "fault counters count by kind" (fun () ->
        let _, http = make_http () in
        Http_sim.set_faults http ~seed:11
          { Http_sim.no_faults with Http_sim.drop = 1.0 };
        for _ = 1 to 4 do
          ignore (Http_sim.fetch http "http://h/x.xml")
        done;
        check Alcotest.int "4 drops" 4 (Http_sim.injected_faults http Http_sim.Drop);
        check Alcotest.int "total" 4 (Http_sim.total_injected_faults http);
        check Alcotest.int "0 oks" 0 (Http_sim.outcome_count http ~host:"h" ~ok:true);
        check Alcotest.int "4 fails" 4
          (Http_sim.outcome_count http ~host:"h" ~ok:false));
  ]

let retry_tests =
  [
    t "retry until success consumes the expected attempts" (fun () ->
        (* drop everything: 4 attempts, 3 retries, final failure *)
        let _, http = make_http () in
        Http_sim.set_faults http ~seed:2
          { Http_sim.no_faults with Http_sim.drop = 1.0 };
        let stats = Retry.make_stats () in
        let policy = { Retry.default with Retry.max_attempts = 4 } in
        let r = Retry.fetch ~policy ~stats http "http://h/x.xml" in
        check Alcotest.int "status 0" 0 r.Http_sim.status;
        check Alcotest.int "4 requests on the wire" 4
          (Http_sim.request_count http ~host:"h");
        check Alcotest.int "4 attempts" 4 stats.Retry.attempts;
        check Alcotest.int "3 retries" 3 stats.Retry.retries;
        check Alcotest.int "exhausted once" 1 stats.Retry.exhausted);
    t "first success stops the retrying" (fun () ->
        (* a handler that fails twice then succeeds, no PRNG needed *)
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let calls = ref 0 in
        Http_sim.register_host http ~host:"h" (fun _ ->
            incr calls;
            if !calls <= 2 then
              { Http_sim.status = 503; body = "busy"; content_type = "text/plain";
                retry_after = None }
            else Http_sim.ok "<x/>");
        let stats = Retry.make_stats () in
        let policy = { Retry.default with Retry.max_attempts = 10 } in
        let r = Retry.fetch ~policy ~stats http "http://h/x.xml" in
        check Alcotest.int "200" 200 r.Http_sim.status;
        check Alcotest.int "3 calls" 3 !calls;
        check Alcotest.int "2 retries" 2 stats.Retry.retries;
        check Alcotest.int "1 success" 1 stats.Retry.successes);
    t "permanent failures are not retried" (fun () ->
        let _, http = make_http () in
        let stats = Retry.make_stats () in
        let r = Retry.fetch ~stats http "http://h/missing" in
        check Alcotest.int "404" 404 r.Http_sim.status;
        check Alcotest.int "one attempt" 1 stats.Retry.attempts;
        check Alcotest.int "no retries" 0 stats.Retry.retries);
    t "timeout fires at exactly the configured virtual deadline" (fun () ->
        (* latency 0.4 > timeout 0.15: the clock must advance by the
           timeout, not the full latency *)
        let clock, http = make_http ~base:0.4 () in
        let policy =
          {
            Retry.disabled with
            Retry.max_attempts = 1;
            attempt_timeout = Some 0.15;
          }
        in
        let stats = Retry.make_stats () in
        let r = Retry.fetch ~policy ~stats http "http://h/x.xml" in
        check Alcotest.int "408" Retry.timeout_status r.Http_sim.status;
        check (Alcotest.float 1e-9) "deadline" 0.15 (Virtual_clock.now clock);
        check Alcotest.int "counted" 1 stats.Retry.timeouts);
    t "fast responses beat the timeout" (fun () ->
        let clock, http = make_http ~base:0.05 () in
        let policy =
          { Retry.disabled with Retry.attempt_timeout = Some 0.15 }
        in
        let r = Retry.fetch ~policy http "http://h/x.xml" in
        check Alcotest.int "200" 200 r.Http_sim.status;
        check (Alcotest.float 1e-9) "latency, not deadline" 0.05
          (Virtual_clock.now clock));
    t "un-jittered backoff curve is the closed form" (fun () ->
        let p =
          {
            Retry.default with
            Retry.backoff_base = 0.1;
            backoff_factor = 2.;
            backoff_max = 0.5;
            jitter = 0.;
          }
        in
        check (Alcotest.float 1e-9) "1st" 0.1 (Retry.backoff p ~attempt:1);
        check (Alcotest.float 1e-9) "2nd" 0.2 (Retry.backoff p ~attempt:2);
        check (Alcotest.float 1e-9) "3rd" 0.4 (Retry.backoff p ~attempt:3);
        check (Alcotest.float 1e-9) "capped" 0.5 (Retry.backoff p ~attempt:4);
        check (Alcotest.float 1e-9) "sum over 4 failures" 1.2
          (Retry.backoff_total p ~attempts:5));
    t "corrupted bodies are retried via fetch_check" (fun () ->
        let clock = Virtual_clock.create () in
        let http = Http_sim.create clock in
        let calls = ref 0 in
        Http_sim.register_host http ~host:"h" (fun _ ->
            incr calls;
            if !calls = 1 then Http_sim.ok "<x>trunca"  (* malformed *)
            else Http_sim.ok "<x>whole</x>");
        let check_xml (r : Http_sim.response) =
          match Dom.of_string r.Http_sim.body with
          | doc -> Ok doc
          | exception _ -> Error "not xml"
        in
        match Retry.fetch_check ~check:check_xml http "http://h/x.xml" with
        | Ok doc ->
            check Alcotest.int "2 calls" 2 !calls;
            check Alcotest.string "whole body" "whole" (Dom.string_value doc)
        | Error _ -> Alcotest.fail "expected recovery");
  ]

let fallback_tests =
  [
    t "exhausted retries fall back to the Local_store copy" (fun () ->
        let b = B.create ~net_fallback:true () in
        Http_sim.register_doc b.B.http ~uri:"http://h/x.xml" "<x>gold</x>";
        let q = "string(rest:get('http://h/x.xml')/x)" in
        let w = b.B.top_window in
        Xqib.Page.load b "<html><body/></html>";
        check Alcotest.string "first fetch over the wire" "gold"
          (Xdm_item.to_display_string (Xqib.Page.run_xquery b w q));
        (* now the network dies completely *)
        Http_sim.set_faults b.B.http ~seed:1
          { Http_sim.no_faults with Http_sim.drop = 1.0 };
        check Alcotest.string "served from the store" "gold"
          (Xdm_item.to_display_string (Xqib.Page.run_xquery b w q));
        check Alcotest.int "one fallback hit" 1 (Rest.fallback_hits b.B.rest));
    t "without net_fallback the same failure raises FODC0002" (fun () ->
        let b = B.create () in
        Http_sim.register_doc b.B.http ~uri:"http://h/x.xml" "<x>gold</x>";
        let q = "string(rest:get('http://h/x.xml')/x)" in
        let w = b.B.top_window in
        Xqib.Page.load b "<html><body/></html>";
        ignore (Xqib.Page.run_xquery b w q);
        Http_sim.set_faults b.B.http ~seed:1
          { Http_sim.no_faults with Http_sim.drop = 1.0 };
        match Xqib.Page.run_xquery b w q with
        | exception Xquery.Xq_error.Error e ->
            check Alcotest.string "code" "FODC0002" e.Xquery.Xq_error.code
        | _ -> Alcotest.fail "expected FODC0002");
    t "fallback serves a pristine copy, not the page's mutated one" (fun () ->
        let b = B.create ~net_fallback:true () in
        Http_sim.register_doc b.B.http ~uri:"http://h/x.xml" "<x>gold</x>";
        let w = b.B.top_window in
        Xqib.Page.load b "<html><body/></html>";
        (* fetch and mutate the fetched tree *)
        ignore
          (Xqib.Page.run_xquery b w
             "replace value of node rest:get('http://h/x.xml')/x with 'mutated'");
        Http_sim.set_faults b.B.http ~seed:1
          { Http_sim.no_faults with Http_sim.drop = 1.0 };
        check Alcotest.string "original content" "gold"
          (Xdm_item.to_display_string
             (Xqib.Page.run_xquery b w "string(rest:get('http://h/x.xml')/x)")));
  ]

let behind_error_page =
  {|<html><head><script type="text/xquery">
    declare updating function local:onResult($readyState, $result) {
      insert node <state n="{$readyState}" msg="{string($result)}"/> into //body
    };
    { on event "stateChanged" behind rest:get("http://svc/hint.xml")
      attach listener local:onResult }
    </script></head><body/></html>|}

let behind_states b =
  List.map
    (fun n -> Option.value ~default:"" (Dom.attribute_local n "n"))
    (Dom.get_elements_by_local_name (B.document b) "state")

let behind_tests =
  [
    t "behind failure signals readyState 1 then 0 with a message" (fun () ->
        let b = B.create () in
        (* host exists but the network drops every request *)
        Http_sim.register_doc b.B.http ~uri:"http://svc/hint.xml" "<hint/>";
        Http_sim.set_faults b.B.http ~seed:4
          { Http_sim.no_faults with Http_sim.drop = 1.0 };
        Xqib.Page.load b behind_error_page;
        B.run b;
        check (Alcotest.list Alcotest.string) "signals" [ "1"; "0" ]
          (behind_states b);
        (* the error message reaches the listener and the console *)
        let msgs =
          List.filter_map
            (fun n -> Dom.attribute_local n "msg")
            (Dom.get_elements_by_local_name (B.document b) "state")
        in
        check Alcotest.bool "message in $result" true
          (List.exists (fun m -> m <> "") msgs);
        check Alcotest.bool "logged to the error console" true
          (b.B.script_errors <> []));
    t "behind success under faults still ends in readyState 4" (fun () ->
        (* retries absorb a 503-then-ok server *)
        let b = B.create ~retry:{ Retry.default with Retry.max_attempts = 5 } () in
        let calls = ref 0 in
        Http_sim.register_host b.B.http ~host:"svc" (fun _ ->
            incr calls;
            if !calls = 1 then
              { Http_sim.status = 503; body = "busy"; content_type = "text/plain";
                retry_after = None }
            else Http_sim.ok "<hint/>");
        Xqib.Page.load b behind_error_page;
        B.run b;
        check (Alcotest.list Alcotest.string) "signals" [ "1"; "4" ]
          (behind_states b);
        check Alcotest.int "one retry" 2 !calls);
    t "a failed behind does not stop the event loop" (fun () ->
        let b = B.create () in
        Http_sim.register_doc b.B.http ~uri:"http://svc/hint.xml" "<hint/>";
        Http_sim.set_faults b.B.http ~seed:4
          { Http_sim.no_faults with Http_sim.drop = 1.0 };
        Xqib.Page.load b
          {|<html><head><script type="text/xquery">
            declare updating function local:onResult($readyState, $result) { () };
            declare updating function local:tick($evt, $obj) {
              insert node <tick/> into //body
            };
            ( on event "stateChanged" behind rest:get("http://svc/hint.xml")
              attach listener local:onResult,
              on event "onclick" at //button attach listener local:tick )
</script></head><body><button id="go"/></body></html>|};
        B.run b;
        (* the behind failed; clicks must still dispatch *)
        let btn = Option.get (Dom.get_element_by_id (B.document b) "go") in
        B.click b btn;
        B.run b;
        check Alcotest.int "tick ran" 1
          (List.length (Dom.get_elements_by_local_name (B.document b) "tick")));
  ]

let scenario_tests =
  [
    t "flaky Elsevier: baseline loses work, resilient client does not" (fun () ->
        let base =
          Scenarios.run_elsevier_flaky ~rate:0.3 ~seed:42 ~resilient:false ()
        in
        let res =
          Scenarios.run_elsevier_flaky ~rate:0.3 ~seed:42 ~resilient:true ()
        in
        check Alcotest.bool "baseline lost something" true
          (base.Scenarios.pages_lost + base.Scenarios.queries_failed > 0);
        check Alcotest.int "resilient loses no pages" 0 res.Scenarios.pages_lost;
        check Alcotest.int "resilient loses no queries" 0
          res.Scenarios.queries_failed;
        check Alcotest.int "all visits answered" res.Scenarios.visits
          res.Scenarios.queries_ok;
        check Alcotest.bool "paid for it in retries" true
          (res.Scenarios.retries > 0));
    t "flaky Elsevier is deterministic per (rate, seed)" (fun () ->
        let r1 = Scenarios.run_elsevier_flaky ~rate:0.3 ~seed:9 ~resilient:true () in
        let r2 = Scenarios.run_elsevier_flaky ~rate:0.3 ~seed:9 ~resilient:true () in
        check Alcotest.bool "identical reports" true (r1 = r2));
    t "rate 0 resilient matches rate 0 baseline exactly" (fun () ->
        let base =
          Scenarios.run_elsevier_flaky ~rate:0. ~seed:1 ~resilient:false ()
        in
        let res = Scenarios.run_elsevier_flaky ~rate:0. ~seed:1 ~resilient:true () in
        check Alcotest.int "same requests" base.Scenarios.server_requests
          res.Scenarios.server_requests;
        check (Alcotest.float 1e-9) "same virtual time" base.Scenarios.elapsed
          res.Scenarios.elapsed;
        check Alcotest.int "no retries" 0 res.Scenarios.retries);
  ]

let suite =
  determinism_tests @ retry_tests @ fallback_tests @ behind_tests
  @ scenario_tests
