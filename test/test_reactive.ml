(* Incremental recomputation: footprint-tracked listeners (the reactive
   dispatch layer), batched mutation notifications, XQUF apply order,
   and the incremental/full differential property. *)

open Xquery
module I = Xdm_item
module B = Xqib.Browser
module Q = QCheck

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

let load_page ?(browser = B.create ()) html =
  Xqib.Page.load browser html;
  browser

let run b src = Xqib.Page.run_xquery b b.B.top_window src
let run_str b src = I.to_display_string (run b src)

let counter name =
  match List.assoc_opt name (Reactive.counter_stats ()) with
  | Some v -> v
  | None -> Alcotest.failf "no reactive counter %S" name

(* every test must leave the global toggles in their defaults *)
let with_configs ?(incremental = true) ?(compiled = true) ?(streaming = true)
    f =
  Fun.protect
    ~finally:(fun () ->
      Reactive.set_incremental true;
      Engine.set_compiled_eval true;
      Eval.set_streaming true)
    (fun () ->
      Reactive.set_incremental incremental;
      Engine.set_compiled_eval compiled;
      Eval.set_streaming streaming;
      f ())

(* ------------------------------------------------------------------ *)
(* Batched mutation notifications (one changeset per Pul.apply)        *)

let batching_tests =
  [
    t "with_batch delivers queued notifications in order at close" (fun () ->
        let doc =
          Dom.of_string "<d><e1/><e2/></d>"
        in
        let seen = ref [] in
        let obs =
          Dom.observe ~root:doc (fun m ->
              let local n =
                match Dom.name n with Some q -> q.Xmlb.Qname.local | None -> "?"
              in
              let tag =
                match m with
                | Dom.Children_changed n -> "children:" ^ local n
                | Dom.Attribute_changed (n, _) -> "attr:" ^ local n
                | Dom.Value_changed n -> "value:" ^ local n
                | Dom.Renamed n -> "renamed:" ^ local n
              in
              seen := tag :: !seen)
        in
        let e1 = List.hd (Dom.get_elements_by_local_name doc "e1") in
        let e2 = List.hd (Dom.get_elements_by_local_name doc "e2") in
        Dom.with_batch (fun () ->
            Dom.append_child ~parent:e1 (Dom.create_text "x");
            check (Alcotest.list Alcotest.string) "queued, not delivered" []
              (List.rev !seen);
            Dom.append_child ~parent:e2 (Dom.create_text "y"));
        Dom.unobserve obs;
        check (Alcotest.list Alcotest.string) "delivered in mutation order"
          [ "children:e1"; "children:e2" ]
          (List.rev !seen));
    t "observers see one coherent post-apply changeset" (fun () ->
        (* by the time the FIRST notification of a multi-primitive PUL
           arrives, every primitive of that snapshot is already applied *)
        let b = load_page {|<html><body><d><e><gone/></e></d></body></html>|} in
        let doc = B.document b in
        let states = ref [] in
        let obs =
          Dom.observe ~root:doc (fun _ ->
              states :=
                ( List.length (Dom.get_elements_by_local_name doc "a"),
                  List.length (Dom.get_elements_by_local_name doc "gone") )
                :: !states)
        in
        ignore (run b {|(delete node //gone, insert node <a/> into //d)|});
        Dom.unobserve obs;
        check Alcotest.bool "got notifications" true (!states <> []);
        List.iter
          (fun (a, gone) ->
            check Alcotest.int "insert visible" 1 a;
            check Alcotest.int "delete visible" 0 gone)
          !states);
    t "notification count and order are pinned per snapshot" (fun () ->
        (* two inserts + one delete in one snapshot: exactly three
           notifications; XQUF order puts the phase-0 inserts before the
           phase-4 delete even though the delete is listed first *)
        let b =
          load_page {|<html><body><d/><e><gone/></e></body></html>|}
        in
        let doc = B.document b in
        let seen = ref [] in
        let obs =
          Dom.observe ~root:doc (fun m ->
              match m with
              | Dom.Children_changed n ->
                  let local =
                    match Dom.name n with
                    | Some q -> q.Xmlb.Qname.local
                    | None -> "?"
                  in
                  seen := local :: !seen
              | _ -> ())
        in
        ignore
          (run b
             {|(delete node //gone, insert node <a/> into //d, insert node <b/> into //d)|});
        Dom.unobserve obs;
        check (Alcotest.list Alcotest.string) "inserts first, delete last"
          [ "d"; "d"; "e" ]
          (List.rev !seen));
  ]

(* ------------------------------------------------------------------ *)
(* XQUF §3.2.2 apply order                                             *)

let xquf_order_tests =
  [
    t "insert into applies before replace value of element" (fun () ->
        (* replaceElementContent (phase 3) runs after insertInto
           (phase 0): the inserted node is discarded with the rest of
           the old content, per XQUF §3.2.2 *)
        let b = load_page {|<html><body><d>old</d></body></html>|} in
        ignore
          (run b
             {|(insert node <kid/> into //d, replace value of node //d with "gone")|});
        check Alcotest.string "content replaced" "gone" (run_str b "string(//d)");
        check Alcotest.string "insert discarded" "0" (run_str b "count(//kid)"));
    t "delete applies after positional insert" (fun () ->
        (* insertBefore (phase 1) sees the target still in place; the
           delete (phase 4) removes it afterwards *)
        let b = load_page {|<html><body><d><gone/></d></body></html>|} in
        ignore
          (run b {|(delete node //gone, insert node <kid/> before //gone)|});
        check Alcotest.string "kid survives" "1" (run_str b "count(//d/kid)");
        check Alcotest.string "gone deleted" "0" (run_str b "count(//gone)"));
    t "replace node applies after positional insert" (fun () ->
        let b = load_page {|<html><body><d><old/></d></body></html>|} in
        ignore
          (run b
             {|(replace node //old with <new/>, insert node <kid/> before //old)|});
        check Alcotest.string "both placed" "kid,new"
          (run_str b {|string-join(//d/*/local-name(), ",")|}));
  ]

(* ------------------------------------------------------------------ *)
(* Reactive skip/invalidation behaviour                                *)

let two_region_page =
  {|<html><head><script type="text/xquery">
    declare function local:watch($evt, $obj) { count($obj//item) };
    on event "onclick" at //div attach listener local:watch
    </script></head>
    <body><div id="r1"><item/><item/></div><div id="r2"><item/></div></body></html>|}

let skip_tests =
  [
    t "repeat dispatch with no mutation is skipped" (fun () ->
        with_configs (fun () ->
            let b = load_page two_region_page in
            let doc = B.document b in
            let r1 = Option.get (Dom.get_element_by_id doc "r1") in
            Reactive.reset_counters ();
            B.dispatch b ~target:r1 "onclick";
            check Alcotest.int "first run recorded" 1 (counter "reruns");
            B.dispatch b ~target:r1 "onclick";
            B.dispatch b ~target:r1 "onclick";
            check Alcotest.int "later runs skipped" 2 (counter "skips");
            check Alcotest.int "no extra reruns" 1 (counter "reruns")));
    t "mutation outside the footprint keeps the skip" (fun () ->
        with_configs (fun () ->
            let b = load_page two_region_page in
            let doc = B.document b in
            let r1 = Option.get (Dom.get_element_by_id doc "r1") in
            Reactive.reset_counters ();
            B.dispatch b ~target:r1 "onclick";
            ignore (run b {|insert node <item/> into //div[@id='r2']|});
            B.dispatch b ~target:r1 "onclick";
            check Alcotest.int "r2 write does not dirty r1" 1 (counter "skips");
            check Alcotest.int "r1 ran once" 1 (counter "reruns")));
    t "mutation inside the footprint forces a re-run" (fun () ->
        with_configs (fun () ->
            let b = load_page two_region_page in
            let doc = B.document b in
            let r1 = Option.get (Dom.get_element_by_id doc "r1") in
            Reactive.reset_counters ();
            B.dispatch b ~target:r1 "onclick";
            ignore (run b {|insert node <item/> into //div[@id='r1']|});
            check Alcotest.bool "memo invalidated" true
              (counter "invalidations" >= 1);
            B.dispatch b ~target:r1 "onclick";
            check Alcotest.int "re-ran" 2 (counter "reruns");
            check Alcotest.int "no skip" 0 (counter "skips");
            (* correctness: the re-run sees the new item *)
            check Alcotest.string "count" "3"
              (run_str b {|count(//div[@id='r1']//item)|})));
    t "rename in the footprint invalidates; equal result short-circuits"
      (fun () ->
        with_configs (fun () ->
            let b = load_page two_region_page in
            let doc = B.document b in
            let r1 = Option.get (Dom.get_element_by_id doc "r1") in
            Reactive.reset_counters ();
            B.dispatch b ~target:r1 "onclick";
            (* renaming an item changes what //item finds... *)
            ignore (run b {|rename node (//div[@id='r1']/item)[1] as 'other'|});
            B.dispatch b ~target:r1 "onclick";
            check Alcotest.int "re-ran after rename" 2 (counter "reruns");
            (* a repeat dispatch pays the recording back with a skip (so
               the adaptive bypass keeps recording)... *)
            B.dispatch b ~target:r1 "onclick";
            check Alcotest.int "skipped" 1 (counter "skips");
            (* ...and renaming something //item never matched re-runs but
               produces the same count: the unchanged short-circuit fires *)
            ignore (run b {|rename node //div[@id='r1']/other as 'third'|});
            B.dispatch b ~target:r1 "onclick";
            check Alcotest.bool "unchanged result detected" true
              (counter "unchanged" >= 1)));
    t "updating listeners poison and always re-run" (fun () ->
        with_configs (fun () ->
            let b =
              load_page
                {|<html><head><script type="text/xquery">
                  declare updating function local:w($evt, $obj) {
                    insert node <hit/> into $obj
                  };
                  on event "onclick" at //div attach listener local:w
                  </script></head><body><div id="r1"/></body></html>|}
            in
            let doc = B.document b in
            let r1 = Option.get (Dom.get_element_by_id doc "r1") in
            Reactive.reset_counters ();
            B.dispatch b ~target:r1 "onclick";
            B.dispatch b ~target:r1 "onclick";
            B.dispatch b ~target:r1 "onclick";
            check Alcotest.int "every dispatch hit" 3
              (List.length (Dom.get_elements_by_local_name doc "hit"));
            check Alcotest.int "never skipped" 0 (counter "skips");
            check Alcotest.bool "poison latched" true
              (counter "poisoned-runs" >= 1)));
    t "--no-incremental ablation disables skipping" (fun () ->
        with_configs ~incremental:false (fun () ->
            let b = load_page two_region_page in
            let doc = B.document b in
            let r1 = Option.get (Dom.get_element_by_id doc "r1") in
            Reactive.reset_counters ();
            B.dispatch b ~target:r1 "onclick";
            B.dispatch b ~target:r1 "onclick";
            check Alcotest.int "no skips" 0 (counter "skips");
            check Alcotest.int "every dispatch ran" 2 (counter "reruns")));
    t "stats() exposes the reactive element" (fun () ->
        with_configs (fun () ->
            let b = load_page two_region_page in
            check Alcotest.string "enabled" "true"
              (run_str b {|string(browser:stats()/reactive/@enabled)|});
            check Alcotest.string "listeners tracked" "true"
              (run_str b
                 {|string(number(browser:stats()/reactive/@listeners) >= 1)|})));
  ]

(* ------------------------------------------------------------------ *)
(* Listener churn: registrations must not leak memos                   *)

let churn_tests =
  [
    t "attach/detach churn keeps the memo table flat" (fun () ->
        with_configs (fun () ->
            let b =
              load_page
                {|<html><head><script type="text/xquery">
                  declare function local:w($evt, $obj) { count($obj//item) };
                  </script></head><body><div id="r1"/></body></html>|}
            in
            let base = Reactive.table_size () in
            ignore (run b {|on event "onclick" at //div attach listener local:w|});
            check Alcotest.int "attach registers" (base + 1)
              (Reactive.table_size ());
            ignore (run b {|on event "onclick" at //div detach listener local:w|});
            check Alcotest.int "detach drops" base (Reactive.table_size ());
            for _ = 1 to 50 do
              ignore
                (run b {|on event "onclick" at //div attach listener local:w|});
              ignore
                (run b {|on event "onclick" at //div detach listener local:w|})
            done;
            check Alcotest.int "no leak across churn" base
              (Reactive.table_size ())));
    t "same-name replacement drops the old registration" (fun () ->
        with_configs (fun () ->
            let b =
              load_page
                {|<html><head><script type="text/xquery">
                  declare function local:w($evt, $obj) { count($obj//item) };
                  </script></head><body><div id="r1"/></body></html>|}
            in
            let base = Reactive.table_size () in
            for _ = 1 to 20 do
              ignore
                (run b {|on event "onclick" at //div attach listener local:w|})
            done;
            (* one live registration: each re-attach replaced the last *)
            check Alcotest.int "replacement is not a leak" (base + 1)
              (Reactive.table_size ());
            ignore (run b {|on event "onclick" at //div detach listener local:w|});
            check Alcotest.int "drained" base (Reactive.table_size ())));
  ]

(* ------------------------------------------------------------------ *)
(* Differential property: incremental ≡ full re-evaluation             *)

(* A scenario: a page of regions, random listeners (pure, conditionally
   updating, always updating), and a random stream of mutations
   interleaved with event dispatches. Whatever the configuration —
   incremental on or off, compiled or tree-walking, streaming or
   materialized — the final document and hit counts must agree. *)

type listener_kind = L_pure_count | L_pure_sum | L_cond_write | L_always_write

type mutation_op =
  | M_insert_item of int
  | M_delete_item of int
  | M_rename_val of int
  | M_set_attr of int * int
  | M_replace_text of int * int

type scenario = {
  regions : int;
  listeners : listener_kind list;  (* all attached at every region div *)
  ops : (mutation_op * int list) list;
      (* mutation, then regions to dispatch to *)
}

let listener_body i = function
  | L_pure_count ->
      Printf.sprintf
        "declare function local:l%d($evt, $obj) { count($obj//item) };" i
  | L_pure_sum ->
      Printf.sprintf
        "declare function local:l%d($evt, $obj) { sum($obj//val) };" i
  | L_cond_write ->
      Printf.sprintf
        "declare updating function local:l%d($evt, $obj) { if \
         (count($obj//item) > 2) then insert node <over/> into $obj else () \
         };"
        i
  | L_always_write ->
      Printf.sprintf
        "declare updating function local:l%d($evt, $obj) { insert node \
         <hit/> into $obj };"
        i

let scenario_page s =
  let decls =
    String.concat "\n" (List.mapi listener_body s.listeners)
  in
  let attaches =
    String.concat "\n"
      (List.mapi
         (fun i _ ->
           Printf.sprintf
             {|on event "go" at //div attach listener local:l%d|} i)
         s.listeners)
  in
  let regions =
    String.concat ""
      (List.init s.regions (fun r ->
           Printf.sprintf
             {|<div id="r%d"><val>%d</val><item n="a"/><item n="b"/></div>|} r
             (r + 1)))
  in
  Printf.sprintf
    {|<html><head><script type="text/xquery">%s
      { %s }</script></head><body>%s</body></html>|}
    decls attaches regions

let op_stmt s = function
  | M_insert_item r ->
      Printf.sprintf {|insert node <item n="new"/> into //div[@id='r%d']|}
        (r mod s.regions)
  | M_delete_item r ->
      Printf.sprintf {|delete node (//div[@id='r%d']/item)[1]|}
        (r mod s.regions)
  | M_rename_val r ->
      Printf.sprintf {|rename node (//div[@id='r%d']/val)[1] as 'val2'|}
        (r mod s.regions)
  | M_set_attr (r, v) ->
      Printf.sprintf
        {|insert node attribute m {'%d'} into //div[@id='r%d']|} v
        (r mod s.regions)
  | M_replace_text (r, v) ->
      Printf.sprintf {|replace value of node (//div[@id='r%d']/val)[1] with '%d'|}
        (r mod s.regions) v

let run_scenario ~incremental ~compiled ~streaming s =
  with_configs ~incremental ~compiled ~streaming (fun () ->
      let b = load_page (scenario_page s) in
      let doc = B.document b in
      let region r =
        Option.get
          (Dom.get_element_by_id doc (Printf.sprintf "r%d" (r mod s.regions)))
      in
      (* warm every memo *)
      for r = 0 to s.regions - 1 do
        B.dispatch b ~target:(region r) "go"
      done;
      List.iter
        (fun (op, dispatches) ->
          (match run b (op_stmt s op) with
          | _ -> ()
          | exception Xq_error.Error _ ->
              (* e.g. deleting from an emptied region: fine, both the
                 incremental and the full run see the same error *)
              ());
          List.iter (fun r -> B.dispatch b ~target:(region r) "go") dispatches)
        s.ops;
      Dom.serialize doc)

let scenario_gen =
  Q.Gen.(
    let kind =
      oneofl [ L_pure_count; L_pure_sum; L_cond_write; L_always_write ]
    in
    let op =
      oneof
        [
          map (fun r -> M_insert_item r) (int_bound 3);
          map (fun r -> M_delete_item r) (int_bound 3);
          map (fun r -> M_rename_val r) (int_bound 3);
          map2 (fun r v -> M_set_attr (r, v)) (int_bound 3) (int_bound 9);
          map2 (fun r v -> M_replace_text (r, v)) (int_bound 3) (int_bound 9);
        ]
    in
    let step = pair op (list_size (int_bound 3) (int_bound 3)) in
    map3
      (fun regions listeners ops ->
        { regions = 2 + regions; listeners; ops })
      (int_bound 2)
      (list_size (int_range 1 3) kind)
      (list_size (int_range 1 6) step))

let scenario_print s =
  Printf.sprintf "{regions=%d; listeners=%d; ops=%d}" s.regions
    (List.length s.listeners) (List.length s.ops)

let scenario_arb = Q.make ~print:scenario_print scenario_gen

let differential_tests =
  [
    qt ~count:20 "incremental == full across engine configs" scenario_arb
      (fun s ->
        let oracle =
          run_scenario ~incremental:false ~compiled:true ~streaming:true s
        in
        List.for_all
          (fun (incremental, compiled, streaming) ->
            let got = run_scenario ~incremental ~compiled ~streaming s in
            if String.equal got oracle then true
            else
              Q.Test.fail_reportf
                "config {inc=%b; compiled=%b; streaming=%b} diverged:\n\
                 oracle: %s\n\
                 got:    %s"
                incremental compiled streaming oracle got)
          [
            (true, true, true);
            (true, true, false);
            (true, false, true);
            (true, false, false);
            (false, true, false);
            (false, false, true);
            (false, false, false);
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Render memo                                                         *)

let render_tests =
  [
    t "render_cached returns the plain rendering and memoizes" (fun () ->
        let b = load_page {|<html><body><p>hello world</p></body></html>|} in
        let doc = B.document b in
        let plain = Xqib.Renderer.render doc in
        check Alcotest.string "first" plain (B.render b);
        check Alcotest.string "memo hit" plain (B.render b);
        ignore (run b {|insert node <p>more</p> into //body|});
        let plain2 = Xqib.Renderer.render doc in
        check Alcotest.bool "render changed" true (plain <> plain2);
        check Alcotest.string "after mutation" plain2 (B.render b));
  ]

let suite =
  batching_tests @ xquf_order_tests @ skip_tests @ churn_tests
  @ differential_tests @ render_tests
