(* The closure compiler: compiled-vs-interpreted equivalence across
   the full {compiled} x {streaming} ablation matrix (unit and QCheck),
   hot-shape edge cases (integer arithmetic, range-fused FLWOR, the
   predicate-free path step), dispatch of user-function calls through
   the context's compiled-function table, and the browser wiring
   (page scripts and per-event listeners run compiled code;
   browser:stats() reports the compile counters). *)

open Xquery
module A = Xdm_atomic
module I = Xdm_item
module Q = QCheck

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

let with_compiled compiled f =
  let prev = Engine.compiled_eval_enabled () in
  Engine.set_compiled_eval compiled;
  Fun.protect ~finally:(fun () -> Engine.set_compiled_eval prev) f

let with_streaming streaming f =
  let prev = Eval.streaming_enabled () in
  Eval.set_streaming streaming;
  Fun.protect ~finally:(fun () -> Eval.set_streaming prev) f

(* attributes and element text so paths, predicates, and casts all
   have something to chew on *)
let doc =
  "<r><a><x k='1'>1</x><x k='2'>2</x></a><a><x k='3'>3</x></a><b>7</b></r>"

let outcome ~compiled ~streaming src =
  with_compiled compiled (fun () ->
      with_streaming streaming (fun () ->
          match
            I.to_display_string
              (Engine.eval_string ~context_item:(I.Node (Dom.of_string doc)) src)
          with
          | v -> Ok v
          | exception Xq_error.Error e -> Error e.Xq_error.code))

(* the tree-walking evaluator with streaming off is the oracle; every
   other cell of the ablation matrix must agree with it *)
let all_configs_agree src =
  let oracle = outcome ~compiled:false ~streaming:false src in
  List.for_all
    (fun (c, s) -> outcome ~compiled:c ~streaming:s src = oracle)
    [ (false, true); (true, false); (true, true) ]

(* assert agreement across the matrix, and optionally pin the value *)
let matrix ?expected name src =
  t name (fun () ->
      check Alcotest.bool ("all configs agree: " ^ src) true
        (all_configs_agree src);
      match expected with
      | Some e ->
          check
            (Alcotest.result Alcotest.string Alcotest.string)
            src (Ok e)
            (outcome ~compiled:true ~streaming:true src)
      | None -> ())

(* ---------- targeted equivalence: hot shapes and fallbacks ---------- *)

let unit_equivalence_tests =
  [
    (* integer fast paths, including the by-zero generic fallbacks *)
    matrix ~expected:"7" "integer add" "3 + 4";
    matrix ~expected:"-6" "integer multiply" "2 * -3";
    matrix ~expected:"2" "integer mod" "42 mod 5";
    matrix ~expected:"-2" "negative mod keeps sign" "-42 mod 5";
    matrix ~expected:"8" "integer idiv" "17 idiv 2";
    matrix ~expected:"-8" "idiv truncates toward zero" "-17 idiv 2";
    matrix "idiv by zero errors identically" "1 idiv 0";
    matrix "mod by zero errors identically" "1 mod 0";
    matrix ~expected:"3.5" "div leaves the fast path" "7 div 2";
    matrix ~expected:"true" "integer value comparison" "3 lt 4";
    matrix ~expected:"false" "integer eq" "3 eq 4";
    matrix "mixed value comparison errors identically" "'a' eq 1";
    matrix ~expected:"" "empty operand yields empty" "() + 1";
    matrix "arith on a two-item sequence errors" "(1, 2) + 3";
    matrix "bad cast errors identically" "xs:integer('abc')";
    matrix ~expected:"7" "identity integer cast" "xs:integer(7)";
    matrix ~expected:"3" "cast from attribute text" "xs:integer((//x)[3]/@k)";
    (* range-fused FLWOR *)
    matrix ~expected:"30" "sum over a range"
      "sum(for $i in 1 to 5 return $i * 2)";
    matrix ~expected:"" "empty range" "for $i in 5 to 3 return $i";
    matrix ~expected:"15 26 37" "positional variable over a range"
      "string-join(for $i at $p in 5 to 7 return string($p * 10 + $i), ' ')";
    matrix ~expected:"6" "range over singleton bounds" "sum(1 to 3)";
    (* predicate-free path hot shape: forward axes, reverse fallback *)
    matrix ~expected:"1 2 3" "attribute step over iteration"
      "string-join(for $v in //x return string($v/@k), ' ')";
    matrix ~expected:"3" "descendant step from the root" "count(//x)";
    matrix ~expected:"1" "child chain" "count(/r/a/x[position() le 1]/../x[2])";
    matrix ~expected:"2" "reverse axis still merges doc order"
      "count(//x[@k='2']/ancestor::*)";
    matrix ~expected:"7" "following axis" "string((//x)[3]/following::b)";
    (* shapes that lower to opaque nodes *)
    matrix ~expected:"3 2 1" "order-by FLWOR delegates to the oracle"
      "string-join(for $v in //x order by xs:integer($v/@k) descending \
       return string($v), ' ')";
    matrix ~expected:"int" "typeswitch delegates"
      "typeswitch (3) case xs:integer return 'int' default return 'other'";
    matrix ~expected:"<a/>" "transform delegates"
      "copy $c := <a><b/></a> modify delete node $c/b return $c";
    matrix ~expected:"true" "quantifier delegates"
      "some $v in //x satisfies $v = '2'";
    (* constructors *)
    matrix ~expected:"<e k=\"3\">12</e>" "direct constructor with enclosed"
      "<e k='{count(//x)}'>{3 * 4}</e>";
    matrix ~expected:"<f>1 2 3</f>" "computed element over a path"
      "element f { data(//x/@k) }";
    (* variable scoping and shadowing through frame slots *)
    matrix ~expected:"9" "let shadows let"
      "let $v := 2 let $v := $v + 7 return $v";
    matrix ~expected:"12 22 32" "inner for shadows outer"
      "string-join(for $i in 1 to 3 return string(sum(for $i in $i * 10 to \
       $i * 10 + 2 return 0) + $i * 10 + 2), ' ')";
    matrix ~expected:"6" "where clause filters"
      "sum(for $i in 1 to 3 where $i ge 1 return $i)";
    matrix ~expected:"5" "free variable resolves through the context"
      "let $v := 5 return string-join(for $w in 1 to 1 return string($v), '')";
  ]

(* ---------- compiled user functions ---------- *)

let function_tests =
  [
    t "declared functions compile and agree" (fun () ->
        let src =
          "declare function local:sq($n) { $n * $n }; \
           sum(for $i in 1 to 4 return local:sq($i))"
        in
        let run compiled =
          with_compiled compiled (fun () ->
              I.to_display_string (Engine.eval_string src))
        in
        check Alcotest.string "value" "30" (run true);
        check Alcotest.string "modes agree" (run false) (run true));
    t "compile counters record the function" (fun () ->
        let before = List.assoc "functions" (Compile.stats ()) in
        ignore
          (with_compiled true (fun () ->
               Engine.compile ~static:(Engine.default_static ())
                 "declare function local:id($x) { $x }; local:id(1)"));
        let after = List.assoc "functions" (Compile.stats ()) in
        check Alcotest.bool "functions counter advanced" true (after > before));
    t "calls dispatch through the context's compiled-fn table" (fun () ->
        with_compiled true (fun () ->
            let c =
              Engine.compile ~static:(Engine.default_static ())
                "declare function local:f($x) { $x + 1 }; local:f(1)"
            in
            let ctx = Engine.context_for c in
            check Alcotest.bool "table populated" true
              (Hashtbl.length ctx.Dynamic_context.compiled_fns > 0);
            (* prove call_function consults the table: plant a marker *)
            let key =
              Dynamic_context.fn_key
                (Xmlb.Qname.make ~uri:Xmlb.Qname.Ns.local "f")
                ~arity:1
            in
            Hashtbl.replace ctx.Dynamic_context.compiled_fns key
              (fun _ _ -> [ I.Atomic (A.String "marker") ]);
            check Alcotest.string "marker impl invoked" "marker"
              (I.to_display_string
                 (Eval.call_function ctx
                    (Xmlb.Qname.make ~uri:Xmlb.Qname.Ns.local "f")
                    [ [ I.Atomic (A.Integer 1) ] ]))));
    t "interpreted mode leaves the table empty" (fun () ->
        with_compiled false (fun () ->
            let c =
              Engine.compile ~static:(Engine.default_static ())
                "declare function local:f($x) { $x + 1 }; local:f(1)"
            in
            let ctx = Engine.context_for c in
            check Alcotest.int "no compiled fns" 0
              (Hashtbl.length ctx.Dynamic_context.compiled_fns)));
    t "recursion depth limit errors identically" (fun () ->
        let src =
          "declare function local:f($n) { if ($n = 0) then 0 else \
           local:f($n - 1) }; local:f(100000)"
        in
        let run compiled =
          with_compiled compiled (fun () ->
              match I.to_display_string (Engine.eval_string src) with
              | v -> Ok v
              | exception Xq_error.Error e -> Error e.Xq_error.code)
        in
        check Alcotest.bool "both exceed the depth limit" true
          (run true = run false && run true = Error "XQDY0054"));
    t "updating function bodies stay interpreted" (fun () ->
        (* an updating body cannot compile; the whole pipeline must
           still run it correctly through the fallback *)
        let src =
          {|<html><head><script type="text/xquery">
            declare updating function local:l($evt, $obj) {
              insert node <hit/> into //div[@id="log"]
            };
            on event "onclick" at //button attach listener local:l
            </script></head>
            <body><button id="b">go</button><div id="log"/></body></html>|}
        in
        with_compiled true (fun () ->
            let b = Xqib.Browser.create () in
            Xqib.Page.load b src;
            let doc = Xqib.Browser.document b in
            Xqib.Browser.click b
              (Option.get (Dom.get_element_by_id doc "b"));
            check Alcotest.int "listener fired" 1
              (List.length (Dom.get_elements_by_local_name doc "hit"))));
  ]

(* ---------- browser wiring and stats ---------- *)

let browser_tests =
  let page =
    {|<html><head><script type="text/xquery">
      declare function local:double($n) { $n * 2 };
      declare function local:on($evt, $obj) {
        browser:alert(string(local:double(21)))
      };
      on event "onclick" at //button attach listener local:on
      </script></head><body><button id="b">go</button></body></html>|}
  in
  let click_alerts compiled =
    with_compiled compiled (fun () ->
        let b = Xqib.Browser.create () in
        Xqib.Page.load b page;
        let doc = Xqib.Browser.document b in
        Xqib.Browser.click b (Option.get (Dom.get_element_by_id doc "b"));
        Xqib.Browser.alerts b)
  in
  [
    t "per-event listener runs compiled code" (fun () ->
        check
          (Alcotest.list Alcotest.string)
          "alert from compiled listener" [ "42" ] (click_alerts true);
        check
          (Alcotest.list Alcotest.string)
          "modes agree" (click_alerts false) (click_alerts true));
    t "browser:stats reports the compiled-eval switch" (fun () ->
        let flag compiled =
          with_compiled compiled (fun () ->
              let b = Xqib.Browser.create () in
              Xqib.Page.load b "<html><body/></html>";
              I.to_display_string
                (Xqib.Page.run_xquery b b.Xqib.Browser.top_window
                   "string(browser:stats()/@compiled-eval-enabled)"))
        in
        check Alcotest.string "on" "true" (flag true);
        check Alcotest.string "off" "false" (flag false));
    t "browser:stats exposes the compile counters" (fun () ->
        with_compiled true (fun () ->
            let b = Xqib.Browser.create () in
            Xqib.Page.load b page;
            let v =
              I.to_display_string
                (Xqib.Page.run_xquery b b.Xqib.Browser.top_window
                   "string(xs:integer(browser:stats()/compile/@functions) ge 1)")
            in
            check Alcotest.string "functions counter visible" "true" v));
  ]

(* ---------- QCheck: the ablation matrix always agrees ---------- *)

let src_gen =
  Q.Gen.(
    let closed_int =
      oneofl
        [
          "3"; "-2"; "0"; "count(//x)"; "count(//y)"; "xs:integer('7')";
          "string-length('abc')"; "sum(1 to 5)"; "(1 to 10)[3]";
          "xs:integer(//b)";
        ]
    in
    let open_int =
      oneofl
        [
          "$i"; "$i * 2 + 1"; "$i mod 3"; "$i idiv 2"; "10 - $i"; "$i * $i";
          "count(//x) + $i";
        ]
    in
    let path =
      oneofl [ "//x"; "//a/x"; "//x/@k"; "//b"; "(//x, //b)"; "//y" ]
    in
    let pred =
      oneofl
        [
          "1"; "2"; "position() = 2"; "position() le 2"; "last()";
          ". = '2'"; "@k = '2'"; "xs:integer(@k) ge 2"; "true()";
        ]
    in
    let cmp = oneofl [ "eq"; "ne"; "lt"; "le"; "gt"; "ge" ] in
    let gcmp = oneofl [ "="; "!="; "<"; "<="; ">"; ">=" ] in
    oneof
      [
        (* arithmetic and comparisons over closed integers *)
        map3
          (fun a b c -> Printf.sprintf "(%s) * (%s) mod ((%s) * 2 + 1)" a b c)
          closed_int closed_int closed_int;
        map3 (fun a c b -> Printf.sprintf "%s %s %s" a c b) closed_int cmp
          closed_int;
        map3 (fun a c b -> Printf.sprintf "%s %s %s" a c b) closed_int gcmp
          closed_int;
        (* FLWOR over ranges, with and without positional vars *)
        map3
          (fun lo hi body ->
            Printf.sprintf "sum(for $i in %d to %d return %s)" lo hi body)
          (int_range (-2) 3) (int_range 2 8) open_int;
        map2
          (fun hi body ->
            Printf.sprintf
              "string-join(for $i at $p in 1 to %d return string((%s) + $p), \
               ' ')"
              hi body)
          (int_range 0 5) open_int;
        (* FLWOR over paths with where *)
        map2
          (fun p v ->
            Printf.sprintf "for $v in %s where $v = '%s' return $v" p v)
          path
          (oneofl [ "1"; "2"; "7"; "z" ]);
        map2
          (fun p body ->
            Printf.sprintf
              "string-join(for $v in %s return string(%s), '.')" p body)
          path
          (oneofl
             [ "$v"; "$v/@k"; "string-length(string($v))"; "count($v/../x)" ]);
        (* paths and predicates *)
        map2 (fun p f -> Printf.sprintf "count(%s[%s])" p f) path pred;
        map2 (fun p f -> Printf.sprintf "(%s)[%s]" p f) path pred;
        map2 (fun p f -> Printf.sprintf "string-join(%s[%s], '.')" p f) path
          pred;
        (* conditionals, lets, quantifiers, order-by (opaque) *)
        map3
          (fun c a b -> Printf.sprintf "if (%s) then %s else %s" c a b)
          (oneofl [ "//x"; "//y"; "1 = 2"; "true()" ])
          closed_int closed_int;
        map2
          (fun a b -> Printf.sprintf "let $v := %s return ($v + 1) * (%s)" a b)
          closed_int closed_int;
        map2
          (fun p v ->
            Printf.sprintf "some $v in %s satisfies $v = '%s'" p v)
          path
          (oneofl [ "1"; "3"; "z" ]);
        map
          (fun d ->
            Printf.sprintf
              "string-join(for $v in //x order by xs:integer($v/@k) %s \
               return string($v), ' ')"
              d)
          (oneofl [ "ascending"; "descending" ]);
        (* constructors *)
        map2
          (fun a b -> Printf.sprintf "<e k='{%s}'>{%s}</e>" a b)
          closed_int closed_int;
        map (Printf.sprintf "element f { data(//x/@k), %s }") closed_int;
        (* casts that may fail: error codes must agree too *)
        map (Printf.sprintf "xs:integer(string(%s))")
          (oneofl [ "//b"; "(//x)[1]"; "'nope'"; "7" ]);
      ])

let equivalence_properties =
  [
    qt ~count:400 "compiled evaluation matches the oracle on all configs"
      (Q.make ~print:Fun.id src_gen)
      all_configs_agree;
  ]

let suite =
  unit_equivalence_tests @ function_tests @ browser_tests
  @ equivalence_properties
