(* The compiled-query cache: LRU/generation mechanics of Query_cache
   itself, Engine.compile_cached replay semantics, cache transparency
   (same results cache-on and cache-off), and the engine bugfixes that
   rode along: external variables must raise XPDY0002 when unbound and
   be type-coerced when bound, and optimized variable initializers must
   be re-registered after the rewrite pass. *)

open Xquery
module A = Xdm_atomic
module I = Xdm_item
module QC = Query_cache
module Q = QCheck

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

(* every test in this file starts from a clean, enabled engine cache *)
let fresh f =
  QC.set_enabled true;
  QC.clear Engine.query_cache;
  QC.reset_stats Engine.query_cache;
  Fun.protect ~finally:(fun () -> QC.set_enabled true) f

(* ---------- Query_cache mechanics ---------- *)

let cache_unit_tests =
  [
    t "find after add hits; unknown key misses" (fun () ->
        fresh (fun () ->
            let c : int QC.t = QC.create ~name:"t" ~capacity:4 () in
            QC.add c "k" ~cost:10 42;
            check Alcotest.(option int) "hit" (Some 42) (QC.find c "k");
            check Alcotest.(option int) "miss" None (QC.find c "nope");
            let s = QC.stats c in
            check Alcotest.int "hits" 1 s.QC.hits;
            check Alcotest.int "misses" 1 s.QC.misses;
            check Alcotest.int "cost saved" 10 s.QC.cost_saved));
    t "LRU eviction drops the least recently used" (fun () ->
        fresh (fun () ->
            let c : int QC.t = QC.create ~capacity:2 () in
            QC.add c "a" ~cost:1 1;
            QC.add c "b" ~cost:1 2;
            ignore (QC.find c "a");
            (* b is now least recently used *)
            QC.add c "c" ~cost:1 3;
            check Alcotest.(option int) "a kept" (Some 1) (QC.find c "a");
            check Alcotest.(option int) "b evicted" None (QC.find c "b");
            check Alcotest.(option int) "c kept" (Some 3) (QC.find c "c");
            check Alcotest.int "one eviction" 1 (QC.stats c).QC.evictions));
    t "invalidate makes old entries stale" (fun () ->
        fresh (fun () ->
            let c : int QC.t = QC.create () in
            QC.add c "k" ~cost:1 1;
            QC.invalidate c;
            check Alcotest.(option int) "stale entry misses" None (QC.find c "k");
            check Alcotest.int "slot was freed" 0 (QC.length c);
            QC.add c "k" ~cost:1 2;
            check Alcotest.(option int) "new generation hits" (Some 2)
              (QC.find c "k");
            check Alcotest.int "generation advanced" 1 (QC.generation c)));
    t "disabled cache stores and returns nothing" (fun () ->
        fresh (fun () ->
            let c : int QC.t = QC.create () in
            QC.set_enabled false;
            QC.add c "k" ~cost:1 1;
            check Alcotest.(option int) "no hit while disabled" None
              (QC.find c "k");
            check Alcotest.int "nothing stored" 0 (QC.length c);
            QC.set_enabled true;
            check Alcotest.(option int) "nothing was stored" None (QC.find c "k")));
    t "shrinking capacity evicts immediately" (fun () ->
        fresh (fun () ->
            let c : int QC.t = QC.create ~capacity:8 () in
            for i = 1 to 8 do
              QC.add c (string_of_int i) ~cost:1 i
            done;
            QC.set_capacity c 3;
            check Alcotest.int "down to 3" 3 (QC.length c)));
  ]

(* ---------- Engine.compile_cached ---------- *)

let qstats () = QC.stats Engine.query_cache

let engine_cache_tests =
  [
    t "second compile against a fresh context is a hit" (fun () ->
        fresh (fun () ->
            let src = "declare function local:f($x) { $x + 1 }; local:f(1)" in
            let c1 = Engine.compile_cached ~static:(Engine.default_static ()) src in
            let c2 = Engine.compile_cached ~static:(Engine.default_static ()) src in
            check Alcotest.int "one miss" 1 (qstats ()).QC.misses;
            check Alcotest.int "one hit" 1 (qstats ()).QC.hits;
            check Alcotest.int "cost = source bytes" (String.length src)
              (qstats ()).QC.cost_saved;
            check Alcotest.string "both artifacts run identically"
              (I.to_display_string (Engine.run c1))
              (I.to_display_string (Engine.run c2))));
    t "replay registers functions in the caller's context" (fun () ->
        fresh (fun () ->
            let src = "declare function local:g() { 7 }; local:g()" in
            ignore (Engine.compile_cached ~static:(Engine.default_static ()) src);
            let static = Engine.default_static () in
            let c = Engine.compile_cached ~static src in
            check Alcotest.int "hit" 1 (qstats ()).QC.hits;
            let g = Xmlb.Qname.make ~uri:Xmlb.Qname.Ns.local "g" in
            check Alcotest.bool "local:g visible in caller's context" true
              (Static_context.find_function static g ~arity:0 <> None);
            check Alcotest.string "cached program evaluates" "7"
              (I.to_display_string (Engine.run c))));
    t "replay re-declares global variables" (fun () ->
        fresh (fun () ->
            let src = "declare variable $v := 5; $v * 2" in
            ignore (Engine.compile_cached ~static:(Engine.default_static ()) src);
            let c = Engine.compile_cached ~static:(Engine.default_static ()) src in
            check Alcotest.string "hit run sees $v" "10"
              (I.to_display_string (Engine.run c))));
    t "different optimize flags are different entries" (fun () ->
        fresh (fun () ->
            let src = "1 + 2" in
            ignore (Engine.compile_cached ~optimize:true src);
            ignore (Engine.compile_cached ~optimize:false src);
            check Alcotest.int "no cross-flag hit" 2 (qstats ()).QC.misses));
    t "compiled-eval flag keys the cache (C1|/C0|)" (fun () ->
        fresh (fun () ->
            let src = "2 + 2" in
            let with_compiled b f =
              let prev = Engine.compiled_eval_enabled () in
              Engine.set_compiled_eval b;
              Fun.protect ~finally:(fun () -> Engine.set_compiled_eval prev) f
            in
            with_compiled true (fun () -> ignore (Engine.compile_cached src));
            with_compiled false (fun () -> ignore (Engine.compile_cached src));
            check Alcotest.int "no cross-mode hit" 2 (qstats ()).QC.misses;
            with_compiled true (fun () -> ignore (Engine.compile_cached src));
            check Alcotest.int "same-mode re-compile hits" 1 (qstats ()).QC.hits;
            (* the compiled-mode artifact carries closure code, the
               interpreted-mode one must not *)
            let has_code (c : Engine.compiled) =
              match c.Engine.code with Some _ -> true | None -> false
            in
            check Alcotest.bool "C1 entry carries code" true
              (has_code (with_compiled true (fun () -> Engine.compile_cached src)));
            check Alcotest.bool "C0 entry carries no code" false
              (has_code
                 (with_compiled false (fun () -> Engine.compile_cached src)))));
    t "different static contexts are different entries" (fun () ->
        fresh (fun () ->
            let src = "$w + 1" in
            let s1 = Engine.default_static () in
            Static_context.declare_variable s1 (Xmlb.Qname.make "w") None
              (Some (Ast.E_literal (A.Integer 1)));
            ignore (Engine.compile_cached ~static:s1 src);
            (* same source against a context without $w must not hit *)
            ignore
              (try
                 ignore (Engine.compile_cached ~static:(Engine.default_static ()) src)
               with Xq_error.Error _ -> ());
            check Alcotest.int "fingerprint kept them apart" 2
              (qstats ()).QC.misses));
    t "disabled engine cache still compiles correctly" (fun () ->
        fresh (fun () ->
            QC.set_enabled false;
            let c = Engine.compile_cached "2 + 3" in
            check Alcotest.string "plain compile path" "5"
              (I.to_display_string (Engine.run c));
            check Alcotest.int "nothing recorded" 0
              ((qstats ()).QC.hits + (qstats ()).QC.misses)));
    t "page reload compiles from the cache" (fun () ->
        fresh (fun () ->
            let page =
              "<html><head><script type=\"text/xquery\">declare function \
               local:h() { <hit/> }; insert node local:h() into \
               //div</script></head><body><div id=\"d\"/></body></html>"
            in
            let load () =
              let b = Xqib.Browser.create () in
              Xqib.Page.load b page;
              Xqib.Browser.run b;
              Dom.serialize (Xqib.Browser.document b)
            in
            let first = load () in
            let misses_after_first = (qstats ()).QC.misses in
            let second = load () in
            check Alcotest.bool "first load misses" true (misses_after_first > 0);
            check Alcotest.bool "second load hits" true ((qstats ()).QC.hits > 0);
            check Alcotest.int "no new misses on reload" misses_after_first
              (qstats ()).QC.misses;
            check Alcotest.string "identical DOM from cached compile" first
              second));
  ]

(* ---------- engine bugfixes: external variables ---------- *)

let external_var_tests =
  let x = Xmlb.Qname.make "x" in
  [
    t "unbound external variable raises XPDY0002" (fun () ->
        fresh (fun () ->
            let c = Engine.compile "declare variable $x external; $x + 1" in
            match Engine.run c with
            | _ -> Alcotest.fail "expected XPDY0002, got a value"
            | exception Xq_error.Error e ->
                check Alcotest.string "code" "XPDY0002" e.Xq_error.code));
    t "bound external variable evaluates" (fun () ->
        fresh (fun () ->
            let c = Engine.compile "declare variable $x external; $x + 1" in
            check Alcotest.string "bound value used" "6"
              (I.to_display_string
                 (Engine.run ~bindings:[ (x, [ I.Atomic (A.Integer 5) ]) ] c))));
    t "typed external binding is coerced" (fun () ->
        fresh (fun () ->
            let c =
              Engine.compile
                "declare variable $x as xs:double external; \
                 $x instance of xs:double"
            in
            (* integer 5 promotes to double under the declared type *)
            check Alcotest.string "promoted to double" "true"
              (I.to_display_string
                 (Engine.run ~bindings:[ (x, [ I.Atomic (A.Integer 5) ]) ] c))));
    t "ill-typed external binding is rejected" (fun () ->
        fresh (fun () ->
            let c =
              Engine.compile "declare variable $x as xs:string external; $x"
            in
            match Engine.run ~bindings:[ (x, [ I.Atomic (A.Integer 5) ]) ] c with
            | _ -> Alcotest.fail "expected a type error"
            | exception Xq_error.Error _ -> ()));
  ]

(* ---------- engine bugfix: optimized initializers re-registered ---------- *)

let reregistration_tests =
  [
    t "optimized variable initializer reaches the static context" (fun () ->
        fresh (fun () ->
            let static = Engine.default_static () in
            ignore (Engine.compile ~static "declare variable $v := 1 + 2; $v");
            match Static_context.global_variables static with
            | [ (_, _, Some (Ast.E_literal (A.Integer 3))) ] -> ()
            | [ (_, _, Some e) ] ->
                Alcotest.failf "initializer not optimized: %s"
                  (Ast_printer.expr_to_source e)
            | _ -> Alcotest.fail "expected exactly one global variable"));
    t "optimized function body reaches the static context" (fun () ->
        fresh (fun () ->
            let static = Engine.default_static () in
            ignore
              (Engine.compile ~static
                 "declare function local:k() { 2 + 3 }; local:k()");
            let k = Xmlb.Qname.make ~uri:Xmlb.Qname.Ns.local "k" in
            match Static_context.find_function static k ~arity:0 with
            (* the body parses as a scripting block around the expression *)
            | Some { Ast.body = Some (Ast.E_literal (A.Integer 5)); _ }
            | Some
                {
                  Ast.body = Some (Ast.E_block [ Ast.S_expr (Ast.E_literal (A.Integer 5)) ]);
                  _;
                } ->
                ()
            | Some { Ast.body = Some e; _ } ->
                Alcotest.failf "body not optimized: %s"
                  (Ast_printer.expr_to_source e)
            | _ -> Alcotest.fail "local:k not found"));
  ]

(* ---------- cache transparency ---------- *)

let transparency_doc = "<r><a><x>1</x><x>2</x></a><a><x>3</x></a></r>"

let eval_once src =
  let node = I.Node (Dom.of_string transparency_doc) in
  match I.to_display_string (Engine.eval_string ~context_item:node src) with
  | v -> Ok v
  | exception Xq_error.Error e -> Error e.Xq_error.code

(* an answer must not depend on whether it came from a cold compile, a
   warm hit, or no cache at all *)
let transparent src =
  fresh (fun () ->
      let cold = eval_once src in
      let warm = eval_once src in
      QC.set_enabled false;
      let off = eval_once src in
      cold = warm && warm = off)

let src_gen =
  Q.Gen.(
    let small = int_range (-9) 9 in
    frequency
      [
        (2, map (fun i -> Printf.sprintf "%d + %d" i i) small);
        ( 2,
          map2
            (fun a b -> Printf.sprintf "let $v := %d return $v * %d" a b)
            small small );
        ( 2,
          map
            (fun p -> Printf.sprintf "count(//x[%s])" p)
            (oneofl [ "1"; "not(position()=1)"; ". = '2'"; "true()" ]) );
        ( 1,
          map
            (fun i ->
              Printf.sprintf
                "declare function local:f($n) { $n + %d }; local:f(%d)" i i)
            small );
        ( 1,
          map
            (fun i -> Printf.sprintf "string-join(for $i in 1 to %d return 'a', '')"
                        (abs i))
            small );
      ])

let transparency_properties =
  [
    qt ~count:120 "cold, warm and cache-off evaluation agree"
      (Q.make ~print:Fun.id src_gen)
      transparent;
    t "transparency on curated sources" (fun () ->
        List.iter
          (fun src ->
            check Alcotest.bool ("transparent: " ^ src) true (transparent src))
          [
            "count(//x[not(position()=1)])";
            "declare variable $v := 2; $v + 1";
            "copy $c := <a><b/><b/></a> modify delete node $c/b[1] \
             return count($c/b)";
            "concat('a', 'b', 'c')";
            "let $x := 1 return $x + 2";
          ]);
  ]

let suite =
  cache_unit_tests @ engine_cache_tests @ external_var_tests
  @ reregistration_tests @ transparency_properties
