(* XQuery Update Facility: pending update lists, snapshot semantics,
   conflict detection, transform expressions (paper §3.2). *)

open Xquery
module I = Xdm_item

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let run_str src = I.to_display_string (Engine.eval_string src)
let eq name expected src = t name (fun () -> check Alcotest.string src expected (run_str src))

let expect_error code src =
  match Engine.eval_string src with
  | exception Xq_error.Error e -> check Alcotest.string src code e.Xq_error.code
  | r -> Alcotest.failf "%s: expected %s, got %s" src code (I.to_display_string r)

(* run updates against a shared tree and observe the tree afterwards *)
let update_and_show update =
  let src =
    Printf.sprintf
      "let $d := <lib><book title='old'><price>10</price></book></lib> return (%s, $d)"
      update
  in
  run_str src

let insert_tests =
  [
    t "insert into appends" (fun () ->
        check Alcotest.string "insert"
          "<lib><book title=\"old\"><price>10</price></book><book title=\"new\"/></lib>"
          (update_and_show "insert node <book title='new'/> into $d"));
    t "insert as first into" (fun () ->
        check Alcotest.string "first"
          "<lib><book title=\"new\"/><book title=\"old\"><price>10</price></book></lib>"
          (update_and_show "insert node <book title='new'/> as first into $d"));
    t "insert as last into" (fun () ->
        check Alcotest.string "last"
          "<lib><book title=\"old\"><price>10</price></book><z/></lib>"
          (update_and_show "insert node <z/> as last into $d"));
    t "insert before" (fun () ->
        check Alcotest.string "before"
          "<lib><z/><book title=\"old\"><price>10</price></book></lib>"
          (update_and_show "insert node <z/> before $d/book"));
    t "insert after" (fun () ->
        check Alcotest.string "after"
          "<lib><book title=\"old\"><price>10</price></book><z/></lib>"
          (update_and_show "insert node <z/> after $d/book"));
    t "insert several nodes" (fun () ->
        check Alcotest.string "several"
          "<lib><book title=\"old\"><price>10</price></book><a/><b/></lib>"
          (update_and_show "insert nodes (<a/>, <b/>) into $d"));
    t "insert attribute node" (fun () ->
        check Alcotest.string "attr"
          "<lib x=\"1\"><book title=\"old\"><price>10</price></book></lib>"
          (update_and_show "insert node attribute x { 1 } into $d"));
    t "inserted nodes are copies" (fun () ->
        (* the inserted node is a fresh copy: mutating the original
           afterwards must not affect the tree *)
        check Alcotest.string "copy semantics" "<d><n/></d> <n>mut</n>"
          (run_str
             "let $n := <n/> let $d := <d/> return \
              (insert node $n into $d, replace value of node $n with 'mut', $d, $n)"));
    t "paper example: insert book into library (snapshot: invisible inside)" (fun () ->
        check Alcotest.string "starwars"
          "0 <books><book title=\"Starwars\"/></books>"
          (run_str
             "let $lib := <books/> return (insert node <book title=\"Starwars\"/> into $lib, \
              count($lib/book[@title='Starwars']), $lib)"));
    t "insert into non-element fails" (fun () ->
        expect_error "XUTY0005"
          "let $d := <a>t</a> return insert node <b/> into $d/text()");
    t "insert attribute before node fails" (fun () ->
        expect_error "XUTY0005"
          "let $d := <a><b/></a> return insert node attribute x {1} before $d/b");
  ]

let delete_replace_rename_tests =
  [
    t "delete node" (fun () ->
        check Alcotest.string "deleted" "<lib/>"
          (update_and_show "delete node $d/book"));
    t "delete several via path" (fun () ->
        (* count inside the query still sees both (snapshot), the
           returned tree does not *)
        check Alcotest.string "all gone" "2 <r><y/></r>"
          (run_str
             "let $d := <r><x/><x/><y/></r> return (delete nodes $d/x, count($d/x), $d)"));
    t "delete attribute" (fun () ->
        check Alcotest.string "no attr"
          "<lib><book><price>10</price></book></lib>"
          (update_and_show "delete node $d/book/@title"));
    t "replace node" (fun () ->
        check Alcotest.string "replaced"
          "<lib><dvd/></lib>"
          (update_and_show "replace node $d/book with <dvd/>"));
    t "replace value of element (paper price example)" (fun () ->
        check Alcotest.string "1500"
          "<lib><book title=\"old\"><price>1500</price></book></lib>"
          (update_and_show "replace value of node $d/book/price with 1500"));
    t "replace value of attribute" (fun () ->
        check Alcotest.string "attr value"
          "<lib><book title=\"fresh\"><price>10</price></book></lib>"
          (update_and_show "replace value of node $d/book/@title with 'fresh'"));
    t "rename node" (fun () ->
        check Alcotest.string "renamed"
          "<lib><tome title=\"old\"><price>10</price></tome></lib>"
          (update_and_show "rename node $d/book as 'tome'"));
    t "rename attribute" (fun () ->
        check Alcotest.string "renamed attr"
          "<lib><book name=\"old\"><price>10</price></book></lib>"
          (update_and_show "rename node $d/book/@title as 'name'"));
    t "replace attribute with attribute" (fun () ->
        check Alcotest.string "swap"
          "<lib><book x=\"9\"><price>10</price></book></lib>"
          (update_and_show "replace node $d/book/@title with attribute x { 9 }"));
    t "replace target must be single node" (fun () ->
        expect_error "XUTY0005"
          "let $d := <r><a/><a/></r> return replace node $d/a with <b/>");
  ]

let snapshot_tests =
  [
    t "updates invisible until end of query (paper §3.2)" (fun () ->
        check Alcotest.string "count before apply" "0"
          (run_str
             "let $d := <lib/> return (insert node <book/> into $d, count($d/book)) [1] cast as xs:string"));
    t "multiple updates apply together" (fun () ->
        check Alcotest.string "both"
          "<lib><a/><b/></lib>"
          (run_str
             "let $d := <lib/> return (insert node <a/> into $d, insert node <b/> into $d, $d)"));
    t "delete and insert on same tree" (fun () ->
        check Alcotest.string "swap"
          "<r><new/></r>"
          (run_str
             "let $d := <r><old/></r> return (delete node $d/old, insert node <new/> into $d, $d)"));
    t "conflicting renames raise XUDY0015" (fun () ->
        expect_error "XUDY0015"
          "let $d := <r><a/></r> return (rename node $d/a as 'x', rename node $d/a as 'y')");
    t "conflicting replace value raises XUDY0017" (fun () ->
        expect_error "XUDY0017"
          "let $d := <r><a/></r> return (replace value of node $d/a with '1', replace value of node $d/a with '2')");
    t "conflicting replace node raises XUDY0017" (fun () ->
        expect_error "XUDY0017"
          "let $d := <r><a/></r> return (replace node $d/a with <x/>, replace node $d/a with <y/>)");
    t "replaceElementContent applies after inserts (XQUF §3.2.2)" (fun () ->
        (* the insert lands first (phase a), then replace value of the
           element — upd:replaceElementContent, phase d — wipes all
           content including the freshly inserted node *)
        check Alcotest.string "ordering"
          "<r>base</r>"
          (run_str
             "let $d := <r><junk/></r> return (insert node <a/> into $d, replace value of node $d with 'base', $d)"));
    t "updating function used by query" (fun () ->
        check Alcotest.string "fn update"
          "<cart><item n=\"1\"/></cart>"
          (run_str
             "declare updating function local:add($c) { insert node <item n='1'/> into $c }; \
              let $cart := <cart/> return (local:add($cart), $cart)"));
  ]

let transform_tests =
  [
    eq "copy-modify-return leaves source untouched" "old new"
      "let $d := <v>old</v> \
       let $new := copy $c := $d modify replace value of node $c with 'new' return $c \
       return (string($d), string($new))";
    eq "transform with insert" "2"
      "let $d := <r><a/></r> return count((copy $c := $d modify insert node <b/> into $c return $c)/*)";
    eq "transform result is a copy" "false"
      "let $d := <r/> return (copy $c := $d modify () return $c) is $d";
    eq "multiple copy bindings" "x y"
      "let $a := <a>x</a> let $b := <b>y</b> return \
       string-join(copy $c := $a, $e := $b modify () return (string($c), string($e)), ' ')";
  ]

let suite = insert_tests @ delete_replace_rename_tests @ snapshot_tests @ transform_tests
