(* Optimizer: the positional-predicate guard (regression for the
   //x-rewrite miscompilation), the fixpoint driver, and the individual
   rewrite rules — each checked both at the AST level and by comparing
   optimized against unoptimized evaluation. *)

open Xquery
module A = Xdm_atomic
module I = Xdm_item
module Q = QCheck

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

(* a document where per-child-list positions differ from positions over
   the merged descendant set: <a> lists of 2 and 1 <x> children *)
let pos_doc = "<r><a><x>1</x><x>2</x></a><a><x>3</x></a></r>"

let eval_doc ?(doc = pos_doc) ~optimize src =
  let node = I.Node (Dom.of_string doc) in
  I.to_display_string (Engine.eval_string ~optimize ~context_item:node src)

let both_ways ?doc name expected src =
  t name (fun () ->
      check Alcotest.string ("unoptimized " ^ src) expected
        (eval_doc ?doc ~optimize:false src);
      check Alcotest.string ("optimized " ^ src) expected
        (eval_doc ?doc ~optimize:true src))

let parse_expr src =
  Parser.parse_expression (Engine.default_static ()) src

(* ---------- positional-predicate guard (satellite bugfix) ---------- *)

(* pre-fix, has_positional only looked inside arithmetic, comparisons
   and and/or, so any of these predicates slipped past the guard and
   the //-rewrite regrouped positions over the whole descendant set *)
let positional_regressions =
  [
    (* not(position()=1): per list keeps the 2nd x of the first <a>;
       over the merged set it would keep 2 of 3 *)
    both_ways "position() under fn:not is positional" "1"
      "count(//x[not(position()=1)])";
    both_ways "position()=last() under fn:not" "1"
      "count(//x[not(position()=last())])";
    (* position() buried in an if-condition *)
    both_ways "position() inside if-condition" "2"
      "count(//x[if (position()=1) then true() else false()])";
    (* a user function returning a number is a positional predicate *)
    both_ways "numeric user-function predicate" "2"
      "declare function local:one() { 1 }; count(//x[local:one()])";
    (* sanity: plain numeric predicates were always guarded *)
    both_ways "numeric literal predicate" "2" "count(//x[1])";
    (* the rewrite must still fire for genuinely non-positional
       predicates; same answer either way, and T2/T6-critical *)
    both_ways "value predicate unaffected" "1" "count(//x[. = '2'])";
    both_ways "attribute predicate unaffected"
      "2"
      "count(//i[@c='e'])"
      ~doc:"<r><i c='e'/><i c='o'/><i c='e'/></r>";
    (* updating bodies: rules skip the update node itself but its
       target path is still rewritten — the guard must hold there too *)
    both_ways "positional predicate inside update target" "2"
      "copy $c := <a><p><b/><b/></p><p><b/></p></a> \
       modify delete nodes $c//b[not(position()=1)] \
       return count($c//b)";
    t "has_positional is conservative on unknown forms" (fun () ->
        let positional src = Optimizer.has_positional [ parse_expr src ] in
        check Alcotest.bool "position()" true (positional "position()");
        check Alcotest.bool "last()" true (positional "last()");
        check Alcotest.bool "not(position()=1)" true
          (positional "not(position()=1)");
        check Alcotest.bool "numeric literal" true (positional "2");
        check Alcotest.bool "variable (unknown value)" true (positional "$n");
        check Alcotest.bool "arithmetic" true (positional "1+1");
        check Alcotest.bool "user call (opaque)" true (positional "local:f()");
        check Alcotest.bool "attribute comparison" false
          (positional "@class='even'");
        check Alcotest.bool "contains()" false
          (positional "contains(., 'love')");
        check Alcotest.bool "starts-with()" false
          (positional "starts-with(@id, 'i1')");
        check Alcotest.bool "child path" false (positional "x");
        check Alcotest.bool "boolean ops without position" false
          (positional "@a='1' and not(@b)"));
  ]

(* ---------- fixpoint driver ---------- *)

let is_literal v = function
  | Ast.E_literal a -> a = v
  | _ -> false

let fixpoint_tests =
  [
    t "let-inline then const-fold needs two passes" (fun () ->
        let e = parse_expr "let $x := 1 return $x + 2" in
        check Alcotest.bool "one pass is not enough" false
          (is_literal (A.Integer 3) (Optimizer.optimize_expr ~max_passes:1 e));
        check Alcotest.bool "fixpoint folds to 3" true
          (is_literal (A.Integer 3) (Optimizer.optimize_expr e)));
    t "chained lets fold all the way down" (fun () ->
        let e =
          parse_expr "let $a := 2 return let $b := 3 return $a * $b + 1"
        in
        check Alcotest.bool "folds to 7" true
          (is_literal (A.Integer 7) (Optimizer.optimize_expr e)));
    t "pass budget is respected" (fun () ->
        ignore (Optimizer.optimize_expr ~max_passes:2
                  (parse_expr "let $x := 1 return $x + 2"));
        check Alcotest.bool "pass count within budget" true
          (Optimizer.last_passes () <= 2));
    both_ways "let-inline preserves semantics" "3"
      "let $x := 1 return $x + 2";
    both_ways "shadowed let is not inlined wrongly" "5"
      "let $x := 1 return let $x := 4 return $x + 1";
    both_ways "for-shadowing stops substitution" "6"
      "let $x := 9 return sum(for $x in (1,2,3) return $x)";
    both_ways "scripting block blocks inlining" "2"
      "let $x := 1 return { set $x := $x + 1; $x }";
  ]

(* ---------- individual rewrites ---------- *)

let rewrite_tests =
  [
    t "concat over literals folds to one string" (fun () ->
        check Alcotest.bool "folded" true
          (is_literal (A.String "abc")
             (Optimizer.optimize_expr (parse_expr "concat('a', 'b', 'c')"))));
    t "concat with non-literal argument is untouched" (fun () ->
        match Optimizer.optimize_expr (parse_expr "concat('a', $v)") with
        | Ast.E_call (_, _) -> ()
        | e ->
            Alcotest.failf "expected a call, got %s"
              (Ast_printer.expr_to_source e));
    t "general comparison of literals becomes value comparison" (fun () ->
        match Optimizer.optimize_expr (parse_expr "1 = 2") with
        | Ast.E_value_comp (Ast.Eq, Ast.E_literal _, Ast.E_literal _) -> ()
        | e ->
            Alcotest.failf "expected a value comparison, got %s"
              (Ast_printer.expr_to_source e));
    t "singleton sequence unwraps" (fun () ->
        check Alcotest.bool "unwrapped" true
          (is_literal (A.Integer 5)
             (Optimizer.optimize_expr (Ast.E_sequence [ Ast.E_literal (A.Integer 5) ]))));
    t "empty members vanish and the rest flattens" (fun () ->
        match
          Optimizer.optimize_expr
            (Ast.E_sequence
               [
                 Ast.E_sequence [];
                 Ast.E_sequence
                   [ Ast.E_literal (A.Integer 1); Ast.E_literal (A.Integer 2) ];
               ])
        with
        | Ast.E_sequence [ Ast.E_literal _; Ast.E_literal _ ] -> ()
        | e ->
            Alcotest.failf "expected a flat 2-sequence, got %s"
              (Ast_printer.expr_to_source e));
    both_ways "concat fold matches runtime semantics" "1b2.5true"
      "concat(1, 'b', 2.5, true())";
    both_ways "general-to-value rewrite preserves semantics" "true"
      "if (2 = 2) then 'true' else 'false'";
    both_ways "errors in dead branches stay dead" "1"
      "if (true()) then 1 else 1 div 0";
  ]

(* ---------- random optimized-vs-unoptimized equivalence ---------- *)

(* Error-free expression sources: integer arithmetic without division,
   comparisons, conditionals, positional paths. The and/or constant
   folds may legally skip an erroring operand (short-circuit rules), so
   the generator never produces errors — equivalence is then exact. *)
let rec src_gen depth =
  Q.Gen.(
    if depth <= 0 then
      oneof
        [
          map string_of_int (int_range (-9) 9);
          oneofl
            [
              "'s'"; "true()"; "false()"; "()"; "position()"; "last()";
              "concat('a', 'b')";
            ];
        ]
    else
      frequency
        [
          (2, src_gen 0);
          ( 3,
            map2
              (fun op (a, b) -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "+"; "-"; "*" ])
              (pair
                 (map string_of_int (int_range (-9) 9))
                 (src_gen (depth - 1))) );
          ( 2,
            map2
              (fun op (a, b) -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "="; "!="; "<" ])
              (pair (map string_of_int (int_range (-9) 9)) (src_gen 0)) );
          ( 2,
            map2
              (fun op (a, b) -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "and"; "or" ])
              (pair (oneofl [ "true()"; "false()"; "1 = 1" ]) (src_gen 0)) );
          ( 2,
            map3
              (fun c a b -> Printf.sprintf "(if (%s) then %s else %s)" c a b)
              (oneofl [ "true()"; "false()"; "2 > 1" ])
              (src_gen (depth - 1)) (src_gen (depth - 1)) );
          ( 2,
            map
              (fun p -> Printf.sprintf "count(//x[%s])" p)
              (oneofl
                 [
                   "1"; "2"; "position() = 1"; "not(position() = 1)";
                   "position() = last()"; ". = '2'"; "true()";
                   "count(../x) > 1";
                 ]) );
          ( 1,
            map2
              (fun lit body ->
                Printf.sprintf "(let $v := %d return (%s + $v))" lit body)
              (int_range (-9) 9)
              (map string_of_int (int_range (-9) 9)) );
          ( 1,
            map
              (fun b -> Printf.sprintf "(for $i in 1 to 3 return (%s))" b)
              (src_gen (depth - 1)) );
        ])

let eval_outcome ~optimize src =
  match eval_doc ~optimize src with
  | v -> Ok v
  | exception Xq_error.Error e -> Error e.Xq_error.code

let equivalence_properties =
  [
    qt ~count:400 "optimized evaluation matches unoptimized"
      (Q.make ~print:Fun.id (src_gen 3))
      (fun src ->
        eval_outcome ~optimize:false src = eval_outcome ~optimize:true src);
  ]

(* ---------- join-planner plan snapshots ---------- *)

(* golden printouts of the optimized plan: the exact shape the planner
   emits is part of the contract, so these pin the full source string
   for the shapes that must fire and assert the hash-join operator
   never appears for the shapes that must not *)
let plan src =
  let prev = Optimizer.join_planning_enabled () in
  Optimizer.set_join_planning true;
  Fun.protect
    ~finally:(fun () -> Optimizer.set_join_planning prev)
    (fun () -> Ast_printer.expr_to_source (Optimizer.optimize_expr (parse_expr src)))

let has_hash_join s =
  try
    ignore (Str.search_forward (Str.regexp_string "hash-join") s 0);
    true
  with Not_found -> false

let golden name src expected =
  t name (fun () -> check Alcotest.string src expected (plan src))

let no_join name src =
  t name (fun () ->
      let p = plan src in
      check Alcotest.bool ("stays nested-loop: " ^ p) false (has_hash_join p))

let join_plan_snapshots =
  [
    (* the paper's §6.3 shopping-cart join *)
    golden "cart/catalog equi-join compiles to a hash join"
      "for $c in //cart/item, $p in //products/product \
       where $c/@sku eq $p/@sku return $p/@price"
      "hash-join for $c in ((/descendant-or-self::node())/(child::cart)/child::item), \
       $p in ((/descendant-or-self::node())/(child::products)/child::product) \
       on (($c)/attribute::sku) eq (($p)/attribute::sku) \
       return (($p)/attribute::price)";
    golden "general '=' join keeps existential marking"
      "for $a in //a, $b in //b where $a/@k = $b/@k return $a"
      "hash-join for $a in (/descendant::a), $b in (/descendant::b) \
       on (($a)/attribute::k) = (($b)/attribute::k) return ($a)";
    golden "residual conjunct and order-by survive around the join"
      "for $a in //a, $b in //b where $a/@k eq $b/@k and $a/@q = '1' \
       order by $b/@id return $b"
      "hash-join for $a in (/descendant::a), $b in (/descendant::b) \
       on (($a)/attribute::k) eq (($b)/attribute::k) \
       where ((($a)/attribute::q) = ('1')) \
       order by (($b)/attribute::id) return ($b)";
    no_join "position variable blocks the rewrite"
      "for $a at $i in //a, $b in //b where $a/@k eq $b/@k return $a";
    no_join "correlated build source blocks the rewrite"
      "for $a in //a, $b in $a/b where $a/@k eq $b/@k return $a";
    no_join "join comparison must be the first conjunct"
      "for $a in //a, $b in //b where $a/@q = '1' and $a/@k eq $b/@k return $a";
    no_join "positional/last()-dependent key blocks the rewrite"
      "for $a in //a, $b in //b \
       where $a/@k[position() = last()] eq $b/@k return $a";
    no_join "only equality comparisons are join keys"
      "for $a in //a, $b in //b where $a/@k lt $b/@k return $a";
    no_join "updating return keeps the nested-loop plan"
      "for $a in //a, $b in //b where $a/@k eq $b/@k return delete node $a";
    no_join "scripting block in the where keeps the nested-loop plan"
      "for $a in //a, $b in //b where $a/@k eq $b/@k \
       and ({ declare variable $x := 1; $x = 1 }) return $a";
  ]

let suite =
  positional_regressions @ fixpoint_tests @ rewrite_tests
  @ equivalence_properties @ join_plan_snapshots
