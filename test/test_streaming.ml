(* Streaming sequence pipeline: streaming-vs-eager equivalence (unit
   and QCheck), bounded-pull assertions via the obs cursor counters,
   and the satellite fixes that rode along — distinct-values hashing,
   index-of positions, and the absent-focus XPDY0002 errors. *)

open Xquery
module A = Xdm_atomic
module I = Xdm_item
module Q = QCheck

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (Q.Test.make ~count ~name gen prop)

(* per-child-list positions differ from merged-descendant positions *)
let pos_doc = "<r><a><x>1</x><x>2</x></a><a><x>3</x></a></r>"

(* a wide flat document for pull-count assertions: row k carries
   @hit='1' only at k = 10 *)
let rows_doc n =
  let b = Buffer.create (n * 32) in
  Buffer.add_string b "<r>";
  for i = 1 to n do
    Buffer.add_string b
      (Printf.sprintf "<row id='r%d' hit='%d'>v%d</row>" i
         (if i = 10 then 1 else 0)
         i)
  done;
  Buffer.add_string b "</r>";
  Buffer.contents b

let with_streaming streaming f =
  let prev = Eval.streaming_enabled () in
  Eval.set_streaming streaming;
  Fun.protect ~finally:(fun () -> Eval.set_streaming prev) f

let eval_doc ?(doc = pos_doc) ~streaming src =
  with_streaming streaming (fun () ->
      let node = I.Node (Dom.of_string doc) in
      I.to_display_string (Engine.eval_string ~context_item:node src))

let eval_outcome ?doc ~streaming src =
  match eval_doc ?doc ~streaming src with
  | v -> Ok v
  | exception Xq_error.Error e -> Error e.Xq_error.code

(* assert streaming and eager agree, and optionally pin the value *)
let both_modes ?doc ?expected name src =
  t name (fun () ->
      let s = eval_doc ?doc ~streaming:true src in
      check Alcotest.string ("eager agrees: " ^ src) s
        (eval_doc ?doc ~streaming:false src);
      match expected with
      | Some e -> check Alcotest.string src e s
      | None -> ())

(* ---------- targeted equivalence: early-exit consumers ---------- *)

let consumer_tests =
  [
    both_modes ~expected:"<x>1</x>" "first item of a path" "(//x)[1]";
    both_modes ~expected:"<x>3</x>" "nth item of a path" "(//x)[3]";
    both_modes ~expected:"" "past-the-end positional take" "(//x)[9]";
    both_modes ~expected:"<x>1</x> <x>2</x>" "bounded prefix via le"
      "(//x)[position() le 2]";
    both_modes ~expected:"<x>1</x>" "bounded prefix via lt"
      "(//x)[position() lt 2]";
    both_modes ~expected:"<x>1</x> <x>3</x>" "per-origin positional predicate"
      "//x[position() = 1]";
    both_modes ~expected:"<x>2</x> <x>3</x>" "needs-last predicate"
      "//x[last()]";
    both_modes ~expected:"<x>2</x> <x>3</x>" "position()=last() predicate"
      "//x[position() = last()]";
    both_modes ~expected:"true" "exists over a path" "exists(//x)";
    both_modes ~expected:"false" "exists over no match" "exists(//y)";
    both_modes ~expected:"false" "empty over a path" "empty(//x)";
    both_modes ~expected:"<x>1</x>" "head of a path" "head(//x)";
    both_modes ~expected:"" "head of empty" "head(//y)";
    both_modes ~expected:"<x>1</x> <x>2</x>" "subsequence prefix"
      "subsequence(//x, 1, 2)";
    both_modes ~expected:"<x>2</x> <x>3</x>" "subsequence from offset"
      "subsequence(//x, 2)";
    both_modes ~expected:"<x>2</x>" "subsequence fractional bounds"
      "subsequence(//x, 1.6, 1)";
    both_modes ~expected:"" "subsequence NaN start"
      "subsequence(//x, number('NaN'), 2)";
    both_modes ~expected:"true" "count gt literal" "count(//x) > 2";
    both_modes ~expected:"false" "count eq wrong literal" "count(//x) = 7";
    both_modes ~expected:"true" "literal-on-left count comparison"
      "4 > count(//x)";
    both_modes ~expected:"true" "count against zero" "count(//y) = 0";
    both_modes ~expected:"true" "boolean of node sequence" "boolean(//x)";
    both_modes ~expected:"true" "not of empty" "not(//y)";
    both_modes ~expected:"true" "existential general comparison"
      "//x = '2'";
    both_modes ~expected:"false" "existential no match" "//x = 'z'";
    both_modes ~expected:"true" "some quantifier"
      "some $v in //x satisfies $v = '3'";
    both_modes ~expected:"false" "every quantifier"
      "every $v in //x satisfies $v = '3'";
    both_modes ~expected:"yes" "if over node-sequence condition"
      "if (//x) then 'yes' else 'no'";
    both_modes ~expected:"true" "exists over a lazy range"
      "exists(1 to 1000000)";
    both_modes ~expected:"5" "head of a range" "head(5 to 9)";
    both_modes ~expected:"true" "quantifier over a range"
      "some $i in 1 to 1000000 satisfies $i = 17";
    both_modes ~expected:"<x>2</x>" "flwor where streams"
      "for $v in //x where $v = '2' return $v";
    both_modes ~expected:"true" "exists over flwor"
      "exists(for $v in //x where $v = '3' return $v)";
  ]

(* ---------- bounded pulls: the cursor stops early ---------- *)

let counters f =
  let prev = !Obs.Metrics.enabled in
  Obs.Metrics.enabled := true;
  Obs.Metrics.reset ();
  Fun.protect ~finally:(fun () -> Obs.Metrics.enabled := prev) (fun () ->
      let v = f () in
      (v, Obs.Metrics.counter Xdm_seq.pulls_metric))

let with_compiled compiled f =
  let prev = Engine.compiled_eval_enabled () in
  Engine.set_compiled_eval compiled;
  Fun.protect ~finally:(fun () -> Engine.set_compiled_eval prev) f

(* the bounded-pull assertions run twice: once against the
   tree-walking evaluator and once against the closure-compiled path,
   which must delegate its early-exit consumers to the same lazy
   cursors — pull counts have to match pull-for-pull *)
let bounded_pull_tests_for compiled =
  let mode = if compiled then " (compiled)" else " (interpreted)" in
  let doc = rows_doc 1000 in
  let run src =
    with_compiled compiled (fun () -> eval_doc ~doc ~streaming:true src)
  in
  [
    t ("first-of-1000 pulls one item" ^ mode) (fun () ->
        let v, pulls = counters (fun () -> run "string((//row)[1])") in
        check Alcotest.string "value" "v1" v;
        check Alcotest.bool "pulled once, not 1000" true (pulls <= 2));
    t ("exists with early hit pulls a bounded prefix" ^ mode) (fun () ->
        let v, pulls =
          counters (fun () -> run "exists(//row[@hit='1'])")
        in
        check Alcotest.string "value" "true" v;
        (* the hit is at row 10: far fewer pulls than the 1000 rows *)
        check Alcotest.bool
          (Printf.sprintf "pulls %d <= 30" pulls)
          true (pulls <= 30));
    t ("bounded count pulls k+1 items" ^ mode) (fun () ->
        let v, pulls = counters (fun () -> run "count(//row) > 5") in
        check Alcotest.string "value" "true" v;
        check Alcotest.bool
          (Printf.sprintf "pulls %d <= 8" pulls)
          true (pulls <= 8));
    t ("quantifier stops at the witness" ^ mode) (fun () ->
        let v, pulls =
          counters (fun () ->
              run "some $v in //row satisfies $v/@hit = '1'")
        in
        check Alcotest.string "value" "true" v;
        check Alcotest.bool
          (Printf.sprintf "pulls %d <= 30" pulls)
          true (pulls <= 30));
    t ("eager mode pulls nothing through cursors" ^ mode) (fun () ->
        let _, pulls =
          counters (fun () ->
              with_compiled compiled (fun () ->
                  eval_doc ~doc ~streaming:false "(//row)[1]"))
        in
        check Alcotest.int "no cursor pulls" 0 pulls);
  ]

let bounded_pull_tests =
  bounded_pull_tests_for false @ bounded_pull_tests_for true

(* ---------- joined early-exit: the probe side streams ---------- *)

(* the hash-join plan pulls the probe (left) side through a cursor, so
   early-exiting consumers over a join must stop pulling once
   satisfied; the build side is tiny and eager *)
let joined_early_exit_tests =
  let doc =
    let b = Buffer.create 40_000 in
    Buffer.add_string b "<db><big>";
    for i = 1 to 1000 do
      Buffer.add_string b (Printf.sprintf "<row id='r%d'>v%d</row>" i i)
    done;
    Buffer.add_string b "</big><small><p k='r10'/><p k='r12'/></small></db>";
    Buffer.contents b
  in
  let join =
    "for $r in //row, $p in //p where $r/@id eq $p/@k \
     return string($r/@id)"
  in
  let run src =
    let prev = Optimizer.join_planning_enabled () in
    Optimizer.set_join_planning true;
    Fun.protect
      ~finally:(fun () -> Optimizer.set_join_planning prev)
      (fun () -> eval_doc ~doc ~streaming:true src)
  in
  [
    t "exists over a join pulls a bounded probe prefix" (fun () ->
        let v, pulls =
          counters (fun () -> run (Printf.sprintf "exists(%s)" join))
        in
        check Alcotest.string "value" "true" v;
        (* the first match is probe row 10 of 1000 *)
        check Alcotest.bool
          (Printf.sprintf "pulls %d <= 40" pulls)
          true (pulls <= 40));
    t "head of a join stops at the first match" (fun () ->
        let v, pulls =
          counters (fun () -> run (Printf.sprintf "head(%s)" join))
        in
        check Alcotest.string "value" "r10" v;
        check Alcotest.bool
          (Printf.sprintf "pulls %d <= 40" pulls)
          true (pulls <= 40));
    t "positional prefix over a join stops at the k-th match" (fun () ->
        let v, pulls =
          counters (fun () ->
              run
                (Printf.sprintf "string-join((%s)[position() le 2], ' ')" join))
        in
        check Alcotest.string "value" "r10 r12" v;
        (* the second match is probe row 12; nowhere near 1000 pulls *)
        check Alcotest.bool
          (Printf.sprintf "pulls %d <= 40" pulls)
          true (pulls <= 40));
    t "an unbounded consumer drains the whole probe side" (fun () ->
        let v, pulls =
          counters (fun () -> run (Printf.sprintf "string-join((%s), ' ')" join))
        in
        check Alcotest.string "value" "r10 r12" v;
        check Alcotest.bool
          (Printf.sprintf "pulls %d >= 1000" pulls)
          true (pulls >= 1000));
  ]

(* ---------- QCheck: streaming and eager always agree ---------- *)

(* error-free sources biased toward the streaming consumers; streaming
   may legally skip an error an eager evaluation would raise in an
   unconsumed item, so the generator stays error-free and equivalence
   is exact *)
let streaming_src_gen =
  Q.Gen.(
    let pred =
      oneofl
        [
          "1"; "2"; "position() = 1"; "position() le 2"; "position() lt 3";
          "last()"; "position() = last()"; ". = '2'"; "@hit = '1'"; "true()";
          "not(position() = 1)";
        ]
    in
    let path = oneofl [ "//x"; "//r/a/x"; "//y"; "(//x, //x)"; "//a/x" ] in
    let small = map string_of_int (int_range (-2) 5) in
    let consumer =
      [
        map2 (Printf.sprintf "exists(%s[%s])") path pred;
        map2 (Printf.sprintf "empty(%s[%s])") path pred;
        map2 (Printf.sprintf "head(%s[%s])") path pred;
        map2 (Printf.sprintf "(%s)[%s]") path pred;
        map2 (Printf.sprintf "boolean(%s[%s])") path pred;
        map3
          (fun p a b -> Printf.sprintf "subsequence(%s, %s, %s)" p a b)
          path small small;
        map3
          (fun p op k -> Printf.sprintf "count(%s) %s %s" p op k)
          path
          (oneofl [ "="; "!="; "<"; "<="; ">"; ">=" ])
          small;
        map3
          (fun k op p -> Printf.sprintf "%s %s count(%s)" k op p)
          small
          (oneofl [ "="; "<"; ">=" ])
          path;
        map2 (fun p v -> Printf.sprintf "%s = '%s'" p v) path
          (oneofl [ "1"; "2"; "3"; "z" ]);
        map2
          (fun p v -> Printf.sprintf "some $v in %s satisfies $v = '%s'" p v)
          path
          (oneofl [ "1"; "3"; "z" ]);
        map2
          (fun p v -> Printf.sprintf "every $v in %s satisfies $v = '%s'" p v)
          path
          (oneofl [ "1"; "3"; "z" ]);
        map2
          (fun p c ->
            Printf.sprintf "if (%s) then count(%s) else 'none'" c p)
          path pred;
        map2
          (fun p v ->
            Printf.sprintf "for $v in %s where $v = '%s' return $v" p v)
          path
          (oneofl [ "1"; "2"; "z" ]);
        map (Printf.sprintf "exists(1 to %s)") small;
        map2 (Printf.sprintf "string-join(%s[%s], '.')") path pred;
      ]
    in
    oneof consumer)

let equivalence_properties =
  [
    qt ~count:400 "streaming evaluation matches eager"
      (Q.make ~print:Fun.id streaming_src_gen)
      (fun src ->
        eval_outcome ~streaming:true src = eval_outcome ~streaming:false src);
  ]

(* ---------- satellite: fn:distinct-values hashing ---------- *)

let distinct_values_tests =
  [
    both_modes ~expected:"100" ~doc:"<r/>" "distinct-values dedups"
      "count(distinct-values(for $i in 1 to 10000 return $i mod 100))";
    both_modes ~expected:"1 2 3" ~doc:"<r/>"
      "distinct-values keeps first-occurrence order"
      "distinct-values((1, 2, 1, 3, 2))";
    both_modes ~expected:"1" ~doc:"<r/>"
      "untyped and string in the same hash bucket"
      "count(distinct-values((xs:untypedAtomic('a'), 'a')))";
    both_modes ~expected:"1" ~doc:"<r/>"
      "integer and double compare across the numeric bucket"
      "count(distinct-values((1, 1.0e0, xs:decimal('1.0'))))";
    both_modes ~expected:"1" ~doc:"<r/>" "NaN equals NaN for dedup"
      "count(distinct-values((number('NaN'), number('NaN'))))";
    t "10k distinct values stay far from quadratic" (fun () ->
        let t0 = Sys.time () in
        check Alcotest.string "all kept" "10000"
          (eval_doc ~doc:"<r/>" ~streaming:true
             "count(distinct-values(1 to 10000))");
        let elapsed = Sys.time () -. t0 in
        (* the pre-fix O(n^2) scan needs ~5e7 comparisons and seconds
           of CPU; the hashed version is a few milliseconds *)
        check Alcotest.bool
          (Printf.sprintf "%.3fs under threshold" elapsed)
          true (elapsed < 1.0));
  ]

(* ---------- satellite: fn:index-of positions ---------- *)

let index_of_tests =
  [
    both_modes ~expected:"" ~doc:"<r/>" "index-of with no match"
      "index-of((1, 2, 3), 5)";
    both_modes ~expected:"1 3" ~doc:"<r/>" "index-of repeated matches"
      "index-of((1, 2, 1), 1)";
    both_modes ~expected:"2" ~doc:"<r/>" "index-of is 1-based"
      "index-of(('a', 'b', 'c'), 'b')";
    both_modes ~expected:"2" ~doc:"<r/>" "index-of across numeric types"
      "index-of((1.0, 2, 3), 2.0e0)";
    both_modes ~expected:"2" ~doc:"<x><i>a</i><i>b</i></x>"
      "index-of promotes untyped node values to string"
      "index-of(data(//i), 'b')";
    both_modes ~expected:"" ~doc:"<r/>" "index-of over the empty sequence"
      "index-of((), 1)";
  ]

(* ---------- satellite: absent focus raises XPDY0002 ---------- *)

let absent_focus_tests =
  let expect_xpdy src =
    t (src ^ " without focus raises XPDY0002") (fun () ->
        match Engine.eval_string src with
        | _ -> Alcotest.fail "expected XPDY0002, got a value"
        | exception Xq_error.Error e ->
            check Alcotest.string "code" "XPDY0002" e.Xq_error.code)
  in
  [
    expect_xpdy "position()";
    expect_xpdy "last()";
    (* the final step is evaluated per child list (right-nested
       paths), so focus is position-within-origin *)
    both_modes ~expected:"1/2 2/2 1/1" "focus restores position()/last()"
      "string-join(//x/concat(position(), '/', last()), ' ')";
  ]

let suite =
  consumer_tests @ bounded_pull_tests @ joined_early_exit_tests
  @ equivalence_properties @ distinct_values_tests @ index_of_tests
  @ absent_focus_tests
