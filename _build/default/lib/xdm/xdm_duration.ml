type t = { months : int; seconds : float }

let zero = { months = 0; seconds = 0. }
let make ?(months = 0) ?(seconds = 0.) () = { months; seconds }

let of_string s =
  let fail () = failwith (Printf.sprintf "invalid duration literal %S" s) in
  let n = String.length s in
  if n = 0 then fail ();
  let negative = s.[0] = '-' in
  let i = if negative then 1 else 0 in
  if i >= n || s.[i] <> 'P' then fail ();
  let i = ref (i + 1) in
  let months = ref 0 and seconds = ref 0. in
  let in_time = ref false in
  let saw_component = ref false in
  while !i < n do
    if s.[!i] = 'T' then begin
      in_time := true;
      incr i
    end
    else begin
      let start = !i in
      while !i < n && (s.[!i] >= '0' && s.[!i] <= '9' || s.[!i] = '.') do
        incr i
      done;
      if !i = start || !i >= n then fail ();
      let num = float_of_string (String.sub s start (!i - start)) in
      let designator = s.[!i] in
      incr i;
      saw_component := true;
      match (designator, !in_time) with
      | 'Y', false -> months := !months + (int_of_float num * 12)
      | 'M', false -> months := !months + int_of_float num
      | 'D', false -> seconds := !seconds +. (num *. 86400.)
      | 'W', false -> seconds := !seconds +. (num *. 7. *. 86400.)
      | 'H', true -> seconds := !seconds +. (num *. 3600.)
      | 'M', true -> seconds := !seconds +. (num *. 60.)
      | 'S', true -> seconds := !seconds +. num
      | _ -> fail ()
    end
  done;
  if not !saw_component then fail ();
  if negative then { months = - !months; seconds = -. !seconds }
  else { months = !months; seconds = !seconds }

let to_string { months; seconds } =
  if months = 0 && seconds = 0. then "PT0S"
  else begin
    let negative = months < 0 || (months = 0 && seconds < 0.) in
    let months = abs months and seconds = Float.abs seconds in
    let buf = Buffer.create 16 in
    if negative then Buffer.add_char buf '-';
    Buffer.add_char buf 'P';
    let years = months / 12 and rem_months = months mod 12 in
    if years > 0 then Buffer.add_string buf (string_of_int years ^ "Y");
    if rem_months > 0 then Buffer.add_string buf (string_of_int rem_months ^ "M");
    let days = int_of_float (seconds /. 86400.) in
    let rem = seconds -. (float_of_int days *. 86400.) in
    if days > 0 then Buffer.add_string buf (string_of_int days ^ "D");
    if rem > 0. then begin
      Buffer.add_char buf 'T';
      let hours = int_of_float (rem /. 3600.) in
      let rem = rem -. (float_of_int hours *. 3600.) in
      let minutes = int_of_float (rem /. 60.) in
      let secs = rem -. (float_of_int minutes *. 60.) in
      if hours > 0 then Buffer.add_string buf (string_of_int hours ^ "H");
      if minutes > 0 then Buffer.add_string buf (string_of_int minutes ^ "M");
      if secs > 0. then
        if Float.is_integer secs then
          Buffer.add_string buf (string_of_int (int_of_float secs) ^ "S")
        else Buffer.add_string buf (Printf.sprintf "%gS" secs)
    end;
    Buffer.contents buf
  end

let equal a b = a.months = b.months && a.seconds = b.seconds

let compare a b =
  match Int.compare a.months b.months with
  | 0 -> Float.compare a.seconds b.seconds
  | c -> c

let add a b = { months = a.months + b.months; seconds = a.seconds +. b.seconds }
let negate a = { months = -a.months; seconds = -.a.seconds }

let scale a f =
  {
    months = int_of_float (Float.round (float_of_int a.months *. f));
    seconds = a.seconds *. f;
  }

let is_year_month a = a.seconds = 0.
let is_day_time a = a.months = 0
let pp ppf a = Format.pp_print_string ppf (to_string a)
