lib/xdm/xdm_datetime.ml: Float Format Printf String Xdm_duration
