lib/xdm/xdm_datetime.mli: Format Xdm_duration
