lib/xdm/xdm_item.mli: Dom Format Xdm_atomic
