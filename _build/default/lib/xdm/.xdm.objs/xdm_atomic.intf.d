lib/xdm/xdm_atomic.mli: Format Qname Xdm_datetime Xdm_duration Xmlb
