lib/xdm/xdm_item.ml: Dom Float Format List Option Printf String Xdm_atomic
