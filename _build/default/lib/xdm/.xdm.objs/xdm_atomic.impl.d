lib/xdm/xdm_atomic.ml: Bool Float Format Int Printf Qname String Xdm_datetime Xdm_duration Xmlb
