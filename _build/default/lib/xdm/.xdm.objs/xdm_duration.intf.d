lib/xdm/xdm_duration.mli: Format
