lib/xdm/xdm_duration.ml: Buffer Float Format Int Printf String
