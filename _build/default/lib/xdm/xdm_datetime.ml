type t = {
  year : int;
  month : int;
  day : int;
  hour : int;
  minute : int;
  second : float;
  tz_minutes : int option;
}

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month ~year ~month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year year then 29 else 28
  | _ -> invalid_arg "days_in_month"

let make ?(hour = 0) ?(minute = 0) ?(second = 0.) ?tz_minutes ~year ~month ~day () =
  if month < 1 || month > 12 then failwith "month out of range";
  if day < 1 || day > days_in_month ~year ~month then failwith "day out of range";
  if hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0. || second >= 61.
  then failwith "time component out of range";
  { year; month; day; hour; minute; second; tz_minutes }

(* Civil-days algorithm (Howard Hinnant): days since 1970-01-01. *)
let days_from_civil ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  (year, month, day)

let to_epoch_seconds t =
  let days = days_from_civil ~year:t.year ~month:t.month ~day:t.day in
  let secs =
    (float_of_int days *. 86400.)
    +. (float_of_int t.hour *. 3600.)
    +. (float_of_int t.minute *. 60.)
    +. t.second
  in
  match t.tz_minutes with
  | None -> secs
  | Some tz -> secs -. (float_of_int tz *. 60.)

let of_epoch_seconds ?tz_minutes secs =
  let secs =
    match tz_minutes with
    | None -> secs
    | Some tz -> secs +. (float_of_int tz *. 60.)
  in
  let days = int_of_float (Float.floor (secs /. 86400.)) in
  let rem = secs -. (float_of_int days *. 86400.) in
  let year, month, day = civil_from_days days in
  let hour = int_of_float (rem /. 3600.) in
  let rem = rem -. (float_of_int hour *. 3600.) in
  let minute = int_of_float (rem /. 60.) in
  let second = rem -. (float_of_int minute *. 60.) in
  (* guard against float fuzz creating second = 60.0000001 *)
  let second = if second < 0. then 0. else second in
  { year; month; day; hour; minute; second; tz_minutes }

let compare a b = Float.compare (to_epoch_seconds a) (to_epoch_seconds b)
let equal a b = compare a b = 0

(* ---------------- parsing ---------------- *)

let parse_tz s pos =
  let n = String.length s in
  if pos >= n then (None, pos)
  else
    match s.[pos] with
    | 'Z' -> (Some 0, pos + 1)
    | ('+' | '-') as sign when pos + 6 <= n && s.[pos + 3] = ':' ->
        let h = int_of_string (String.sub s (pos + 1) 2) in
        let m = int_of_string (String.sub s (pos + 4) 2) in
        let v = (h * 60) + m in
        (Some (if sign = '-' then -v else v), pos + 6)
    | _ -> (None, pos)

let fail_lit what s = failwith (Printf.sprintf "invalid %s literal %S" what s)

let parse_date_part s =
  (* [-]YYYY-MM-DD, returns (year, month, day, next_pos) *)
  let neg = String.length s > 0 && s.[0] = '-' in
  let off = if neg then 1 else 0 in
  match String.index_from_opt s off '-' with
  | None -> fail_lit "date" s
  | Some d1 ->
      if d1 + 3 > String.length s || String.length s < d1 + 6 then fail_lit "date" s
      else begin
        let year = int_of_string (String.sub s off (d1 - off)) in
        let year = if neg then -year else year in
        if s.[d1 + 3] <> '-' then fail_lit "date" s;
        let month = int_of_string (String.sub s (d1 + 1) 2) in
        let day = int_of_string (String.sub s (d1 + 4) 2) in
        (year, month, day, d1 + 6)
      end

let parse_time_part s pos =
  let n = String.length s in
  if pos + 8 > n || s.[pos + 2] <> ':' || s.[pos + 5] <> ':' then
    fail_lit "time" s
  else begin
    let hour = int_of_string (String.sub s pos 2) in
    let minute = int_of_string (String.sub s (pos + 3) 2) in
    let sec_start = pos + 6 in
    let sec_end = ref (sec_start + 2) in
    if !sec_end < n && s.[!sec_end] = '.' then begin
      incr sec_end;
      while !sec_end < n && s.[!sec_end] >= '0' && s.[!sec_end] <= '9' do
        incr sec_end
      done
    end;
    let second = float_of_string (String.sub s sec_start (!sec_end - sec_start)) in
    (hour, minute, second, !sec_end)
  end

let date_of_string s =
  try
    let year, month, day, pos = parse_date_part s in
    let tz_minutes, pos = parse_tz s pos in
    if pos <> String.length s then fail_lit "date" s;
    make ~year ~month ~day ?tz_minutes ()
  with Failure _ -> fail_lit "date" s

let time_of_string s =
  try
    let hour, minute, second, pos = parse_time_part s 0 in
    let tz_minutes, pos = parse_tz s pos in
    if pos <> String.length s then fail_lit "time" s;
    make ~year:1970 ~month:1 ~day:1 ~hour ~minute ~second ?tz_minutes ()
  with Failure _ -> fail_lit "time" s

let date_time_of_string s =
  try
    let year, month, day, pos = parse_date_part s in
    if pos >= String.length s || s.[pos] <> 'T' then fail_lit "dateTime" s;
    let hour, minute, second, pos = parse_time_part s (pos + 1) in
    let tz_minutes, pos = parse_tz s pos in
    if pos <> String.length s then fail_lit "dateTime" s;
    make ~year ~month ~day ~hour ~minute ~second ?tz_minutes ()
  with Failure _ -> fail_lit "dateTime" s

(* ---------------- printing ---------------- *)

let tz_to_string = function
  | None -> ""
  | Some 0 -> "Z"
  | Some tz ->
      let sign = if tz < 0 then '-' else '+' in
      let tz = abs tz in
      Printf.sprintf "%c%02d:%02d" sign (tz / 60) (tz mod 60)

let seconds_to_string second =
  if Float.is_integer second then Printf.sprintf "%02d" (int_of_float second)
  else begin
    let s = Printf.sprintf "%09.6f" second in
    (* strip trailing zeros of the fraction *)
    let rec strip i = if s.[i] = '0' then strip (i - 1) else i in
    let last = strip (String.length s - 1) in
    let last = if s.[last] = '.' then last - 1 else last in
    String.sub s 0 (last + 1)
  end

let date_to_string t =
  Printf.sprintf "%04d-%02d-%02d%s" t.year t.month t.day (tz_to_string t.tz_minutes)

let time_to_string t =
  Printf.sprintf "%02d:%02d:%s%s" t.hour t.minute (seconds_to_string t.second)
    (tz_to_string t.tz_minutes)

let date_time_to_string t =
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%s%s" t.year t.month t.day t.hour
    t.minute (seconds_to_string t.second)
    (tz_to_string t.tz_minutes)

let add_duration t (d : Xdm_duration.t) =
  (* year-month part: calendar arithmetic with day clamping *)
  let total_months = ((t.year * 12) + (t.month - 1)) + d.Xdm_duration.months in
  let year = if total_months >= 0 then total_months / 12 else (total_months - 11) / 12 in
  let month = total_months - (year * 12) + 1 in
  let day = min t.day (days_in_month ~year ~month) in
  let shifted = { t with year; month; day } in
  if d.Xdm_duration.seconds = 0. then shifted
  else
    of_epoch_seconds ?tz_minutes:t.tz_minutes
      (to_epoch_seconds shifted +. d.Xdm_duration.seconds)

let difference a b =
  Xdm_duration.make ~seconds:(to_epoch_seconds a -. to_epoch_seconds b) ()

let pp ppf t = Format.pp_print_string ppf (date_time_to_string t)
