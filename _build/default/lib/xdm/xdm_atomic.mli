(** XDM atomic values and the XPath 2.0 atomic type system: construction,
    casting, promotion, canonical lexical forms, value comparison and
    arithmetic. *)

open Xmlb

type atomic_type =
  | T_any_atomic
  | T_untyped
  | T_string
  | T_boolean
  | T_integer
  | T_decimal
  | T_double
  | T_any_uri
  | T_qname
  | T_date
  | T_time
  | T_date_time
  | T_duration
  | T_year_month_duration
  | T_day_time_duration

type t =
  | Untyped of string
  | String of string
  | Boolean of bool
  | Integer of int
  | Decimal of float
  | Double of float
  | Any_uri of string
  | Qname_v of Qname.t
  | Date of Xdm_datetime.t
  | Time of Xdm_datetime.t
  | Date_time of Xdm_datetime.t
  | Duration of Xdm_duration.t
      (** plain xs:duration; subtypes tracked via {!type_of} refinement *)
  | Year_month_duration of Xdm_duration.t
  | Day_time_duration of Xdm_duration.t

(** XPTY/FORG-class dynamic errors. *)
exception Type_error of string

(** FORG0001-class cast failures. *)
exception Cast_error of string

val type_of : t -> atomic_type

(** [xs:integer] etc. — the local name within the [xs] namespace. *)
val type_name : atomic_type -> string

(** Resolve an [xs:*] local name to a type. [None] if unknown. *)
val type_of_name : string -> atomic_type option

(** [derives_from a b]: is [a] the same as or derived from [b]
    (untyped derives from anyAtomic; integer from decimal; the duration
    subtypes from duration)? *)
val derives_from : atomic_type -> atomic_type -> bool

(** Canonical lexical representation ([fn:string] of the value). *)
val to_string : t -> string

(** Cast to a target type per the XPath 2.0 casting table.
    @raise Cast_error when the cast is not allowed or the literal is
    malformed. *)
val cast : target:atomic_type -> t -> t

(** Can [cast] succeed? (implements [castable as]) *)
val castable : target:atomic_type -> t -> bool

(** Numeric promotion for arithmetic/comparison: untyped casts to
    double; integer < decimal < double.
    @raise Type_error if either side is not numeric/untyped. *)
val promote_pair : t -> t -> t * t

val is_numeric : t -> bool
val is_nan : t -> bool

(** Value comparison per [eq/lt/...]: same-kind comparison after
    untyped→string treatment.
    @raise Type_error on incomparable operand types. *)
val compare_value : t -> t -> int

(** [equal_value a b] — [eq] semantics; NaN is not equal to NaN. *)
val equal_value : t -> t -> bool

(** Arithmetic: +, -, *, div, idiv, mod with numeric promotion, plus
    date/time ± duration and duration arithmetic.
    @raise Type_error on invalid operand types, Division_by_zero for
    integer/decimal division by zero. *)

val add : t -> t -> t
val subtract : t -> t -> t
val multiply : t -> t -> t
val divide : t -> t -> t
val integer_divide : t -> t -> t
val modulo : t -> t -> t
val negate : t -> t

(** Deep equality used by fn:distinct-values / order keys: NaN equals
    NaN, values of comparable types compare by value, otherwise false. *)
val same_key : t -> t -> bool

val pp : Format.formatter -> t -> unit
