(** XML Schema date/time values: [xs:date], [xs:time], [xs:dateTime].

    A single record covers all three; the [xs:date]/[xs:time] views
    zero/ignore the irrelevant components. Timezone is an optional
    offset in minutes. *)

type t = {
  year : int;
  month : int;  (** 1..12 *)
  day : int;  (** 1..31 *)
  hour : int;
  minute : int;
  second : float;
  tz_minutes : int option;
}

val make :
  ?hour:int ->
  ?minute:int ->
  ?second:float ->
  ?tz_minutes:int ->
  year:int ->
  month:int ->
  day:int ->
  unit ->
  t

(** Parsers for the three lexical spaces.
    @raise Failure on malformed literals. *)

val date_of_string : string -> t
val time_of_string : string -> t
val date_time_of_string : string -> t

val date_to_string : t -> string
val time_to_string : t -> string
val date_time_to_string : t -> string

(** Seconds since 1970-01-01T00:00:00 (UTC if a timezone is present;
    otherwise treated as UTC). Basis for comparison and arithmetic. *)
val to_epoch_seconds : t -> float

val of_epoch_seconds : ?tz_minutes:int -> float -> t
val compare : t -> t -> int
val equal : t -> t -> bool

(** Add a duration: the year-month part moves the calendar month with
    day clamping; the day-time part shifts the timeline. *)
val add_duration : t -> Xdm_duration.t -> t

(** [difference a b] is the dayTime duration [a - b]. *)
val difference : t -> t -> Xdm_duration.t

val is_leap_year : int -> bool
val days_in_month : year:int -> month:int -> int
val pp : Format.formatter -> t -> unit
