(** XML Schema durations: [xs:duration], [xs:yearMonthDuration],
    [xs:dayTimeDuration].

    A duration is a pair (months, seconds); the two components carry
    their own signs, matching the XDM value space where yearMonth and
    dayTime parts are not inter-convertible. *)

type t = { months : int; seconds : float }

val zero : t
val make : ?months:int -> ?seconds:float -> unit -> t

(** Parse an ISO 8601 duration literal such as ["P1Y2M3DT4H5M6.7S"] or
    ["-PT90S"].
    @raise Failure on a malformed literal. *)
val of_string : string -> t

(** Canonical ISO 8601 form. *)
val to_string : t -> string

val equal : t -> t -> bool

(** Ordering is only total within yearMonth-only or dayTime-only
    durations; mixed durations compare by (months, seconds)
    lexicographically, as an implementation-defined total order.  *)
val compare : t -> t -> int

val add : t -> t -> t
val negate : t -> t
val scale : t -> float -> t

(** Is this a pure year-month duration (seconds = 0)? *)
val is_year_month : t -> bool

(** Is this a pure day-time duration (months = 0)? *)
val is_day_time : t -> bool

val pp : Format.formatter -> t -> unit
