(** The Browser Object Model pieces the paper exposes to XQuery as XML
    (§4.2.2): [browser:screen()] and [browser:navigator()], plus the
    location element used inside window nodes. *)

open Xmlb

type screen = {
  width : int;
  height : int;
  avail_width : int;
  avail_height : int;
  color_depth : int;
}

val default_screen : screen

type navigator = {
  app_name : string;
  app_version : string;
  user_agent : string;
  platform : string;
  language : string;
  cookie_enabled : bool;
}

(** Defaults mimic the paper's target browser. *)
val internet_explorer : navigator

val firefox : navigator

(** Build [<screen><width>…</width>…</screen>]. *)
val screen_to_xml : screen -> Dom.node

(** Build [<navigator><appName>…</appName>…</navigator>]. *)
val navigator_to_xml : navigator -> Dom.node

(** Build a [<location>] element with href/protocol/host/port/pathname
    children, the shape §4.2.1 queries navigate. *)
val location_to_xml : href:string -> Dom.node

val element : string -> (string * string) list -> Dom.node
(** [element name fields] — a small helper building an element with one
    child element per (name, text) field. *)

val qn : string -> Qname.t
