(** Client-side persistent XML storage — the Google Gears analogue the
    paper positions XQuery against (§2.4: "our work on enabling XQuery
    in Web browsers targets in exactly the same direction as Gears…
    XQuery can also be used to facilitate client-side database access",
    including running "even if the client is not connected").

    One store per origin (like Gears' per-site databases): documents
    put by pages of one origin are invisible to other origins. Exposed
    to XQuery through the [browser:store*] functions registered by
    {!Browser_functions}. *)

type t

val create : unit -> t

(** Documents stored for an origin. *)
val put : t -> origin:Origin.t -> name:string -> Dom.node -> unit

(** Returns a live node: client code mutates it in place and the
    mutations persist (like a local database). *)
val get : t -> origin:Origin.t -> name:string -> Dom.node option

val delete : t -> origin:Origin.t -> name:string -> bool
val list : t -> origin:Origin.t -> string list
val size : t -> int
