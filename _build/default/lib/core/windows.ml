open Xmlb

type t = {
  wid : int;
  mutable wname : string;
  mutable status : string;
  mutable href : string;
  mutable document : Dom.node;
  mutable frames : t list;
  mutable parent : t option;
  mutable history_back : string list;
  mutable history_forward : string list;
  mutable last_modified : string;
  mutable closed : bool;
  mutable screen_x : int;
  mutable screen_y : int;
  mutable outer_width : int;
  mutable outer_height : int;
}

let counter = ref 0

let create ?(name = "") ?(href = "about:blank") () =
  incr counter;
  {
    wid = !counter;
    wname = name;
    status = "";
    href;
    document = Dom.create_document ();
    frames = [];
    parent = None;
    history_back = [];
    history_forward = [];
    last_modified = "";
    closed = false;
    screen_x = 0;
    screen_y = 0;
    outer_width = 1024;
    outer_height = 768;
  }

let add_frame ~parent frame =
  frame.parent <- Some parent;
  parent.frames <- parent.frames @ [ frame ]

let remove_frame frame =
  match frame.parent with
  | None -> ()
  | Some p ->
      p.frames <- List.filter (fun f -> f != frame) p.frames;
      frame.parent <- None

let move_by w ~dx ~dy =
  w.screen_x <- w.screen_x + dx;
  w.screen_y <- w.screen_y + dy

let move_to w ~x ~y =
  w.screen_x <- x;
  w.screen_y <- y

let rec top w = match w.parent with None -> w | Some p -> top p
let origin w = Origin.of_uri w.href

let rec find_by_name w name =
  if String.equal w.wname name then Some w
  else List.find_map (fun f -> find_by_name f name) w.frames

let navigate w href =
  w.history_back <- w.href :: w.history_back;
  w.history_forward <- [];
  w.href <- href

let history_back w =
  match w.history_back with
  | [] -> ()
  | h :: rest ->
      w.history_forward <- w.href :: w.history_forward;
      w.href <- h;
      w.history_back <- rest

let history_forward w =
  match w.history_forward with
  | [] -> ()
  | h :: rest ->
      w.history_back <- w.href :: w.history_back;
      w.href <- h;
      w.history_forward <- rest

let rec history_go w n =
  if n < 0 then begin
    history_back w;
    history_go w (n + 1)
  end
  else if n > 0 then begin
    history_forward w;
    history_go w (n - 1)
  end

(* ------------------------------------------------------------------ *)
(* Materialization                                                     *)

type view = {
  root : Dom.node;
  registry : (int, t) Hashtbl.t;  (** materialized window element id -> window *)
  observer : Dom.observer_id;
  mutable rejected : int;
  mutable syncing : bool;  (** guard against observer re-entry *)
}

let window_qn = Qname.make "window"
let name_qn = Qname.make "name"

let rec materialize_window ~policy ~accessor w registry =
  let accessible = Origin.allows policy ~accessor ~target:(origin w) in
  let el = Dom.create_element window_qn in
  if accessible then begin
    Dom.set_attribute el name_qn w.wname;
    let status = Bom.element "status" [] in
    Dom.append_child ~parent:status (Dom.create_text w.status);
    Dom.append_child ~parent:el status;
    Dom.append_child ~parent:el (Bom.location_to_xml ~href:w.href);
    let lm = Bom.element "lastModified" [] in
    Dom.append_child ~parent:lm (Dom.create_text w.last_modified);
    Dom.append_child ~parent:el lm;
    Dom.append_child ~parent:el
      (Bom.element "geometry"
         [
           ("screenX", string_of_int w.screen_x);
           ("screenY", string_of_int w.screen_y);
           ("outerWidth", string_of_int w.outer_width);
           ("outerHeight", string_of_int w.outer_height);
         ]);
    let frames = Dom.create_element (Qname.make "frames") in
    List.iter
      (fun f ->
        Dom.append_child ~parent:frames
          (materialize_window ~policy ~accessor f registry))
      w.frames;
    Dom.append_child ~parent:el frames;
    Hashtbl.replace registry (Dom.id el) w
  end;
  (* cross-origin: an empty <window/> shell, not registered: every
     accessor yields the empty sequence and document() fails *)
  el

let enclosing_window view node =
  let rec climb n =
    match Hashtbl.find_opt view.registry (Dom.id n) with
    | Some w -> Some (n, w)
    | None -> ( match Dom.parent n with None -> None | Some p -> climb p)
  in
  climb node

let child_text el name =
  List.find_map
    (fun c ->
      match Dom.name c with
      | Some qn when String.equal qn.Qname.local name -> Some (Dom.string_value c)
      | _ -> None)
    (Dom.children el)

let resync ~policy ~accessor ~on_navigate view (el, w) =
  (* policy re-check at write time: the window may have navigated away *)
  if not (Origin.allows policy ~accessor ~target:(origin w)) then
    view.rejected <- view.rejected + 1
  else begin
    (match Dom.attribute_local el "name" with
    | Some n when not (String.equal n w.wname) -> w.wname <- n
    | _ -> ());
    (match child_text el "status" with
    | Some s when not (String.equal s w.status) -> w.status <- s
    | _ -> ());
    match
      List.find_map
        (fun c ->
          match Dom.name c with
          | Some { Qname.local = "location"; _ } -> child_text c "href"
          | _ -> None)
        (Dom.children el)
    with
    | Some href when not (String.equal href w.href) ->
        navigate w href;
        Option.iter (fun f -> f w href) on_navigate
    | _ -> ()
  end

let materialize ?(policy = Origin.Same_origin) ?on_navigate ~accessor w =
  let registry = Hashtbl.create 8 in
  let root = materialize_window ~policy ~accessor w registry in
  let rec view = lazy
    (let v =
       {
         root;
         registry;
         observer =
           Dom.observe ~root (fun mutation ->
               let v = Lazy.force view in
               if not v.syncing then begin
                 v.syncing <- true;
                 Fun.protect
                   ~finally:(fun () -> v.syncing <- false)
                   (fun () ->
                     let node =
                       match mutation with
                       | Dom.Children_changed n
                       | Dom.Attribute_changed (n, _)
                       | Dom.Value_changed n
                       | Dom.Renamed n ->
                           n
                     in
                     match enclosing_window v node with
                     | Some hit -> resync ~policy ~accessor ~on_navigate v hit
                     | None -> ())
               end);
         rejected = 0;
         syncing = false;
       }
     in
     v)
  in
  Lazy.force view

let view_root v = v.root

let node_of_window v w =
  Hashtbl.fold
    (fun nid win acc ->
      if win == w then
        (* find the node with this id in the tree *)
        match acc with
        | Some _ -> acc
        | None ->
            let rec find n =
              if Dom.id n = nid then Some n
              else List.find_map find (Dom.children n)
            in
            find v.root
      else acc)
    v.registry None

let window_of_node v node =
  Option.map snd (enclosing_window v node)

let window_at v node = Hashtbl.find_opt v.registry (Dom.id node)

let release v = Dom.unobserve v.observer
let rejected_writes v = v.rejected
