type t = { table : (string * string, Dom.node) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }
let key origin name = (Origin.to_string origin, name)

let put t ~origin ~name doc = Hashtbl.replace t.table (key origin name) doc
let get t ~origin ~name = Hashtbl.find_opt t.table (key origin name)

let delete t ~origin ~name =
  let k = key origin name in
  let existed = Hashtbl.mem t.table k in
  Hashtbl.remove t.table k;
  existed

let list t ~origin =
  let o = Origin.to_string origin in
  Hashtbl.fold (fun (ko, name) _ acc -> if ko = o then name :: acc else acc) t.table []
  |> List.sort String.compare

let size t = Hashtbl.length t.table
