open Xmlb

type screen = {
  width : int;
  height : int;
  avail_width : int;
  avail_height : int;
  color_depth : int;
}

let default_screen =
  { width = 1280; height = 1024; avail_width = 1280; avail_height = 984; color_depth = 32 }

type navigator = {
  app_name : string;
  app_version : string;
  user_agent : string;
  platform : string;
  language : string;
  cookie_enabled : bool;
}

let internet_explorer =
  {
    app_name = "Microsoft Internet Explorer";
    app_version = "7.0";
    user_agent = "Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 6.0; XQIB)";
    platform = "Win32";
    language = "en";
    cookie_enabled = true;
  }

let firefox =
  {
    app_name = "Mozilla Firefox";
    app_version = "3.0";
    user_agent = "Mozilla/5.0 (X11; Linux; rv:3.0) Gecko Firefox/3.0 XQIB";
    platform = "Linux";
    language = "en";
    cookie_enabled = true;
  }

let qn local = Qname.make local

let element name fields =
  let el = Dom.create_element (qn name) in
  List.iter
    (fun (fname, text) ->
      let child = Dom.create_element (qn fname) in
      Dom.append_child ~parent:child (Dom.create_text text);
      Dom.append_child ~parent:el child)
    fields;
  el

let screen_to_xml s =
  element "screen"
    [
      ("width", string_of_int s.width);
      ("height", string_of_int s.height);
      ("availWidth", string_of_int s.avail_width);
      ("availHeight", string_of_int s.avail_height);
      ("colorDepth", string_of_int s.color_depth);
    ]

let navigator_to_xml n =
  element "navigator"
    [
      ("appName", n.app_name);
      ("appVersion", n.app_version);
      ("userAgent", n.user_agent);
      ("platform", n.platform);
      ("language", n.language);
      ("cookieEnabled", if n.cookie_enabled then "true" else "false");
    ]

let location_to_xml ~href =
  let origin = Origin.of_uri href in
  let path =
    match Http_sim.split_uri href with Some (_, p) -> p | None -> href
  in
  let host, port =
    match String.index_opt origin.Origin.host ':' with
    | Some i ->
        ( String.sub origin.Origin.host 0 i,
          String.sub origin.Origin.host (i + 1)
            (String.length origin.Origin.host - i - 1) )
    | None -> (origin.Origin.host, if origin.Origin.scheme = "https" then "443" else "80")
  in
  element "location"
    [
      ("href", href);
      ("protocol", origin.Origin.scheme ^ ":");
      ("host", origin.Origin.host);
      ("hostname", host);
      ("port", port);
      ("pathname", path);
    ]
