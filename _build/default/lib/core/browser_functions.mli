(** The [browser:] function library (paper §4.2): window access
    ([browser:top], [browser:self], [browser:document]), BOM access
    ([browser:screen], [browser:navigator]), dialogs ([alert], [prompt],
    [confirm]), window functions ([windowOpen], [windowClose],
    [windowMoveBy], [windowMoveTo]), history functions ([historyBack],
    [historyForward], [historyGo]) and document write functions.

    Functions are registered as external functions in a static context,
    closed over a browser and the window whose script is running. *)

val namespace : string

(** Register all [browser:] functions and bind the [browser] prefix.
    Also blocks [fn:doc] and [fn:put] per the paper's security rules. *)
val install : Browser.t -> Windows.t -> Xquery.Static_context.t -> unit
