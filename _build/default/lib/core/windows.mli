(** The browser window/frame tree, and its materialization as XML
    window nodes — the heart of the paper's §4.2.1: [browser:top()]
    returns an XML element describing the topmost window; frames nest
    as [<frames><window…/></frames>]; the element can be navigated
    with XPath and *updated* with the XQuery Update Facility, with a
    pull-style same-origin check so cross-origin windows are opaque. *)

type t = {
  wid : int;
  mutable wname : string;
  mutable status : string;
  mutable href : string;
  mutable document : Dom.node;
  mutable frames : t list;
  mutable parent : t option;
  mutable history_back : string list;
  mutable history_forward : string list;
  mutable last_modified : string;
  mutable closed : bool;
  mutable screen_x : int;
  mutable screen_y : int;
  mutable outer_width : int;
  mutable outer_height : int;
}

(** Window geometry ([windowMoveBy]/[windowMoveTo] of §4.2.4). *)
val move_by : t -> dx:int -> dy:int -> unit

val move_to : t -> x:int -> y:int -> unit

val create : ?name:string -> ?href:string -> unit -> t
val add_frame : parent:t -> t -> unit
val remove_frame : t -> unit
val top : t -> t
val origin : t -> Origin.t

(** Find a window by name anywhere under (and including) a root. *)
val find_by_name : t -> string -> t option

(** {1 History & navigation} *)

(** Change location, pushing the old href onto the back history. *)
val navigate : t -> string -> unit

val history_back : t -> unit
val history_forward : t -> unit

(** [history_go w (-2)] — negative is back, positive forward. *)
val history_go : t -> int -> unit

(** {1 Materialization (pull with security checks)} *)

type view

(** Materialize the tree rooted at [w] as XML. Windows whose origin
    fails [policy] w.r.t. [accessor] materialize as empty [<window/>]
    shells — observationally "all accessors return the empty sequence"
    (§4.2.1). Mutations made to the XML (via XQuery Update) write back
    into the window objects, re-checked against the policy at apply
    time; a change to [location/href] triggers [on_navigate]. *)
val materialize :
  ?policy:Origin.policy ->
  ?on_navigate:(t -> string -> unit) ->
  accessor:Origin.t ->
  t ->
  view

val view_root : view -> Dom.node

(** The materialized element for a given window, if accessible. *)
val node_of_window : view -> t -> Dom.node option

(** The window behind a materialized element (or a descendant of it). *)
val window_of_node : view -> Dom.node -> t option

(** The window registered for exactly this element ([None] for
    cross-origin shells and non-window nodes). *)
val window_at : view -> Dom.node -> t option

(** Stop observing write-backs. *)
val release : view -> unit

(** Number of write-backs rejected by the security policy (telemetry
    for tests and the T3 bench). *)
val rejected_writes : view -> int
