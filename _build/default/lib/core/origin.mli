(** Web origins and the same-origin policy the paper applies to window
    nodes (§4.2.1): cross-origin window accessors return the empty
    sequence, and [fn:doc]/[fn:put] are blocked in the browser. *)

type t = { scheme : string; host : string }

(** Parse the origin out of a URI; ["about:blank"] and relative URIs
    yield the opaque origin. *)
val of_uri : string -> t

val opaque : t
val same_origin : t -> t -> bool
val to_string : t -> string
val equal : t -> t -> bool

type policy =
  | Same_origin  (** the paper's suggested default *)
  | Allow_all  (** for tests/benches that opt out *)

val allows : policy -> accessor:t -> target:t -> bool
