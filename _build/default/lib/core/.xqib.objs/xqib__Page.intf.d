lib/core/page.mli: Browser Dom Windows Xdm_item Xquery
