lib/core/browser.mli: Bom Dom Http_sim Local_store Origin Rest Virtual_clock Windows Xquery
