lib/core/browser_functions.mli: Browser Windows Xquery
