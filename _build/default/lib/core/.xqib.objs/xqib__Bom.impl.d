lib/core/bom.ml: Dom Http_sim List Origin Qname String Xmlb
