lib/core/browser_functions.ml: Bom Browser Dom List Local_store Origin Printf Qname Windows Xdm_atomic Xdm_item Xml_escape Xmlb Xquery
