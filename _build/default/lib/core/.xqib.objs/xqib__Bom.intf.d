lib/core/bom.mli: Dom Qname Xmlb
