lib/core/renderer.ml: Buffer Dom List Option Printf String Xmlb Xquery
