lib/core/windows.mli: Dom Origin
