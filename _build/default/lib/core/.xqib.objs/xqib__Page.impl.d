lib/core/page.ml: Browser Browser_functions Dom Dom_event Hashtbl Http_sim List Logs Option Printexc Qname Rest Str String Virtual_clock Web_service Windows Xdm_atomic Xdm_item Xml_parser Xmlb Xquery
