lib/core/browser.ml: Bom Dom Dom_event Http_sim List Local_store Option Origin Rest String Virtual_clock Windows Xdm_atomic Xdm_datetime Xdm_item Xmlb Xquery
