lib/core/local_store.mli: Dom Origin
