lib/core/renderer.mli: Dom
