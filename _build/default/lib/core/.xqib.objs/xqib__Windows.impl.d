lib/core/windows.ml: Bom Dom Fun Hashtbl Lazy List Option Origin Qname String Xmlb
