lib/core/origin.ml: String
