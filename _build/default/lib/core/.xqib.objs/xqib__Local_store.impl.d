lib/core/local_store.ml: Dom Hashtbl List Origin String
