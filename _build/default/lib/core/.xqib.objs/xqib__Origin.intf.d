lib/core/origin.mli:
