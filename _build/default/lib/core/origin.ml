type t = { scheme : string; host : string }

let opaque = { scheme = "null"; host = "" }

let of_uri uri =
  match String.index_opt uri ':' with
  | None -> opaque
  | Some i ->
      let scheme = String.sub uri 0 i in
      let rest = String.sub uri (i + 1) (String.length uri - i - 1) in
      if String.length rest >= 2 && String.sub rest 0 2 = "//" then
        let after = String.sub rest 2 (String.length rest - 2) in
        let host =
          match String.index_opt after '/' with
          | None -> after
          | Some j -> String.sub after 0 j
        in
        { scheme; host }
      else opaque

let same_origin a b =
  (not (a = opaque || b = opaque))
  && String.equal a.scheme b.scheme
  && String.equal a.host b.host

let to_string { scheme; host } = scheme ^ "://" ^ host
let equal a b = a = b

type policy = Same_origin | Allow_all

let allows policy ~accessor ~target =
  match policy with
  | Allow_all -> true
  | Same_origin -> same_origin accessor target
