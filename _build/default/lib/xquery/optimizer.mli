(** A rule-based expression rewriter.

    The paper motivates XQuery in the browser partly by its
    optimisability ("XQuery is carefully designed to be highly
    optimisable", §1); this module implements a representative set of
    algebraic rewrites so the claim can be measured (bench T5):

    - constant folding of arithmetic, logic and conditionals;
    - [descendant-or-self::node()/child::x] → [descendant::x];
    - trivial-predicate and self-step elimination;
    - [fn:count(e) = 0] → [fn:empty(e)], [> 0] → [fn:exists(e)].

    Rewrites never fire on updating or side-effecting nodes
    themselves; pure subexpressions inside them are still
    simplified. *)

val optimize_expr : Ast.expr -> Ast.expr
val optimize : Ast.prog -> Ast.prog

(** Number of rewrites fired since start (for tests and the ablation
    bench report). *)
val rewrite_count : unit -> int
