(** XQuery error reporting: W3C-style error codes plus a message. *)

type t = {
  code : string;  (** e.g. ["XPST0003"], ["XUDY0015"], ["SEBR0001"] *)
  message : string;
}

exception Error of t

(** Raise an error with the given code. *)
val raise_error : string -> ('a, unit, string, 'b) format4 -> 'a

(** Well-known codes used across the engine. *)

val syntax : string  (** XPST0003 — grammar error *)

val undefined_variable : string  (** XPST0008 *)

val unknown_function : string  (** XPST0017 *)

val type_error_code : string  (** XPTY0004 *)

val cast_error_code : string  (** FORG0001 *)

val ebv_error : string  (** FORG0006 *)

val div_by_zero : string  (** FOAR0001 *)

val update_conflict_rename : string  (** XUDY0015 *)

val update_conflict_replace : string  (** XUDY0017 *)

val update_target : string  (** XUTY00xx-class target errors *)

val security : string  (** SEBR0001 — browser security (our extension) *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
