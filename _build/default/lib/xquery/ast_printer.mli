(** Serialize the AST back to XQuery source.

    Used by the §6.1 migration tool, which rewrites a server-side page
    program and re-emits it as client-side script text, and by
    round-trip tests ([parse ∘ print ∘ parse] stability). Output is
    normalised (fully parenthesised where precedence is non-trivial);
    it is not a pretty-printer for humans. *)

val expr_to_source : Ast.expr -> string
val statement_to_source : Ast.statement -> string
val prolog_decl_to_source : Ast.prolog_decl -> string
val program_to_source : Ast.prog -> string
