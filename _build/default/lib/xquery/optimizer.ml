open Xmlb
module A = Xdm_atomic

let rewrites = ref 0

let fired e =
  incr rewrites;
  e

let rewrite_count () = !rewrites

let is_count_call qn = qn.Qname.local = "count" && qn.Qname.uri = Some Qname.Ns.fn
let fn_call name args = Ast.E_call (Qname.make ~uri:Qname.Ns.fn name, args)

let literal_bool = function
  | Ast.E_literal (A.Boolean b) -> Some b
  | Ast.E_call ({ Qname.local = "true"; uri = Some u; _ }, [])
    when u = Qname.Ns.fn ->
      Some true
  | Ast.E_call ({ Qname.local = "false"; uri = Some u; _ }, [])
    when u = Qname.Ns.fn ->
      Some false
  | _ -> None

let literal_zero = function
  | Ast.E_literal (A.Integer 0) -> true
  | _ -> false

(* one bottom-up pass; [go] recurses, then local rules fire *)
let rec go (e : Ast.expr) : Ast.expr =
  let e = descend e in
  if Ast.is_updating e then e else rules e

and rules e =
  match e with
  (* constant folding: arithmetic on numeric literals *)
  | Ast.E_arith (op, Ast.E_literal a, Ast.E_literal b)
    when A.is_numeric a && A.is_numeric b -> (
      let f =
        match op with
        | Ast.Add -> A.add
        | Ast.Sub -> A.subtract
        | Ast.Mul -> A.multiply
        | Ast.Div -> A.divide
        | Ast.Idiv -> A.integer_divide
        | Ast.Mod -> A.modulo
      in
      match f a b with
      | v -> fired (Ast.E_literal v)
      | exception _ -> e)
  (* boolean short-circuits with constants *)
  | Ast.E_and (a, b) -> (
      match (literal_bool a, literal_bool b) with
      | Some false, _ | _, Some false ->
          fired (Ast.E_literal (A.Boolean false))
      | Some true, _ -> fired (fn_call "boolean" [ b ])
      | _, Some true -> fired (fn_call "boolean" [ a ])
      | _ -> e)
  | Ast.E_or (a, b) -> (
      match (literal_bool a, literal_bool b) with
      | Some true, _ | _, Some true -> fired (Ast.E_literal (A.Boolean true))
      | Some false, _ -> fired (fn_call "boolean" [ b ])
      | _, Some false -> fired (fn_call "boolean" [ a ])
      | _ -> e)
  (* constant conditionals *)
  | Ast.E_if (c, t, f) -> (
      match literal_bool c with
      | Some true -> fired t
      | Some false -> fired f
      | None -> e)
  (* //x : descendant-or-self::node()/child::x  →  descendant::x *)
  | Ast.E_path
      ( Ast.E_path (base, Ast.E_step (Ast.Descendant_or_self, Ast.Kind_test Ast.Any_kind, [])),
        Ast.E_step (Ast.Child, test, preds) )
    when not (has_positional preds) ->
      fired (Ast.E_path (base, Ast.E_step (Ast.Descendant, test, preds)))
  (* e/self::node() → e *)
  | Ast.E_path (base, Ast.E_step (Ast.Self, Ast.Kind_test Ast.Any_kind, [])) ->
      fired base
  (* predicate [true()] elimination *)
  | Ast.E_step (axis, test, preds)
    when List.exists (fun p -> literal_bool p = Some true) preds ->
      fired
        (Ast.E_step
           (axis, test, List.filter (fun p -> literal_bool p <> Some true) preds))
  | Ast.E_filter (base, preds)
    when List.exists (fun p -> literal_bool p = Some true) preds -> (
      match List.filter (fun p -> literal_bool p <> Some true) preds with
      | [] -> fired base
      | preds -> fired (Ast.E_filter (base, preds)))
  (* count(e) = 0 → empty(e); count(e) != 0 / > 0 / >= 1 → exists(e) *)
  | Ast.E_general_comp (Ast.Eq, Ast.E_call (qn, [ arg ]), z)
  | Ast.E_value_comp (Ast.Eq, Ast.E_call (qn, [ arg ]), z)
    when is_count_call qn && literal_zero z ->
      fired (fn_call "empty" [ arg ])
  | Ast.E_general_comp (Ast.Ne, Ast.E_call (qn, [ arg ]), z)
  | Ast.E_value_comp (Ast.Ne, Ast.E_call (qn, [ arg ]), z)
  | Ast.E_general_comp (Ast.Gt, Ast.E_call (qn, [ arg ]), z)
  | Ast.E_value_comp (Ast.Gt, Ast.E_call (qn, [ arg ]), z)
    when is_count_call qn && literal_zero z ->
      fired (fn_call "exists" [ arg ])
  | Ast.E_general_comp (Ast.Ge, Ast.E_call (qn, [ arg ]), Ast.E_literal (A.Integer 1))
  | Ast.E_value_comp (Ast.Ge, Ast.E_call (qn, [ arg ]), Ast.E_literal (A.Integer 1))
    when is_count_call qn ->
      fired (fn_call "exists" [ arg ])
  (* flatten nested sequences *)
  | Ast.E_sequence es when List.exists (function Ast.E_sequence _ -> true | _ -> false) es ->
      fired
        (Ast.E_sequence
           (List.concat_map
              (function Ast.E_sequence inner -> inner | e -> [ e ])
              es))
  | e -> e

and has_positional preds =
  (* conservative: any predicate that is a bare numeric literal or
     mentions fn:position()/fn:last() blocks the //-rewrite *)
  let rec mentions_focus = function
    | Ast.E_literal a -> A.is_numeric a
    | Ast.E_call ({ Qname.local = ("position" | "last"); uri = Some u; _ }, [])
      when u = Qname.Ns.fn ->
        true
    | Ast.E_arith (_, a, b)
    | Ast.E_general_comp (_, a, b)
    | Ast.E_value_comp (_, a, b)
    | Ast.E_and (a, b)
    | Ast.E_or (a, b) ->
        mentions_focus a || mentions_focus b
    | _ -> false
  in
  List.exists mentions_focus preds

and descend e =
  let g = go in
  match (e : Ast.expr) with
  | Ast.E_literal _ | Ast.E_var _ | Ast.E_context_item | Ast.E_root
  | Ast.E_text_literal _ ->
      e
  | Ast.E_sequence es -> Ast.E_sequence (List.map g es)
  | Ast.E_range (a, b) -> Ast.E_range (g a, g b)
  | Ast.E_if (c, t, f) -> Ast.E_if (g c, g t, g f)
  | Ast.E_or (a, b) -> Ast.E_or (g a, g b)
  | Ast.E_and (a, b) -> Ast.E_and (g a, g b)
  | Ast.E_value_comp (op, a, b) -> Ast.E_value_comp (op, g a, g b)
  | Ast.E_general_comp (op, a, b) -> Ast.E_general_comp (op, g a, g b)
  | Ast.E_node_comp (op, a, b) -> Ast.E_node_comp (op, g a, g b)
  | Ast.E_ftcontains (a, sel) -> Ast.E_ftcontains (g a, go_ft sel)
  | Ast.E_arith (op, a, b) -> Ast.E_arith (op, g a, g b)
  | Ast.E_unary_minus a -> Ast.E_unary_minus (g a)
  | Ast.E_union (a, b) -> Ast.E_union (g a, g b)
  | Ast.E_intersect (a, b) -> Ast.E_intersect (g a, g b)
  | Ast.E_except (a, b) -> Ast.E_except (g a, g b)
  | Ast.E_instance_of (a, st) -> Ast.E_instance_of (g a, st)
  | Ast.E_treat_as (a, st) -> Ast.E_treat_as (g a, st)
  | Ast.E_castable_as (a, ty, o) -> Ast.E_castable_as (g a, ty, o)
  | Ast.E_cast_as (a, ty, o) -> Ast.E_cast_as (g a, ty, o)
  | Ast.E_step (axis, test, preds) -> Ast.E_step (axis, test, List.map g preds)
  | Ast.E_path (a, b) -> Ast.E_path (g a, g b)
  | Ast.E_filter (a, preds) -> Ast.E_filter (g a, List.map g preds)
  | Ast.E_call (qn, args) -> Ast.E_call (qn, List.map g args)
  | Ast.E_ordered a -> Ast.E_ordered (g a)
  | Ast.E_unordered a -> Ast.E_unordered (g a)
  | Ast.E_enclosed a -> Ast.E_enclosed (g a)
  | Ast.E_flwor { clauses; where; order; return } ->
      let clauses =
        List.map
          (function
            | Ast.For_clause { var; pos_var; var_type; source } ->
                Ast.For_clause { var; pos_var; var_type; source = g source }
            | Ast.Let_clause { var; var_type; value } ->
                Ast.Let_clause { var; var_type; value = g value })
          clauses
      in
      Ast.E_flwor
        {
          clauses;
          where = Option.map g where;
          order = List.map (fun o -> { o with Ast.key = g o.Ast.key }) order;
          return = g return;
        }
  | Ast.E_quantified (q, binds, body) ->
      Ast.E_quantified
        (q, List.map (fun (v, t, e) -> (v, t, g e)) binds, g body)
  | Ast.E_typeswitch (op, cases, (dv, db)) ->
      Ast.E_typeswitch
        ( g op,
          List.map (fun c -> { c with Ast.case_body = g c.Ast.case_body }) cases,
          (dv, g db) )
  | Ast.E_direct_element { name; attributes; children } ->
      Ast.E_direct_element
        {
          name;
          attributes =
            List.map
              (fun (an, parts) ->
                ( an,
                  List.map
                    (function
                      | Ast.A_text t -> Ast.A_text t
                      | Ast.A_enclosed e -> Ast.A_enclosed (g e))
                    parts ))
              attributes;
          children = List.map g children;
        }
  | Ast.E_computed_element (a, b) -> Ast.E_computed_element (g a, g b)
  | Ast.E_computed_attribute (a, b) -> Ast.E_computed_attribute (g a, g b)
  | Ast.E_computed_text a -> Ast.E_computed_text (g a)
  | Ast.E_computed_comment a -> Ast.E_computed_comment (g a)
  | Ast.E_computed_pi (a, b) -> Ast.E_computed_pi (g a, g b)
  | Ast.E_computed_document a -> Ast.E_computed_document (g a)
  | Ast.E_insert (p, a, b) -> Ast.E_insert (p, g a, g b)
  | Ast.E_delete a -> Ast.E_delete (g a)
  | Ast.E_replace { value_of; target; source } ->
      Ast.E_replace { value_of; target = g target; source = g source }
  | Ast.E_rename (a, b) -> Ast.E_rename (g a, g b)
  | Ast.E_transform (binds, m, r) ->
      Ast.E_transform (List.map (fun (v, e) -> (v, g e)) binds, g m, g r)
  | Ast.E_block stmts -> Ast.E_block (List.map go_stmt stmts)
  | Ast.E_event_attach { event; binding; target; listener } ->
      Ast.E_event_attach { event = g event; binding; target = g target; listener }
  | Ast.E_event_detach { event; target; listener } ->
      Ast.E_event_detach { event = g event; target = g target; listener }
  | Ast.E_event_trigger { event; target } ->
      Ast.E_event_trigger { event = g event; target = g target }
  | Ast.E_set_style { property; target; value } ->
      Ast.E_set_style { property = g property; target = g target; value = g value }
  | Ast.E_get_style { property; target } ->
      Ast.E_get_style { property = g property; target = g target }

and go_ft = function
  | Ast.Ft_words (e, o) -> Ast.Ft_words (go e, o)
  | Ast.Ft_and (a, b) -> Ast.Ft_and (go_ft a, go_ft b)
  | Ast.Ft_or (a, b) -> Ast.Ft_or (go_ft a, go_ft b)
  | Ast.Ft_not a -> Ast.Ft_not (go_ft a)

and go_stmt = function
  | Ast.S_var_decl (v, t, e) -> Ast.S_var_decl (v, t, Option.map go e)
  | Ast.S_assign (v, e) -> Ast.S_assign (v, go e)
  | Ast.S_while (c, body) -> Ast.S_while (go c, List.map go_stmt body)
  | (Ast.S_break | Ast.S_continue) as s -> s
  | Ast.S_exit_with e -> Ast.S_exit_with (go e)
  | Ast.S_expr e -> Ast.S_expr (go e)

let optimize_expr e = go e

let optimize (prog : Ast.prog) =
  let prolog =
    List.map
      (function
        | Ast.P_function f ->
            Ast.P_function { f with Ast.body = Option.map go f.Ast.body }
        | Ast.P_variable (v, t, e) -> Ast.P_variable (v, t, Option.map go e)
        | d -> d)
      prog.Ast.prolog
  in
  { prog with Ast.prolog; body = Option.map go prog.Ast.body }
