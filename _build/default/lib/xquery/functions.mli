(** The XQuery 1.0 / XPath 2.0 built-in function and operator library
    ([fn:] namespace), ~90 functions: accessors, numerics, strings,
    regular expressions, booleans, sequences, aggregates, node
    functions, QNames, date/time component extraction, documents and
    context functions. *)

type impl = Call_ctx.t -> Xdm_item.sequence list -> Xdm_item.sequence

(** Look up a built-in by expanded name and arity. *)
val find : Xmlb.Qname.t -> arity:int -> impl option

(** All registered (uri, local, min_arity, max_arity). *)
val catalog : unit -> (string * string * int * int) list

(** Register an additional builtin (used by hosts, e.g. the [browser:]
    function library). [max_arity] of [-1] means variadic. *)
val register :
  uri:string -> local:string -> min_arity:int -> max_arity:int -> impl -> unit
