open Xmlb

let kind_matches (kt : Ast.kind_test) node =
  match (kt, Dom.kind node) with
  | Ast.Any_kind, _ -> true
  | Ast.Text_kind, Dom.Text -> true
  | Ast.Comment_kind, Dom.Comment -> true
  | Ast.Pi_kind target, Dom.Processing_instruction -> (
      match target with
      | None -> true
      | Some t -> Option.equal String.equal (Dom.pi_target node) (Some t))
  | Ast.Element_kind name, Dom.Element -> (
      match name with
      | None -> true
      | Some qn -> (
          match Dom.name node with
          | Some n -> Qname.equal n qn
          | None -> false))
  | Ast.Attribute_kind name, Dom.Attribute -> (
      match name with
      | None -> true
      | Some qn -> (
          match Dom.name node with
          | Some n -> Qname.equal n qn
          | None -> false))
  | Ast.Document_kind, Dom.Document -> true
  | _, _ -> false

let item_matches (it : Ast.item_type) (item : Xdm_item.item) =
  match (it, item) with
  | Ast.It_item, _ -> true
  | Ast.It_kind kt, Xdm_item.Node n -> kind_matches kt n
  | Ast.It_kind _, Xdm_item.Atomic _ -> false
  | Ast.It_atomic _, Xdm_item.Node _ -> false
  | Ast.It_atomic ty, Xdm_item.Atomic a ->
      Xdm_atomic.derives_from (Xdm_atomic.type_of a) ty

let occurrence_ok (occ : Ast.occurrence) n =
  match occ with
  | Ast.Occ_one -> n = 1
  | Ast.Occ_optional -> n <= 1
  | Ast.Occ_star -> true
  | Ast.Occ_plus -> n >= 1

let matches (st : Ast.seq_type) seq =
  match st with
  | Ast.St_empty -> seq = []
  | Ast.St (it, occ) ->
      occurrence_ok occ (List.length seq) && List.for_all (item_matches it) seq

let occurrence_to_string = function
  | Ast.Occ_one -> ""
  | Ast.Occ_optional -> "?"
  | Ast.Occ_star -> "*"
  | Ast.Occ_plus -> "+"

let kind_to_string = function
  | Ast.Any_kind -> "node()"
  | Ast.Text_kind -> "text()"
  | Ast.Comment_kind -> "comment()"
  | Ast.Pi_kind None -> "processing-instruction()"
  | Ast.Pi_kind (Some t) -> Printf.sprintf "processing-instruction(%s)" t
  | Ast.Element_kind None -> "element()"
  | Ast.Element_kind (Some q) -> Printf.sprintf "element(%s)" (Qname.to_string q)
  | Ast.Attribute_kind None -> "attribute()"
  | Ast.Attribute_kind (Some q) ->
      Printf.sprintf "attribute(%s)" (Qname.to_string q)
  | Ast.Document_kind -> "document-node()"

let item_type_to_string = function
  | Ast.It_item -> "item()"
  | Ast.It_kind kt -> kind_to_string kt
  | Ast.It_atomic ty -> "xs:" ^ Xdm_atomic.type_name ty

let to_string = function
  | Ast.St_empty -> "empty-sequence()"
  | Ast.St (it, occ) -> item_type_to_string it ^ occurrence_to_string occ

let coerce ~what st seq =
  let fail () =
    Xq_error.raise_error Xq_error.type_error_code
      "%s does not match required type %s (got %d item(s))" what (to_string st)
      (List.length seq)
  in
  match st with
  | Ast.St_empty -> if seq = [] then seq else fail ()
  | Ast.St (Ast.It_atomic ty, occ) ->
      (* function conversion rules: atomize, cast untyped, promote *)
      let atoms = Xdm_item.atomize seq in
      if not (occurrence_ok occ (List.length atoms)) then fail ();
      let convert a =
        let a =
          match a with
          | Xdm_atomic.Untyped _ when ty <> Xdm_atomic.T_untyped -> (
              try Xdm_atomic.cast ~target:ty a
              with Xdm_atomic.Cast_error m ->
                Xq_error.raise_error Xq_error.cast_error_code "%s: %s" what m)
          | a -> a
        in
        let actual = Xdm_atomic.type_of a in
        if Xdm_atomic.derives_from actual ty then a
        else
          (* numeric promotion: integer/decimal promote to double etc. *)
          match (actual, ty) with
          | (Xdm_atomic.T_integer | Xdm_atomic.T_decimal), Xdm_atomic.T_double ->
              Xdm_atomic.cast ~target:Xdm_atomic.T_double a
          | Xdm_atomic.T_integer, Xdm_atomic.T_decimal ->
              Xdm_atomic.cast ~target:Xdm_atomic.T_decimal a
          | Xdm_atomic.T_any_uri, Xdm_atomic.T_string ->
              Xdm_atomic.cast ~target:Xdm_atomic.T_string a
          | _ -> fail ()
      in
      List.map (fun a -> Xdm_item.Atomic (convert a)) atoms
  | Ast.St (it, occ) ->
      if occurrence_ok occ (List.length seq) && List.for_all (item_matches it) seq
      then seq
      else fail ()
