lib/xquery/seq_type.ml: Ast Dom List Option Printf Qname String Xdm_atomic Xdm_item Xmlb Xq_error
