lib/xquery/dynamic_context.ml: Call_ctx Dom Dom_event Hashtbl List Logs Map Pul Qname Static_context String Style_util Xdm_atomic Xdm_datetime Xdm_item Xmlb Xq_error
