lib/xquery/optimizer.ml: Ast List Option Qname Xdm_atomic Xmlb
