lib/xquery/ast.ml: List Option Qname Xdm_atomic Xmlb
