lib/xquery/xq_error.ml: Format Printf
