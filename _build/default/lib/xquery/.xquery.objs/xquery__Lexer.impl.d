lib/xquery/lexer.ml: Buffer Char Printf String Xmlb Xq_error
