lib/xquery/functions.ml: Buffer Call_ctx Char Dom Float Hashtbl List Option Printf Qname Str String Xdm_atomic Xdm_datetime Xdm_duration Xdm_item Xml_escape Xmlb Xq_error
