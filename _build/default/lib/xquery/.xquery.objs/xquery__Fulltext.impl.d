lib/xquery/fulltext.ml: List String
