lib/xquery/seq_type.mli: Ast Dom Xdm_item
