lib/xquery/pul.ml: Dom Format Hashtbl List Qname Xmlb Xq_error
