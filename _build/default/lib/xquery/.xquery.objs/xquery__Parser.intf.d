lib/xquery/parser.mli: Ast Static_context
