lib/xquery/static_context.ml: Ast Call_ctx Hashtbl List Option Qname String Xdm_item Xmlb Xq_error
