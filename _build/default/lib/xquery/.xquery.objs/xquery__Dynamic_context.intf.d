lib/xquery/dynamic_context.mli: Dom Hashtbl Map Pul Qname Static_context Xdm_datetime Xdm_item Xmlb
