lib/xquery/eval.ml: Ast Buffer Call_ctx Dom Dynamic_context Fulltext Functions List Option Pul Qname Seq_type Static_context String Xdm_atomic Xdm_item Xmlb Xq_error
