lib/xquery/parser.ml: Ast Buffer Lexer List Option Printf Qname Static_context String Xdm_atomic Xml_escape Xmlb Xq_error
