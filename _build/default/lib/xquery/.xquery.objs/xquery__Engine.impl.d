lib/xquery/engine.ml: Ast Dynamic_context Eval List Optimizer Parser Pul Qname Seq_type Static_context String Xmlb Xq_error
