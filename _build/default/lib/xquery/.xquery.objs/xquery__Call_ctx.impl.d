lib/xquery/call_ctx.ml: Dom Logs Xdm_datetime Xdm_item Xq_error
