lib/xquery/functions.mli: Call_ctx Xdm_item Xmlb
