lib/xquery/engine.mli: Ast Dynamic_context Qname Static_context Xdm_item Xmlb
