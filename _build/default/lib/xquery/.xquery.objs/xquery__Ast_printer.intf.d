lib/xquery/ast_printer.mli: Ast
