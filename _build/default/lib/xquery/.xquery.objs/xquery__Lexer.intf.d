lib/xquery/lexer.mli:
