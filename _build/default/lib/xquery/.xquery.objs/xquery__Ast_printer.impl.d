lib/xquery/ast_printer.ml: Ast Buffer List Option Printf Qname Seq_type String Xdm_atomic Xml_escape Xmlb
