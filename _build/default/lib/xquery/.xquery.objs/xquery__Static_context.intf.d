lib/xquery/static_context.mli: Ast Call_ctx Qname Xdm_item Xmlb
