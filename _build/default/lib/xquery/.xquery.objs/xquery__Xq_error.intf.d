lib/xquery/xq_error.mli: Format
