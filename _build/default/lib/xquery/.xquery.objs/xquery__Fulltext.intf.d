lib/xquery/fulltext.mli:
