lib/xquery/optimizer.mli: Ast
