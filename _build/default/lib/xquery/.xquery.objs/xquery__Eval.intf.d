lib/xquery/eval.mli: Ast Dynamic_context Qname Xdm_item Xmlb
