lib/xquery/style_util.ml: Dom List Option String Xmlb
