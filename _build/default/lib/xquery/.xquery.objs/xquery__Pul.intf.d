lib/xquery/pul.mli: Dom Format Qname Xmlb
