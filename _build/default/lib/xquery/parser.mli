(** Recursive-descent parser for XQuery 1.0 + Update Facility +
    Scripting + Full-Text subset + browser extensions.

    Parsing resolves all QNames against the evolving static context
    (prolog namespace declarations and constructor [xmlns] attributes),
    and records prolog declarations (functions, variables, options,
    module imports) into the supplied static context. *)

val parse_program : Static_context.t -> string -> Ast.prog

(** Hook invoked on [import module]: loads/registers the module into
    the static context. Set by {!Engine} to tie the parse/load knot. *)
val module_loader :
  (Static_context.t -> uri:string -> locations:string list -> unit) ref

(** Parse a single expression (no prolog). *)
val parse_expression : Static_context.t -> string -> Ast.expr
