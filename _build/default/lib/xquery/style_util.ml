(** Manipulation of CSS [style] attribute strings ("a: 1; b: 2"), used
    by the default implementation of the paper's [set style]/[get style]
    grammar extension (§4.5). *)

let parse s =
  String.split_on_char ';' s
  |> List.filter_map (fun decl ->
         match String.index_opt decl ':' with
         | None -> None
         | Some i ->
             let name = String.trim (String.sub decl 0 i) in
             let value =
               String.trim (String.sub decl (i + 1) (String.length decl - i - 1))
             in
             if name = "" then None else Some (name, value))

let to_string props =
  String.concat "; " (List.map (fun (n, v) -> n ^ ": " ^ v) props)

let get s name =
  List.assoc_opt (String.lowercase_ascii name)
    (List.map (fun (n, v) -> (String.lowercase_ascii n, v)) (parse s))

let set s name value =
  let props = parse s in
  let lname = String.lowercase_ascii name in
  let replaced = ref false in
  let props =
    List.map
      (fun (n, v) ->
        if String.lowercase_ascii n = lname then begin
          replaced := true;
          (n, value)
        end
        else (n, v))
      props
  in
  let props = if !replaced then props else props @ [ (name, value) ] in
  to_string props

let style_qname = Xmlb.Qname.make "style"

(** Read a style property from an element's [style] attribute. *)
let get_on_node node name =
  match Dom.attribute_local node "style" with
  | None -> None
  | Some s -> get s name

(** Set a style property on an element's [style] attribute. *)
let set_on_node node name value =
  let current = Option.value ~default:"" (Dom.attribute_local node "style") in
  Dom.set_attribute node style_qname (set current name value)
