(** SequenceType matching ([instance of], [typeswitch], [treat as],
    function signatures). *)

(** Does one item match an item type? *)
val item_matches : Ast.item_type -> Xdm_item.item -> bool

(** Does a kind test match a node? (shared with axis steps) *)
val kind_matches : Ast.kind_test -> Dom.node -> bool

(** Does a sequence match a sequence type? *)
val matches : Ast.seq_type -> Xdm_item.sequence -> bool

(** Enforce a sequence type with the function-conversion rules applied
    to atomic targets (untyped values cast to the expected atomic type,
    numeric promotion).
    @raise Xq_error.Error (XPTY0004) when the value cannot be made to
    match. [what] labels the error message. *)
val coerce : what:string -> Ast.seq_type -> Xdm_item.sequence -> Xdm_item.sequence

val to_string : Ast.seq_type -> string
