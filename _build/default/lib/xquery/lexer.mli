(** Tokenizer for XQuery (with update, scripting, full-text and browser
    extensions).

    XQuery lexing is context-sensitive: inside direct constructors the
    parser switches to raw character reading. The lexer therefore
    exposes both a token stream (with one-token lookahead/pushback) and
    raw character-level access at the current position. *)

type token =
  | T_integer of int
  | T_decimal of float
  | T_double of float
  | T_string of string  (** string literal, entities expanded *)
  | T_name of string  (** NCName, no colon *)
  | T_qname of string * string  (** prefix, local *)
  | T_ns_wildcard of string  (** [prefix:*] *)
  | T_local_wildcard of string  (** [*:local] *)
  | T_var of string * string option  (** [$local] or [$prefix:local] *)
  | T_lpar
  | T_rpar
  | T_lbracket
  | T_rbracket
  | T_lbrace
  | T_rbrace
  | T_comma
  | T_semi
  | T_dot
  | T_dotdot
  | T_slash
  | T_slashslash
  | T_at
  | T_colonequals  (** [:=] *)
  | T_coloncolon  (** [::] *)
  | T_star
  | T_plus
  | T_minus
  | T_eq  (** [=] *)
  | T_ne  (** [!=] *)
  | T_lt
  | T_le
  | T_gt
  | T_ge
  | T_ltlt
  | T_gtgt
  | T_vbar
  | T_question
  | T_tag_open  (** [<] immediately followed by a name start: [<name] *)
  | T_pragma of string  (** [(# ... #)] pragma contents, unparsed *)
  | T_eof

type t

val create : string -> t

(** Current token (computes and caches it). *)
val peek : t -> token

(** Consume the current token and return it. *)
val next : t -> token

(** Line/column of the current token, for error messages. *)
val position : t -> int * int

val error : t -> ('a, unit, string, 'b) format4 -> 'a

(** {1 Raw access for the direct-constructor sub-parser}

    Raw access invalidates the cached token; the next {!peek} re-lexes
    from the raw position. *)

val raw_peek : t -> char option
val raw_next : t -> char option
val raw_looking_at : t -> string -> bool
val raw_skip : t -> int -> unit

(** Read raw characters until the delimiter (consumed); fails at EOF. *)
val raw_until : t -> string -> string

val raw_read_name : t -> string
val raw_skip_space : t -> unit

val token_to_string : token -> string

(** {1 Backtracking} *)

type snapshot

val save : t -> snapshot
val restore : t -> snapshot -> unit
