(** A pragmatic subset of XQuery Full-Text: tokenization, case folding,
    optional stemming — enough for the paper's [ftcontains] examples
    (e.g. ["dog" with stemming) ftand "cat"], §3.1). *)

(** Tokenize on non-alphanumeric boundaries and case-fold. *)
val tokens : string -> string list

(** A Porter-style suffix stemmer (simplified). *)
val stem : string -> string

(** [contains ~stemming haystack phrase] — does the haystack contain
    all the tokens of [phrase] as a contiguous phrase? With [stemming],
    both sides are stemmed first. *)
val contains : stemming:bool -> string -> string -> bool
