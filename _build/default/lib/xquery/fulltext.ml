let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let tokens s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else if not (is_word_char s.[i]) then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && is_word_char s.[!j] do
        incr j
      done;
      let word = String.lowercase_ascii (String.sub s i (!j - i)) in
      go !j (word :: acc)
    end
  in
  go 0 []

(* A compact Porter-style stemmer: strips common English suffixes with
   minimal-length guards. Deliberately approximate: full-text here only
   needs to make "dogs"/"dog", "stemming"/"stem" style pairs meet. *)
let stem w =
  let strip suffix min_stem w =
    let lw = String.length w and ls = String.length suffix in
    if lw - ls >= min_stem && lw >= ls && String.sub w (lw - ls) ls = suffix then
      Some (String.sub w 0 (lw - ls))
    else None
  in
  let rules =
    [
      ("ational", 4, "ate");
      ("ization", 4, "ize");
      ("fulness", 4, "ful");
      ("iveness", 4, "ive");
      ("ements", 3, "ement");
      ("ement", 3, "e");
      ("ities", 3, "ity");
      ("ingly", 3, "");
      ("edly", 3, "");
      ("ing", 3, "");
      ("ies", 2, "y");
      ("sses", 3, "ss");
      ("ed", 3, "");
      ("es", 3, "");
      ("ly", 3, "");
      ("s", 3, "");
    ]
  in
  let rec try_rules = function
    | [] -> w
    | (suffix, min_stem, replacement) :: rest -> (
        match strip suffix min_stem w with
        | Some stemmed ->
            let r = stemmed ^ replacement in
            (* undouble final consonant: "stemm" -> "stem" *)
            let lr = String.length r in
            if
              lr >= 2
              && r.[lr - 1] = r.[lr - 2]
              && not (List.mem r.[lr - 1] [ 'l'; 's'; 'z' ])
            then String.sub r 0 (lr - 1)
            else r
        | None -> try_rules rest)
  in
  try_rules rules

let contains ~stemming haystack phrase =
  let normalize toks = if stemming then List.map stem toks else toks in
  let hay = normalize (tokens haystack) in
  let needle = normalize (tokens phrase) in
  match needle with
  | [] -> true
  | _ ->
      let rec at_prefix hay needle =
        match (hay, needle) with
        | _, [] -> true
        | [], _ -> false
        | h :: hs, n :: ns -> String.equal h n && at_prefix hs ns
      in
      let rec scan = function
        | [] -> false
        | _ :: rest as hay -> at_prefix hay needle || scan rest
      in
      scan hay
