type token =
  | T_integer of int
  | T_decimal of float
  | T_double of float
  | T_string of string
  | T_name of string
  | T_qname of string * string
  | T_ns_wildcard of string
  | T_local_wildcard of string
  | T_var of string * string option
  | T_lpar
  | T_rpar
  | T_lbracket
  | T_rbracket
  | T_lbrace
  | T_rbrace
  | T_comma
  | T_semi
  | T_dot
  | T_dotdot
  | T_slash
  | T_slashslash
  | T_at
  | T_colonequals
  | T_coloncolon
  | T_star
  | T_plus
  | T_minus
  | T_eq
  | T_ne
  | T_lt
  | T_le
  | T_gt
  | T_ge
  | T_ltlt
  | T_gtgt
  | T_vbar
  | T_question
  | T_tag_open
  | T_pragma of string
  | T_eof

type t = {
  src : string;
  mutable pos : int;  (** raw position: start of the cached token if any *)
  mutable cached : (token * int) option;  (** token and position after it *)
  mutable tok_line : int;
  mutable tok_col : int;
}

let create src = { src; pos = 0; cached = None; tok_line = 1; tok_col = 1 }

let err_at line col fmt =
  Printf.ksprintf
    (fun m ->
      Xq_error.raise_error Xq_error.syntax "line %d, col %d: %s" line col m)
    fmt

let line_col lx pos =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (pos - 1) (String.length lx.src - 1) do
    if lx.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let error lx fmt =
  let line, col = line_col lx lx.pos in
  err_at line col fmt

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || Char.code c >= 0x80

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

(* skip whitespace and (: nested comments :) starting at [i] *)
let rec skip_ignorable src i =
  let n = String.length src in
  if i >= n then i
  else if is_space src.[i] then skip_ignorable src (i + 1)
  else if i + 1 < n && src.[i] = '(' && src.[i + 1] = ':' then begin
    let rec comment i depth =
      if i + 1 >= n then failwith "unterminated comment"
      else if src.[i] = '(' && src.[i + 1] = ':' then comment (i + 2) (depth + 1)
      else if src.[i] = ':' && src.[i + 1] = ')' then
        if depth = 1 then i + 2 else comment (i + 2) (depth - 1)
      else comment (i + 1) depth
    in
    skip_ignorable src (comment (i + 2) 1)
  end
  else i

let read_ncname src i =
  let n = String.length src in
  let j = ref i in
  while !j < n && is_name_char src.[!j] do
    incr j
  done;
  (String.sub src i (!j - i), !j)

let read_string_literal src i line col =
  let n = String.length src in
  let q = src.[i] in
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= n then err_at line col "unterminated string literal"
    else if src.[i] = q then
      if i + 1 < n && src.[i + 1] = q then begin
        Buffer.add_char buf q;
        go (i + 2)
      end
      else (Buffer.contents buf, i + 1)
    else begin
      Buffer.add_char buf src.[i];
      go (i + 1)
    end
  in
  let raw, j = go (i + 1) in
  let expanded =
    try Xmlb.Xml_escape.unescape raw
    with Failure m -> err_at line col "%s" m
  in
  (expanded, j)

let read_number src i line col =
  let n = String.length src in
  let j = ref i in
  while !j < n && is_digit src.[!j] do
    incr j
  done;
  let is_decimal = ref false and is_double = ref false in
  if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1] then begin
    is_decimal := true;
    incr j;
    while !j < n && is_digit src.[!j] do
      incr j
    done
  end
  else if !j < n && src.[!j] = '.' && !j = i then
    err_at line col "malformed number";
  if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
    let k = ref (!j + 1) in
    if !k < n && (src.[!k] = '+' || src.[!k] = '-') then incr k;
    if !k < n && is_digit src.[!k] then begin
      is_double := true;
      j := !k;
      while !j < n && is_digit src.[!j] do
        incr j
      done
    end
  end;
  let text = String.sub src i (!j - i) in
  let tok =
    if !is_double then T_double (float_of_string text)
    else if !is_decimal then T_decimal (float_of_string text)
    else
      match int_of_string_opt text with
      | Some v -> T_integer v
      | None -> T_double (float_of_string text)
  in
  (tok, !j)

let lex_from lx i =
  let src = lx.src in
  let n = String.length src in
  let i = try skip_ignorable src i with Failure m -> error lx "%s" m in
  let line, col = line_col lx i in
  lx.tok_line <- line;
  lx.tok_col <- col;
  if i >= n then (T_eof, i)
  else
    let c = src.[i] in
    let two = if i + 1 < n then String.sub src i 2 else "" in
    match c with
    | '(' when two = "(#" -> (
        (* pragma: (# name content #) *)
        let rec find j =
          if j + 1 >= n then err_at line col "unterminated pragma"
          else if src.[j] = '#' && src.[j + 1] = ')' then j
          else find (j + 1)
        in
        let e = find (i + 2) in
        (T_pragma (String.trim (String.sub src (i + 2) (e - i - 2))), e + 2))
    | '(' -> (T_lpar, i + 1)
    | ')' -> (T_rpar, i + 1)
    | '[' -> (T_lbracket, i + 1)
    | ']' -> (T_rbracket, i + 1)
    | '{' -> (T_lbrace, i + 1)
    | '}' -> (T_rbrace, i + 1)
    | ',' -> (T_comma, i + 1)
    | ';' -> (T_semi, i + 1)
    | '?' -> (T_question, i + 1)
    | '@' -> (T_at, i + 1)
    | '|' -> (T_vbar, i + 1)
    | '+' -> (T_plus, i + 1)
    | '-' -> (T_minus, i + 1)
    | '=' -> (T_eq, i + 1)
    | '!' when two = "!=" -> (T_ne, i + 1 + 1)
    | '!' -> err_at line col "unexpected character '!'"
    | '<' when two = "<<" -> (T_ltlt, i + 2)
    | '<' when two = "<=" -> (T_le, i + 2)
    | '<' when i + 1 < n && (is_name_start src.[i + 1] || src.[i + 1] = '/' || src.[i + 1] = '!' || src.[i + 1] = '?') ->
        (T_tag_open, i + 1)
    | '<' -> (T_lt, i + 1)
    | '>' when two = ">>" -> (T_gtgt, i + 2)
    | '>' when two = ">=" -> (T_ge, i + 2)
    | '>' -> (T_gt, i + 1)
    | ':' when two = ":=" -> (T_colonequals, i + 2)
    | ':' when two = "::" -> (T_coloncolon, i + 2)
    | ':' -> err_at line col "unexpected ':'"
    | '/' when two = "//" -> (T_slashslash, i + 2)
    | '/' -> (T_slash, i + 1)
    | '.' when two = ".." -> (T_dotdot, i + 2)
    | '.' when i + 1 < n && is_digit src.[i + 1] ->
        read_number src i line col
    | '.' -> (T_dot, i + 1)
    | '*' when two = "*:" && i + 2 < n && is_name_start src.[i + 2] ->
        let name, j = read_ncname src (i + 2) in
        (T_local_wildcard name, j)
    | '*' -> (T_star, i + 1)
    | '$' ->
        if i + 1 >= n || not (is_name_start src.[i + 1]) then
          err_at line col "expected variable name after '$'"
        else begin
          let name, j = read_ncname src (i + 1) in
          if j < n && src.[j] = ':' && j + 1 < n && is_name_start src.[j + 1] then
            let local, k = read_ncname src (j + 1) in
            (T_var (local, Some name), k)
          else (T_var (name, None), j)
        end
    | '"' | '\'' ->
        let s, j = read_string_literal src i line col in
        (T_string s, j)
    | c when is_digit c -> read_number src i line col
    | c when is_name_start c ->
        let name, j = read_ncname src i in
        if j < n && src.[j] = ':' then
          if j + 1 < n && is_name_start src.[j + 1] then
            (* avoid consuming axis '::' as QName *)
            let local, k = read_ncname src (j + 1) in
            (T_qname (name, local), k)
          else if j + 1 < n && src.[j + 1] = '*' then
            (T_ns_wildcard name, j + 2)
          else (T_name name, j)
        else (T_name name, j)
    | c -> err_at line col "unexpected character %C" c

let peek lx =
  match lx.cached with
  | Some (tok, _) -> tok
  | None ->
      let tok, after = lex_from lx lx.pos in
      lx.cached <- Some (tok, after);
      tok

let next lx =
  let tok = peek lx in
  (match lx.cached with
  | Some (_, after) -> lx.pos <- after
  | None -> ());
  lx.cached <- None;
  tok

let position lx =
  ignore (peek lx);
  (lx.tok_line, lx.tok_col)

(* ------------- raw access ------------- *)

let invalidate lx = lx.cached <- None

let raw_peek lx =
  invalidate lx;
  if lx.pos >= String.length lx.src then None else Some lx.src.[lx.pos]

let raw_next lx =
  invalidate lx;
  if lx.pos >= String.length lx.src then None
  else begin
    let c = lx.src.[lx.pos] in
    lx.pos <- lx.pos + 1;
    Some c
  end

let raw_looking_at lx s =
  invalidate lx;
  let n = String.length s in
  lx.pos + n <= String.length lx.src && String.sub lx.src lx.pos n = s

let raw_skip lx n =
  invalidate lx;
  lx.pos <- min (String.length lx.src) (lx.pos + n)

let raw_until lx delim =
  invalidate lx;
  let n = String.length lx.src and d = String.length delim in
  let rec find i =
    if i + d > n then error lx "expected %S before end of input" delim
    else if String.sub lx.src i d = delim then i
    else find (i + 1)
  in
  let e = find lx.pos in
  let content = String.sub lx.src lx.pos (e - lx.pos) in
  lx.pos <- e + d;
  content

let raw_read_name lx =
  invalidate lx;
  match raw_peek lx with
  | Some c when is_name_start c ->
      let name, j = read_ncname lx.src lx.pos in
      let name, j =
        if j < String.length lx.src && lx.src.[j] = ':' && j + 1 < String.length lx.src
           && is_name_start lx.src.[j + 1]
        then
          let local, k = read_ncname lx.src (j + 1) in
          (name ^ ":" ^ local, k)
        else (name, j)
      in
      lx.pos <- j;
      name
  | _ -> error lx "expected a name"

let raw_skip_space lx =
  invalidate lx;
  while lx.pos < String.length lx.src && is_space lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done

let token_to_string = function
  | T_integer i -> string_of_int i
  | T_decimal f | T_double f -> string_of_float f
  | T_string s -> Printf.sprintf "%S" s
  | T_name n -> n
  | T_qname (p, l) -> p ^ ":" ^ l
  | T_ns_wildcard p -> p ^ ":*"
  | T_local_wildcard l -> "*:" ^ l
  | T_var (l, None) -> "$" ^ l
  | T_var (l, Some p) -> "$" ^ p ^ ":" ^ l
  | T_lpar -> "("
  | T_rpar -> ")"
  | T_lbracket -> "["
  | T_rbracket -> "]"
  | T_lbrace -> "{"
  | T_rbrace -> "}"
  | T_comma -> ","
  | T_semi -> ";"
  | T_dot -> "."
  | T_dotdot -> ".."
  | T_slash -> "/"
  | T_slashslash -> "//"
  | T_at -> "@"
  | T_colonequals -> ":="
  | T_coloncolon -> "::"
  | T_star -> "*"
  | T_plus -> "+"
  | T_minus -> "-"
  | T_eq -> "="
  | T_ne -> "!="
  | T_lt -> "<"
  | T_le -> "<="
  | T_gt -> ">"
  | T_ge -> ">="
  | T_ltlt -> "<<"
  | T_gtgt -> ">>"
  | T_vbar -> "|"
  | T_question -> "?"
  | T_tag_open -> "<tag"
  | T_pragma p -> "(# " ^ p ^ " #)"
  | T_eof -> "<eof>"

type snapshot = int * (token * int) option

let save lx = (lx.pos, lx.cached)

let restore lx (pos, cached) =
  lx.pos <- pos;
  lx.cached <- cached
