type t = { code : string; message : string }

exception Error of t

let raise_error code fmt =
  Printf.ksprintf (fun message -> raise (Error { code; message })) fmt

let syntax = "XPST0003"
let undefined_variable = "XPST0008"
let unknown_function = "XPST0017"
let type_error_code = "XPTY0004"
let cast_error_code = "FORG0001"
let ebv_error = "FORG0006"
let div_by_zero = "FOAR0001"
let update_conflict_rename = "XUDY0015"
let update_conflict_replace = "XUDY0017"
let update_target = "XUTY0005"
let security = "SEBR0001"

let to_string { code; message } = Printf.sprintf "[%s] %s" code message
let pp ppf e = Format.pp_print_string ppf (to_string e)
