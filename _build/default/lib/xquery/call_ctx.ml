(** The focus and host services visible to built-in and external
    functions. The evaluator builds one per function call; host
    environments (browser, application server, web services) override
    the hooks. *)

type t = {
  context_item : Xdm_item.item option;
  position : int;
  size : int;
  doc : string -> Dom.node;
      (** resolve a document URI; hosts may raise a security error
          (the paper blocks [fn:doc] in the browser, §4.2.1) *)
  doc_available : string -> bool;
  put : Dom.node -> string -> unit;
      (** [fn:put]; hosts may raise a security error (blocked in the
          browser, §4.2.1) or persist to a store (server-side) *)
  now : unit -> Xdm_datetime.t;
  trace : string -> unit;
}

(** A deterministic default: documents unavailable, clock fixed to the
    paper's publication week. *)
let default =
  {
    context_item = None;
    position = 0;
    size = 0;
    doc =
      (fun uri ->
        Xq_error.raise_error "FODC0002" "document %S is not available" uri);
    doc_available = (fun _ -> false);
    put =
      (fun _ uri ->
        Xq_error.raise_error "FOUP0002" "fn:put to %S is not supported" uri);
    now =
      (fun () ->
        Xdm_datetime.make ~year:2008 ~month:6 ~day:9 ~hour:12 ~tz_minutes:0 ());
    trace = (fun s -> Logs.info (fun m -> m "fn:trace: %s" s));
  }
