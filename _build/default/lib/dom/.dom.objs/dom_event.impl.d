lib/dom/dom_event.ml: Dom Hashtbl List Option String
