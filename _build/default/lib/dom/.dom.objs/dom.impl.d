lib/dom/dom.ml: Format Hashtbl Int List Option Printf Qname String Xml_parser Xml_serializer Xmlb
