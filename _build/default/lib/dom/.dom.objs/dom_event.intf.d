lib/dom/dom_event.mli: Dom
