lib/dom/dom.mli: Format Qname Xml_parser Xmlb
