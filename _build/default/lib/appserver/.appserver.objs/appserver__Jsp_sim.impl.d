lib/appserver/jsp_sim.ml: Buffer Http_sim List Minijs Sql_lite String Xqib
