lib/appserver/jsp_sim.mli: Http_sim Sql_lite
