lib/appserver/app_server.ml: Doc_store Dom Hashtbl Http_sim List Option String Virtual_clock Xdm_atomic Xdm_item Xquery
