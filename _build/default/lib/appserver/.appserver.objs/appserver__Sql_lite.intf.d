lib/appserver/sql_lite.mli:
