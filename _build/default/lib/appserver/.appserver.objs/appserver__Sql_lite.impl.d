lib/appserver/sql_lite.ml: Buffer Float Hashtbl List Printf String
