lib/appserver/migration.mli: App_server
