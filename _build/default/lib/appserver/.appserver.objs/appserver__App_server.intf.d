lib/appserver/app_server.mli: Doc_store Http_sim
