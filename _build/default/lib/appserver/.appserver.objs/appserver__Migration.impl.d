lib/appserver/migration.ml: App_server Buffer Doc_store Dom List Option Printf Qname Rest String Xdm_atomic Xdm_item Xmlb Xquery
