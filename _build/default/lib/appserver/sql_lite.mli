(** A micro relational engine: the SQL database behind the paper's
    baseline JSP shopping cart (§6.3 uses
    ["SELECT * FROM PRODUCTS"]). Supports CREATE-free table
    registration, SELECT with projection, WHERE equality/comparison
    conjunctions, ORDER BY, and INSERT. *)

type value = Int of int | Float of float | Text of string | Null

type row = (string * value) list

type t

val create : unit -> t

(** Register a table with column names. *)
val create_table : t -> name:string -> columns:string list -> unit

val insert_row : t -> table:string -> value list -> unit

exception Sql_error of string

(** Execute ["SELECT a, b FROM t WHERE c = 'x' ORDER BY a"] (or
    [SELECT *]; INSERT INTO t VALUES (...)). Returns the result rows
    (empty for INSERT). *)
val query : t -> string -> row list

val value_to_string : value -> string
val table_names : t -> string list
val row_count : t -> table:string -> int
