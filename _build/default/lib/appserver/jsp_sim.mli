(** A JSP-style server page engine — the paper's baseline stack
    (§6.3): HTML templates with [<% ... %>] scriptlets and
    [<%= ... %>] expressions in the JavaScript subset, plus SQL access
    to {!Sql_lite} via [statement.executeQuery(...)] (ResultSet-style,
    as in the paper's listing) or [sql.query(...)] (array of row
    objects). [out.println(...)] appends to the response. *)

type t

val create : ?db:Sql_lite.t -> unit -> t
val db : t -> Sql_lite.t

exception Render_error of string

(** Render a template to an HTML string. *)
val render : t -> string -> string

(** Serve templates over the simulated network: [register_page] binds
    a path on a host to a template, rendered per request. *)
val register_page : t -> Http_sim.t -> host:string -> path:string -> string -> unit

(** Number of server-side renders performed. *)
val render_count : t -> int
