(** Server-to-client migration of XQuery page programs — the Reference
    2.0 technique of §6.1:

    - the prolog of the server page is moved verbatim into a
      [<script type="text/xquery">] tag;
    - the contents enclosed in the outermost element constructors
      (formerly computed by the server) are removed, replaced by
      placeholder slots, and re-emitted as [insert] expressions run by
      the client when the page loads;
    - [fn:doc(...)] calls are rewritten to [rest:get(...)] against the
      server's whole-document REST interface (the store serves whole
      documents "to better enable caching"). *)

(** [migrate ~doc_base source] transforms a server page program into a
    client-side HTML page string. [doc_base] is the URI prefix
    documents are served under (e.g.
    ["http://www.elsevier.example/docs/"]).
    @raise Xquery.Xq_error.Error if the page body is not an element
    constructor. *)
val migrate : doc_base:string -> string -> string

(** Convenience: migrate a page registered on an app server and serve
    the result as a static page at [client_path]. Returns the client
    page text. *)
val migrate_server_page :
  App_server.t -> path:string -> client_path:string -> string
