type value = Int of int | Float of float | Text of string | Null

type row = (string * value) list

type table = { columns : string list; mutable rows : value list list }

type t = { tables : (string, table) Hashtbl.t }

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Sql_error m)) fmt

let create () = { tables = Hashtbl.create 8 }

let create_table t ~name ~columns =
  Hashtbl.replace t.tables (String.uppercase_ascii name) { columns; rows = [] }

let find_table t name =
  match Hashtbl.find_opt t.tables (String.uppercase_ascii name) with
  | Some tbl -> tbl
  | None -> fail "unknown table %s" name

let insert_row t ~table values =
  let tbl = find_table t table in
  if List.length values <> List.length tbl.columns then
    fail "arity mismatch inserting into %s" table;
  tbl.rows <- tbl.rows @ [ values ]

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Text s -> s
  | Null -> ""

let table_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables []
let row_count t ~table = List.length (find_table t table).rows

(* ---------------- tiny SQL front end ---------------- *)

type token = Word of string | Str_lit of string | Num_lit of float | Punct of char

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '\'' then begin
      let buf = Buffer.create 8 in
      incr i;
      let rec go () =
        if !i >= n then fail "unterminated string literal"
        else if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2;
            go ()
          end
          else incr i
        else begin
          Buffer.add_char buf s.[!i];
          incr i;
          go ()
        end
      in
      go ();
      toks := Str_lit (Buffer.contents buf) :: !toks
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while !i < n && ((s.[!i] >= '0' && s.[!i] <= '9') || s.[!i] = '.') do
        incr i
      done;
      toks := Num_lit (float_of_string (String.sub s start (!i - start))) :: !toks
    end
    else if
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '*'
    then begin
      let start = !i in
      incr i;
      while
        !i < n
        && ((s.[!i] >= 'a' && s.[!i] <= 'z')
           || (s.[!i] >= 'A' && s.[!i] <= 'Z')
           || (s.[!i] >= '0' && s.[!i] <= '9')
           || s.[!i] = '_')
      do
        incr i
      done;
      toks := Word (String.sub s start (!i - start)) :: !toks
    end
    else begin
      toks := Punct c :: !toks;
      incr i
    end
  done;
  List.rev !toks

let kw w = Word (String.uppercase_ascii w)

let value_compare a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | (Int _ | Float _), (Int _ | Float _) ->
      let f = function Int i -> float_of_int i | Float f -> f | _ -> 0. in
      Float.compare (f a) (f b)
  | Text x, Text y -> String.compare x y
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | _ -> compare (value_to_string a) (value_to_string b)

let query t sql =
  let toks = List.map (function Word w -> kw w | t -> t) (tokenize sql) in
  match toks with
  | Word "INSERT" :: Word "INTO" :: Word table :: Word "VALUES" :: Punct '(' :: rest ->
      let rec values acc = function
        | Str_lit s :: rest -> next (Text s :: acc) rest
        | Num_lit f :: rest ->
            let v = if Float.is_integer f then Int (int_of_float f) else Float f in
            next (v :: acc) rest
        | Word "NULL" :: rest -> next (Null :: acc) rest
        | _ -> fail "malformed VALUES"
      and next acc = function
        | Punct ',' :: rest -> values acc rest
        | Punct ')' :: _ -> List.rev acc
        | _ -> fail "malformed VALUES"
      in
      insert_row t ~table (values [] rest);
      []
  | Word "SELECT" :: rest ->
      (* projection *)
      let rec proj acc = function
        | Word "FROM" :: rest -> (List.rev acc, rest)
        | Word c :: Punct ',' :: rest -> proj (c :: acc) rest
        | Word c :: rest -> proj (c :: acc) rest
        | _ -> fail "malformed SELECT list"
      in
      let cols, rest = proj [] rest in
      let table, rest =
        match rest with
        | Word name :: rest -> (find_table t name, rest)
        | _ -> fail "expected table name after FROM"
      in
      (* WHERE conjunction of comparisons *)
      let conds, rest =
        match rest with
        | Word "WHERE" :: rest ->
            let rec conds acc = function
              | Word col :: Punct '=' :: lit :: rest -> cond acc col "=" lit rest
              | Word col :: Punct '<' :: Punct '=' :: lit :: rest ->
                  cond acc col "<=" lit rest
              | Word col :: Punct '>' :: Punct '=' :: lit :: rest ->
                  cond acc col ">=" lit rest
              | Word col :: Punct '<' :: Punct '>' :: lit :: rest ->
                  cond acc col "<>" lit rest
              | Word col :: Punct '<' :: lit :: rest -> cond acc col "<" lit rest
              | Word col :: Punct '>' :: lit :: rest -> cond acc col ">" lit rest
              | rest -> (List.rev acc, rest)
            and cond acc col op lit rest =
              let v =
                match lit with
                | Str_lit s -> Text s
                | Num_lit f ->
                    if Float.is_integer f then Int (int_of_float f) else Float f
                | Word "NULL" -> Null
                | _ -> fail "malformed WHERE literal"
              in
              match rest with
              | Word "AND" :: rest -> conds ((col, op, v) :: acc) rest
              | rest -> (List.rev ((col, op, v) :: acc), rest)
            in
            conds [] rest
        | rest -> ([], rest)
      in
      let order_by =
        match rest with
        | Word "ORDER" :: Word "BY" :: Word col :: rest ->
            let desc = match rest with Word "DESC" :: _ -> true | _ -> false in
            Some (col, desc)
        | [] -> None
        | _ -> fail "unsupported SQL tail"
      in
      let col_index name =
        let rec idx i = function
          | [] -> fail "unknown column %s" name
          | c :: _ when String.uppercase_ascii c = String.uppercase_ascii name -> i
          | _ :: rest -> idx (i + 1) rest
        in
        idx 0 table.columns
      in
      let matches row =
        List.for_all
          (fun (col, op, v) ->
            let actual = List.nth row (col_index col) in
            let c = value_compare actual v in
            match op with
            | "=" -> c = 0
            | "<>" -> c <> 0
            | "<" -> c < 0
            | "<=" -> c <= 0
            | ">" -> c > 0
            | ">=" -> c >= 0
            | _ -> false)
          conds
      in
      let rows = List.filter matches table.rows in
      let rows =
        match order_by with
        | None -> rows
        | Some (col, desc) ->
            let i = col_index col in
            let sorted =
              List.stable_sort
                (fun a b -> value_compare (List.nth a i) (List.nth b i))
                rows
            in
            if desc then List.rev sorted else sorted
      in
      let out_cols =
        match cols with [ "*" ] -> table.columns | cols -> cols
      in
      List.map
        (fun row ->
          List.map (fun c -> (c, List.nth row (col_index c))) out_cols)
        rows
  | _ -> fail "unsupported SQL statement: %s" sql
