(** The XQuery application server of the paper's §6.1 architecture:
    serves Web pages produced by server-side XQuery programs, with data
    from an XML document store available via REST calls (the MarkLogic
    stand-in). Each request to an XQuery page evaluates the program
    against the store and serializes the resulting element. *)

type t

(** Create a server on a host (e.g. ["www.elsevier.example"]); attaches
    its document store at [/docs/]. *)
val create : Http_sim.t -> host:string -> t

val host : t -> string
val store : t -> Doc_store.t
val http : t -> Http_sim.t

(** Register an XQuery page program at a path. The program is compiled
    once; each GET evaluates it ([fn:doc] resolves against the store)
    and serializes the result. *)
val add_xquery_page : t -> path:string -> string -> unit

(** Register a static page body. *)
val add_static_page : t -> path:string -> ?content_type:string -> string -> unit

(** Serve an XQuery library module (content-type [application/xquery])
    so clients can [import module ... at] it. *)
val add_module : t -> path:string -> string -> unit

(** Server-side page evaluations performed (the server CPU-work metric
    of the offload experiment, Fig. 2). *)
val evaluations : t -> int

(** The base URI a stored document is served under. *)
val doc_uri : t -> name:string -> string

(** The original source of an XQuery page (used by the migration
    tool). *)
val page_source : t -> path:string -> string option

(** Render a registered XQuery page directly (used by the migration
    tool and tests). *)
val render_page : t -> path:string -> string
