lib/xmlb/xml_parser.mli: Format Qname
