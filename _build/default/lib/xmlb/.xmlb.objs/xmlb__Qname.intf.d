lib/xmlb/qname.mli: Format
