lib/xmlb/xml_escape.ml: Buffer Char List Printf String
