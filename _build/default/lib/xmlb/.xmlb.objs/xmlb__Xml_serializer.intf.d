lib/xmlb/xml_serializer.mli: Xml_parser
