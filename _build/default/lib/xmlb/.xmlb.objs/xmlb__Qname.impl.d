lib/xmlb/qname.ml: Format Hashtbl Map Option Printf String
