lib/xmlb/xml_serializer.ml: Buffer List Map Option Qname String Xml_escape Xml_parser
