lib/xmlb/xml_parser.ml: Buffer Char Format List Printf Qname String Xml_escape
