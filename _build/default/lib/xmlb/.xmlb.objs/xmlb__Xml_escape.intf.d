lib/xmlb/xml_escape.mli:
