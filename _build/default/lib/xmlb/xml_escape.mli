(** Escaping and unescaping of XML character data. *)

(** Escape text content: ampersand and angle brackets. *)
val text : string -> string

(** Escape attribute values (double-quote delimited): ampersand, angle
    brackets and the double quote. *)
val attribute : string -> string

(** Expand the predefined entities ([&amp;amp; &amp;lt; &amp;gt; &amp;quot;
    &amp;apos;]) and numeric character references ([&amp;#NN; &amp;#xHH;],
    encoded as UTF-8).
    @raise Failure on a malformed or unknown entity reference. *)
val unescape : string -> string

(** UTF-8 encode a Unicode code point.
    @raise Failure if the code point is out of range. *)
val utf8_of_code_point : int -> string

(** Decode a UTF-8 string into code points.
    @raise Failure on invalid UTF-8. *)
val code_points : string -> int list
