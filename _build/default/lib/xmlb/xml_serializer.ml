type options = { indent : bool; xml_declaration : bool }

let default_options = { indent = false; xml_declaration = false }

(* Namespace fixup: emit xmlns declarations so that reparsing resolves
   every name to the same URI. [scope] maps prefix -> uri currently in
   force ("" = default namespace). *)
module Smap = Map.Make (String)

let prefix_key (q : Qname.t) = Option.value ~default:"" q.Qname.prefix
let uri_of (q : Qname.t) = Option.value ~default:"" q.Qname.uri

let needed_declarations scope name attrs =
  (* declarations required so [name] and [attrs] resolve correctly *)
  let need = ref [] in
  let scope = ref scope in
  let declare prefix uri =
    if not (List.mem_assoc prefix !need) then begin
      need := (prefix, uri) :: !need;
      scope := Smap.add prefix uri !scope
    end
  in
  let check ~is_attr (q : Qname.t) =
    let p = prefix_key q and u = uri_of q in
    (* unprefixed attributes are in no namespace: nothing to declare *)
    if is_attr && p = "" then ()
    else
      let bound = Option.value ~default:"" (Smap.find_opt p !scope) in
      if bound <> u && not (p = "xml" || p = "xmlns") then declare p u
  in
  check ~is_attr:false name;
  List.iter (fun { Xml_parser.name = an; _ } -> check ~is_attr:true an) attrs;
  (List.rev !need, !scope)

let rec emit ?(scope = Smap.empty) buf ~indent ~level tree =
  let pad () =
    if indent then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * level) ' ')
    end
  in
  match tree with
  | Xml_parser.Text t -> Buffer.add_string buf (Xml_escape.text t)
  | Xml_parser.Comment c ->
      pad ();
      Buffer.add_string buf "<!--";
      Buffer.add_string buf c;
      Buffer.add_string buf "-->"
  | Xml_parser.Pi (target, data) ->
      pad ();
      Buffer.add_string buf "<?";
      Buffer.add_string buf target;
      if data <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf data
      end;
      Buffer.add_string buf "?>"
  | Xml_parser.Element (name, attrs, children) ->
      pad ();
      let declarations, scope = needed_declarations scope name attrs in
      let n = Qname.to_string name in
      Buffer.add_char buf '<';
      Buffer.add_string buf n;
      List.iter
        (fun (prefix, uri) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf
            (if prefix = "" then "xmlns" else "xmlns:" ^ prefix);
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (Xml_escape.attribute uri);
          Buffer.add_char buf '"')
        declarations;
      List.iter
        (fun { Xml_parser.name = an; value } ->
          (* skip literal xmlns attributes: fixup regenerates them *)
          if
            an.Qname.prefix = Some "xmlns"
            || (an.Qname.prefix = None && an.Qname.local = "xmlns")
          then ()
          else begin
            Buffer.add_char buf ' ';
            Buffer.add_string buf (Qname.to_string an);
            Buffer.add_string buf "=\"";
            Buffer.add_string buf (Xml_escape.attribute value);
            Buffer.add_char buf '"'
          end)
        attrs;
      if children = [] then Buffer.add_string buf "/>"
      else if
        (* script/style bodies round-trip as raw text (cf. the parser) *)
        match String.lowercase_ascii name.Qname.local with
        | "script" | "style" -> true
        | _ -> false
      then begin
        Buffer.add_char buf '>';
        List.iter
          (function
            | Xml_parser.Text t -> Buffer.add_string buf t
            | other -> emit ~scope buf ~indent:false ~level:(level + 1) other)
          children;
        Buffer.add_string buf "</";
        Buffer.add_string buf n;
        Buffer.add_char buf '>'
      end
      else begin
        Buffer.add_char buf '>';
        let only_text =
          List.for_all (function Xml_parser.Text _ -> true | _ -> false) children
        in
        List.iter
          (emit ~scope buf ~indent:(indent && not only_text) ~level:(level + 1))
          children;
        if indent && not only_text then begin
          Buffer.add_char buf '\n';
          Buffer.add_string buf (String.make (2 * level) ' ')
        end;
        Buffer.add_string buf "</";
        Buffer.add_string buf n;
        Buffer.add_char buf '>'
      end

let list_to_string ?(options = default_options) trees =
  let buf = Buffer.create 256 in
  if options.xml_declaration then
    Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  List.iter (emit buf ~indent:options.indent ~level:0) trees;
  Buffer.contents buf

let to_string ?options tree = list_to_string ?options [ tree ]
