type t = { uri : string option; prefix : string option; local : string }

let make ?uri ?prefix local = { uri; prefix; local }

let of_string s =
  match String.index_opt s ':' with
  | None -> { uri = None; prefix = None; local = s }
  | Some i ->
      let prefix = String.sub s 0 i in
      let local = String.sub s (i + 1) (String.length s - i - 1) in
      { uri = None; prefix = Some prefix; local }

let equal a b =
  String.equal a.local b.local
  && Option.equal String.equal a.uri b.uri

let compare a b =
  match Option.compare String.compare a.uri b.uri with
  | 0 -> String.compare a.local b.local
  | c -> c

let hash t = Hashtbl.hash (t.uri, t.local)

let to_string t =
  match t.prefix with
  | Some p when p <> "" -> p ^ ":" ^ t.local
  | _ -> t.local

let to_clark t =
  match t.uri with
  | Some u -> "{" ^ u ^ "}" ^ t.local
  | None -> t.local

let pp ppf t = Format.pp_print_string ppf (to_clark t)

module Ns = struct
  let xml = "http://www.w3.org/XML/1998/namespace"
  let xmlns = "http://www.w3.org/2000/xmlns/"
  let xs = "http://www.w3.org/2001/XMLSchema"
  let fn = "http://www.w3.org/2005/xpath-functions"
  let local = "http://www.w3.org/2005/xquery-local-functions"
  let xhtml = "http://www.w3.org/1999/xhtml"
  let browser = "http://www.example.com/browser"
  let err = "http://www.w3.org/2005/xqt-errors"
end

module Smap = Map.Make (String)

module Env = struct
  type qname = t
  type t = { bindings : string Smap.t; default_ns : string option }

  let empty =
    {
      bindings = Smap.(empty |> add "xml" Ns.xml |> add "xmlns" Ns.xmlns);
      default_ns = None;
    }

  let bind env ~prefix ~uri =
    if prefix = "xml" || prefix = "xmlns" then env
    else { env with bindings = Smap.add prefix uri env.bindings }

  let bind_default env ~uri = { env with default_ns = uri }

  let initial =
    empty
    |> fun e -> bind e ~prefix:"xs" ~uri:Ns.xs
    |> fun e -> bind e ~prefix:"fn" ~uri:Ns.fn
    |> fun e -> bind e ~prefix:"local" ~uri:Ns.local
    |> fun e -> bind e ~prefix:"browser" ~uri:Ns.browser
    |> fun e -> bind e ~prefix:"err" ~uri:Ns.err

  let lookup env prefix = Smap.find_opt prefix env.bindings
  let default env = env.default_ns

  let resolve env ~use_default (qn : qname) =
    match qn.uri with
    | Some _ -> qn
    | None -> (
        match qn.prefix with
        | None ->
            if use_default then { qn with uri = env.default_ns } else qn
        | Some p -> (
            match lookup env p with
            | Some uri -> { qn with uri = Some uri }
            | None -> failwith (Printf.sprintf "XPST0081: unbound prefix %S" p)))
end
