(** Serialization of {!Xml_parser.tree} values back to XML text. *)

type options = {
  indent : bool;  (** pretty-print with two-space indentation *)
  xml_declaration : bool;  (** emit [<?xml version="1.0"?>] *)
}

val default_options : options

val to_string : ?options:options -> Xml_parser.tree -> string
val list_to_string : ?options:options -> Xml_parser.tree list -> string
