(** A namespace-aware XML / XHTML parser.

    Produces a lightweight immutable tree; {!Dom} (in the [dom] library)
    converts it into a mutable DOM. The parser accepts the XML subset
    needed for XHTML pages and data documents: prolog, doctype (skipped),
    elements, attributes, namespace declarations, text, CDATA, comments,
    processing instructions, predefined and numeric entities. *)

type tree =
  | Element of Qname.t * attribute list * tree list
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, data *)

and attribute = { name : Qname.t; value : string }

type options = {
  uppercase_tags : bool;
      (** Model Internet Explorer's quirk of upper-casing all HTML tag
          names (paper §5.1): element local names are upper-cased. *)
  keep_whitespace : bool;
      (** Keep whitespace-only text nodes (default true). *)
}

val default_options : options

exception Parse_error of { line : int; col : int; message : string }

(** Parse a complete document; returns the children of the document node
    (the root element plus any top-level comments/PIs). *)
val parse : ?options:options -> string -> tree list

(** Parse and return the single root element.
    @raise Parse_error if there is no unique root element. *)
val parse_root : ?options:options -> string -> tree

(** [element_name t] is the name of [t].
    @raise Invalid_argument if [t] is not an element. *)
val element_name : tree -> Qname.t

val pp : Format.formatter -> tree -> unit
