lib/minijs/js_lexer.ml: Buffer List Printf String
