lib/minijs/js_interp.mli: Dom Xqib
