lib/minijs/js_interp.ml: Array Buffer Char Dom Dom_event Float Fun Hashtbl Http_sim Js_ast Js_parser List Logs Option Printf Str String Virtual_clock Xdm_item Xmlb Xqib Xquery
