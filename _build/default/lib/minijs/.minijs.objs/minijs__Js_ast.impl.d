lib/minijs/js_ast.ml:
