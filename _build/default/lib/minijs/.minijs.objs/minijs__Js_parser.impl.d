lib/minijs/js_parser.ml: Js_ast Js_lexer List Printf
